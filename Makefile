GO ?= go

.PHONY: all build test race lint bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages (the sharded MRBG-Store and its
# incremental-processing consumers).
race:
	$(GO) test -race ./internal/mrbg/... ./internal/incr/...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One iteration of every benchmark so the bench harness cannot rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Everything CI runs, in the same order.
ci: build lint test race bench-smoke
