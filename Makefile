GO ?= go

.PHONY: all build test race lint fuzz bench-smoke bench-json pprof serve-demo ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the full module: every engine runs concurrent tasks over
# shared buffers and stores — and internal/serve adds concurrent
# readers against in-flight refreshes — so nothing is exempt.
race:
	$(GO) test -race ./...

# Lint is three in-repo stdlib-only tools plus staticcheck:
#   - doclint (internal/tools/doclint) requires a doc comment on every
#     exported declaration — the whole public surface stays
#     godoc-complete.
#   - i2vet (internal/tools/vet) enforces repo invariants: atomic
#     commit sequences, centralized counter names, sorted map emission,
#     checked Close/Flush/Sync, par.Do fan-out. Its summary line
#     ("i2vet: atomicwrite=0 ...") prints per-analyzer counts; it is
#     BLOCKING here and in CI. Exemptions need a justified
#     //i2vet:allow directive (see DESIGN.md "Enforced invariants").
#   - staticcheck is ADVISORY locally (runs only when installed, so
#     `make lint` needs nothing beyond the Go toolchain) and BLOCKING
#     in CI, where its own job always installs it.
lint:
	$(GO) vet ./...
	$(GO) run ./internal/tools/doclint . ./cmd/* ./internal/* ./internal/tools/doclint ./internal/tools/vet
	$(GO) run ./internal/tools/vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1)"; \
	fi
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Fuzz the decode boundaries that accept bytes from disk: the block
# segment format, the ingest staging log, and the kv text codec. Each
# target gets FUZZTIME of coverage-guided input generation (the go tool
# runs one -fuzz pattern per invocation). Seeds are valid encodes plus
# byte-flipped variants, mirroring the deterministic corruption-sweep
# tests; CI runs this as the fuzz-smoke job.
FUZZTIME ?= 30s

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzBlockFile$$' -fuzztime $(FUZZTIME) ./internal/blockio
	$(GO) test -run '^$$' -fuzz '^FuzzWALLine$$' -fuzztime $(FUZZTIME) ./internal/ingest
	$(GO) test -run '^$$' -fuzz '^FuzzEscapeField$$' -fuzztime $(FUZZTIME) ./internal/kv
	$(GO) test -run '^$$' -fuzz '^FuzzTextDelta$$' -fuzztime $(FUZZTIME) ./internal/kv

# One iteration of every benchmark so the bench harness cannot rot,
# plus (via bench-json) the sweep tables and the BENCH_core.json
# artifact exactly as CI's bench-smoke job produces them.
bench-smoke: bench-json
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Machine-readable benchmark records at CI's artifact paths, so the
# perf trajectory is reproducible locally: the engine sweeps in
# BENCH_core.json, the parallel durability-plane checkpoint sweep in
# BENCH_ckpt.json, the serving-layer QPS/p99 sweep in BENCH_serve.json,
# the streaming-ingestion freshness-lag sweep in BENCH_ingest.json, the
# segment block-format storage sweep in BENCH_results.json, and the
# refresh-planner no-regret sweep in BENCH_plan.json.
bench-json:
	$(GO) run ./cmd/i2mr-bench -scale small -shuffle-mem 65536 -json BENCH_core.json onestep core
	$(GO) run ./cmd/i2mr-bench -scale small -json BENCH_ckpt.json ckpt
	$(GO) run ./cmd/i2mr-bench -scale small -json BENCH_serve.json serve
	$(GO) run ./cmd/i2mr-bench -scale small -json BENCH_ingest.json ingest
	$(GO) run ./cmd/i2mr-bench -scale small -json BENCH_results.json results
	$(GO) run ./cmd/i2mr-bench -scale small -shuffle-mem 65536 -json BENCH_plan.json plan

# CPU + heap + contention profiles of the storage/serving hot path (the
# results point-read benchmarks), for digging into a regression the
# sweeps surface: `make pprof` then `go tool pprof cpu.prof`. The mutex
# and block profiles show lock contention and blocking waits on the
# parallel durability plane (striped edge locks, scheduler queue).
pprof:
	$(GO) test -run '^$$' -bench 'BenchmarkStoreGet' -benchtime 2s \
		-cpuprofile cpu.prof -memprofile mem.prof \
		-mutexprofile mutex.prof -blockprofile block.prof ./internal/results/
	@echo "profiles written: cpu.prof mem.prof mutex.prof block.prof (go tool pprof cpu.prof)"

# Run the online serving demo: wordcount over a generated corpus,
# HTTP on :8080, a background delta refresh every 5s. Try
#   curl 'http://localhost:8080/get?key=w0042'
# while it runs; /stats shows epoch flips and cache counters.
serve-demo:
	$(GO) run ./cmd/i2mr-serve -addr :8080 -n 4000 -refresh-every 5s

# Everything CI runs, in the same order.
ci: build lint test race fuzz bench-smoke
