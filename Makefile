GO ?= go

.PHONY: all build test race lint bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages: the sharded MRBG-Store, the
# streaming shuffle runtime, the engines that run concurrent tasks over
# its shared buffers, and the task scheduler itself.
race:
	$(GO) test -race ./internal/mrbg/... ./internal/incr/... \
		./internal/shuffle/... ./internal/iter/... ./internal/core/... \
		./internal/cluster/...

# staticcheck runs when installed (CI always installs it); locally it
# degrades to a notice so `make lint` needs nothing beyond the Go
# toolchain.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1)"; \
	fi
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One iteration of every benchmark so the bench harness cannot rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Everything CI runs, in the same order.
ci: build lint test race bench-smoke
