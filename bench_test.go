package i2mr

// One benchmark per table/figure of the paper's evaluation (Sec. 8).
// Each iteration regenerates the experiment at a reduced scale; run
//
//	go test -bench=. -benchmem
//
// for the full sweep or `cmd/i2mr-bench` for the formatted tables. The
// custom metrics (ns-scale ratios, propagated counts, read counts)
// carry each experiment's headline quantity.

import (
	"fmt"
	"strings"
	"testing"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/bench"
	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/mrbg"
)

func benchScale() bench.Scale {
	s := bench.SmallScale()
	s.GraphVertices = 800
	s.Points = 1500
	s.Tweets = 1500
	return s
}

func newBenchEnv(b *testing.B) *bench.Env {
	b.Helper()
	env, err := bench.NewEnv(b.TempDir(), 2)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkAPrioriOneStep regenerates Sec. 8.2: one-step incremental
// refresh vs re-computation ("i2MapReduce improves ... by a 12x
// speedup" on the paper's testbed).
func BenchmarkAPrioriOneStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newBenchEnv(b)
		res, err := bench.APriori(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "speedup")
	}
}

// BenchmarkFig8NormalizedRuntime regenerates Fig. 8 for all four
// iterative algorithms.
func BenchmarkFig8NormalizedRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newBenchEnv(b)
		rows, err := bench.Fig8(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			n := r.Normalized()
			b.ReportMetric(n[4], strings.ToLower(r.App)+"-i2cpc-vs-plain")
		}
	}
}

// BenchmarkFig9StageBreakdown regenerates Fig. 9's per-stage PageRank
// timings.
func BenchmarkFig9StageBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newBenchEnv(b)
		rows, err := bench.Fig9(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		plainMap := float64(rows[0].Stages.Stages[0])
		i2Map := float64(rows[2].Stages.Stages[0])
		if plainMap > 0 {
			b.ReportMetric(1-i2Map/plainMap, "map-stage-reduction")
		}
	}
}

// BenchmarkTable4Windows regenerates Table 4's read-strategy sweep.
func BenchmarkTable4Windows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newBenchEnv(b)
		rows, err := bench.Table4(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Reads), r.Technique+"-reads")
		}
	}
}

// BenchmarkFig10CPC regenerates Fig. 10's filter-threshold sweep.
func BenchmarkFig10CPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newBenchEnv(b)
		rows, err := bench.Fig10(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MeanError*100, fmt.Sprintf("ft%.1f-err-pct", r.FT))
		}
	}
}

// BenchmarkFig11Propagation regenerates Fig. 11's per-iteration
// propagated kv-pair traces.
func BenchmarkFig11Propagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newBenchEnv(b)
		series, err := bench.Fig11(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			total := 0
			for _, p := range s.Propagated {
				total += p
			}
			b.ReportMetric(float64(total), strings.ReplaceAll(s.Label, " ", "")+"-propagated")
		}
	}
}

// BenchmarkFig12SparkVsIterMR regenerates Fig. 12's size sweep.
func BenchmarkFig12SparkVsIterMR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newBenchEnv(b)
		rows, err := bench.Fig12(env, benchScale(), b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		small, large := rows[0], rows[len(rows)-1]
		if small.PlainMR > 0 {
			b.ReportMetric(float64(small.Spark)/float64(small.PlainMR), "spark-vs-plain-small")
		}
		if large.IterMR > 0 {
			b.ReportMetric(float64(large.Spark)/float64(large.IterMR), "spark-vs-iter-large")
		}
	}
}

// BenchmarkFig13FaultTolerance regenerates Fig. 13's failure-injection
// run and reports the worst recovery gap.
func BenchmarkFig13FaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newBenchEnv(b)
		res, err := bench.Fig13(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MaxRecovery.Milliseconds()), "max-recovery-ms")
	}
}

// --- MRBG-Store micro-benchmarks (the data structure under Table 4) ---

func populateStore(b *testing.B, strategy mrbg.ReadStrategy, nKeys int) *mrbg.ShardedStore {
	b.Helper()
	s, err := mrbg.Open(mrbg.Options{Dir: b.TempDir(), Strategy: strategy})
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < nKeys; k++ {
		err := s.Put(mrbg.Chunk{
			Key:   fmt.Sprintf("key-%06d", k),
			Edges: []mrbg.Edge{{MK: 1, V2: "value-payload-0123456789"}},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := s.CommitBatch(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkMRBGStoreMerge measures the delta-merge path (the per-
// iteration cost of incremental processing).
func BenchmarkMRBGStoreMerge(b *testing.B) {
	s := populateStore(b, mrbg.MultiDynamicWindow, 5000)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta := make([]mrbg.DeltaEdge, 0, 100)
		for k := 0; k < 100; k++ {
			delta = append(delta, mrbg.DeltaEdge{
				Key: fmt.Sprintf("key-%06d", (i*37+k*53)%5000),
				MK:  2, V2: "updated",
			})
		}
		if err := s.Merge(delta, func(mrbg.MergeResult) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMRBGStoreGetMany compares the read strategies on a sorted
// scan of every 10th chunk.
func BenchmarkMRBGStoreGetMany(b *testing.B) {
	for _, strat := range []mrbg.ReadStrategy{mrbg.IndexOnly, mrbg.MultiDynamicWindow} {
		b.Run(strat.String(), func(b *testing.B) {
			s := populateStore(b, strat, 5000)
			defer s.Close()
			var keys []string
			for k := 0; k < 5000; k += 10 {
				keys = append(keys, fmt.Sprintf("key-%06d", k))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := s.GetMany(keys, func(string, mrbg.Chunk, bool) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardSweep regenerates the shard-count sweep of the sharded
// MRBG-Store (Merge + full scan per shard count); on multi-core
// hardware the per-shard-count times should fall as shards rise.
func BenchmarkShardSweep(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := bench.ShardSweep(b.TempDir(), sc, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.MergeTime.Microseconds()), fmt.Sprintf("shards%d-merge-us", r.Shards))
		}
	}
}

// BenchmarkShuffleSort measures the engine-wide sort primitive.
func BenchmarkShuffleSort(b *testing.B) {
	base := make([]kv.Pair, 100_000)
	for i := range base {
		base[i] = kv.Pair{Key: fmt.Sprintf("k%07d", (i*2654435761)%len(base)), Value: "v"}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := append([]kv.Pair(nil), base...)
		kv.SortPairs(run)
	}
}

// BenchmarkAccumulatorAblation compares the two one-step refresh
// strategies on the same WordCount delta: the accumulator optimization
// (preserve only outputs, Sec. 3.5) vs full MRBGraph preservation. The
// ablation DESIGN.md calls out for the Sec. 3.5 design choice.
func BenchmarkAccumulatorAblation(b *testing.B) {
	for _, mode := range []string{"accumulator", "fine-grain"} {
		b.Run(mode, func(b *testing.B) {
			env := newBenchEnv(b)
			docs := make([]kv.Pair, 3000)
			for i := range docs {
				docs[i] = kv.Pair{
					Key:   fmt.Sprintf("d%05d", i),
					Value: fmt.Sprintf("alpha w%03d w%03d common", i%97, i%53),
				}
			}
			if err := env.Eng.FS().WriteAllPairs("docs", docs); err != nil {
				b.Fatal(err)
			}
			job := apps.WordCountJob("abl-" + mode)
			if mode == "fine-grain" {
				job = apps.FineGrainWordCountJob("abl-" + mode)
			}
			runner, err := incr.NewRunner(env.Eng, job)
			if err != nil {
				b.Fatal(err)
			}
			defer runner.Close()
			if _, err := runner.RunInitial("docs", "out0"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delta := []kv.Delta{{
					Key:   fmt.Sprintf("new%06d", i),
					Value: "alpha common brandnew",
					Op:    kv.OpInsert,
				}}
				path := fmt.Sprintf("delta-%d", i)
				b.StopTimer()
				if err := env.Eng.FS().WriteAllDeltas(path, delta); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := runner.RunDelta(path, fmt.Sprintf("out-%d", i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOneStepSweep regenerates the one-step delta-size sweep:
// recompute vs incremental refresh wall time plus the delta shuffle's
// spill counters and the durable result store's maintenance counters.
func BenchmarkOneStepSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newBenchEnv(b)
		sc := benchScale()
		sc.ShuffleMemoryBudget = 64 << 10
		rows, err := bench.OneStepSweep(env, sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Speedup, fmt.Sprintf("delta%.0fpct-speedup", r.DeltaFraction*100))
		}
	}
}

// BenchmarkServeSweep regenerates the serving sweep: concurrent-reader
// QPS and tail latency against snapshot epochs while a delta refresh is
// live.
func BenchmarkServeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newBenchEnv(b)
		rows, err := bench.ServeSweep(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.QPS, fmt.Sprintf("readers%d-qps", r.Readers))
			b.ReportMetric(float64(r.P99.Microseconds()), fmt.Sprintf("readers%d-p99-us", r.Readers))
		}
	}
}

// BenchmarkIngestSweep regenerates the streaming-ingestion sweep:
// per-record freshness lag (durable accept to epoch flip) vs offered
// ingest rate across micro-batching policies.
func BenchmarkIngestSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newBenchEnv(b)
		rows, err := bench.IngestSweep(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.MeanLag.Microseconds()), fmt.Sprintf("%s-rate%d-lag-us", r.Policy, r.Rate))
		}
	}
}

// BenchmarkCoreSweep regenerates the durable-core sweep: incremental
// iterative refresh wall time across partition counts and shuffle
// budgets, with per-iteration dirty-group checkpointing on.
func BenchmarkCoreSweep(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := bench.CoreSweep(b.TempDir(), sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Refresh.Microseconds()),
				fmt.Sprintf("p%d-b%d-refresh-us", r.Partitions, r.Budget))
		}
	}
}
