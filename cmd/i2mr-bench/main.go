// Command i2mr-bench regenerates the paper's evaluation tables and
// figures (Sec. 8) on the simulated substrate.
//
// Usage:
//
//	i2mr-bench [-scale small|default] [-workdir DIR] [-json PATH] [experiment ...]
//
// Experiments: fig8 fig9 table4 fig10 fig11 fig12 fig13 apriori shards
// onestep core ckpt serve ingest results plan all
//
// With -json PATH, the experiments that produce machine-readable
// records (onestep, core, ckpt, shards, serve, ingest, results, plan)
// additionally append them to a JSON array written at PATH — the
// BENCH_core.json / BENCH_ckpt.json / BENCH_serve.json /
// BENCH_ingest.json / BENCH_results.json / BENCH_plan.json artifacts
// CI uploads from its bench-smoke job.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"i2mapreduce/internal/bench"
)

func main() {
	scaleFlag := flag.String("scale", "default", "workload scale: small or default")
	workdir := flag.String("workdir", "", "working directory (default: a temp dir, removed on exit)")
	shards := flag.Int("shards", 0, "MRBG-Store shard count for i2MR runs (0 = store default)")
	shuffleMem := flag.Int64("shuffle-mem", 0, "shuffle memory budget in bytes per iteration for iterMR/i2MR runs (0 = unbounded)")
	jsonPath := flag.String("json", "", "write machine-readable benchmark records (JSON array) to this path")
	flag.Parse()

	sc := bench.DefaultScale()
	if *scaleFlag == "small" {
		sc = bench.SmallScale()
	}
	sc.StoreShards = *shards
	sc.ShuffleMemoryBudget = *shuffleMem

	dir := *workdir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "i2mr-bench-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	experiments := flag.Args()
	if len(experiments) == 0 || (len(experiments) == 1 && experiments[0] == "all") {
		experiments = []string{"apriori", "onestep", "core", "ckpt", "serve", "ingest", "results", "plan", "fig8", "fig9", "table4", "fig10", "fig11", "fig12", "fig13", "shards"}
	}

	var recs []bench.JSONRecord
	for _, name := range experiments {
		// A fresh environment per experiment keeps DFS paths and
		// scratch state independent. A named -workdir persists across
		// invocations, so clear the experiment's subtree first: the
		// durable engines refuse stale preserved state rather than
		// overwriting it.
		if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
			log.Fatal(err)
		}
		env, err := bench.NewEnv(filepath.Join(dir, name), sc.Nodes)
		if err != nil {
			log.Fatal(err)
		}
		r, err := runExperiment(env, sc, dir, name, *scaleFlag)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		recs = append(recs, r...)
		fmt.Println()
	}
	if *jsonPath != "" {
		if err := bench.WriteJSON(*jsonPath, recs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d benchmark records to %s\n", len(recs), *jsonPath)
	}
}

// runExperiment runs one named experiment, printing its table and
// returning its machine-readable records (nil for experiments without a
// JSON converter).
func runExperiment(env *bench.Env, sc bench.Scale, dir, name, scaleName string) ([]bench.JSONRecord, error) {
	switch name {
	case "fig8":
		rows, err := bench.Fig8(env, sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatFig8(rows))
	case "fig9":
		rows, err := bench.Fig9(env, sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatFig9(rows))
	case "table4":
		rows, err := bench.Table4(env, sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatTable4(rows))
	case "fig10":
		rows, err := bench.Fig10(env, sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatFig10(rows))
	case "fig11":
		series, err := bench.Fig11(env, sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatFig11(series))
	case "fig12":
		rows, err := bench.Fig12(env, sc, filepath.Join(dir, name, "spill"))
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatFig12(rows))
	case "fig13":
		res, err := bench.Fig13(env, sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatFig13(res))
	case "apriori":
		res, err := bench.APriori(env, sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatAPriori(res))
	case "onestep":
		rows, err := bench.OneStepSweep(env, sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatOneStep(rows))
		return bench.OneStepJSON(scaleName, rows), nil
	case "core":
		rows, err := bench.CoreSweep(filepath.Join(dir, name, "sweep"), sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatCoreSweep(rows))
		return bench.CoreSweepJSON(scaleName, rows), nil
	case "ckpt":
		rows, err := bench.CkptSweep(filepath.Join(dir, name, "sweep"), sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatCkpt(rows))
		return bench.CkptJSON(scaleName, rows), nil
	case "serve":
		rows, err := bench.ServeSweep(env, sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatServe(rows))
		cold, err := bench.ServeColdSweep(env, sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatServeCold(cold))
		return append(bench.ServeJSON(scaleName, rows), bench.ServeColdJSON(scaleName, cold)...), nil
	case "ingest":
		rows, err := bench.IngestSweep(env, sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatIngest(rows))
		return bench.IngestJSON(scaleName, rows), nil
	case "results":
		rows, err := bench.ResultsSweep(filepath.Join(dir, name, "sweep"), sc)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatResultsSweep(rows))
		return bench.ResultsSweepJSON(scaleName, rows), nil
	case "plan":
		rows, err := bench.PlanSweep(env, sc, filepath.Join(dir, name, "ledgers"))
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatPlan(rows))
		return bench.PlanJSON(scaleName, rows), nil
	case "shards":
		rows, err := bench.ShardSweep(filepath.Join(dir, name, "sweep"), sc, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatShardSweep(rows))
		return bench.ShardSweepJSON(scaleName, rows), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
	return nil, nil
}
