// Command i2mr-datagen emits the synthetic datasets (and deltas) this
// reproduction uses in place of the paper's ClueWeb / ClueWeb2 /
// BigCross / WikiTalk / Twitter corpora (Table 3), in the text codec
// (one "key<TAB>value" line per record; deltas add "<TAB>+/-").
//
// Usage:
//
//	i2mr-datagen -kind graph|wgraph|points|matrix|tweets [flags] > out.tsv
//	i2mr-datagen -kind graph -delta 0.1 [flags] > delta.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/kv"
)

func main() {
	kind := flag.String("kind", "graph", "dataset kind: graph, wgraph, points, matrix, tweets")
	n := flag.Int("n", 10000, "record count (vertices / points / tweets); blocks for matrix")
	degree := flag.Int("degree", 4, "mean out-degree (graphs)")
	dims := flag.Int("dims", 8, "point dimensions")
	clusters := flag.Int("clusters", 8, "point clusters")
	blockSize := flag.Int("blocksize", 16, "matrix block size")
	vocab := flag.Int("vocab", 1000, "tweet vocabulary size")
	words := flag.Int("words", 8, "words per tweet")
	seed := flag.Int64("seed", 1, "generator seed")
	delta := flag.Float64("delta", 0, "emit a delta mutating this fraction instead of the dataset")
	flag.Parse()

	var data []kv.Pair
	switch *kind {
	case "graph":
		data = datagen.Graph(*seed, *n, *degree)
	case "wgraph":
		data = datagen.WeightedGraph(*seed, *n, *degree)
	case "points":
		data = datagen.Points(*seed, *n, *dims, *clusters)
	case "matrix":
		data = datagen.BlockMatrix(*seed, *n, *blockSize, 3)
	case "tweets":
		data = datagen.Tweets(*seed, *n, *vocab, *words)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *delta > 0 {
		if *kind != "graph" {
			log.Fatal("-delta currently supports -kind graph (rewire mutation)")
		}
		ds, _ := datagen.Mutate(*seed+1, data, datagen.MutateOptions{
			ModifyFraction: *delta,
			Rewrite:        datagen.RewireGraphValue(*n),
		})
		for _, d := range ds {
			fmt.Fprintln(w, kv.FormatTextDelta(d))
		}
		return
	}
	for _, p := range data {
		fmt.Fprintln(w, kv.FormatTextPair(p))
	}
}
