// Command i2mr-serve runs a complete online serving deployment: it
// computes a fine-grain incremental WordCount over a generated tweet
// corpus, serves the materialized result set over HTTP, and keeps the
// result fresh by applying delta refreshes in the background — readers
// keep being answered from the pre-refresh snapshot epoch for the whole
// duration of each refresh and flip atomically when it commits.
//
// Usage:
//
//	i2mr-serve [-addr :8080] [-n 4000] [-nodes 4] [-delta 0.05]
//	           [-refresh-every 5s] [-refreshes 0] [-cache 4096]
//	           [-ingest] [-max-lag 2s] [-batch-records 10000]
//	           [-batch-bytes 4194304] [-min-interval 0] [-reject]
//
// Try it:
//
//	curl 'http://localhost:8080/get?key=w0042'
//	curl 'http://localhost:8080/mget?key=w0001&key=w0002&key=w0003'
//	curl -X POST http://localhost:8080/mget -d '{"keys":["w0001","w0002"]}'
//	curl http://localhost:8080/stats
//	curl http://localhost:8080/healthz
//
// -refreshes 0 refreshes forever; a positive count exits after that
// many background refreshes (handy for demos and smoke tests). Ctrl-C
// shuts down cleanly (the scratch directory is removed).
//
// # Streaming ingestion mode
//
// With -ingest the synthetic background mutator is replaced by the
// streaming ingestion pipeline: POST /ingest accepts delta records,
// stages them durably, and a micro-batch loop refreshes them into the
// served result under the batching policy (-max-lag, -batch-records,
// -batch-bytes, -min-interval; -reject switches backpressure from
// block-on-full to HTTP 429). Watch the watermark catch up:
//
//	curl -X POST http://localhost:8080/ingest \
//	     -d '{"deltas":[{"key":"t1","value":"hello hello world","op":"+"}]}'
//	curl http://localhost:8080/stats     # "ingest": applied_seq, lag_ns
//
// Ctrl-C drains: staged records are refreshed before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	i2mr "i2mapreduce"
	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/ingest"
	"i2mapreduce/internal/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run carries the whole deployment so deferred cleanups survive every
// exit path (log.Fatal would skip them).
func run() error {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	n := flag.Int("n", 4000, "documents in the generated corpus")
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	deltaFrac := flag.Float64("delta", 0.05, "fraction of the corpus each background refresh rewrites")
	refreshEvery := flag.Duration("refresh-every", 5*time.Second, "interval between background delta refreshes")
	refreshes := flag.Int("refreshes", 0, "stop refreshing after this many refreshes (0 = refresh forever)")
	cacheSize := flag.Int("cache", 0, "per-epoch read cache entries (0 = default, negative disables)")
	ingestMode := flag.Bool("ingest", false, "streaming ingestion mode: accept deltas on POST /ingest instead of the synthetic mutator")
	maxLag := flag.Duration("max-lag", ingest.DefaultMaxLag, "ingest: refresh when the oldest staged record is this old")
	batchRecords := flag.Int("batch-records", ingest.DefaultMaxBatchRecords, "ingest: refresh early at this many staged records")
	batchBytes := flag.Int64("batch-bytes", ingest.DefaultMaxBatchBytes, "ingest: refresh early at this many staged bytes")
	minInterval := flag.Duration("min-interval", 0, "ingest: minimum spacing between refreshes")
	reject := flag.Bool("reject", false, "ingest: reject with HTTP 429 at the staging bound instead of blocking")
	flag.Parse()

	dir, err := os.MkdirTemp("", "i2mr-serve-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	sys, err := i2mr.New(i2mr.Options{WorkDir: dir, Nodes: *nodes})
	if err != nil {
		return err
	}

	const vocab, wordsPerTweet = 200, 8
	corpus := datagen.Tweets(1, *n, vocab, wordsPerTweet)
	if err := sys.WritePairs("tweets", corpus); err != nil {
		return err
	}
	runner, err := sys.NewOneStep(apps.FineGrainWordCountJob("wordcount"))
	if err != nil {
		return err
	}
	defer runner.Close()

	start := time.Now()
	if _, err := runner.RunInitial("tweets", "wc-v1"); err != nil {
		return err
	}
	outs, err := runner.Outputs()
	if err != nil {
		return err
	}
	log.Printf("initial wordcount: %d documents -> %d words in %s",
		*n, len(outs), time.Since(start).Round(time.Millisecond))

	srv, err := serve.NewOneStep(runner, serve.Options{CacheSize: *cacheSize})
	if err != nil {
		return err
	}
	defer srv.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Streaming ingestion mode: POST /ingest feeds the micro-batch
	// refresh loop; the synthetic mutator below is skipped.
	var ing *ingest.Ingester
	extra := map[string]http.Handler{}
	if *ingestMode {
		ing, err = ingest.Open(ingest.Config{
			Dir:         filepath.Join(dir, "ingest-wal"),
			Refresh:     ingest.BindServe(srv, runner),
			WriteDeltas: sys.WriteDeltas,
			AppliedJobs: runner.CompletedJobs,
			Policy: ingest.Policy{
				MaxLag:          *maxLag,
				MaxBatchRecords: *batchRecords,
				MaxBatchBytes:   *batchBytes,
				MinInterval:     *minInterval,
			},
			Backpressure: map[bool]ingest.Backpressure{false: ingest.BlockOnFull, true: ingest.RejectOnFull}[*reject],
			OnBatchApplied: func(b ingest.Batch) {
				st := srv.Stats()
				log.Printf("ingest batch %d: %d records (seq %d-%d) in %s -> epoch %d",
					b.ID, b.Records, b.FirstSeq, b.LastSeq, b.Wall.Round(time.Millisecond), st.Epoch)
			},
		})
		if err != nil {
			return err
		}
		ing.AttachTo(srv)
		ing.Start()
		extra["/ingest"] = ing.Handler()
	}

	// Background refresher: evolve the corpus, write a delta file, and
	// publish it through srv.Refresh — readers flip to the new epoch
	// only when the refresh commits. A refresh error stops refreshing
	// but leaves the server answering from the last good epoch.
	refresher := func() {
		current := corpus
		for i := 1; *refreshes <= 0 || i <= *refreshes; i++ {
			select {
			case <-ctx.Done():
				return
			case <-time.After(*refreshEvery):
			}
			deltas, mutated := datagen.Mutate(int64(i+1), current, datagen.MutateOptions{
				ModifyFraction: *deltaFrac,
				Rewrite: func(rng *rand.Rand, key, value string) string {
					return value + fmt.Sprintf(" w%04d", rng.Intn(vocab))
				},
			})
			current = mutated
			deltaPath := fmt.Sprintf("delta-%d", i)
			outPath := fmt.Sprintf("wc-v%d", i+1)
			if err := sys.WriteDeltas(deltaPath, deltas); err != nil {
				log.Printf("refresh %d: %v (refreshes stopped)", i, err)
				return
			}
			t := time.Now()
			err := srv.Refresh(func() error {
				_, err := runner.RunDelta(deltaPath, outPath)
				return err
			})
			if err != nil {
				log.Printf("refresh %d: %v (refreshes stopped)", i, err)
				return
			}
			st := srv.Stats()
			log.Printf("refresh %d: %d delta records in %s -> epoch %d (cache %d hits / %d misses)",
				i, len(deltas), time.Since(t).Round(time.Millisecond), st.Epoch, st.CacheHits, st.CacheMisses)
		}
		log.Printf("completed %d refreshes; still serving epoch %d", *refreshes, srv.Epoch())
	}
	if !*ingestMode {
		go refresher()
	}

	sample := ""
	if len(outs) > 0 {
		sample = outs[len(outs)/2].Key
	}
	display := *addr
	if strings.HasPrefix(display, ":") {
		display = "localhost" + display
	}
	hs := &http.Server{Addr: *addr, Handler: srv.HandlerWith(extra)}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx) //nolint:errcheck // best-effort drain before exit
	}()
	if *ingestMode {
		log.Printf("serving on %s (streaming ingestion on POST /ingest) — try: curl 'http://%s/get?key=%s'", *addr, display, sample)
	} else {
		log.Printf("serving on %s — try: curl 'http://%s/get?key=%s'", *addr, display, sample)
	}
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if ing != nil {
		// Graceful drain: everything already accepted is refreshed into
		// the served result before exit.
		st := ing.Stats()
		if st.PendingRecords > 0 {
			log.Printf("draining %d staged records", st.PendingRecords)
		}
		if err := ing.Close(); err != nil {
			log.Printf("ingest drain: %v", err)
		}
	}
	log.Printf("shutting down (epoch %d served)", srv.Epoch())
	return nil
}
