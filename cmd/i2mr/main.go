// Command i2mr runs one application end to end on the simulated
// cluster: generate (or load) a dataset, compute the initial result,
// apply a delta, refresh incrementally, and print run statistics.
//
// Usage:
//
//	i2mr -app pagerank|sssp|kmeans|gimv [-n N] [-delta F] [-nodes K] [-shards S] [-shuffle-mem B]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	i2mr "i2mapreduce"
	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
)

func main() {
	app := flag.String("app", "pagerank", "application: pagerank, sssp, kmeans, gimv")
	n := flag.Int("n", 5000, "dataset size (vertices / points / matrix blocks x16)")
	deltaFrac := flag.Float64("delta", 0.10, "fraction of the input to change")
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	cpc := flag.Bool("cpc", true, "enable change propagation control")
	ft := flag.Float64("ft", 0.001, "CPC filter threshold")
	shards := flag.Int("shards", 1, "MRBG-Store shard files per partition")
	storePar := flag.Int("store-par", 0, "MRBG-Store shard fan-out (0 = GOMAXPROCS)")
	shuffleMem := flag.Int64("shuffle-mem", 0, "shuffle memory budget in bytes per iteration; beyond it map output spills sorted runs to scratch (0 = unbounded)")
	flag.Parse()

	dir, err := os.MkdirTemp("", "i2mr-run-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := i2mr.New(i2mr.Options{
		WorkDir: dir, Nodes: *nodes,
		StoreShards: *shards, StoreParallelism: *storePar,
		ShuffleMemoryBudget: *shuffleMem,
	})
	if err != nil {
		log.Fatal(err)
	}

	var spec core.Spec
	var data []kv.Pair
	var deltas []kv.Delta
	cfg := i2mr.Config{
		NumPartitions: *nodes, MaxIterations: 100, Epsilon: 1e-6,
		CPC: *cpc, FilterThreshold: *ft,
	}

	switch *app {
	case "pagerank":
		data = datagen.Graph(1, *n, 4)
		deltas, _ = datagen.Mutate(2, data, datagen.MutateOptions{
			ModifyFraction: *deltaFrac, Rewrite: datagen.RewireGraphValue(*n),
		})
		spec = apps.PageRankSpec("pagerank", apps.DefaultDamping)
	case "sssp":
		data = datagen.WeightedGraph(1, *n, 4)
		source := data[0].Key
		deltas, _ = datagen.Mutate(2, data, datagen.MutateOptions{
			ModifyFraction: *deltaFrac,
			Rewrite: func(rng *rand.Rand, key, value string) string {
				return value + fmt.Sprintf(";v%07d:0.5", rng.Intn(*n))
			},
		})
		spec = apps.SSSPSpec("sssp", source)
	case "kmeans":
		data = datagen.Points(1, *n, 8, 8)
		cfg.InitialState = map[string]string{
			apps.KmeansStateKey: datagen.InitialCentroids(1, data, 8),
		}
		cfg.Epsilon = 1e-9
		extra := datagen.Points(2, int(float64(*n)**deltaFrac), 8, 8)
		for i, p := range extra {
			deltas = append(deltas, kv.Delta{Key: fmt.Sprintf("x%07d", i), Value: p.Value, Op: kv.OpInsert})
		}
		spec = apps.KmeansSpec("kmeans")
	case "gimv":
		blocks := *n / 16
		if blocks < 2 {
			blocks = 2
		}
		data = datagen.BlockMatrix(1, blocks, 16, 3)
		deltas, _ = datagen.Mutate(2, data, datagen.MutateOptions{
			ModifyFraction: *deltaFrac,
			Rewrite: func(rng *rand.Rand, key, value string) string {
				return value // identity keeps matrix valid; drop nothing
			},
		})
		spec = apps.GIMVSpec("gimv", 16, apps.DefaultDamping)
	default:
		log.Fatalf("unknown app %q", *app)
	}

	if err := sys.WritePairs("input", data); err != nil {
		log.Fatal(err)
	}
	if err := sys.WriteDeltas("delta", deltas); err != nil {
		log.Fatal(err)
	}

	runner, err := sys.NewIncremental(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()

	start := time.Now()
	res, err := runner.RunInitial("input")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s initial: %d iterations in %s (converged=%v, %d state keys)\n",
		*app, res.Iterations, time.Since(start).Round(time.Millisecond), res.Converged, runner.StateKeyCount())
	if *shuffleMem > 0 {
		var runs, bytes int64
		for _, s := range res.PerIter {
			runs += s.Stages.Counters[metrics.CounterSpillRuns]
			bytes += s.Stages.Counters[metrics.CounterSpillBytes]
		}
		fmt.Printf("shuffle: budget %d B, spilled %d runs / %d bytes during the initial job\n", *shuffleMem, runs, bytes)
	}

	start = time.Now()
	inc, err := runner.RunIncremental("delta")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s incremental (%d delta records): %d iterations in %s (converged=%v, MRBG disabled at %d)\n",
		*app, inc.Report.Counter("delta.records"), inc.Iterations,
		time.Since(start).Round(time.Millisecond), inc.Converged, inc.MRBGDisabledAt)
	fmt.Printf("stages: %s\n", inc.Report.Snapshot())
}
