// Command i2mr runs one application end to end on the simulated
// cluster: generate (or load) a dataset, compute the initial result,
// apply a delta, refresh, and print run statistics.
//
// The iterative apps (pagerank, sssp, kmeans, gimv) drive the
// incremental iterative engine; pagerank additionally refreshes a
// second delta after a simulated process restart via
// System.OpenIncremental, proving the durable state stores and
// preserved MRBGraph carry the computation across process death.
// wordcount drives the one-step engine (fine-grain MRBGraph
// preservation plus the durable result store), including a RunDelta
// after a simulated restart via System.OpenOneStep.
//
// Refreshes dispatch through the unified Refresher API. With the
// default -plan auto the cost-aware planner chooses the refresh mode
// per delta (falling back to a calibration refresh in the engine's
// native mode while its cost model is cold) and the decision is
// printed with predicted vs actual cost; -plan recompute|onestep|
// incremental forces a mode.
//
// Usage:
//
//	i2mr -app pagerank|sssp|kmeans|gimv|wordcount [-n N] [-delta F] [-nodes K]
//	     [-plan auto|recompute|onestep|incremental]
//	     [-shards S] [-shuffle-mem B] [-result-compact T]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	i2mr "i2mapreduce"
	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
)

func main() {
	app := flag.String("app", "pagerank", "application: pagerank, sssp, kmeans, gimv, wordcount (one-step)")
	n := flag.Int("n", 5000, "dataset size (vertices / points / matrix blocks x16)")
	deltaFrac := flag.Float64("delta", 0.10, "fraction of the input to change")
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	cpc := flag.Bool("cpc", true, "enable change propagation control")
	ft := flag.Float64("ft", 0.001, "CPC filter threshold")
	planMode := flag.String("plan", "auto", "refresh mode: auto (cost-aware planner decides) or forced recompute|onestep|incremental")
	shards := flag.Int("shards", 1, "MRBG-Store shard files per partition")
	storePar := flag.Int("store-par", 0, "MRBG-Store shard fan-out (0 = GOMAXPROCS)")
	shuffleMem := flag.Int64("shuffle-mem", 0, "shuffle memory budget in bytes per iteration / per delta refresh; beyond it map output spills sorted runs to scratch (0 = unbounded)")
	resultCompact := flag.Int("result-compact", 0, "one-step result store segment count that triggers compaction (0 = default, negative disables)")
	segBlock := flag.Int("seg-block", 0, "result segment block size in bytes (0 = 32 KiB default)")
	segCodec := flag.String("seg-codec", "", "result segment per-block codec: none or flate (default none)")
	bloomBits := flag.Int("bloom-bits", 0, "bloom filter bits per key in result segments (0 = default 10, negative disables)")
	ioPar := flag.Int("io-par", 0, "bound on concurrent per-partition durability I/O: checkpoints, store opens, recovery (0 = GOMAXPROCS, 1 = serial)")
	bgCompact := flag.Bool("bg-compact", false, "run durable-store compaction on a background scheduler instead of inline during checkpoints")
	flag.Parse()

	switch *planMode {
	case "auto", i2mr.ModeRecompute, i2mr.ModeOneStep, i2mr.ModeIncremental:
	default:
		log.Fatalf("unknown -plan mode %q (want auto, recompute, onestep, or incremental)", *planMode)
	}

	dir, err := os.MkdirTemp("", "i2mr-run-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sysOpts := i2mr.Options{
		WorkDir: dir, Nodes: *nodes,
		StoreShards: *shards, StoreParallelism: *storePar,
		ShuffleMemoryBudget:    *shuffleMem,
		ResultCompactThreshold: *resultCompact,
		SegmentBlockBytes:      *segBlock,
		SegmentCompression:     *segCodec,
		BloomBitsPerKey:        *bloomBits,
		IOParallelism:          *ioPar,
		BackgroundCompaction:   *bgCompact,
	}
	sys, err := i2mr.New(sysOpts)
	if err != nil {
		log.Fatal(err)
	}

	if *app == "wordcount" {
		runOneStep(sys, sysOpts, *n, *deltaFrac, *shuffleMem, *planMode)
		return
	}
	if *planMode == i2mr.ModeOneStep {
		log.Fatalf("-plan onestep applies to -app wordcount; %s refreshes are recompute or incremental", *app)
	}

	var spec core.Spec
	var data []kv.Pair
	var deltas []kv.Delta
	var mutated []kv.Pair // post-delta dataset (pagerank restart flow)
	cfg := i2mr.IncrementalConfig{
		NumPartitions: *nodes, MaxIterations: 100, Epsilon: 1e-6,
		CPC: *cpc, FilterThreshold: *ft,
	}

	switch *app {
	case "pagerank":
		data = datagen.Graph(1, *n, 4)
		deltas, mutated = datagen.Mutate(2, data, datagen.MutateOptions{
			ModifyFraction: *deltaFrac, Rewrite: datagen.RewireGraphValue(*n),
		})
		spec = apps.PageRankSpec("pagerank", apps.DefaultDamping)
	case "sssp":
		data = datagen.WeightedGraph(1, *n, 4)
		source := data[0].Key
		deltas, _ = datagen.Mutate(2, data, datagen.MutateOptions{
			ModifyFraction: *deltaFrac,
			Rewrite: func(rng *rand.Rand, key, value string) string {
				return value + fmt.Sprintf(";v%07d:0.5", rng.Intn(*n))
			},
		})
		spec = apps.SSSPSpec("sssp", source)
	case "kmeans":
		data = datagen.Points(1, *n, 8, 8)
		cfg.InitialState = map[string]string{
			apps.KmeansStateKey: datagen.InitialCentroids(1, data, 8),
		}
		cfg.Epsilon = 1e-9
		extra := datagen.Points(2, int(float64(*n)**deltaFrac), 8, 8)
		for i, p := range extra {
			deltas = append(deltas, kv.Delta{Key: fmt.Sprintf("x%07d", i), Value: p.Value, Op: kv.OpInsert})
		}
		spec = apps.KmeansSpec("kmeans")
	case "gimv":
		blocks := *n / 16
		if blocks < 2 {
			blocks = 2
		}
		data = datagen.BlockMatrix(1, blocks, 16, 3)
		deltas, _ = datagen.Mutate(2, data, datagen.MutateOptions{
			ModifyFraction: *deltaFrac,
			Rewrite: func(rng *rand.Rand, key, value string) string {
				return value // identity keeps matrix valid; drop nothing
			},
		})
		spec = apps.GIMVSpec("gimv", 16, apps.DefaultDamping)
	default:
		log.Fatalf("unknown app %q", *app)
	}

	if err := sys.WritePairs("input", data); err != nil {
		log.Fatal(err)
	}
	if err := sys.WriteDeltas("delta", deltas); err != nil {
		log.Fatal(err)
	}

	runner, err := sys.NewIncremental(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := runner.RunInitial("input")
	if err != nil {
		log.Fatal(err)
	}
	initialWall := time.Since(start)
	fmt.Printf("%s initial: %d iterations in %s (converged=%v, %d state keys)\n",
		*app, res.Iterations, initialWall.Round(time.Millisecond), res.Converged, runner.StateKeyCount())
	if *shuffleMem > 0 {
		var runs, bytes int64
		for _, s := range res.PerIter {
			runs += s.Stages.Counters[metrics.CounterSpillRuns]
			bytes += s.Stages.Counters[metrics.CounterSpillBytes]
		}
		fmt.Printf("shuffle: budget %d B, spilled %d runs / %d bytes during the initial job\n", *shuffleMem, runs, bytes)
	}

	planner := newPlanner(sys, *app, *ft)
	// The initial job is recompute-cost evidence at delta size zero.
	if err := planner.Observe(i2mr.Observation{Mode: i2mr.ModeRecompute, Wall: initialWall}); err != nil {
		log.Fatal(err)
	}

	engines := map[string]i2mr.Refresher{
		i2mr.ModeRecompute:   runner.FullRefresher(),
		i2mr.ModeIncremental: runner,
	}
	ref := plannedRefresh(planner, engines, *planMode, "delta", "", int64(len(deltas)), int64(len(data)), *ft)
	fmt.Printf("%s %s refresh (%d delta records): %d iterations in %s (converged=%v)\n",
		*app, ref.Mode, ref.DeltaRecords, ref.Iterations,
		ref.Wall.Round(time.Millisecond), ref.Converged)
	fmt.Printf("stages: %s\n", ref.Report.Snapshot())

	// Simulated process death: release the runner before a second System
	// reattaches to the preserved state it leaves behind.
	if err := runner.Close(); err != nil {
		log.Fatal(err)
	}
	if *app == "pagerank" {
		resumePageRank(sysOpts, spec, cfg, mutated, *n, *deltaFrac, *planMode, *ft)
	}
}

// newPlanner opens the app's cost ledger under the System's WorkDir.
func newPlanner(sys *i2mr.System, name string, ft float64) *i2mr.Planner {
	p, err := sys.NewPlanner(name, i2mr.PlannerConfig{
		CPCThresholds:       []float64{ft},
		DefaultCPCThreshold: ft,
	})
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// plannedRefresh runs one refresh through the Refresher API. A forced
// mode dispatches straight to that engine; "auto" asks the planner,
// with a calibration refresh in the engine's native (non-recompute)
// mode while its cost model is cold. Either way the observed cost feeds
// the ledger, and the decision is printed with predicted vs actual
// cost.
func plannedRefresh(planner *i2mr.Planner, engines map[string]i2mr.Refresher, mode, deltaInput, output string, deltaRecords, totalRecords int64, ft float64) *i2mr.RefreshResult {
	if mode != "auto" {
		eng, ok := engines[mode]
		if !ok {
			log.Fatalf("plan: mode %q is not available for this app", mode)
		}
		res, err := eng.Refresh(deltaInput, output)
		if err != nil {
			log.Fatal(err)
		}
		if err := planner.ObserveResult(res, ft); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan: forced %s, actual cost %s\n", mode, res.Wall.Round(time.Millisecond))
		return res
	}

	// Native (non-recompute) modes, deterministically ordered.
	native := make([]string, 0, len(engines))
	for m := range engines {
		if m != i2mr.ModeRecompute {
			native = append(native, m)
		}
	}
	sort.Strings(native)
	for _, m := range native {
		if planner.Warm(m) {
			continue
		}
		// Cold model: run this engine's own mode once so the planner has
		// cost evidence for it (the initial job already covers recompute).
		eng := engines[m]
		res, err := eng.Refresh(deltaInput, output)
		if err != nil {
			log.Fatal(err)
		}
		if err := planner.ObserveResult(res, ft); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan: cost model cold for %s — calibration refresh in %s mode, actual cost %s\n",
			m, m, res.Wall.Round(time.Millisecond))
		return res
	}

	auto := &i2mr.AutoRefresher{
		Planner:      planner,
		Engines:      engines,
		TotalRecords: func() int64 { return totalRecords },
	}
	res, d, err := auto.Refresh(deltaInput, output, deltaRecords)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: chose %s — %s\n", d.Mode, d.Reason)
	modes := make([]string, 0, len(d.Predicted))
	for m := range d.Predicted {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	for _, m := range modes {
		fmt.Printf("  predicted %-12s %s\n", m+":", d.Predicted[m].Round(time.Millisecond))
	}
	fmt.Printf("  actual    %-12s %s\n", d.Mode+":", res.Wall.Round(time.Millisecond))
	return res
}

// resumePageRank simulates a process restart of the incremental
// iterative engine: drop the System, open a second one over the same
// WorkDir, reattach to the preserved computation with OpenIncremental,
// and refresh a further delta — the durable state stores, CPC
// baselines, and MRBG-Stores carry the computation across process
// death, and the per-iteration checkpoints flush only dirty partitions.
// The planner's ledger also survives under the WorkDir, so this second
// refresh plans against the cost model the first process warmed.
func resumePageRank(sysOpts i2mr.Options, spec core.Spec, cfg i2mr.IncrementalConfig, current []kv.Pair, n int, deltaFrac float64, planMode string, ft float64) {
	sys2, err := i2mr.New(sysOpts)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := sys2.OpenIncremental(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	deltas2, _ := datagen.Mutate(3, current, datagen.MutateOptions{
		ModifyFraction: deltaFrac, Rewrite: datagen.RewireGraphValue(n),
	})
	if err := sys2.WriteDeltas("delta-2", deltas2); err != nil {
		log.Fatal(err)
	}
	planner := newPlanner(sys2, "pagerank", ft)
	engines := map[string]i2mr.Refresher{
		i2mr.ModeRecompute:   resumed.FullRefresher(),
		i2mr.ModeIncremental: resumed,
	}
	ref := plannedRefresh(planner, engines, planMode, "delta-2", "", int64(len(deltas2)), int64(len(current)), ft)
	fmt.Printf("pagerank %s refresh after restart (%d delta records): %d iterations in %s (converged=%v)\n",
		ref.Mode, ref.DeltaRecords, ref.Iterations, ref.Wall.Round(time.Millisecond), ref.Converged)
	fmt.Printf("  state checkpoints: dirty partitions %d, groups flushed %d, segments %d, compactions %d\n",
		ref.Report.Counter(metrics.CounterStateDirtyPartitions),
		ref.Report.Counter(metrics.CounterStateGroupsFlushed),
		ref.Report.Counter(metrics.CounterStateSegments),
		ref.Report.Counter(metrics.CounterStateCompactions))
}

// runOneStep drives the one-step engine end to end: initial job, a
// planner-dispatched refresh, then a simulated process restart
// (OpenOneStep over the same WorkDir) followed by another refresh —
// proving the preserved MRBG and result stores carry the computation
// across process death. The planner's recompute arm is a fresh initial
// job over the merged corpus, bound as a RefresherFunc.
func runOneStep(sys *i2mr.System, sysOpts i2mr.Options, n int, deltaFrac float64, shuffleMem int64, planMode string) {
	if planMode == i2mr.ModeIncremental {
		log.Fatal("-plan incremental applies to the iterative apps; wordcount refreshes are recompute or onestep")
	}
	const vocab, wordsPerTweet = 200, 8
	corpus := datagen.Tweets(1, n, vocab, wordsPerTweet)
	if err := sys.WritePairs("tweets", corpus); err != nil {
		log.Fatal(err)
	}
	job := apps.FineGrainWordCountJob("wordcount")
	runner, err := sys.NewOneStep(job)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if _, err := runner.RunInitial("tweets", "wc-v1"); err != nil {
		log.Fatal(err)
	}
	initialWall := time.Since(start)
	outs, err := runner.Outputs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wordcount initial: %d documents -> %d words in %s\n",
		n, len(outs), initialWall.Round(time.Millisecond))

	planner := newPlanner(sys, "wordcount", 0)
	if err := planner.Observe(i2mr.Observation{Mode: i2mr.ModeRecompute, Wall: initialWall}); err != nil {
		log.Fatal(err)
	}

	// The recompute arm recomputes from scratch over the current merged
	// corpus (cur tracks deltas as they are applied below).
	cur := corpus
	recomputes := 0
	recompute := &i2mr.RefresherFunc{
		Mode: i2mr.ModeRecompute,
		Fn: func(deltaInput, output string) (*i2mr.Report, int64, error) {
			recomputes++
			name := fmt.Sprintf("wordcount-recomp-%d", recomputes)
			path := fmt.Sprintf("tweets-merged-%d", recomputes)
			if err := sys.WritePairs(path, cur); err != nil {
				return nil, 0, err
			}
			fresh, err := sys.NewOneStep(apps.FineGrainWordCountJob(name))
			if err != nil {
				return nil, 0, err
			}
			defer fresh.Close()
			rep, err := fresh.RunInitial(path, output)
			if err != nil {
				return nil, 0, err
			}
			return rep, int64(len(cur)), nil
		},
	}

	deltas, mutated := datagen.Mutate(2, corpus, datagen.MutateOptions{
		ModifyFraction: deltaFrac,
		Rewrite: func(rng *rand.Rand, key, value string) string {
			return value + fmt.Sprintf(" w%04d", rng.Intn(vocab))
		},
	})
	cur = mutated
	if err := sys.WriteDeltas("delta-1", deltas); err != nil {
		log.Fatal(err)
	}
	engines := map[string]i2mr.Refresher{
		i2mr.ModeRecompute: recompute,
		i2mr.ModeOneStep:   runner,
	}
	ref := plannedRefresh(planner, engines, planMode, "delta-1", "wc-v2", int64(len(deltas)), int64(len(cur)), 0)
	printOneStepRefresh("refresh", ref, shuffleMem)

	// Simulated restart: drop the runner, open a second System over the
	// same WorkDir, and reattach to the preserved state. The planner's
	// ledger survives under the WorkDir too.
	if err := runner.Close(); err != nil {
		log.Fatal(err)
	}
	sys2, err := i2mr.New(sysOpts)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := sys2.OpenOneStep(job)
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	more := datagen.AppendTweets(3, corpus, deltaFrac, vocab, wordsPerTweet)
	for _, d := range more { // AppendTweets is insert-only
		cur = append(cur, i2mr.Pair{Key: d.Key, Value: d.Value})
	}
	if err := sys2.WriteDeltas("delta-2", more); err != nil {
		log.Fatal(err)
	}
	planner2 := newPlanner(sys2, "wordcount", 0)
	engines2 := map[string]i2mr.Refresher{
		i2mr.ModeRecompute: recompute,
		i2mr.ModeOneStep:   resumed,
	}
	ref = plannedRefresh(planner2, engines2, planMode, "delta-2", "wc-v3", int64(len(more)), int64(len(cur)), 0)
	printOneStepRefresh("refresh after restart", ref, shuffleMem)
}

func printOneStepRefresh(label string, res *i2mr.RefreshResult, shuffleMem int64) {
	fmt.Printf("wordcount %s [%s] (%d delta records): %s\n",
		label, res.Mode, res.DeltaRecords, res.Wall.Round(time.Millisecond))
	rep := res.Report
	fmt.Printf("  result store: dirty partitions %d, rewritten %d B, segments %d, compactions %d\n",
		rep.Counter(metrics.CounterResultDirtyPartitions),
		rep.Counter(metrics.CounterResultBytesRewritten),
		rep.Counter(metrics.CounterResultSegments),
		rep.Counter(metrics.CounterResultCompactions))
	if shuffleMem > 0 {
		fmt.Printf("  delta shuffle: budget %d B, spilled %d runs / %d B\n", shuffleMem,
			rep.Counter(metrics.CounterSpillRuns), rep.Counter(metrics.CounterSpillBytes))
	}
}
