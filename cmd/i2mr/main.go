// Command i2mr runs one application end to end on the simulated
// cluster: generate (or load) a dataset, compute the initial result,
// apply a delta, refresh incrementally, and print run statistics.
//
// The iterative apps (pagerank, sssp, kmeans, gimv) drive the
// incremental iterative engine; pagerank additionally refreshes a
// second delta after a simulated process restart via
// System.OpenIncremental, proving the durable state stores and
// preserved MRBGraph carry the computation across process death.
// wordcount drives the one-step engine (fine-grain MRBGraph
// preservation plus the durable result store), including a RunDelta
// after a simulated restart via System.OpenOneStep.
//
// Usage:
//
//	i2mr -app pagerank|sssp|kmeans|gimv|wordcount [-n N] [-delta F] [-nodes K]
//	     [-shards S] [-shuffle-mem B] [-result-compact T]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	i2mr "i2mapreduce"
	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
)

func main() {
	app := flag.String("app", "pagerank", "application: pagerank, sssp, kmeans, gimv, wordcount (one-step)")
	n := flag.Int("n", 5000, "dataset size (vertices / points / matrix blocks x16)")
	deltaFrac := flag.Float64("delta", 0.10, "fraction of the input to change")
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	cpc := flag.Bool("cpc", true, "enable change propagation control")
	ft := flag.Float64("ft", 0.001, "CPC filter threshold")
	shards := flag.Int("shards", 1, "MRBG-Store shard files per partition")
	storePar := flag.Int("store-par", 0, "MRBG-Store shard fan-out (0 = GOMAXPROCS)")
	shuffleMem := flag.Int64("shuffle-mem", 0, "shuffle memory budget in bytes per iteration / per delta refresh; beyond it map output spills sorted runs to scratch (0 = unbounded)")
	resultCompact := flag.Int("result-compact", 0, "one-step result store segment count that triggers compaction (0 = default, negative disables)")
	flag.Parse()

	dir, err := os.MkdirTemp("", "i2mr-run-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sysOpts := i2mr.Options{
		WorkDir: dir, Nodes: *nodes,
		StoreShards: *shards, StoreParallelism: *storePar,
		ShuffleMemoryBudget:    *shuffleMem,
		ResultCompactThreshold: *resultCompact,
	}
	sys, err := i2mr.New(sysOpts)
	if err != nil {
		log.Fatal(err)
	}

	if *app == "wordcount" {
		runOneStep(sys, sysOpts, *n, *deltaFrac, *shuffleMem)
		return
	}

	var spec core.Spec
	var data []kv.Pair
	var deltas []kv.Delta
	var mutated []kv.Pair // post-delta dataset (pagerank restart flow)
	cfg := i2mr.Config{
		NumPartitions: *nodes, MaxIterations: 100, Epsilon: 1e-6,
		CPC: *cpc, FilterThreshold: *ft,
	}

	switch *app {
	case "pagerank":
		data = datagen.Graph(1, *n, 4)
		deltas, mutated = datagen.Mutate(2, data, datagen.MutateOptions{
			ModifyFraction: *deltaFrac, Rewrite: datagen.RewireGraphValue(*n),
		})
		spec = apps.PageRankSpec("pagerank", apps.DefaultDamping)
	case "sssp":
		data = datagen.WeightedGraph(1, *n, 4)
		source := data[0].Key
		deltas, _ = datagen.Mutate(2, data, datagen.MutateOptions{
			ModifyFraction: *deltaFrac,
			Rewrite: func(rng *rand.Rand, key, value string) string {
				return value + fmt.Sprintf(";v%07d:0.5", rng.Intn(*n))
			},
		})
		spec = apps.SSSPSpec("sssp", source)
	case "kmeans":
		data = datagen.Points(1, *n, 8, 8)
		cfg.InitialState = map[string]string{
			apps.KmeansStateKey: datagen.InitialCentroids(1, data, 8),
		}
		cfg.Epsilon = 1e-9
		extra := datagen.Points(2, int(float64(*n)**deltaFrac), 8, 8)
		for i, p := range extra {
			deltas = append(deltas, kv.Delta{Key: fmt.Sprintf("x%07d", i), Value: p.Value, Op: kv.OpInsert})
		}
		spec = apps.KmeansSpec("kmeans")
	case "gimv":
		blocks := *n / 16
		if blocks < 2 {
			blocks = 2
		}
		data = datagen.BlockMatrix(1, blocks, 16, 3)
		deltas, _ = datagen.Mutate(2, data, datagen.MutateOptions{
			ModifyFraction: *deltaFrac,
			Rewrite: func(rng *rand.Rand, key, value string) string {
				return value // identity keeps matrix valid; drop nothing
			},
		})
		spec = apps.GIMVSpec("gimv", 16, apps.DefaultDamping)
	default:
		log.Fatalf("unknown app %q", *app)
	}

	if err := sys.WritePairs("input", data); err != nil {
		log.Fatal(err)
	}
	if err := sys.WriteDeltas("delta", deltas); err != nil {
		log.Fatal(err)
	}

	runner, err := sys.NewIncremental(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := runner.RunInitial("input")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s initial: %d iterations in %s (converged=%v, %d state keys)\n",
		*app, res.Iterations, time.Since(start).Round(time.Millisecond), res.Converged, runner.StateKeyCount())
	if *shuffleMem > 0 {
		var runs, bytes int64
		for _, s := range res.PerIter {
			runs += s.Stages.Counters[metrics.CounterSpillRuns]
			bytes += s.Stages.Counters[metrics.CounterSpillBytes]
		}
		fmt.Printf("shuffle: budget %d B, spilled %d runs / %d bytes during the initial job\n", *shuffleMem, runs, bytes)
	}

	start = time.Now()
	inc, err := runner.RunIncremental("delta")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s incremental (%d delta records): %d iterations in %s (converged=%v, MRBG disabled at %d)\n",
		*app, inc.Report.Counter("delta.records"), inc.Iterations,
		time.Since(start).Round(time.Millisecond), inc.Converged, inc.MRBGDisabledAt)
	fmt.Printf("stages: %s\n", inc.Report.Snapshot())

	// Simulated process death: release the runner before a second System
	// reattaches to the preserved state it leaves behind.
	if err := runner.Close(); err != nil {
		log.Fatal(err)
	}
	if *app == "pagerank" {
		resumePageRank(sysOpts, spec, cfg, mutated, *n, *deltaFrac)
	}
}

// resumePageRank simulates a process restart of the incremental
// iterative engine: drop the System, open a second one over the same
// WorkDir, reattach to the preserved computation with OpenIncremental,
// and refresh a further delta — the durable state stores, CPC
// baselines, and MRBG-Stores carry the computation across process
// death, and the per-iteration checkpoints flush only dirty partitions.
func resumePageRank(sysOpts i2mr.Options, spec core.Spec, cfg i2mr.Config, current []kv.Pair, n int, deltaFrac float64) {
	sys2, err := i2mr.New(sysOpts)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := sys2.OpenIncremental(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	deltas2, _ := datagen.Mutate(3, current, datagen.MutateOptions{
		ModifyFraction: deltaFrac, Rewrite: datagen.RewireGraphValue(n),
	})
	if err := sys2.WriteDeltas("delta-2", deltas2); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	inc, err := resumed.RunIncremental("delta-2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pagerank incremental after restart (%d delta records): %d iterations in %s (converged=%v)\n",
		inc.Report.Counter("delta.records"), inc.Iterations,
		time.Since(start).Round(time.Millisecond), inc.Converged)
	fmt.Printf("  state checkpoints: dirty partitions %d, groups flushed %d, segments %d, compactions %d\n",
		inc.Report.Counter(metrics.CounterStateDirtyPartitions),
		inc.Report.Counter(metrics.CounterStateGroupsFlushed),
		inc.Report.Counter(metrics.CounterStateSegments),
		inc.Report.Counter(metrics.CounterStateCompactions))
}

// runOneStep drives the one-step engine end to end: initial job, a
// timed incremental refresh, then a simulated process restart
// (OpenOneStep over the same WorkDir) followed by another refresh —
// proving the preserved MRBG and result stores carry the computation
// across process death.
func runOneStep(sys *i2mr.System, sysOpts i2mr.Options, n int, deltaFrac float64, shuffleMem int64) {
	const vocab, wordsPerTweet = 200, 8
	corpus := datagen.Tweets(1, n, vocab, wordsPerTweet)
	if err := sys.WritePairs("tweets", corpus); err != nil {
		log.Fatal(err)
	}
	job := apps.FineGrainWordCountJob("wordcount")
	runner, err := sys.NewOneStep(job)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if _, err := runner.RunInitial("tweets", "wc-v1"); err != nil {
		log.Fatal(err)
	}
	outs, err := runner.Outputs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wordcount initial: %d documents -> %d words in %s\n",
		n, len(outs), time.Since(start).Round(time.Millisecond))

	deltas, _ := datagen.Mutate(2, corpus, datagen.MutateOptions{
		ModifyFraction: deltaFrac,
		Rewrite: func(rng *rand.Rand, key, value string) string {
			return value + fmt.Sprintf(" w%04d", rng.Intn(vocab))
		},
	})
	if err := sys.WriteDeltas("delta-1", deltas); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	rep, err := runner.RunDelta("delta-1", "wc-v2")
	if err != nil {
		log.Fatal(err)
	}
	printOneStepRefresh("refresh", len(deltas), time.Since(start), rep, shuffleMem)

	// Simulated restart: drop the runner, open a second System over the
	// same WorkDir, and reattach to the preserved state.
	if err := runner.Close(); err != nil {
		log.Fatal(err)
	}
	sys2, err := i2mr.New(sysOpts)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := sys2.OpenOneStep(job)
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	more := datagen.AppendTweets(3, corpus, deltaFrac, vocab, wordsPerTweet)
	if err := sys2.WriteDeltas("delta-2", more); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	rep, err = resumed.RunDelta("delta-2", "wc-v3")
	if err != nil {
		log.Fatal(err)
	}
	printOneStepRefresh("refresh after restart", len(more), time.Since(start), rep, shuffleMem)
}

func printOneStepRefresh(label string, deltaRecords int, wall time.Duration, rep *i2mr.Report, shuffleMem int64) {
	fmt.Printf("wordcount %s (%d delta records): %s\n", label, deltaRecords, wall.Round(time.Millisecond))
	fmt.Printf("  result store: dirty partitions %d, rewritten %d B, segments %d, compactions %d\n",
		rep.Counter(metrics.CounterResultDirtyPartitions),
		rep.Counter(metrics.CounterResultBytesRewritten),
		rep.Counter(metrics.CounterResultSegments),
		rep.Counter(metrics.CounterResultCompactions))
	if shuffleMem > 0 {
		fmt.Printf("  delta shuffle: budget %d B, spilled %d runs / %d B\n", shuffleMem,
			rep.Counter(metrics.CounterSpillRuns), rep.Counter(metrics.CounterSpillBytes))
	}
}
