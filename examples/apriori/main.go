// APriori frequent word-pair mining over a growing tweet stream — the
// paper's one-step evaluation workload (Sec. 8.1.3, 8.2). Candidate
// pairs come from a word-count preprocessing job; the counting job uses
// an accumulator Reduce, so weekly tweet batches fold into the counts
// without touching the historical corpus.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"time"

	i2mr "i2mapreduce"
	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
)

func main() {
	dir, err := os.MkdirTemp("", "i2mr-apriori-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := i2mr.New(i2mr.Options{WorkDir: dir, Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}

	tweets := datagen.Tweets(99, 4000, 150, 8)
	if err := sys.WritePairs("tweets", tweets); err != nil {
		log.Fatal(err)
	}

	// Candidate generation: frequent single words.
	frequent, _, err := apps.FrequentWords(sys.Engine(), "apriori", "tweets", 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d frequent words above support threshold\n", len(frequent))

	runner, err := sys.NewOneStep(apps.APrioriJob("apriori-pairs", frequent))
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()

	start := time.Now()
	if _, err := runner.RunInitial("tweets", "pairs-v1"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial pair counting: %s\n", time.Since(start).Round(time.Millisecond))

	// The last week's tweets arrive (7.9% of the corpus, insert-only).
	delta := datagen.AppendTweets(100, tweets, 0.079, 150, 8)
	if err := sys.WriteDeltas("tweets-delta", delta); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := runner.RunDelta("tweets-delta", "pairs-v2"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental refresh (+%d tweets): %s\n", len(delta), time.Since(start).Round(time.Millisecond))

	fmt.Println("\ntop word pairs:")
	outs, err := runner.Outputs()
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(outs, func(i, j int) bool {
		a, _ := strconv.Atoi(outs[i].Value)
		b, _ := strconv.Atoi(outs[j].Value)
		return a > b
	})
	for i := 0; i < 5 && i < len(outs); i++ {
		fmt.Printf("  %-20s %s\n", outs[i].Key, outs[i].Value)
	}
}
