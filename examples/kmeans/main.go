// Kmeans clustering over an evolving point cloud — the paper's
// all-to-one dependency example (Table 1). The centroid set is a single
// replicated state kv-pair; MRBGraph maintenance stays off (Sec. 5.2),
// and an incremental refresh restarts Lloyd's algorithm from the
// previously converged centroids instead of from scratch.
package main

import (
	"fmt"
	"log"
	"os"

	i2mr "i2mapreduce"
	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
)

func main() {
	dir, err := os.MkdirTemp("", "i2mr-kmeans-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := i2mr.New(i2mr.Options{WorkDir: dir, Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}

	points := datagen.Points(7, 5000, 4, 6)
	initial := datagen.InitialCentroids(7, points, 6)
	if err := sys.WritePairs("points-v1", points); err != nil {
		log.Fatal(err)
	}

	runner, err := sys.NewIncremental(apps.KmeansSpec("kmeans"), i2mr.IncrementalConfig{
		NumPartitions: 4,
		MaxIterations: 50,
		Epsilon:       1e-9,
		InitialState:  map[string]string{apps.KmeansStateKey: initial},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()

	res, err := runner.RunInitial("points-v1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial clustering: %d iterations\n", res.Iterations)
	printCentroids(runner.State()[apps.KmeansStateKey])

	// A new batch of points arrives.
	extra := datagen.Points(8, 500, 4, 6)
	var delta []i2mr.Delta
	for i, p := range extra {
		delta = append(delta, i2mr.Delta{
			Key: fmt.Sprintf("new%05d", i), Value: p.Value, Op: i2mr.OpInsert,
		})
	}
	if err := sys.WriteDeltas("points-delta", delta); err != nil {
		log.Fatal(err)
	}

	inc, err := runner.RunIncremental("points-delta")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincremental refresh after +%d points: %d iterations (vs %d from scratch)\n",
		len(delta), inc.Iterations, res.Iterations)
	printCentroids(runner.State()[apps.KmeansStateKey])
}

func printCentroids(encoded string) {
	cs, err := apps.ParseCentroids(encoded)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cs {
		fmt.Printf("  %s: %v\n", c.ID, c.Vec)
	}
}
