// PageRank on an evolving web graph — the paper's motivating workload
// (Sec. 1). The initial graph is ranked to convergence; the graph then
// evolves (pages and links change) and i2MapReduce refreshes the ranks
// incrementally, re-computing only what the delta touches, with change
// propagation control filtering negligible updates.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	i2mr "i2mapreduce"
	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/metrics"
)

func main() {
	dir, err := os.MkdirTemp("", "i2mr-pagerank-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := i2mr.New(i2mr.Options{WorkDir: dir, Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A ClueWeb-like synthetic web graph.
	graph := datagen.Graph(42, 2000, 4)
	if err := sys.WritePairs("web-v1", graph); err != nil {
		log.Fatal(err)
	}

	runner, err := sys.NewIncremental(apps.PageRankSpec("pagerank", apps.DefaultDamping), i2mr.IncrementalConfig{
		NumPartitions:   4,
		MaxIterations:   60,
		Epsilon:         1e-6,
		CPC:             true,
		FilterThreshold: 0.001,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()

	res, err := runner.RunInitial("web-v1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial run: %d iterations (converged=%v)\n", res.Iterations, res.Converged)
	printTop(runner.State(), 5)

	// The web evolves: 10% of the pages rewire a link.
	deltas, _ := datagen.Mutate(43, graph, datagen.MutateOptions{
		ModifyFraction: 0.10,
		Rewrite:        datagen.RewireGraphValue(2000),
	})
	if err := sys.WriteDeltas("web-delta", deltas); err != nil {
		log.Fatal(err)
	}

	inc, err := runner.RunIncremental("web-delta")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincremental refresh: %d iterations, %d delta records\n",
		inc.Iterations, inc.Report.Counter(metrics.CounterDeltaRecords))
	for _, it := range inc.PerIter {
		fmt.Printf("  iteration %2d: %6d kv-pairs propagated, %5d filtered by CPC (%s)\n",
			it.Iteration, it.Propagated, it.Filtered, it.Duration.Round(1e6))
	}
	fmt.Println("\nrefreshed top pages:")
	printTop(runner.State(), 5)
}

func printTop(state map[string]string, n int) {
	type vr struct {
		v string
		r float64
	}
	var all []vr
	for v, r := range state {
		var f float64
		fmt.Sscanf(r, "%g", &f)
		all = append(all, vr{v, f})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r > all[j].r })
	for i := 0; i < n && i < len(all); i++ {
		fmt.Printf("  #%d %s rank=%.4f\n", i+1, all[i].v, all[i].r)
	}
}
