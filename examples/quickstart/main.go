// Quickstart: incremental WordCount with an accumulator Reduce
// (paper Sec. 3.5). The initial corpus is counted once; when new
// documents arrive, only the delta is processed and counts are folded
// in with integer addition — no re-computation over the old corpus.
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	i2mr "i2mapreduce"
	"i2mapreduce/internal/metrics"
)

func main() {
	dir, err := os.MkdirTemp("", "i2mr-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := i2mr.New(i2mr.Options{WorkDir: dir, Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}

	// The initial corpus.
	docs := []i2mr.Pair{
		{Key: "doc1", Value: "incremental processing keeps results fresh"},
		{Key: "doc2", Value: "mapreduce keeps the programming model simple"},
	}
	if err := sys.WritePairs("docs", docs); err != nil {
		log.Fatal(err)
	}

	// WordCount with an accumulator: counts of the same word combine
	// with +, so only Reduce *outputs* are preserved between runs.
	wc := i2mr.OneStepJob{
		Name: "wordcount",
		Mapper: i2mr.MapperFunc(func(id, text string, emit i2mr.Emit) error {
			for _, w := range strings.Fields(text) {
				emit(w, "1")
			}
			return nil
		}),
		Reducer: i2mr.ReducerFunc(func(w string, vs []string, emit i2mr.Emit) error {
			emit(w, strconv.Itoa(len(vs)))
			return nil
		}),
		Accumulate: func(old, new string) string {
			a, _ := strconv.Atoi(old)
			b, _ := strconv.Atoi(new)
			return strconv.Itoa(a + b)
		},
	}
	runner, err := sys.NewOneStep(wc)
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()

	if _, err := runner.RunInitial("docs", "counts-v1"); err != nil {
		log.Fatal(err)
	}
	initialOuts, err := runner.Outputs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial counts:")
	printCounts(initialOuts)

	// New documents arrive: an insert-only delta.
	delta := []i2mr.Delta{
		{Key: "doc3", Value: "incremental mapreduce", Op: i2mr.OpInsert},
	}
	if err := sys.WriteDeltas("docs-delta", delta); err != nil {
		log.Fatal(err)
	}
	rep, err := runner.RunDelta("docs-delta", "counts-v2")
	if err != nil {
		log.Fatal(err)
	}
	refreshedOuts, err := runner.Outputs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefreshed counts (processed %d delta records, not the whole corpus):\n",
		rep.Counter(metrics.CounterMapRecordsIn))
	printCounts(refreshedOuts)
}

func printCounts(ps []i2mr.Pair) {
	for _, p := range ps {
		fmt.Printf("  %-12s %s\n", p.Key, p.Value)
	}
}
