module i2mapreduce

go 1.23
