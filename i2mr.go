// Package i2mr is the public API of this i2MapReduce reproduction
// (Zhang, Chen, Wang, Yu — "i2MapReduce: Incremental MapReduce for
// Mining Evolving Big Data", ICDE 2016).
//
// A System bundles the simulated substrate (a block-oriented DFS and a
// multi-node cluster, standing in for HDFS and a Hadoop deployment)
// with the three processing engines:
//
//   - System.MapReduce — vanilla MapReduce (paper Sec. 2);
//   - System.NewOneStep — fine-grain incremental one-step processing
//     backed by the MRBG-Store and a durable per-partition result
//     store, with the accumulator-Reduce optimization (Sec. 3);
//     System.OpenOneStep resumes a preserved one-step computation
//     after a process restart;
//   - System.NewIterative — general-purpose iterative processing with
//     structure/state separation and Project (Sec. 4), the "iterMR"
//     engine;
//   - System.NewIncremental — i2MapReduce itself: incremental iterative
//     processing with change propagation control, P_delta detection,
//     and per-iteration checkpointing (Sec. 5-6), backed by durable
//     per-partition state stores; System.OpenIncremental resumes a
//     preserved incremental iterative computation after a process
//     restart.
//
// Both refreshable engines implement the unified Refresher interface:
// one Refresh call consumes a delta input and returns a RefreshResult
// carrying the mode, wall time, and delta size. System.NewPlanner
// builds the cost-aware refresh planner that arbitrates between them
// per refresh (PlannerConfig, Decision, AutoRefresher).
//
// The runners' durable stores are snapshot-isolated, so the online
// serving layer (internal/serve, cmd/i2mr-serve) can answer point
// lookups and batched MultiGets over HTTP while refreshes are in
// flight, flipping atomically to each refresh's results as it commits.
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// architecture.
package i2mr

import (
	"fmt"
	"os"
	"path/filepath"

	"i2mapreduce/internal/blockio"
	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/engine"
	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
	"i2mapreduce/internal/mrbg"
	"i2mapreduce/internal/plan"
	"i2mapreduce/internal/results"
)

// Re-exported record types.
type (
	// Pair is one key-value record.
	Pair = kv.Pair
	// Delta is one '+'/'-' tagged record of a delta input.
	Delta = kv.Delta
	// Op is a delta marker (OpInsert / OpDelete).
	Op = kv.Op
)

// Delta markers.
const (
	OpInsert = kv.OpInsert
	OpDelete = kv.OpDelete
)

// Engine-facing types.
type (
	// Emit passes records out of user Map/Reduce functions.
	Emit = mr.Emit
	// Job is a vanilla MapReduce job description.
	Job = mr.Job
	// Mapper / Reducer carry MapReduce semantics.
	Mapper  = mr.Mapper
	Reducer = mr.Reducer
	// MapperFunc / ReducerFunc adapt plain functions.
	MapperFunc  = mr.MapperFunc
	ReducerFunc = mr.ReducerFunc
	// Report carries stage timings and counters of a run.
	Report = metrics.Report

	// OneStepJob describes an incrementally refreshable one-step
	// computation (Sec. 3).
	OneStepJob = incr.Job
	// OneStepRunner refreshes a OneStepJob across input versions.
	OneStepRunner = incr.Runner

	// Spec describes an iterative algorithm: structure/state kv-pairs,
	// Project, prime Map and prime Reduce (Sec. 4.2).
	Spec = iter.Spec
	// StateGetter exposes current state to the prime Reduce.
	StateGetter = iter.StateGetter
	// IterConfig tunes an iterative (iterMR) run.
	IterConfig = iter.Config
	// IterRunner is the iterMR re-computation engine.
	IterRunner = iter.Runner

	// IncrementalConfig tunes the incremental iterative engine (CPC
	// thresholds, P_delta fallback, checkpointing; Sec. 5-6).
	IncrementalConfig = core.Config
	// IncrementalRunner is i2MapReduce's incremental iterative engine.
	IncrementalRunner = core.Runner
	// Result reports one initial or incremental job.
	Result = core.Result

	// Config is the former name of IncrementalConfig.
	//
	// Deprecated: use IncrementalConfig.
	Config = core.Config
	// Runner is the former name of IncrementalRunner.
	//
	// Deprecated: use IncrementalRunner.
	Runner = core.Runner

	// StoreOptions tunes the MRBG-Store (read strategy, window sizes).
	StoreOptions = mrbg.Options
	// ResultStoreOptions tunes the one-step engine's durable result
	// store (segment compaction threshold).
	ResultStoreOptions = results.Options
)

// Unified refresh surface. Both refreshable engines — OneStepRunner
// (one-step delta) and IncrementalRunner (incremental iterative, plus
// its FullRefresher recompute arm) — implement Refresher, so callers
// and the planner can dispatch refreshes without caring which engine
// is behind them.
type (
	// Refresher runs one refresh of a preserved computation from a
	// delta input.
	Refresher = engine.Refresher
	// RefreshResult is the unified outcome of one Refresh call.
	RefreshResult = engine.RefreshResult
	// RefreshStats aggregates a Refresher's observed refresh history.
	RefreshStats = engine.Stats
	// RefresherFunc adapts a closure into a Refresher: Mode names what
	// the closure runs, Fn returns the refresh's report and consumed
	// delta size. Useful for binding an ad-hoc recompute arm to the
	// planner.
	RefresherFunc = engine.Func
)

// Refresh modes, as reported in RefreshResult.Mode and arbitrated by
// the planner.
const (
	ModeRecompute   = engine.ModeRecompute
	ModeOneStep     = engine.ModeOneStep
	ModeIncremental = engine.ModeIncremental
)

// Cost-aware refresh planning (internal/plan).
type (
	// Planner owns a durable per-job cost ledger and chooses the
	// refresh mode (and CPC threshold) before each refresh.
	Planner = plan.Planner
	// PlannerConfig parameterizes a Planner.
	PlannerConfig = plan.Config
	// Decision is the planner's choice for one upcoming refresh.
	Decision = plan.Decision
	// Observation is the cost evidence of one completed refresh.
	Observation = plan.Observation
	// AutoRefresher dispatches refreshes through a Planner across a set
	// of mode-bound Refreshers, feeding observed costs back into the
	// ledger.
	AutoRefresher = plan.Auto
)

// Options configures a System.
type Options struct {
	// WorkDir hosts the DFS and node scratch directories. Required.
	WorkDir string
	// Nodes is the simulated cluster size. Defaults to 4.
	Nodes int
	// SlotsPerNode is the per-node task parallelism. Defaults to 2.
	SlotsPerNode int
	// BlockSize is the DFS block capacity. Defaults to 1 MiB.
	BlockSize int64
	// StoreShards is the default MRBG-Store shard count for runners
	// created by this System; jobs that set StoreOpts.Shards themselves
	// win. Defaults to the store's own default (1).
	StoreShards int
	// StoreParallelism bounds the per-store shard fan-out; jobs that
	// set StoreOpts.Parallelism win. Defaults to GOMAXPROCS.
	StoreParallelism int
	// ShuffleMemoryBudget is the default per-iteration memory budget of
	// the iterative engines' streaming shuffle: beyond it, map output
	// spills to node-local scratch as sorted runs ("shuffle.spill.runs"
	// / "shuffle.spill.bytes" count the spills). Runners whose config
	// sets the budget themselves win: a positive config value overrides
	// this default, and a negative one explicitly opts the runner out
	// of spilling. 0 here (the default) keeps all intermediate data in
	// memory.
	ShuffleMemoryBudget int64
	// ResultCompactThreshold is the default segment count at which the
	// durable per-partition stores compact during Checkpoint — the
	// one-step engine's result stores and the incremental iterative
	// engine's state stores alike; jobs/configs that set their own
	// threshold win. 0 uses the store default; negative disables
	// compaction.
	ResultCompactThreshold int
	// SkewRatio enables hot-key detection in the refreshable engines'
	// shuffles: a reduce key whose record share exceeds this fraction
	// of its partition's stream is split across sub-keys and re-merged
	// reduce-side ("shuffle.hotkeys.*" counters). 0 (the default)
	// disables detection; jobs/configs that set their own ratio win.
	SkewRatio float64
	// SkewFanOut is the number of sub-keys a detected hot key is split
	// across (default 8 when SkewRatio is set). Meaningful only with
	// SkewRatio > 0.
	SkewFanOut int
	// SegmentBlockBytes is the default target decoded bytes per block
	// in the durable stores' v2 segment files (one-step result stores
	// and incremental state stores alike); jobs/configs that set their
	// own value win. 0 uses the store default (32 KiB).
	SegmentBlockBytes int
	// SegmentCompression is the default per-block codec for newly
	// written segments: "" or "none" (raw), or "flate". Reads
	// auto-detect, so the knob can change between runs freely.
	SegmentCompression string
	// BloomBitsPerKey is the default per-segment bloom filter sizing
	// (bits per key). 0 uses the store default (10, ~1% false
	// positives); negative disables the filters.
	BloomBitsPerKey int
	// IOParallelism is the default bound on the refreshable engines'
	// concurrent per-partition durability I/O — checkpoint flushes,
	// store opens/recovery, checkpoint restores, and output
	// materialization all fan out across partitions on at most this
	// many goroutines. Jobs/configs that set their own value win.
	// 0 (the default) means GOMAXPROCS; 1 recovers the serial behavior.
	IOParallelism int
	// BackgroundCompaction moves the durable stores' threshold
	// compaction off the checkpoint critical path onto a background
	// scheduler in every runner this System creates: a refresh
	// checkpoint then pays only the memtable flush and the manifest
	// commit, and compaction runs between refreshes. Off by default
	// (compaction stays inline in Checkpoint).
	BackgroundCompaction bool
}

// Validate rejects contradictory or out-of-range Options. New calls it;
// it is exported so callers can check configuration up front.
func (o Options) Validate() error {
	if o.WorkDir == "" {
		return fmt.Errorf("i2mr: Options.WorkDir is required")
	}
	if o.Nodes < 0 {
		return fmt.Errorf("i2mr: Options.Nodes = %d, want >= 0 (0 means the default)", o.Nodes)
	}
	if o.SlotsPerNode < 0 {
		return fmt.Errorf("i2mr: Options.SlotsPerNode = %d, want >= 0 (0 means the default)", o.SlotsPerNode)
	}
	if o.BlockSize < 0 {
		return fmt.Errorf("i2mr: Options.BlockSize = %d, want >= 0 (0 means the default)", o.BlockSize)
	}
	if o.StoreShards < 0 {
		return fmt.Errorf("i2mr: Options.StoreShards = %d, want >= 0 (0 means the default)", o.StoreShards)
	}
	if o.StoreParallelism < 0 {
		return fmt.Errorf("i2mr: Options.StoreParallelism = %d, want >= 0 (0 means the default)", o.StoreParallelism)
	}
	if o.ResultCompactThreshold == 1 {
		return fmt.Errorf("i2mr: Options.ResultCompactThreshold = 1 would compact after every segment; use 0 for the default or a negative value to disable compaction")
	}
	if o.SkewRatio < 0 || o.SkewRatio >= 1 {
		return fmt.Errorf("i2mr: Options.SkewRatio = %g, want 0 (off) or (0, 1)", o.SkewRatio)
	}
	if o.SkewFanOut < 0 || o.SkewFanOut == 1 {
		return fmt.Errorf("i2mr: Options.SkewFanOut = %d, want 0 (default) or >= 2", o.SkewFanOut)
	}
	if o.SkewFanOut >= 2 && o.SkewRatio == 0 {
		return fmt.Errorf("i2mr: Options.SkewFanOut = %d is contradictory with SkewRatio = 0 (detection disabled); set SkewRatio to enable hot-key splitting", o.SkewFanOut)
	}
	if o.SegmentBlockBytes < 0 {
		return fmt.Errorf("i2mr: Options.SegmentBlockBytes = %d, want >= 0 (0 means the default)", o.SegmentBlockBytes)
	}
	if o.IOParallelism < 0 {
		return fmt.Errorf("i2mr: Options.IOParallelism = %d, want >= 0 (0 means the default)", o.IOParallelism)
	}
	if _, err := blockio.ParseCodec(o.SegmentCompression); err != nil {
		return fmt.Errorf("i2mr: Options.SegmentCompression: %w", err)
	}
	return nil
}

// defaults captures the System-wide knobs New resolved from Options,
// and fills them into jobs/configs that left the corresponding field
// unset. One resolver replaces the former per-engine filler trio.
type defaults struct {
	storeShards      int
	storeParallelism int
	shuffleBudget    int64
	resultCompact    int
	skewRatio        float64
	skewFanOut       int
	segBlockBytes    int
	segCompression   string
	segBloomBits     int
	ioParallelism    int
	bgCompaction     bool
}

func (d defaults) store(opts *mrbg.Options) {
	if opts.Shards == 0 {
		opts.Shards = d.storeShards
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = d.storeParallelism
	}
}

func (d defaults) shuffle(budget *int64) {
	if *budget == 0 {
		*budget = d.shuffleBudget
	}
}

func (d defaults) compact(threshold *int) {
	if *threshold == 0 {
		*threshold = d.resultCompact
	}
}

func (d defaults) skew(ratio *float64, fanOut *int) {
	if *ratio == 0 {
		*ratio = d.skewRatio
	}
	if *fanOut == 0 {
		*fanOut = d.skewFanOut
	}
}

func (d defaults) segFormat(blockBytes *int, compression *string, bloomBits *int) {
	if *blockBytes == 0 {
		*blockBytes = d.segBlockBytes
	}
	if *compression == "" {
		*compression = d.segCompression
	}
	if *bloomBits == 0 {
		*bloomBits = d.segBloomBits
	}
}

func (d defaults) durability(ioPar *int, bgCompact *bool) {
	if *ioPar == 0 {
		*ioPar = d.ioParallelism
	}
	if d.bgCompaction {
		*bgCompact = true
	}
}

func (d defaults) oneStep(job *OneStepJob) {
	d.store(&job.StoreOpts)
	d.compact(&job.ResultOpts.CompactThreshold)
	d.segFormat(&job.ResultOpts.BlockBytes, &job.ResultOpts.Compression, &job.ResultOpts.BloomBitsPerKey)
	d.shuffle(&job.ShuffleMemoryBudget)
	d.skew(&job.SkewRatio, &job.SkewFanOut)
	d.durability(&job.IOParallelism, &job.BackgroundCompaction)
}

func (d defaults) iterative(cfg *IterConfig) {
	d.shuffle(&cfg.ShuffleMemoryBudget)
}

func (d defaults) incremental(cfg *IncrementalConfig) {
	d.store(&cfg.StoreOpts)
	d.shuffle(&cfg.ShuffleMemoryBudget)
	d.compact(&cfg.StateCompactThreshold)
	d.segFormat(&cfg.SegmentBlockBytes, &cfg.SegmentCompression, &cfg.BloomBitsPerKey)
	d.skew(&cfg.SkewRatio, &cfg.SkewFanOut)
	d.durability(&cfg.IOParallelism, &cfg.BackgroundCompaction)
}

// System is a ready-to-use i2MapReduce deployment.
type System struct {
	eng     *mr.Engine
	workDir string
	def     defaults
}

// New builds a System under opts.WorkDir.
func New(opts Options) (*System, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 4
	}
	if err := os.MkdirAll(opts.WorkDir, 0o755); err != nil {
		return nil, err
	}
	fs, err := dfs.New(dfs.Config{
		Root:      filepath.Join(opts.WorkDir, "dfs"),
		BlockSize: opts.BlockSize,
		Nodes:     opts.Nodes,
	})
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:        opts.Nodes,
		SlotsPerNode: opts.SlotsPerNode,
		ScratchRoot:  filepath.Join(opts.WorkDir, "scratch"),
	})
	if err != nil {
		return nil, err
	}
	return &System{
		eng:     mr.NewEngine(fs, cl),
		workDir: opts.WorkDir,
		def: defaults{
			storeShards:      opts.StoreShards,
			storeParallelism: opts.StoreParallelism,
			shuffleBudget:    opts.ShuffleMemoryBudget,
			resultCompact:    opts.ResultCompactThreshold,
			skewRatio:        opts.SkewRatio,
			skewFanOut:       opts.SkewFanOut,
			segBlockBytes:    opts.SegmentBlockBytes,
			segCompression:   opts.SegmentCompression,
			segBloomBits:     opts.BloomBitsPerKey,
			ioParallelism:    opts.IOParallelism,
			bgCompaction:     opts.BackgroundCompaction,
		},
	}, nil
}

// WritePairs stores records as a DFS file.
func (s *System) WritePairs(path string, ps []Pair) error {
	return s.eng.FS().WriteAllPairs(path, ps)
}

// WriteDeltas stores a delta input as a DFS file.
func (s *System) WriteDeltas(path string, ds []Delta) error {
	return s.eng.FS().WriteAllDeltas(path, ds)
}

// ReadPairs loads a DFS file.
func (s *System) ReadPairs(path string) ([]Pair, error) {
	return s.eng.FS().ReadAllPairs(path)
}

// ReadOutput concatenates a job's reduce part files.
func (s *System) ReadOutput(output string, numReducers int) ([]Pair, error) {
	return s.eng.ReadOutput(output, numReducers)
}

// MapReduce runs one vanilla MapReduce job.
func (s *System) MapReduce(job Job) (*Report, error) {
	return s.eng.Run(job)
}

// NewOneStep prepares a fine-grain incremental one-step runner:
// RunInitial once, then RunDelta (or Refresh) per refresh.
func (s *System) NewOneStep(job OneStepJob) (*OneStepRunner, error) {
	s.def.oneStep(&job)
	return incr.NewRunner(s.eng, job)
}

// OpenOneStep reattaches a one-step runner to the durable state a
// previous process preserved under the same WorkDir (MRBG-Stores and
// result stores), so RunDelta keeps refreshing a computation across
// process restarts without re-running the initial job. The job must use
// the same Name, NumReducers, and cluster size it originally ran with.
func (s *System) OpenOneStep(job OneStepJob) (*OneStepRunner, error) {
	s.def.oneStep(&job)
	return incr.Open(s.eng, job)
}

// NewIterative prepares an iterMR (re-computation) runner.
func (s *System) NewIterative(spec Spec, cfg IterConfig) (*IterRunner, error) {
	s.def.iterative(&cfg)
	return iter.NewRunner(s.eng, spec, cfg)
}

// NewIncremental prepares the i2MapReduce incremental iterative runner:
// RunInitial once, then RunIncremental (or Refresh) per delta.
func (s *System) NewIncremental(spec Spec, cfg IncrementalConfig) (*IncrementalRunner, error) {
	s.def.incremental(&cfg)
	return core.NewRunner(s.eng, spec, cfg)
}

// OpenIncremental reattaches an incremental iterative runner to the
// durable state a previous process preserved under the same WorkDir
// (per-partition MRBG-Stores, state stores, CPC baselines, and cached
// structure partitions), so RunIncremental keeps refreshing a
// computation across process restarts without re-running the initial
// job. The computation must use the same spec Name, partition count,
// and cluster size it originally ran with; a refresh the previous
// process left half-applied is refused.
func (s *System) OpenIncremental(spec Spec, cfg IncrementalConfig) (*IncrementalRunner, error) {
	s.def.incremental(&cfg)
	return core.Open(s.eng, spec, cfg)
}

// NewPlanner opens (or initializes) the cost-aware refresh planner for
// the named job. When cfg.Path is empty, the ledger lives at
// <WorkDir>/plan/<name>.json so the cost model survives restarts
// alongside the engines' durable stores.
func (s *System) NewPlanner(name string, cfg PlannerConfig) (*Planner, error) {
	if cfg.Path == "" {
		if name == "" {
			return nil, fmt.Errorf("i2mr: NewPlanner needs a job name (or an explicit PlannerConfig.Path)")
		}
		dir := filepath.Join(s.workDir, "plan")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		cfg.Path = filepath.Join(dir, name+".json")
	}
	return plan.New(cfg)
}

// Engine exposes the underlying MapReduce engine for advanced use
// (bench harnesses, custom schedulers).
func (s *System) Engine() *mr.Engine { return s.eng }
