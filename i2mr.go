// Package i2mr is the public API of this i2MapReduce reproduction
// (Zhang, Chen, Wang, Yu — "i2MapReduce: Incremental MapReduce for
// Mining Evolving Big Data", ICDE 2016).
//
// A System bundles the simulated substrate (a block-oriented DFS and a
// multi-node cluster, standing in for HDFS and a Hadoop deployment)
// with the three processing engines:
//
//   - System.MapReduce — vanilla MapReduce (paper Sec. 2);
//   - System.NewOneStep — fine-grain incremental one-step processing
//     backed by the MRBG-Store and a durable per-partition result
//     store, with the accumulator-Reduce optimization (Sec. 3);
//     System.OpenOneStep resumes a preserved one-step computation
//     after a process restart;
//   - System.NewIterative — general-purpose iterative processing with
//     structure/state separation and Project (Sec. 4), the "iterMR"
//     engine;
//   - System.NewIncremental — i2MapReduce itself: incremental iterative
//     processing with change propagation control, P_delta detection,
//     and per-iteration checkpointing (Sec. 5-6), backed by durable
//     per-partition state stores; System.OpenIncremental resumes a
//     preserved incremental iterative computation after a process
//     restart.
//
// The runners' durable stores are snapshot-isolated, so the online
// serving layer (internal/serve, cmd/i2mr-serve) can answer point
// lookups and batched MultiGets over HTTP while refreshes are in
// flight, flipping atomically to each refresh's results as it commits.
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// architecture.
package i2mr

import (
	"errors"
	"os"
	"path/filepath"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
	"i2mapreduce/internal/mrbg"
	"i2mapreduce/internal/results"
)

// Re-exported record types.
type (
	// Pair is one key-value record.
	Pair = kv.Pair
	// Delta is one '+'/'-' tagged record of a delta input.
	Delta = kv.Delta
	// Op is a delta marker (OpInsert / OpDelete).
	Op = kv.Op
)

// Delta markers.
const (
	OpInsert = kv.OpInsert
	OpDelete = kv.OpDelete
)

// Engine-facing types.
type (
	// Emit passes records out of user Map/Reduce functions.
	Emit = mr.Emit
	// Job is a vanilla MapReduce job description.
	Job = mr.Job
	// Mapper / Reducer carry MapReduce semantics.
	Mapper  = mr.Mapper
	Reducer = mr.Reducer
	// MapperFunc / ReducerFunc adapt plain functions.
	MapperFunc  = mr.MapperFunc
	ReducerFunc = mr.ReducerFunc
	// Report carries stage timings and counters of a run.
	Report = metrics.Report

	// OneStepJob describes an incrementally refreshable one-step
	// computation (Sec. 3).
	OneStepJob = incr.Job
	// OneStepRunner refreshes a OneStepJob across input versions.
	OneStepRunner = incr.Runner

	// Spec describes an iterative algorithm: structure/state kv-pairs,
	// Project, prime Map and prime Reduce (Sec. 4.2).
	Spec = iter.Spec
	// StateGetter exposes current state to the prime Reduce.
	StateGetter = iter.StateGetter
	// IterConfig tunes an iterative (iterMR) run.
	IterConfig = iter.Config
	// IterRunner is the iterMR re-computation engine.
	IterRunner = iter.Runner

	// Config tunes the incremental iterative engine (CPC thresholds,
	// P_delta fallback, checkpointing; Sec. 5-6).
	Config = core.Config
	// Runner is i2MapReduce's incremental iterative engine.
	Runner = core.Runner
	// Result reports one initial or incremental job.
	Result = core.Result

	// StoreOptions tunes the MRBG-Store (read strategy, window sizes).
	StoreOptions = mrbg.Options
	// ResultStoreOptions tunes the one-step engine's durable result
	// store (segment compaction threshold).
	ResultStoreOptions = results.Options
)

// Options configures a System.
type Options struct {
	// WorkDir hosts the DFS and node scratch directories. Required.
	WorkDir string
	// Nodes is the simulated cluster size. Defaults to 4.
	Nodes int
	// SlotsPerNode is the per-node task parallelism. Defaults to 2.
	SlotsPerNode int
	// BlockSize is the DFS block capacity. Defaults to 1 MiB.
	BlockSize int64
	// StoreShards is the default MRBG-Store shard count for runners
	// created by this System; jobs that set StoreOpts.Shards themselves
	// win. Defaults to the store's own default (1).
	StoreShards int
	// StoreParallelism bounds the per-store shard fan-out; jobs that
	// set StoreOpts.Parallelism win. Defaults to GOMAXPROCS.
	StoreParallelism int
	// ShuffleMemoryBudget is the default per-iteration memory budget of
	// the iterative engines' streaming shuffle: beyond it, map output
	// spills to node-local scratch as sorted runs ("shuffle.spill.runs"
	// / "shuffle.spill.bytes" count the spills). Runners whose config
	// sets the budget themselves win: a positive config value overrides
	// this default, and a negative one explicitly opts the runner out
	// of spilling. 0 here (the default) keeps all intermediate data in
	// memory.
	ShuffleMemoryBudget int64
	// ResultCompactThreshold is the default segment count at which the
	// durable per-partition stores compact during Checkpoint — the
	// one-step engine's result stores and the incremental iterative
	// engine's state stores alike; jobs/configs that set their own
	// threshold win. 0 uses the store default; negative disables
	// compaction.
	ResultCompactThreshold int
}

// System is a ready-to-use i2MapReduce deployment.
type System struct {
	eng              *mr.Engine
	storeShards      int
	storeParallelism int
	shuffleBudget    int64
	resultCompact    int
}

// New builds a System under opts.WorkDir.
func New(opts Options) (*System, error) {
	if opts.WorkDir == "" {
		return nil, errors.New("i2mr: Options.WorkDir is required")
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 4
	}
	if err := os.MkdirAll(opts.WorkDir, 0o755); err != nil {
		return nil, err
	}
	fs, err := dfs.New(dfs.Config{
		Root:      filepath.Join(opts.WorkDir, "dfs"),
		BlockSize: opts.BlockSize,
		Nodes:     opts.Nodes,
	})
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:        opts.Nodes,
		SlotsPerNode: opts.SlotsPerNode,
		ScratchRoot:  filepath.Join(opts.WorkDir, "scratch"),
	})
	if err != nil {
		return nil, err
	}
	return &System{
		eng:              mr.NewEngine(fs, cl),
		storeShards:      opts.StoreShards,
		storeParallelism: opts.StoreParallelism,
		shuffleBudget:    opts.ShuffleMemoryBudget,
		resultCompact:    opts.ResultCompactThreshold,
	}, nil
}

// applyStoreDefaults fills unset store knobs from the System's
// defaults.
func (s *System) applyStoreDefaults(opts *mrbg.Options) {
	if opts.Shards == 0 {
		opts.Shards = s.storeShards
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = s.storeParallelism
	}
}

// WritePairs stores records as a DFS file.
func (s *System) WritePairs(path string, ps []Pair) error {
	return s.eng.FS().WriteAllPairs(path, ps)
}

// WriteDeltas stores a delta input as a DFS file.
func (s *System) WriteDeltas(path string, ds []Delta) error {
	return s.eng.FS().WriteAllDeltas(path, ds)
}

// ReadPairs loads a DFS file.
func (s *System) ReadPairs(path string) ([]Pair, error) {
	return s.eng.FS().ReadAllPairs(path)
}

// ReadOutput concatenates a job's reduce part files.
func (s *System) ReadOutput(output string, numReducers int) ([]Pair, error) {
	return s.eng.ReadOutput(output, numReducers)
}

// MapReduce runs one vanilla MapReduce job.
func (s *System) MapReduce(job Job) (*Report, error) {
	return s.eng.Run(job)
}

// applyOneStepDefaults fills unset one-step knobs from the System's
// defaults.
func (s *System) applyOneStepDefaults(job *OneStepJob) {
	s.applyStoreDefaults(&job.StoreOpts)
	if job.ResultOpts.CompactThreshold == 0 {
		job.ResultOpts.CompactThreshold = s.resultCompact
	}
	if job.ShuffleMemoryBudget == 0 {
		job.ShuffleMemoryBudget = s.shuffleBudget
	}
}

// NewOneStep prepares a fine-grain incremental one-step runner:
// RunInitial once, then RunDelta per refresh.
func (s *System) NewOneStep(job OneStepJob) (*OneStepRunner, error) {
	s.applyOneStepDefaults(&job)
	return incr.NewRunner(s.eng, job)
}

// OpenOneStep reattaches a one-step runner to the durable state a
// previous process preserved under the same WorkDir (MRBG-Stores and
// result stores), so RunDelta keeps refreshing a computation across
// process restarts without re-running the initial job. The job must use
// the same Name, NumReducers, and cluster size it originally ran with.
func (s *System) OpenOneStep(job OneStepJob) (*OneStepRunner, error) {
	s.applyOneStepDefaults(&job)
	return incr.Open(s.eng, job)
}

// NewIterative prepares an iterMR (re-computation) runner.
func (s *System) NewIterative(spec Spec, cfg IterConfig) (*IterRunner, error) {
	if cfg.ShuffleMemoryBudget == 0 {
		cfg.ShuffleMemoryBudget = s.shuffleBudget
	}
	return iter.NewRunner(s.eng, spec, cfg)
}

// applyIncrementalDefaults fills unset incremental-engine knobs from
// the System's defaults.
func (s *System) applyIncrementalDefaults(cfg *Config) {
	s.applyStoreDefaults(&cfg.StoreOpts)
	if cfg.ShuffleMemoryBudget == 0 {
		cfg.ShuffleMemoryBudget = s.shuffleBudget
	}
	if cfg.StateCompactThreshold == 0 {
		cfg.StateCompactThreshold = s.resultCompact
	}
}

// NewIncremental prepares the i2MapReduce incremental iterative runner:
// RunInitial once, then RunIncremental per delta.
func (s *System) NewIncremental(spec Spec, cfg Config) (*Runner, error) {
	s.applyIncrementalDefaults(&cfg)
	return core.NewRunner(s.eng, spec, cfg)
}

// OpenIncremental reattaches an incremental iterative runner to the
// durable state a previous process preserved under the same WorkDir
// (per-partition MRBG-Stores, state stores, CPC baselines, and cached
// structure partitions), so RunIncremental keeps refreshing a
// computation across process restarts without re-running the initial
// job. The computation must use the same spec Name, partition count,
// and cluster size it originally ran with; a refresh the previous
// process left half-applied is refused.
func (s *System) OpenIncremental(spec Spec, cfg Config) (*Runner, error) {
	s.applyIncrementalDefaults(&cfg)
	return core.Open(s.eng, spec, cfg)
}

// Engine exposes the underlying MapReduce engine for advanced use
// (bench harnesses, custom schedulers).
func (s *System) Engine() *mr.Engine { return s.eng }
