package i2mr

import (
	"strconv"
	"strings"
	"testing"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
)

// TestPublicAPIEndToEnd drives every engine through the public facade:
// vanilla MapReduce, incremental one-step, iterative, and incremental
// iterative.
func TestPublicAPIEndToEnd(t *testing.T) {
	sys, err := New(Options{WorkDir: t.TempDir(), Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Vanilla MapReduce: word count.
	if err := sys.WritePairs("docs", []Pair{
		{Key: "d1", Value: "a b a"},
		{Key: "d2", Value: "b c"},
	}); err != nil {
		t.Fatal(err)
	}
	_, err = sys.MapReduce(Job{
		Name: "wc", Input: "docs", Output: "wc-out", NumReducers: 2,
		Mapper: MapperFunc(func(k, v string, emit Emit) error {
			for _, w := range strings.Fields(v) {
				emit(w, "1")
			}
			return nil
		}),
		Reducer: ReducerFunc(func(k string, vs []string, emit Emit) error {
			emit(k, strconv.Itoa(len(vs)))
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.ReadOutput("wc-out", 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, p := range out {
		counts[p.Key] = p.Value
	}
	if counts["a"] != "2" || counts["b"] != "2" || counts["c"] != "1" {
		t.Fatalf("wordcount = %v", counts)
	}

	// Incremental one-step with accumulator.
	oneStep, err := sys.NewOneStep(apps.WordCountJob("wc-incr"))
	if err != nil {
		t.Fatal(err)
	}
	defer oneStep.Close()
	if _, err := oneStep.RunInitial("docs", "wc-v1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteDeltas("docs-delta", []Delta{
		{Key: "d3", Value: "c c", Op: OpInsert},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := oneStep.RunDelta("docs-delta", "wc-v2"); err != nil {
		t.Fatal(err)
	}
	oneStepOuts, err := oneStep.Outputs()
	if err != nil {
		t.Fatal(err)
	}
	refreshed := map[string]string{}
	for _, p := range oneStepOuts {
		refreshed[p.Key] = p.Value
	}
	if refreshed["c"] != "3" {
		t.Fatalf("refreshed counts = %v, want c:3", refreshed)
	}

	// Incremental iterative PageRank.
	graph := datagen.Graph(5, 60, 3)
	if err := sys.WritePairs("graph", graph); err != nil {
		t.Fatal(err)
	}
	runner, err := sys.NewIncremental(apps.PageRankSpec("api-pr", apps.DefaultDamping), Config{
		NumPartitions: 2, MaxIterations: 100, Epsilon: 1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	res, err := runner.RunInitial("graph")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("PageRank did not converge through the facade")
	}
	deltas, _ := datagen.Mutate(6, graph, datagen.MutateOptions{
		ModifyFraction: 0.1, Rewrite: datagen.RewireGraphValue(60),
	})
	if err := sys.WriteDeltas("graph-delta", deltas); err != nil {
		t.Fatal(err)
	}
	inc, err := runner.RunIncremental("graph-delta")
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Converged {
		t.Fatal("incremental refresh did not converge")
	}

	// Iterative (iterMR) runner through the facade.
	ir, err := sys.NewIterative(apps.PageRankSpec("api-iter", apps.DefaultDamping), IterConfig{
		NumPartitions: 2, MaxIterations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ir.LoadStructure("graph"); err != nil {
		t.Fatal(err)
	}
	if _, err := ir.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ir.State()) != 60 {
		t.Fatalf("iterative state has %d keys, want 60", len(ir.State()))
	}
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without WorkDir succeeded")
	}
	dir := t.TempDir()
	if _, err := New(Options{WorkDir: dir, SegmentBlockBytes: -1}); err == nil {
		t.Fatal("New with negative SegmentBlockBytes succeeded")
	}
	if _, err := New(Options{WorkDir: dir, SegmentCompression: "zstd"}); err == nil {
		t.Fatal("New with unknown SegmentCompression succeeded")
	}
	if _, err := New(Options{
		WorkDir: dir, SegmentBlockBytes: 4 << 10,
		SegmentCompression: "flate", BloomBitsPerKey: -1,
	}); err != nil {
		t.Fatalf("New rejected valid segment-format knobs: %v", err)
	}
}

// TestOneStepSurvivesRestart proves the public resume path: a one-step
// computation preserved by one System instance is reattached by a
// second System over the same WorkDir, with identical results and a
// working RunDelta.
func TestOneStepSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	job := apps.FineGrainWordCountJob("wc-restart")
	job.NumReducers = 2

	sys, err := New(Options{WorkDir: dir, Nodes: 2, ShuffleMemoryBudget: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WritePairs("docs", []Pair{
		{Key: "d1", Value: "alpha beta alpha"},
		{Key: "d2", Value: "beta gamma"},
	}); err != nil {
		t.Fatal(err)
	}
	runner, err := sys.NewOneStep(job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.RunInitial("docs", "wc-v1"); err != nil {
		t.Fatal(err)
	}
	before, err := runner.Outputs()
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a second System over the same WorkDir.
	sys2, err := New(Options{WorkDir: dir, Nodes: 2, ShuffleMemoryBudget: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sys2.OpenOneStep(job)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	after, err := resumed.Outputs()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("resumed outputs = %v, want %v", after, before)
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("resumed outputs differ at %d: %v vs %v", i, after[i], before[i])
		}
	}
	// Refresh after restart: delete d2, check counts.
	if err := sys2.WriteDeltas("docs-delta", []Delta{
		{Key: "d2", Value: "beta gamma", Op: OpDelete},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.RunDelta("docs-delta", "wc-v2"); err != nil {
		t.Fatal(err)
	}
	final, err := resumed.Outputs()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, p := range final {
		counts[p.Key] = p.Value
	}
	if counts["alpha"] != "2" || counts["beta"] != "1" {
		t.Fatalf("post-restart refresh = %v, want alpha:2 beta:1", counts)
	}
	if _, ok := counts["gamma"]; ok {
		t.Fatal("gamma survived deletion of its only document")
	}
}
