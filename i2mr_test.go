package i2mr

import (
	"strconv"
	"strings"
	"testing"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
)

// TestPublicAPIEndToEnd drives every engine through the public facade:
// vanilla MapReduce, incremental one-step, iterative, and incremental
// iterative.
func TestPublicAPIEndToEnd(t *testing.T) {
	sys, err := New(Options{WorkDir: t.TempDir(), Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Vanilla MapReduce: word count.
	if err := sys.WritePairs("docs", []Pair{
		{Key: "d1", Value: "a b a"},
		{Key: "d2", Value: "b c"},
	}); err != nil {
		t.Fatal(err)
	}
	_, err = sys.MapReduce(Job{
		Name: "wc", Input: "docs", Output: "wc-out", NumReducers: 2,
		Mapper: MapperFunc(func(k, v string, emit Emit) error {
			for _, w := range strings.Fields(v) {
				emit(w, "1")
			}
			return nil
		}),
		Reducer: ReducerFunc(func(k string, vs []string, emit Emit) error {
			emit(k, strconv.Itoa(len(vs)))
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.ReadOutput("wc-out", 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, p := range out {
		counts[p.Key] = p.Value
	}
	if counts["a"] != "2" || counts["b"] != "2" || counts["c"] != "1" {
		t.Fatalf("wordcount = %v", counts)
	}

	// Incremental one-step with accumulator.
	oneStep, err := sys.NewOneStep(apps.WordCountJob("wc-incr"))
	if err != nil {
		t.Fatal(err)
	}
	defer oneStep.Close()
	if _, err := oneStep.RunInitial("docs", "wc-v1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteDeltas("docs-delta", []Delta{
		{Key: "d3", Value: "c c", Op: OpInsert},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := oneStep.RunDelta("docs-delta", "wc-v2"); err != nil {
		t.Fatal(err)
	}
	refreshed := map[string]string{}
	for _, p := range oneStep.Outputs() {
		refreshed[p.Key] = p.Value
	}
	if refreshed["c"] != "3" {
		t.Fatalf("refreshed counts = %v, want c:3", refreshed)
	}

	// Incremental iterative PageRank.
	graph := datagen.Graph(5, 60, 3)
	if err := sys.WritePairs("graph", graph); err != nil {
		t.Fatal(err)
	}
	runner, err := sys.NewIncremental(apps.PageRankSpec("api-pr", apps.DefaultDamping), Config{
		NumPartitions: 2, MaxIterations: 100, Epsilon: 1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	res, err := runner.RunInitial("graph")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("PageRank did not converge through the facade")
	}
	deltas, _ := datagen.Mutate(6, graph, datagen.MutateOptions{
		ModifyFraction: 0.1, Rewrite: datagen.RewireGraphValue(60),
	})
	if err := sys.WriteDeltas("graph-delta", deltas); err != nil {
		t.Fatal(err)
	}
	inc, err := runner.RunIncremental("graph-delta")
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Converged {
		t.Fatal("incremental refresh did not converge")
	}

	// Iterative (iterMR) runner through the facade.
	ir, err := sys.NewIterative(apps.PageRankSpec("api-iter", apps.DefaultDamping), IterConfig{
		NumPartitions: 2, MaxIterations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ir.LoadStructure("graph"); err != nil {
		t.Fatal(err)
	}
	if _, err := ir.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ir.State()) != 60 {
		t.Fatalf("iterative state has %d keys, want 60", len(ir.State()))
	}
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without WorkDir succeeded")
	}
}
