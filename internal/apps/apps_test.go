package apps

import (
	"fmt"
	"math"
	"strconv"
	"testing"

	"i2mapreduce/internal/baseline/haloop"
	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/mr"
)

func newEngine(t *testing.T, nodes int) *mr.Engine {
	t.Helper()
	root := t.TempDir()
	fs, err := dfs.New(dfs.Config{Root: root + "/dfs", BlockSize: 4 << 10, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, SlotsPerNode: 2, ScratchRoot: root + "/scratch"})
	if err != nil {
		t.Fatal(err)
	}
	return mr.NewEngine(fs, cl)
}

func assertFloatMapClose(t *testing.T, label string, got map[string]string, want map[string]float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys, want %d", label, len(got), len(want))
	}
	for k, w := range want {
		g := parseF(got[k])
		if math.Abs(g-w) > tol {
			t.Errorf("%s: %s = %v, want %v", label, k, g, w)
		}
	}
}

// --- PageRank: all four systems agree ---

func TestPageRankAllSystemsAgree(t *testing.T) {
	eng := newEngine(t, 3)
	graph := datagen.Graph(101, 80, 3)
	if err := eng.FS().WriteAllPairs("graph", graph); err != nil {
		t.Fatal(err)
	}
	const iters = 8
	want := OfflinePageRank(graph, DefaultDamping, iters)

	// iterMR (fixed iterations: Epsilon 0 never converges early).
	ir, err := iter.NewRunner(eng, PageRankSpec("pr-iter", DefaultDamping), iter.Config{
		NumPartitions: 3, MaxIterations: iters,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ir.LoadStructure("graph"); err != nil {
		t.Fatal(err)
	}
	if _, err := ir.Run(); err != nil {
		t.Fatal(err)
	}
	assertFloatMapClose(t, "iterMR", ir.State(), want, 1e-9)

	// plainMR.
	ranks, rep, err := PageRankPlainMR(eng, "pr-plain", "graph", iters, DefaultDamping)
	if err != nil {
		t.Fatal(err)
	}
	assertFloatMapClose(t, "plainMR", ranks, want, 1e-9)
	if rep.Counter("jobs") != iters {
		t.Fatalf("plainMR ran %d jobs, want %d", rep.Counter("jobs"), iters)
	}
	if rep.Counter("startup.ns") == 0 {
		t.Fatal("plainMR startup cost not accounted")
	}

	// HaLoop (fixed iterations via Epsilon -1 is invalid; use tiny
	// epsilon and cap at iters).
	cfg := PageRankHaLoop("pr-haloop", DefaultDamping)
	cfg.MaxIterations = iters
	cfg.Epsilon = 0
	run, err := haloop.Run(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := run("graph")
	if err != nil {
		t.Fatal(err)
	}
	if hres.Iterations != iters {
		t.Fatalf("HaLoop ran %d iterations, want %d", hres.Iterations, iters)
	}
	assertFloatMapClose(t, "HaLoop", hres.State, want, 1e-9)
}

func TestPageRankIncrementalWithDatagenDelta(t *testing.T) {
	eng := newEngine(t, 2)
	graph := datagen.Graph(202, 100, 3)
	if err := eng.FS().WriteAllPairs("g0", graph); err != nil {
		t.Fatal(err)
	}
	r, err := core.NewRunner(eng, PageRankSpec("pr-core", DefaultDamping), core.Config{
		NumPartitions: 2, MaxIterations: 300, Epsilon: 1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}

	deltas, updated := datagen.Mutate(7, graph, datagen.MutateOptions{
		ModifyFraction: 0.1,
		Rewrite:        datagen.RewireGraphValue(100),
	})
	if len(deltas) == 0 {
		t.Fatal("datagen produced an empty delta")
	}
	if err := eng.FS().WriteAllDeltas("d", deltas); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunIncremental("d")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("incremental run did not converge in %d iterations", res.Iterations)
	}

	// Reference: fresh converged run on the updated graph.
	if err := eng.FS().WriteAllPairs("g1", updated); err != nil {
		t.Fatal(err)
	}
	ref, err := iter.NewRunner(eng, PageRankSpec("pr-core-ref", DefaultDamping), iter.Config{
		NumPartitions: 2, MaxIterations: 300, Epsilon: 1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.LoadStructure("g1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	wantS := ref.State()
	got := r.State()
	if len(got) != len(wantS) {
		t.Fatalf("incremental state has %d keys, reference %d", len(got), len(wantS))
	}
	for k, w := range wantS {
		if math.Abs(parseF(got[k])-parseF(w)) > 1e-6 {
			t.Errorf("rank[%s] = %s, want %s", k, got[k], w)
		}
	}
}

// --- SSSP ---

func TestSSSPConvergesToDijkstra(t *testing.T) {
	eng := newEngine(t, 3)
	graph := datagen.WeightedGraph(303, 80, 3)
	source := graph[0].Key
	if err := eng.FS().WriteAllPairs("wg", graph); err != nil {
		t.Fatal(err)
	}
	r, err := iter.NewRunner(eng, SSSPSpec("sssp", source), iter.Config{
		NumPartitions: 3, MaxIterations: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStructure("wg"); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("SSSP did not converge")
	}
	want := OfflineSSSP(graph, source)
	got := r.State()
	for v, w := range want {
		g := got[v]
		if math.IsInf(w, 1) {
			if g != Inf {
				t.Errorf("dist[%s] = %s, want inf", v, g)
			}
			continue
		}
		if math.Abs(parseF(g)-w) > 1e-9 {
			t.Errorf("dist[%s] = %s, want %v", v, g, w)
		}
	}

	// plainMR agrees after the same number of iterations... run to a
	// fixed, generous count (Bellman-Ford style convergence).
	dists, _, err := SSSPPlainMR(eng, "sssp-plain", "wg", source, res.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	for v, w := range want {
		g := dists[v]
		if math.IsInf(w, 1) {
			if g != Inf {
				t.Errorf("plainMR dist[%s] = %s, want inf", v, g)
			}
			continue
		}
		if math.Abs(parseF(g)-w) > 1e-9 {
			t.Errorf("plainMR dist[%s] = %s, want %v", v, g, w)
		}
	}
}

func TestSSSPIncrementalEdgeInsertions(t *testing.T) {
	eng := newEngine(t, 2)
	graph := datagen.WeightedGraph(404, 60, 2)
	source := graph[0].Key
	if err := eng.FS().WriteAllPairs("wg0", graph); err != nil {
		t.Fatal(err)
	}
	r, err := core.NewRunner(eng, SSSPSpec("sssp-core", source), core.Config{
		NumPartitions: 2, MaxIterations: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("wg0"); err != nil {
		t.Fatal(err)
	}

	// Monotone delta: add a shortcut edge from the source (weight
	// decrease semantics: modify source record to add an edge).
	oldVal := graph[0].Value
	far := graph[len(graph)-1].Key
	newVal := oldVal + ";" + far + ":0.05"
	deltas := []kv.Delta{
		{Key: source, Value: oldVal, Op: kv.OpDelete},
		{Key: source, Value: newVal, Op: kv.OpInsert},
	}
	if err := eng.FS().WriteAllDeltas("wd", deltas); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunIncremental("wd"); err != nil {
		t.Fatal(err)
	}
	updated := append([]kv.Pair(nil), graph...)
	updated[0].Value = newVal
	want := OfflineSSSP(updated, source)
	got := r.State()
	for v, w := range want {
		if math.IsInf(w, 1) {
			continue
		}
		if math.Abs(parseF(got[v])-w) > 1e-9 {
			t.Errorf("dist[%s] = %s, want %v", v, got[v], w)
		}
	}
	if math.Abs(parseF(got[far])-0.05) > 1e-9 {
		t.Errorf("shortcut target dist = %s, want 0.05", got[far])
	}
}

// --- Kmeans ---

func TestKmeansCoreMatchesOffline(t *testing.T) {
	eng := newEngine(t, 2)
	points := datagen.Points(505, 200, 3, 4)
	initial := datagen.InitialCentroids(505, points, 4)
	if err := eng.FS().WriteAllPairs("pts", points); err != nil {
		t.Fatal(err)
	}
	r, err := core.NewRunner(eng, KmeansSpec("km"), core.Config{
		NumPartitions: 2, MaxIterations: 40,
		InitialState: map[string]string{KmeansStateKey: initial},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Stores()) != 0 {
		t.Fatal("ReplicateState spec opened MRBG stores (paper: Kmeans runs with MRBG off)")
	}
	res, err := r.RunInitial("pts")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("kmeans did not converge in %d iterations", res.Iterations)
	}
	want, err := OfflineKmeans(points, initial, res.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	got := r.State()[KmeansStateKey]
	if d := centroidSetDiff(got, want); d > 1e-9 {
		t.Fatalf("core centroids differ from offline by %v\n got: %s\nwant: %s", d, got, want)
	}

	// plainMR agrees for the same iteration count.
	plain, _, err := KmeansPlainMR(eng, "km-plain", "pts", initial, res.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	if d := centroidSetDiff(plain, want); d > 1e-9 {
		t.Fatalf("plainMR centroids differ from offline by %v", d)
	}
}

func TestKmeansIncrementalNewPoints(t *testing.T) {
	eng := newEngine(t, 2)
	points := datagen.Points(606, 150, 2, 3)
	initial := datagen.InitialCentroids(606, points, 3)
	if err := eng.FS().WriteAllPairs("pts0", points); err != nil {
		t.Fatal(err)
	}
	r, err := core.NewRunner(eng, KmeansSpec("km-incr"), core.Config{
		NumPartitions: 2, MaxIterations: 50,
		InitialState: map[string]string{KmeansStateKey: initial},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("pts0"); err != nil {
		t.Fatal(err)
	}
	converged := r.State()[KmeansStateKey]

	// New points arrive.
	extra := datagen.Points(607, 30, 2, 3)
	var deltas []kv.Delta
	for i, p := range extra {
		deltas = append(deltas, kv.Delta{Key: fmt.Sprintf("q%03d", i), Value: p.Value, Op: kv.OpInsert})
	}
	if err := eng.FS().WriteAllDeltas("pd", deltas); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunIncremental("pd")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("incremental kmeans did not converge")
	}
	// Reference: Lloyd from the previously converged centroids over the
	// merged point set (exactly what converged-state reuse means).
	var merged []kv.Pair
	merged = append(merged, points...)
	for i, p := range extra {
		merged = append(merged, kv.Pair{Key: fmt.Sprintf("q%03d", i), Value: p.Value})
	}
	want, err := OfflineKmeans(merged, converged, res.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	if d := centroidSetDiff(r.State()[KmeansStateKey], want); d > 1e-9 {
		t.Fatalf("incremental centroids differ from offline by %v", d)
	}
}

// --- GIM-V ---

func TestGIMVIterMatchesOffline(t *testing.T) {
	eng := newEngine(t, 2)
	const nBlocks, blockSize = 4, 5
	matrix := datagen.BlockMatrix(707, nBlocks, blockSize, 3)
	if err := eng.FS().WriteAllPairs("mat", matrix); err != nil {
		t.Fatal(err)
	}
	const iters = 6
	want, err := OfflineGIMV(matrix, nBlocks, blockSize, iters, DefaultDamping)
	if err != nil {
		t.Fatal(err)
	}

	r, err := iter.NewRunner(eng, GIMVSpec("gimv", blockSize, DefaultDamping), iter.Config{
		NumPartitions: 2, MaxIterations: iters,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStructure("mat"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	got := r.State()
	for j, w := range want {
		wv, _ := parseVec(w)
		gv, err := parseVec(got[j])
		if err != nil {
			t.Fatalf("block %s: %v", j, err)
		}
		for d := range wv {
			if math.Abs(gv[d]-wv[d]) > 1e-9 {
				t.Errorf("block %s[%d] = %v, want %v", j, d, gv[d], wv[d])
			}
		}
	}

	// plainMR (Algorithm 4, two jobs/iteration) agrees.
	plain, rep, err := GIMVPlainMR(eng, "gimv-plain", "mat", nBlocks, blockSize, iters, DefaultDamping)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counter("jobs") != 2*iters {
		t.Fatalf("plainMR GIM-V ran %d jobs, want %d", rep.Counter("jobs"), 2*iters)
	}
	for j, w := range want {
		wv, _ := parseVec(w)
		gv, _ := parseVec(plain[j])
		for d := range wv {
			if math.Abs(gv[d]-wv[d]) > 1e-9 {
				t.Errorf("plainMR block %s[%d] = %v, want %v", j, d, gv[d], wv[d])
			}
		}
	}
}

func TestGIMVIncrementalMatrixUpdate(t *testing.T) {
	eng := newEngine(t, 2)
	const nBlocks, blockSize = 3, 4
	matrix := datagen.BlockMatrix(808, nBlocks, blockSize, 2)
	if err := eng.FS().WriteAllPairs("mat0", matrix); err != nil {
		t.Fatal(err)
	}
	r, err := core.NewRunner(eng, GIMVSpec("gimv-core", blockSize, DefaultDamping), core.Config{
		NumPartitions: 2, MaxIterations: 300, Epsilon: 1e-11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("mat0"); err != nil {
		t.Fatal(err)
	}

	// Update one matrix block's weights.
	oldRec := matrix[0]
	newVal := "0:0:0.200000;1:1:0.150000"
	deltas := []kv.Delta{
		{Key: oldRec.Key, Value: oldRec.Value, Op: kv.OpDelete},
		{Key: oldRec.Key, Value: newVal, Op: kv.OpInsert},
	}
	if err := eng.FS().WriteAllDeltas("md", deltas); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunIncremental("md")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("incremental GIM-V did not converge")
	}

	updated := append([]kv.Pair(nil), matrix...)
	updated[0].Value = newVal
	if err := eng.FS().WriteAllPairs("mat1", updated); err != nil {
		t.Fatal(err)
	}
	ref, err := iter.NewRunner(eng, GIMVSpec("gimv-ref", blockSize, DefaultDamping), iter.Config{
		NumPartitions: 2, MaxIterations: 300, Epsilon: 1e-11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.LoadStructure("mat1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := ref.State()
	got := r.State()
	for j, w := range want {
		wv, _ := parseVec(w)
		gv, _ := parseVec(got[j])
		if len(gv) != len(wv) {
			t.Fatalf("block %s has %d dims, want %d", j, len(gv), len(wv))
		}
		for d := range wv {
			if math.Abs(gv[d]-wv[d]) > 1e-6 {
				t.Errorf("block %s[%d] = %v, want %v", j, d, gv[d], wv[d])
			}
		}
	}
}

// --- APriori ---

func TestAPrioriInitialAndIncremental(t *testing.T) {
	eng := newEngine(t, 2)
	tweets := datagen.Tweets(909, 400, 50, 6)
	if err := eng.FS().WriteAllPairs("tweets", tweets); err != nil {
		t.Fatal(err)
	}
	const minSupport = 30

	frequent, _, err := FrequentWords(eng, "ap", "tweets", minSupport)
	if err != nil {
		t.Fatal(err)
	}
	wantWords := OfflineWordCounts(tweets)
	for w, n := range wantWords {
		if (n >= minSupport) != frequent[w] {
			t.Errorf("frequent[%s] = %v with count %d (minSupport %d)", w, frequent[w], n, minSupport)
		}
	}
	if len(frequent) == 0 {
		t.Fatal("no frequent words; adjust the corpus parameters")
	}

	// Initial count job via the incremental engine (accumulator mode).
	runner, err := newAPrioriRunner(eng, "ap-count", frequent)
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	if _, err := runner.RunInitial("tweets", "ap-out-0"); err != nil {
		t.Fatal(err)
	}
	wantPairs := OfflinePairCounts(tweets, frequent)
	checkPairCounts(t, "initial", runnerOutputs(t, runner), wantPairs)

	// Incremental refresh: the paper's last-week 7.9% insert-only delta.
	deltas := datagen.AppendTweets(910, tweets, 0.079, 50, 6)
	if err := eng.FS().WriteAllDeltas("tw-delta", deltas); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.RunDelta("tw-delta", "ap-out-1"); err != nil {
		t.Fatal(err)
	}
	merged := append([]kv.Pair(nil), tweets...)
	for _, d := range deltas {
		merged = append(merged, kv.Pair{Key: d.Key, Value: d.Value})
	}
	wantMerged := OfflinePairCounts(merged, frequent)
	checkPairCounts(t, "incremental", runnerOutputs(t, runner), wantMerged)
}

func checkPairCounts(t *testing.T, label string, got []kv.Pair, want map[string]int) {
	t.Helper()
	gm := map[string]int{}
	for _, p := range got {
		n, err := strconv.Atoi(p.Value)
		if err != nil {
			t.Fatalf("%s: non-numeric count %q", label, p.Value)
		}
		gm[p.Key] = n
	}
	if len(gm) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(gm), len(want))
	}
	for k, n := range want {
		if gm[k] != n {
			t.Errorf("%s: count[%s] = %d, want %d", label, k, gm[k], n)
		}
	}
}

// --- WordCount ---

func TestWordCountAccumulatorVsFineGrain(t *testing.T) {
	eng := newEngine(t, 2)
	docs := []kv.Pair{
		{Key: "d1", Value: "to be or not to be"},
		{Key: "d2", Value: "be here now"},
	}
	if err := eng.FS().WriteAllPairs("docs", docs); err != nil {
		t.Fatal(err)
	}
	want := OfflineWordCount(docs)

	acc, err := newWordCountRunner(eng, WordCountJob("wc-acc"))
	if err != nil {
		t.Fatal(err)
	}
	defer acc.Close()
	if _, err := acc.RunInitial("docs", "wc-acc-out"); err != nil {
		t.Fatal(err)
	}
	fg, err := newWordCountRunner(eng, FineGrainWordCountJob("wc-fg"))
	if err != nil {
		t.Fatal(err)
	}
	defer fg.Close()
	if _, err := fg.RunInitial("docs", "wc-fg-out"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		label string
		outs  []kv.Pair
	}{{"accumulator", runnerOutputs(t, acc)}, {"fine-grain", runnerOutputs(t, fg)}} {
		gm := map[string]int{}
		for _, p := range r.outs {
			gm[p.Key], _ = strconv.Atoi(p.Value)
		}
		for w, n := range want {
			if gm[w] != n {
				t.Errorf("%s: count[%s] = %d, want %d", r.label, w, gm[w], n)
			}
		}
	}
}

func runnerOutputs(t *testing.T, r *incr.Runner) []kv.Pair {
	t.Helper()
	ps, err := r.Outputs()
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func newAPrioriRunner(eng *mr.Engine, name string, frequent map[string]bool) (*incr.Runner, error) {
	return incr.NewRunner(eng, APrioriJob(name, frequent))
}

func newWordCountRunner(eng *mr.Engine, job incr.Job) (*incr.Runner, error) {
	return incr.NewRunner(eng, job)
}
