package apps

import (
	"sort"
	"strconv"
	"strings"

	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
)

// APriori (paper Sec. 8.1.3): mine the occurrence counts of frequent
// word pairs in a tweet corpus. A preprocessing job finds the frequent
// single words (the candidate generation step of Agrawal & Srikant's
// APriori); the counting job then tallies, per tweet, every unordered
// pair of distinct frequent words. The Reduce is an integer sum — an
// accumulator (Sec. 3.5) — so incremental refreshes preserve only the
// output counts and fold in insert-only deltas with ⊕ = +.

// FrequentWords runs the candidate-generation MapReduce job: word
// counting with a combiner, keeping words with count >= minSupport.
func FrequentWords(eng *mr.Engine, name, tweetsInput string, minSupport int) (map[string]bool, *metrics.Report, error) {
	sum := mr.ReducerFunc(func(w string, vs []string, emit mr.Emit) error {
		total := 0
		for _, v := range vs {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			total += n
		}
		emit(w, strconv.Itoa(total))
		return nil
	})
	job := mr.Job{
		Name:   name + "-candidates",
		Input:  tweetsInput,
		Output: name + "/wordcounts",
		Mapper: mr.MapperFunc(func(id, text string, emit mr.Emit) error {
			for _, w := range strings.Fields(text) {
				emit(w, "1")
			}
			return nil
		}),
		Reducer:  sum,
		Combiner: sum,
	}
	rep, err := eng.Run(job)
	if err != nil {
		return nil, nil, err
	}
	out, err := eng.ReadOutput(job.Output, eng.Cluster().NumNodes())
	if err != nil {
		return nil, nil, err
	}
	frequent := make(map[string]bool)
	for _, p := range out {
		if n, err := strconv.Atoi(p.Value); err == nil && n >= minSupport {
			frequent[p.Key] = true
		}
	}
	return frequent, rep, nil
}

// PairKey renders an unordered word pair canonically ("a+b", a < b).
func PairKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "+" + b
}

// APrioriJob builds the pair-counting job for the incremental one-step
// engine. The Map emits per-tweet local counts for candidate pairs
// (mirroring the paper's in-mapper counting); the Reduce sums; the
// accumulator is integer addition.
func APrioriJob(name string, frequent map[string]bool) incr.Job {
	return incr.Job{
		Name: name,
		Mapper: mr.MapperFunc(func(id, text string, emit mr.Emit) error {
			words := strings.Fields(text)
			// Distinct frequent words of this tweet, sorted for a
			// deterministic pair order.
			set := make(map[string]bool)
			for _, w := range words {
				if frequent[w] {
					set[w] = true
				}
			}
			distinct := make([]string, 0, len(set))
			for w := range set {
				distinct = append(distinct, w)
			}
			sort.Strings(distinct)
			for i := 0; i < len(distinct); i++ {
				for j := i + 1; j < len(distinct); j++ {
					emit(PairKey(distinct[i], distinct[j]), "1")
				}
			}
			return nil
		}),
		Reducer: mr.ReducerFunc(func(pair string, vs []string, emit mr.Emit) error {
			total := 0
			for _, v := range vs {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				total += n
			}
			emit(pair, strconv.Itoa(total))
			return nil
		}),
		Accumulate: func(old, new string) string {
			a, _ := strconv.Atoi(old)
			b, _ := strconv.Atoi(new)
			return strconv.Itoa(a + b)
		},
	}
}

// OfflinePairCounts computes the exact pair counts for a corpus.
func OfflinePairCounts(tweets []kv.Pair, frequent map[string]bool) map[string]int {
	counts := make(map[string]int)
	for _, t := range tweets {
		set := make(map[string]bool)
		for _, w := range strings.Fields(t.Value) {
			if frequent[w] {
				set[w] = true
			}
		}
		distinct := make([]string, 0, len(set))
		for w := range set {
			distinct = append(distinct, w)
		}
		sort.Strings(distinct)
		for i := 0; i < len(distinct); i++ {
			for j := i + 1; j < len(distinct); j++ {
				counts[PairKey(distinct[i], distinct[j])]++
			}
		}
	}
	return counts
}

// OfflineWordCounts computes exact single-word counts (candidate
// generation reference).
func OfflineWordCounts(tweets []kv.Pair) map[string]int {
	counts := make(map[string]int)
	for _, t := range tweets {
		for _, w := range strings.Fields(t.Value) {
			counts[w]++
		}
	}
	return counts
}
