package apps

import (
	"fmt"
	"strconv"
	"strings"

	"i2mapreduce/internal/baseline/haloop"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
)

// GIM-V (paper Sec. 4.1, Algorithm 4): generalized iterated
// matrix-vector multiplication over an n x n matrix and a length-n
// vector, both split into blocks. The concrete instantiation here is
// the paper's evaluation choice — iterative matrix-vector
// multiplication (blocked PageRank):
//
//	combine2(m_ij, v_j) = m_ij * v_j
//	combineAll_i({mv})  = d * sum(mv) + (1-d)
//	assign(v_i, v'_i)   = v'_i
//
// Structure records are <"i,j", "r:c:w;...">, the sparse entries of
// block (i,j); state records are <"j", "x1,x2,...">, vector block j.
// Many-to-one dependency: Project("i,j") = "j".

// parseBlockKey splits "i,j" into row and column block ids.
func parseBlockKey(sk string) (string, string, error) {
	i, j, ok := strings.Cut(sk, ",")
	if !ok {
		return "", "", fmt.Errorf("gimv: malformed block key %q", sk)
	}
	return i, j, nil
}

// blockTimesVec multiplies a sparse block by a vector block.
func blockTimesVec(block string, v []float64, size int) ([]float64, error) {
	out := make([]float64, size)
	if block == "" {
		return out, nil
	}
	for _, entry := range strings.Split(block, ";") {
		parts := strings.SplitN(entry, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("gimv: malformed entry %q", entry)
		}
		r, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, err
		}
		c, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		w := parseF(parts[2])
		if r < 0 || r >= size || c < 0 || c >= len(v) {
			return nil, fmt.Errorf("gimv: entry %q out of block bounds", entry)
		}
		out[r] += w * v[c]
	}
	return out, nil
}

// GIMVSpec builds the single-job-per-iteration GIM-V for the iterative
// engines (the formulation iterMR and i2MapReduce use; plainMR and
// HaLoop need two jobs per iteration, see GIMVPlainMR).
func GIMVSpec(name string, blockSize int, damping float64) core.Spec {
	return core.Spec{
		Name: name,
		Project: func(sk string) string {
			_, j, err := parseBlockKey(sk)
			if err != nil {
				return sk
			}
			return j
		},
		Map: func(sk, sv, dk, dv string, emit iter.Emit) error {
			i, _, err := parseBlockKey(sk)
			if err != nil {
				return err
			}
			vj, err := parseVec(dv)
			if err != nil {
				return err
			}
			mv, err := blockTimesVec(sv, vj, blockSize)
			if err != nil {
				return err
			}
			emit(i, formatVec(mv))
			return nil
		},
		Reduce: func(i string, values []string, state iter.StateGetter, emit iter.Emit) error {
			sum := make([]float64, blockSize)
			for _, v := range values {
				mv, err := parseVec(v)
				if err != nil {
					return err
				}
				for d := range mv {
					if d < len(sum) {
						sum[d] += mv[d]
					}
				}
			}
			for d := range sum {
				sum[d] = damping*sum[d] + (1 - damping)
			}
			emit(i, formatVec(sum))
			return nil
		},
		InitState: func(dk string) string {
			ones := make([]float64, blockSize)
			for i := range ones {
				ones[i] = 1
			}
			return formatVec(ones)
		},
		Difference: func(prev, cur string) float64 {
			a, err1 := parseVec(prev)
			b, err2 := parseVec(cur)
			if err1 != nil || err2 != nil {
				return 1e18
			}
			max := 0.0
			for i := range a {
				if i < len(b) {
					if d := absF(a[i] - b[i]); d > max {
						max = d
					}
				}
			}
			return max
		},
	}
}

// GIMVPlainMR runs Algorithm 4 verbatim: two MapReduce jobs per
// iteration. Job 1 assigns vector blocks to matrix blocks and computes
// combine2; job 2 groups by row block and applies combineAll + assign.
// The matrix file is re-read and re-shuffled every iteration — the cost
// the paper's iterMR/i2MapReduce eliminate ("both plainMR and HaLoop
// run two MapReduce jobs in each iteration", Sec. 8.2).
func GIMVPlainMR(eng *mr.Engine, name, matrixInput string, nBlocks, blockSize, iters int, damping float64) (map[string]string, *metrics.Report, error) {
	total := &metrics.Report{}

	// Initial vector file.
	initVec := datagenInitialVector(nBlocks, blockSize)
	var vecPairs []kv.Pair
	for j, v := range initVec {
		vecPairs = append(vecPairs, kv.Pair{Key: j, Value: v})
	}
	kv.SortPairs(vecPairs)
	vecPath := name + "/vec-0"
	if err := eng.FS().WriteAllPairs(vecPath, vecPairs); err != nil {
		return nil, nil, err
	}
	vecInputs := []string{vecPath}

	n := eng.Cluster().NumNodes()
	for it := 1; it <= iters; it++ {
		// Job 1: map matrix blocks (tagged M) and vector blocks
		// (replicated to every row block, tagged V); reduce per (i,j)
		// computes combine2.
		job1 := mr.Job{
			Name:        fmt.Sprintf("%s-combine2-%03d", name, it),
			Inputs:      append([]string{matrixInput}, vecInputs...),
			Output:      fmt.Sprintf("%s/mv-%d", name, it),
			NumReducers: n,
			StartupCost: StartupCost,
			Mapper: mr.MapperFunc(func(k, v string, emit mr.Emit) error {
				if strings.Contains(k, ",") {
					emit(k, "M\x1f"+v)
					return nil
				}
				for i := 0; i < nBlocks; i++ {
					emit(fmt.Sprintf("%d,%s", i, k), "V\x1f"+v)
				}
				return nil
			}),
			Reducer: mr.ReducerFunc(func(bk string, values []string, emit mr.Emit) error {
				var block string
				var vec []float64
				hasM := false
				for _, v := range values {
					tag, rest, ok := strings.Cut(v, "\x1f")
					if !ok {
						return fmt.Errorf("gimv: malformed tagged value %q", v)
					}
					switch tag {
					case "M":
						block, hasM = rest, true
					case "V":
						pv, err := parseVec(rest)
						if err != nil {
							return err
						}
						vec = pv
					}
				}
				if !hasM || vec == nil {
					return nil // empty block or vector-only group
				}
				i, _, err := parseBlockKey(bk)
				if err != nil {
					return err
				}
				mv, err := blockTimesVec(block, vec, blockSize)
				if err != nil {
					return err
				}
				emit(i, formatVec(mv))
				return nil
			}),
		}
		rep1, err := eng.Run(job1)
		if err != nil {
			return nil, nil, fmt.Errorf("gimv plainMR job1 (iteration %d): %w", it, err)
		}
		total.Merge(rep1)

		// Job 2: combineAll + assign per row block.
		job2 := mr.Job{
			Name:        fmt.Sprintf("%s-combineall-%03d", name, it),
			Inputs:      partPaths(job1.Output, n),
			Output:      fmt.Sprintf("%s/vec-%d", name, it),
			NumReducers: n,
			StartupCost: StartupCost,
			Mapper: mr.MapperFunc(func(k, v string, emit mr.Emit) error {
				emit(k, v)
				return nil
			}),
			Reducer: mr.ReducerFunc(func(i string, values []string, emit mr.Emit) error {
				sum := make([]float64, blockSize)
				for _, v := range values {
					mv, err := parseVec(v)
					if err != nil {
						return err
					}
					for d := range mv {
						if d < len(sum) {
							sum[d] += mv[d]
						}
					}
				}
				for d := range sum {
					sum[d] = damping*sum[d] + (1 - damping)
				}
				emit(i, formatVec(sum))
				return nil
			}),
		}
		rep2, err := eng.Run(job2)
		if err != nil {
			return nil, nil, fmt.Errorf("gimv plainMR job2 (iteration %d): %w", it, err)
		}
		total.Merge(rep2)
		total.Add(metrics.CounterIterations, 1)
		vecInputs = partPaths(job2.Output, n)
	}

	out := make(map[string]string)
	for _, path := range vecInputs {
		ps, err := eng.FS().ReadAllPairs(path)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range ps {
			out[p.Key] = p.Value
		}
	}
	return out, total, nil
}

// datagenInitialVector mirrors datagen.InitialVector without importing
// it (apps must not depend on datagen).
func datagenInitialVector(nBlocks, blockSize int) map[string]string {
	ones := make([]float64, blockSize)
	for i := range ones {
		ones[i] = 1
	}
	v := formatVec(ones)
	out := make(map[string]string, nBlocks)
	for j := 0; j < nBlocks; j++ {
		out[strconv.Itoa(j)] = v
	}
	return out
}

// OfflineGIMV computes the exact damped iteration on the dense
// expansion of the block matrix.
func OfflineGIMV(matrix []kv.Pair, nBlocks, blockSize, iters int, damping float64) (map[string]string, error) {
	n := nBlocks * blockSize
	type entry struct {
		row, col int
		w        float64
	}
	var entries []entry
	for _, p := range matrix {
		bi, bj, err := parseBlockKey(p.Key)
		if err != nil {
			return nil, err
		}
		i, _ := strconv.Atoi(bi)
		j, _ := strconv.Atoi(bj)
		if p.Value == "" {
			continue
		}
		for _, e := range strings.Split(p.Value, ";") {
			parts := strings.SplitN(e, ":", 3)
			if len(parts) != 3 {
				return nil, fmt.Errorf("gimv: malformed entry %q", e)
			}
			r, _ := strconv.Atoi(parts[0])
			c, _ := strconv.Atoi(parts[1])
			entries = append(entries, entry{row: i*blockSize + r, col: j*blockSize + c, w: parseF(parts[2])})
		}
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		for _, e := range entries {
			next[e.row] += e.w * v[e.col]
		}
		for i := range next {
			next[i] = damping*next[i] + (1 - damping)
		}
		v = next
	}
	out := make(map[string]string, nBlocks)
	for j := 0; j < nBlocks; j++ {
		out[strconv.Itoa(j)] = formatVec(v[j*blockSize : (j+1)*blockSize])
	}
	return out, nil
}

// GIMVHaLoop builds the HaLoop two-job configuration for GIM-V: matrix
// blocks cached at join reducers under their column block id.
func GIMVHaLoop(name string, blockSize int, damping float64) haloop.Config {
	spec := GIMVSpec(name, blockSize, damping)
	return haloop.Config{
		Name:    name,
		Project: spec.Project,
		Contribute: func(sk, sv, dk, dv string, emit mr.Emit) error {
			return spec.Map(sk, sv, dk, dv, emit)
		},
		Aggregate: func(dk string, values []string, prev string, has bool) (string, error) {
			var out string
			err := spec.Reduce(dk, values, func(string) (string, bool) { return prev, has }, func(_, v string) { out = v })
			return out, err
		},
		InitState:   spec.InitState,
		Difference:  spec.Difference,
		StartupCost: StartupCost,
	}
}
