// Package apps implements the paper's evaluation applications on top
// of the engines: PageRank, SSSP, Kmeans, and GIM-V (the four iterative
// algorithms of Sec. 8.1.3), plus APriori (the one-step algorithm) and
// WordCount (the canonical accumulator example of Sec. 3.5).
//
// Each iterative app exposes:
//
//   - a Spec for the iterative engines (internal/iter recompute, aka
//     "iterMR", and internal/core incremental, aka "i2MapReduce");
//   - a PlainMR runner: vanilla chained MapReduce jobs re-reading and
//     re-shuffling everything every iteration (solution (i));
//   - a HaLoop config for internal/baseline/haloop (solution (iii));
//   - an exact offline reference used for correctness checks and the
//     mean-error metric of Fig. 10.
package apps

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
)

// parseVec parses "f1,f2,..." into a float slice.
func parseVec(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("apps: bad vector component %q: %v", p, err)
		}
		out[i] = f
	}
	return out, nil
}

// formatVec renders a float slice as "f1,f2,...".
func formatVec(v []float64) string {
	parts := make([]string, len(v))
	for i, f := range v {
		parts[i] = strconv.FormatFloat(f, 'g', 17, 64)
	}
	return strings.Join(parts, ",")
}

func formatF(f float64) string { return strconv.FormatFloat(f, 'g', 17, 64) }

func parseF(s string) float64 {
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

func absF(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// AbsDiff is the Difference function shared by the scalar-state apps.
func AbsDiff(prev, cur string) float64 {
	return absF(parseF(prev) - parseF(cur))
}

// chainResult reports a plain-MapReduce chained-iteration run.
type chainResult struct {
	Iterations int
	Report     *metrics.Report
	Output     string // DFS output prefix of the final iteration
	Reducers   int
}

// chainJobs runs one MapReduce job per iteration, wiring iteration i's
// part files into iteration i+1's inputs — the plainMR re-computation
// baseline's execution shape, including per-job startup cost.
func chainJobs(eng *mr.Engine, iters int, makeJob func(it int, inputs []string) mr.Job) (*chainResult, error) {
	res := &chainResult{Report: &metrics.Report{}}
	var inputs []string
	for it := 1; it <= iters; it++ {
		job := makeJob(it, inputs)
		rep, err := eng.Run(job)
		if err != nil {
			return nil, fmt.Errorf("apps: chained job (iteration %d): %w", it, err)
		}
		res.Report.Merge(rep)
		res.Report.Add(metrics.CounterIterations, 1)
		n := job.NumReducers
		if n <= 0 {
			n = eng.Cluster().NumNodes()
		}
		inputs = partPaths(job.Output, n)
		res.Output = job.Output
		res.Reducers = n
		res.Iterations = it
	}
	return res, nil
}

func partPaths(output string, n int) []string {
	out := make([]string, n)
	for r := 0; r < n; r++ {
		out[r] = mr.PartPath(output, r)
	}
	return out
}

// readStateOutput loads a chained run's final output into a map.
func readStateOutput(eng *mr.Engine, res *chainResult) (map[string]string, error) {
	ps, err := eng.ReadOutput(res.Output, res.Reducers)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(ps))
	for _, p := range ps {
		m[p.Key] = p.Value
	}
	return m, nil
}

// pairsToAdj decodes Graph records into an adjacency map.
func pairsToAdj(ps []kv.Pair) map[string][]string {
	adj := make(map[string][]string, len(ps))
	for _, p := range ps {
		adj[p.Key] = strings.Fields(p.Value)
	}
	return adj
}

// StartupCost is the simulated per-job startup overhead used by the
// plainMR and HaLoop baselines (paper Sec. 4.2: "Hadoop may take over
// 20 seconds to start a job" — that figure belongs to a 32-node EC2
// deployment whose iterations take minutes). It is accounted, never
// slept, and scaled to this reproduction's laptop-sized iterations so
// startup remains a meaningful-but-not-dominant fraction, as in the
// paper. Benchmarks may adjust it.
var StartupCost = 200 * time.Millisecond
