package apps

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"i2mapreduce/internal/core"
	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
)

// KmeansStateKey is the single state key of the all-to-one Kmeans
// dependency (paper Table 1: "unique key 1").
const KmeansStateKey = "centroids"

// Centroid is one cluster centre.
type Centroid struct {
	ID  string
	Vec []float64
}

// ParseCentroids decodes "cid=x1,x2|cid=x1,x2|...".
func ParseCentroids(s string) ([]Centroid, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "|")
	out := make([]Centroid, 0, len(parts))
	for _, p := range parts {
		id, vec, ok := strings.Cut(p, "=")
		if !ok {
			return nil, fmt.Errorf("kmeans: malformed centroid %q", p)
		}
		v, err := parseVec(vec)
		if err != nil {
			return nil, err
		}
		out = append(out, Centroid{ID: id, Vec: v})
	}
	return out, nil
}

// FormatCentroids encodes a centroid set (sorted by ID for
// determinism).
func FormatCentroids(cs []Centroid) string {
	sorted := append([]Centroid(nil), cs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	parts := make([]string, len(sorted))
	for i, c := range sorted {
		parts[i] = c.ID + "=" + formatVec(c.Vec)
	}
	return strings.Join(parts, "|")
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		if i < len(b) {
			d := a[i] - b[i]
			s += d * d
		}
	}
	return s
}

func nearestCentroid(cs []Centroid, p []float64) string {
	best, bestD := "", math.Inf(1)
	for _, c := range cs {
		if d := sqDist(c.Vec, p); d < bestD {
			best, bestD = c.ID, d
		}
	}
	return best
}

// centroidSetDiff is the Kmeans Difference: the largest movement of any
// centroid between two centroid sets.
func centroidSetDiff(prev, cur string) float64 {
	a, err1 := ParseCentroids(prev)
	b, err2 := ParseCentroids(cur)
	if err1 != nil || err2 != nil {
		return math.Inf(1)
	}
	byID := make(map[string][]float64, len(a))
	for _, c := range a {
		byID[c.ID] = c.Vec
	}
	max := 0.0
	for _, c := range b {
		if pv, ok := byID[c.ID]; ok {
			if d := math.Sqrt(sqDist(pv, c.Vec)); d > max {
				max = d
			}
		} else {
			return math.Inf(1)
		}
	}
	return max
}

// KmeansSpec builds Lloyd's algorithm (paper Algorithm 3) for the
// iterative engines. Structure records are <point id, "x1,x2,...">;
// the single replicated state record holds the whole centroid set
// (all-to-one dependency). The paper turns MRBGraph maintenance off for
// Kmeans — core.Config does this automatically for ReplicateState
// specs.
func KmeansSpec(name string) core.Spec {
	return core.Spec{
		Name: name,
		Map: func(sk, sv, dk, dv string, emit iter.Emit) error {
			cs, err := ParseCentroids(dv)
			if err != nil {
				return err
			}
			p, err := parseVec(sv)
			if err != nil {
				return err
			}
			// Emit the point with a count of 1; the reducer averages
			// partial sums (the paper's average-as-sum/count rewrite).
			emit(nearestCentroid(cs, p), sv+";1")
			return nil
		},
		Reduce: func(cid string, values []string, state iter.StateGetter, emit iter.Emit) error {
			var sum []float64
			var count float64
			for _, v := range values {
				vec, cnt, ok := strings.Cut(v, ";")
				if !ok {
					return fmt.Errorf("kmeans: malformed assignment %q", v)
				}
				p, err := parseVec(vec)
				if err != nil {
					return err
				}
				if sum == nil {
					sum = make([]float64, len(p))
				}
				for i := range p {
					sum[i] += p[i]
				}
				count += parseF(cnt)
			}
			if count == 0 {
				return nil
			}
			for i := range sum {
				sum[i] /= count
			}
			emit(cid, formatVec(sum))
			return nil
		},
		Difference:     centroidSetDiff,
		ReplicateState: true,
		AssembleState: func(prev map[string]string, outs []kv.Pair) map[string]string {
			cs, err := ParseCentroids(prev[KmeansStateKey])
			if err != nil {
				return prev
			}
			byID := make(map[string]int, len(cs))
			for i, c := range cs {
				byID[c.ID] = i
			}
			for _, o := range outs {
				v, err := parseVec(o.Value)
				if err != nil {
					continue
				}
				if i, ok := byID[o.Key]; ok {
					cs[i].Vec = v
				}
			}
			return map[string]string{KmeansStateKey: FormatCentroids(cs)}
		},
	}
}

// KmeansPlainMR runs the plain re-computation baseline: one MapReduce
// job per iteration, re-reading (and re-shuffling assignments of) every
// point, with the centroid set distributed through the job
// configuration like Hadoop's distributed cache.
func KmeansPlainMR(eng *mr.Engine, name, pointsInput, initialCentroids string, iters int) (string, *metrics.Report, error) {
	centroids := initialCentroids
	total := &metrics.Report{}
	for it := 1; it <= iters; it++ {
		cur := centroids
		job := mr.Job{
			Name:        fmt.Sprintf("%s-it%03d", name, it),
			Input:       pointsInput,
			Output:      fmt.Sprintf("%s/centroids-%d", name, it),
			StartupCost: StartupCost,
			Mapper: mr.MapperFunc(func(pid, pval string, emit mr.Emit) error {
				cs, err := ParseCentroids(cur)
				if err != nil {
					return err
				}
				p, err := parseVec(pval)
				if err != nil {
					return err
				}
				emit(nearestCentroid(cs, p), pval+";1")
				return nil
			}),
			Reducer: mr.ReducerFunc(func(cid string, values []string, emit mr.Emit) error {
				var sum []float64
				var count float64
				for _, v := range values {
					vec, cnt, ok := strings.Cut(v, ";")
					if !ok {
						return fmt.Errorf("kmeans: malformed assignment %q", v)
					}
					p, err := parseVec(vec)
					if err != nil {
						return err
					}
					if sum == nil {
						sum = make([]float64, len(p))
					}
					for i := range p {
						sum[i] += p[i]
					}
					count += parseF(cnt)
				}
				if count == 0 {
					return nil
				}
				for i := range sum {
					sum[i] /= count
				}
				emit(cid, formatVec(sum))
				return nil
			}),
		}
		rep, err := eng.Run(job)
		if err != nil {
			return "", nil, fmt.Errorf("kmeans plainMR (iteration %d): %w", it, err)
		}
		total.Merge(rep)
		total.Add(metrics.CounterIterations, 1)
		out, err := eng.ReadOutput(job.Output, eng.Cluster().NumNodes())
		if err != nil {
			return "", nil, err
		}
		cs, err := ParseCentroids(centroids)
		if err != nil {
			return "", nil, err
		}
		byID := make(map[string]int, len(cs))
		for i, c := range cs {
			byID[c.ID] = i
		}
		for _, o := range out {
			v, err := parseVec(o.Value)
			if err != nil {
				return "", nil, err
			}
			if i, ok := byID[o.Key]; ok {
				cs[i].Vec = v
			}
		}
		centroids = FormatCentroids(cs)
	}
	return centroids, total, nil
}

// OfflineKmeans runs Lloyd's algorithm exactly, from the same initial
// centroid encoding, for the given iterations.
func OfflineKmeans(points []kv.Pair, initial string, iters int) (string, error) {
	centroids, err := ParseCentroids(initial)
	if err != nil {
		return "", err
	}
	vecs := make([][]float64, len(points))
	for i, p := range points {
		v, err := parseVec(p.Value)
		if err != nil {
			return "", err
		}
		vecs[i] = v
	}
	for it := 0; it < iters; it++ {
		sums := make(map[string][]float64)
		counts := make(map[string]float64)
		for _, v := range vecs {
			cid := nearestCentroid(centroids, v)
			s := sums[cid]
			if s == nil {
				s = make([]float64, len(v))
				sums[cid] = s
			}
			for i := range v {
				s[i] += v[i]
			}
			counts[cid]++
		}
		for i, c := range centroids {
			if counts[c.ID] > 0 {
				nv := make([]float64, len(sums[c.ID]))
				for d := range nv {
					nv[d] = sums[c.ID][d] / counts[c.ID]
				}
				centroids[i].Vec = nv
			}
		}
	}
	return FormatCentroids(centroids), nil
}
