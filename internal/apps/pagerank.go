package apps

import (
	"fmt"
	"strings"

	"i2mapreduce/internal/metrics"

	"i2mapreduce/internal/baseline/haloop"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/mr"
)

// DefaultDamping is PageRank's damping factor d.
const DefaultDamping = 0.8

// PageRankSpec builds the paper's Algorithm 2 for the iterative
// engines. Structure records are <vertex, space-separated out-
// neighbours>; state records are <vertex, rank>. One-to-one dependency:
// Project is the identity. Every Map call emits a zero contribution to
// its own vertex so every live vertex keeps a Reduce instance (and an
// MRBGraph chunk) even with no in-edges.
func PageRankSpec(name string, damping float64) core.Spec {
	return core.Spec{
		Name:    name,
		Project: func(sk string) string { return sk },
		Map: func(sk, sv, dk, dv string, emit iter.Emit) error {
			rank := parseF(dv)
			emit(sk, "0")
			outs := strings.Fields(sv)
			if len(outs) == 0 {
				return nil
			}
			share := formatF(rank / float64(len(outs)))
			for _, j := range outs {
				emit(j, share)
			}
			return nil
		},
		Reduce: func(k2 string, values []string, state iter.StateGetter, emit iter.Emit) error {
			var sum float64
			for _, v := range values {
				sum += parseF(v)
			}
			emit(k2, formatF(damping*sum+(1-damping)))
			return nil
		},
		InitState:  func(dk string) string { return "1" },
		Difference: AbsDiff,
	}
}

// PageRankHaLoop builds the Algorithm 5 configuration for the HaLoop
// baseline.
func PageRankHaLoop(name string, damping float64) haloop.Config {
	return haloop.Config{
		Name:    name,
		Project: func(sk string) string { return sk },
		Contribute: func(sk, sv, dk, dv string, emit mr.Emit) error {
			rank := parseF(dv)
			emit(sk, "0")
			outs := strings.Fields(sv)
			if len(outs) == 0 {
				return nil
			}
			share := formatF(rank / float64(len(outs)))
			for _, j := range outs {
				emit(j, share)
			}
			return nil
		},
		Aggregate: func(dk string, values []string, prev string, has bool) (string, error) {
			var sum float64
			for _, v := range values {
				sum += parseF(v)
			}
			return formatF(damping*sum + (1 - damping)), nil
		},
		InitState:   func(dk string) string { return "1" },
		Difference:  AbsDiff,
		StartupCost: StartupCost,
	}
}

// PageRankPlainMR runs the plain-MapReduce re-computation baseline:
// Algorithm 2 exactly as written, one job per iteration over a mixed
// <vertex, "N|R"> input that carries the structure data through every
// shuffle. It returns the run report and the final ranks.
func PageRankPlainMR(eng *mr.Engine, name, graphInput string, iters int, damping float64) (map[string]string, *metrics.Report, error) {
	// Preprocessing: splice the initial rank into each record.
	graph, err := eng.FS().ReadAllPairs(graphInput)
	if err != nil {
		return nil, nil, err
	}
	mixed := make([]kv.Pair, len(graph))
	for i, p := range graph {
		mixed[i] = kv.Pair{Key: p.Key, Value: p.Value + "|1"}
	}
	mixedPath := name + "/mixed-0"
	if err := eng.FS().WriteAllPairs(mixedPath, mixed); err != nil {
		return nil, nil, err
	}

	res, err := chainJobs(eng, iters, func(it int, inputs []string) mr.Job {
		job := mr.Job{
			Name:        fmt.Sprintf("%s-it%03d", name, it),
			Output:      fmt.Sprintf("%s/mixed-%d", name, it),
			StartupCost: StartupCost,
			Mapper: mr.MapperFunc(func(i, nv string, emit mr.Emit) error {
				n, r, ok := strings.Cut(nv, "|")
				if !ok {
					return fmt.Errorf("pagerank: malformed mixed record %q", nv)
				}
				emit(i, "S\x1f"+n)
				emit(i, "C\x1f0")
				outs := strings.Fields(n)
				if len(outs) == 0 {
					return nil
				}
				share := formatF(parseF(r) / float64(len(outs)))
				for _, j := range outs {
					emit(j, "C\x1f"+share)
				}
				return nil
			}),
			Reducer: mr.ReducerFunc(func(i string, values []string, emit mr.Emit) error {
				var sum float64
				n := ""
				for _, v := range values {
					tag, rest, ok := strings.Cut(v, "\x1f")
					if !ok {
						return fmt.Errorf("pagerank: malformed tagged value %q", v)
					}
					switch tag {
					case "S":
						n = rest
					case "C":
						sum += parseF(rest)
					default:
						return fmt.Errorf("pagerank: unknown tag %q", tag)
					}
				}
				emit(i, n+"|"+formatF(damping*sum+(1-damping)))
				return nil
			}),
		}
		if it == 1 {
			job.Input = mixedPath
		} else {
			job.Inputs = inputs
		}
		return job
	})
	if err != nil {
		return nil, nil, err
	}
	out, err := readStateOutput(eng, res)
	if err != nil {
		return nil, nil, err
	}
	ranks := make(map[string]string, len(out))
	for k, v := range out {
		_, r, _ := strings.Cut(v, "|")
		ranks[k] = r
	}
	return ranks, res.Report, nil
}

// OfflinePageRank computes the exact reference ranks after the given
// number of synchronous iterations.
func OfflinePageRank(graph []kv.Pair, damping float64, iters int) map[string]float64 {
	adj := pairsToAdj(graph)
	rank := make(map[string]float64, len(adj))
	for v := range adj {
		rank[v] = 1
	}
	for it := 0; it < iters; it++ {
		next := make(map[string]float64, len(adj))
		for v, outs := range adj {
			if len(outs) == 0 {
				continue
			}
			share := rank[v] / float64(len(outs))
			for _, j := range outs {
				next[j] += share
			}
		}
		for v := range adj {
			rank[v] = damping*next[v] + (1 - damping)
		}
	}
	return rank
}
