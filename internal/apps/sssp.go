package apps

import (
	"container/heap"
	"fmt"
	"math"
	"strings"

	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"

	"i2mapreduce/internal/baseline/haloop"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
)

// Inf is the SSSP "unreached" distance marker.
const Inf = "inf"

// SSSPSpec builds single-source shortest paths for the iterative
// engines. Structure records are <vertex, "to:w;to:w;...">; state
// records are <vertex, distance>. One-to-one dependency.
//
// Incremental caveat (documented in DESIGN.md): SSSP relaxation is
// monotone, so incremental refreshes are exact for edge insertions and
// weight decreases; a deletion that removes a shortest path is not
// repaired without full re-computation (the paper shares this
// limitation and evaluates SSSP with filter threshold 0, which keeps
// results precise for monotone deltas).
func SSSPSpec(name, source string) core.Spec {
	return core.Spec{
		Name:    name,
		Project: func(sk string) string { return sk },
		Map: func(sk, sv, dk, dv string, emit iter.Emit) error {
			// Always emit a self marker so every live vertex keeps a
			// Reduce instance (and its MRBGraph chunk).
			emit(sk, "self")
			if dv == Inf || sv == "" {
				return nil
			}
			d := parseF(dv)
			for _, e := range strings.Split(sv, ";") {
				to, ws, ok := strings.Cut(e, ":")
				if !ok {
					return fmt.Errorf("sssp: malformed edge %q", e)
				}
				emit(to, formatF(d+parseF(ws)))
			}
			return nil
		},
		Reduce: func(k2 string, values []string, state iter.StateGetter, emit iter.Emit) error {
			best := math.Inf(1)
			if cur, ok := state(k2); ok && cur != Inf {
				best = parseF(cur)
			}
			improved := false
			for _, v := range values {
				if v == "self" {
					continue
				}
				if f := parseF(v); f < best {
					best, improved = f, true
				}
			}
			if improved {
				emit(k2, formatF(best))
			}
			return nil
		},
		InitState: func(dk string) string {
			if dk == source {
				return "0"
			}
			return Inf
		},
		Difference: func(prev, cur string) float64 {
			if prev == cur {
				return 0
			}
			if prev == Inf || cur == Inf {
				return math.Inf(1)
			}
			return absF(parseF(prev) - parseF(cur))
		},
	}
}

// OfflineSSSP computes exact shortest distances with Dijkstra.
func OfflineSSSP(graph []kv.Pair, source string) map[string]float64 {
	adj := make(map[string][][2]interface{}, len(graph))
	dist := make(map[string]float64, len(graph))
	for _, p := range graph {
		dist[p.Key] = math.Inf(1)
		if p.Value == "" {
			adj[p.Key] = nil
			continue
		}
		for _, e := range strings.Split(p.Value, ";") {
			to, ws, ok := strings.Cut(e, ":")
			if !ok {
				continue
			}
			adj[p.Key] = append(adj[p.Key], [2]interface{}{to, parseF(ws)})
		}
	}
	if _, ok := dist[source]; !ok {
		return dist
	}
	dist[source] = 0
	pq := &distHeap{{source, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range adj[it.v] {
			to := e[0].(string)
			w := e[1].(float64)
			if nd := it.d + w; nd < ifInf(dist, to) {
				dist[to] = nd
				heap.Push(pq, distItem{to, nd})
			}
		}
	}
	return dist
}

func ifInf(dist map[string]float64, v string) float64 {
	if d, ok := dist[v]; ok {
		return d
	}
	return math.Inf(1)
}

type distItem struct {
	v string
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SSSPPlainMR runs the plain re-computation baseline for SSSP: one job
// per iteration over a mixed <vertex, "edges|dist"> input.
func SSSPPlainMR(eng *mr.Engine, name, graphInput, source string, iters int) (map[string]string, *metrics.Report, error) {
	graph, err := eng.FS().ReadAllPairs(graphInput)
	if err != nil {
		return nil, nil, err
	}
	mixed := make([]kv.Pair, len(graph))
	for i, p := range graph {
		d := Inf
		if p.Key == source {
			d = "0"
		}
		mixed[i] = kv.Pair{Key: p.Key, Value: p.Value + "|" + d}
	}
	mixedPath := name + "/mixed-0"
	if err := eng.FS().WriteAllPairs(mixedPath, mixed); err != nil {
		return nil, nil, err
	}

	res, err := chainJobs(eng, iters, func(it int, inputs []string) mr.Job {
		job := mr.Job{
			Name:        fmt.Sprintf("%s-it%03d", name, it),
			Output:      fmt.Sprintf("%s/mixed-%d", name, it),
			StartupCost: StartupCost,
			Mapper: mr.MapperFunc(func(u, ev string, emit mr.Emit) error {
				edges, dist, ok := strings.Cut(ev, "|")
				if !ok {
					return fmt.Errorf("sssp: malformed mixed record %q", ev)
				}
				emit(u, "S\x1f"+edges)
				emit(u, "C\x1f"+dist)
				if dist == Inf || edges == "" {
					return nil
				}
				d := parseF(dist)
				for _, e := range strings.Split(edges, ";") {
					to, ws, ok := strings.Cut(e, ":")
					if !ok {
						return fmt.Errorf("sssp: malformed edge %q", e)
					}
					emit(to, "C\x1f"+formatF(d+parseF(ws)))
				}
				return nil
			}),
			Reducer: mr.ReducerFunc(func(u string, values []string, emit mr.Emit) error {
				best := math.Inf(1)
				edges := ""
				for _, v := range values {
					tag, rest, ok := strings.Cut(v, "\x1f")
					if !ok {
						return fmt.Errorf("sssp: malformed tagged value %q", v)
					}
					switch tag {
					case "S":
						edges = rest
					case "C":
						if rest != Inf {
							if f := parseF(rest); f < best {
								best = f
							}
						}
					}
				}
				d := Inf
				if !math.IsInf(best, 1) {
					d = formatF(best)
				}
				emit(u, edges+"|"+d)
				return nil
			}),
		}
		if it == 1 {
			job.Input = mixedPath
		} else {
			job.Inputs = inputs
		}
		return job
	})
	if err != nil {
		return nil, nil, err
	}
	out, err := readStateOutput(eng, res)
	if err != nil {
		return nil, nil, err
	}
	dists := make(map[string]string, len(out))
	for k, v := range out {
		_, d, _ := strings.Cut(v, "|")
		dists[k] = d
	}
	return dists, res.Report, nil
}

// SSSPHaLoop builds the HaLoop two-job configuration for SSSP.
func SSSPHaLoop(name, source string) haloop.Config {
	spec := SSSPSpec(name, source)
	return haloop.Config{
		Name:    name,
		Project: func(sk string) string { return sk },
		Contribute: func(sk, sv, dk, dv string, emit mr.Emit) error {
			return spec.Map(sk, sv, dk, dv, emit)
		},
		Aggregate: func(dk string, values []string, prev string, has bool) (string, error) {
			out := prev
			err := spec.Reduce(dk, values, func(k string) (string, bool) { return prev, has }, func(_, v string) { out = v })
			return out, err
		},
		InitState:   spec.InitState,
		Difference:  spec.Difference,
		StartupCost: StartupCost,
	}
}
