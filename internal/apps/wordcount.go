package apps

import (
	"strconv"
	"strings"

	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/mr"
)

// WordCountJob builds the canonical accumulator-Reduce example of the
// paper's Sec. 3.5 for the incremental one-step engine: counts combine
// with integer addition, so refreshes preserve only <word, count>
// outputs.
func WordCountJob(name string) incr.Job {
	return incr.Job{
		Name: name,
		Mapper: mr.MapperFunc(func(id, text string, emit mr.Emit) error {
			for _, w := range strings.Fields(text) {
				emit(w, "1")
			}
			return nil
		}),
		Reducer: mr.ReducerFunc(func(w string, vs []string, emit mr.Emit) error {
			total := 0
			for _, v := range vs {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				total += n
			}
			emit(w, strconv.Itoa(total))
			return nil
		}),
		Accumulate: func(old, new string) string {
			a, _ := strconv.Atoi(old)
			b, _ := strconv.Atoi(new)
			return strconv.Itoa(a + b)
		},
	}
}

// FineGrainWordCountJob is the same computation without the accumulator
// declaration: the engine preserves the full MRBGraph, supporting
// deletions at higher state-maintenance cost. Used by the accumulator
// ablation benchmark.
func FineGrainWordCountJob(name string) incr.Job {
	j := WordCountJob(name)
	j.Accumulate = nil
	return j
}

// OfflineWordCount counts words exactly.
func OfflineWordCount(docs []kv.Pair) map[string]int {
	counts := make(map[string]int)
	for _, d := range docs {
		for _, w := range strings.Fields(d.Value) {
			counts[w]++
		}
	}
	return counts
}
