// Package haloop implements the HaLoop re-computation baseline of the
// paper's evaluation (Sec. 8.1.1 solution (iii), Sec. 8.6).
//
// HaLoop improves plain MapReduce with loop-aware scheduling and a
// reducer input cache for loop-invariant data, but it keeps the
// two-jobs-per-iteration shape for algorithms like PageRank
// (Algorithm 5): job 1 joins the structure data with the state data and
// emits contributions; job 2 aggregates contributions into the new
// state. The structure data is shuffled once (iteration 1) and cached
// at the join reducers afterwards; the state still flows through HDFS
// and a full shuffle every iteration, and every job pays MapReduce's
// startup cost.
package haloop

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
)

// Config describes an iterative computation in HaLoop's two-job shape.
type Config struct {
	// Name labels jobs and DFS files.
	Name string
	// NumReducers defaults to the cluster node count.
	NumReducers int
	// StartupCost is accounted per MapReduce job (two jobs/iteration).
	StartupCost time.Duration
	// MaxIterations caps the loop. Defaults to 50.
	MaxIterations int
	// Epsilon declares convergence when no state value changes by more.
	Epsilon float64
	// Project maps a structure key to the join key it is cached under
	// (identity for PageRank/SSSP; (i,j) -> j for GIM-V).
	Project func(sk string) string
	// Contribute is invoked in the join reducer for every cached
	// structure record of the join key, with the current state value,
	// emitting contribution records for job 2.
	Contribute func(sk, sv, dk, dv string, emit mr.Emit) error
	// Aggregate folds one state key's contributions into its new value.
	// prev is the previous state value ("" and false if none).
	Aggregate func(dk string, values []string, prev string, hasPrev bool) (string, error)
	// InitState initializes the state value of a join key discovered in
	// the structure data.
	InitState func(dk string) string
	// Difference measures state change for convergence.
	Difference func(prev, cur string) float64
}

// Result reports one HaLoop run.
type Result struct {
	Iterations int
	Converged  bool
	State      map[string]string
	Report     *metrics.Report
}

// Run executes the computation to convergence on structure input (a
// DFS pair file), paying two MapReduce jobs per iteration.
func Run(eng *mr.Engine, cfg Config) (func(structureInput string) (*Result, error), error) {
	switch {
	case cfg.Name == "":
		return nil, errors.New("haloop: Config.Name required")
	case cfg.Project == nil || cfg.Contribute == nil || cfg.Aggregate == nil,
		cfg.InitState == nil || cfg.Difference == nil:
		return nil, errors.New("haloop: Config requires Project, Contribute, Aggregate, InitState, Difference")
	}
	if cfg.NumReducers <= 0 {
		cfg.NumReducers = eng.Cluster().NumNodes()
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 50
	}
	return func(structureInput string) (*Result, error) {
		return run(eng, cfg, structureInput)
	}, nil
}

// cacheEntry is one cached structure record at a join reducer —
// HaLoop's reducer input cache.
type cacheEntry struct {
	sk, sv string
}

func run(eng *mr.Engine, cfg Config, structureInput string) (*Result, error) {
	res := &Result{Report: &metrics.Report{}}

	// Reducer input cache, keyed by join key. Guarded: join reduce
	// tasks fill it concurrently during iteration 1.
	var cacheMu sync.Mutex
	cache := make(map[string][]cacheEntry)

	state := make(map[string]string)
	var stateMu sync.Mutex

	// Iteration 1, job 1 runs over the structure input: the mapper
	// tags records with their join key, the reducer caches them,
	// initializes state, and emits the first contributions.
	firstJoin := mr.Job{
		Name:        cfg.Name + "-join-cachefill",
		Input:       structureInput,
		Output:      cfg.Name + "/contrib-1",
		NumReducers: cfg.NumReducers,
		StartupCost: cfg.StartupCost,
		Mapper: mr.MapperFunc(func(sk, sv string, emit mr.Emit) error {
			emit(cfg.Project(sk), sk+"\x1f"+sv)
			return nil
		}),
		Reducer: mr.ReducerFunc(func(dk string, values []string, emit mr.Emit) error {
			dv := cfg.InitState(dk)
			stateMu.Lock()
			state[dk] = dv
			stateMu.Unlock()
			var entries []cacheEntry
			for _, v := range values {
				sk, sv, ok := strings.Cut(v, "\x1f")
				if !ok {
					return fmt.Errorf("haloop: malformed tagged structure record %q", v)
				}
				entries = append(entries, cacheEntry{sk: sk, sv: sv})
				if err := cfg.Contribute(sk, sv, dk, dv, emit); err != nil {
					return err
				}
			}
			cacheMu.Lock()
			cache[dk] = entries
			cacheMu.Unlock()
			return nil
		}),
	}
	rep, err := eng.Run(firstJoin)
	if err != nil {
		return nil, fmt.Errorf("haloop: cache-fill join job: %w", err)
	}
	res.Report.Merge(rep)

	for it := 1; it <= cfg.MaxIterations; it++ {
		// Job 2: aggregate contributions into the new state.
		prev := snapshot(&stateMu, state)
		agg := mr.Job{
			Name:        fmt.Sprintf("%s-agg-%d", cfg.Name, it),
			Inputs:      partPaths(fmt.Sprintf("%s/contrib-%d", cfg.Name, it), cfg.NumReducers),
			Output:      fmt.Sprintf("%s/state-%d", cfg.Name, it),
			NumReducers: cfg.NumReducers,
			StartupCost: cfg.StartupCost,
			Mapper: mr.MapperFunc(func(k, v string, emit mr.Emit) error {
				emit(k, v) // identity map (Algorithm 5 Map Phase 2)
				return nil
			}),
			Reducer: mr.ReducerFunc(func(dk string, values []string, emit mr.Emit) error {
				p, has := prev[dk]
				nv, err := cfg.Aggregate(dk, values, p, has)
				if err != nil {
					return err
				}
				emit(dk, nv)
				return nil
			}),
		}
		rep, err := eng.Run(agg)
		if err != nil {
			return nil, fmt.Errorf("haloop: aggregate job (iteration %d): %w", it, err)
		}
		res.Report.Merge(rep)

		// Fold the job output back into the state map and measure
		// convergence.
		out, err := eng.ReadOutput(fmt.Sprintf("%s/state-%d", cfg.Name, it), cfg.NumReducers)
		if err != nil {
			return nil, err
		}
		maxDiff := 0.0
		stateMu.Lock()
		for _, p := range out {
			if d := cfg.Difference(state[p.Key], p.Value); d > maxDiff {
				maxDiff = d
			}
			state[p.Key] = p.Value
		}
		stateMu.Unlock()
		res.Iterations = it
		res.Report.Add(metrics.CounterIterations, 1)
		if maxDiff <= cfg.Epsilon {
			res.Converged = true
			break
		}
		if it == cfg.MaxIterations {
			break
		}

		// Job 1 of the next iteration: join the updated state with the
		// *cached* structure (state input only; no structure shuffle).
		if err := writeState(eng, fmt.Sprintf("%s/statein-%d", cfg.Name, it+1), state, &stateMu); err != nil {
			return nil, err
		}
		join := mr.Job{
			Name:        fmt.Sprintf("%s-join-%d", cfg.Name, it+1),
			Input:       fmt.Sprintf("%s/statein-%d", cfg.Name, it+1),
			Output:      fmt.Sprintf("%s/contrib-%d", cfg.Name, it+1),
			NumReducers: cfg.NumReducers,
			StartupCost: cfg.StartupCost,
			Mapper: mr.MapperFunc(func(dk, dv string, emit mr.Emit) error {
				emit(dk, dv)
				return nil
			}),
			Reducer: mr.ReducerFunc(func(dk string, values []string, emit mr.Emit) error {
				if len(values) != 1 {
					return fmt.Errorf("haloop: state key %q has %d values", dk, len(values))
				}
				cacheMu.Lock()
				entries := cache[dk]
				cacheMu.Unlock()
				for _, e := range entries {
					if err := cfg.Contribute(e.sk, e.sv, dk, values[0], emit); err != nil {
						return err
					}
				}
				return nil
			}),
		}
		rep2, err := eng.Run(join)
		if err != nil {
			return nil, fmt.Errorf("haloop: join job (iteration %d): %w", it+1, err)
		}
		res.Report.Merge(rep2)
	}
	res.State = snapshot(&stateMu, state)
	return res, nil
}

func snapshot(mu *sync.Mutex, m map[string]string) map[string]string {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func writeState(eng *mr.Engine, path string, state map[string]string, mu *sync.Mutex) error {
	mu.Lock()
	ps := make([]kv.Pair, 0, len(state))
	for k, v := range state {
		ps = append(ps, kv.Pair{Key: k, Value: v})
	}
	mu.Unlock()
	kv.SortPairs(ps)
	return eng.FS().WriteAllPairs(path, ps)
}

// partPaths lists the part files a previous job wrote under output.
func partPaths(output string, n int) []string {
	paths := make([]string, n)
	for r := 0; r < n; r++ {
		paths[r] = mr.PartPath(output, r)
	}
	return paths
}
