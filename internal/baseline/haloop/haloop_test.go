package haloop

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/mr"
)

func newEngine(t *testing.T, nodes int) *mr.Engine {
	t.Helper()
	root := t.TempDir()
	fs, err := dfs.New(dfs.Config{Root: root + "/dfs", BlockSize: 512, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, SlotsPerNode: 2, ScratchRoot: root + "/scratch"})
	if err != nil {
		t.Fatal(err)
	}
	return mr.NewEngine(fs, cl)
}

const damping = 0.8

func pageRankConfig(name string) Config {
	return Config{
		Name:    name,
		Project: func(sk string) string { return sk },
		Contribute: func(sk, sv, dk, dv string, emit mr.Emit) error {
			rank, err := strconv.ParseFloat(dv, 64)
			if err != nil {
				return err
			}
			emit(sk, "0")
			outs := strings.Fields(sv)
			if len(outs) == 0 {
				return nil
			}
			share := strconv.FormatFloat(rank/float64(len(outs)), 'g', 17, 64)
			for _, j := range outs {
				emit(j, share)
			}
			return nil
		},
		Aggregate: func(dk string, values []string, prev string, has bool) (string, error) {
			var sum float64
			for _, v := range values {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return "", err
				}
				sum += f
			}
			return strconv.FormatFloat(damping*sum+(1-damping), 'g', 17, 64), nil
		},
		InitState: func(dk string) string { return "1" },
		Difference: func(prev, cur string) float64 {
			a, _ := strconv.ParseFloat(prev, 64)
			b, _ := strconv.ParseFloat(cur, 64)
			return math.Abs(a - b)
		},
		MaxIterations: 60,
		Epsilon:       1e-10,
		StartupCost:   20_000_000_000,
	}
}

func offlinePageRank(adj map[string][]string, iters int) map[string]float64 {
	rank := map[string]float64{}
	for v := range adj {
		rank[v] = 1
	}
	for it := 0; it < iters; it++ {
		next := map[string]float64{}
		for v, outs := range adj {
			if len(outs) == 0 {
				continue
			}
			share := rank[v] / float64(len(outs))
			for _, j := range outs {
				next[j] += share
			}
		}
		for v := range adj {
			rank[v] = damping*next[v] + (1 - damping)
		}
	}
	return rank
}

func TestHaLoopPageRankMatchesReference(t *testing.T) {
	eng := newEngine(t, 2)
	adj := map[string][]string{
		"a": {"b", "c"},
		"b": {"c"},
		"c": {"a"},
		"d": {"a", "c"},
		"e": {"a", "b"},
	}
	var ps []kv.Pair
	for v, outs := range adj {
		ps = append(ps, kv.Pair{Key: v, Value: strings.Join(outs, " ")})
	}
	kv.SortPairs(ps)
	if err := eng.FS().WriteAllPairs("g", ps); err != nil {
		t.Fatal(err)
	}
	run, err := Run(eng, pageRankConfig("hl-pr"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := run("g")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	want := offlinePageRank(adj, res.Iterations)
	for v, w := range want {
		g, _ := strconv.ParseFloat(res.State[v], 64)
		if math.Abs(g-w) > 1e-8 {
			t.Errorf("rank[%s] = %v, want %v", v, g, w)
		}
	}
}

func TestHaLoopPaysTwoJobsPerIteration(t *testing.T) {
	eng := newEngine(t, 2)
	ps := []kv.Pair{{Key: "a", Value: "b"}, {Key: "b", Value: "a"}}
	if err := eng.FS().WriteAllPairs("g", ps); err != nil {
		t.Fatal(err)
	}
	cfg := pageRankConfig("hl-jobs")
	cfg.MaxIterations = 5
	cfg.Epsilon = 0 // never converge within 5 iterations of float noise? force full 5
	run, err := Run(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run("g")
	if err != nil {
		t.Fatal(err)
	}
	jobs := res.Report.Counter("jobs")
	// cache-fill join + per-iteration (agg + next join): at least
	// 2*iterations jobs in total.
	if jobs < int64(2*res.Iterations) {
		t.Fatalf("ran %d jobs over %d iterations; HaLoop should pay 2 jobs/iteration", jobs, res.Iterations)
	}
	if res.Report.Counter("startup.ns") != jobs*20_000_000_000 {
		t.Fatalf("startup.ns = %d for %d jobs", res.Report.Counter("startup.ns"), jobs)
	}
}

func TestHaLoopValidation(t *testing.T) {
	eng := newEngine(t, 1)
	if _, err := Run(eng, Config{}); err == nil {
		t.Fatal("Run with empty config succeeded")
	}
	cfg := pageRankConfig("x")
	cfg.Aggregate = nil
	if _, err := Run(eng, cfg); err == nil {
		t.Fatal("Run without Aggregate succeeded")
	}
}
