// Package incoop implements a task-level memoization baseline in the
// spirit of Incoop (Bhatotia et al., SOCC'11), the system i2MapReduce
// is contrasted with. Incoop saves and reuses state at the granularity
// of whole Map and Reduce tasks: if any record in a task's input
// changed, the entire task re-runs.
//
// The paper could not compare against Incoop directly (not publicly
// available) but observes that "without careful data partition, almost
// all tasks see changes, making task-level incremental processing less
// effective" (Sec. 8.1.1). This baseline lets the benchmark harness
// measure exactly that: the fraction of tasks reused under scattered
// versus clustered deltas.
package incoop

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
)

// Job describes a one-step computation run with task-level memoization.
type Job struct {
	// Name labels the run.
	Name string
	// Mapper and Reducer carry vanilla MapReduce semantics.
	Mapper  mr.Mapper
	Reducer mr.Reducer
	// SplitSize is the number of input records per map task (Incoop's
	// content-based chunking is approximated by fixed-size splits over
	// stable record order). Defaults to 1024.
	SplitSize int
	// NumReducers defaults to 4.
	NumReducers int
}

// Runner memoizes task results across runs of the same Job on evolving
// inputs.
type Runner struct {
	job Job
	// mapMemo maps a split's content hash to its partitioned output.
	mapMemo map[uint64][][]kv.Pair
	// reduceMemo maps a reduce partition's input hash to its output.
	reduceMemo map[uint64][]kv.Pair
	output     []kv.Pair
}

// Stats reports one run's reuse behaviour.
type Stats struct {
	MapTasks      int
	MapReused     int
	ReduceTasks   int
	ReduceReused  int
	Duration      time.Duration
	OutputRecords int
}

// NewRunner prepares a memoizing runner for job.
func NewRunner(job Job) (*Runner, error) {
	if job.Mapper == nil || job.Reducer == nil {
		return nil, fmt.Errorf("incoop: job %q requires Mapper and Reducer", job.Name)
	}
	if job.SplitSize <= 0 {
		job.SplitSize = 1024
	}
	if job.NumReducers <= 0 {
		job.NumReducers = 4
	}
	return &Runner{
		job:        job,
		mapMemo:    make(map[uint64][][]kv.Pair),
		reduceMemo: make(map[uint64][]kv.Pair),
	}, nil
}

// hashSplit fingerprints a split's full content: any changed, inserted,
// or deleted record in the split changes the hash and invalidates the
// task.
func hashSplit(ps []kv.Pair) uint64 {
	h := fnv.New64a()
	for _, p := range ps {
		h.Write([]byte(p.Key))
		h.Write([]byte{0x1f})
		h.Write([]byte(p.Value))
		h.Write([]byte{0x1e})
	}
	return h.Sum64()
}

// Run executes the job over the full current input (Incoop reprocesses
// the whole input, skipping tasks whose inputs are unchanged). The
// input must be in a stable order for split hashing to line up across
// runs; Run sorts a copy by key to guarantee that.
func (r *Runner) Run(input []kv.Pair) (Stats, *metrics.Report, error) {
	start := time.Now()
	rep := &metrics.Report{}
	in := append([]kv.Pair(nil), input...)
	kv.SortPairs(in)

	var stats Stats
	// Map phase with per-split memoization.
	numParts := r.job.NumReducers
	partitioned := make([][]kv.Pair, numParts)
	newMapMemo := make(map[uint64][][]kv.Pair)
	for off := 0; off < len(in); off += r.job.SplitSize {
		end := off + r.job.SplitSize
		if end > len(in) {
			end = len(in)
		}
		split := in[off:end]
		h := hashSplit(split)
		stats.MapTasks++
		out, ok := r.mapMemo[h]
		if ok {
			stats.MapReused++
		} else {
			out = make([][]kv.Pair, numParts)
			emit := func(k, v string) {
				p := kv.Partition(k, numParts)
				out[p] = append(out[p], kv.Pair{Key: k, Value: v})
			}
			for _, p := range split {
				if err := r.job.Mapper.Map(p.Key, p.Value, emit); err != nil {
					return stats, rep, fmt.Errorf("incoop: map: %w", err)
				}
			}
		}
		newMapMemo[h] = out
		for p := range out {
			partitioned[p] = append(partitioned[p], out[p]...)
		}
	}
	r.mapMemo = newMapMemo

	// Reduce phase with per-partition memoization.
	var output []kv.Pair
	newReduceMemo := make(map[uint64][]kv.Pair)
	for p := 0; p < numParts; p++ {
		run := partitioned[p]
		kv.SortPairs(run)
		h := hashSplit(run)
		stats.ReduceTasks++
		out, ok := r.reduceMemo[h]
		if ok {
			stats.ReduceReused++
		} else {
			emit := func(k, v string) { out = append(out, kv.Pair{Key: k, Value: v}) }
			err := kv.GroupSorted(run, func(g kv.Group) error {
				return r.job.Reducer.Reduce(g.Key, g.Values, emit)
			})
			if err != nil {
				return stats, rep, fmt.Errorf("incoop: reduce: %w", err)
			}
		}
		newReduceMemo[h] = out
		output = append(output, out...)
	}
	r.reduceMemo = newReduceMemo

	sort.SliceStable(output, func(i, j int) bool { return output[i].Key < output[j].Key })
	r.output = output
	stats.OutputRecords = len(output)
	stats.Duration = time.Since(start)
	rep.Add(metrics.CounterMapTasks, int64(stats.MapTasks))
	rep.Add(metrics.CounterMapTasksReused, int64(stats.MapReused))
	rep.Add(metrics.CounterReduceTasks, int64(stats.ReduceTasks))
	rep.Add(metrics.CounterReduceTasksReused, int64(stats.ReduceReused))
	return stats, rep, nil
}

// Output returns the last run's results (key-sorted).
func (r *Runner) Output() []kv.Pair { return r.output }
