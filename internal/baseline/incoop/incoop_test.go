package incoop

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/mr"
)

func wordCountJob(split int) Job {
	return Job{
		Name: "wc",
		Mapper: mr.MapperFunc(func(k, v string, emit mr.Emit) error {
			for _, w := range strings.Fields(v) {
				emit(w, "1")
			}
			return nil
		}),
		Reducer: mr.ReducerFunc(func(k string, vs []string, emit mr.Emit) error {
			emit(k, strconv.Itoa(len(vs)))
			return nil
		}),
		SplitSize:   split,
		NumReducers: 4,
	}
}

func docs(n int) []kv.Pair {
	ps := make([]kv.Pair, n)
	for i := range ps {
		ps[i] = kv.Pair{Key: fmt.Sprintf("doc-%05d", i), Value: fmt.Sprintf("word%d common", i%50)}
	}
	return ps
}

func countsOf(ps []kv.Pair) map[string]string {
	m := map[string]string{}
	for _, p := range ps {
		m[p.Key] = p.Value
	}
	return m
}

func TestInitialRunComputesEverything(t *testing.T) {
	r, err := NewRunner(wordCountJob(100))
	if err != nil {
		t.Fatal(err)
	}
	stats, rep, err := r.Run(docs(1000))
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapReused != 0 || stats.ReduceReused != 0 {
		t.Fatalf("first run reused tasks: %+v", stats)
	}
	if stats.MapTasks != 10 {
		t.Fatalf("MapTasks = %d, want 10", stats.MapTasks)
	}
	got := countsOf(r.Output())
	if got["common"] != "1000" {
		t.Fatalf("count[common] = %s", got["common"])
	}
	if rep.Counter("map.tasks") != 10 {
		t.Fatalf("map.tasks counter = %d", rep.Counter("map.tasks"))
	}
}

func TestIdenticalRerunReusesAllTasks(t *testing.T) {
	r, err := NewRunner(wordCountJob(100))
	if err != nil {
		t.Fatal(err)
	}
	in := docs(1000)
	if _, _, err := r.Run(in); err != nil {
		t.Fatal(err)
	}
	first := append([]kv.Pair(nil), r.Output()...)
	stats, _, err := r.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapReused != stats.MapTasks {
		t.Fatalf("rerun reused %d/%d map tasks", stats.MapReused, stats.MapTasks)
	}
	if stats.ReduceReused != stats.ReduceTasks {
		t.Fatalf("rerun reused %d/%d reduce tasks", stats.ReduceReused, stats.ReduceTasks)
	}
	if !reflect.DeepEqual(r.Output(), first) {
		t.Fatal("rerun output differs")
	}
}

func TestLocalizedChangeReusesMostMapTasks(t *testing.T) {
	r, err := NewRunner(wordCountJob(100))
	if err != nil {
		t.Fatal(err)
	}
	in := docs(1000)
	if _, _, err := r.Run(in); err != nil {
		t.Fatal(err)
	}
	// One record changed: exactly one split's hash changes.
	in2 := append([]kv.Pair(nil), in...)
	in2[42] = kv.Pair{Key: in2[42].Key, Value: "changed words"}
	stats, _, err := r.Run(in2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapReused != stats.MapTasks-1 {
		t.Fatalf("reused %d/%d map tasks after 1-record change", stats.MapReused, stats.MapTasks)
	}
	got := countsOf(r.Output())
	if got["changed"] != "1" || got["common"] != "999" {
		t.Fatalf("counts after change: changed=%s common=%s", got["changed"], got["common"])
	}
}

func TestScatteredChangesDefeatTaskLevelReuse(t *testing.T) {
	// The paper's observation: scattered deltas touch nearly every
	// task, so task-level incremental processing saves little.
	r, err := NewRunner(wordCountJob(100))
	if err != nil {
		t.Fatal(err)
	}
	in := docs(1000)
	if _, _, err := r.Run(in); err != nil {
		t.Fatal(err)
	}
	in2 := append([]kv.Pair(nil), in...)
	for i := 0; i < len(in2); i += 100 { // one record per split
		in2[i] = kv.Pair{Key: in2[i].Key, Value: "touched"}
	}
	stats, _, err := r.Run(in2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapReused != 0 {
		t.Fatalf("scattered changes still reused %d map tasks", stats.MapReused)
	}
}

func TestInsertionShiftsSplitsButStaysCorrect(t *testing.T) {
	r, err := NewRunner(wordCountJob(64))
	if err != nil {
		t.Fatal(err)
	}
	in := docs(500)
	if _, _, err := r.Run(in); err != nil {
		t.Fatal(err)
	}
	in2 := append([]kv.Pair(nil), in...)
	in2 = append(in2, kv.Pair{Key: "doc-99999", Value: "brandnew"})
	if _, _, err := r.Run(in2); err != nil {
		t.Fatal(err)
	}
	got := countsOf(r.Output())
	if got["brandnew"] != "1" || got["common"] != "500" {
		t.Fatalf("counts after insertion: %v", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewRunner(Job{}); err == nil {
		t.Fatal("NewRunner without mapper/reducer succeeded")
	}
}
