// Package sparksim implements the Spark comparison substrate of the
// paper's Sec. 8.7: an in-memory, partitioned, immutable dataset
// abstraction (an RDD stand-in) with map/flatMap/join/reduceByKey
// operators and a memory-capped context.
//
// Spark's characteristic behaviour in the paper's Fig. 12 — fastest on
// small inputs, degrading sharply once input plus per-iteration
// intermediate datasets exceed cluster memory — comes from two modelled
// properties: every transformation materializes a *new* dataset
// (RDDs are read-only, so iterative state snowballs), and datasets past
// the memory cap spill to real files on disk and must be re-read on
// access.
package sparksim

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"i2mapreduce/internal/kv"
)

// Context owns datasets and enforces the memory cap.
type Context struct {
	// MemoryCap is the in-memory byte budget across all live datasets.
	memoryCap int64
	spillDir  string
	used      int64
	resident  *list.List // *Dataset, LRU by materialization/access
	nextID    int
	// SpilledBytes and SpillReads count spill I/O for reporting.
	SpilledBytes int64
	SpillReads   int64
}

// NewContext creates a context with the given in-memory budget and a
// real directory for spills.
func NewContext(memoryCap int64, spillDir string) (*Context, error) {
	if memoryCap <= 0 {
		return nil, fmt.Errorf("sparksim: memory cap must be positive")
	}
	if err := os.MkdirAll(spillDir, 0o755); err != nil {
		return nil, err
	}
	return &Context{memoryCap: memoryCap, spillDir: spillDir, resident: list.New()}, nil
}

// Dataset is an immutable partitioned collection of kv pairs.
type Dataset struct {
	ctx     *Context
	id      int
	parts   [][]kv.Pair // nil when spilled
	bytes   int64
	spilled bool
	freed   bool
	elem    *list.Element
	n       int // partition count
}

// Parallelize materializes ps as a dataset with n partitions,
// partitioned by key hash.
func (c *Context) Parallelize(ps []kv.Pair, n int) *Dataset {
	parts := make([][]kv.Pair, n)
	for _, p := range ps {
		i := kv.Partition(p.Key, n)
		parts[i] = append(parts[i], p)
	}
	return c.register(parts)
}

func dataBytes(parts [][]kv.Pair) int64 {
	var b int64
	for _, part := range parts {
		for _, p := range part {
			b += int64(len(p.Key) + len(p.Value) + 16)
		}
	}
	return b
}

// register accounts a new materialized dataset, spilling older
// datasets if the memory budget is exceeded.
func (c *Context) register(parts [][]kv.Pair) *Dataset {
	d := &Dataset{ctx: c, id: c.nextID, parts: parts, bytes: dataBytes(parts), n: len(parts)}
	c.nextID++
	c.used += d.bytes
	d.elem = c.resident.PushBack(d)
	c.enforceCap(d)
	return d
}

// enforceCap spills the least-recently used datasets (except keep)
// until the budget holds.
func (c *Context) enforceCap(keep *Dataset) {
	for c.used > c.memoryCap {
		var victim *Dataset
		for e := c.resident.Front(); e != nil; e = e.Next() {
			d := e.Value.(*Dataset)
			if d != keep && !d.spilled && !d.freed {
				victim = d
				break
			}
		}
		if victim == nil {
			return // only `keep` is resident; nothing to evict
		}
		victim.spill()
	}
}

func (d *Dataset) spillPath(p int) string {
	return filepath.Join(d.ctx.spillDir, fmt.Sprintf("ds-%06d-part-%03d", d.id, p))
}

// spill writes the dataset's partitions to disk and releases memory.
func (d *Dataset) spill() {
	for p, part := range d.parts {
		f, err := os.Create(d.spillPath(p))
		if err != nil {
			panic(fmt.Sprintf("sparksim: spill: %v", err)) // real disk failure: unrecoverable in a bench
		}
		if _, err := kv.EncodePairs(f, part); err != nil {
			f.Close()
			panic(fmt.Sprintf("sparksim: spill encode: %v", err))
		}
		if err := f.Close(); err != nil {
			panic(fmt.Sprintf("sparksim: spill close: %v", err)) // the spill is read back later; a torn spill must not pass silently
		}
	}
	d.ctx.SpilledBytes += d.bytes
	d.ctx.used -= d.bytes
	d.parts = nil
	d.spilled = true
	d.ctx.resident.Remove(d.elem)
}

// load brings a spilled dataset's partition back from disk.
func (d *Dataset) partition(p int) []kv.Pair {
	if d.freed {
		panic("sparksim: access to unpersisted dataset")
	}
	if !d.spilled {
		return d.parts[p]
	}
	f, err := os.Open(d.spillPath(p))
	if err != nil {
		panic(fmt.Sprintf("sparksim: reload: %v", err))
	}
	defer f.Close()
	ps, err := kv.DecodePairs(f)
	if err != nil {
		panic(fmt.Sprintf("sparksim: reload decode: %v", err))
	}
	d.ctx.SpillReads++
	return ps
}

// Unpersist frees the dataset's memory (Spark's rdd.unpersist); the
// iterative driver calls it on superseded state datasets.
func (d *Dataset) Unpersist() {
	if d.freed {
		return
	}
	if !d.spilled {
		d.ctx.used -= d.bytes
		d.ctx.resident.Remove(d.elem)
	} else {
		for p := 0; p < d.n; p++ {
			os.Remove(d.spillPath(p))
		}
	}
	d.freed = true
	d.parts = nil
}

// NumPartitions returns the dataset's partition count.
func (d *Dataset) NumPartitions() int { return d.n }

// Count returns the number of records.
func (d *Dataset) Count() int {
	total := 0
	for p := 0; p < d.n; p++ {
		total += len(d.partition(p))
	}
	return total
}

// Collect returns all records, key-sorted.
func (d *Dataset) Collect() []kv.Pair {
	var out []kv.Pair
	for p := 0; p < d.n; p++ {
		out = append(out, d.partition(p)...)
	}
	kv.SortPairs(out)
	return out
}

// FlatMap materializes a new dataset by applying fn to every record.
func (d *Dataset) FlatMap(fn func(p kv.Pair, emit func(kv.Pair))) *Dataset {
	parts := make([][]kv.Pair, d.n)
	for p := 0; p < d.n; p++ {
		emit := func(out kv.Pair) {
			i := kv.Partition(out.Key, d.n)
			parts[i] = append(parts[i], out)
		}
		for _, rec := range d.partition(p) {
			fn(rec, emit)
		}
	}
	return d.ctx.register(parts)
}

// MapValues materializes a new dataset transforming values only
// (keys, and therefore partitioning, are preserved).
func (d *Dataset) MapValues(fn func(v string) string) *Dataset {
	parts := make([][]kv.Pair, d.n)
	for p := 0; p < d.n; p++ {
		src := d.partition(p)
		dst := make([]kv.Pair, len(src))
		for i, rec := range src {
			dst[i] = kv.Pair{Key: rec.Key, Value: fn(rec.Value)}
		}
		parts[p] = dst
	}
	return d.ctx.register(parts)
}

// ReduceByKey materializes a new dataset folding all values of each key
// with fn (values are folded in sorted order for determinism).
func (d *Dataset) ReduceByKey(fn func(a, b string) string) *Dataset {
	parts := make([][]kv.Pair, d.n)
	for p := 0; p < d.n; p++ {
		run := append([]kv.Pair(nil), d.partition(p)...)
		kv.SortPairs(run)
		var out []kv.Pair
		_ = kv.GroupSorted(run, func(g kv.Group) error {
			acc := g.Values[0]
			for _, v := range g.Values[1:] {
				acc = fn(acc, v)
			}
			out = append(out, kv.Pair{Key: g.Key, Value: acc})
			return nil
		})
		parts[p] = out
	}
	return d.ctx.register(parts)
}

// Join materializes the inner hash join of two datasets on key; the
// output value is left + "\x1f" + right for every matching pair.
func (d *Dataset) Join(other *Dataset) *Dataset {
	if other.n != d.n {
		panic(fmt.Sprintf("sparksim: join partition mismatch %d vs %d", d.n, other.n))
	}
	parts := make([][]kv.Pair, d.n)
	for p := 0; p < d.n; p++ {
		right := make(map[string][]string)
		for _, rec := range other.partition(p) {
			right[rec.Key] = append(right[rec.Key], rec.Value)
		}
		var out []kv.Pair
		for _, rec := range d.partition(p) {
			for _, rv := range right[rec.Key] {
				out = append(out, kv.Pair{Key: rec.Key, Value: rec.Value + "\x1f" + rv})
			}
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		parts[p] = out
	}
	return d.ctx.register(parts)
}

// MemoryUsed returns the bytes currently held in memory.
func (c *Context) MemoryUsed() int64 { return c.used }
