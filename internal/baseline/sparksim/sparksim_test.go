package sparksim

import (
	"fmt"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"i2mapreduce/internal/kv"
)

func newCtx(t *testing.T, cap int64) *Context {
	t.Helper()
	c, err := NewContext(cap, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParallelizeAndCollect(t *testing.T) {
	c := newCtx(t, 1<<20)
	ps := []kv.Pair{{Key: "b", Value: "2"}, {Key: "a", Value: "1"}, {Key: "c", Value: "3"}}
	d := c.Parallelize(ps, 3)
	if d.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d", d.NumPartitions())
	}
	got := d.Collect()
	want := []kv.Pair{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}, {Key: "c", Value: "3"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Collect = %v", got)
	}
	if d.Count() != 3 {
		t.Fatalf("Count = %d", d.Count())
	}
}

func TestFlatMapAndReduceByKey(t *testing.T) {
	c := newCtx(t, 1<<20)
	d := c.Parallelize([]kv.Pair{
		{Key: "l1", Value: "a b a"},
		{Key: "l2", Value: "b"},
	}, 2)
	words := d.FlatMap(func(p kv.Pair, emit func(kv.Pair)) {
		for _, w := range strings.Fields(p.Value) {
			emit(kv.Pair{Key: w, Value: "1"})
		}
	})
	counts := words.ReduceByKey(func(a, b string) string {
		x, _ := strconv.Atoi(a)
		y, _ := strconv.Atoi(b)
		return strconv.Itoa(x + y)
	})
	got := counts.Collect()
	want := []kv.Pair{{Key: "a", Value: "2"}, {Key: "b", Value: "2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("counts = %v", got)
	}
}

func TestJoin(t *testing.T) {
	c := newCtx(t, 1<<20)
	left := c.Parallelize([]kv.Pair{{Key: "k", Value: "L1"}, {Key: "k", Value: "L2"}, {Key: "x", Value: "LX"}}, 2)
	right := c.Parallelize([]kv.Pair{{Key: "k", Value: "R"}}, 2)
	got := left.Join(right).Collect()
	want := []kv.Pair{{Key: "k", Value: "L1\x1fR"}, {Key: "k", Value: "L2\x1fR"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("join = %v", got)
	}
}

func TestMapValuesPreservesPartitioning(t *testing.T) {
	c := newCtx(t, 1<<20)
	d := c.Parallelize([]kv.Pair{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}}, 4)
	doubled := d.MapValues(func(v string) string { return v + v })
	got := doubled.Collect()
	want := []kv.Pair{{Key: "a", Value: "11"}, {Key: "b", Value: "22"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MapValues = %v", got)
	}
}

func TestSpillAndReload(t *testing.T) {
	// Cap small enough that creating a second dataset spills the first.
	c := newCtx(t, 200)
	big := make([]kv.Pair, 10)
	for i := range big {
		big[i] = kv.Pair{Key: fmt.Sprintf("k%02d", i), Value: strings.Repeat("v", 10)}
	}
	d1 := c.Parallelize(big, 2)
	d2 := c.Parallelize(big, 2)
	if c.SpilledBytes == 0 {
		t.Fatal("no spill despite exceeding the cap")
	}
	// Both datasets still fully readable.
	if len(d1.Collect()) != 10 || len(d2.Collect()) != 10 {
		t.Fatal("datasets lost records across spill")
	}
	if c.SpillReads == 0 {
		t.Fatal("spilled dataset read without counting SpillReads")
	}
}

func TestUnpersistFreesMemory(t *testing.T) {
	c := newCtx(t, 1<<20)
	d := c.Parallelize([]kv.Pair{{Key: "a", Value: "1"}}, 1)
	used := c.MemoryUsed()
	if used <= 0 {
		t.Fatal("no memory accounted")
	}
	d.Unpersist()
	if c.MemoryUsed() != 0 {
		t.Fatalf("MemoryUsed = %d after Unpersist", c.MemoryUsed())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("access to unpersisted dataset did not panic")
		}
	}()
	d.Collect()
}

// pageRank runs the canonical sparksim PageRank loop.
func pageRank(c *Context, adj map[string][]string, nParts, iters int) map[string]float64 {
	var linkPairs []kv.Pair
	for v, outs := range adj {
		linkPairs = append(linkPairs, kv.Pair{Key: v, Value: strings.Join(outs, " ")})
	}
	links := c.Parallelize(linkPairs, nParts)
	var rankPairs []kv.Pair
	for v := range adj {
		rankPairs = append(rankPairs, kv.Pair{Key: v, Value: "1"})
	}
	ranks := c.Parallelize(rankPairs, nParts)

	sum := func(a, b string) string {
		x, _ := strconv.ParseFloat(a, 64)
		y, _ := strconv.ParseFloat(b, 64)
		return strconv.FormatFloat(x+y, 'g', 17, 64)
	}
	for it := 0; it < iters; it++ {
		joined := links.Join(ranks)
		contribs := joined.FlatMap(func(p kv.Pair, emit func(kv.Pair)) {
			sv, dv, _ := strings.Cut(p.Value, "\x1f")
			emit(kv.Pair{Key: p.Key, Value: "0"})
			outs := strings.Fields(sv)
			if len(outs) == 0 {
				return
			}
			r, _ := strconv.ParseFloat(dv, 64)
			share := strconv.FormatFloat(r/float64(len(outs)), 'g', 17, 64)
			for _, j := range outs {
				emit(kv.Pair{Key: j, Value: share})
			}
		})
		newRanks := contribs.ReduceByKey(sum).MapValues(func(v string) string {
			f, _ := strconv.ParseFloat(v, 64)
			return strconv.FormatFloat(0.8*f+0.2, 'g', 17, 64)
		})
		joined.Unpersist()
		contribs.Unpersist()
		ranks.Unpersist()
		ranks = newRanks
	}
	out := map[string]float64{}
	for _, p := range ranks.Collect() {
		out[p.Key], _ = strconv.ParseFloat(p.Value, 64)
	}
	return out
}

func offlinePageRank(adj map[string][]string, iters int) map[string]float64 {
	rank := map[string]float64{}
	for v := range adj {
		rank[v] = 1
	}
	for it := 0; it < iters; it++ {
		next := map[string]float64{}
		for v, outs := range adj {
			if len(outs) == 0 {
				continue
			}
			share := rank[v] / float64(len(outs))
			for _, j := range outs {
				next[j] += share
			}
		}
		for v := range adj {
			rank[v] = 0.8*next[v] + 0.2
		}
	}
	return rank
}

func TestPageRankMatchesReference(t *testing.T) {
	adj := map[string][]string{
		"a": {"b", "c"}, "b": {"c"}, "c": {"a"}, "d": {"a", "c"},
	}
	c := newCtx(t, 1<<20)
	got := pageRank(c, adj, 2, 10)
	want := offlinePageRank(adj, 10)
	for v, w := range want {
		if math.Abs(got[v]-w) > 1e-9 {
			t.Errorf("rank[%s] = %v, want %v", v, got[v], w)
		}
	}
	if c.SpilledBytes != 0 {
		t.Fatal("unexpected spill with a large cap")
	}
}

func TestPageRankUnderMemoryPressureStillCorrect(t *testing.T) {
	adj := map[string][]string{}
	for i := 0; i < 50; i++ {
		adj[fmt.Sprintf("v%02d", i)] = []string{fmt.Sprintf("v%02d", (i+1)%50), fmt.Sprintf("v%02d", (i+7)%50)}
	}
	c := newCtx(t, 2048) // forces spills
	got := pageRank(c, adj, 4, 8)
	want := offlinePageRank(adj, 8)
	for v, w := range want {
		if math.Abs(got[v]-w) > 1e-9 {
			t.Errorf("rank[%s] = %v, want %v", v, got[v], w)
		}
	}
	if c.SpilledBytes == 0 || c.SpillReads == 0 {
		t.Fatalf("expected spills under a 2 KiB cap: %+v bytes, %d reads", c.SpilledBytes, c.SpillReads)
	}
}

func TestContextValidation(t *testing.T) {
	if _, err := NewContext(0, t.TempDir()); err == nil {
		t.Fatal("NewContext with zero cap succeeded")
	}
}
