// Package bench reproduces every table and figure of the paper's
// evaluation (Sec. 8) at laptop scale. Each experiment function returns
// structured results plus a formatted table whose rows/series mirror
// what the paper reports. cmd/i2mr-bench prints them; bench_test.go
// wraps them in testing.B benchmarks.
//
// Absolute numbers differ from the paper (simulated 4-node in-process
// cluster vs 32 EC2 instances); EXPERIMENTS.md records the shape
// comparison: who wins, by roughly what factor, where the crossovers
// fall.
package bench

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"time"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/baseline/haloop"
	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
	"i2mapreduce/internal/mrbg"
)

// Scale sizes the synthetic workloads.
type Scale struct {
	Nodes         int
	Partitions    int
	GraphVertices int
	GraphDegree   int
	Points        int
	PointDims     int
	Clusters      int
	MatrixBlocks  int
	BlockSize     int
	Tweets        int
	Vocab         int
	WordsPerTweet int
	DeltaFraction float64
	MaxIterations int
	Epsilon       float64
	// CPCThreshold is the filter threshold used for "i2MR w/ CPC" runs
	// (ranks are O(1) here, as in the paper's un-normalized PageRank).
	CPCThreshold float64
	// StoreShards is the MRBG-Store shard count used by i2MR runs
	// (0 = the store default of 1); ShardSweep sweeps it explicitly.
	StoreShards int
	// StoreParallelism bounds the per-store shard fan-out
	// (0 = GOMAXPROCS).
	StoreParallelism int
	// ShuffleMemoryBudget is the iterative engines' per-iteration
	// shuffle memory budget in bytes (0 = unbounded, no spilling; a
	// run config with its own positive budget wins).
	ShuffleMemoryBudget int64
	Seed                int64
}

// storeOpts builds the MRBG-Store options the scale prescribes.
func (sc Scale) storeOpts() mrbg.Options {
	return mrbg.Options{Shards: sc.StoreShards, Parallelism: sc.StoreParallelism}
}

// DefaultScale is the full benchmark configuration.
func DefaultScale() Scale {
	return Scale{
		Nodes: 4, Partitions: 4,
		GraphVertices: 4000, GraphDegree: 4,
		Points: 6000, PointDims: 8, Clusters: 8,
		MatrixBlocks: 8, BlockSize: 16,
		Tweets: 6000, Vocab: 200, WordsPerTweet: 8,
		DeltaFraction: 0.10,
		MaxIterations: 60, Epsilon: 1e-6,
		CPCThreshold: 0.01,
		Seed:         1,
	}
}

// SmallScale shrinks everything for quick runs (go test -short).
func SmallScale() Scale {
	s := DefaultScale()
	s.GraphVertices, s.Points, s.Tweets = 600, 1200, 1200
	s.MatrixBlocks, s.BlockSize = 4, 8
	return s
}

// Env is one benchmark environment: a DFS and a simulated cluster.
type Env struct {
	Eng *mr.Engine
}

// NewEnv builds an environment rooted at dir.
func NewEnv(dir string, nodes int) (*Env, error) {
	fs, err := dfs.New(dfs.Config{Root: filepath.Join(dir, "dfs"), BlockSize: 64 << 10, Nodes: nodes})
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, SlotsPerNode: 2, ScratchRoot: filepath.Join(dir, "scratch")})
	if err != nil {
		return nil, err
	}
	return &Env{Eng: mr.NewEngine(fs, cl)}, nil
}

// effective folds the simulated per-job startup cost into measured
// wall-clock time, as the paper's totals do.
func effective(wall time.Duration, rep *metrics.Report) time.Duration {
	if rep == nil {
		return wall
	}
	return wall + time.Duration(rep.Counter(metrics.CounterStartupNS))
}

func timeIt(f func() (*metrics.Report, error)) (time.Duration, *metrics.Report, error) {
	start := time.Now()
	rep, err := f()
	return effective(time.Since(start), rep), rep, err
}

// ---------------------------------------------------------------------
// Fig. 8: normalized runtime of the four iterative algorithms across
// the five solutions, with DeltaFraction of the input changed.
// ---------------------------------------------------------------------

// Fig8Row is one application's timings.
type Fig8Row struct {
	App     string
	PlainMR time.Duration
	HaLoop  time.Duration
	IterMR  time.Duration
	I2NoCPC time.Duration
	I2CPC   time.Duration
}

// Normalized returns the row scaled so PlainMR = 1 (the paper's
// normalization).
func (r Fig8Row) Normalized() [5]float64 {
	base := float64(r.PlainMR)
	if base == 0 {
		base = 1
	}
	return [5]float64{
		1,
		float64(r.HaLoop) / base,
		float64(r.IterMR) / base,
		float64(r.I2NoCPC) / base,
		float64(r.I2CPC) / base,
	}
}

// Fig8 runs the headline experiment.
func Fig8(env *Env, sc Scale) ([]Fig8Row, error) {
	rows := make([]Fig8Row, 0, 4)
	pr, err := fig8PageRank(env, sc)
	if err != nil {
		return nil, fmt.Errorf("fig8 pagerank: %w", err)
	}
	rows = append(rows, pr)
	ss, err := fig8SSSP(env, sc)
	if err != nil {
		return nil, fmt.Errorf("fig8 sssp: %w", err)
	}
	rows = append(rows, ss)
	km, err := fig8Kmeans(env, sc)
	if err != nil {
		return nil, fmt.Errorf("fig8 kmeans: %w", err)
	}
	rows = append(rows, km)
	gv, err := fig8GIMV(env, sc)
	if err != nil {
		return nil, fmt.Errorf("fig8 gimv: %w", err)
	}
	rows = append(rows, gv)
	return rows, nil
}

// runI2 prepares a core runner on the initial input (untimed) and times
// the incremental refresh. An unset cfg.StoreOpts picks up the scale's
// store configuration (shard count, fan-out).
func runI2(env *Env, sc Scale, spec core.Spec, cfg core.Config, initial, delta string) (time.Duration, *core.Result, error) {
	if cfg.StoreOpts == (mrbg.Options{}) {
		cfg.StoreOpts = sc.storeOpts()
	}
	if cfg.ShuffleMemoryBudget == 0 {
		cfg.ShuffleMemoryBudget = sc.ShuffleMemoryBudget
	}
	r, err := core.NewRunner(env.Eng, spec, cfg)
	if err != nil {
		return 0, nil, err
	}
	defer r.Close()
	if _, err := r.RunInitial(initial); err != nil {
		return 0, nil, err
	}
	start := time.Now()
	res, err := r.RunIncremental(delta)
	if err != nil {
		return 0, nil, err
	}
	return time.Since(start), res, nil
}

// refIterations runs a converged iterMR job and reports its iteration
// count and state — the fixed-point the re-computation baselines are
// charged for reproducing.
func refIterations(env *Env, spec iter.Spec, parts int, maxIter int, eps float64, budget int64, input string, initState map[string]string) (int, map[string]string, time.Duration, error) {
	r, err := iter.NewRunner(env.Eng, spec, iter.Config{
		NumPartitions: parts, MaxIterations: maxIter, Epsilon: eps, InitialState: initState,
		ShuffleMemoryBudget: budget,
	})
	if err != nil {
		return 0, nil, 0, err
	}
	start := time.Now()
	if _, err := r.LoadStructure(input); err != nil {
		return 0, nil, 0, err
	}
	res, err := r.Run()
	if err != nil {
		return 0, nil, 0, err
	}
	return res.Iterations, r.State(), time.Since(start), nil
}

func fig8PageRank(env *Env, sc Scale) (Fig8Row, error) {
	g0 := datagen.Graph(sc.Seed, sc.GraphVertices, sc.GraphDegree)
	if err := env.Eng.FS().WriteAllPairs("fig8/pr/g0", g0); err != nil {
		return Fig8Row{}, err
	}
	deltas, g1 := datagen.Mutate(sc.Seed+1, g0, datagen.MutateOptions{
		ModifyFraction: sc.DeltaFraction,
		Rewrite:        datagen.RewireGraphValue(sc.GraphVertices),
	})
	if err := env.Eng.FS().WriteAllDeltas("fig8/pr/delta", deltas); err != nil {
		return Fig8Row{}, err
	}
	if err := env.Eng.FS().WriteAllPairs("fig8/pr/g1", g1); err != nil {
		return Fig8Row{}, err
	}

	spec := apps.PageRankSpec("fig8-pr", apps.DefaultDamping)
	iters, _, iterTime, err := refIterations(env, spec, sc.Partitions, sc.MaxIterations, sc.Epsilon, sc.ShuffleMemoryBudget, "fig8/pr/g1", nil)
	if err != nil {
		return Fig8Row{}, err
	}

	row := Fig8Row{App: "PageRank", IterMR: iterTime}

	plainStart := time.Now()
	_, plainRep, err := apps.PageRankPlainMR(env.Eng, "fig8-pr-plain", "fig8/pr/g1", iters, apps.DefaultDamping)
	if err != nil {
		return Fig8Row{}, err
	}
	row.PlainMR = effective(time.Since(plainStart), plainRep)

	hcfg := apps.PageRankHaLoop("fig8-pr-haloop", apps.DefaultDamping)
	hcfg.MaxIterations = iters
	hcfg.Epsilon = sc.Epsilon
	hcfg.NumReducers = sc.Partitions
	hrun, err := haloop.Run(env.Eng, hcfg)
	if err != nil {
		return Fig8Row{}, err
	}
	hStart := time.Now()
	hres, err := hrun("fig8/pr/g1")
	if err != nil {
		return Fig8Row{}, err
	}
	row.HaLoop = effective(time.Since(hStart), hres.Report)

	coreCfg := core.Config{
		NumPartitions: sc.Partitions, MaxIterations: sc.MaxIterations, Epsilon: sc.Epsilon,
	}
	d, _, err := runI2(env, sc, apps.PageRankSpec("fig8-pr-i2a", apps.DefaultDamping), coreCfg, "fig8/pr/g0", "fig8/pr/delta")
	if err != nil {
		return Fig8Row{}, err
	}
	row.I2NoCPC = d
	coreCfg.CPC, coreCfg.FilterThreshold = true, sc.CPCThreshold
	d, _, err = runI2(env, sc, apps.PageRankSpec("fig8-pr-i2b", apps.DefaultDamping), coreCfg, "fig8/pr/g0", "fig8/pr/delta")
	if err != nil {
		return Fig8Row{}, err
	}
	row.I2CPC = d
	return row, nil
}

func fig8SSSP(env *Env, sc Scale) (Fig8Row, error) {
	g0 := datagen.WeightedGraph(sc.Seed+10, sc.GraphVertices, sc.GraphDegree)
	source := g0[0].Key
	if err := env.Eng.FS().WriteAllPairs("fig8/sssp/g0", g0); err != nil {
		return Fig8Row{}, err
	}
	// Monotone delta: append a new low-weight edge to DeltaFraction of
	// the vertices (shortest paths only improve).
	deltas, g1 := datagen.Mutate(sc.Seed+11, g0, datagen.MutateOptions{
		ModifyFraction: sc.DeltaFraction,
		Rewrite: func(rng *rand.Rand, key, value string) string {
			tgt := fmt.Sprintf("v%07d", rng.Intn(sc.GraphVertices))
			if strings.Contains(value, tgt+":") || tgt == key {
				return value
			}
			return value + ";" + tgt + ":0.5"
		},
	})
	if err := env.Eng.FS().WriteAllDeltas("fig8/sssp/delta", deltas); err != nil {
		return Fig8Row{}, err
	}
	if err := env.Eng.FS().WriteAllPairs("fig8/sssp/g1", g1); err != nil {
		return Fig8Row{}, err
	}

	spec := apps.SSSPSpec("fig8-sssp", source)
	iters, _, iterTime, err := refIterations(env, spec, sc.Partitions, sc.MaxIterations, 0, sc.ShuffleMemoryBudget, "fig8/sssp/g1", nil)
	if err != nil {
		return Fig8Row{}, err
	}
	row := Fig8Row{App: "SSSP", IterMR: iterTime}

	plainStart := time.Now()
	_, plainRep, err := apps.SSSPPlainMR(env.Eng, "fig8-sssp-plain", "fig8/sssp/g1", source, iters)
	if err != nil {
		return Fig8Row{}, err
	}
	row.PlainMR = effective(time.Since(plainStart), plainRep)

	hcfg := apps.SSSPHaLoop("fig8-sssp-haloop", source)
	hcfg.MaxIterations = iters
	hcfg.NumReducers = sc.Partitions
	hrun, err := haloop.Run(env.Eng, hcfg)
	if err != nil {
		return Fig8Row{}, err
	}
	hStart := time.Now()
	hres, err := hrun("fig8/sssp/g1")
	if err != nil {
		return Fig8Row{}, err
	}
	row.HaLoop = effective(time.Since(hStart), hres.Report)

	// SSSP uses filter threshold 0 (paper Sec. 8.2: results stay
	// precise); "w/o CPC" and "w/ CPC" differ only in the explicit
	// filter, which is 0 anyway.
	coreCfg := core.Config{NumPartitions: sc.Partitions, MaxIterations: sc.MaxIterations}
	d, _, err := runI2(env, sc, apps.SSSPSpec("fig8-sssp-i2a", source), coreCfg, "fig8/sssp/g0", "fig8/sssp/delta")
	if err != nil {
		return Fig8Row{}, err
	}
	row.I2NoCPC = d
	coreCfg.CPC = true
	d, _, err = runI2(env, sc, apps.SSSPSpec("fig8-sssp-i2b", source), coreCfg, "fig8/sssp/g0", "fig8/sssp/delta")
	if err != nil {
		return Fig8Row{}, err
	}
	row.I2CPC = d
	return row, nil
}

func fig8Kmeans(env *Env, sc Scale) (Fig8Row, error) {
	pts := datagen.Points(sc.Seed+20, sc.Points, sc.PointDims, sc.Clusters)
	initial := datagen.InitialCentroids(sc.Seed+20, pts, sc.Clusters)
	if err := env.Eng.FS().WriteAllPairs("fig8/km/p0", pts); err != nil {
		return Fig8Row{}, err
	}
	extra := datagen.Points(sc.Seed+21, int(float64(sc.Points)*sc.DeltaFraction), sc.PointDims, sc.Clusters)
	var deltas []kv.Delta
	merged := append([]kv.Pair(nil), pts...)
	for i, p := range extra {
		np := kv.Pair{Key: fmt.Sprintf("x%07d", i), Value: p.Value}
		deltas = append(deltas, kv.Delta{Key: np.Key, Value: np.Value, Op: kv.OpInsert})
		merged = append(merged, np)
	}
	if err := env.Eng.FS().WriteAllDeltas("fig8/km/delta", deltas); err != nil {
		return Fig8Row{}, err
	}
	if err := env.Eng.FS().WriteAllPairs("fig8/km/p1", merged); err != nil {
		return Fig8Row{}, err
	}

	initState := map[string]string{apps.KmeansStateKey: initial}
	iters, _, iterTime, err := refIterations(env, apps.KmeansSpec("fig8-km"), sc.Partitions, sc.MaxIterations, 1e-9, sc.ShuffleMemoryBudget, "fig8/km/p1", initState)
	if err != nil {
		return Fig8Row{}, err
	}
	row := Fig8Row{App: "Kmeans", IterMR: iterTime}

	plainStart := time.Now()
	_, plainRep, err := apps.KmeansPlainMR(env.Eng, "fig8-km-plain", "fig8/km/p1", initial, iters)
	if err != nil {
		return Fig8Row{}, err
	}
	row.PlainMR = effective(time.Since(plainStart), plainRep)

	// HaLoop Kmeans: one job per iteration with point caching — the
	// paper observes it performs like iterMR plus per-job startup. We
	// account it that way (see DESIGN.md).
	row.HaLoop = iterTime + time.Duration(iters)*apps.StartupCost

	// i2MapReduce: MRBG is off for Kmeans (P_delta = 100%); the gain
	// comes from restarting at the converged centroids.
	coreCfg := core.Config{
		NumPartitions: sc.Partitions, MaxIterations: sc.MaxIterations, Epsilon: 1e-9,
		InitialState: initState,
	}
	d, _, err := runI2(env, sc, apps.KmeansSpec("fig8-km-i2a"), coreCfg, "fig8/km/p0", "fig8/km/delta")
	if err != nil {
		return Fig8Row{}, err
	}
	row.I2NoCPC = d
	row.I2CPC = d // CPC is not applicable with a single state kv-pair
	return row, nil
}

func fig8GIMV(env *Env, sc Scale) (Fig8Row, error) {
	mat := datagen.BlockMatrix(sc.Seed+30, sc.MatrixBlocks, sc.BlockSize, 3)
	if err := env.Eng.FS().WriteAllPairs("fig8/gimv/m0", mat); err != nil {
		return Fig8Row{}, err
	}
	deltas, m1 := datagen.Mutate(sc.Seed+31, mat, datagen.MutateOptions{
		ModifyFraction: sc.DeltaFraction,
		Rewrite: func(rng *rand.Rand, key, value string) string {
			// Drop one entry from the block (a link disappears).
			entries := strings.Split(value, ";")
			if len(entries) <= 1 {
				return value
			}
			i := rng.Intn(len(entries))
			return strings.Join(append(entries[:i], entries[i+1:]...), ";")
		},
	})
	if err := env.Eng.FS().WriteAllDeltas("fig8/gimv/delta", deltas); err != nil {
		return Fig8Row{}, err
	}
	if err := env.Eng.FS().WriteAllPairs("fig8/gimv/m1", m1); err != nil {
		return Fig8Row{}, err
	}

	spec := apps.GIMVSpec("fig8-gimv", sc.BlockSize, apps.DefaultDamping)
	iters, _, iterTime, err := refIterations(env, spec, sc.Partitions, sc.MaxIterations, sc.Epsilon, sc.ShuffleMemoryBudget, "fig8/gimv/m1", nil)
	if err != nil {
		return Fig8Row{}, err
	}
	row := Fig8Row{App: "GIM-V", IterMR: iterTime}

	plainStart := time.Now()
	_, plainRep, err := apps.GIMVPlainMR(env.Eng, "fig8-gimv-plain", "fig8/gimv/m1", sc.MatrixBlocks, sc.BlockSize, iters, apps.DefaultDamping)
	if err != nil {
		return Fig8Row{}, err
	}
	row.PlainMR = effective(time.Since(plainStart), plainRep)

	hcfg := apps.GIMVHaLoop("fig8-gimv-haloop", sc.BlockSize, apps.DefaultDamping)
	hcfg.MaxIterations = iters
	hcfg.Epsilon = sc.Epsilon
	hcfg.NumReducers = sc.Partitions
	hrun, err := haloop.Run(env.Eng, hcfg)
	if err != nil {
		return Fig8Row{}, err
	}
	hStart := time.Now()
	hres, err := hrun("fig8/gimv/m1")
	if err != nil {
		return Fig8Row{}, err
	}
	row.HaLoop = effective(time.Since(hStart), hres.Report)

	coreCfg := core.Config{NumPartitions: sc.Partitions, MaxIterations: sc.MaxIterations, Epsilon: sc.Epsilon}
	d, _, err := runI2(env, sc, apps.GIMVSpec("fig8-gimv-i2a", sc.BlockSize, apps.DefaultDamping), coreCfg, "fig8/gimv/m0", "fig8/gimv/delta")
	if err != nil {
		return Fig8Row{}, err
	}
	row.I2NoCPC = d
	coreCfg.CPC, coreCfg.FilterThreshold = true, sc.CPCThreshold
	d, _, err = runI2(env, sc, apps.GIMVSpec("fig8-gimv-i2b", sc.BlockSize, apps.DefaultDamping), coreCfg, "fig8/gimv/m0", "fig8/gimv/delta")
	if err != nil {
		return Fig8Row{}, err
	}
	row.I2CPC = d
	return row, nil
}

// FormatFig8 renders the normalized-runtime table.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — normalized runtime (plainMR = 1.00), %s\n", "10% delta")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %12s %12s\n", "app", "plainMR", "HaLoop", "iterMR", "i2MR w/oCPC", "i2MR w/CPC")
	for _, r := range rows {
		n := r.Normalized()
		fmt.Fprintf(&b, "%-10s %10.3f %10.3f %10.3f %12.3f %12.3f\n", r.App, n[0], n[1], n[2], n[3], n[4])
		fmt.Fprintf(&b, "%-10s %10s %10s %10s %12s %12s\n", "  (abs)",
			r.PlainMR.Round(time.Millisecond), r.HaLoop.Round(time.Millisecond),
			r.IterMR.Round(time.Millisecond), r.I2NoCPC.Round(time.Millisecond), r.I2CPC.Round(time.Millisecond))
	}
	return b.String()
}

// iterRunner aliases the iterMR runner for experiment helpers.
type iterRunner = iter.Runner

// iterNew builds an iterMR runner sized by the scale.
func iterNew(env *Env, spec core.Spec, sc Scale) (*iter.Runner, error) {
	return iter.NewRunner(env.Eng, spec, iter.Config{
		NumPartitions:       sc.Partitions,
		MaxIterations:       sc.MaxIterations,
		Epsilon:             sc.Epsilon,
		ShuffleMemoryBudget: sc.ShuffleMemoryBudget,
	})
}
