package bench

import (
	"strings"
	"testing"
)

func tinyScale() Scale {
	s := SmallScale()
	s.GraphVertices = 300
	s.Points = 400
	s.Tweets = 400
	s.MaxIterations = 40
	return s
}

func newTestEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestFig8ShapeHolds(t *testing.T) {
	env := newTestEnv(t)
	sc := tinyScale()
	rows, err := Fig8(env, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byApp := map[string]Fig8Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.PlainMR <= 0 || r.IterMR <= 0 || r.I2NoCPC <= 0 || r.I2CPC <= 0 {
			t.Fatalf("row %s has non-positive timings: %+v", r.App, r)
		}
	}
	// The paper's headline shapes: for PageRank and GIM-V, i2MR beats
	// plainMR by a wide margin; iterMR beats plainMR everywhere.
	for _, app := range []string{"PageRank", "SSSP", "GIM-V"} {
		r := byApp[app]
		if r.I2CPC >= r.PlainMR {
			t.Errorf("%s: i2MR w/CPC (%v) not faster than plainMR (%v)", app, r.I2CPC, r.PlainMR)
		}
		if r.IterMR >= r.PlainMR {
			t.Errorf("%s: iterMR (%v) not faster than plainMR (%v)", app, r.IterMR, r.PlainMR)
		}
	}
	if out := FormatFig8(rows); !strings.Contains(out, "PageRank") {
		t.Fatalf("FormatFig8 missing rows:\n%s", out)
	}
}

func TestFig9StagesRecorded(t *testing.T) {
	env := newTestEnv(t)
	rows, err := Fig9(env, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	// i2MR's map stage must be far below plainMR's (the paper reports
	// a 98% reduction).
	plainMap := rows[0].Stages.Stages[0]
	i2Map := rows[2].Stages.Stages[0]
	if i2Map >= plainMap {
		t.Errorf("i2MR map stage (%v) not below plainMR (%v)", i2Map, plainMap)
	}
	_ = FormatFig9(rows)
}

func TestTable4StrategiesOrdered(t *testing.T) {
	env := newTestEnv(t)
	rows, err := Table4(env, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	indexOnly, dynamic := rows[0], rows[3]
	// index-only: smallest read size, most reads (paper Table 4).
	if indexOnly.ReadBytes > dynamic.ReadBytes {
		t.Errorf("index-only read %d bytes > multi-dynamic %d", indexOnly.ReadBytes, dynamic.ReadBytes)
	}
	if dynamic.Reads >= indexOnly.Reads {
		t.Errorf("multi-dynamic issued %d reads >= index-only %d", dynamic.Reads, indexOnly.Reads)
	}
	_ = FormatTable4(rows)
}

func TestFig10LargerThresholdFiltersMore(t *testing.T) {
	env := newTestEnv(t)
	rows, err := Fig10(env, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	// Mean error grows (weakly) with the threshold; all errors small.
	for i, r := range rows {
		if r.MeanError < 0 || r.MeanError > 0.25 {
			t.Errorf("FT=%v mean error %v out of range", r.FT, r.MeanError)
		}
		if i > 0 && r.MeanError+1e-9 < rows[i-1].MeanError/4 {
			// Allow noise, but a larger threshold should not be
			// dramatically more accurate.
			t.Logf("note: FT=%v error %v < FT=%v error %v", r.FT, r.MeanError, rows[i-1].FT, rows[i-1].MeanError)
		}
	}
	_ = FormatFig10(rows)
}

func TestFig11PropagationShapes(t *testing.T) {
	env := newTestEnv(t)
	series, err := Fig11(env, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series, want 4", len(series))
	}
	noCPC := series[0]
	ft01 := series[3]
	sum := func(xs []int) int {
		t := 0
		for _, x := range xs {
			t += x
		}
		return t
	}
	if sum(ft01.Propagated) > sum(noCPC.Propagated) {
		t.Errorf("FT=0.1 propagated %d > w/o CPC %d", sum(ft01.Propagated), sum(noCPC.Propagated))
	}
	_ = FormatFig11(series)
}

func TestFig12SparkCrossover(t *testing.T) {
	env := newTestEnv(t)
	sc := tinyScale()
	rows, err := Fig12(env, sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	// Small datasets fit in memory; the largest spills.
	if rows[0].SparkSpilled {
		t.Error("smallest dataset spilled")
	}
	if !rows[3].SparkSpilled {
		t.Error("largest dataset did not spill")
	}
	// Spark beats plainMR on the small input (paper: "really fast when
	// processing small data sets").
	if rows[0].Spark >= rows[0].PlainMR {
		t.Errorf("Spark (%v) not faster than plainMR (%v) on the small input", rows[0].Spark, rows[0].PlainMR)
	}
	_ = FormatFig12(rows)
}

func TestFig13RecoversFromInjectedFailures(t *testing.T) {
	env := newTestEnv(t)
	res, err := Fig13(env, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures < 2 {
		t.Fatalf("only %d injected failures observed; the run may have converged too fast", res.Failures)
	}
	if !res.Recovered {
		t.Fatal("a failed task never recovered")
	}
	if res.MaxRecovery <= 0 {
		t.Fatal("recovery gap not measured")
	}
	_ = FormatFig13(res)
}

func TestAPrioriSpeedup(t *testing.T) {
	env := newTestEnv(t)
	res, err := APriori(env, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1 {
		t.Fatalf("incremental APriori speedup %.2fx <= 1", res.Speedup)
	}
	if res.Pairs == 0 {
		t.Fatal("no frequent pairs counted")
	}
	_ = FormatAPriori(res)
}

func TestShardSweepShapeHolds(t *testing.T) {
	sc := tinyScale()
	rows, err := ShardSweep(t.TempDir(), sc, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for i, want := range []int{1, 2, 4} {
		r := rows[i]
		if r.Shards != want {
			t.Errorf("row %d shards = %d, want %d", i, r.Shards, want)
		}
		if r.MergeTime <= 0 || r.QueryTime <= 0 {
			t.Errorf("row %d has non-positive timings: %+v", i, r)
		}
		if r.LiveChunks != sc.GraphVertices {
			t.Errorf("row %d live chunks = %d, want %d", i, r.LiveChunks, sc.GraphVertices)
		}
	}
	if out := FormatShardSweep(rows); !strings.Contains(out, "shards") {
		t.Fatalf("FormatShardSweep missing header:\n%s", out)
	}
}

func TestFig8RunsWithShardedStores(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig8 with sharding is covered by the long run")
	}
	env := newTestEnv(t)
	sc := tinyScale()
	sc.StoreShards = 4
	rows, err := Fig8(env, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.I2CPC <= 0 {
			t.Fatalf("row %s has non-positive i2MR timing: %+v", r.App, r)
		}
	}
}

func TestOneStepSweepShapeHolds(t *testing.T) {
	env := newTestEnv(t)
	sc := tinyScale()
	sc.ShuffleMemoryBudget = 16 << 10
	rows, err := OneStepSweep(env, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.DeltaRecords <= 0 {
			t.Fatalf("row %d: no delta records", i)
		}
		if r.Incremental <= 0 || r.Recompute <= 0 {
			t.Fatalf("row %d: missing timings %+v", i, r)
		}
		if r.Segments <= 0 {
			t.Fatalf("row %d: no result segments reported", i)
		}
		if r.DirtyParts <= 0 || r.Rewritten <= 0 {
			t.Fatalf("row %d: refresh reported no dirty partitions/bytes", i)
		}
		if i > 0 && r.DeltaRecords <= rows[i-1].DeltaRecords {
			t.Fatalf("delta sizes not increasing: %d then %d", rows[i-1].DeltaRecords, r.DeltaRecords)
		}
	}
	// The smallest delta must beat recomputation decisively.
	if rows[0].Speedup <= 1 {
		t.Fatalf("1%% delta speedup %.2fx <= 1", rows[0].Speedup)
	}
	out := FormatOneStep(rows)
	if !strings.Contains(out, "speedup") {
		t.Fatalf("format output missing header: %q", out)
	}
}

func TestResultsSweepShapeHolds(t *testing.T) {
	sc := tinyScale()
	rows, err := ResultsSweep(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 block sizes x 2 codecs
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		label := FormatResultsSweep([]ResultsRow{r})
		if r.HitNs <= 0 || r.MissNs <= 0 || r.SegmentBytes <= 0 {
			t.Fatalf("non-positive measurements:\n%s", label)
		}
		// The headline property: the bloom filter answers ≥99% of
		// absent-key probes with zero block I/O.
		if r.BloomSkips < r.MissProbes*99/100 {
			t.Fatalf("bloom skipped %d of %d absent probes (<99%%):\n%s", r.BloomSkips, r.MissProbes, label)
		}
		if r.MissBlocksRead > r.MissProbes/100 {
			t.Fatalf("absent probes read %d blocks:\n%s", r.MissBlocksRead, label)
		}
		if r.Codec == "flate" && r.SegmentBytes <= 0 {
			t.Fatalf("flate cell has no segment bytes:\n%s", label)
		}
	}
	// Compression must shrink the synthetic segments at every block size.
	for i := 0; i < len(rows); i += 2 {
		if rows[i+1].SegmentBytes >= rows[i].SegmentBytes {
			t.Fatalf("flate (%d bytes) not smaller than none (%d bytes) at block %d",
				rows[i+1].SegmentBytes, rows[i].SegmentBytes, rows[i].BlockBytes)
		}
	}
	if out := FormatResultsSweep(rows); !strings.Contains(out, "bloom_skips") {
		t.Fatalf("format output missing header: %q", out)
	}
}

func TestServeColdSweepShapeHolds(t *testing.T) {
	env := newTestEnv(t)
	sc := tinyScale()
	rows, err := ServeColdSweep(env, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	byMode := map[string]ServeColdRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.Ops <= 0 || r.P99 < r.P50 {
			t.Fatalf("bad row %+v", r)
		}
	}
	hit, absent := byMode["cold-hit"], byMode["absent"]
	if hit.BlocksRead <= 0 {
		t.Fatal("uncached hits read no blocks")
	}
	if absent.BloomSkips < absent.Ops*99/100 {
		t.Fatalf("absent probes: %d bloom skips of %d ops (<99%%)", absent.BloomSkips, absent.Ops)
	}
	if absent.BlocksRead > absent.Ops/100 {
		t.Fatalf("absent probes read %d blocks", absent.BlocksRead)
	}
	if out := FormatServeCold(rows); !strings.Contains(out, "bloom_skips") {
		t.Fatalf("format output missing header: %q", out)
	}
}
