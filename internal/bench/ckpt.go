package bench

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/metrics"
)

// ---------------------------------------------------------------------
// Checkpoint sweep: the parallel durability plane across partition
// counts, IOParallelism bounds, and inline-vs-background compaction.
// Not a paper figure — it profiles this reproduction's checkpoint
// critical path: how much of a refresh is spent in per-iteration
// durability (the StageCheckpoint wall-clock), how that shrinks when
// the per-partition flushes fan out, and what moving threshold
// compaction onto the background scheduler buys when compaction is
// actually due (the sweep forces a low StateCompactThreshold so the
// inline and background configurations genuinely diverge).
// ---------------------------------------------------------------------

// CkptRow is one configuration's profile.
type CkptRow struct {
	Partitions  int
	IOPar       int
	Background  bool
	Initial     time.Duration
	Refresh     time.Duration
	Ckpt        time.Duration // StageCheckpoint wall-clock across the refresh
	DirtyParts  int64
	Flushed     int64 // state/baseline entries the checkpoints wrote
	Compactions int64 // inline compactions observed by the refresh
	BGRuns      int64 // background-scheduler compaction runs
}

// CkptSweep runs an incremental PageRank refresh (per-iteration
// checkpointing on, compaction forced due early) at each
// (partitions, io-parallelism, compaction-mode) configuration under
// dir, timing the initial convergence, the refresh, and the refresh's
// checkpoint stage.
func CkptSweep(dir string, sc Scale) ([]CkptRow, error) {
	graph := datagen.Graph(sc.Seed+400, sc.GraphVertices, sc.GraphDegree)
	deltas, _ := datagen.Mutate(sc.Seed+401, graph, datagen.MutateOptions{
		ModifyFraction: sc.DeltaFraction,
		Rewrite:        datagen.RewireGraphValue(sc.GraphVertices),
	})

	partCounts := []int{sc.Partitions}
	if sc.Partitions != 8 {
		partCounts = append(partCounts, 8)
	}
	ioPars := []int{1, 8}
	modes := []bool{false, true} // inline, background compaction

	var rows []CkptRow
	for _, parts := range partCounts {
		for _, ioPar := range ioPars {
			for _, bg := range modes {
				mode := "inline"
				if bg {
					mode = "bg"
				}
				env, err := NewEnv(filepath.Join(dir, fmt.Sprintf("p%d-io%d-%s", parts, ioPar, mode)), sc.Nodes)
				if err != nil {
					return nil, err
				}
				if err := env.Eng.FS().WriteAllPairs("core/g0", graph); err != nil {
					return nil, err
				}
				if err := env.Eng.FS().WriteAllDeltas("core/delta", deltas); err != nil {
					return nil, err
				}
				spec := apps.PageRankSpec(fmt.Sprintf("ckpt-p%d-io%d-%s", parts, ioPar, mode), apps.DefaultDamping)
				r, err := core.NewRunner(env.Eng, spec, core.Config{
					NumPartitions: parts, MaxIterations: sc.MaxIterations, Epsilon: sc.Epsilon,
					Checkpoint: true, ShuffleMemoryBudget: sc.ShuffleMemoryBudget,
					StoreOpts: sc.storeOpts(),
					// Force compaction due within the refresh so inline and
					// background configurations actually diverge.
					StateCompactThreshold: 2,
					IOParallelism:         ioPar,
					BackgroundCompaction:  bg,
				})
				if err != nil {
					return nil, err
				}
				initStart := time.Now()
				if _, err := r.RunInitial("core/g0"); err != nil {
					r.Close()
					return nil, err
				}
				initTime := time.Since(initStart)
				refreshStart := time.Now()
				res, err := r.RunIncremental("core/delta")
				if err != nil {
					r.Close()
					return nil, err
				}
				refreshTime := time.Since(refreshStart)
				// The refresh defers compaction; give the background
				// workers a bounded window to drain the queue so the row
				// shows the work actually running off the critical path
				// (Close would otherwise drop it).
				bgRuns := int64(0)
				if sched := r.CompactionScheduler(); sched != nil {
					deadline := time.Now().Add(10 * time.Second)
					for sched.QueueDepth() > 0 && time.Now().Before(deadline) {
						time.Sleep(5 * time.Millisecond)
					}
					bgRuns = sched.Runs()
				}
				snap := res.Report.Snapshot()
				rows = append(rows, CkptRow{
					Partitions:  parts,
					IOPar:       ioPar,
					Background:  bg,
					Initial:     initTime,
					Refresh:     refreshTime,
					Ckpt:        snap.Stages[metrics.StageCheckpoint],
					DirtyParts:  res.Report.Counter(metrics.CounterStateDirtyPartitions),
					Flushed:     res.Report.Counter(metrics.CounterStateGroupsFlushed),
					Compactions: res.Report.Counter(metrics.CounterStateCompactions),
					BGRuns:      bgRuns,
				})
				if err := r.Close(); err != nil {
					return nil, err
				}
			}
		}
	}
	return rows, nil
}

// FormatCkpt renders the sweep.
func FormatCkpt(rows []CkptRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ckpt sweep — parallel durability plane (checkpoint every iteration, compaction forced due)\n")
	fmt.Fprintf(&b, "%-6s %6s %10s %10s %10s %10s %6s %8s %6s %6s\n",
		"parts", "io-par", "compact", "initial", "refresh", "ckpt", "dirty", "flushed", "compac", "bgrun")
	for _, r := range rows {
		mode := "inline"
		if r.Background {
			mode = "bg"
		}
		fmt.Fprintf(&b, "%-6d %6d %10s %10s %10s %10s %6d %8d %6d %6d\n",
			r.Partitions, r.IOPar, mode,
			r.Initial.Round(time.Millisecond), r.Refresh.Round(time.Millisecond),
			r.Ckpt.Round(time.Millisecond),
			r.DirtyParts, r.Flushed, r.Compactions, r.BGRuns)
	}
	return b.String()
}
