package bench

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/metrics"
)

// ---------------------------------------------------------------------
// Core sweep: the durable incremental iterative engine across partition
// counts and shuffle budgets. Not a paper figure — it profiles this
// reproduction's serving-grade core (the ROADMAP's durability axis):
// refresh wall-clock, delta traffic, and the dirty-group checkpoint
// shape (how many partition snapshots and state entries the
// per-iteration checkpoints actually flushed, vs the full state rewrite
// the pre-durable engine performed).
// ---------------------------------------------------------------------

// CoreRow is one configuration's profile.
type CoreRow struct {
	Partitions     int
	Budget         int64
	Initial        time.Duration
	Refresh        time.Duration
	Iterations     int
	DeltaRecords   int64
	ShuffleBytes   int64
	DirtyCkptParts int64 // partition snapshots flushed across the refresh's checkpoints
	GroupsFlushed  int64 // state/baseline entries those flushes wrote
	StateSegments  int64
	Compactions    int64
}

// CoreSweep runs an incremental PageRank refresh (per-iteration
// checkpointing on) at each (partitions, budget) configuration under
// dir, timing the initial convergence and the refresh and collecting
// the state-store counters.
func CoreSweep(dir string, sc Scale) ([]CoreRow, error) {
	graph := datagen.Graph(sc.Seed+200, sc.GraphVertices, sc.GraphDegree)
	deltas, _ := datagen.Mutate(sc.Seed+201, graph, datagen.MutateOptions{
		ModifyFraction: sc.DeltaFraction,
		Rewrite:        datagen.RewireGraphValue(sc.GraphVertices),
	})

	partCounts := []int{2, sc.Partitions}
	if sc.Partitions == 2 {
		partCounts = []int{2, 4}
	}
	budgets := []int64{0, 64 << 10}

	var rows []CoreRow
	for _, parts := range partCounts {
		for _, budget := range budgets {
			env, err := NewEnv(filepath.Join(dir, fmt.Sprintf("p%d-b%d", parts, budget)), sc.Nodes)
			if err != nil {
				return nil, err
			}
			if err := env.Eng.FS().WriteAllPairs("core/g0", graph); err != nil {
				return nil, err
			}
			if err := env.Eng.FS().WriteAllDeltas("core/delta", deltas); err != nil {
				return nil, err
			}
			spec := apps.PageRankSpec(fmt.Sprintf("coresweep-p%d-b%d", parts, budget), apps.DefaultDamping)
			r, err := core.NewRunner(env.Eng, spec, core.Config{
				NumPartitions: parts, MaxIterations: sc.MaxIterations, Epsilon: sc.Epsilon,
				Checkpoint: true, ShuffleMemoryBudget: budget, StoreOpts: sc.storeOpts(),
			})
			if err != nil {
				return nil, err
			}
			initStart := time.Now()
			if _, err := r.RunInitial("core/g0"); err != nil {
				r.Close()
				return nil, err
			}
			initTime := time.Since(initStart)
			refreshStart := time.Now()
			res, err := r.RunIncremental("core/delta")
			if err != nil {
				r.Close()
				return nil, err
			}
			// Shuffle traffic is reported per iteration; fold it up.
			var shuffleBytes int64
			for _, s := range res.PerIter {
				shuffleBytes += s.Stages.Counters["shuffle.bytes"]
			}
			rows = append(rows, CoreRow{
				Partitions:     parts,
				Budget:         budget,
				Initial:        initTime,
				Refresh:        time.Since(refreshStart),
				Iterations:     res.Iterations,
				DeltaRecords:   res.Report.Counter(metrics.CounterDeltaRecords),
				ShuffleBytes:   shuffleBytes,
				DirtyCkptParts: res.Report.Counter(metrics.CounterStateDirtyPartitions),
				GroupsFlushed:  res.Report.Counter(metrics.CounterStateGroupsFlushed),
				StateSegments:  res.Report.Counter(metrics.CounterStateSegments),
				Compactions:    res.Report.Counter(metrics.CounterStateCompactions),
			})
			if err := r.Close(); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// FormatCoreSweep renders the sweep.
func FormatCoreSweep(rows []CoreRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Core sweep — durable incremental iterative refresh (checkpoint every iteration)\n")
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %6s %8s %10s %6s %8s %5s %6s\n",
		"parts", "budget", "initial", "refresh", "iters", "records", "shuffle-B", "dirty", "flushed", "segs", "compac")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %8d %10s %10s %6d %8d %10d %6d %8d %5d %6d\n",
			r.Partitions, r.Budget,
			r.Initial.Round(time.Millisecond), r.Refresh.Round(time.Millisecond),
			r.Iterations, r.DeltaRecords, r.ShuffleBytes,
			r.DirtyCkptParts, r.GroupsFlushed, r.StateSegments, r.Compactions)
	}
	return b.String()
}
