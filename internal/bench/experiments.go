package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/baseline/sparksim"
	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mrbg"
)

// ---------------------------------------------------------------------
// Fig. 9: run time of the individual MapReduce stages for PageRank
// (plainMR recomp vs iterMR recomp vs i2MR incremental).
// ---------------------------------------------------------------------

// Fig9Row is one system's stage breakdown.
type Fig9Row struct {
	System string
	Stages metrics.Snapshot
}

// Fig9 measures the per-stage times.
func Fig9(env *Env, sc Scale) ([]Fig9Row, error) {
	g0 := datagen.Graph(sc.Seed+40, sc.GraphVertices, sc.GraphDegree)
	if err := env.Eng.FS().WriteAllPairs("fig9/g0", g0); err != nil {
		return nil, err
	}
	deltas, g1 := datagen.Mutate(sc.Seed+41, g0, datagen.MutateOptions{
		ModifyFraction: sc.DeltaFraction,
		Rewrite:        datagen.RewireGraphValue(sc.GraphVertices),
	})
	if err := env.Eng.FS().WriteAllDeltas("fig9/delta", deltas); err != nil {
		return nil, err
	}
	if err := env.Eng.FS().WriteAllPairs("fig9/g1", g1); err != nil {
		return nil, err
	}

	spec := apps.PageRankSpec("fig9-ref", apps.DefaultDamping)
	iters, _, _, err := refIterations(env, spec, sc.Partitions, sc.MaxIterations, sc.Epsilon, sc.ShuffleMemoryBudget, "fig9/g1", nil)
	if err != nil {
		return nil, err
	}

	_, plainRep, err := apps.PageRankPlainMR(env.Eng, "fig9-plain", "fig9/g1", iters, apps.DefaultDamping)
	if err != nil {
		return nil, err
	}

	ir, err := newIterRunner(env, apps.PageRankSpec("fig9-iter", apps.DefaultDamping), sc, "fig9/g1")
	if err != nil {
		return nil, err
	}
	iterRes, err := ir.Run()
	if err != nil {
		return nil, err
	}

	r, err := core.NewRunner(env.Eng, apps.PageRankSpec("fig9-i2", apps.DefaultDamping), core.Config{
		NumPartitions: sc.Partitions, MaxIterations: sc.MaxIterations, Epsilon: sc.Epsilon,
		CPC: true, FilterThreshold: sc.CPCThreshold,
		StoreOpts: sc.storeOpts(),
	})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if _, err := r.RunInitial("fig9/g0"); err != nil {
		return nil, err
	}
	incRes, err := r.RunIncremental("fig9/delta")
	if err != nil {
		return nil, err
	}

	return []Fig9Row{
		{System: "plainMR recomp", Stages: plainRep.Snapshot()},
		{System: "iterMR recomp", Stages: iterRes.Report.Snapshot()},
		{System: "i2MR incr", Stages: incRes.Report.Snapshot()},
	}, nil
}

func newIterRunner(env *Env, spec core.Spec, sc Scale, input string) (*iterRunner, error) {
	r, err := iterNew(env, spec, sc)
	if err != nil {
		return nil, err
	}
	if _, err := r.LoadStructure(input); err != nil {
		return nil, err
	}
	return r, nil
}

// FormatFig9 renders the stage table.
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — PageRank time per MapReduce stage (summed over iterations)\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %10s\n", "system", "map", "shuffle", "sort", "reduce")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10s %10s %10s %10s\n", r.System,
			r.Stages.Stages[metrics.StageMap].Round(time.Millisecond),
			r.Stages.Stages[metrics.StageShuffle].Round(time.Millisecond),
			r.Stages.Stages[metrics.StageSort].Round(time.Millisecond),
			r.Stages.Stages[metrics.StageReduce].Round(time.Millisecond))
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Table 4: MRBG-Store read strategies during incremental iterative
// PageRank — #reads, bytes read, merge (reduce-stage) time.
// ---------------------------------------------------------------------

// Table4Row is one strategy's I/O profile.
type Table4Row struct {
	Technique string
	Reads     int64
	ReadBytes int64
	MergeTime time.Duration
}

// Table4 sweeps the four read strategies.
func Table4(env *Env, sc Scale) ([]Table4Row, error) {
	g0 := datagen.Graph(sc.Seed+50, sc.GraphVertices, sc.GraphDegree)
	if err := env.Eng.FS().WriteAllPairs("table4/g0", g0); err != nil {
		return nil, err
	}
	deltas, _ := datagen.Mutate(sc.Seed+51, g0, datagen.MutateOptions{
		ModifyFraction: sc.DeltaFraction,
		Rewrite:        datagen.RewireGraphValue(sc.GraphVertices),
	})
	if err := env.Eng.FS().WriteAllDeltas("table4/delta", deltas); err != nil {
		return nil, err
	}

	strategies := []mrbg.ReadStrategy{
		mrbg.IndexOnly, mrbg.SingleFixedWindow, mrbg.MultiFixedWindow, mrbg.MultiDynamicWindow,
	}
	rows := make([]Table4Row, 0, len(strategies))
	for i, strat := range strategies {
		r, err := core.NewRunner(env.Eng, apps.PageRankSpec(fmt.Sprintf("table4-%d", i), apps.DefaultDamping), core.Config{
			NumPartitions: sc.Partitions, MaxIterations: sc.MaxIterations, Epsilon: sc.Epsilon,
			CPC: true, FilterThreshold: sc.CPCThreshold,
			StoreOpts: mrbg.Options{Strategy: strat, Shards: sc.StoreShards, Parallelism: sc.StoreParallelism},
		})
		if err != nil {
			return nil, err
		}
		if _, err := r.RunInitial("table4/g0"); err != nil {
			r.Close()
			return nil, err
		}
		for _, s := range r.Stores() {
			s.ResetStats()
		}
		res, err := r.RunIncremental("table4/delta")
		if err != nil {
			r.Close()
			return nil, err
		}
		row := Table4Row{Technique: strat.String()}
		for _, s := range r.Stores() {
			st := s.Stats()
			row.Reads += st.Reads
			row.ReadBytes += st.BytesRead
		}
		for _, it := range res.PerIter {
			row.MergeTime += it.Stages.Stages[metrics.StageReduce]
		}
		rows = append(rows, row)
		r.Close()
	}
	return rows, nil
}

// FormatTable4 renders the optimization table.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — MRBG-Store read strategies (incremental iterative PageRank)\n")
	fmt.Fprintf(&b, "%-22s %10s %14s %12s\n", "technique", "#reads", "rsize(bytes)", "merge time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10d %14d %12s\n", r.Technique, r.Reads, r.ReadBytes, r.MergeTime.Round(time.Millisecond))
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Fig. 10: effect of the change propagation filter threshold on run
// time and mean error (PageRank, 10% delta, FT in {0.1, 0.5, 1}).
// ---------------------------------------------------------------------

// Fig10Row is one threshold's outcome.
type Fig10Row struct {
	FT        float64
	Runtime   time.Duration
	MeanError float64
}

// Fig10 sweeps the filter threshold.
func Fig10(env *Env, sc Scale) ([]Fig10Row, error) {
	g0 := datagen.Graph(sc.Seed+60, sc.GraphVertices, sc.GraphDegree)
	if err := env.Eng.FS().WriteAllPairs("fig10/g0", g0); err != nil {
		return nil, err
	}
	deltas, g1 := datagen.Mutate(sc.Seed+61, g0, datagen.MutateOptions{
		ModifyFraction: sc.DeltaFraction,
		Rewrite:        datagen.RewireGraphValue(sc.GraphVertices),
	})
	if err := env.Eng.FS().WriteAllDeltas("fig10/delta", deltas); err != nil {
		return nil, err
	}
	if err := env.Eng.FS().WriteAllPairs("fig10/g1", g1); err != nil {
		return nil, err
	}
	// Exact reference (computed offline): converged run on the updated
	// graph.
	_, exact, _, err := refIterations(env, apps.PageRankSpec("fig10-ref", apps.DefaultDamping),
		sc.Partitions, 300, 1e-10, sc.ShuffleMemoryBudget, "fig10/g1", nil)
	if err != nil {
		return nil, err
	}

	// The paper sweeps absolute thresholds 0.1/0.5/1 on ranks whose
	// mean is 1 — the same scale as ours.
	fts := []float64{0.1, 0.5, 1}
	rows := make([]Fig10Row, 0, len(fts))
	for i, ft := range fts {
		cfg := core.Config{
			NumPartitions: sc.Partitions, MaxIterations: sc.MaxIterations, Epsilon: sc.Epsilon,
			CPC: true, FilterThreshold: ft,
			StoreOpts: sc.storeOpts(),
		}
		r, err := core.NewRunner(env.Eng, apps.PageRankSpec(fmt.Sprintf("fig10-%d", i), apps.DefaultDamping), cfg)
		if err != nil {
			return nil, err
		}
		if _, err := r.RunInitial("fig10/g0"); err != nil {
			r.Close()
			return nil, err
		}
		start := time.Now()
		if _, err := r.RunIncremental("fig10/delta"); err != nil {
			r.Close()
			return nil, err
		}
		runtime := time.Since(start)
		got := r.State()
		r.Close()

		var errSum float64
		var n int
		for k, ev := range exact {
			e := parseFloat(ev)
			if e == 0 {
				continue
			}
			errSum += math.Abs(parseFloat(got[k])-e) / e
			n++
		}
		row := Fig10Row{FT: ft, Runtime: runtime}
		if n > 0 {
			row.MeanError = errSum / float64(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func parseFloat(s string) float64 {
	var f float64
	fmt.Sscanf(s, "%g", &f)
	return f
}

// FormatFig10 renders the threshold sweep.
func FormatFig10(rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 — change propagation control (PageRank, 10%% delta)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "FT", "runtime", "mean error")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.2f %12s %11.4f%%\n", r.FT, r.Runtime.Round(time.Millisecond), r.MeanError*100)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Fig. 11: per-iteration propagated kv-pairs and runtime, without CPC
// and with FT in {1, 0.5, 0.1}, on a 1% delta.
// ---------------------------------------------------------------------

// Fig11Series is one configuration's per-iteration trace.
type Fig11Series struct {
	Label      string
	Propagated []int
	Runtime    []time.Duration
}

// Fig11 traces change propagation per iteration.
func Fig11(env *Env, sc Scale) ([]Fig11Series, error) {
	g0 := datagen.Graph(sc.Seed+70, sc.GraphVertices, sc.GraphDegree)
	if err := env.Eng.FS().WriteAllPairs("fig11/g0", g0); err != nil {
		return nil, err
	}
	deltas, _ := datagen.Mutate(sc.Seed+71, g0, datagen.MutateOptions{
		ModifyFraction: 0.01, // the paper uses a 1% delta here
		Rewrite:        datagen.RewireGraphValue(sc.GraphVertices),
	})
	if err := env.Eng.FS().WriteAllDeltas("fig11/delta", deltas); err != nil {
		return nil, err
	}

	type cfgCase struct {
		label string
		cpc   bool
		ft    float64
	}
	// The paper sweeps FT in {1, 0.5, 0.1} on ranks of magnitude |N|/n
	// per vertex-degree; our ranks are O(1), so the thresholds scale
	// down by the same factor to keep the per-iteration dynamics
	// observable (EXPERIMENTS.md discusses the scaling).
	cases := []cfgCase{
		{"w/o CPC", false, 0},
		{"FT=hi", true, 0.1},
		{"FT=mid", true, 0.05},
		{"FT=lo", true, 0.01},
	}
	var out []Fig11Series
	for i, c := range cases {
		cfg := core.Config{
			NumPartitions: sc.Partitions,
			MaxIterations: 10, // the paper shows 10 iterations
			Epsilon:       1e-9,
			CPC:           c.cpc, FilterThreshold: c.ft,
			// Disable the P_delta fallback so propagation growth is
			// observable, as in the paper's Fig. 11 "w/o CPC" line.
			PDeltaThreshold: 1.1,
			StoreOpts:       sc.storeOpts(),
		}
		r, err := core.NewRunner(env.Eng, apps.PageRankSpec(fmt.Sprintf("fig11-%d", i), apps.DefaultDamping), cfg)
		if err != nil {
			return nil, err
		}
		if _, err := r.RunInitial("fig11/g0"); err != nil {
			r.Close()
			return nil, err
		}
		res, err := r.RunIncremental("fig11/delta")
		if err != nil {
			r.Close()
			return nil, err
		}
		s := Fig11Series{Label: c.label}
		for _, it := range res.PerIter {
			s.Propagated = append(s.Propagated, it.Propagated)
			s.Runtime = append(s.Runtime, it.Duration)
		}
		out = append(out, s)
		r.Close()
	}
	return out, nil
}

// FormatFig11 renders the propagation traces.
func FormatFig11(series []Fig11Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 — propagated kv-pairs and per-iteration runtime (PageRank, 1%% delta)\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-8s propagated:", s.Label)
		for _, p := range s.Propagated {
			fmt.Fprintf(&b, " %6d", p)
		}
		fmt.Fprintf(&b, "\n%-8s runtime:  ", s.Label)
		for _, d := range s.Runtime {
			fmt.Fprintf(&b, " %6s", d.Round(time.Millisecond))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Fig. 12: Spark vs iterMR vs plainMR on PageRank across growing input
// sizes; the Spark simulator's memory cap sits between the two largest
// datasets.
// ---------------------------------------------------------------------

// Fig12Row is one dataset size's timings.
type Fig12Row struct {
	Dataset      string
	Vertices     int
	PlainMR      time.Duration
	IterMR       time.Duration
	Spark        time.Duration
	SparkSpilled bool
}

// Fig12 compares the systems across dataset sizes.
func Fig12(env *Env, sc Scale, spillDir string) ([]Fig12Row, error) {
	sizes := []struct {
		name string
		n    int
	}{
		{"ClueWeb-xs", sc.GraphVertices / 8},
		{"ClueWeb-s", sc.GraphVertices / 4},
		{"ClueWeb-m", sc.GraphVertices},
		{"ClueWeb-l", sc.GraphVertices * 3},
	}
	const iters = 6

	// Memory cap: generous for the three smaller graphs, exceeded by
	// the largest one (PageRank holds links + ranks + joined +
	// contributions at once).
	mediumBytes := approxGraphBytes(datagen.Graph(sc.Seed+80, sizes[2].n, sc.GraphDegree))
	memCap := mediumBytes * 6

	rows := make([]Fig12Row, 0, len(sizes))
	for i, size := range sizes {
		g := datagen.Graph(sc.Seed+80, size.n, sc.GraphDegree)
		path := fmt.Sprintf("fig12/g%d", i)
		if err := env.Eng.FS().WriteAllPairs(path, g); err != nil {
			return nil, err
		}
		row := Fig12Row{Dataset: size.name, Vertices: size.n}

		plainStart := time.Now()
		_, plainRep, err := apps.PageRankPlainMR(env.Eng, fmt.Sprintf("fig12-plain-%d", i), path, iters, apps.DefaultDamping)
		if err != nil {
			return nil, err
		}
		row.PlainMR = effective(time.Since(plainStart), plainRep)

		ir, err := iterNew(env, apps.PageRankSpec(fmt.Sprintf("fig12-iter-%d", i), apps.DefaultDamping), Scale{
			Partitions: sc.Partitions, MaxIterations: iters,
		})
		if err != nil {
			return nil, err
		}
		iterStart := time.Now()
		if _, err := ir.LoadStructure(path); err != nil {
			return nil, err
		}
		if _, err := ir.Run(); err != nil {
			return nil, err
		}
		row.IterMR = time.Since(iterStart)

		ctx, err := sparksim.NewContext(memCap, fmt.Sprintf("%s/fig12-%d", spillDir, i))
		if err != nil {
			return nil, err
		}
		sparkStart := time.Now()
		SparkPageRank(ctx, g, sc.Partitions, iters, apps.DefaultDamping)
		row.Spark = time.Since(sparkStart)
		row.SparkSpilled = ctx.SpilledBytes > 0
		rows = append(rows, row)
	}
	return rows, nil
}

func approxGraphBytes(ps []kv.Pair) int64 {
	var b int64
	for _, p := range ps {
		b += int64(len(p.Key) + len(p.Value) + 16)
	}
	return b
}

// SparkPageRank is the canonical RDD-style PageRank loop on the Spark
// simulator (links join ranks -> contributions -> reduceByKey).
func SparkPageRank(ctx *sparksim.Context, graph []kv.Pair, parts, iters int, damping float64) map[string]string {
	links := ctx.Parallelize(graph, parts)
	ranks0 := make([]kv.Pair, len(graph))
	for i, p := range graph {
		ranks0[i] = kv.Pair{Key: p.Key, Value: "1"}
	}
	ranks := ctx.Parallelize(ranks0, parts)
	sum := func(a, b string) string {
		return fmt.Sprintf("%g", parseFloat(a)+parseFloat(b))
	}
	for it := 0; it < iters; it++ {
		joined := links.Join(ranks)
		contribs := joined.FlatMap(func(p kv.Pair, emit func(kv.Pair)) {
			sv, dv, _ := strings.Cut(p.Value, "\x1f")
			emit(kv.Pair{Key: p.Key, Value: "0"})
			outs := strings.Fields(sv)
			if len(outs) == 0 {
				return
			}
			share := fmt.Sprintf("%g", parseFloat(dv)/float64(len(outs)))
			for _, j := range outs {
				emit(kv.Pair{Key: j, Value: share})
			}
		})
		newRanks := contribs.ReduceByKey(sum).MapValues(func(v string) string {
			return fmt.Sprintf("%g", damping*parseFloat(v)+(1-damping))
		})
		joined.Unpersist()
		contribs.Unpersist()
		ranks.Unpersist()
		ranks = newRanks
	}
	out := make(map[string]string)
	for _, p := range ranks.Collect() {
		out[p.Key] = p.Value
	}
	return out
}

// FormatFig12 renders the size sweep.
func FormatFig12(rows []Fig12Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 — PageRank runtime vs input size (Spark memory cap between m and l)\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %12s %8s\n", "dataset", "vertices", "plainMR", "iterMR", "Spark", "spilled")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10d %12s %12s %12s %8v\n", r.Dataset, r.Vertices,
			r.PlainMR.Round(time.Millisecond), r.IterMR.Round(time.Millisecond),
			r.Spark.Round(time.Millisecond), r.SparkSpilled)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Fig. 13: fault recovery progress — task attempt timeline with three
// injected failures during incremental iterative PageRank.
// ---------------------------------------------------------------------

// Fig13Result carries the timeline and recovery measurements.
type Fig13Result struct {
	Events    []cluster.Event
	Failures  int
	Recovered bool
	// MaxRecovery is the longest failed-attempt-to-successful-retry gap.
	MaxRecovery time.Duration
}

// Fig13 injects failures and records the recovery timeline.
func Fig13(env *Env, sc Scale) (*Fig13Result, error) {
	g0 := datagen.Graph(sc.Seed+90, sc.GraphVertices, sc.GraphDegree)
	if err := env.Eng.FS().WriteAllPairs("fig13/g0", g0); err != nil {
		return nil, err
	}
	deltas, _ := datagen.Mutate(sc.Seed+91, g0, datagen.MutateOptions{
		ModifyFraction: sc.DeltaFraction,
		Rewrite:        datagen.RewireGraphValue(sc.GraphVertices),
	})
	if err := env.Eng.FS().WriteAllDeltas("fig13/delta", deltas); err != nil {
		return nil, err
	}

	r, err := core.NewRunner(env.Eng, apps.PageRankSpec("fig13", apps.DefaultDamping), core.Config{
		NumPartitions: sc.Partitions, MaxIterations: sc.MaxIterations, Epsilon: sc.Epsilon,
		CPC: true, FilterThreshold: sc.CPCThreshold, Checkpoint: true,
		StoreOpts: sc.storeOpts(),
	})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if _, err := r.RunInitial("fig13/g0"); err != nil {
		return nil, err
	}

	// Three injected failures, echoing the paper's map task 7 (it 3),
	// reduce task 39 (it 6), map task 58 (it 7) — scaled to our task
	// names. Delays simulate partially-completed work.
	env.Eng.Cluster().ResetFailures()
	env.Eng.Cluster().InjectFailure(cluster.Failure{
		Task: "fig13/j2-it001/reduce-0000", Attempt: 1, Delay: 5 * time.Millisecond,
	})
	env.Eng.Cluster().InjectFailure(cluster.Failure{
		Task: "fig13/j2-statemap-0001", Attempt: 1, Delay: 5 * time.Millisecond,
	})
	env.Eng.Cluster().InjectFailure(cluster.Failure{
		Task: "fig13/j2-it002/reduce-0001", Attempt: 1, Delay: 5 * time.Millisecond, DownNode: true,
	})
	res, err := r.RunIncremental("fig13/delta")
	env.Eng.Cluster().ResetFailures()
	if err != nil {
		return nil, err
	}

	out := &Fig13Result{Events: res.Events, Recovered: true}
	// Match each failure with its successful retry.
	for _, e := range res.Events {
		if !e.Failed {
			continue
		}
		out.Failures++
		recovered := false
		for _, e2 := range res.Events {
			if e2.Task == e.Task && e2.Attempt == e.Attempt+1 {
				if gap := e2.End - e.Start; gap > out.MaxRecovery {
					out.MaxRecovery = gap
				}
				recovered = !e2.Failed
				break
			}
		}
		if !recovered {
			out.Recovered = false
		}
	}
	return out, nil
}

// FormatFig13 renders the recovery timeline.
func FormatFig13(res *Fig13Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 — fault recovery (3 injected failures; max recovery %s)\n",
		res.MaxRecovery.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-40s %5s %8s %10s %10s %7s\n", "task", "node", "attempt", "start", "end", "status")
	for _, e := range res.Events {
		status := "ok"
		if e.Failed {
			status = "FAILED"
		}
		fmt.Fprintf(&b, "%-40s %5d %8d %10s %10s %7s\n",
			e.Task, e.Node, e.Attempt,
			e.Start.Round(time.Millisecond), e.End.Round(time.Millisecond), status)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Sec. 8.2 one-step: APriori re-computation vs incremental refresh.
// ---------------------------------------------------------------------

// APrioriResult compares the two refresh strategies.
type APrioriResult struct {
	Recompute   time.Duration
	Incremental time.Duration
	Speedup     float64
	Pairs       int
}

// APriori measures the one-step incremental speedup (the paper reports
// 1608 s vs 131 s, a ~12x speedup).
func APriori(env *Env, sc Scale) (*APrioriResult, error) {
	tweets := datagen.Tweets(sc.Seed+100, sc.Tweets, sc.Vocab, sc.WordsPerTweet)
	if err := env.Eng.FS().WriteAllPairs("apriori/t0", tweets); err != nil {
		return nil, err
	}
	minSupport := sc.Tweets / 20
	frequent, _, err := apps.FrequentWords(env.Eng, "apriori", "apriori/t0", minSupport)
	if err != nil {
		return nil, err
	}

	mkJob := func(name string) incr.Job {
		job := apps.APrioriJob(name, frequent)
		job.StoreOpts = sc.storeOpts()
		job.ShuffleMemoryBudget = sc.ShuffleMemoryBudget
		return job
	}
	runner, err := incr.NewRunner(env.Eng, mkJob("apriori-count"))
	if err != nil {
		return nil, err
	}
	defer runner.Close()
	if _, err := runner.RunInitial("apriori/t0", "apriori/out0"); err != nil {
		return nil, err
	}

	// The paper's delta: the last week of tweets, 7.9% of the corpus.
	deltas := datagen.AppendTweets(sc.Seed+101, tweets, 0.079, sc.Vocab, sc.WordsPerTweet)
	if err := env.Eng.FS().WriteAllDeltas("apriori/delta", deltas); err != nil {
		return nil, err
	}
	merged := append([]kv.Pair(nil), tweets...)
	for _, d := range deltas {
		merged = append(merged, kv.Pair{Key: d.Key, Value: d.Value})
	}
	if err := env.Eng.FS().WriteAllPairs("apriori/t1", merged); err != nil {
		return nil, err
	}

	// Re-computation: full counting job (with startup) on the merged
	// corpus.
	recompStart := time.Now()
	recomp, err := incr.NewRunner(env.Eng, mkJob("apriori-recomp"))
	if err != nil {
		return nil, err
	}
	defer recomp.Close()
	rep, err := recomp.RunInitial("apriori/t1", "apriori/out-recomp")
	if err != nil {
		return nil, err
	}
	recompTime := effective(time.Since(recompStart), rep) + apps.StartupCost

	incrStart := time.Now()
	if _, err := runner.RunDelta("apriori/delta", "apriori/out1"); err != nil {
		return nil, err
	}
	incrTime := time.Since(incrStart)

	finalOuts, err := runner.Outputs()
	if err != nil {
		return nil, err
	}
	res := &APrioriResult{
		Recompute:   recompTime,
		Incremental: incrTime,
		Pairs:       len(finalOuts),
	}
	if incrTime > 0 {
		res.Speedup = float64(recompTime) / float64(incrTime)
	}
	return res, nil
}

// FormatAPriori renders the one-step comparison.
func FormatAPriori(res *APrioriResult) string {
	return fmt.Sprintf(
		"Sec. 8.2 — APriori one-step refresh (7.9%% appended)\nrecompute:   %s\nincremental: %s\nspeedup:     %.1fx (%d frequent pairs)\n",
		res.Recompute.Round(time.Millisecond), res.Incremental.Round(time.Millisecond), res.Speedup, res.Pairs)
}
