package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/ingest"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/serve"
)

// ---------------------------------------------------------------------
// Ingest sweep: freshness lag vs ingest rate across micro-batching
// policies. Not a paper figure — the paper refreshes on demand; this
// measures the continuous-ingestion pipeline (internal/ingest) the
// ROADMAP targets: records streamed in at a steady rate, staged
// durably, micro-batched into serve-refreshes, and the per-record
// freshness lag (durable accept to epoch flip) profiled end to end.
// ---------------------------------------------------------------------

// IngestRow is one (policy, rate) cell's freshness profile.
type IngestRow struct {
	// Policy names the micro-batching policy variant; Rate is the
	// offered load in records/second.
	Policy string
	Rate   int
	// Records / Batches are what actually flowed; Rejected counts
	// backpressure rejections (0 in the blocking configs).
	Records  int64
	Batches  int64
	Rejected int64
	// MeanLag/P50/P99/MaxLag profile the per-record freshness lag: the
	// time from durable accept to the epoch flip that made the record
	// readable.
	MeanLag time.Duration
	P50     time.Duration
	P99     time.Duration
	MaxLag  time.Duration
	// MeanRefresh is the mean refresh wall-clock per micro-batch.
	MeanRefresh time.Duration
}

// ingestFeedTime is how long each cell offers load — short enough for
// the smoke run, long enough to span several MaxLag windows of the
// tightest policy.
const ingestFeedTime = 500 * time.Millisecond

// ingestPolicy is one micro-batching policy variant under test.
type ingestPolicy struct {
	name string
	pol  ingest.Policy
}

// IngestSweep prepares a fine-grain WordCount behind a serve.Server,
// then for each (policy, rate) cell streams synthetic delta records
// through a fresh Ingester at the offered rate and profiles the
// per-record freshness lag. The tension the sweep exposes: a tight
// MaxLag refreshes eagerly (low lag, many small batches) until the
// refresh cost itself saturates; a loose MaxLag or a record cap
// amortizes refreshes better but every record waits for its batch.
func IngestSweep(env *Env, sc Scale) ([]IngestRow, error) {
	corpus := datagen.Tweets(sc.Seed+240, sc.Tweets, sc.Vocab, sc.WordsPerTweet)
	if err := env.Eng.FS().WriteAllPairs("ingest/t0", corpus); err != nil {
		return nil, err
	}
	job := apps.FineGrainWordCountJob("ingest-wc")
	job.NumReducers = sc.Partitions
	job.StoreOpts = sc.storeOpts()
	job.ShuffleMemoryBudget = sc.ShuffleMemoryBudget
	runner, err := incr.NewRunner(env.Eng, job)
	if err != nil {
		return nil, err
	}
	defer runner.Close()
	if _, err := runner.RunInitial("ingest/t0", "ingest/out0"); err != nil {
		return nil, err
	}
	srv, err := serve.NewOneStep(runner, serve.Options{})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	stagingRoot, err := os.MkdirTemp("", "i2mr-bench-ingest-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(stagingRoot)

	policies := []ingestPolicy{
		{name: "lag-50ms", pol: ingest.Policy{MaxLag: 50 * time.Millisecond}},
		{name: "lag-250ms", pol: ingest.Policy{MaxLag: 250 * time.Millisecond}},
		{name: "records-64", pol: ingest.Policy{MaxLag: time.Second, MaxBatchRecords: 64}},
	}
	rates := []int{200, 1000, 4000}

	// The record stream: fresh mutation rounds of the evolving corpus,
	// generated ahead of each cell so generation cost stays out of the
	// measured path.
	current := corpus
	nextStream := func(seed int64, n int) []kv.Delta {
		var out []kv.Delta
		for round := 0; len(out) < n; round++ {
			deltas, mutated := datagen.Mutate(seed+int64(round), current, datagen.MutateOptions{
				ModifyFraction: sc.DeltaFraction,
				Rewrite: func(rng *rand.Rand, key, value string) string {
					return value + fmt.Sprintf(" w%04d", rng.Intn(sc.Vocab))
				},
			})
			current = mutated
			out = append(out, deltas...)
		}
		return out[:n]
	}

	var rows []IngestRow
	cell := 0
	for _, pc := range policies {
		for _, rate := range rates {
			cell++
			stream := nextStream(sc.Seed+int64(300+cell*10), rate*int(ingestFeedTime)/int(time.Second))
			row, err := ingestCell(env, runner, srv,
				filepath.Join(stagingRoot, fmt.Sprintf("cell-%d", cell)),
				fmt.Sprintf("ingest/in-%d", cell), fmt.Sprintf("ingest/out-%d", cell),
				pc, rate, stream)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

// ingestCell runs one (policy, rate) cell: a fresh Ingester over its
// own staging dir and DFS prefixes, records offered at the target rate,
// per-record lag measured from durable accept to batch commit.
func ingestCell(env *Env, runner *incr.Runner, srv *serve.Server, dir, inPrefix, outPrefix string,
	pc ingestPolicy, rate int, stream []kv.Delta) (*IngestRow, error) {
	// enqBySeq[seq-1] is record seq's accept stamp. The cell is the
	// only producer and sequence numbers start at 1 in a fresh staging
	// dir, so stamps can be appended before AddBatch assigns the seqs —
	// OnBatchApplied (the loop goroutine) then always finds them.
	var mu sync.Mutex
	enqBySeq := make([]time.Time, 0, len(stream))
	var lags []time.Duration
	var refreshTotal time.Duration

	in, err := ingest.Open(ingest.Config{
		Dir:             dir,
		Refresh:         ingest.BindServe(srv, runner),
		WriteDeltas:     env.Eng.FS().WriteAllDeltas,
		AppliedJobs:     runner.CompletedJobs,
		DeltaPathPrefix: inPrefix,
		OutputPrefix:    outPrefix,
		Policy:          pc.pol,
		OnBatchApplied: func(b ingest.Batch) {
			mu.Lock()
			defer mu.Unlock()
			refreshTotal += b.Wall
			for seq := b.FirstSeq; seq <= b.LastSeq; seq++ {
				lags = append(lags, b.Applied.Sub(enqBySeq[seq-1]))
			}
		},
	})
	if err != nil {
		return nil, err
	}
	in.Start()

	// Offer the stream at the target rate in 10ms slices.
	perSlice := rate / 100
	if perSlice < 1 {
		perSlice = 1
	}
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for offered := 0; offered < len(stream); {
		<-ticker.C
		n := perSlice
		if offered+n > len(stream) {
			n = len(stream) - offered
		}
		now := time.Now()
		mu.Lock()
		for i := 0; i < n; i++ {
			enqBySeq = append(enqBySeq, now)
		}
		mu.Unlock()
		if _, _, err := in.AddBatch(stream[offered : offered+n]); err != nil {
			in.Close() //nolint:errcheck // cell already failed
			return nil, err
		}
		offered += n
	}
	if err := in.Flush(); err != nil {
		return nil, err
	}
	st := in.Stats()
	if err := in.Close(); err != nil {
		return nil, err
	}

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(lags, func(a, b int) bool { return lags[a] < lags[b] })
	row := &IngestRow{
		Policy:   pc.name,
		Rate:     rate,
		Records:  st.Records,
		Batches:  st.Batches,
		Rejected: st.Rejected,
	}
	if len(lags) > 0 {
		var total time.Duration
		for _, l := range lags {
			total += l
		}
		row.MeanLag = total / time.Duration(len(lags))
		row.P50 = lags[len(lags)/2]
		row.P99 = lags[len(lags)*99/100]
		row.MaxLag = lags[len(lags)-1]
	}
	if st.Batches > 0 {
		row.MeanRefresh = refreshTotal / time.Duration(st.Batches)
	}
	return row, nil
}

// FormatIngest renders the sweep.
func FormatIngest(rows []IngestRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ingest sweep — freshness lag vs ingest rate across micro-batching policies\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %10s %10s %10s %10s %10s %9s\n",
		"policy", "rate", "records", "batches", "mean_lag", "p50", "p99", "max", "refresh", "rejected")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %8d %8d %10s %10s %10s %10s %10s %9d\n",
			r.Policy, r.Rate, r.Records, r.Batches,
			r.MeanLag.Round(time.Millisecond), r.P50.Round(time.Millisecond),
			r.P99.Round(time.Millisecond), r.MaxLag.Round(time.Millisecond),
			r.MeanRefresh.Round(time.Millisecond), r.Rejected)
	}
	return b.String()
}
