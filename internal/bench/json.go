package bench

import (
	"encoding/json"
	"fmt"

	"i2mapreduce/internal/fsutil"
)

// JSONRecord is one machine-readable benchmark measurement, the unit of
// the BENCH_core.json artifact CI uploads from the bench-smoke job so
// the perf trajectory can be tracked across commits. One experiment row
// maps to one record: the experiment name, the workload scale it ran
// at, the sweep parameters identifying the row, the headline latency in
// ns/op, the bytes the operation moved, and any secondary counters.
type JSONRecord struct {
	Experiment string            `json:"experiment"`
	Scale      string            `json:"scale"`
	Params     map[string]string `json:"params,omitempty"`
	NsPerOp    int64             `json:"ns_per_op"`
	BytesMoved int64             `json:"bytes_moved"`
	Counters   map[string]int64  `json:"counters,omitempty"`
}

// WriteJSON writes records as an indented JSON array at path.
func WriteJSON(path string, recs []JSONRecord) error {
	if recs == nil {
		recs = []JSONRecord{} // an empty run still yields a valid array, not `null`
	}
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return fsutil.WriteFileAtomic(path, append(b, '\n'))
}

// OneStepJSON converts a one-step sweep into benchmark records; the
// headline op is the incremental refresh.
func OneStepJSON(scale string, rows []OneStepRow) []JSONRecord {
	recs := make([]JSONRecord, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, JSONRecord{
			Experiment: "onestep",
			Scale:      scale,
			Params: map[string]string{
				"delta_fraction": fmt.Sprintf("%g", r.DeltaFraction),
			},
			NsPerOp:    r.Incremental.Nanoseconds(),
			BytesMoved: r.Rewritten + r.SpillBytes,
			Counters: map[string]int64{
				"delta_records":     r.DeltaRecords,
				"recompute_ns":      r.Recompute.Nanoseconds(),
				"spill_runs":        r.SpillRuns,
				"spill_bytes":       r.SpillBytes,
				"dirty_partitions":  r.DirtyParts,
				"total_partitions":  int64(r.TotalParts),
				"rewritten_bytes":   r.Rewritten,
				"result_segments":   r.Segments,
				"result_compaction": r.Compactions,
			},
		})
	}
	return recs
}

// CoreSweepJSON converts the durable-core sweep into benchmark records;
// the headline op is the incremental refresh.
func CoreSweepJSON(scale string, rows []CoreRow) []JSONRecord {
	recs := make([]JSONRecord, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, JSONRecord{
			Experiment: "core",
			Scale:      scale,
			Params: map[string]string{
				"partitions":     fmt.Sprintf("%d", r.Partitions),
				"shuffle_budget": fmt.Sprintf("%d", r.Budget),
			},
			NsPerOp:    r.Refresh.Nanoseconds(),
			BytesMoved: r.ShuffleBytes,
			Counters: map[string]int64{
				"initial_ns":        r.Initial.Nanoseconds(),
				"iterations":        int64(r.Iterations),
				"delta_records":     r.DeltaRecords,
				"ckpt_dirty_parts":  r.DirtyCkptParts,
				"ckpt_groups":       r.GroupsFlushed,
				"state_segments":    r.StateSegments,
				"state_compactions": r.Compactions,
			},
		})
	}
	return recs
}

// CkptJSON converts the checkpoint sweep into benchmark records; the
// headline op is the incremental refresh, with the refresh's
// StageCheckpoint wall-clock as the ckpt_ns counter.
func CkptJSON(scale string, rows []CkptRow) []JSONRecord {
	recs := make([]JSONRecord, 0, len(rows))
	for _, r := range rows {
		mode := "inline"
		if r.Background {
			mode = "background"
		}
		recs = append(recs, JSONRecord{
			Experiment: "ckpt",
			Scale:      scale,
			Params: map[string]string{
				"partitions": fmt.Sprintf("%d", r.Partitions),
				"io_par":     fmt.Sprintf("%d", r.IOPar),
				"compaction": mode,
			},
			NsPerOp: r.Refresh.Nanoseconds(),
			Counters: map[string]int64{
				"initial_ns":        r.Initial.Nanoseconds(),
				"ckpt_ns":           r.Ckpt.Nanoseconds(),
				"ckpt_dirty_parts":  r.DirtyParts,
				"ckpt_groups":       r.Flushed,
				"state_compactions": r.Compactions,
				"bg_runs":           r.BGRuns,
			},
		})
	}
	return recs
}

// ServeJSON converts the serving sweep into benchmark records; the
// headline op is one point lookup (mean service latency), with QPS and
// tail latencies as counters.
func ServeJSON(scale string, rows []ServeRow) []JSONRecord {
	recs := make([]JSONRecord, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, JSONRecord{
			Experiment: "serve",
			Scale:      scale,
			Params: map[string]string{
				"readers": fmt.Sprintf("%d", r.Readers),
			},
			NsPerOp: r.MeanLatency.Nanoseconds(),
			Counters: map[string]int64{
				"qps":          int64(r.QPS),
				"ops":          r.Ops,
				"p50_ns":       r.P50.Nanoseconds(),
				"p99_ns":       r.P99.Nanoseconds(),
				"refresh_ns":   r.RefreshTime.Nanoseconds(),
				"epoch_flips":  r.Flips,
				"cache_hits":   r.CacheHits,
				"cache_misses": r.CacheMisses,
			},
		})
	}
	return recs
}

// ServeColdJSON converts the cold/miss serving sweep into benchmark
// records; the headline op is one uncached point lookup, with the tail
// latencies and the bloom/block counters alongside.
func ServeColdJSON(scale string, rows []ServeColdRow) []JSONRecord {
	recs := make([]JSONRecord, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, JSONRecord{
			Experiment: "servecold",
			Scale:      scale,
			Params: map[string]string{
				"mode": r.Mode,
			},
			NsPerOp: r.MeanLat.Nanoseconds(),
			Counters: map[string]int64{
				"ops":         r.Ops,
				"p50_ns":      r.P50.Nanoseconds(),
				"p99_ns":      r.P99.Nanoseconds(),
				"bloom_skips": r.BloomSkips,
				"blocks_read": r.BlocksRead,
			},
		})
	}
	return recs
}

// PlanJSON converts the planner no-regret sweep into benchmark
// records; the headline op is the mode the planner chose (its observed
// cost), with the per-mode costs, the regret, and the no-regret verdict
// (regret within 15%) as counters.
func PlanJSON(scale string, rows []PlanRow) []JSONRecord {
	recs := make([]JSONRecord, 0, len(rows))
	for _, r := range rows {
		chosen := r.OneStep
		if r.Chosen == "recompute" {
			chosen = r.Recompute
		}
		noRegret := int64(0)
		if r.RegretPct <= 15 {
			noRegret = 1
		}
		cold := int64(0)
		if r.Cold {
			cold = 1
		}
		recs = append(recs, JSONRecord{
			Experiment: "plan",
			Scale:      scale,
			Params: map[string]string{
				"delta_fraction": fmt.Sprintf("%g", r.DeltaFraction),
				"vocab":          fmt.Sprintf("%d", r.Vocab),
				"chosen":         r.Chosen,
				"best":           r.Best,
				"regret_pct":     fmt.Sprintf("%.2f", r.RegretPct),
			},
			NsPerOp: chosen.Nanoseconds(),
			Counters: map[string]int64{
				"delta_records":       r.DeltaRecords,
				"recompute_ns":        r.Recompute.Nanoseconds(),
				"onestep_ns":          r.OneStep.Nanoseconds(),
				"no_regret":           noRegret,
				"cold":                cold,
				"hotkeys_detected":    r.HotDetected,
				"hotkeys_split_recs":  r.HotSplitRecs,
				"hotkeys_merged_grps": r.HotMerged,
			},
		})
	}
	return recs
}

// IngestJSON converts the ingest sweep into benchmark records; the
// headline op is one streamed record's freshness lag (mean accept-to-
// applied time), with the tail lags and batch counters alongside.
func IngestJSON(scale string, rows []IngestRow) []JSONRecord {
	recs := make([]JSONRecord, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, JSONRecord{
			Experiment: "ingest",
			Scale:      scale,
			Params: map[string]string{
				"policy": r.Policy,
				"rate":   fmt.Sprintf("%d", r.Rate),
			},
			NsPerOp: r.MeanLag.Nanoseconds(),
			Counters: map[string]int64{
				"records":    r.Records,
				"batches":    r.Batches,
				"rejected":   r.Rejected,
				"p50_lag_ns": r.P50.Nanoseconds(),
				"p99_lag_ns": r.P99.Nanoseconds(),
				"max_lag_ns": r.MaxLag.Nanoseconds(),
				"refresh_ns": r.MeanRefresh.Nanoseconds(),
			},
		})
	}
	return recs
}

// ShardSweepJSON converts the shard sweep into benchmark records; the
// headline op is the delta merge.
func ShardSweepJSON(scale string, rows []ShardSweepRow) []JSONRecord {
	recs := make([]JSONRecord, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, JSONRecord{
			Experiment: "shards",
			Scale:      scale,
			Params: map[string]string{
				"shards": fmt.Sprintf("%d", r.Shards),
			},
			NsPerOp: r.MergeTime.Nanoseconds(),
			Counters: map[string]int64{
				"query_ns":    r.QueryTime.Nanoseconds(),
				"reads":       r.Reads,
				"live_chunks": int64(r.LiveChunks),
			},
		})
	}
	return recs
}
