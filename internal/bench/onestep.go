package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
)

// ---------------------------------------------------------------------
// One-step sweep: fine-grain incremental refresh vs full re-computation
// across delta sizes. Not a single paper figure — it generalizes the
// Sec. 8.2 one-step comparison into a sweep, and additionally reports
// the delta shuffle's spill counters and the durable result store's
// maintenance counters (segments, compactions, dirty partitions,
// rewritten bytes), the quantities the PR 3 engine is built around.
// ---------------------------------------------------------------------

// OneStepRow is one delta size's profile.
type OneStepRow struct {
	DeltaFraction float64
	DeltaRecords  int64
	Recompute     time.Duration
	Incremental   time.Duration
	Speedup       float64
	SpillRuns     int64
	SpillBytes    int64
	DirtyParts    int64
	TotalParts    int
	Rewritten     int64
	Segments      int64
	Compactions   int64
}

// OneStepSweep refreshes a fine-grain WordCount (deletions included, so
// the full MRBGraph path is exercised) over a tweet corpus with deltas
// of growing size, comparing each refresh against a from-scratch
// re-computation of the merged corpus.
func OneStepSweep(env *Env, sc Scale) ([]OneStepRow, error) {
	fractions := []float64{0.01, 0.05, 0.10, 0.25}
	corpus := datagen.Tweets(sc.Seed+110, sc.Tweets, sc.Vocab, sc.WordsPerTweet)
	if err := env.Eng.FS().WriteAllPairs("onestep/t0", corpus); err != nil {
		return nil, err
	}

	mkJob := func(name string) incr.Job {
		job := apps.FineGrainWordCountJob(name)
		job.NumReducers = sc.Partitions
		job.StoreOpts = sc.storeOpts()
		job.ShuffleMemoryBudget = sc.ShuffleMemoryBudget
		return job
	}

	rows := make([]OneStepRow, 0, len(fractions))
	for i, frac := range fractions {
		// Delta: rewrite frac of the corpus (delete + reinsert with new
		// text) and append frac more documents.
		rewrites, _ := datagen.Mutate(sc.Seed+int64(120+i), corpus, datagen.MutateOptions{
			ModifyFraction: frac,
			Rewrite: func(rng *rand.Rand, key, value string) string {
				words := strings.Fields(value)
				if len(words) > 1 {
					words = words[:len(words)-1]
				}
				return strings.Join(words, " ") + fmt.Sprintf(" w%04d", rng.Intn(sc.Vocab))
			},
		})
		appends := datagen.AppendTweets(sc.Seed+int64(130+i), corpus, frac, sc.Vocab, sc.WordsPerTweet)
		deltas := append(append([]kv.Delta(nil), rewrites...), appends...)
		dPath := fmt.Sprintf("onestep/delta-%d", i)
		if err := env.Eng.FS().WriteAllDeltas(dPath, deltas); err != nil {
			return nil, err
		}
		merged := applyDeltas(corpus, deltas)
		mPath := fmt.Sprintf("onestep/t1-%d", i)
		if err := env.Eng.FS().WriteAllPairs(mPath, merged); err != nil {
			return nil, err
		}

		// Incremental refresh: prepare on the original corpus (untimed),
		// time only RunDelta.
		runner, err := incr.NewRunner(env.Eng, mkJob(fmt.Sprintf("onestep-incr-%d", i)))
		if err != nil {
			return nil, err
		}
		if _, err := runner.RunInitial("onestep/t0", fmt.Sprintf("onestep/out0-%d", i)); err != nil {
			runner.Close()
			return nil, err
		}
		incrStart := time.Now()
		rep, err := runner.RunDelta(dPath, fmt.Sprintf("onestep/out1-%d", i))
		if err != nil {
			runner.Close()
			return nil, err
		}
		incrTime := time.Since(incrStart)

		// Re-computation: a fresh initial job (with startup accounting)
		// over the merged corpus.
		recompStart := time.Now()
		recomp, err := incr.NewRunner(env.Eng, mkJob(fmt.Sprintf("onestep-recomp-%d", i)))
		if err != nil {
			runner.Close()
			return nil, err
		}
		recompRep, err := recomp.RunInitial(mPath, fmt.Sprintf("onestep/out-recomp-%d", i))
		if err != nil {
			recomp.Close()
			runner.Close()
			return nil, err
		}
		recompTime := effective(time.Since(recompStart), recompRep) + apps.StartupCost
		recomp.Close()

		row := OneStepRow{
			DeltaFraction: frac,
			DeltaRecords:  rep.Counter(metrics.CounterMapRecordsIn),
			Recompute:     recompTime,
			Incremental:   incrTime,
			SpillRuns:     rep.Counter(metrics.CounterSpillRuns),
			SpillBytes:    rep.Counter(metrics.CounterSpillBytes),
			DirtyParts:    rep.Counter(metrics.CounterResultDirtyPartitions),
			TotalParts:    sc.Partitions,
			Rewritten:     rep.Counter(metrics.CounterResultBytesRewritten),
			Segments:      rep.Counter(metrics.CounterResultSegments),
			Compactions:   rep.Counter(metrics.CounterResultCompactions),
		}
		if incrTime > 0 {
			row.Speedup = float64(recompTime) / float64(incrTime)
		}
		rows = append(rows, row)
		if err := runner.Close(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// applyDeltas folds a delta sequence into a pair dataset.
func applyDeltas(data []kv.Pair, deltas []kv.Delta) []kv.Pair {
	cur := make(map[string]string, len(data))
	for _, p := range data {
		cur[p.Key] = p.Value
	}
	for _, d := range deltas {
		if d.Op == kv.OpDelete {
			delete(cur, d.Key)
		} else {
			cur[d.Key] = d.Value
		}
	}
	out := make([]kv.Pair, 0, len(cur))
	for k, v := range cur {
		out = append(out, kv.Pair{Key: k, Value: v})
	}
	kv.SortPairs(out)
	return out
}

// FormatOneStep renders the sweep.
func FormatOneStep(rows []OneStepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "One-step sweep — recompute vs incremental refresh across delta sizes\n")
	fmt.Fprintf(&b, "%-7s %8s %11s %11s %8s %7s %10s %7s %10s %5s %6s\n",
		"delta", "records", "recompute", "incr", "speedup", "spills", "spill-B", "dirty", "rewrit-B", "segs", "compac")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %8d %11s %11s %7.1fx %7d %10d %4d/%-2d %10d %5d %6d\n",
			fmt.Sprintf("%.0f%%", r.DeltaFraction*100), r.DeltaRecords,
			r.Recompute.Round(time.Millisecond), r.Incremental.Round(time.Millisecond),
			r.Speedup, r.SpillRuns, r.SpillBytes,
			r.DirtyParts, r.TotalParts, r.Rewritten, r.Segments, r.Compactions)
	}
	return b.String()
}
