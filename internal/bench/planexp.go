package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/engine"
	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/plan"
)

// ---------------------------------------------------------------------
// Plan sweep: no-regret check of the cost-aware refresh planner across
// delta size × key skew. Each point refreshes a fine-grain WordCount
// both ways — one-step delta and full recompute — observes both costs
// into the planner's ledger, then asks the planner to choose. The row
// records the choice against the best observed mode and the regret (how
// much slower the chosen mode's observed cost is than the best one's);
// the acceptance bar is regret within 15% at every point. The skewed
// (small-vocab) series additionally exercises the hot-key split path
// and reports the shuffle.hotkeys.* counters.
// ---------------------------------------------------------------------

// PlanRow is one (delta fraction, vocabulary) point of the sweep.
type PlanRow struct {
	Vocab         int
	DeltaFraction float64
	DeltaRecords  int64
	Recompute     time.Duration
	OneStep       time.Duration
	Chosen        string
	Best          string
	RegretPct     float64
	Cold          bool
	HotDetected   int64
	HotSplitRecs  int64
	HotMerged     int64
}

// PlanSweep runs the planner no-regret sweep. dir hosts the per-series
// cost ledgers (one per vocabulary, since corpus shape changes the cost
// regime).
func PlanSweep(env *Env, sc Scale, dir string) ([]PlanRow, error) {
	fractions := []float64{0.01, 0.05, 0.10, 0.25}
	vocabs := []int{sc.Vocab, sc.Vocab / 10}
	if vocabs[1] < 10 {
		vocabs[1] = 10
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	rows := make([]PlanRow, 0, len(fractions)*len(vocabs))
	for vi, vocab := range vocabs {
		// Rewrite-heavy deltas reach 75% of the corpus at the top
		// fraction, so the crossover guard is disabled (CrossoverFraction
		// 1): this sweep measures the cost model itself.
		planner, err := plan.New(plan.Config{
			Path:              filepath.Join(dir, fmt.Sprintf("ledger-v%d.json", vocab)),
			Modes:             []string{engine.ModeOneStep},
			CrossoverFraction: 1,
		})
		if err != nil {
			return nil, err
		}

		corpus := datagen.Tweets(sc.Seed+int64(310+vi), sc.Tweets, vocab, sc.WordsPerTweet)
		basePath := fmt.Sprintf("plan/t0-v%d", vocab)
		if err := env.Eng.FS().WriteAllPairs(basePath, corpus); err != nil {
			return nil, err
		}

		mkJob := func(name string) incr.Job {
			job := apps.FineGrainWordCountJob(name)
			job.NumReducers = sc.Partitions
			job.StoreOpts = sc.storeOpts()
			job.ShuffleMemoryBudget = sc.ShuffleMemoryBudget
			// Hot-key mitigation on: the small-vocab series' Zipf head
			// word crosses this share and gets split across sub-keys.
			job.SkewRatio = 0.2
			job.SkewFanOut = 4
			return job
		}

		for i, frac := range fractions {
			rewrites, _ := datagen.Mutate(sc.Seed+int64(320+10*vi+i), corpus, datagen.MutateOptions{
				ModifyFraction: frac,
				Rewrite: func(rng *rand.Rand, key, value string) string {
					words := strings.Fields(value)
					if len(words) > 1 {
						words = words[:len(words)-1]
					}
					return strings.Join(words, " ") + fmt.Sprintf(" w%05d", rng.Intn(vocab))
				},
			})
			appends := datagen.AppendTweets(sc.Seed+int64(360+10*vi+i), corpus, frac, vocab, sc.WordsPerTweet)
			deltas := append(append([]kv.Delta(nil), rewrites...), appends...)
			dPath := fmt.Sprintf("plan/delta-v%d-%d", vocab, i)
			if err := env.Eng.FS().WriteAllDeltas(dPath, deltas); err != nil {
				return nil, err
			}
			merged := applyDeltas(corpus, deltas)
			mPath := fmt.Sprintf("plan/t1-v%d-%d", vocab, i)
			if err := env.Eng.FS().WriteAllPairs(mPath, merged); err != nil {
				return nil, err
			}

			// One-step arm: prepare untimed, time only the refresh.
			runner, err := incr.NewRunner(env.Eng, mkJob(fmt.Sprintf("plan-incr-v%d-%d", vocab, i)))
			if err != nil {
				return nil, err
			}
			if _, err := runner.RunInitial(basePath, fmt.Sprintf("plan/out0-v%d-%d", vocab, i)); err != nil {
				runner.Close()
				return nil, err
			}
			oneStart := time.Now()
			rep, err := runner.RunDelta(dPath, fmt.Sprintf("plan/out1-v%d-%d", vocab, i))
			if err != nil {
				runner.Close()
				return nil, err
			}
			oneTime := time.Since(oneStart)
			if err := runner.Close(); err != nil {
				return nil, err
			}

			// Recompute arm: a fresh initial job over the merged corpus,
			// with the simulated startup cost the paper charges per job.
			recompStart := time.Now()
			recomp, err := incr.NewRunner(env.Eng, mkJob(fmt.Sprintf("plan-recomp-v%d-%d", vocab, i)))
			if err != nil {
				return nil, err
			}
			recompRep, err := recomp.RunInitial(mPath, fmt.Sprintf("plan/out-recomp-v%d-%d", vocab, i))
			if err != nil {
				recomp.Close()
				return nil, err
			}
			recompTime := effective(time.Since(recompStart), recompRep) + apps.StartupCost
			if err := recomp.Close(); err != nil {
				return nil, err
			}

			deltaRecords := rep.Counter(metrics.CounterMapRecordsIn)
			if err := planner.Observe(plan.Observation{
				Mode: engine.ModeOneStep, DeltaRecords: deltaRecords, Wall: oneTime,
			}); err != nil {
				return nil, err
			}
			if err := planner.Observe(plan.Observation{
				Mode: engine.ModeRecompute, DeltaRecords: deltaRecords, Wall: recompTime,
			}); err != nil {
				return nil, err
			}

			d := planner.Plan(deltaRecords, int64(len(merged)))
			observed := map[string]time.Duration{
				engine.ModeRecompute: recompTime,
				engine.ModeOneStep:   oneTime,
			}
			best, bestCost := engine.ModeRecompute, recompTime
			if oneTime < bestCost {
				best, bestCost = engine.ModeOneStep, oneTime
			}
			regret := 0.0
			if chosenCost, ok := observed[d.Mode]; ok && bestCost > 0 {
				regret = float64(chosenCost-bestCost) / float64(bestCost) * 100
			}
			rows = append(rows, PlanRow{
				Vocab:         vocab,
				DeltaFraction: frac,
				DeltaRecords:  deltaRecords,
				Recompute:     recompTime,
				OneStep:       oneTime,
				Chosen:        d.Mode,
				Best:          best,
				RegretPct:     regret,
				Cold:          d.Cold,
				HotDetected:   rep.Counter(metrics.CounterHotKeysDetected),
				HotSplitRecs:  rep.Counter(metrics.CounterHotKeySplitRecords),
				HotMerged:     rep.Counter(metrics.CounterHotKeyMergedGroups),
			})
		}
	}
	return rows, nil
}

// FormatPlan renders the sweep.
func FormatPlan(rows []PlanRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan sweep — planner choice vs best observed mode across delta size × skew\n")
	fmt.Fprintf(&b, "%-6s %-7s %8s %11s %11s %-10s %-10s %7s %6s %6s %8s\n",
		"vocab", "delta", "records", "recompute", "onestep", "chosen", "best", "regret", "hot", "splits", "merged")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-7s %8d %11s %11s %-10s %-10s %6.1f%% %6d %6d %8d\n",
			r.Vocab, fmt.Sprintf("%.0f%%", r.DeltaFraction*100), r.DeltaRecords,
			r.Recompute.Round(time.Millisecond), r.OneStep.Round(time.Millisecond),
			r.Chosen, r.Best, r.RegretPct, r.HotDetected, r.HotSplitRecs, r.HotMerged)
	}
	return b.String()
}
