package bench

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"time"

	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/results"
)

// ---------------------------------------------------------------------
// Results-store storage sweep: point-read cost of the durable result
// store across the segment block format's knobs (block size × codec).
// Not a paper figure — it isolates the storage layer the one-step
// engine and the serving layer sit on, so format regressions show up
// directly instead of being averaged into an end-to-end refresh.
// ---------------------------------------------------------------------

// ResultsRow is one (block size, codec) cell of the storage sweep.
type ResultsRow struct {
	BlockBytes int
	Codec      string
	Groups     int
	// SegmentBytes is the encoded on-disk size of the checkpointed
	// store — what the codec knob buys.
	SegmentBytes int64
	// HitNs / MissNs are mean ns per point Get for present / absent
	// keys.
	HitNs  int64
	MissNs int64
	// BloomSkips counts absent-key probes the bloom filter answered
	// with zero block I/O; MissProbes is the total issued.
	BloomSkips int64
	MissProbes int64
	// MissBlocksRead counts blocks read during the absent-key probes
	// alone — the bloom filter's residual false-positive I/O.
	MissBlocksRead int64
	// BlocksRead / BytesDecompressed account the block I/O behind all
	// measured reads (hit and miss phases).
	BlocksRead        int64
	BytesDecompressed int64
}

// resultsSweepProbes is the number of hit and miss probes per cell.
const resultsSweepProbes = 4000

// ResultsSweep checkpoints an identical group set under every
// (block size, codec) combination and measures point-read hit and miss
// latency plus the block/bloom counters behind them.
func ResultsSweep(dir string, sc Scale) ([]ResultsRow, error) {
	nGroups := sc.Vocab * 10
	rng := rand.New(rand.NewSource(sc.Seed + 310))
	keys := make([]string, nGroups)
	groups := make(map[string][]kv.Pair, nGroups)
	for i := range keys {
		key := fmt.Sprintf("group-%06d", i)
		keys[i] = key
		ps := make([]kv.Pair, 1+rng.Intn(3))
		for j := range ps {
			ps[j] = kv.Pair{Key: fmt.Sprintf("%s/%d", key, j), Value: fmt.Sprintf("%d", rng.Int63())}
		}
		groups[key] = ps
	}

	var rows []ResultsRow
	for _, blockBytes := range []int{4 << 10, 32 << 10, 256 << 10} {
		for _, codec := range []string{"none", "flate"} {
			cell := fmt.Sprintf("b%d-%s", blockBytes, codec)
			s, err := results.Open(results.Options{
				Dir:        filepath.Join(dir, cell),
				BlockBytes: blockBytes, Compression: codec,
			})
			if err != nil {
				return nil, err
			}
			for _, k := range keys {
				s.Set(k, groups[k])
			}
			if err := s.Checkpoint(); err != nil {
				s.Close()
				return nil, err
			}

			row := ResultsRow{BlockBytes: blockBytes, Codec: codec, Groups: nGroups}
			row.SegmentBytes = s.Stats().SegmentBytes

			probeRng := rand.New(rand.NewSource(sc.Seed + 311))
			start := time.Now()
			for i := 0; i < resultsSweepProbes; i++ {
				key := keys[probeRng.Intn(nGroups)]
				if _, ok, err := s.Get(key); err != nil || !ok {
					s.Close()
					return nil, fmt.Errorf("results sweep %s: Get(%s) = %v %v", cell, key, ok, err)
				}
			}
			row.HitNs = time.Since(start).Nanoseconds() / resultsSweepProbes

			before := s.Stats()
			start = time.Now()
			for i := 0; i < resultsSweepProbes; i++ {
				key := fmt.Sprintf("absent-%06d", i)
				if _, ok, err := s.Get(key); err != nil || ok {
					s.Close()
					return nil, fmt.Errorf("results sweep %s: absent Get(%s) = %v %v", cell, key, ok, err)
				}
			}
			row.MissNs = time.Since(start).Nanoseconds() / resultsSweepProbes
			after := s.Stats()
			row.MissProbes = resultsSweepProbes
			row.BloomSkips = after.BloomSkips - before.BloomSkips
			row.MissBlocksRead = after.BlocksRead - before.BlocksRead
			row.BlocksRead = after.BlocksRead
			row.BytesDecompressed = after.BytesDecompressed
			if err := s.Close(); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatResultsSweep renders the sweep.
func FormatResultsSweep(rows []ResultsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Results-store sweep — point reads across segment block size × codec\n")
	fmt.Fprintf(&b, "%-10s %-7s %8s %10s %9s %9s %14s %11s %12s\n",
		"block", "codec", "groups", "seg_bytes", "hit_ns", "miss_ns", "bloom_skips", "miss_blocks", "decompressed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-7s %8d %10d %9d %9d %9d/%-4d %11d %12d\n",
			r.BlockBytes, r.Codec, r.Groups, r.SegmentBytes, r.HitNs, r.MissNs,
			r.BloomSkips, r.MissProbes, r.MissBlocksRead, r.BytesDecompressed)
	}
	return b.String()
}

// ResultsSweepJSON converts the storage sweep into benchmark records;
// the headline op is a point-read hit, with the absent-key miss cost
// and the bloom/block counters alongside.
func ResultsSweepJSON(scale string, rows []ResultsRow) []JSONRecord {
	recs := make([]JSONRecord, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, JSONRecord{
			Experiment: "results",
			Scale:      scale,
			Params: map[string]string{
				"block_bytes": fmt.Sprintf("%d", r.BlockBytes),
				"codec":       r.Codec,
			},
			NsPerOp:    r.HitNs,
			BytesMoved: r.SegmentBytes,
			Counters: map[string]int64{
				"groups":             int64(r.Groups),
				"miss_ns":            r.MissNs,
				"bloom_skips":        r.BloomSkips,
				"miss_probes":        r.MissProbes,
				"miss_blocks_read":   r.MissBlocksRead,
				"blocks_read":        r.BlocksRead,
				"bytes_decompressed": r.BytesDecompressed,
			},
		})
	}
	return recs
}
