package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/serve"
)

// ---------------------------------------------------------------------
// Serve sweep: concurrent-reader throughput and tail latency of the
// online serving layer (internal/serve) while a delta refresh is live.
// Not a paper figure — the paper stops at producing the refreshed
// result set; this measures the DSPE-style continuous-serving usage the
// ROADMAP targets: N readers hammering point lookups against the
// pre-refresh snapshot epoch for the whole duration of an in-flight
// RunDelta, flipping atomically when it commits.
// ---------------------------------------------------------------------

// ServeRow is one reader-count's profile.
type ServeRow struct {
	Readers     int
	Ops         int64
	Elapsed     time.Duration
	QPS         float64
	MeanLatency time.Duration
	P50         time.Duration
	P99         time.Duration
	RefreshTime time.Duration
	Flips       int64
	CacheHits   int64
	CacheMisses int64
}

// serveOpsPerRow is the total lookups issued per row (split across the
// row's readers) — enough to span a small-scale refresh while keeping
// the smoke run fast.
const serveOpsPerRow = 6000

// ServeSweep prepares a fine-grain WordCount, wraps it in a
// serve.Server, and for each reader count issues point lookups from
// that many concurrent readers while one delta refresh runs through
// Server.Refresh. Reads are answered from snapshot epochs: the refresh
// never blocks a reader, and the flip is atomic.
func ServeSweep(env *Env, sc Scale) ([]ServeRow, error) {
	corpus := datagen.Tweets(sc.Seed+210, sc.Tweets, sc.Vocab, sc.WordsPerTweet)
	if err := env.Eng.FS().WriteAllPairs("serve/t0", corpus); err != nil {
		return nil, err
	}
	job := apps.FineGrainWordCountJob("serve-wc")
	job.NumReducers = sc.Partitions
	job.StoreOpts = sc.storeOpts()
	job.ShuffleMemoryBudget = sc.ShuffleMemoryBudget
	runner, err := incr.NewRunner(env.Eng, job)
	if err != nil {
		return nil, err
	}
	defer runner.Close()
	if _, err := runner.RunInitial("serve/t0", "serve/out0"); err != nil {
		return nil, err
	}
	// The key universe readers sample from: every word in the result.
	outs, err := runner.Outputs()
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(outs))
	for _, o := range outs {
		keys = append(keys, o.Key)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("serve sweep: empty result set")
	}

	srv, err := serve.NewOneStep(runner, serve.Options{})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	current := corpus
	rows := make([]ServeRow, 0, 3)
	for i, readers := range []int{1, 4, 16} {
		deltas, mutated := datagen.Mutate(sc.Seed+int64(220+i), current, datagen.MutateOptions{
			ModifyFraction: sc.DeltaFraction,
			Rewrite: func(rng *rand.Rand, key, value string) string {
				return value + fmt.Sprintf(" w%04d", rng.Intn(sc.Vocab))
			},
		})
		current = mutated
		deltaPath := fmt.Sprintf("serve/delta-%d", i)
		if err := env.Eng.FS().WriteAllDeltas(deltaPath, deltas); err != nil {
			return nil, err
		}

		statsBefore := srv.Stats()
		opsPerReader := serveOpsPerRow / readers

		start := time.Now()
		var refreshDone atomic.Bool
		refreshErr := make(chan error, 1)
		refreshDur := make(chan time.Duration, 1)
		go func() {
			t := time.Now()
			err := srv.Refresh(func() error {
				_, err := runner.RunDelta(deltaPath, fmt.Sprintf("serve/out%d", i+1))
				return err
			})
			refreshDur <- time.Since(t)
			refreshDone.Store(true)
			refreshErr <- err
		}()

		// Each reader issues at least its share of lookups and keeps
		// reading until the refresh has committed, so the measured
		// stream genuinely spans the whole in-flight refresh (capped in
		// case the refresh stalls).
		lats := make([][]time.Duration, readers)
		var readErr error
		var errMu sync.Mutex
		var wg sync.WaitGroup
		for rd := 0; rd < readers; rd++ {
			wg.Add(1)
			go func(rd int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(sc.Seed + int64(rd)*7919))
				ls := make([]time.Duration, 0, opsPerReader)
				for op := 0; (op < opsPerReader || !refreshDone.Load()) && op < opsPerReader*100; op++ {
					key := keys[rng.Intn(len(keys))]
					t := time.Now()
					_, _, _, err := srv.Get(key)
					if err != nil {
						errMu.Lock()
						readErr = err
						errMu.Unlock()
						return
					}
					ls = append(ls, time.Since(t))
				}
				lats[rd] = ls
			}(rd)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if readErr != nil {
			return nil, readErr
		}
		if err := <-refreshErr; err != nil {
			return nil, err
		}
		statsAfter := srv.Stats()

		var all []time.Duration
		var total time.Duration
		for _, ls := range lats {
			all = append(all, ls...)
			for _, l := range ls {
				total += l
			}
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		row := ServeRow{
			Readers:     readers,
			Ops:         int64(len(all)),
			Elapsed:     elapsed,
			RefreshTime: <-refreshDur,
			Flips:       statsAfter.EpochFlips - statsBefore.EpochFlips,
			CacheHits:   statsAfter.CacheHits - statsBefore.CacheHits,
			CacheMisses: statsAfter.CacheMisses - statsBefore.CacheMisses,
		}
		if len(all) > 0 {
			row.QPS = float64(len(all)) / elapsed.Seconds()
			row.MeanLatency = total / time.Duration(len(all))
			row.P50 = all[len(all)/2]
			row.P99 = all[len(all)*99/100]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Serve cold/miss sweep: worst-case point-lookup latency with the
// per-epoch block cache disabled — every hit decodes its segment block
// afresh — and a pure absent-key stream, the case the per-segment bloom
// filters exist for (the skip rate should round to 100%).
// ---------------------------------------------------------------------

// ServeColdRow is one probe mode's profile from the cold sweep.
type ServeColdRow struct {
	// Mode is "cold-hit" (present keys, cache disabled) or "absent"
	// (keys no store holds).
	Mode    string
	Ops     int64
	P50     time.Duration
	P99     time.Duration
	MeanLat time.Duration
	// BloomSkips / BlocksRead are the result-store counters the probes
	// generated: absent probes should be nearly all skips and ~zero
	// reads.
	BloomSkips int64
	BlocksRead int64
}

// ServeColdSweep prepares the same fine-grain WordCount as ServeSweep
// but serves it with caching disabled, measuring the uncached hit path
// and the bloom-filtered absent-key path.
func ServeColdSweep(env *Env, sc Scale) ([]ServeColdRow, error) {
	corpus := datagen.Tweets(sc.Seed+230, sc.Tweets, sc.Vocab, sc.WordsPerTweet)
	if err := env.Eng.FS().WriteAllPairs("servecold/t0", corpus); err != nil {
		return nil, err
	}
	job := apps.FineGrainWordCountJob("servecold-wc")
	job.NumReducers = sc.Partitions
	job.StoreOpts = sc.storeOpts()
	job.ShuffleMemoryBudget = sc.ShuffleMemoryBudget
	runner, err := incr.NewRunner(env.Eng, job)
	if err != nil {
		return nil, err
	}
	defer runner.Close()
	if _, err := runner.RunInitial("servecold/t0", "servecold/out0"); err != nil {
		return nil, err
	}
	outs, err := runner.Outputs()
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(outs))
	for _, o := range outs {
		keys = append(keys, o.Key)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("serve cold sweep: empty result set")
	}

	srv, err := serve.NewOneStep(runner, serve.Options{CacheSize: -1})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	resultStats := func() (skips, reads int64) {
		for _, rs := range runner.Results() {
			st := rs.Stats()
			skips += st.BloomSkips
			reads += st.BlocksRead
		}
		return skips, reads
	}

	const probes = serveOpsPerRow
	var rows []ServeColdRow
	for _, mode := range []string{"cold-hit", "absent"} {
		rng := rand.New(rand.NewSource(sc.Seed + 231))
		skipsBefore, readsBefore := resultStats()
		lats := make([]time.Duration, 0, probes)
		var total time.Duration
		for op := 0; op < probes; op++ {
			var key string
			var wantFound bool
			if mode == "cold-hit" {
				key, wantFound = keys[rng.Intn(len(keys))], true
			} else {
				key, wantFound = fmt.Sprintf("absent-key-%06d", op), false
			}
			t := time.Now()
			_, found, _, err := srv.Get(key)
			l := time.Since(t)
			if err != nil {
				return nil, err
			}
			if found != wantFound {
				return nil, fmt.Errorf("serve cold sweep: Get(%s) found=%v, want %v", key, found, wantFound)
			}
			lats = append(lats, l)
			total += l
		}
		skipsAfter, readsAfter := resultStats()
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		rows = append(rows, ServeColdRow{
			Mode:       mode,
			Ops:        probes,
			P50:        lats[len(lats)/2],
			P99:        lats[len(lats)*99/100],
			MeanLat:    total / probes,
			BloomSkips: skipsAfter - skipsBefore,
			BlocksRead: readsAfter - readsBefore,
		})
	}
	return rows, nil
}

// FormatServeCold renders the cold sweep.
func FormatServeCold(rows []ServeColdRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serve cold sweep — uncached hits and bloom-filtered absent keys (cache disabled)\n")
	fmt.Fprintf(&b, "%-10s %8s %10s %10s %10s %12s %12s\n",
		"mode", "ops", "mean", "p50", "p99", "bloom_skips", "blocks_read")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %10s %10s %10s %12d %12d\n",
			r.Mode, r.Ops,
			r.MeanLat.Round(time.Microsecond), r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.BloomSkips, r.BlocksRead)
	}
	return b.String()
}

// FormatServe renders the sweep.
func FormatServe(rows []ServeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serve sweep — concurrent readers vs live delta refreshes (snapshot epochs)\n")
	fmt.Fprintf(&b, "%-8s %8s %10s %10s %10s %10s %11s %6s %9s %9s\n",
		"readers", "ops", "qps", "mean", "p50", "p99", "refresh", "flips", "hits", "misses")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %8d %10.0f %10s %10s %10s %11s %6d %9d %9d\n",
			r.Readers, r.Ops, r.QPS,
			r.MeanLatency.Round(time.Microsecond), r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.RefreshTime.Round(time.Millisecond), r.Flips, r.CacheHits, r.CacheMisses)
	}
	return b.String()
}
