package bench

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"i2mapreduce/internal/mrbg"
)

// ---------------------------------------------------------------------
// Shard sweep: MRBG-Store Merge/GetMany wall-clock across shard counts.
// Not a paper figure — it measures this reproduction's sharded store
// (the ROADMAP's "as fast as the hardware allows" axis). On multi-core
// hardware Merge and GetMany should improve with shard count until the
// fan-out exhausts the cores.
// ---------------------------------------------------------------------

// ShardSweepRow is one shard count's profile.
type ShardSweepRow struct {
	Shards     int
	MergeTime  time.Duration
	QueryTime  time.Duration
	Reads      int64
	LiveChunks int
}

// ShardSweep populates one store per shard count under dir, then times
// a delta merge touching DeltaFraction of the keys and a full sorted
// scan.
func ShardSweep(dir string, sc Scale, shardCounts []int) ([]ShardSweepRow, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	nKeys := sc.GraphVertices
	if nKeys <= 0 {
		nKeys = 4000
	}
	nDelta := int(float64(nKeys) * sc.DeltaFraction)
	if nDelta <= 0 {
		nDelta = nKeys / 10
	}

	rows := make([]ShardSweepRow, 0, len(shardCounts))
	for _, shards := range shardCounts {
		opts := sc.storeOpts()
		opts.Dir = filepath.Join(dir, fmt.Sprintf("shards-%d", shards))
		opts.Shards = shards
		s, err := mrbg.Open(opts)
		if err != nil {
			return nil, err
		}

		var initial []mrbg.DeltaEdge
		for i := 0; i < nKeys; i++ {
			initial = append(initial, mrbg.DeltaEdge{
				Key: fmt.Sprintf("key-%07d", i), MK: 1,
				V2: "payload-" + strings.Repeat("x", 24),
			})
		}
		if err := s.Merge(initial, func(mrbg.MergeResult) error { return nil }); err != nil {
			s.Close()
			return nil, err
		}
		s.ResetStats()

		var delta []mrbg.DeltaEdge
		for i := 0; i < nDelta; i++ {
			delta = append(delta, mrbg.DeltaEdge{
				Key: fmt.Sprintf("key-%07d", (i*37)%nKeys), MK: 2,
				V2: "updated-" + strings.Repeat("y", 24),
			})
		}
		mergeStart := time.Now()
		if err := s.Merge(delta, func(mrbg.MergeResult) error { return nil }); err != nil {
			s.Close()
			return nil, err
		}
		row := ShardSweepRow{Shards: s.NumShards(), MergeTime: time.Since(mergeStart)}

		keys := s.Keys()
		queryStart := time.Now()
		if err := s.GetMany(keys, func(string, mrbg.Chunk, bool) error { return nil }); err != nil {
			s.Close()
			return nil, err
		}
		row.QueryTime = time.Since(queryStart)
		st := s.Stats()
		row.Reads = st.Reads
		row.LiveChunks = st.LiveChunks
		rows = append(rows, row)
		if err := s.Close(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatShardSweep renders the sweep table.
func FormatShardSweep(rows []ShardSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shard sweep — MRBG-Store Merge/GetMany wall-clock vs shard count\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %10s %10s\n", "shards", "merge", "scan", "#reads", "chunks")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %12s %12s %10d %10d\n", r.Shards,
			r.MergeTime.Round(time.Millisecond), r.QueryTime.Round(time.Millisecond),
			r.Reads, r.LiveChunks)
	}
	return b.String()
}
