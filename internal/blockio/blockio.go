// Package blockio implements the block-based container format shared
// by the storage layer's segment files (internal/results v2 segments;
// internal/mrbg borrows its pooled buffers for chunk-file rewrites).
//
// A block file is a sequence of framed blocks followed by a footer:
//
//	header   magic "i2sb" | format version byte
//	block*   crc32c(stored body) : u32 LE
//	         uvarint rawLen      (decoded body length)
//	         uvarint storedLen   (on-disk body length)
//	         codec byte          (0 = none, 1 = flate)
//	         storedLen body bytes
//	footer   uvarint nBlocks
//	         nBlocks x { uvarint frameOff, uvarint frameLen,
//	                     uvarint rawLen, uvarint len(firstKey), firstKey }
//	         bloom: byte present | [byte k, uvarint len(bits), bits]
//	tail     footerOff : u64 LE
//	         footerLen : u64 LE
//	         crc32c(footer) : u32 LE
//	         magic "i2sb" | format version byte
//
// Writers append key-ordered records; records are packed into blocks of
// roughly BlockBytes decoded bytes, each independently checksummed and
// (optionally) compressed. The footer carries a sparse index — the
// first record key of every block — and a bloom filter over every
// record key, so point lookups in a higher layer cost at most one block
// read, and absent keys usually cost zero reads.
//
// Corruption anywhere (a flipped bit in a block body, a CRC, the bloom
// bits, or a length prefix) surfaces as an error wrapping ErrCorrupt —
// never a panic, never silently wrong data.
package blockio

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Codec selects the per-block compression.
type Codec byte

const (
	// CodecNone stores block bodies raw.
	CodecNone Codec = 0
	// CodecFlate compresses block bodies with DEFLATE at BestSpeed —
	// the snappy-style "cheap and cheerful" point of the stdlib.
	CodecFlate Codec = 1
)

// String names the codec for bench tables and knob parsing.
func (c Codec) String() string {
	switch c {
	case CodecNone:
		return "none"
	case CodecFlate:
		return "flate"
	}
	return fmt.Sprintf("codec(%d)", byte(c))
}

// ParseCodec maps a knob string to a Codec. "" means CodecNone.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "none":
		return CodecNone, nil
	case "flate":
		return CodecFlate, nil
	}
	return 0, fmt.Errorf("blockio: unknown codec %q (want none or flate)", s)
}

const (
	// DefaultBlockBytes is the target decoded block size when
	// Options.BlockBytes is zero.
	DefaultBlockBytes = 32 << 10
	// DefaultBloomBitsPerKey sizes the bloom filter when
	// Options.BloomBitsPerKey is zero (~1% false positives).
	DefaultBloomBitsPerKey = 10

	version  = 1
	tailLen  = 8 + 8 + 4 + 5 // footerOff + footerLen + footerCRC + magic/ver
	magicLen = 5
)

var magic = [magicLen]byte{'i', '2', 's', 'b', version}

// ErrCorrupt reports a malformed or bit-flipped block file. Every
// decode error of this package wraps it.
var ErrCorrupt = errors.New("blockio: corrupt block file")

// ErrNotBlockFile reports that a file does not carry the block-format
// magic — e.g. a legacy flat (v1) results segment. Callers use it to
// fall back to their previous format.
var ErrNotBlockFile = errors.New("blockio: not a block file")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxLen bounds any decoded length prefix, turning a corrupted uvarint
// into an error instead of a multi-gigabyte allocation.
const maxLen = 1 << 30

// ---------------------------------------------------------------------
// Pooled buffers. One pool serves every storage hot path (segment
// block reads, spill-run encodes, mrbg compaction scratch), so a burst
// of reads reuses a small set of block-sized arenas instead of
// allocating per operation.
// ---------------------------------------------------------------------

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, DefaultBlockBytes); return &b }}

// GetBuf borrows a byte buffer from the shared pool (length 0, block
// capacity). Return it with PutBuf.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a buffer to the shared pool. Callers must not keep
// any slice aliasing it.
func PutBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// ---------------------------------------------------------------------
// Options.
// ---------------------------------------------------------------------

// Options configures a Writer.
type Options struct {
	// BlockBytes is the target decoded bytes per block. A record larger
	// than this gets a block of its own. 0 means DefaultBlockBytes.
	BlockBytes int
	// Codec is the per-block compression.
	Codec Codec
	// BloomBitsPerKey sizes the per-file bloom filter. 0 means
	// DefaultBloomBitsPerKey; negative disables the filter (every
	// MayContain answers true).
	BloomBitsPerKey int
}

func (o *Options) applyDefaults() {
	if o.BlockBytes <= 0 {
		o.BlockBytes = DefaultBlockBytes
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = DefaultBloomBitsPerKey
	}
}

// blockMeta is one block's footer entry.
type blockMeta struct {
	off      int64 // frame offset in the file
	frameLen int64 // full frame length (header + stored body)
	rawLen   int64 // decoded body length
	firstKey string
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

// Writer streams key-ordered records into a block file. Not safe for
// concurrent use.
type Writer struct {
	f       *os.File
	opts    Options
	cur     []byte // decoded bytes of the block being built
	curKey  string // first record key of the current block
	curSet  bool
	off     int64 // next frame offset
	blocks  []blockMeta
	bloom   *bloomBuilder
	comp    *flate.Writer
	scratch bytes.Buffer
	frame   []byte
}

// NewWriter starts a block file on f (an empty file opened for
// writing). The header is written immediately.
func NewWriter(f *os.File, opts Options) (*Writer, error) {
	opts.applyDefaults()
	w := &Writer{f: f, opts: opts}
	if opts.BloomBitsPerKey > 0 {
		w.bloom = newBloomBuilder(opts.BloomBitsPerKey)
	}
	if _, err := f.Write(magic[:]); err != nil {
		return nil, err
	}
	w.off = magicLen
	return w, nil
}

// Append adds one record (its indexable key plus its encoded bytes) to
// the file. Keys must arrive in non-decreasing order — the sparse
// index depends on it.
func (w *Writer) Append(key string, record []byte) error {
	if !w.curSet {
		w.curKey, w.curSet = key, true
	}
	if w.bloom != nil {
		w.bloom.add(key)
	}
	w.cur = append(w.cur, record...)
	if len(w.cur) >= w.opts.BlockBytes {
		return w.flushBlock()
	}
	return nil
}

// flushBlock frames and writes the current block.
func (w *Writer) flushBlock() error {
	if len(w.cur) == 0 {
		return nil
	}
	body := w.cur
	codec := w.opts.Codec
	if codec == CodecFlate {
		w.scratch.Reset()
		if w.comp == nil {
			var err error
			w.comp, err = flate.NewWriter(&w.scratch, flate.BestSpeed)
			if err != nil {
				return err
			}
		} else {
			w.comp.Reset(&w.scratch)
		}
		if _, err := w.comp.Write(body); err != nil {
			return err
		}
		if err := w.comp.Close(); err != nil {
			return err
		}
		if w.scratch.Len() < len(body) {
			body = w.scratch.Bytes()
		} else {
			codec = CodecNone // incompressible block: store raw
		}
	}
	w.frame = w.frame[:0]
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(body, castagnoli))
	w.frame = append(w.frame, hdr[:]...)
	w.frame = binary.AppendUvarint(w.frame, uint64(len(w.cur)))
	w.frame = binary.AppendUvarint(w.frame, uint64(len(body)))
	w.frame = append(w.frame, byte(codec))
	w.frame = append(w.frame, body...)
	if _, err := w.f.WriteAt(w.frame, w.off); err != nil {
		return err
	}
	w.blocks = append(w.blocks, blockMeta{
		off:      w.off,
		frameLen: int64(len(w.frame)),
		rawLen:   int64(len(w.cur)),
		firstKey: w.curKey,
	})
	w.off += int64(len(w.frame))
	w.cur = w.cur[:0]
	w.curSet = false
	return nil
}

// Finish flushes the last block, writes the footer and tail, fsyncs,
// and returns a File reading the finished result over the same
// descriptor (no footer re-parse needed).
func (w *Writer) Finish() (*File, error) {
	if err := w.flushBlock(); err != nil {
		return nil, err
	}
	footerOff := w.off
	var ftr []byte
	ftr = binary.AppendUvarint(ftr, uint64(len(w.blocks)))
	for _, b := range w.blocks {
		ftr = binary.AppendUvarint(ftr, uint64(b.off))
		ftr = binary.AppendUvarint(ftr, uint64(b.frameLen))
		ftr = binary.AppendUvarint(ftr, uint64(b.rawLen))
		ftr = binary.AppendUvarint(ftr, uint64(len(b.firstKey)))
		ftr = append(ftr, b.firstKey...)
	}
	var bl *Bloom
	if w.bloom != nil {
		bl = w.bloom.finish()
		ftr = append(ftr, 1, byte(bl.k))
		ftr = binary.AppendUvarint(ftr, uint64(len(bl.bits)))
		ftr = append(ftr, bl.bits...)
	} else {
		ftr = append(ftr, 0)
	}
	var tail [tailLen]byte
	binary.LittleEndian.PutUint64(tail[0:8], uint64(footerOff))
	binary.LittleEndian.PutUint64(tail[8:16], uint64(len(ftr)))
	binary.LittleEndian.PutUint32(tail[16:20], crc32.Checksum(ftr, castagnoli))
	copy(tail[20:], magic[:])
	ftr = append(ftr, tail[:]...)
	if _, err := w.f.WriteAt(ftr, footerOff); err != nil {
		return nil, err
	}
	if err := w.f.Sync(); err != nil {
		return nil, err
	}
	return &File{
		f:      w.f,
		size:   footerOff + int64(len(ftr)),
		blocks: w.blocks,
		bloom:  bl,
	}, nil
}

// ---------------------------------------------------------------------
// File (reader).
// ---------------------------------------------------------------------

// File is an opened block file: the parsed footer (block index + bloom)
// plus the descriptor. Reads use ReadAt, so a File is safe for
// concurrent use by any number of readers.
type File struct {
	f      *os.File
	size   int64
	blocks []blockMeta
	bloom  *Bloom
	stats  *FileStats
}

// FileStats receives read-path accounting for one or more Files.
// Counters are atomic, so any number of concurrent readers share one.
type FileStats struct {
	// BlocksRead counts successful ReadBlock calls.
	BlocksRead atomic.Int64
	// BytesDecompressed counts decoded bytes produced by per-block
	// decompression (raw blocks contribute nothing).
	BytesDecompressed atomic.Int64
}

// SetStats attaches st: subsequent ReadBlock calls add to it. Call
// before the File is shared with readers; nil detaches.
func (bf *File) SetStats(st *FileStats) { bf.stats = st }

// Open parses f's footer. size is the file's length. Returns
// ErrNotBlockFile when the magic is absent (a legacy flat file), or an
// error wrapping ErrCorrupt when the footer is damaged.
func Open(f *os.File, size int64) (*File, error) {
	if size < magicLen+tailLen {
		return nil, ErrNotBlockFile
	}
	var head [magicLen]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	if head != magic {
		return nil, ErrNotBlockFile
	}
	var tail [tailLen]byte
	if _, err := f.ReadAt(tail[:], size-tailLen); err != nil {
		return nil, err
	}
	if *(*[magicLen]byte)(tail[20:]) != magic {
		return nil, fmt.Errorf("%w: missing tail magic", ErrCorrupt)
	}
	footerOff := int64(binary.LittleEndian.Uint64(tail[0:8]))
	footerLen := int64(binary.LittleEndian.Uint64(tail[8:16]))
	footerCRC := binary.LittleEndian.Uint32(tail[16:20])
	if footerOff < magicLen || footerLen < 0 || footerLen > maxLen || footerOff+footerLen != size-tailLen {
		return nil, fmt.Errorf("%w: footer bounds [%d, +%d) outside file of %d bytes", ErrCorrupt, footerOff, footerLen, size)
	}
	ftr := make([]byte, footerLen)
	if _, err := f.ReadAt(ftr, footerOff); err != nil {
		return nil, fmt.Errorf("%w: footer read: %v", ErrCorrupt, err)
	}
	if crc32.Checksum(ftr, castagnoli) != footerCRC {
		return nil, fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
	}
	bf := &File{f: f, size: size}
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(ftr[pos:])
		if n <= 0 || v > maxLen {
			return 0, fmt.Errorf("%w: footer varint", ErrCorrupt)
		}
		pos += n
		return v, nil
	}
	nBlocks, err := readUvarint()
	if err != nil {
		return nil, err
	}
	// Each block entry occupies at least four footer bytes (four
	// one-byte varints), so a forged count cannot force a huge
	// pre-allocation: cap the capacity by what the footer could hold.
	capHint := min(nBlocks, uint64(footerLen)/4)
	bf.blocks = make([]blockMeta, 0, capHint)
	for i := uint64(0); i < nBlocks; i++ {
		off, err := readUvarint()
		if err != nil {
			return nil, err
		}
		frameLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		rawLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		kLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if pos+int(kLen) > len(ftr) {
			return nil, fmt.Errorf("%w: footer key overruns", ErrCorrupt)
		}
		key := string(ftr[pos : pos+int(kLen)])
		pos += int(kLen)
		if int64(off)+int64(frameLen) > footerOff {
			return nil, fmt.Errorf("%w: block frame overruns footer", ErrCorrupt)
		}
		bf.blocks = append(bf.blocks, blockMeta{
			off: int64(off), frameLen: int64(frameLen), rawLen: int64(rawLen), firstKey: key,
		})
	}
	if pos >= len(ftr) {
		return nil, fmt.Errorf("%w: footer truncated before bloom marker", ErrCorrupt)
	}
	switch ftr[pos] {
	case 0:
		pos++
	case 1:
		pos++
		if pos >= len(ftr) {
			return nil, fmt.Errorf("%w: bloom truncated", ErrCorrupt)
		}
		k := int(ftr[pos])
		pos++
		bitsLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if pos+int(bitsLen) > len(ftr) {
			return nil, fmt.Errorf("%w: bloom bits overrun", ErrCorrupt)
		}
		bl, err := newBloom(ftr[pos:pos+int(bitsLen)], k)
		if err != nil {
			return nil, err
		}
		bf.bloom = bl
		pos += int(bitsLen)
	default:
		return nil, fmt.Errorf("%w: invalid bloom marker %d", ErrCorrupt, ftr[pos])
	}
	return bf, nil
}

// NumBlocks returns the block count.
func (bf *File) NumBlocks() int { return len(bf.blocks) }

// Size returns the file's total length in bytes.
func (bf *File) Size() int64 { return bf.size }

// RawLen returns block i's decoded body length.
func (bf *File) RawLen(i int) int64 { return bf.blocks[i].rawLen }

// HasBloom reports whether the file carries a bloom filter.
func (bf *File) HasBloom() bool { return bf.bloom != nil }

// MayContain reports whether key can possibly be present. A false
// answer is definitive; true may be a false positive. Files without a
// bloom filter always answer true.
func (bf *File) MayContain(key string) bool {
	if bf.bloom == nil {
		return true
	}
	return bf.bloom.mayContain(key)
}

// FindBlock returns the index of the unique block that could hold key —
// the last block whose first key is <= key — and ok=false when every
// block starts after key (or the file is empty).
func (bf *File) FindBlock(key string) (int, bool) {
	lo, hi := 0, len(bf.blocks) // find first block with firstKey > key
	for lo < hi {
		mid := (lo + hi) / 2
		if bf.blocks[mid].firstKey <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, false
	}
	return lo - 1, true
}

// flateReaderPool reuses decompressors across block reads.
var flateReaderPool = sync.Pool{}

// ReadBlock reads, CRC-verifies, and decompresses block i. dst points
// at reused storage (typically from GetBuf); it is updated in place if
// the storage had to grow, so pooled buffers keep their largest size.
// The returned slice holds the decoded body and aliases *dst.
func (bf *File) ReadBlock(i int, dst *[]byte) ([]byte, error) {
	if i < 0 || i >= len(bf.blocks) {
		return nil, fmt.Errorf("blockio: block %d of %d", i, len(bf.blocks))
	}
	m := bf.blocks[i]
	*dst = grow(*dst, int(m.frameLen))
	frame := (*dst)[:m.frameLen]
	if _, err := bf.f.ReadAt(frame, m.off); err != nil {
		return nil, fmt.Errorf("%w: block read: %v", ErrCorrupt, err)
	}
	crc := binary.LittleEndian.Uint32(frame[0:4])
	pos := 4
	rawLen, n := binary.Uvarint(frame[pos:])
	if n <= 0 || rawLen > maxLen {
		return nil, fmt.Errorf("%w: block raw length", ErrCorrupt)
	}
	pos += n
	storedLen, n := binary.Uvarint(frame[pos:])
	if n <= 0 || storedLen > maxLen {
		return nil, fmt.Errorf("%w: block stored length", ErrCorrupt)
	}
	pos += n
	if pos >= len(frame) {
		return nil, fmt.Errorf("%w: block header truncated", ErrCorrupt)
	}
	codec := Codec(frame[pos])
	pos++
	if int64(pos)+int64(storedLen) != m.frameLen {
		return nil, fmt.Errorf("%w: block body length mismatch", ErrCorrupt)
	}
	if int64(rawLen) != m.rawLen {
		return nil, fmt.Errorf("%w: block raw length disagrees with index", ErrCorrupt)
	}
	body := frame[pos : pos+int(storedLen)]
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, fmt.Errorf("%w: block checksum mismatch", ErrCorrupt)
	}
	switch codec {
	case CodecNone:
		if rawLen != storedLen {
			return nil, fmt.Errorf("%w: uncompressed block with rawLen %d != storedLen %d", ErrCorrupt, rawLen, storedLen)
		}
		if bf.stats != nil {
			bf.stats.BlocksRead.Add(1)
		}
		return body, nil
	case CodecFlate:
		scratch := GetBuf()
		defer PutBuf(scratch)
		*scratch = grow(*scratch, int(rawLen))
		out := (*scratch)[:rawLen]
		var fr io.ReadCloser
		if v := flateReaderPool.Get(); v != nil {
			fr = v.(io.ReadCloser)
			if err := fr.(flate.Resetter).Reset(bytes.NewReader(body), nil); err != nil {
				return nil, err
			}
		} else {
			fr = flate.NewReader(bytes.NewReader(body))
		}
		defer flateReaderPool.Put(fr)
		if _, err := io.ReadFull(fr, out); err != nil {
			return nil, fmt.Errorf("%w: block decompression: %v", ErrCorrupt, err)
		}
		// The decompressed body lives in scratch; copy it into *dst so the
		// caller's buffer convention (result aliases *dst) holds.
		*dst = grow(*dst, int(rawLen))
		copy((*dst)[:rawLen], out)
		if bf.stats != nil {
			bf.stats.BlocksRead.Add(1)
			bf.stats.BytesDecompressed.Add(int64(rawLen))
		}
		return (*dst)[:rawLen], nil
	default:
		return nil, fmt.Errorf("%w: unknown codec %d", ErrCorrupt, codec)
	}
}

// grow returns b with capacity for at least n bytes (contents
// unspecified beyond reuse).
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}
