package blockio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeFile builds a block file of n sequential records under opts and
// returns the open File plus its path.
func writeFile(t *testing.T, dir string, opts Options, n int) (*File, string) {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("t-%d-%d.blk", opts.BlockBytes, opts.Codec))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%05d", i)
		rec := []byte(key + "=" + fmt.Sprintf("value-%05d-padding-padding", i))
		if err := w.Append(key, rec); err != nil {
			t.Fatal(err)
		}
	}
	bf, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return bf, path
}

func TestRoundTripAcrossCodecsAndBlockSizes(t *testing.T) {
	dir := t.TempDir()
	for _, codec := range []Codec{CodecNone, CodecFlate} {
		for _, bb := range []int{128, 4 << 10, 256 << 10} {
			bf, path := writeFile(t, dir, Options{BlockBytes: bb, Codec: codec}, 500)
			if bf.NumBlocks() == 0 {
				t.Fatalf("%s: no blocks", path)
			}
			// Reopen from disk and compare contents.
			f2, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			fi, _ := f2.Stat()
			bf2, err := Open(f2, fi.Size())
			if err != nil {
				t.Fatalf("%s: reopen: %v", path, err)
			}
			var total, total2 []byte
			buf := GetBuf()
			for i := 0; i < bf.NumBlocks(); i++ {
				d, err := bf.ReadBlock(i, buf)
				if err != nil {
					t.Fatal(err)
				}
				total = append(total, d...)
				d2, err := bf2.ReadBlock(i, buf)
				if err != nil {
					t.Fatal(err)
				}
				total2 = append(total2, d2...)
			}
			PutBuf(buf)
			if string(total) != string(total2) {
				t.Fatalf("%s: writer-returned File and reopened File disagree", path)
			}
			if len(total) == 0 {
				t.Fatalf("%s: empty decode", path)
			}
			// Every written key is findable and bloom-positive.
			for _, i := range []int{0, 1, 250, 499} {
				key := fmt.Sprintf("key-%05d", i)
				if !bf2.MayContain(key) {
					t.Fatalf("%s: bloom rejects present key %s", path, key)
				}
				if _, ok := bf2.FindBlock(key); !ok {
					t.Fatalf("%s: FindBlock misses %s", path, key)
				}
			}
			// A key before the first record has no candidate block.
			if _, ok := bf2.FindBlock("aaa"); ok {
				t.Fatalf("%s: FindBlock found a block before the first key", path)
			}
			f2.Close()
		}
	}
}

func TestBloomSkipsAbsentKeys(t *testing.T) {
	bf, _ := writeFile(t, t.TempDir(), Options{BlockBytes: 4 << 10}, 2000)
	skipped := 0
	const probes = 2000
	for i := 0; i < probes; i++ {
		if !bf.MayContain(fmt.Sprintf("absent-%05d", i)) {
			skipped++
		}
	}
	// 10 bits/key gives ~1% false positives; require >= 95% skips.
	if skipped < probes*95/100 {
		t.Fatalf("bloom skipped only %d/%d absent keys", skipped, probes)
	}
}

func TestOpenRejectsNonBlockFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flat")
	if err := os.WriteFile(path, []byte("just some flat bytes, definitely not a block file, with padding to exceed the tail length"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(path)
	defer f.Close()
	fi, _ := f.Stat()
	if _, err := Open(f, fi.Size()); !errors.Is(err, ErrNotBlockFile) {
		t.Fatalf("Open = %v, want ErrNotBlockFile", err)
	}
}

// corruptAt flips one byte of the file at off.
func corruptAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionSurfacesAsErrCorrupt(t *testing.T) {
	for _, codec := range []Codec{CodecNone, CodecFlate} {
		dir := t.TempDir()
		_, path := writeFile(t, dir, Options{BlockBytes: 1 << 10, Codec: codec}, 300)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt a block body byte (middle of the first block, past the
		// frame header) — Open succeeds, ReadBlock must fail its CRC.
		bodyCase := path + ".body"
		copyFile(t, path, bodyCase)
		corruptAt(t, bodyCase, int64(magicLen)+40)
		f, _ := os.Open(bodyCase)
		bf, err := Open(f, fi.Size())
		if err == nil {
			buf := GetBuf()
			_, rerr := bf.ReadBlock(0, buf)
			PutBuf(buf)
			if !errors.Is(rerr, ErrCorrupt) {
				t.Fatalf("codec %v: body flip: ReadBlock = %v, want ErrCorrupt", codec, rerr)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("codec %v: body flip: Open = %v, want nil or ErrCorrupt", codec, err)
		}
		f.Close()

		// Corrupt the footer (bloom bits / index live there) — Open must
		// fail the footer CRC.
		ftrCase := path + ".footer"
		copyFile(t, path, ftrCase)
		corruptAt(t, ftrCase, fi.Size()-tailLen-10)
		f2, _ := os.Open(ftrCase)
		if _, err := Open(f2, fi.Size()); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("codec %v: footer flip: Open = %v, want ErrCorrupt", codec, err)
		}
		f2.Close()

		// Corrupt the tail's footer-offset length field.
		tailCase := path + ".tail"
		copyFile(t, path, tailCase)
		corruptAt(t, tailCase, fi.Size()-tailLen+2)
		f3, _ := os.Open(tailCase)
		if _, err := Open(f3, fi.Size()); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("codec %v: tail flip: Open = %v, want ErrCorrupt", codec, err)
		}
		f3.Close()
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFileRoundTrip(t *testing.T) {
	bf, path := writeFile(t, t.TempDir(), Options{}, 0)
	if bf.NumBlocks() != 0 {
		t.Fatalf("empty write produced %d blocks", bf.NumBlocks())
	}
	f, _ := os.Open(path)
	defer f.Close()
	fi, _ := f.Stat()
	bf2, err := Open(f, fi.Size())
	if err != nil {
		t.Fatal(err)
	}
	if bf2.NumBlocks() != 0 {
		t.Fatalf("reopened empty file has %d blocks", bf2.NumBlocks())
	}
	if _, ok := bf2.FindBlock("anything"); ok {
		t.Fatal("FindBlock on empty file returned a block")
	}
}
