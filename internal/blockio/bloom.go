package blockio

import (
	"fmt"
	"hash/fnv"
)

// Bloom is a classic split-free bloom filter over record keys, built
// with double hashing (Kirsch-Mitzenmacher): k probe positions derived
// from two 64-bit halves of one FNV-1a pass. Immutable after build, so
// lookups are safe for concurrent use.
type Bloom struct {
	bits []byte
	k    int
}

// bloomHash returns the two probe-base hashes for key.
func bloomHash(key string) (h1, h2 uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 = h.Sum64()
	// splitmix64-style finalizer decorrelates the second hash; force it
	// odd so probes cycle through all positions.
	h2 = h1
	h2 ^= h2 >> 30
	h2 *= 0xbf58476d1ce4e5b9
	h2 ^= h2 >> 27
	h2 *= 0x94d049bb133111eb
	h2 ^= h2 >> 31
	h2 |= 1
	return h1, h2
}

// mayContain reports whether key might be in the set.
func (b *Bloom) mayContain(key string) bool {
	nbits := uint64(len(b.bits)) * 8
	h1, h2 := bloomHash(key)
	for i := 0; i < b.k; i++ {
		p := (h1 + uint64(i)*h2) % nbits
		if b.bits[p/8]&(1<<(p%8)) == 0 {
			return false
		}
	}
	return true
}

// newBloom validates a deserialized filter.
func newBloom(bits []byte, k int) (*Bloom, error) {
	if len(bits) == 0 || k <= 0 || k > 30 {
		return nil, fmt.Errorf("%w: bloom shape bits=%d k=%d", ErrCorrupt, len(bits), k)
	}
	return &Bloom{bits: append([]byte(nil), bits...), k: k}, nil
}

// bloomBuilder accumulates keys before the bit array size is known.
type bloomBuilder struct {
	bitsPerKey int
	hashes     [][2]uint64
}

func newBloomBuilder(bitsPerKey int) *bloomBuilder {
	return &bloomBuilder{bitsPerKey: bitsPerKey}
}

func (bb *bloomBuilder) add(key string) {
	h1, h2 := bloomHash(key)
	bb.hashes = append(bb.hashes, [2]uint64{h1, h2})
}

// finish sizes the bit array to bitsPerKey * n and sets every key's k
// probes. k is the theoretical optimum bitsPerKey * ln 2, clamped to
// [1, 30].
func (bb *bloomBuilder) finish() *Bloom {
	n := len(bb.hashes)
	nbits := n * bb.bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	bits := make([]byte, (nbits+7)/8)
	nbits = len(bits) * 8
	k := int(float64(bb.bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	for _, h := range bb.hashes {
		for i := 0; i < k; i++ {
			p := (h[0] + uint64(i)*h[1]) % uint64(nbits)
			bits[p/8] |= 1 << (p % 8)
		}
	}
	return &Bloom{bits: bits, k: k}
}
