package blockio

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeed builds a valid block file under opts and returns its raw
// bytes, so the fuzzer starts from well-formed inputs and mutates
// toward the corruption boundary (the same boundary the corruption
// sweep in blockio_test.go probes deterministically).
func fuzzSeed(f *testing.F, opts Options, n int) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.blk")
	fd, err := os.Create(path)
	if err != nil {
		f.Fatal(err)
	}
	w, err := NewWriter(fd, opts)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%04d", i)
		if err := w.Append(key, []byte(key+"=value-padding")); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzBlockFile feeds arbitrary bytes through Open + ReadBlock +
// FindBlock/MayContain. Corruption must surface as an error (usually
// wrapping ErrCorrupt or ErrNotBlockFile), never as a panic, hang, or
// unbounded allocation.
func FuzzBlockFile(f *testing.F) {
	f.Add([]byte{})
	f.Add(magic[:])
	for _, opts := range []Options{
		{BlockBytes: 128, Codec: CodecNone},
		{BlockBytes: 128, Codec: CodecFlate},
		{BlockBytes: 4 << 10, Codec: CodecFlate, BloomBitsPerKey: 10},
	} {
		seed := fuzzSeed(f, opts, 50)
		f.Add(seed)
		// Byte-flipped variants cover the body, footer, and tail
		// regions up front, mirroring the corruption-sweep tests.
		for _, off := range []int{magicLen + 4, len(seed) / 2, len(seed) - tailLen + 2} {
			if off >= 0 && off < len(seed) {
				flipped := append([]byte(nil), seed...)
				flipped[off] ^= 0x40
				f.Add(flipped)
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.blk")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fd, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer fd.Close()
		bf, err := Open(fd, int64(len(data)))
		if err != nil {
			return // rejected input: exactly what corruption should do
		}
		if bf.MayContain("key-0001") {
			_, _ = bf.FindBlock("key-0001")
		}
		buf := GetBuf()
		defer PutBuf(buf)
		for i := 0; i < bf.NumBlocks(); i++ {
			// A forged index could still claim huge decoded blocks;
			// reading one would be an allocation bomb, not a finding.
			if bf.RawLen(i) > 1<<20 {
				continue
			}
			if _, err := bf.ReadBlock(i, buf); err != nil {
				return
			}
		}
	})
}
