// Package cluster simulates the worker cluster a Hadoop deployment
// provides: a set of nodes, each with a real on-disk scratch directory
// and a bounded number of task slots, plus the JobTracker-style
// scheduling, retry, and failure-recovery behaviour the paper relies on
// in Sec. 6 (fault tolerance) and Sec. 8.8 (Fig. 13).
//
// Tasks are closures. The scheduler assigns each task to its preferred
// node when one is given (data locality), runs tasks concurrently
// within per-node slot limits, retries failed attempts, and records a
// timeline of attempts that the Fig. 13 harness renders.
package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Node is one simulated worker machine.
type Node struct {
	// ID is the node's index in the cluster.
	ID int
	// ScratchDir is a real directory for node-local files (shuffle
	// spills, MRBGraph files, cached structure data).
	ScratchDir string

	down bool // set by failure injection; guarded by the cluster mutex
}

// Config configures a simulated cluster.
type Config struct {
	// Nodes is the number of worker nodes. Defaults to 1.
	Nodes int
	// SlotsPerNode is the number of concurrently running tasks per
	// node. Defaults to 2, matching the paper's m1.medium (2 ECUs).
	SlotsPerNode int
	// ScratchRoot is the directory under which per-node scratch dirs
	// are created. Required.
	ScratchRoot string
	// MaxAttempts is the number of attempts per task before the job
	// fails. Defaults to 4 (Hadoop's default).
	MaxAttempts int
}

// Failure is an injected fault: attempt Attempt (1-based) of the named
// task fails after running for Delay. If DownNode is true the failure
// also marks the node down, forcing the retry to a different healthy
// node — the paper's "worker fails" case (iii) in Sec. 6.1.
type Failure struct {
	Task     string
	Attempt  int
	Delay    time.Duration
	DownNode bool
}

// Event records one task attempt for the recovery timeline (Fig. 13).
// Start and End are offsets from the job's start.
type Event struct {
	Task    string
	Node    int
	Attempt int
	Start   time.Duration
	End     time.Duration
	// Failed marks an attempt that ended in an error (injected or
	// real); the scheduler retried it if attempts remained.
	Failed bool
	// Injected marks a failure that came from the failure script
	// rather than task code.
	Injected bool
	Err      string
}

// TaskContext is passed to every task attempt.
type TaskContext struct {
	// Node is the node executing this attempt.
	Node *Node
	// Attempt is 1 for the first try.
	Attempt int
}

// Task is a unit of schedulable work.
type Task struct {
	// Name identifies the task in timelines and failure scripts.
	Name string
	// Preferred is the node the task should run on (data locality, or
	// the co-location requirement of prime tasks); -1 means any.
	Preferred int
	// Run executes the attempt. It must be idempotent across attempts:
	// the scheduler may re-run it after a failure.
	Run func(tc TaskContext) error
}

// Cluster is a simulated cluster. Methods are safe for concurrent use.
type Cluster struct {
	cfg   Config
	nodes []*Node

	mu       sync.Mutex
	failures []Failure
}

// New builds a cluster with cfg, creating one scratch dir per node.
func New(cfg Config) (*Cluster, error) {
	if cfg.ScratchRoot == "" {
		return nil, errors.New("cluster: Config.ScratchRoot is required")
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.SlotsPerNode <= 0 {
		cfg.SlotsPerNode = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		dir := filepath.Join(cfg.ScratchRoot, fmt.Sprintf("node-%03d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cluster: creating scratch dir: %w", err)
		}
		c.nodes = append(c.nodes, &Node{ID: i, ScratchDir: dir})
	}
	return c, nil
}

// NumNodes returns the cluster size.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// NodeByID returns node i. It panics on an out-of-range ID because that
// is always an engine bug, never a data condition.
func (c *Cluster) NodeByID(i int) *Node {
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: NodeByID(%d) with %d nodes", i, len(c.nodes)))
	}
	return c.nodes[i]
}

// Slots returns the per-node slot count.
func (c *Cluster) Slots() int { return c.cfg.SlotsPerNode }

// InjectFailure schedules an injected fault. Faults are consumed: each
// matches at most one attempt.
func (c *Cluster) InjectFailure(f Failure) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures = append(c.failures, f)
}

// ResetFailures clears pending injected faults and revives all nodes.
func (c *Cluster) ResetFailures() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures = nil
	for _, n := range c.nodes {
		n.down = false
	}
}

// takeFailure pops a matching injected fault, if any.
func (c *Cluster) takeFailure(task string, attempt int) (Failure, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, f := range c.failures {
		if f.Task == task && f.Attempt == attempt {
			c.failures = append(c.failures[:i], c.failures[i+1:]...)
			return f, true
		}
	}
	return Failure{}, false
}

func (c *Cluster) markDown(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[id].down = true
}

func (c *Cluster) isDown(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id].down
}

// healthyNode returns a healthy node, preferring want, then scanning
// forward. It returns -1 if every node is down.
func (c *Cluster) healthyNode(want int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.nodes)
	if want < 0 || want >= n {
		want = 0
	}
	for i := 0; i < n; i++ {
		id := (want + i) % n
		if !c.nodes[id].down {
			return id
		}
	}
	return -1
}

// Run executes tasks to completion, honouring locality preferences,
// per-node slots, retries, and injected failures. It returns the full
// attempt timeline (sorted by start offset) and the first fatal error,
// if any. All tasks are attempted even if one fails fatally, matching
// MapReduce's behaviour of letting in-flight tasks finish.
func (c *Cluster) Run(tasks []Task) ([]Event, error) {
	start := time.Now()

	// Assign each task to a node: preferred when given and healthy,
	// else round-robin over healthy nodes.
	queues := make([][]Task, len(c.nodes))
	rr := 0
	var fatal []error
	for _, t := range tasks {
		id := -1
		if t.Preferred >= 0 && t.Preferred < len(c.nodes) && !c.isDown(t.Preferred) {
			id = t.Preferred
		} else {
			id = c.healthyNode(rr)
			rr++
		}
		if id < 0 {
			return nil, errors.New("cluster: no healthy nodes")
		}
		queues[id] = append(queues[id], t)
	}

	var (
		evMu   sync.Mutex
		events []Event
		errMu  sync.Mutex
	)
	record := func(e Event) {
		evMu.Lock()
		events = append(events, e)
		evMu.Unlock()
	}
	addFatal := func(err error) {
		errMu.Lock()
		fatal = append(fatal, err)
		errMu.Unlock()
	}

	var wg sync.WaitGroup

	runAttempts := func(nodeID int, t Task) {
		attempt := 1
		id := nodeID
		for {
			if c.isDown(id) {
				// Node died between queueing and execution: move.
				id = c.healthyNode(id + 1)
				if id < 0 {
					addFatal(errors.New("cluster: no healthy nodes for retry"))
					return
				}
			}
			aStart := time.Since(start)
			var err error
			injected := false
			if f, ok := c.takeFailure(t.Name, attempt); ok {
				if f.Delay > 0 {
					time.Sleep(f.Delay)
				}
				if f.DownNode {
					c.markDown(id)
				}
				err = fmt.Errorf("cluster: injected failure (task %s attempt %d)", t.Name, attempt)
				injected = true
			} else {
				err = t.Run(TaskContext{Node: c.nodes[id], Attempt: attempt})
			}
			e := Event{
				Task:    t.Name,
				Node:    id,
				Attempt: attempt,
				Start:   aStart,
				End:     time.Since(start),
			}
			if err == nil {
				record(e)
				return
			}
			e.Failed = true
			e.Injected = injected
			e.Err = err.Error()
			record(e)
			if attempt >= c.cfg.MaxAttempts {
				addFatal(fmt.Errorf("cluster: task %s failed after %d attempts: %w", t.Name, attempt, err))
				return
			}
			attempt++
			// Paper Sec. 6.1: a failed task is rescheduled on the same
			// TaskTracker; a failed *worker* forces the task to a
			// different healthy node. isDown at loop top handles the
			// latter.
		}
	}

	// One dispatcher per node feeds that node's queue through its slot
	// semaphore, so a saturated node never delays dispatch elsewhere.
	for id := range c.nodes {
		wg.Add(1)
		go func(id int, queue []Task) {
			defer wg.Done()
			sem := make(chan struct{}, c.cfg.SlotsPerNode)
			var nodeWG sync.WaitGroup
			for _, t := range queue {
				sem <- struct{}{}
				nodeWG.Add(1)
				go func(t Task) {
					defer nodeWG.Done()
					defer func() { <-sem }()
					runAttempts(id, t)
				}(t)
			}
			nodeWG.Wait()
		}(id, queues[id])
	}
	wg.Wait()

	sort.Slice(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].Task < events[j].Task
	})
	if len(fatal) > 0 {
		return events, fatal[0]
	}
	return events, nil
}
