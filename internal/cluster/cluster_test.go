package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.ScratchRoot == "" {
		cfg.ScratchRoot = t.TempDir()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRequiresScratchRoot(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without scratch root succeeded")
	}
}

func TestDefaultsAndScratchDirs(t *testing.T) {
	c := newCluster(t, Config{Nodes: 3})
	if c.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	if c.Slots() != 2 {
		t.Fatalf("Slots = %d", c.Slots())
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		n := c.NodeByID(i)
		if n.ID != i {
			t.Fatalf("NodeByID(%d).ID = %d", i, n.ID)
		}
		if n.ScratchDir == "" || seen[n.ScratchDir] {
			t.Fatalf("node %d scratch dir %q duplicated or empty", i, n.ScratchDir)
		}
		seen[n.ScratchDir] = true
	}
}

func TestNodeByIDPanics(t *testing.T) {
	c := newCluster(t, Config{Nodes: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("NodeByID(5) did not panic")
		}
	}()
	c.NodeByID(5)
}

func TestRunExecutesAllTasks(t *testing.T) {
	c := newCluster(t, Config{Nodes: 4, SlotsPerNode: 2})
	var count atomic.Int64
	var tasks []Task
	for i := 0; i < 50; i++ {
		tasks = append(tasks, Task{
			Name:      fmt.Sprintf("t%02d", i),
			Preferred: -1,
			Run: func(tc TaskContext) error {
				count.Add(1)
				return nil
			},
		})
	}
	events, err := c.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", count.Load())
	}
	if len(events) != 50 {
		t.Fatalf("%d events, want 50", len(events))
	}
}

func TestLocalityPreferenceHonoured(t *testing.T) {
	c := newCluster(t, Config{Nodes: 3, SlotsPerNode: 1})
	var mu sync.Mutex
	ranOn := map[string]int{}
	var tasks []Task
	for i := 0; i < 9; i++ {
		name := fmt.Sprintf("t%d", i)
		pref := i % 3
		tasks = append(tasks, Task{
			Name:      name,
			Preferred: pref,
			Run: func(tc TaskContext) error {
				mu.Lock()
				ranOn[name] = tc.Node.ID
				mu.Unlock()
				return nil
			},
		})
	}
	if _, err := c.Run(tasks); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		name := fmt.Sprintf("t%d", i)
		if ranOn[name] != i%3 {
			t.Errorf("task %s ran on node %d, preferred %d", name, ranOn[name], i%3)
		}
	}
}

func TestSlotLimitRespected(t *testing.T) {
	c := newCluster(t, Config{Nodes: 1, SlotsPerNode: 2})
	var cur, peak atomic.Int64
	var tasks []Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, Task{
			Name:      fmt.Sprintf("t%d", i),
			Preferred: 0,
			Run: func(tc TaskContext) error {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				return nil
			},
		})
	}
	if _, err := c.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds 2 slots", p)
	}
}

func TestTaskErrorRetriesThenSucceeds(t *testing.T) {
	c := newCluster(t, Config{Nodes: 1, MaxAttempts: 3})
	var attempts atomic.Int64
	tasks := []Task{{
		Name:      "flaky",
		Preferred: -1,
		Run: func(tc TaskContext) error {
			if attempts.Add(1) < 3 {
				return errors.New("transient")
			}
			return nil
		},
	}}
	events, err := c.Run(tasks)
	if err != nil {
		t.Fatalf("Run = %v", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
	failed := 0
	for _, e := range events {
		if e.Failed {
			failed++
			if e.Injected {
				t.Error("real failure marked Injected")
			}
		}
	}
	if failed != 2 {
		t.Fatalf("%d failed events, want 2", failed)
	}
}

func TestTaskExhaustsAttempts(t *testing.T) {
	c := newCluster(t, Config{Nodes: 1, MaxAttempts: 2})
	tasks := []Task{{
		Name:      "doomed",
		Preferred: -1,
		Run:       func(tc TaskContext) error { return errors.New("always") },
	}}
	events, err := c.Run(tasks)
	if err == nil {
		t.Fatal("Run with always-failing task succeeded")
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
}

func TestInjectedFailureRetriesSameNode(t *testing.T) {
	c := newCluster(t, Config{Nodes: 2, MaxAttempts: 3})
	c.InjectFailure(Failure{Task: "m", Attempt: 1})
	var nodes []int
	var mu sync.Mutex
	tasks := []Task{{
		Name:      "m",
		Preferred: 1,
		Run: func(tc TaskContext) error {
			mu.Lock()
			nodes = append(nodes, tc.Node.ID)
			mu.Unlock()
			return nil
		},
	}}
	events, err := c.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Attempt 1 injected (Run not called); attempt 2 runs on same node.
	if len(nodes) != 1 || nodes[0] != 1 {
		t.Fatalf("task ran on nodes %v, want [1]", nodes)
	}
	if !events[0].Failed || !events[0].Injected {
		t.Fatalf("first event = %+v, want injected failure", events[0])
	}
	if events[1].Node != 1 || events[1].Failed {
		t.Fatalf("second event = %+v", events[1])
	}
}

func TestDownNodeForcesMigration(t *testing.T) {
	c := newCluster(t, Config{Nodes: 2, MaxAttempts: 3})
	c.InjectFailure(Failure{Task: "m", Attempt: 1, DownNode: true})
	var mu sync.Mutex
	var ranNode = -1
	tasks := []Task{{
		Name:      "m",
		Preferred: 0,
		Run: func(tc TaskContext) error {
			mu.Lock()
			ranNode = tc.Node.ID
			mu.Unlock()
			return nil
		},
	}}
	if _, err := c.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if ranNode != 1 {
		t.Fatalf("retry ran on node %d, want 1 (node 0 down)", ranNode)
	}
	c.ResetFailures()
	if c.isDown(0) {
		t.Fatal("node still down after ResetFailures")
	}
}

func TestAllNodesDown(t *testing.T) {
	c := newCluster(t, Config{Nodes: 1, MaxAttempts: 3})
	c.InjectFailure(Failure{Task: "m", Attempt: 1, DownNode: true})
	tasks := []Task{{
		Name:      "m",
		Preferred: 0,
		Run:       func(tc TaskContext) error { return nil },
	}}
	if _, err := c.Run(tasks); err == nil {
		t.Fatal("Run with all nodes down succeeded")
	}
}

func TestTimelineSortedAndDurationsSane(t *testing.T) {
	c := newCluster(t, Config{Nodes: 2, SlotsPerNode: 2})
	var tasks []Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, Task{
			Name:      fmt.Sprintf("t%d", i),
			Preferred: -1,
			Run: func(tc TaskContext) error {
				time.Sleep(time.Millisecond)
				return nil
			},
		})
	}
	events, err := c.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		if e.End < e.Start {
			t.Fatalf("event %d ends before it starts: %+v", i, e)
		}
		if i > 0 && events[i].Start < events[i-1].Start {
			t.Fatal("timeline not sorted by start")
		}
	}
}

func TestInjectedFailureDelayShowsInTimeline(t *testing.T) {
	c := newCluster(t, Config{Nodes: 1, MaxAttempts: 2})
	c.InjectFailure(Failure{Task: "slow", Attempt: 1, Delay: 10 * time.Millisecond})
	tasks := []Task{{
		Name:      "slow",
		Preferred: -1,
		Run:       func(tc TaskContext) error { return nil },
	}}
	events, err := c.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if d := events[0].End - events[0].Start; d < 10*time.Millisecond {
		t.Fatalf("injected failure ran for %v, want >= 10ms", d)
	}
}
