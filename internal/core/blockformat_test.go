package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestIncrementalStateEquivalenceAcrossSegmentFormats sweeps the
// durable-segment knobs through the incremental iterative engine: the
// converged PageRank state must be byte-identical at every block size
// and codec, with and without forced shuffle spilling, and across a
// kill-and-Open restart that reopens the preserved stores under
// different knobs than they were written with.
func TestIncrementalStateEquivalenceAcrossSegmentFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	adj := randomGraph(rng, 40, 4)
	initialPairs := graphPairs(adj)
	deltas1 := mutateGraph(rng, adj, 0.1)
	deltas2 := mutateGraph(rng, adj, 0.1)

	type segKnobs struct {
		blockBytes int
		codec      string
		bloomBits  int
	}
	type config struct {
		write  segKnobs
		reopen segKnobs
		budget int64
	}
	configs := []config{
		{}, // defaults throughout
		{
			write:  segKnobs{blockBytes: 4 << 10, codec: "flate"},
			reopen: segKnobs{blockBytes: 256 << 10, codec: "none"},
			budget: 256, // tiny: forces spilling
		},
		{
			write:  segKnobs{blockBytes: 256 << 10, codec: "none", bloomBits: -1},
			reopen: segKnobs{blockBytes: 4 << 10, codec: "flate"},
		},
	}

	mkCfg := func(k segKnobs, budget int64) Config {
		return Config{
			NumPartitions: 2, MaxIterations: 300, Epsilon: 1e-10,
			ShuffleMemoryBudget: budget, Checkpoint: true,
			SegmentBlockBytes: k.blockBytes, SegmentCompression: k.codec,
			BloomBitsPerKey: k.bloomBits,
		}
	}

	var want map[string]string
	for ci, c := range configs {
		label := fmt.Sprintf("config %d", ci)
		root := t.TempDir()
		eng := engineAt(t, root, 3)
		if err := eng.FS().WriteAllPairs("g0", initialPairs); err != nil {
			t.Fatal(err)
		}
		if err := eng.FS().WriteAllDeltas("d1", deltas1); err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(eng, pageRankSpec("pr-segfmt"), mkCfg(c.write, c.budget))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunInitial("g0"); err != nil {
			t.Fatalf("%s: initial: %v", label, err)
		}
		if _, err := r.RunIncremental("d1"); err != nil {
			t.Fatalf("%s: d1: %v", label, err)
		}
		r.Close() // "kill": durable state was flushed at the job boundary

		eng2 := engineAt(t, root, 3)
		if err := eng2.FS().WriteAllDeltas("d2", deltas2); err != nil {
			t.Fatal(err)
		}
		r2, err := Open(eng2, pageRankSpec("pr-segfmt"), mkCfg(c.reopen, c.budget))
		if err != nil {
			t.Fatalf("%s: Open after restart: %v", label, err)
		}
		res, err := r2.RunIncremental("d2")
		if err != nil {
			t.Fatalf("%s: d2 after restart: %v", label, err)
		}
		if !res.Converged {
			t.Fatalf("%s: resumed refresh did not converge", label)
		}
		got := r2.State()
		if want == nil {
			want = got
		} else {
			assertStatesIdentical(t, got, want, label+": vs first configuration")
		}
		r2.Close()
	}
}
