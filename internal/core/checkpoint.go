package core

import (
	"fmt"

	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/results"
)

// Checkpointing (paper Sec. 6.1): "i2MapReduce checkpoints the prime
// Reduce task's output state data and MRBGraph file on HDFS in every
// iteration." State and the CPC baseline live in durable per-partition
// KV stores (internal/results, see state.go), so a checkpoint commits
// each dirty partition's memtable — only the entries mutated since the
// previous checkpoint — through the store's manifest, and the
// MRBG-Store persists its own index. Partitions with no pending
// mutations are skipped entirely; nothing ever rewrites a full state
// file. A failed task attempt is retried by the cluster scheduler (same
// node for task failures, a healthy node for worker failures);
// RestoreCheckpoint rolls the runner back to the last durable state,
// which tests use to prove recoverability end to end.

// checkpoint persists the dirty slice of the durable state stores plus
// the MRBGraph files, reporting the flush shape to rep (which may be
// nil): CounterStateDirtyPartitions counts the partitions that actually
// flushed and CounterStateGroupsFlushed the entries they wrote.
func (r *Runner) checkpoint(rep *metrics.Report) error {
	var dirty, flushed int64
	if r.spec.ReplicateState {
		if pend := r.globalKV.Pending(); pend > 0 || !r.globalKV.Initialized() {
			dirty, flushed = 1, int64(pend)
			if err := r.globalKV.Checkpoint(); err != nil {
				return err
			}
		}
	} else {
		for p := 0; p < r.n; p++ {
			// Each store is gated on its own pending set: CPC filtering
			// routinely dirties state but not the baseline, and a clean
			// store's Checkpoint would still rewrite its manifest.
			partDirty := false
			for _, kvs := range []*results.KV{r.stateKV[p], r.lastKV[p]} {
				pend := kvs.Pending()
				if pend == 0 && kvs.Initialized() {
					continue
				}
				flushed += int64(pend)
				if err := kvs.Checkpoint(); err != nil {
					return err
				}
				partDirty = true
			}
			if partDirty {
				dirty++
			}
		}
	}
	if r.mrbgOn {
		for p := 0; p < r.n; p++ {
			if err := r.stores[p].Checkpoint(); err != nil {
				return err
			}
		}
	}
	if rep != nil {
		rep.Add(metrics.CounterStateDirtyPartitions, dirty)
		rep.Add(metrics.CounterStateGroupsFlushed, flushed)
	}
	return nil
}

// RestoreCheckpoint reloads state (and the CPC baseline) from the most
// recent durable checkpoint, discarding any in-memory progress since.
// MRBG-Stores recover independently through their own persisted indexes
// when reopened.
func (r *Runner) RestoreCheckpoint() error {
	if !r.cfg.Checkpoint {
		return fmt.Errorf("core: checkpointing disabled for %q", r.spec.Name)
	}
	if !r.initialDone {
		return fmt.Errorf("core: no checkpoint to restore for %q before RunInitial", r.spec.Name)
	}
	if r.spec.ReplicateState {
		r.globalKV.DiscardPending()
		g, err := loadKV(r.globalKV)
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.global = g
		r.mu.Unlock()
		return nil
	}
	for p := 0; p < r.n; p++ {
		r.stateKV[p].DiscardPending()
		r.lastKV[p].DiscardPending()
		st, err := loadKV(r.stateKV[p])
		if err != nil {
			return err
		}
		le, err := loadKV(r.lastKV[p])
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.state[p] = st
		r.last[p] = le
		r.mu.Unlock()
	}
	return nil
}
