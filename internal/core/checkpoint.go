package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/par"
	"i2mapreduce/internal/results"
)

// Checkpointing (paper Sec. 6.1): "i2MapReduce checkpoints the prime
// Reduce task's output state data and MRBGraph file on HDFS in every
// iteration." State and the CPC baseline live in durable per-partition
// KV stores (internal/results, see state.go), so a checkpoint commits
// each dirty partition's memtable — only the entries mutated since the
// previous checkpoint — through the store's manifest, and the
// MRBG-Store persists its own index. Partitions with no pending
// mutations are skipped entirely; nothing ever rewrites a full state
// file. A failed task attempt is retried by the cluster scheduler (same
// node for task failures, a healthy node for worker failures);
// RestoreCheckpoint rolls the runner back to the last durable state,
// which tests use to prove recoverability end to end.
//
// Partitions are independent durable stores, so the per-partition loops
// fan out on the shared bounded-parallelism runner (internal/par) at
// Config.IOParallelism. Crash consistency is per store — each commits
// its own manifest atomically — so concurrency changes only the order
// in which partitions reach durability, never what any single
// partition's recovered state can be.

// checkpoint persists the dirty slice of the durable state stores plus
// the MRBGraph files, reporting the flush shape to rep (which may be
// nil): CounterStateDirtyPartitions counts the partitions that actually
// flushed, CounterStateGroupsFlushed the entries they wrote, and
// StageCheckpoint the wall-clock of the whole durability fan-out.
func (r *Runner) checkpoint(rep *metrics.Report) error {
	start := time.Now()
	var dirty, flushed atomic.Int64
	if r.spec.ReplicateState {
		if pend := r.globalKV.Pending(); pend > 0 || !r.globalKV.Initialized() {
			dirty.Store(1)
			flushed.Store(int64(pend))
			if err := r.globalKV.Checkpoint(); err != nil {
				return err
			}
		}
	} else {
		err := par.Do(r.n, r.ioPar, func(p int) error {
			// Each store is gated on its own pending set: CPC filtering
			// routinely dirties state but not the baseline, and a clean
			// store's Checkpoint would still rewrite its manifest.
			partDirty := false
			for _, kvs := range []*results.KV{r.stateKV[p], r.lastKV[p]} {
				pend := kvs.Pending()
				if pend == 0 && kvs.Initialized() {
					continue
				}
				flushed.Add(int64(pend))
				if err := kvs.Checkpoint(); err != nil {
					return err
				}
				partDirty = true
			}
			if partDirty {
				dirty.Add(1)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if r.mrbgOn {
		err := par.Do(r.n, r.ioPar, func(p int) error {
			return r.stores[p].Checkpoint()
		})
		if err != nil {
			return err
		}
	}
	if rep != nil {
		rep.Add(metrics.CounterStateDirtyPartitions, dirty.Load())
		rep.Add(metrics.CounterStateGroupsFlushed, flushed.Load())
		rep.AddStage(metrics.StageCheckpoint, time.Since(start))
	}
	return nil
}

// RestoreCheckpoint reloads state (and the CPC baseline) from the most
// recent durable checkpoint, discarding any in-memory progress since.
// MRBG-Stores recover independently through their own persisted indexes
// when reopened.
func (r *Runner) RestoreCheckpoint() error {
	if !r.cfg.Checkpoint {
		return fmt.Errorf("core: checkpointing disabled for %q", r.spec.Name)
	}
	if !r.initialDone {
		return fmt.Errorf("core: no checkpoint to restore for %q before RunInitial", r.spec.Name)
	}
	if r.spec.ReplicateState {
		r.globalKV.DiscardPending()
		g, err := loadKV(r.globalKV)
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.global = g
		r.mu.Unlock()
		return nil
	}
	return par.Do(r.n, r.ioPar, func(p int) error {
		r.stateKV[p].DiscardPending()
		r.lastKV[p].DiscardPending()
		st, err := loadKV(r.stateKV[p])
		if err != nil {
			return err
		}
		le, err := loadKV(r.lastKV[p])
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.state[p] = st
		r.last[p] = le
		r.mu.Unlock()
		return nil
	})
}
