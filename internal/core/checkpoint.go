package core

import (
	"fmt"
	"os"
	"path/filepath"

	"i2mapreduce/internal/kv"
)

// Checkpointing (paper Sec. 6.1): "i2MapReduce checkpoints the prime
// Reduce task's output state data and MRBGraph file on HDFS in every
// iteration." Here state files are written next to each partition's
// MRBG-Store, and the store's own Checkpoint persists its index and
// data file. A failed task attempt is retried by the cluster scheduler
// (same node for task failures, a healthy node for worker failures);
// RestoreCheckpoint rolls the runner back to the last durable state,
// which tests use to prove recoverability end to end.

// ckptStatePath names partition p's state checkpoint file.
func (r *Runner) ckptStatePath(p int) string {
	node := r.eng.Cluster().NodeByID(p % r.eng.Cluster().NumNodes())
	return filepath.Join(node.ScratchDir, "core-ckpt", sanitize(r.spec.Name), fmt.Sprintf("part-%04d.state", p))
}

func (r *Runner) ckptLastPath(p int) string {
	return r.ckptStatePath(p) + ".last"
}

// checkpoint persists the current state data and MRBGraph files.
func (r *Runner) checkpoint() error {
	if r.spec.ReplicateState {
		r.mu.Lock()
		g := mapToPairs(r.global)
		r.mu.Unlock()
		return writePairsFile(r.ckptStatePath(0), g)
	}
	for p := 0; p < r.n; p++ {
		r.mu.Lock()
		st := mapToPairs(r.state[p])
		le := mapToPairs(r.last[p])
		r.mu.Unlock()
		if err := writePairsFile(r.ckptStatePath(p), st); err != nil {
			return err
		}
		if err := writePairsFile(r.ckptLastPath(p), le); err != nil {
			return err
		}
		if r.mrbgOn {
			if err := r.stores[p].Checkpoint(); err != nil {
				return err
			}
		}
	}
	return nil
}

// RestoreCheckpoint reloads state (and the CPC baseline) from the most
// recent checkpoint files, discarding any in-memory progress since.
// MRBG-Stores recover independently through their own persisted
// indexes when reopened.
func (r *Runner) RestoreCheckpoint() error {
	if !r.cfg.Checkpoint {
		return fmt.Errorf("core: checkpointing disabled for %q", r.spec.Name)
	}
	if r.spec.ReplicateState {
		ps, err := readPairsFile(r.ckptStatePath(0))
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.global = pairsToMap(ps)
		r.mu.Unlock()
		return nil
	}
	for p := 0; p < r.n; p++ {
		st, err := readPairsFile(r.ckptStatePath(p))
		if err != nil {
			return err
		}
		le, err := readPairsFile(r.ckptLastPath(p))
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.state[p] = pairsToMap(st)
		r.last[p] = pairsToMap(le)
		r.mu.Unlock()
	}
	return nil
}

func mapToPairs(m map[string]string) []kv.Pair {
	ps := make([]kv.Pair, 0, len(m))
	for k, v := range m {
		ps = append(ps, kv.Pair{Key: k, Value: v})
	}
	kv.SortPairs(ps)
	return ps
}

func pairsToMap(ps []kv.Pair) map[string]string {
	m := make(map[string]string, len(ps))
	for _, p := range ps {
		m[p.Key] = p.Value
	}
	return m
}

// writePairsFile writes pairs atomically (temp file + rename).
func writePairsFile(path string, ps []kv.Pair) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := kv.EncodePairs(f, ps); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readPairsFile(path string) ([]kv.Pair, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kv.DecodePairs(f)
}
