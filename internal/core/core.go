// Package core implements i2MapReduce itself: incremental processing
// for iterative computation (paper Sec. 5), combining the iterative
// model of internal/iter with the MRBG-Store of internal/mrbg.
//
// Lifecycle of a computation over an evolving dataset:
//
//	r, _ := core.NewRunner(engine, spec, cfg)
//	r.RunInitial("structure-v1")        // job A1: iterate to convergence,
//	                                    // then preserve state + MRBGraph
//	r.RunIncremental("delta-1")         // job A2: start from A1's converged
//	                                    // state, re-compute only what the
//	                                    // delta touches
//	r.RunIncremental("delta-2")         // job A3: ...
//
// RunIncremental feeds the delta *structure* data into iteration 1 and
// the delta *state* data into iterations >= 2 (Sec. 5.1), controls
// change propagation with a filter threshold (Sec. 5.3), detects the
// P_delta over-cost condition and falls back to pure iterative
// processing with MRBGraph maintenance off (Sec. 5.2), and checkpoints
// state and MRBGraph files every iteration (Sec. 6.1).
package core

import (
	"cmp"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/engine"
	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
	"i2mapreduce/internal/mrbg"
	"i2mapreduce/internal/par"
	"i2mapreduce/internal/results"
	"i2mapreduce/internal/shuffle"
)

// Spec re-exports the iterative application model; core adds two
// requirements on top of iter's contract for fine-grain incremental
// processing:
//
//   - a Map instance's set of output keys K2 must be determined by the
//     structure record alone (PageRank/SSSP/GIM-V satisfy this), so a
//     state-only change replaces edges at the same (K2, MK);
//   - the prime Reduce must emit at most one state update, keyed by its
//     own K2 (the chunk <-> state-key bijection).
type Spec = iter.Spec

// Config tunes the incremental iterative engine.
type Config struct {
	// NumPartitions defaults to the cluster node count.
	NumPartitions int
	// MaxIterations caps each job's loop. Defaults to 50.
	MaxIterations int
	// Epsilon is the convergence tolerance: state changes at or below
	// it never propagate.
	Epsilon float64
	// CPC enables change propagation control (Sec. 5.3).
	CPC bool
	// FilterThreshold is the CPC filter: with CPC on, only state
	// changes strictly greater than this propagate to the next
	// iteration. The paper's Fig. 10/11 sweep 0.1 / 0.5 / 1.
	FilterThreshold float64
	// DisableMRBG turns MRBGraph maintenance off for the whole
	// computation (the paper's advice for Kmeans). ReplicateState specs
	// force this.
	DisableMRBG bool
	// PDeltaThreshold triggers the automatic MRBG shutdown when the
	// fraction of changed state keys in one iteration exceeds it.
	// Defaults to 0.5 (Sec. 5.2).
	PDeltaThreshold float64
	// StoreOpts templates the per-partition MRBG-Store options.
	StoreOpts mrbg.Options
	// ShuffleMemoryBudget bounds the bytes of intermediate data the
	// full-pass shuffle buffers in memory per iteration; beyond it, map
	// output spills to node-local scratch as sorted runs streamed back
	// through a k-way merge ("shuffle.spill.runs" /
	// "shuffle.spill.bytes"). <= 0 keeps everything in memory; when the
	// runner is built through i2mr.System, 0 inherits the System-wide
	// default and a negative value explicitly opts out of spilling.
	ShuffleMemoryBudget int64
	// InitialState seeds the state for ReplicateState specs.
	InitialState map[string]string
	// Checkpoint persists state and MRBGraph files after every
	// incremental iteration (Sec. 6.1). On by default for incremental
	// runs when true. Independent of this knob, every job flushes its
	// durable state stores and stamps the job meta when it completes,
	// so Open can always resume at the last job boundary.
	Checkpoint bool
	// StateCompactThreshold is the segment count at which the durable
	// per-partition state stores compact during a checkpoint. 0 uses
	// the store default; negative disables compaction.
	StateCompactThreshold int
	// SegmentBlockBytes / SegmentCompression / BloomBitsPerKey tune the
	// state stores' v2 block segment format (results.Options fields of
	// the same meaning). Zero values use the store defaults; when built
	// through i2mr.System, zero inherits the System-wide defaults.
	SegmentBlockBytes  int
	SegmentCompression string
	BloomBitsPerKey    int
	// SkewRatio / SkewFanOut configure hot-key skew mitigation in the
	// full-pass shuffle (shuffle.Config): a K2 whose share of its
	// partition's intermediate records exceeds SkewRatio is split
	// across sub-keys and merged back byte-identically at reduce.
	// 0 disables; when built through i2mr.System, 0 inherits the
	// System-wide default.
	SkewRatio  float64
	SkewFanOut int
	// IOParallelism bounds the concurrent per-partition durability I/O:
	// checkpoint flushes, store opens, and checkpoint restores each fan
	// out across partitions on at most this many goroutines. <= 0 means
	// GOMAXPROCS; 1 recovers the serial pre-parallel behavior exactly.
	IOParallelism int
	// BackgroundCompaction moves state-store threshold compaction off
	// the checkpoint critical path onto a background scheduler
	// (results.Scheduler): a checkpoint then pays only the memtable
	// flush and the manifest commit, and compaction runs between
	// refreshes (the scheduler is paused while a job is in flight).
	// Off by default: compaction stays inline in Checkpoint.
	BackgroundCompaction bool
}

// IterStats reports one iteration of an initial or incremental run.
type IterStats struct {
	// Iteration is 1-based within its job.
	Iteration int
	// Propagated counts the state kv-pairs whose change exceeded the
	// active threshold and were emitted to the next iteration —
	// Fig. 11a's "prop. kv-pairs".
	Propagated int
	// Filtered counts state updates suppressed by CPC.
	Filtered int
	// Removed counts state keys whose chunks disappeared entirely.
	Removed int
	// Duration is the iteration wall time (Fig. 11b).
	Duration time.Duration
	// Stages is the per-stage breakdown (Fig. 9).
	Stages metrics.Snapshot
	// MRBGOn records whether MRBGraph maintenance was active.
	MRBGOn bool
}

// Result summarizes one job (initial or incremental).
type Result struct {
	Iterations int
	Converged  bool
	// MRBGDisabledAt is the iteration at which the P_delta detector
	// turned MRBGraph maintenance off, or 0.
	MRBGDisabledAt int
	PerIter        []IterStats
	Report         *metrics.Report
	// Events is the task attempt timeline across the job (Fig. 13).
	Events []cluster.Event
}

// Runner owns one evolving iterative computation.
type Runner struct {
	eng  *mr.Engine
	spec Spec
	cfg  Config
	n    int

	parts  []*structPart
	state  []map[string]string // write-through cache over stateKV
	last   []map[string]string // last propagated value per DK (CPC baseline)
	global map[string]string   // replicated state (ReplicateState specs)
	stores []*mrbg.ShardedStore

	// Durable backing of the in-memory state above (see state.go).
	stateKV  []*results.KV
	lastKV   []*results.KV
	globalKV *results.KV

	mrbgOn      bool
	initialDone bool
	// ioPar is the resolved Config.IOParallelism (>= 1); sched is the
	// background compaction scheduler, nil unless BackgroundCompaction.
	ioPar int
	sched *results.Scheduler
	// refreshFailed latches after a RunIncremental error past its first
	// durable mutation: the preserved state is half-applied and an
	// in-place retry would corrupt it (see RunIncremental).
	refreshFailed bool
	jobSeq        int
	// jobsDone is the durably committed job count (the jobs= stamp of
	// job.meta): it trails jobSeq while a job is in flight and catches up
	// when writeJobMeta commits. CompletedJobs exposes it to external
	// commit protocols (internal/ingest).
	jobsDone atomic.Int64
	// refreshStats backs the engine.Refresher Stats() view.
	refreshStats engine.StatsTracker

	jobStart    time.Time
	compactBase int64 // cumulative state-store compactions at job start
	events      []cluster.Event
	mu          sync.Mutex
}

// NewRunner validates the spec and prepares stores and scratch space.
func NewRunner(eng *mr.Engine, spec Spec, cfg Config) (*Runner, error) {
	probe, err := iter.NewRunner(eng, spec, iter.Config{
		NumPartitions: cfg.NumPartitions,
		InitialState:  cfg.InitialState,
	})
	if err != nil {
		return nil, err
	}
	_ = probe // validation only; core runs its own loop
	if cfg.NumPartitions <= 0 {
		cfg.NumPartitions = eng.Cluster().NumNodes()
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 50
	}
	if cfg.PDeltaThreshold <= 0 {
		cfg.PDeltaThreshold = 0.5
	}
	if cfg.IOParallelism <= 0 {
		cfg.IOParallelism = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		eng:    eng,
		spec:   spec,
		cfg:    cfg,
		n:      cfg.NumPartitions,
		ioPar:  cfg.IOParallelism,
		mrbgOn: !cfg.DisableMRBG && !spec.ReplicateState,
	}
	if cfg.BackgroundCompaction {
		r.sched = results.NewScheduler(results.SchedulerOptions{})
	}
	if r.mrbgOn {
		r.stores = make([]*mrbg.ShardedStore, r.n)
		err := par.Do(r.n, r.ioPar, func(p int) error {
			st, err := mrbg.Open(r.storeOpts(p))
			if err != nil {
				return fmt.Errorf("core: opening store %d: %w", p, err)
			}
			r.stores[p] = st
			return nil
		})
		if err != nil {
			r.Close()
			return nil, err
		}
	}
	if err := r.openStateStores(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

func sanitize(s string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			return c
		}
		return '_'
	}, s)
}

// Close shuts down the background compaction scheduler (waiting out any
// in-flight compaction, since it runs against these stores), then
// releases the MRBG-Stores and the durable state stores.
func (r *Runner) Close() error {
	first := r.sched.Close()
	for _, s := range r.stores {
		if s == nil {
			continue // a parallel NewRunner open failed part-way
		}
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, kvs := range r.stateKV {
		if kvs == nil {
			continue
		}
		if err := kvs.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, kvs := range r.lastKV {
		if kvs == nil {
			continue
		}
		if err := kvs.Close(); err != nil && first == nil {
			first = err
		}
	}
	if r.globalKV != nil {
		if err := r.globalKV.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stores exposes the per-partition MRBG-Stores for the Table 4 harness.
func (r *Runner) Stores() []*mrbg.ShardedStore { return r.stores }

// StateStores exposes the durable per-partition state stores — what the
// serving layer (internal/serve) snapshots to answer point lookups
// while refreshes are in flight. State keys are routed to partitions by
// kv.Partition, matching the engine's own placement. For ReplicateState
// specs it returns the single global store (every key routes to the one
// partition).
func (r *Runner) StateStores() []*results.KV {
	if r.spec.ReplicateState {
		return []*results.KV{r.globalKV}
	}
	return append([]*results.KV(nil), r.stateKV...)
}

// MRBGEnabled reports whether MRBGraph maintenance is currently active.
func (r *Runner) MRBGEnabled() bool { return r.mrbgOn }

// CompactionScheduler exposes the background compaction scheduler (nil
// unless Config.BackgroundCompaction), so the serving layer can surface
// its gauges.
func (r *Runner) CompactionScheduler() *results.Scheduler { return r.sched }

// CompletedJobs returns the durably committed job count (the jobs=
// stamp of job.meta): 1 after RunInitial, +1 per committed refresh. It
// advances only after the refresh's completion flush, so comparing it
// across a process death tells an external commit protocol
// (internal/ingest) whether an in-flight refresh committed.
func (r *Runner) CompletedJobs() int64 { return r.jobsDone.Load() }

// threshold returns the active propagation threshold: Epsilon floor,
// raised to FilterThreshold when CPC is on.
func (r *Runner) threshold() float64 {
	t := r.cfg.Epsilon
	if r.cfg.CPC && r.cfg.FilterThreshold > t {
		t = r.cfg.FilterThreshold
	}
	return t
}

// partitionOf returns the partition owning a structure key (Eq. 2).
func (r *Runner) partitionOf(sk string) int {
	if r.spec.ReplicateState {
		return kv.Partition(sk, r.n)
	}
	return kv.Partition(r.spec.Project(sk), r.n)
}

// structPath names partition p's cached structure file.
func (r *Runner) structPath(p int) string {
	node := r.eng.Cluster().NodeByID(p % r.eng.Cluster().NumNodes())
	return filepath.Join(node.ScratchDir, "core", sanitize(r.spec.Name), fmt.Sprintf("part-%04d.struct", p))
}

// shuffleDir names the node-local spill directory of one iteration's
// partition p (jobSeq disambiguates iterations across jobs).
func (r *Runner) shuffleDir(it, p int) string {
	node := r.eng.Cluster().NodeByID(p % r.eng.Cluster().NumNodes())
	return filepath.Join(node.ScratchDir, "core-shuffle", sanitize(r.spec.Name),
		fmt.Sprintf("j%d-it%03d-part-%04d", r.jobSeq, it, p))
}

// runTasks executes tasks on the cluster and accumulates their events
// into the job timeline, offset by the job's start time.
func (r *Runner) runTasks(tasks []cluster.Task) error {
	offset := time.Since(r.jobStart)
	evs, err := r.eng.Cluster().Run(tasks)
	r.mu.Lock()
	for _, e := range evs {
		e.Start += offset
		e.End += offset
		r.events = append(r.events, e)
	}
	r.mu.Unlock()
	return err
}

// stateOrInit returns the current state value for dk in partition p.
func (r *Runner) stateOrInit(p int, dk string) string {
	if v, ok := r.state[p][dk]; ok {
		return v
	}
	return r.spec.InitState(dk)
}

// State returns a copy of the merged state store.
func (r *Runner) State() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string)
	if r.spec.ReplicateState {
		for k, v := range r.global {
			out[k] = v
		}
		return out
	}
	for _, st := range r.state {
		for k, v := range st {
			out[k] = v
		}
	}
	return out
}

// StateKeyCount returns |D|, the number of live state kv-pairs.
func (r *Runner) StateKeyCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spec.ReplicateState {
		return len(r.global)
	}
	n := 0
	for _, st := range r.state {
		n += len(st)
	}
	return n
}

// loadStructure partitions the structure input (Eq. 2), builds the
// per-partition files + span indexes, and initializes state.
func (r *Runner) loadStructure(input string) error {
	fi, err := r.eng.FS().Stat(input)
	if err != nil {
		return fmt.Errorf("core: structure input: %w", err)
	}
	project := r.spec.Project
	if r.spec.ReplicateState {
		project = nil
	}
	parts := make([][]kv.Pair, r.n)
	for b := 0; b < len(fi.Blocks); b++ {
		br, err := r.eng.FS().OpenBlock(input, b)
		if err != nil {
			return err
		}
		for {
			p, err := br.ReadPair()
			if err == io.EOF {
				break
			}
			if err != nil {
				br.Close()
				return err
			}
			i := r.partitionOf(p.Key)
			parts[i] = append(parts[i], p)
		}
		br.Close()
	}
	r.parts = make([]*structPart, r.n)
	if r.spec.ReplicateState {
		init := make(map[string]string, len(r.cfg.InitialState))
		for k, v := range r.cfg.InitialState {
			init[k] = v
		}
		r.setGlobal(init)
	} else {
		r.state = make([]map[string]string, r.n)
		r.last = make([]map[string]string, r.n)
	}
	for p := 0; p < r.n; p++ {
		sp, err := buildStructPart(r.structPath(p), parts[p], project)
		if err != nil {
			return err
		}
		r.parts[p] = sp
		if !r.spec.ReplicateState {
			r.state[p] = make(map[string]string)
			r.last[p] = make(map[string]string)
			for dk := range sp.spans {
				r.setStateLocked(p, dk, r.spec.InitState(dk))
			}
		}
	}
	return nil
}

// RunInitial executes job A1: load structure, iterate to convergence
// with full passes, then preserve the converged state and MRBGraph for
// future incremental jobs.
func (r *Runner) RunInitial(input string) (*Result, error) {
	if r.initialDone {
		return nil, errors.New("core: RunInitial called twice")
	}
	// The job meta is written only after a fully successful initial run,
	// so its presence is the authoritative completion marker. Durable
	// state WITHOUT it is the partial work of an initial run that died
	// mid-way; discard it so this run starts clean.
	if _, _, _, _, ok, err := readJobMeta(r.jobMetaPath()); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("core: computation %q already has preserved state; use Open to resume or point the system at a fresh work dir", r.spec.Name)
	}
	if err := r.resetStaleState(); err != nil {
		return nil, err
	}
	// Background compaction stays paused while the job runs (the same
	// refresh barrier RunIncremental uses).
	r.sched.Pause()
	defer r.sched.Resume()
	r.jobStart = time.Now()
	r.events = nil
	r.jobSeq++
	_, r.compactBase = r.stateStoreStats()
	if err := r.loadStructure(input); err != nil {
		return nil, err
	}
	res := &Result{Report: &metrics.Report{}}
	for it := 1; it <= r.cfg.MaxIterations; it++ {
		stats, err := r.runFullIteration(it)
		if err != nil {
			return nil, err
		}
		stats.MRBGOn = false
		res.PerIter = append(res.PerIter, stats)
		res.Iterations = it
		if stats.Propagated == 0 {
			res.Converged = true
			break
		}
	}
	if r.mrbgOn {
		if err := r.preservePass(); err != nil {
			return nil, err
		}
	}
	r.resetLastEmitted()
	// The completion flush runs regardless of Config.Checkpoint: the
	// converged state, the CPC baseline, and the preserved MRBGraph must
	// all be durable before the job meta stamps the run complete.
	if err := r.checkpoint(res.Report); err != nil {
		return nil, err
	}
	if err := r.writeJobMeta(); err != nil {
		return nil, err
	}
	r.finishResult(res)
	r.initialDone = true
	return res, nil
}

func (r *Runner) finishResult(res *Result) {
	for _, s := range res.PerIter {
		for _, st := range metrics.Stages() {
			res.Report.AddStage(st, s.Stages.Stages[st])
		}
	}
	res.Report.Add(metrics.CounterIterations, int64(res.Iterations))
	segs, comp := r.stateStoreStats()
	res.Report.Add(metrics.CounterStateSegments, segs)
	res.Report.Add(metrics.CounterStateCompactions, comp-r.compactBase)
	blocks, skips, decomp := r.stateReadStats()
	res.Report.Add(metrics.CounterResultBlocksRead, blocks)
	res.Report.Add(metrics.CounterResultBloomSkips, skips)
	res.Report.Add(metrics.CounterResultBytesDecompressed, decomp)
	if r.sched != nil {
		res.Report.Add(metrics.CounterCompactQueueDepth, r.sched.QueueDepth())
		res.Report.Add(metrics.CounterCompactBGRuns, r.sched.Runs())
	}
	r.mu.Lock()
	res.Events = append([]cluster.Event(nil), r.events...)
	r.mu.Unlock()
}

// resetLastEmitted aligns the CPC baseline with the current state (at
// job boundaries the preserved MRBGraph reflects exactly the current
// state, so the accumulated-change baseline restarts from it).
func (r *Runner) resetLastEmitted() {
	if r.spec.ReplicateState {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for p := 0; p < r.n; p++ {
		for k := range r.last[p] {
			if _, ok := r.state[p][k]; !ok {
				r.lastKV[p].Delete(k)
			}
		}
		l := make(map[string]string, len(r.state[p]))
		for k, v := range r.state[p] {
			if cur, ok := r.last[p][k]; !ok || cur != v {
				r.lastKV[p].Put(k, v)
			}
			l[k] = v
		}
		r.last[p] = l
	}
}

// runFullIteration is one complete prime Map -> shuffle -> prime
// Reduce pass over all structure records (used by the initial run and
// by MRBG-off mode), executed on the shared streaming shuffle runtime
// (internal/shuffle). State updates apply in place; Propagated counts
// keys that changed beyond the active threshold.
func (r *Runner) runFullIteration(it int) (IterStats, error) {
	start := time.Now()
	rep := &metrics.Report{}

	propagated := 0
	filtered := 0
	var statMu sync.Mutex
	var allOuts []kv.Pair // ReplicateState only
	var outsMu sync.Mutex
	thr := r.threshold()

	err := shuffle.Iteration{
		Name:         fmt.Sprintf("%s/j%d-it%03d", sanitize(r.spec.Name), r.jobSeq, it),
		Partitions:   r.n,
		NumNodes:     r.eng.Cluster().NumNodes(),
		RunTasks:     r.runTasks,
		MemoryBudget: r.cfg.ShuffleMemoryBudget,
		ScratchDir:   func(p int) string { return r.shuffleDir(it, p) },
		SkewRatio:    r.cfg.SkewRatio,
		SkewFanOut:   r.cfg.SkewFanOut,
		Report:       rep,
		MapPartition: func(p int, emit func(k2, v2 string)) (int64, error) {
			var repDK, repDV string
			if r.spec.ReplicateState {
				g := r.globalView()
				if len(g) != 1 {
					return 0, fmt.Errorf("core: ReplicateState spec %q has %d state keys; expected 1", r.spec.Name, len(g))
				}
				for k, v := range g {
					repDK, repDV = k, v
				}
			}
			var recs int64
			err := r.parts[p].readAll(func(pr kv.Pair) error {
				recs++
				dk, dv := repDK, repDV
				if !r.spec.ReplicateState {
					dk = r.spec.Project(pr.Key)
					dv = r.stateOrInit(p, dk)
				}
				return r.spec.Map(pr.Key, pr.Value, dk, dv, emit)
			})
			return recs, err
		},
		ReducePartition: func(p int, groups shuffle.GroupSource) error {
			getter := r.stateGetterFor(p)
			type upd struct{ dk, dv string }
			var ups []upd
			var outs []kv.Pair
			err := groups(func(g kv.Group) error {
				return r.spec.Reduce(g.Key, g.Values, getter, func(dk, dv string) {
					if r.spec.ReplicateState {
						outs = append(outs, kv.Pair{Key: dk, Value: dv})
						return
					}
					ups = append(ups, upd{dk, dv})
				})
			})
			if err != nil {
				return err
			}
			if r.spec.ReplicateState {
				outsMu.Lock()
				allOuts = append(allOuts, outs...)
				outsMu.Unlock()
				return nil
			}
			nProp, nFilt := 0, 0
			r.mu.Lock()
			for _, u := range ups {
				if kv.Partition(u.dk, r.n) != p {
					r.mu.Unlock()
					return fmt.Errorf("core: reduce task %d emitted foreign state key %q", p, u.dk)
				}
				prev := r.state[p][u.dk]
				if r.spec.Difference(prev, u.dv) > thr {
					nProp++
				} else {
					nFilt++
				}
				r.setStateLocked(p, u.dk, u.dv)
			}
			r.mu.Unlock()
			statMu.Lock()
			propagated += nProp
			filtered += nFilt
			statMu.Unlock()
			return nil
		},
	}.Run()
	if err != nil {
		return IterStats{}, fmt.Errorf("core: full iteration %d: %w", it, err)
	}

	if r.spec.ReplicateState {
		kv.SortPairs(allOuts)
		prev := r.globalView()
		next := r.spec.AssembleState(prev, allOuts)
		for k, nv := range next {
			if r.spec.Difference(prev[k], nv) > thr {
				propagated++
			}
		}
		r.setGlobal(next)
	}

	return IterStats{
		Iteration:  it,
		Propagated: propagated,
		Filtered:   filtered,
		Duration:   time.Since(start),
		Stages:     rep.Snapshot(),
	}, nil
}

func (r *Runner) globalView() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.global
}

func (r *Runner) stateGetterFor(p int) iter.StateGetter {
	if r.spec.ReplicateState {
		return func(dk string) (string, bool) {
			v, ok := r.globalView()[dk]
			return v, ok
		}
	}
	return func(dk string) (string, bool) {
		r.mu.Lock()
		defer r.mu.Unlock()
		v, ok := r.state[p][dk]
		return v, ok
	}
}

// preservePass rebuilds the MRBGraph from the converged state: every
// structure record is mapped once and the resulting edges are stored as
// chunks. This realizes the paper's "only the states in the last
// iteration of A_{i-1} need to be saved" — the preserved MRBGraph is
// the fixed-point edge set.
func (r *Runner) preservePass() error {
	edges := make([][]mrbg.DeltaEdge, r.n)
	// Aggregation is striped per destination partition: map tasks touch
	// every destination, so a single mutex over all of edges serializes
	// the merge phase of every task. Independent destinations never
	// contend here.
	edgeMu := make([]sync.Mutex, r.n)
	tasks := make([]cluster.Task, 0, r.n)
	for p := 0; p < r.n; p++ {
		p := p
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s/j%d-preserve/map-%04d", sanitize(r.spec.Name), r.jobSeq, p),
			Preferred: p % r.eng.Cluster().NumNodes(),
			Run: func(tc cluster.TaskContext) error {
				local := make([][]mrbg.DeltaEdge, r.n)
				err := r.parts[p].readAll(func(pr kv.Pair) error {
					dk := r.spec.Project(pr.Key)
					dv := r.stateOrInit(p, dk)
					return r.mapToEdges(pr.Key, pr.Value, dk, dv, false, local)
				})
				if err != nil {
					return err
				}
				for d := range local {
					if len(local[d]) == 0 {
						continue
					}
					edgeMu[d].Lock()
					edges[d] = append(edges[d], local[d]...)
					edgeMu[d].Unlock()
				}
				return nil
			},
		})
	}
	if err := r.runTasks(tasks); err != nil {
		return fmt.Errorf("core: preserve pass: %w", err)
	}

	stasks := make([]cluster.Task, 0, r.n)
	for p := 0; p < r.n; p++ {
		p := p
		stasks = append(stasks, cluster.Task{
			Name:      fmt.Sprintf("%s/j%d-preserve/store-%04d", sanitize(r.spec.Name), r.jobSeq, p),
			Preferred: p % r.eng.Cluster().NumNodes(),
			Run: func(tc cluster.TaskContext) error {
				es := edges[p]
				slices.SortFunc(es, func(a, b mrbg.DeltaEdge) int {
					if c := strings.Compare(a.Key, b.Key); c != 0 {
						return c
					}
					return cmp.Compare(a.MK, b.MK)
				})
				var cur mrbg.Chunk
				started := false
				flush := func() error {
					if !started {
						return nil
					}
					return r.stores[p].Put(cur)
				}
				for i, e := range es {
					if i == 0 || e.Key != cur.Key {
						if err := flush(); err != nil {
							return err
						}
						cur = mrbg.Chunk{Key: e.Key}
						started = true
					}
					cur.Edges = append(cur.Edges, mrbg.Edge{MK: e.MK, V2: e.V2})
				}
				if err := flush(); err != nil {
					return err
				}
				if err := r.stores[p].CommitBatch(); err != nil {
					return err
				}
				return r.stores[p].Checkpoint()
			},
		})
	}
	if err := r.runTasks(stasks); err != nil {
		return fmt.Errorf("core: preserve store pass: %w", err)
	}
	return nil
}

// mapToEdges invokes the prime Map for one structure record and
// collects the emissions as MRBGraph delta edges, partitioned by K2.
// MKs are occurrence-aware fingerprints of (SK, SV), so re-mapping the
// same record replaces its previous edges and a deletion cancels them.
func (r *Runner) mapToEdges(sk, sv, dk, dv string, del bool, out [][]mrbg.DeltaEdge) error {
	base := kv.Fingerprint(sk, sv)
	occ := make(map[string]uint32, 4)
	return r.spec.Map(sk, sv, dk, dv, func(k2, v2 string) {
		o := occ[k2]
		occ[k2] = o + 1
		mk := kv.Mix64(base + uint64(o)*0x9e3779b97f4a7c15)
		d := kv.Partition(k2, r.n)
		de := mrbg.DeltaEdge{Key: k2, MK: mk, Delete: del}
		if !del {
			de.V2 = v2
		}
		out[d] = append(out[d], de)
	})
}
