package core

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/mr"
)

func newEngine(t *testing.T, nodes int) *mr.Engine {
	t.Helper()
	root := t.TempDir()
	fs, err := dfs.New(dfs.Config{Root: root + "/dfs", BlockSize: 512, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, SlotsPerNode: 2, ScratchRoot: root + "/scratch"})
	if err != nil {
		t.Fatal(err)
	}
	return mr.NewEngine(fs, cl)
}

const damping = 0.8

func pageRankSpec(name string) Spec {
	return Spec{
		Name:    name,
		Project: func(sk string) string { return sk },
		Map: func(sk, sv, dk, dv string, emit iter.Emit) error {
			rank, err := strconv.ParseFloat(dv, 64)
			if err != nil {
				return fmt.Errorf("bad rank %q: %v", dv, err)
			}
			emit(sk, "0")
			outs := strings.Fields(sv)
			if len(outs) == 0 {
				return nil
			}
			share := strconv.FormatFloat(rank/float64(len(outs)), 'g', 17, 64)
			for _, j := range outs {
				emit(j, share)
			}
			return nil
		},
		Reduce: func(k2 string, values []string, state iter.StateGetter, emit iter.Emit) error {
			var sum float64
			for _, v := range values {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return err
				}
				sum += f
			}
			emit(k2, strconv.FormatFloat(damping*sum+(1-damping), 'g', 17, 64))
			return nil
		},
		InitState: func(dk string) string { return "1" },
		Difference: func(prev, cur string) float64 {
			a, _ := strconv.ParseFloat(prev, 64)
			b, _ := strconv.ParseFloat(cur, 64)
			return math.Abs(a - b)
		},
	}
}

// randomGraph builds a connected-ish random digraph.
func randomGraph(rng *rand.Rand, n, maxOut int) map[string][]string {
	adj := make(map[string][]string, n)
	for i := 0; i < n; i++ {
		v := fmt.Sprintf("v%03d", i)
		k := rng.Intn(maxOut) + 1
		seen := map[string]bool{}
		var outs []string
		for len(outs) < k {
			j := fmt.Sprintf("v%03d", rng.Intn(n))
			if j == v || seen[j] {
				continue
			}
			seen[j] = true
			outs = append(outs, j)
		}
		adj[v] = outs
	}
	return adj
}

func graphPairs(adj map[string][]string) []kv.Pair {
	var ps []kv.Pair
	for v, outs := range adj {
		ps = append(ps, kv.Pair{Key: v, Value: strings.Join(outs, " ")})
	}
	kv.SortPairs(ps)
	return ps
}

func writeGraph(t *testing.T, eng *mr.Engine, path string, adj map[string][]string) {
	t.Helper()
	if err := eng.FS().WriteAllPairs(path, graphPairs(adj)); err != nil {
		t.Fatal(err)
	}
}

// converge runs a reference iterMR computation to convergence on a
// graph — the ground truth an incremental run must reproduce.
func converge(t *testing.T, eng *mr.Engine, name, path string, n int) map[string]string {
	t.Helper()
	r, err := iter.NewRunner(eng, pageRankSpec(name), iter.Config{
		NumPartitions: n, MaxIterations: 200, Epsilon: 1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStructure(path); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("reference run did not converge")
	}
	return r.State()
}

func assertStatesClose(t *testing.T, got, want map[string]string, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d state keys, want %d", label, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: missing state key %q", label, k)
		}
		gf, _ := strconv.ParseFloat(g, 64)
		wf, _ := strconv.ParseFloat(w, 64)
		if math.Abs(gf-wf) > tol {
			t.Errorf("%s: state[%s] = %v, want %v", label, k, gf, wf)
		}
	}
}

// mutateGraph applies a fractional change, returning the delta records.
func mutateGraph(rng *rand.Rand, adj map[string][]string, frac float64) []kv.Delta {
	var deltas []kv.Delta
	keys := make([]string, 0, len(adj))
	for v := range adj {
		keys = append(keys, v)
	}
	kvSortStrings(keys)
	nChange := int(float64(len(keys))*frac) + 1
	for i := 0; i < nChange; i++ {
		v := keys[rng.Intn(len(keys))]
		outs, ok := adj[v]
		if !ok {
			continue
		}
		old := strings.Join(outs, " ")
		// Rewire one out-edge.
		tgt := keys[rng.Intn(len(keys))]
		newOuts := append([]string{}, outs...)
		if len(newOuts) > 0 {
			newOuts[rng.Intn(len(newOuts))] = tgt
		} else {
			newOuts = []string{tgt}
		}
		seen := map[string]bool{}
		var dedup []string
		for _, o := range newOuts {
			if o != v && !seen[o] {
				seen[o] = true
				dedup = append(dedup, o)
			}
		}
		if len(dedup) == 0 {
			continue
		}
		adj[v] = dedup
		deltas = append(deltas, kv.Delta{Key: v, Value: old, Op: kv.OpDelete})
		deltas = append(deltas, kv.Delta{Key: v, Value: strings.Join(dedup, " "), Op: kv.OpInsert})
	}
	return deltas
}

func kvSortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestInitialRunMatchesIterMR(t *testing.T) {
	eng := newEngine(t, 3)
	rng := rand.New(rand.NewSource(1))
	adj := randomGraph(rng, 60, 4)
	writeGraph(t, eng, "g", adj)

	r, err := NewRunner(eng, pageRankSpec("pr-init"), Config{
		NumPartitions: 3, MaxIterations: 200, Epsilon: 1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.RunInitial("g")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("initial run did not converge in %d iterations", res.Iterations)
	}
	want := converge(t, eng, "pr-ref", "g", 3)
	assertStatesClose(t, r.State(), want, 1e-8, "initial")
	// MRBGraph preserved for every partition.
	total := 0
	for _, s := range r.Stores() {
		total += s.Len()
		if err := s.VerifyInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if total != len(adj) {
		t.Fatalf("preserved %d chunks, want %d (one per vertex)", total, len(adj))
	}
}

func TestIncrementalMatchesRecompute(t *testing.T) {
	eng := newEngine(t, 3)
	rng := rand.New(rand.NewSource(2))
	adj := randomGraph(rng, 50, 3)
	writeGraph(t, eng, "g0", adj)

	r, err := NewRunner(eng, pageRankSpec("pr-incr"), Config{
		NumPartitions: 3, MaxIterations: 300, Epsilon: 1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 3; round++ {
		deltas := mutateGraph(rng, adj, 0.1)
		dPath := fmt.Sprintf("delta-%d", round)
		if err := eng.FS().WriteAllDeltas(dPath, deltas); err != nil {
			t.Fatal(err)
		}
		gPath := fmt.Sprintf("g%d", round)
		writeGraph(t, eng, gPath, adj)

		res, err := r.RunIncremental(dPath)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !res.Converged {
			t.Fatalf("round %d did not converge (%d iterations)", round, res.Iterations)
		}
		want := converge(t, eng, fmt.Sprintf("pr-ref-%d", round), gPath, 3)
		assertStatesClose(t, r.State(), want, 1e-6, fmt.Sprintf("round %d", round))
	}
	for _, s := range r.Stores() {
		if err := s.VerifyInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIncrementalTouchesFewerRecordsThanFull(t *testing.T) {
	eng := newEngine(t, 2)
	rng := rand.New(rand.NewSource(3))
	adj := randomGraph(rng, 200, 3)
	writeGraph(t, eng, "g0", adj)

	// Epsilon large enough that a single-vertex change damps out after
	// a few hops instead of propagating graph-wide (which would —
	// correctly — trip the P_delta fallback).
	r, err := NewRunner(eng, pageRankSpec("pr-select"), Config{
		NumPartitions: 2, MaxIterations: 100, Epsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}
	// Change a single vertex.
	deltas := mutateGraph(rng, adj, 0.001)
	if err := eng.FS().WriteAllDeltas("d", deltas); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunIncremental("d")
	if err != nil {
		t.Fatal(err)
	}
	mapped := res.Report.Counter("map.records.in")
	if mapped >= int64(len(adj)) {
		t.Fatalf("incremental run re-mapped %d records out of %d; expected selective processing", mapped, len(adj))
	}
	if res.MRBGDisabledAt != 0 {
		t.Fatalf("P_delta fallback triggered unexpectedly at iteration %d", res.MRBGDisabledAt)
	}
}

func TestVertexDeletionRemovesState(t *testing.T) {
	eng := newEngine(t, 2)
	adj := map[string][]string{
		"a": {"b"},
		"b": {"c"},
		"c": {"a"},
		"z": {"a"}, // will be deleted
	}
	writeGraph(t, eng, "g0", adj)
	r, err := NewRunner(eng, pageRankSpec("pr-del"), Config{
		NumPartitions: 2, MaxIterations: 200, Epsilon: 1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.State()["z"]; !ok {
		t.Fatal("vertex z missing before deletion")
	}
	deltas := []kv.Delta{{Key: "z", Value: "a", Op: kv.OpDelete}}
	if err := eng.FS().WriteAllDeltas("d", deltas); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunIncremental("d")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.State()["z"]; ok {
		t.Fatal("vertex z still has state after its record was deleted")
	}
	delete(adj, "z")
	writeGraph(t, eng, "g1", adj)
	want := converge(t, eng, "pr-del-ref", "g1", 2)
	assertStatesClose(t, r.State(), want, 1e-6, "after deletion")
	_ = res
}

func TestCPCFiltersAndBoundsError(t *testing.T) {
	eng := newEngine(t, 2)
	rng := rand.New(rand.NewSource(4))
	adj := randomGraph(rng, 120, 4)
	writeGraph(t, eng, "g0", adj)

	// One shared delta: both runs must process the same change.
	deltas := mutateGraph(rng, adj, 0.1)
	if err := eng.FS().WriteAllDeltas("d-shared", deltas); err != nil {
		t.Fatal(err)
	}

	run := func(name string, cpc bool, ft float64) (*Result, map[string]string, int64) {
		r, err := NewRunner(eng, pageRankSpec(name), Config{
			NumPartitions: 2, MaxIterations: 100, Epsilon: 1e-9,
			CPC: cpc, FilterThreshold: ft,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if _, err := r.RunInitial("g0"); err != nil {
			t.Fatal(err)
		}
		res, err := r.RunIncremental("d-shared")
		if err != nil {
			t.Fatal(err)
		}
		var totalProp int64
		for _, s := range res.PerIter {
			totalProp += int64(s.Propagated)
		}
		return res, r.State(), totalProp
	}

	_, exact, propNone := run("pr-nocpc", false, 0)
	resCPC, approx, propCPC := run("pr-cpc", true, 0.01)

	if propCPC >= propNone {
		t.Fatalf("CPC propagated %d >= no-CPC %d", propCPC, propNone)
	}
	filtered := 0
	for _, s := range resCPC.PerIter {
		filtered += s.Filtered
	}
	if filtered == 0 {
		t.Fatal("CPC filtered nothing")
	}
	// CPC error is bounded: every key within a few filter thresholds.
	for k, e := range exact {
		a := approx[k]
		ef, _ := strconv.ParseFloat(e, 64)
		af, _ := strconv.ParseFloat(a, 64)
		if math.Abs(ef-af) > 0.2 {
			t.Errorf("CPC error on %s: %v vs %v", k, af, ef)
		}
	}
}

func TestPDeltaFallbackDisablesMRBG(t *testing.T) {
	eng := newEngine(t, 2)
	rng := rand.New(rand.NewSource(5))
	adj := randomGraph(rng, 40, 3)
	writeGraph(t, eng, "g0", adj)

	r, err := NewRunner(eng, pageRankSpec("pr-pdelta"), Config{
		NumPartitions: 2, MaxIterations: 200, Epsilon: 1e-9,
		PDeltaThreshold: 0.3, // easy to exceed
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}
	// Change most of the graph: P_delta blows through the threshold.
	deltas := mutateGraph(rng, adj, 0.9)
	if err := eng.FS().WriteAllDeltas("d", deltas); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunIncremental("d")
	if err != nil {
		t.Fatal(err)
	}
	if res.MRBGDisabledAt == 0 {
		t.Fatal("P_delta fallback never triggered despite 90% change")
	}
	if !res.Converged {
		t.Fatal("fallback run did not converge")
	}
	writeGraph(t, eng, "g1", adj)
	want := converge(t, eng, "pr-pdelta-ref", "g1", 2)
	assertStatesClose(t, r.State(), want, 1e-6, "after fallback")
	if !r.MRBGEnabled() {
		t.Fatal("MRBG not re-enabled after post-fallback preserve pass")
	}
	// The store must be usable for the next incremental job.
	deltas2 := mutateGraph(rng, adj, 0.05)
	if err := eng.FS().WriteAllDeltas("d2", deltas2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunIncremental("d2"); err != nil {
		t.Fatal(err)
	}
	writeGraph(t, eng, "g2", adj)
	want2 := converge(t, eng, "pr-pdelta-ref2", "g2", 2)
	assertStatesClose(t, r.State(), want2, 1e-6, "incremental after fallback")
}

func TestCheckpointAndRestore(t *testing.T) {
	eng := newEngine(t, 2)
	rng := rand.New(rand.NewSource(6))
	adj := randomGraph(rng, 30, 3)
	writeGraph(t, eng, "g0", adj)

	r, err := NewRunner(eng, pageRankSpec("pr-ckpt"), Config{
		NumPartitions: 2, MaxIterations: 100, Epsilon: 1e-9, Checkpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}
	saved := r.State()

	// Corrupt in-memory state, then restore from the checkpoint.
	r.mu.Lock()
	for p := range r.state {
		for k := range r.state[p] {
			r.state[p][k] = "999"
		}
	}
	r.mu.Unlock()
	if err := r.RestoreCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r.State()) != fmt.Sprint(saved) {
		t.Fatal("restored state differs from checkpointed state")
	}
}

func TestRestoreWithoutCheckpointConfigured(t *testing.T) {
	eng := newEngine(t, 1)
	r, err := NewRunner(eng, pageRankSpec("pr-nockpt"), Config{NumPartitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.RestoreCheckpoint(); err == nil {
		t.Fatal("RestoreCheckpoint succeeded without checkpointing enabled")
	}
}

func TestFaultToleranceWithInjectedFailures(t *testing.T) {
	eng := newEngine(t, 2)
	rng := rand.New(rand.NewSource(7))
	adj := randomGraph(rng, 40, 3)
	writeGraph(t, eng, "g0", adj)

	r, err := NewRunner(eng, pageRankSpec("pr-ft"), Config{
		NumPartitions: 2, MaxIterations: 100, Epsilon: 1e-9, Checkpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}

	deltas := mutateGraph(rng, adj, 0.1)
	if err := eng.FS().WriteAllDeltas("d", deltas); err != nil {
		t.Fatal(err)
	}
	// Fail the first attempt of a reduce task in iteration 1 and a map
	// task in iteration 2 (task names follow core's naming scheme).
	eng.Cluster().InjectFailure(cluster.Failure{
		Task: "pr-ft/j2-it001/reduce-0000", Attempt: 1, Delay: 2 * time.Millisecond,
	})
	eng.Cluster().InjectFailure(cluster.Failure{
		Task: "pr-ft/j2-statemap-0000", Attempt: 1, Delay: 2 * time.Millisecond,
	})
	res, err := r.RunIncremental("d")
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, e := range res.Events {
		if e.Failed {
			failures++
			if !e.Injected {
				t.Errorf("unexpected real failure: %+v", e)
			}
		}
	}
	if failures != 2 {
		t.Fatalf("timeline shows %d failures, want 2", failures)
	}
	// Results still correct after recovery.
	writeGraph(t, eng, "g1", adj)
	want := converge(t, eng, "pr-ft-ref", "g1", 2)
	assertStatesClose(t, r.State(), want, 1e-6, "after failures")
}

func TestLifecycleErrors(t *testing.T) {
	eng := newEngine(t, 1)
	r, err := NewRunner(eng, pageRankSpec("pr-life"), Config{NumPartitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunIncremental("d"); err == nil {
		t.Fatal("RunIncremental before RunInitial succeeded")
	}
	writeGraph(t, eng, "g", map[string][]string{"a": {"b"}, "b": {"a"}})
	if _, err := r.RunInitial("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("g"); err == nil {
		t.Fatal("second RunInitial succeeded")
	}
	if _, err := r.RunIncremental("missing-delta"); err == nil {
		t.Fatal("RunIncremental with missing delta succeeded")
	}
}

func TestReduceContractViolations(t *testing.T) {
	eng := newEngine(t, 2)
	writeGraph(t, eng, "g", map[string][]string{"a": {"b"}, "b": {"a"}})

	spec := pageRankSpec("pr-bad")
	spec.Reduce = func(k2 string, values []string, state iter.StateGetter, emit iter.Emit) error {
		emit(k2, "1")
		emit(k2, "2") // second emission violates the incremental contract
		return nil
	}
	r, err := NewRunner(eng, spec, Config{NumPartitions: 2, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g"); err != nil {
		t.Fatal(err)
	}
	if err := eng.FS().WriteAllDeltas("d", []kv.Delta{
		{Key: "a", Value: "b", Op: kv.OpDelete},
		{Key: "a", Value: "b", Op: kv.OpInsert},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunIncremental("d"); err == nil {
		t.Fatal("double state emission in incremental reduce succeeded")
	}
}

func TestStructureDeltaValidation(t *testing.T) {
	eng := newEngine(t, 1)
	writeGraph(t, eng, "g", map[string][]string{"a": {"b"}})
	r, err := NewRunner(eng, pageRankSpec("pr-badDelta"), Config{NumPartitions: 1, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g"); err != nil {
		t.Fatal(err)
	}
	// Deleting a record that does not exist must fail loudly.
	if err := eng.FS().WriteAllDeltas("d", []kv.Delta{
		{Key: "ghost", Value: "nope", Op: kv.OpDelete},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunIncremental("d"); err == nil {
		t.Fatal("deletion of nonexistent structure record succeeded")
	}
}
