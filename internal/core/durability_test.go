package core

// Crash/resume coverage for the durable incremental iterative engine:
// kill-and-Open between refreshes at several partition counts and
// shuffle budgets (byte-identical converged state vs an uninterrupted
// run), refusal of half-applied refreshes (kill between iterations),
// stale-partial-initial detection, topology-mismatch refusal, and the
// dirty-partition checkpoint accounting.

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
)

// engineAt builds an engine rooted at a fixed directory, so a test can
// simulate a process restart by constructing a second engine over the
// same scratch root. The DFS namespace is per-process (a fresh job
// re-ingests its inputs); the preserved MRBG-Stores, state stores, and
// structure partitions live under the cluster scratch dirs and survive.
func engineAt(t *testing.T, root string, nodes int) *mr.Engine {
	t.Helper()
	fs, err := dfs.New(dfs.Config{Root: filepath.Join(root, "dfs"), BlockSize: 512, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, SlotsPerNode: 2, ScratchRoot: filepath.Join(root, "scratch")})
	if err != nil {
		t.Fatal(err)
	}
	return mr.NewEngine(fs, cl)
}

// TestOpenResumesAcrossRestartSweep is the acceptance sweep: at every
// (partition count, shuffle budget) configuration, a computation killed
// between refreshes and reattached with Open must converge the next
// delta to state byte-identical to an uninterrupted run's.
func TestOpenResumesAcrossRestartSweep(t *testing.T) {
	// One deterministic graph history shared by every configuration.
	rng := rand.New(rand.NewSource(41))
	adj := randomGraph(rng, 60, 4)
	initialPairs := graphPairs(adj)
	deltas1 := mutateGraph(rng, adj, 0.1)
	deltas2 := mutateGraph(rng, adj, 0.1)
	finalPairs := graphPairs(adj)

	type config struct {
		parts  int
		budget int64
	}
	configs := []config{
		{parts: 2, budget: 0},
		{parts: 2, budget: 256}, // tiny: forces spilling
		{parts: 3, budget: 0},
		{parts: 3, budget: 256},
	}

	var first map[string]string
	for _, c := range configs {
		label := fmt.Sprintf("parts=%d/budget=%d", c.parts, c.budget)
		cfg := Config{
			NumPartitions: c.parts, MaxIterations: 300, Epsilon: 1e-10,
			ShuffleMemoryBudget: c.budget, Checkpoint: true,
		}
		feed := func(eng *mr.Engine) {
			t.Helper()
			if err := eng.FS().WriteAllPairs("g0", initialPairs); err != nil {
				t.Fatal(err)
			}
			if err := eng.FS().WriteAllDeltas("d1", deltas1); err != nil {
				t.Fatal(err)
			}
			if err := eng.FS().WriteAllDeltas("d2", deltas2); err != nil {
				t.Fatal(err)
			}
		}

		// Uninterrupted baseline: initial + d1 + d2 in one process.
		baseEng := engineAt(t, t.TempDir(), 3)
		feed(baseEng)
		base, err := NewRunner(baseEng, pageRankSpec("pr-resume"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := base.RunInitial("g0"); err != nil {
			t.Fatalf("%s: baseline initial: %v", label, err)
		}
		if _, err := base.RunIncremental("d1"); err != nil {
			t.Fatalf("%s: baseline d1: %v", label, err)
		}
		if _, err := base.RunIncremental("d2"); err != nil {
			t.Fatalf("%s: baseline d2: %v", label, err)
		}
		want := base.State()
		base.Close()

		// Killed run: initial + d1, process death, Open, d2.
		root := t.TempDir()
		eng1 := engineAt(t, root, 3)
		feed(eng1)
		r1, err := NewRunner(eng1, pageRankSpec("pr-resume"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r1.RunInitial("g0"); err != nil {
			t.Fatalf("%s: initial: %v", label, err)
		}
		if _, err := r1.RunIncremental("d1"); err != nil {
			t.Fatalf("%s: d1: %v", label, err)
		}
		r1.Close() // "kill": everything durable was already flushed at the job boundary

		eng2 := engineAt(t, root, 3)
		feed(eng2)
		r2, err := Open(eng2, pageRankSpec("pr-resume"), cfg)
		if err != nil {
			t.Fatalf("%s: Open after restart: %v", label, err)
		}
		res, err := r2.RunIncremental("d2")
		if err != nil {
			t.Fatalf("%s: d2 after restart: %v", label, err)
		}
		if !res.Converged {
			t.Fatalf("%s: resumed refresh did not converge", label)
		}
		got := r2.State()
		assertStatesIdentical(t, got, want, label+": resumed vs uninterrupted")
		if first == nil {
			first = want
		} else {
			assertStatesIdentical(t, want, first, label+": vs first configuration")
		}
		// Sanity anchor: the resumed fixed point matches a from-scratch
		// iterMR convergence on the final graph (within tolerance).
		if err := eng2.FS().WriteAllPairs("gfinal", finalPairs); err != nil {
			t.Fatal(err)
		}
		ref := converge(t, eng2, "pr-resume-ref", "gfinal", c.parts)
		assertStatesClose(t, got, ref, 1e-6, label+": vs reference")
		r2.Close()
	}
}

// TestRestoreBeforeInitialErrors guards the RestoreCheckpoint
// lifecycle: before RunInitial there is no checkpoint to restore, and
// the call must error rather than touch unallocated state.
func TestRestoreBeforeInitialErrors(t *testing.T) {
	eng := engineAt(t, t.TempDir(), 1)
	r, err := NewRunner(eng, pageRankSpec("pr-early"), Config{NumPartitions: 1, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.RestoreCheckpoint(); err == nil {
		t.Fatal("RestoreCheckpoint before RunInitial succeeded")
	}
}

// TestOpenRefusesHalfAppliedRefresh kills a refresh between iterations
// (a permanently failing reduce task in iteration 2) and verifies the
// surviving refresh.intent marker makes Open refuse the state.
func TestOpenRefusesHalfAppliedRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	adj := randomGraph(rng, 50, 3)
	root := t.TempDir()
	eng := engineAt(t, root, 2)
	writeGraph(t, eng, "g0", adj)

	cfg := Config{NumPartitions: 2, MaxIterations: 300, Epsilon: 1e-10, Checkpoint: true}
	r, err := NewRunner(eng, pageRankSpec("pr-half"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}
	deltas := mutateGraph(rng, adj, 0.2)
	if err := eng.FS().WriteAllDeltas("d", deltas); err != nil {
		t.Fatal(err)
	}
	// Exhaust every attempt of an iteration-2 reduce task: the refresh
	// dies after iteration 1's durable mutations, between iterations.
	for attempt := 1; attempt <= 4; attempt++ {
		eng.Cluster().InjectFailure(cluster.Failure{
			Task: "pr-half/j2-it002/reduce-0000", Attempt: attempt, Delay: time.Millisecond,
		})
	}
	if _, err := r.RunIncremental("d"); err == nil {
		t.Fatal("RunIncremental survived a permanently failing reduce task")
	}
	// The same runner is latched: an in-place retry would re-apply the
	// structure delta and re-merge edges into half-mutated stores.
	if _, err := r.RunIncremental("d"); err == nil {
		t.Fatal("RunIncremental retried in place on half-applied state")
	} else if !strings.Contains(err.Error(), "half-applied") {
		t.Fatalf("retry error does not name the half-applied state: %v", err)
	}
	r.Close()

	eng2 := engineAt(t, root, 2)
	if _, err := Open(eng2, pageRankSpec("pr-half"), cfg); err == nil {
		t.Fatal("Open resumed a half-applied refresh")
	} else if !strings.Contains(err.Error(), "half-applied") {
		t.Fatalf("Open error does not name the half-applied refresh: %v", err)
	}
}

// TestOpenClearsMarkerOfCompletedRefresh covers the benign crash
// window: the refresh stamped its job meta but died before unlinking
// refresh.intent. The marker's job number equals the meta's jobs count,
// so Open clears it and resumes instead of refusing consistent state —
// while a marker from an unfinished refresh still refuses.
func TestOpenClearsMarkerOfCompletedRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	adj := randomGraph(rng, 40, 3)
	root := t.TempDir()
	eng := engineAt(t, root, 2)
	writeGraph(t, eng, "g0", adj)

	cfg := Config{NumPartitions: 2, MaxIterations: 300, Epsilon: 1e-10}
	r, err := NewRunner(eng, pageRankSpec("pr-window"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	deltas := mutateGraph(rng, adj, 0.1)
	if err := eng.FS().WriteAllDeltas("d1", deltas); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunIncremental("d1"); err != nil {
		t.Fatal(err)
	}
	intent := r.refreshIntentPath()
	want := r.State()
	r.Close()

	// A marker from an unfinished refresh (job ahead of the stamped
	// meta) refuses.
	if err := os.WriteFile(intent, []byte("job=3\niteration=4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(engineAt(t, root, 2), pageRankSpec("pr-window"), cfg); err == nil {
		t.Fatal("Open resumed past an unfinished refresh's marker")
	}
	// The crash-after-completion marker (job == meta jobs, here 2:
	// initial + d1) is cleared and the computation resumes.
	if err := os.WriteFile(intent, []byte("job=2\niteration=9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(engineAt(t, root, 2), pageRankSpec("pr-window"), cfg)
	if err != nil {
		t.Fatalf("Open refused the completed refresh's leftover marker: %v", err)
	}
	defer r2.Close()
	if _, err := os.Stat(intent); !os.IsNotExist(err) {
		t.Fatalf("leftover marker not cleared (err=%v)", err)
	}
	assertStatesIdentical(t, r2.State(), want, "state after clearing completed-refresh marker")
}

// TestStalePartialInitialIsDiscarded kills an initial run mid-preserve
// (after one partition durably checkpointed MRBGraph chunks) and checks
// that Open refuses the partial state while a retried RunInitial resets
// it and converges to the correct fixed point without phantom chunks.
func TestStalePartialInitialIsDiscarded(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	adj := randomGraph(rng, 40, 3)
	root := t.TempDir()
	eng := engineAt(t, root, 2)
	writeGraph(t, eng, "g0", adj)

	cfg := Config{NumPartitions: 2, MaxIterations: 300, Epsilon: 1e-10}
	r, err := NewRunner(eng, pageRankSpec("pr-stale"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 4; attempt++ {
		eng.Cluster().InjectFailure(cluster.Failure{
			Task: "pr-stale/j1-preserve/store-0001", Attempt: attempt, Delay: time.Millisecond,
		})
	}
	if _, err := r.RunInitial("g0"); err == nil {
		t.Fatal("RunInitial survived a permanently failing preserve task")
	}
	r.Close()

	eng2 := engineAt(t, root, 2)
	writeGraph(t, eng2, "g0", adj)
	if _, err := Open(eng2, pageRankSpec("pr-stale"), cfg); err == nil {
		t.Fatal("Open attached to a partial initial run (no job meta)")
	}
	r2, err := NewRunner(eng2, pageRankSpec("pr-stale"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	res, err := r2.RunInitial("g0")
	if err != nil {
		t.Fatalf("retried RunInitial after partial run: %v", err)
	}
	if !res.Converged {
		t.Fatal("retried initial run did not converge")
	}
	total := 0
	for _, s := range r2.Stores() {
		total += s.Len()
		if err := s.VerifyInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if total != len(adj) {
		t.Fatalf("preserved %d chunks after reset+retry, want %d (stale chunks must not survive)", total, len(adj))
	}
	want := converge(t, eng2, "pr-stale-ref", "g0", 2)
	assertStatesClose(t, r2.State(), want, 1e-8, "after reset+retry")
}

// TestOpenValidatesTopology covers the refusal matrix: missing job
// meta, partition-count mismatch, and MRBGraph-mode mismatch.
func TestOpenValidatesTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	adj := randomGraph(rng, 30, 3)
	root := t.TempDir()
	eng := engineAt(t, root, 2)
	writeGraph(t, eng, "g0", adj)

	cfg := Config{NumPartitions: 3, MaxIterations: 300, Epsilon: 1e-10}
	r, err := NewRunner(eng, pageRankSpec("pr-topo"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}
	r.Close()

	if _, err := Open(engineAt(t, t.TempDir(), 2), pageRankSpec("pr-topo"), cfg); err == nil {
		t.Fatal("Open succeeded with no preserved state")
	}
	wrongParts := cfg
	wrongParts.NumPartitions = 2
	if _, err := Open(engineAt(t, root, 2), pageRankSpec("pr-topo"), wrongParts); err == nil {
		t.Fatal("Open succeeded with a mismatched partition count")
	} else if !strings.Contains(err.Error(), "partitions") {
		t.Fatalf("partition-mismatch error does not say so: %v", err)
	}
	wrongMRBG := cfg
	wrongMRBG.DisableMRBG = true
	if _, err := Open(engineAt(t, root, 2), pageRankSpec("pr-topo"), wrongMRBG); err == nil {
		t.Fatal("Open succeeded with a mismatched MRBGraph mode")
	}
	// The matching topology still opens after all the refusals.
	r2, err := Open(engineAt(t, root, 2), pageRankSpec("pr-topo"), cfg)
	if err != nil {
		t.Fatalf("Open with the original topology: %v", err)
	}
	r2.Close()

	// A lost core-mrbg tree (partial copy of the work dir) must refuse
	// rather than resume against freshly created empty stores.
	matches, err := filepath.Glob(filepath.Join(root, "scratch", "node-*", "core-mrbg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("locating core-mrbg dirs: %v (found %d)", err, len(matches))
	}
	for _, m := range matches {
		if err := os.RemoveAll(m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(engineAt(t, root, 2), pageRankSpec("pr-topo"), cfg); err == nil {
		t.Fatal("Open resumed with the preserved MRBGraph missing")
	} else if !strings.Contains(err.Error(), "MRBGraph") {
		t.Fatalf("missing-MRBGraph error does not say so: %v", err)
	}
}

// TestCheckpointFlushesOnlyDirtyPartitions asserts the headline of the
// manifest-based checkpoint path: with per-iteration checkpointing on,
// a small delta flushes far fewer partition-store snapshots (and far
// fewer state entries) than the full rewrite the engine used to do.
func TestCheckpointFlushesOnlyDirtyPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	adj := randomGraph(rng, 200, 3)
	eng := engineAt(t, t.TempDir(), 4)
	writeGraph(t, eng, "g0", adj)

	// Epsilon damps the single-vertex change after a few hops, so most
	// partitions stay clean in most iterations.
	r, err := NewRunner(eng, pageRankSpec("pr-dirty"), Config{
		NumPartitions: 4, MaxIterations: 100, Epsilon: 0.01, Checkpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}
	deltas := mutateGraph(rng, adj, 0.001) // a single vertex
	if err := eng.FS().WriteAllDeltas("d", deltas); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunIncremental("d")
	if err != nil {
		t.Fatal(err)
	}
	if res.MRBGDisabledAt != 0 {
		t.Fatalf("P_delta fallback triggered unexpectedly at iteration %d", res.MRBGDisabledAt)
	}
	checkpoints := int64(res.Iterations + 1) // per iteration + the completion flush
	dirty := res.Report.Counter(metrics.CounterStateDirtyPartitions)
	flushed := res.Report.Counter(metrics.CounterStateGroupsFlushed)
	if dirty == 0 || flushed == 0 {
		t.Fatalf("no dirty flush recorded (dirty=%d flushed=%d); the refresh did change state", dirty, flushed)
	}
	if full := checkpoints * 4; dirty >= full {
		t.Fatalf("checkpoints flushed %d partition snapshots across %d checkpoints on 4 partitions (>= the full-rewrite %d); dirty tracking is not selective", dirty, checkpoints, full)
	}
	if total := checkpoints * int64(len(adj)); flushed >= total {
		t.Fatalf("checkpoints flushed %d state entries (>= full-rewrite %d)", flushed, total)
	}
	if res.Report.Counter(metrics.CounterStateSegments) == 0 {
		t.Fatal("no state-store segments reported after a checkpointed refresh")
	}
}

// TestOpenResumesReplicatedState exercises the Open path for
// ReplicateState specs (the Kmeans shape): the replicated global state
// recovers from the durable global store and a resumed refresh matches
// an uninterrupted one byte for byte.
func TestOpenResumesReplicatedState(t *testing.T) {
	spec := Spec{
		Name: "resume-km",
		Map: func(sk, sv, dk, dv string, emit iter.Emit) error {
			x, err := strconv.ParseFloat(sv, 64)
			if err != nil {
				return err
			}
			best, bestD := 0, math.Inf(1)
			for i, c := range strings.Split(dv, ",") {
				cf, _ := strconv.ParseFloat(c, 64)
				if d := math.Abs(x - cf); d < bestD {
					best, bestD = i, d
				}
			}
			emit(strconv.Itoa(best), sv)
			return nil
		},
		Reduce: func(k2 string, values []string, state iter.StateGetter, emit iter.Emit) error {
			var sum float64
			for _, v := range values {
				f, _ := strconv.ParseFloat(v, 64)
				sum += f
			}
			emit(k2, strconv.FormatFloat(sum/float64(len(values)), 'g', 17, 64))
			return nil
		},
		Difference: func(prev, cur string) float64 {
			pa, pb := strings.Split(prev, ","), strings.Split(cur, ",")
			max := 0.0
			for i := range pa {
				if i >= len(pb) {
					break
				}
				a, _ := strconv.ParseFloat(pa[i], 64)
				b, _ := strconv.ParseFloat(pb[i], 64)
				if d := math.Abs(a - b); d > max {
					max = d
				}
			}
			return max
		},
		ReplicateState: true,
		AssembleState: func(prev map[string]string, outs []kv.Pair) map[string]string {
			cs := strings.Split(prev["c"], ",")
			for _, o := range outs {
				i, _ := strconv.Atoi(o.Key)
				if i >= 0 && i < len(cs) {
					cs[i] = o.Value
				}
			}
			return map[string]string{"c": strings.Join(cs, ",")}
		},
	}
	var points []kv.Pair
	rng := rand.New(rand.NewSource(46))
	for i := 0; i < 100; i++ {
		base := 0.0
		if i%2 == 1 {
			base = 100
		}
		points = append(points, kv.Pair{
			Key:   fmt.Sprintf("p%04d", i),
			Value: strconv.FormatFloat(base+rng.Float64()*5, 'g', 17, 64),
		})
	}
	var d1, d2 []kv.Delta
	for i := 0; i < 10; i++ {
		d1 = append(d1, kv.Delta{Key: fmt.Sprintf("x%04d", i),
			Value: strconv.FormatFloat(rng.Float64()*5, 'g', 17, 64), Op: kv.OpInsert})
		d2 = append(d2, kv.Delta{Key: fmt.Sprintf("y%04d", i),
			Value: strconv.FormatFloat(100+rng.Float64()*5, 'g', 17, 64), Op: kv.OpInsert})
	}
	cfg := Config{
		NumPartitions: 2, MaxIterations: 60, Epsilon: 1e-9,
		InitialState: map[string]string{"c": "10,60"},
	}
	feed := func(eng *mr.Engine) {
		t.Helper()
		if err := eng.FS().WriteAllPairs("pts", points); err != nil {
			t.Fatal(err)
		}
		if err := eng.FS().WriteAllDeltas("d1", d1); err != nil {
			t.Fatal(err)
		}
		if err := eng.FS().WriteAllDeltas("d2", d2); err != nil {
			t.Fatal(err)
		}
	}

	baseEng := engineAt(t, t.TempDir(), 2)
	feed(baseEng)
	base, err := NewRunner(baseEng, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.RunInitial("pts"); err != nil {
		t.Fatal(err)
	}
	if _, err := base.RunIncremental("d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := base.RunIncremental("d2"); err != nil {
		t.Fatal(err)
	}
	want := base.State()
	base.Close()

	root := t.TempDir()
	eng1 := engineAt(t, root, 2)
	feed(eng1)
	r1, err := NewRunner(eng1, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.RunInitial("pts"); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.RunIncremental("d1"); err != nil {
		t.Fatal(err)
	}
	r1.Close()

	eng2 := engineAt(t, root, 2)
	feed(eng2)
	r2, err := Open(eng2, spec, cfg)
	if err != nil {
		t.Fatalf("Open replicated-state computation: %v", err)
	}
	defer r2.Close()
	if _, err := r2.RunIncremental("d2"); err != nil {
		t.Fatal(err)
	}
	assertStatesIdentical(t, r2.State(), want, "replicated resume vs uninterrupted")
}
