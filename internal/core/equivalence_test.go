package core

// Engine-equivalence tests for the shared streaming shuffle runtime
// (internal/shuffle): the iter and core engines must produce
// byte-identical final state at any partition count and any shuffle
// memory budget — including budgets small enough to force spilling —
// because the runtime's (key, value)-ordered merge makes reduce groups
// independent of run boundaries.

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
)

// spillRuns sums the spill counter over per-iteration stats.
func spillRuns(stats []IterStats) int64 {
	var n int64
	for _, s := range stats {
		n += s.Stages.Counters[metrics.CounterSpillRuns]
	}
	return n
}

func iterSpillRuns(stats []iter.IterationStats) int64 {
	var n int64
	for _, s := range stats {
		n += s.Stages.Counters[metrics.CounterSpillRuns]
	}
	return n
}

func assertStatesIdentical(t *testing.T, got, want map[string]string, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d state keys, want %d", label, len(got), len(want))
	}
	for k, wv := range want {
		if gv, ok := got[k]; !ok || gv != wv {
			t.Fatalf("%s: state[%q] = %q, want %q (engines must agree byte-for-byte)", label, k, gv, wv)
		}
	}
}

// TestIterCoreEquivalenceAcrossPartitionsAndBudgets is the acceptance
// test of the shuffle refactor: both engines run the same PageRank on
// the shared runtime, across partition counts, with spilling disabled
// (large/no budget) and with a budget small enough to force spills, and
// every configuration must converge to the identical final state.
func TestIterCoreEquivalenceAcrossPartitionsAndBudgets(t *testing.T) {
	adj := randomGraph(rand.New(rand.NewSource(7)), 60, 4)

	type run struct {
		parts  int
		budget int64
	}
	runs := []run{
		{parts: 1, budget: 0},       // single partition, in memory
		{parts: 3, budget: 0},       // multi-partition, in memory
		{parts: 3, budget: 1 << 20}, // budget present but roomy: no spills
		{parts: 3, budget: 256},     // tiny: every map task spills repeatedly
		{parts: 4, budget: 256},
	}

	var want map[string]string
	for _, rn := range runs {
		label := fmt.Sprintf("parts=%d/budget=%d", rn.parts, rn.budget)

		// iterMR on the shared runtime.
		eng := newEngine(t, 3)
		writeGraph(t, eng, "g", adj)
		ir, err := iter.NewRunner(eng, pageRankSpec("equiv-iter"), iter.Config{
			NumPartitions: rn.parts, MaxIterations: 100, Epsilon: 1e-10,
			ShuffleMemoryBudget: rn.budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ir.LoadStructure("g"); err != nil {
			t.Fatal(err)
		}
		ires, err := ir.Run()
		if err != nil {
			t.Fatalf("%s: iter: %v", label, err)
		}
		if !ires.Converged {
			t.Fatalf("%s: iter did not converge", label)
		}

		// core's full-pass loop on the shared runtime.
		ceng := newEngine(t, 3)
		writeGraph(t, ceng, "g", adj)
		cr, err := NewRunner(ceng, pageRankSpec("equiv-core"), Config{
			NumPartitions: rn.parts, MaxIterations: 100, Epsilon: 1e-10,
			ShuffleMemoryBudget: rn.budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cr.Close()
		cres, err := cr.RunInitial("g")
		if err != nil {
			t.Fatalf("%s: core: %v", label, err)
		}
		if !cres.Converged {
			t.Fatalf("%s: core did not converge", label)
		}

		assertStatesIdentical(t, cr.State(), ir.State(), label+": core vs iter")
		if want == nil {
			want = ir.State()
		} else {
			// Every configuration agrees with every other one.
			assertStatesIdentical(t, ir.State(), want, label+": vs first configuration")
		}
		if ires.Iterations != cres.Iterations {
			t.Fatalf("%s: iter took %d iterations, core %d", label, ires.Iterations, cres.Iterations)
		}

		iSpills, cSpills := iterSpillRuns(ires.PerIter), spillRuns(cres.PerIter)
		if rn.budget == 256 {
			if iSpills == 0 {
				t.Fatalf("%s: iter spilled no runs under a tiny budget", label)
			}
			if cSpills == 0 {
				t.Fatalf("%s: core spilled no runs under a tiny budget", label)
			}
		} else {
			if iSpills != 0 || cSpills != 0 {
				t.Fatalf("%s: unexpected spills (iter=%d core=%d)", label, iSpills, cSpills)
			}
		}
	}
}

// TestReplicateStateEquivalenceWithSpilling runs the all-to-one path
// (Kmeans-shaped: replicated state, AssembleState) on both engines with
// and without forced spilling.
func TestReplicateStateEquivalenceWithSpilling(t *testing.T) {
	spec := Spec{
		Name: "equiv-km",
		Map: func(sk, sv, dk, dv string, emit iter.Emit) error {
			x, err := strconv.ParseFloat(sv, 64)
			if err != nil {
				return err
			}
			best, bestD := 0, math.Inf(1)
			for i, c := range strings.Split(dv, ",") {
				cf, _ := strconv.ParseFloat(c, 64)
				if d := math.Abs(x - cf); d < bestD {
					best, bestD = i, d
				}
			}
			emit(strconv.Itoa(best), sv)
			return nil
		},
		Reduce: func(k2 string, values []string, state iter.StateGetter, emit iter.Emit) error {
			var sum float64
			for _, v := range values {
				f, _ := strconv.ParseFloat(v, 64)
				sum += f
			}
			emit(k2, strconv.FormatFloat(sum/float64(len(values)), 'g', 17, 64))
			return nil
		},
		Difference: func(prev, cur string) float64 {
			pa, pb := strings.Split(prev, ","), strings.Split(cur, ",")
			max := 0.0
			for i := range pa {
				if i >= len(pb) {
					break
				}
				a, _ := strconv.ParseFloat(pa[i], 64)
				b, _ := strconv.ParseFloat(pb[i], 64)
				if d := math.Abs(a - b); d > max {
					max = d
				}
			}
			return max
		},
		ReplicateState: true,
		AssembleState: func(prev map[string]string, outs []kv.Pair) map[string]string {
			cs := strings.Split(prev["c"], ",")
			for _, o := range outs {
				i, _ := strconv.Atoi(o.Key)
				if i >= 0 && i < len(cs) {
					cs[i] = o.Value
				}
			}
			return map[string]string{"c": strings.Join(cs, ",")}
		},
	}
	var points []kv.Pair
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 120; i++ {
		base := 0.0
		if i%2 == 1 {
			base = 100
		}
		points = append(points, kv.Pair{
			Key:   fmt.Sprintf("p%04d", i),
			Value: strconv.FormatFloat(base+rng.Float64()*5, 'g', 17, 64),
		})
	}
	init := map[string]string{"c": "10,60"}

	var want map[string]string
	for _, budget := range []int64{0, 128} {
		label := fmt.Sprintf("budget=%d", budget)
		eng := newEngine(t, 2)
		if err := eng.FS().WriteAllPairs("pts", points); err != nil {
			t.Fatal(err)
		}
		ir, err := iter.NewRunner(eng, spec, iter.Config{
			NumPartitions: 2, MaxIterations: 40, Epsilon: 1e-9,
			InitialState: init, ShuffleMemoryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ir.LoadStructure("pts"); err != nil {
			t.Fatal(err)
		}
		ires, err := ir.Run()
		if err != nil {
			t.Fatalf("%s: iter: %v", label, err)
		}
		if !ires.Converged {
			t.Fatalf("%s: iter did not converge", label)
		}

		ceng := newEngine(t, 2)
		if err := ceng.FS().WriteAllPairs("pts", points); err != nil {
			t.Fatal(err)
		}
		cr, err := NewRunner(ceng, spec, Config{
			NumPartitions: 2, MaxIterations: 40, Epsilon: 1e-9,
			InitialState: init, ShuffleMemoryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cr.Close()
		if _, err := cr.RunInitial("pts"); err != nil {
			t.Fatalf("%s: core: %v", label, err)
		}

		assertStatesIdentical(t, cr.State(), ir.State(), label+": core vs iter")
		if want == nil {
			want = ir.State()
		} else {
			assertStatesIdentical(t, ir.State(), want, label+": vs in-memory run")
		}
		if budget > 0 && iterSpillRuns(ires.PerIter) == 0 {
			t.Fatalf("%s: no spills under a tiny budget", label)
		}
	}
}

// TestIncrementalRefreshUnaffectedByBudget runs the full i2MapReduce
// lifecycle (initial + incremental delta) at both budgets and checks
// the refreshed states agree: the budget must change memory behaviour,
// never results.
func TestIncrementalRefreshUnaffectedByBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	adj := randomGraph(rng, 50, 4)

	var want map[string]string
	for _, budget := range []int64{0, 256} {
		label := fmt.Sprintf("budget=%d", budget)
		eng := newEngine(t, 3)
		writeGraph(t, eng, "g0", adj)
		var deltas []kv.Delta
		// Rewire a few vertices: delete the old record, insert a new one.
		for i := 0; i < 5; i++ {
			v := fmt.Sprintf("v%03d", i*7)
			old := strings.Join(adj[v], " ")
			deltas = append(deltas, kv.Delta{Key: v, Value: old, Op: kv.OpDelete})
			deltas = append(deltas, kv.Delta{Key: v, Value: fmt.Sprintf("v%03d", (i*7+1)%50), Op: kv.OpInsert})
		}
		if err := eng.FS().WriteAllDeltas("d", deltas); err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(eng, pageRankSpec("equiv-inc"), Config{
			NumPartitions: 3, MaxIterations: 100, Epsilon: 1e-10,
			ShuffleMemoryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if _, err := r.RunInitial("g0"); err != nil {
			t.Fatalf("%s: initial: %v", label, err)
		}
		if _, err := r.RunIncremental("d"); err != nil {
			t.Fatalf("%s: incremental: %v", label, err)
		}
		if want == nil {
			want = r.State()
		} else {
			assertStatesIdentical(t, r.State(), want, label)
		}
	}
}
