package core

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mrbg"
)

// RunIncremental executes job A_i: refresh the computation from a
// delta structure input (a DFS delta file of <SK, SV, '+'/'-'>
// records), starting from the previous job's converged state
// (Sec. 5.1).
//
// Iteration 1's delta input is the delta structure data; from iteration
// 2 on, the delta input is the delta state data — the kv-pairs whose
// change exceeded the propagation threshold. Each iteration runs as an
// incremental one-step job against the preserved MRBGraph. When the
// changed fraction P_delta exceeds Config.PDeltaThreshold, MRBGraph
// maintenance turns off and the job falls back to full iterative
// passes from the current state (Sec. 5.2).
func (r *Runner) RunIncremental(deltaInput string) (*Result, error) {
	return r.runRefresh(deltaInput, r.runIncrementalBody)
}

// RunIncrementalFull is the planner's recompute arm: it applies the
// structure delta and then recomputes the fixed point with full
// iterative passes, ignoring the preserved MRBGraph while running but
// re-syncing it afterwards (preserve pass + CPC baseline reset) so
// later RunIncremental refreshes can use it again. Same crash bracket
// and durability as RunIncremental.
func (r *Runner) RunIncrementalFull(deltaInput string) (*Result, error) {
	return r.runRefresh(deltaInput, r.runFullRefreshBody)
}

// runRefresh is the shared refresh prologue + intent bracket around one
// of the two refresh bodies.
func (r *Runner) runRefresh(deltaInput string, body func([]kv.Delta, *Result) error) (*Result, error) {
	if !r.initialDone {
		return nil, errors.New("core: RunIncremental before RunInitial")
	}
	if r.refreshFailed {
		return nil, fmt.Errorf("core: a previous refresh of %q failed mid-way, leaving this runner's state half-applied; it cannot be retried in place — recover in a fresh process (Open refuses the surviving refresh marker)", r.spec.Name)
	}
	r.jobStart = time.Now()
	r.events = nil
	r.jobSeq++
	_, r.compactBase = r.stateStoreStats()

	// Refresh barrier: background compaction must not compete with the
	// refresh's own I/O. Pause waits out any in-flight merge; triggers
	// that fire during the refresh stay queued until Resume.
	r.sched.Pause()
	defer r.sched.Resume()

	deltas, err := r.eng.FS().ReadAllDeltas(deltaInput)
	if err != nil {
		return nil, fmt.Errorf("core: delta input: %w", err)
	}

	res := &Result{Report: &metrics.Report{}}
	res.Report.Add(metrics.CounterDeltaRecords, int64(len(deltas)))

	// The refresh-intent bracket: the marker is durably written before
	// the first mutation of the preserved state (structure files, state
	// stores, MRBG-Stores) and removed only after the completion flush
	// below. A crash anywhere in between leaves stores at inconsistent
	// iterations, and Open refuses to resume while the marker survives.
	if err := r.markRefreshIntent(0); err != nil {
		return nil, err
	}
	// Any failure past the marker leaves the preserved state half-
	// mutated (the structure delta is not re-appliable, merged MRBG
	// edges are not re-mergeable), so the runner is latched: further
	// refreshes on it are refused, exactly as Open refuses the
	// surviving marker after a process death.
	if err := r.runRefreshBracketed(body, deltas, res); err != nil {
		r.refreshFailed = true
		return nil, err
	}
	r.finishResult(res)
	return res, nil
}

// runRefreshBracketed is everything between writing and clearing the
// refresh-intent marker.
func (r *Runner) runRefreshBracketed(body func([]kv.Delta, *Result) error, deltas []kv.Delta, res *Result) error {
	if err := body(deltas, res); err != nil {
		return err
	}
	if err := r.checkpoint(res.Report); err != nil {
		return err
	}
	if err := r.writeJobMeta(); err != nil {
		return err
	}
	return r.clearRefreshIntent()
}

// runIncrementalBody executes the refresh's iterations inside the
// intent bracket RunIncremental maintains.
func (r *Runner) runIncrementalBody(deltas []kv.Delta, res *Result) error {
	// Replicated-state or MRBG-off computations process the delta by
	// re-running full iterations from the converged state (the paper's
	// Kmeans path: "it is better to only use iterative processing
	// engine without using MRBGraph").
	if !r.mrbgOn {
		if err := r.applyStructureDelta(deltas); err != nil {
			return err
		}
		return r.runFullLoop(res, 1)
	}

	// Iteration 1: incremental Map over the delta structure data
	// produces the delta MRBGraph (insertions for '+', deletion markers
	// for '-'), exactly Fig. 3's flow.
	deltaEdges, err := r.mapStructureDelta(deltas, res.Report)
	if err != nil {
		return err
	}
	if err := r.applyStructureDelta(deltas); err != nil {
		return err
	}

	for it := 1; it <= r.cfg.MaxIterations; it++ {
		// With per-iteration checkpointing on, refresh the marker so a
		// refusal after a crash can say which iteration died; without
		// it the single bracket write at RunIncremental start already
		// provides the crash-safety and the rewrite would be a pure
		// extra fsync in the hot loop.
		if r.cfg.Checkpoint {
			if err := r.markRefreshIntent(it); err != nil {
				return err
			}
		}
		stats, props, err := r.runIncrementalIteration(it, deltaEdges)
		if err != nil {
			return err
		}
		stats.MRBGOn = true
		res.PerIter = append(res.PerIter, stats)
		res.Iterations = it

		if r.cfg.Checkpoint {
			if err := r.checkpoint(res.Report); err != nil {
				return err
			}
		}

		total := r.StateKeyCount()
		if total > 0 && float64(stats.Propagated)/float64(total) > r.cfg.PDeltaThreshold {
			// P_delta exceeded: MRBGraph maintenance is costing more
			// than it saves. Turn it off and finish with full passes.
			r.mrbgOn = false
			res.MRBGDisabledAt = it
			res.Report.Add(metrics.CounterMRBGDisabled, 1)
			if err := r.runFullLoop(res, it+1); err != nil {
				return err
			}
			// Re-sync the preserved MRBGraph with the new fixed point
			// so the next incremental job can use it again.
			r.mrbgOn = true
			if err := r.preservePass(); err != nil {
				return err
			}
			r.resetLastEmitted()
			break
		}

		if stats.Propagated == 0 {
			res.Converged = true
			break
		}
		// Iterations >= 2: the delta input is the delta state data.
		deltaEdges, err = r.mapStateDelta(props, res.Report)
		if err != nil {
			return err
		}
	}
	if len(res.PerIter) > 0 && res.PerIter[len(res.PerIter)-1].Propagated == 0 {
		res.Converged = true
	}
	return nil
}

// runFullRefreshBody is RunIncrementalFull's body: delta-merge the
// preserved MRBGraph for its deletion semantics (vanished K2s drop
// their chunks and state) without re-reducing anything, then recompute
// the fixed point with full passes and re-sync the graph.
func (r *Runner) runFullRefreshBody(deltas []kv.Delta, res *Result) error {
	if !r.mrbgOn {
		// MRBG-off runners recompute exactly as their RunIncremental
		// does; there is no preserved graph to maintain.
		if err := r.applyStructureDelta(deltas); err != nil {
			return err
		}
		return r.runFullLoop(res, 1)
	}
	deltaEdges, err := r.mapStructureDelta(deltas, res.Report)
	if err != nil {
		return err
	}
	if err := r.applyStructureDelta(deltas); err != nil {
		return err
	}
	if err := r.mergeDeltaEdges(deltaEdges); err != nil {
		return err
	}
	r.mrbgOn = false
	err = r.runFullLoop(res, 1)
	r.mrbgOn = true
	if err != nil {
		return err
	}
	if err := r.preservePass(); err != nil {
		return err
	}
	r.resetLastEmitted()
	return nil
}

// mergeDeltaEdges folds a delta MRBGraph into the stores for its
// structural effects only: deleted edges cancel, and a K2 whose chunk
// empties is removed along with its state and CPC baseline. No reduce
// runs — the full passes that follow recompute every value anyway.
func (r *Runner) mergeDeltaEdges(deltaEdges [][]mrbg.DeltaEdge) error {
	tasks := make([]cluster.Task, 0, r.n)
	for p := 0; p < r.n; p++ {
		p := p
		if len(deltaEdges[p]) == 0 {
			continue
		}
		slices.SortStableFunc(deltaEdges[p], func(a, b mrbg.DeltaEdge) int { return strings.Compare(a.Key, b.Key) })
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s/j%d-fullmerge-%04d", sanitize(r.spec.Name), r.jobSeq, p),
			Preferred: p % r.eng.Cluster().NumNodes(),
			Run: func(tc cluster.TaskContext) error {
				return r.stores[p].Merge(deltaEdges[p], func(res mrbg.MergeResult) error {
					if res.Removed {
						r.mu.Lock()
						r.deleteStateLocked(p, res.Key)
						r.deleteLastLocked(p, res.Key)
						r.mu.Unlock()
					}
					return nil
				})
			},
		})
	}
	if err := r.runTasks(tasks); err != nil {
		return fmt.Errorf("core: full-refresh delta merge: %w", err)
	}
	return nil
}

// runFullLoop iterates full passes until convergence, appending stats.
func (r *Runner) runFullLoop(res *Result, firstIt int) error {
	for it := firstIt; it <= firstIt+r.cfg.MaxIterations-1; it++ {
		stats, err := r.runFullIteration(it)
		if err != nil {
			return err
		}
		stats.MRBGOn = false
		res.PerIter = append(res.PerIter, stats)
		res.Iterations = it
		if r.cfg.Checkpoint {
			if err := r.checkpoint(res.Report); err != nil {
				return err
			}
		}
		if stats.Propagated == 0 {
			res.Converged = true
			return nil
		}
	}
	return nil
}

// applyStructureDelta merges the delta into the cached structure
// partitions and registers state keys for newly appearing DKs.
func (r *Runner) applyStructureDelta(deltas []kv.Delta) error {
	project := r.spec.Project
	if r.spec.ReplicateState {
		project = nil
	}
	byPart := make([][]kv.Delta, r.n)
	for _, d := range deltas {
		p := r.partitionOf(d.Key)
		byPart[p] = append(byPart[p], d)
	}
	for p := 0; p < r.n; p++ {
		if len(byPart[p]) == 0 {
			continue
		}
		sp, err := r.parts[p].applyDelta(byPart[p], project)
		if err != nil {
			return err
		}
		r.parts[p] = sp
		if r.spec.ReplicateState {
			continue
		}
		r.mu.Lock()
		for dk := range sp.spans {
			if _, ok := r.state[p][dk]; !ok {
				r.setStateLocked(p, dk, r.spec.InitState(dk))
			}
		}
		r.mu.Unlock()
	}
	return nil
}

// mapStructureDelta performs the incremental Map over delta structure
// records: '+' records yield edge insertions, '-' records regenerate
// and mark their original edges deleted (Sec. 3.3 applied to iteration
// 1 of an incremental iterative job).
func (r *Runner) mapStructureDelta(deltas []kv.Delta, rep *metrics.Report) ([][]mrbg.DeltaEdge, error) {
	start := time.Now()
	byPart := make([][]kv.Delta, r.n)
	for _, d := range deltas {
		byPart[r.partitionOf(d.Key)] = append(byPart[r.partitionOf(d.Key)], d)
	}
	edges := make([][]mrbg.DeltaEdge, r.n)
	// Striped per destination, like preservePass: map tasks append into
	// every destination partition, so one mutex over all of edges would
	// serialize the tasks' merge phases against each other.
	edgeMu := make([]sync.Mutex, r.n)
	tasks := make([]cluster.Task, 0, r.n)
	for p := 0; p < r.n; p++ {
		p := p
		if len(byPart[p]) == 0 {
			continue
		}
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s/j%d-it001/deltamap-%04d", sanitize(r.spec.Name), r.jobSeq, p),
			Preferred: p % r.eng.Cluster().NumNodes(),
			Run: func(tc cluster.TaskContext) error {
				local := make([][]mrbg.DeltaEdge, r.n)
				for _, d := range byPart[p] {
					dk := r.spec.Project(d.Key)
					dv := r.stateOrInit(p, dk)
					del := d.Op == kv.OpDelete
					if err := r.mapToEdges(d.Key, d.Value, dk, dv, del, local); err != nil {
						return err
					}
				}
				for i := range local {
					if len(local[i]) == 0 {
						continue
					}
					edgeMu[i].Lock()
					edges[i] = append(edges[i], local[i]...)
					edgeMu[i].Unlock()
				}
				return nil
			},
		})
	}
	if err := r.runTasks(tasks); err != nil {
		return nil, fmt.Errorf("core: delta structure map: %w", err)
	}
	var n int64
	for _, e := range edges {
		n += int64(len(e))
	}
	rep.Add(metrics.CounterDeltaEdges, n)
	rep.AddStage(metrics.StageMap, time.Since(start))
	return edges, nil
}

// propagated carries one iteration's delta state data: the DKs (with
// their newly propagated values) that feed the next iteration's Map.
type propagated struct {
	byPart []map[string]string
	count  int
}

// mapStateDelta performs the selective incremental Map for iterations
// >= 2: only structure records whose projected state key changed are
// re-mapped, located through the span index rather than a full scan.
func (r *Runner) mapStateDelta(props *propagated, rep *metrics.Report) ([][]mrbg.DeltaEdge, error) {
	start := time.Now()
	edges := make([][]mrbg.DeltaEdge, r.n)
	edgeMu := make([]sync.Mutex, r.n)
	tasks := make([]cluster.Task, 0, r.n)
	for p := 0; p < r.n; p++ {
		p := p
		if len(props.byPart[p]) == 0 {
			continue
		}
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s/j%d-statemap-%04d", sanitize(r.spec.Name), r.jobSeq, p),
			Preferred: p % r.eng.Cluster().NumNodes(),
			Run: func(tc cluster.TaskContext) error {
				dks := make([]string, 0, len(props.byPart[p]))
				for dk := range props.byPart[p] {
					dks = append(dks, dk)
				}
				sort.Strings(dks)
				local := make([][]mrbg.DeltaEdge, r.n)
				var recs int64
				bytesRead, err := r.parts[p].readDKsSorted(dks, func(dk string, pr kv.Pair) error {
					recs++
					return r.mapToEdges(pr.Key, pr.Value, dk, props.byPart[p][dk], false, local)
				})
				if err != nil {
					return err
				}
				for i := range local {
					if len(local[i]) == 0 {
						continue
					}
					edgeMu[i].Lock()
					edges[i] = append(edges[i], local[i]...)
					edgeMu[i].Unlock()
				}
				rep.Add(metrics.CounterMapRecordsIn, recs)
				rep.Add(metrics.CounterStructureBytesRead, bytesRead)
				return nil
			},
		})
	}
	if err := r.runTasks(tasks); err != nil {
		return nil, fmt.Errorf("core: delta state map: %w", err)
	}
	rep.AddStage(metrics.StageMap, time.Since(start))
	return edges, nil
}

// runIncrementalIteration merges one delta MRBGraph into the stores and
// re-reduces affected K2s, applying change propagation control to
// decide which updated state kv-pairs feed the next iteration.
func (r *Runner) runIncrementalIteration(it int, deltaEdges [][]mrbg.DeltaEdge) (IterStats, *propagated, error) {
	start := time.Now()
	rep := &metrics.Report{}

	// Shuffle/sort accounting for the delta edges.
	sortStart := time.Now()
	var shuffleBytes int64
	for p := range deltaEdges {
		slices.SortStableFunc(deltaEdges[p], func(a, b mrbg.DeltaEdge) int { return strings.Compare(a.Key, b.Key) })
		for _, d := range deltaEdges[p] {
			shuffleBytes += int64(len(d.Key) + len(d.V2) + 9)
		}
	}
	rep.Add(metrics.CounterShuffleBytes, shuffleBytes)
	rep.AddStage(metrics.StageSort, time.Since(sortStart))

	props := &propagated{byPart: make([]map[string]string, r.n)}
	for p := range props.byPart {
		props.byPart[p] = make(map[string]string)
	}
	thr := r.threshold()
	var totalProp, totalFilt, totalRemoved int
	var mu sync.Mutex

	tasks := make([]cluster.Task, 0, r.n)
	for p := 0; p < r.n; p++ {
		p := p
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s/j%d-it%03d/reduce-%04d", sanitize(r.spec.Name), r.jobSeq, it, p),
			Preferred: p % r.eng.Cluster().NumNodes(),
			Run: func(tc cluster.TaskContext) error {
				t0 := time.Now()
				getter := r.stateGetterFor(p)
				nProp, nFilt, nRem := 0, 0, 0
				var reduced int64
				err := r.stores[p].Merge(deltaEdges[p], func(res mrbg.MergeResult) error {
					if res.Removed {
						r.mu.Lock()
						r.deleteStateLocked(p, res.Key)
						r.deleteLastLocked(p, res.Key)
						r.mu.Unlock()
						nRem++
						return nil
					}
					var newDV string
					var emitErr error
					emitted := false
					err := r.spec.Reduce(res.Key, res.Chunk.Values(), getter, func(dk, dv string) {
						switch {
						case emitted:
							emitErr = fmt.Errorf("core: reduce for %q emitted more than one state update", res.Key)
						case dk != res.Key:
							emitErr = fmt.Errorf("core: reduce for %q emitted state key %q; incremental reduce must update its own key", res.Key, dk)
						default:
							newDV, emitted = dv, true
						}
					})
					if err != nil {
						return err
					}
					if emitErr != nil {
						return emitErr
					}
					reduced++
					if !emitted {
						return nil // reduce chose not to update (e.g. SSSP no improvement)
					}
					r.mu.Lock()
					r.setStateLocked(p, res.Key, newDV)
					base, had := r.last[p][res.Key]
					var diff float64
					if had {
						diff = r.spec.Difference(base, newDV)
					}
					if !had || diff > thr {
						r.setLastLocked(p, res.Key, newDV)
						props.byPart[p][res.Key] = newDV
						nProp++
					} else {
						nFilt++
					}
					r.mu.Unlock()
					return nil
				})
				if err != nil {
					return err
				}
				rep.Add(metrics.CounterReduceInstances, reduced)
				rep.AddStage(metrics.StageReduce, time.Since(t0))
				mu.Lock()
				totalProp += nProp
				totalFilt += nFilt
				totalRemoved += nRem
				mu.Unlock()
				return nil
			},
		})
	}
	if err := r.runTasks(tasks); err != nil {
		return IterStats{}, nil, fmt.Errorf("core: incremental reduce (iteration %d): %w", it, err)
	}
	props.count = totalProp

	return IterStats{
		Iteration:  it,
		Propagated: totalProp,
		Filtered:   totalFilt,
		Removed:    totalRemoved,
		Duration:   time.Since(start),
		Stages:     rep.Snapshot(),
	}, props, nil
}
