package core

// Crash/resume coverage for the parallel durability plane: the
// per-partition checkpoint/open/recovery fan-out (Config.IOParallelism)
// and the background compaction scheduler must not change any byte of
// durable state. Every configuration below is compared against the
// serial inline-compaction baseline the pre-parallel engine ran.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/mr"
)

// TestParallelCheckpointKillAndReopenSweep is the acceptance sweep for
// the parallel durability plane: at every (partitions, IOParallelism,
// compaction-mode) configuration, a computation killed after a
// checkpointed refresh and reattached with Open must converge the next
// delta to state byte-identical to an uninterrupted serial run's. The
// compaction threshold is forced low so segments genuinely fold —
// inline under the checkpoint for the inline configs, on the scheduler
// for the background ones — before the kill.
func TestParallelCheckpointKillAndReopenSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	adj := randomGraph(rng, 60, 4)
	initialPairs := graphPairs(adj)
	deltas1 := mutateGraph(rng, adj, 0.1)
	deltas2 := mutateGraph(rng, adj, 0.1)

	feed := func(eng *mr.Engine) {
		t.Helper()
		if err := eng.FS().WriteAllPairs("g0", initialPairs); err != nil {
			t.Fatal(err)
		}
		if err := eng.FS().WriteAllDeltas("d1", deltas1); err != nil {
			t.Fatal(err)
		}
		if err := eng.FS().WriteAllDeltas("d2", deltas2); err != nil {
			t.Fatal(err)
		}
	}
	mkCfg := func(parts, ioPar int, bg bool) Config {
		return Config{
			NumPartitions: parts, MaxIterations: 300, Epsilon: 1e-10,
			Checkpoint: true, StateCompactThreshold: 2,
			IOParallelism: ioPar, BackgroundCompaction: bg,
		}
	}

	// Serial inline baseline, uninterrupted: initial + d1 + d2.
	baseEng := engineAt(t, t.TempDir(), 3)
	feed(baseEng)
	base, err := NewRunner(baseEng, pageRankSpec("pr-par"), mkCfg(3, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}
	if _, err := base.RunIncremental("d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := base.RunIncremental("d2"); err != nil {
		t.Fatal(err)
	}
	want := base.State()
	base.Close()

	for _, parts := range []int{2, 3} {
		for _, ioPar := range []int{2, 8} {
			for _, bg := range []bool{false, true} {
				label := fmt.Sprintf("parts=%d/iopar=%d/bg=%v", parts, ioPar, bg)
				cfg := mkCfg(parts, ioPar, bg)

				// Killed run: initial + d1, process death, Open, d2.
				root := t.TempDir()
				eng1 := engineAt(t, root, 3)
				feed(eng1)
				r1, err := NewRunner(eng1, pageRankSpec("pr-par"), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := r1.RunInitial("g0"); err != nil {
					t.Fatalf("%s: initial: %v", label, err)
				}
				if _, err := r1.RunIncremental("d1"); err != nil {
					t.Fatalf("%s: d1: %v", label, err)
				}
				r1.Close() // "kill": durable state was flushed at the job boundary

				eng2 := engineAt(t, root, 3)
				feed(eng2)
				r2, err := Open(eng2, pageRankSpec("pr-par"), cfg)
				if err != nil {
					t.Fatalf("%s: Open after restart: %v", label, err)
				}
				res, err := r2.RunIncremental("d2")
				if err != nil {
					t.Fatalf("%s: d2 after restart: %v", label, err)
				}
				if !res.Converged {
					t.Fatalf("%s: resumed refresh did not converge", label)
				}
				assertStatesIdentical(t, r2.State(), want, label+": resumed vs serial uninterrupted")
				r2.Close()
			}
		}
	}
}

// TestParallelRestoreCheckpoint exercises the fan-out restore path:
// with IOParallelism > 1, RestoreCheckpoint reloads every partition's
// state concurrently and must reproduce the checkpointed state exactly.
func TestParallelRestoreCheckpoint(t *testing.T) {
	eng := newEngine(t, 2)
	rng := rand.New(rand.NewSource(52))
	adj := randomGraph(rng, 30, 3)
	writeGraph(t, eng, "g0", adj)

	r, err := NewRunner(eng, pageRankSpec("pr-par-restore"), Config{
		NumPartitions: 4, MaxIterations: 100, Epsilon: 1e-9,
		Checkpoint: true, IOParallelism: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}
	saved := r.State()

	r.mu.Lock()
	for p := range r.state {
		for k := range r.state[p] {
			r.state[p][k] = "999"
		}
	}
	r.mu.Unlock()
	if err := r.RestoreCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r.State()) != fmt.Sprint(saved) {
		t.Fatal("parallel restore differs from checkpointed state")
	}
}

// TestParallelOpenRefusesHalfAppliedRefresh kills a refresh between
// iterations — after iteration 1's concurrent per-partition checkpoint
// committed — and verifies the crash-consistency bracket holds
// unchanged at IOParallelism > 1: the surviving refresh.intent marker
// makes Open refuse the half-applied state.
func TestParallelOpenRefusesHalfAppliedRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	adj := randomGraph(rng, 50, 3)
	root := t.TempDir()
	eng := engineAt(t, root, 2)
	writeGraph(t, eng, "g0", adj)

	cfg := Config{
		NumPartitions: 2, MaxIterations: 300, Epsilon: 1e-10,
		Checkpoint: true, IOParallelism: 4, BackgroundCompaction: true,
		StateCompactThreshold: 2,
	}
	r, err := NewRunner(eng, pageRankSpec("pr-par-half"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("g0"); err != nil {
		t.Fatal(err)
	}
	deltas := mutateGraph(rng, adj, 0.2)
	if err := eng.FS().WriteAllDeltas("d", deltas); err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 4; attempt++ {
		eng.Cluster().InjectFailure(cluster.Failure{
			Task: "pr-par-half/j2-it002/reduce-0000", Attempt: attempt, Delay: time.Millisecond,
		})
	}
	if _, err := r.RunIncremental("d"); err == nil {
		t.Fatal("RunIncremental survived a permanently failing reduce task")
	}
	r.Close()

	eng2 := engineAt(t, root, 2)
	if _, err := Open(eng2, pageRankSpec("pr-par-half"), cfg); err == nil {
		t.Fatal("Open resumed a half-applied refresh")
	} else if !strings.Contains(err.Error(), "half-applied") {
		t.Fatalf("Open error does not name the half-applied refresh: %v", err)
	}
}
