package core

import (
	"time"

	"i2mapreduce/internal/engine"
	"i2mapreduce/internal/metrics"
)

// The incremental-iterative engine as an engine.Refresher: Refresh is
// RunIncremental in the unified shape the planner and serving layer
// dispatch through, and FullRefresher exposes the recompute arm the
// same way.

var _ engine.Refresher = (*Runner)(nil)

// Refresh implements engine.Refresher. The runner publishes refreshed
// state through its durable state stores rather than a DFS output
// directory, so output is recorded on the result but otherwise unused.
func (r *Runner) Refresh(deltaInput, output string) (*engine.RefreshResult, error) {
	return r.refreshAs(engine.ModeIncremental, r.RunIncremental, deltaInput, output, &r.refreshStats)
}

// SetFilterThreshold adjusts the CPC filter threshold used by
// subsequent refreshes — the knob the planner tunes per refresh. Not
// safe to call concurrently with a running refresh.
func (r *Runner) SetFilterThreshold(ft float64) { r.cfg.FilterThreshold = ft }

// FilterThreshold returns the current CPC filter threshold.
func (r *Runner) FilterThreshold() float64 { return r.cfg.FilterThreshold }

// FullRefresher returns a Refresher view of the runner whose Refresh
// runs RunIncrementalFull — the planner's recompute arm, with its own
// stats tracker so planned recomputes and incremental refreshes are
// reported separately.
func (r *Runner) FullRefresher() engine.Refresher { return &fullRefresher{r: r} }

type fullRefresher struct {
	r     *Runner
	stats engine.StatsTracker
}

func (f *fullRefresher) Refresh(deltaInput, output string) (*engine.RefreshResult, error) {
	return f.r.refreshAs(engine.ModeRecompute, f.r.RunIncrementalFull, deltaInput, output, &f.stats)
}

func (f *fullRefresher) Stats() engine.Stats { return f.stats.Snapshot() }

// Stats implements engine.Refresher for the incremental arm.
func (r *Runner) Stats() engine.Stats { return r.refreshStats.Snapshot() }

// refreshAs runs one refresh entry point and shapes its Result into the
// unified RefreshResult.
func (r *Runner) refreshAs(mode string, run func(string) (*Result, error), deltaInput, output string, tracker *engine.StatsTracker) (*engine.RefreshResult, error) {
	start := time.Now()
	res, err := run(deltaInput)
	if err != nil {
		return nil, err
	}
	out := &engine.RefreshResult{
		Mode:         mode,
		Report:       res.Report,
		Wall:         time.Since(start),
		DeltaRecords: res.Report.Counter(metrics.CounterDeltaRecords),
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		Output:       output,
	}
	tracker.Observe(out)
	return out, nil
}
