package core

// Durable state layer of the incremental iterative engine.
//
// Every loop-variant quantity the engine used to hold only in memory —
// the per-partition state data, the CPC "last propagated" baselines
// (Sec. 5.3), and the replicated global state of ReplicateState specs —
// is backed by a results.KV: a per-partition durable key-value store
// built on the same memtable + sorted-segment + tombstone +
// atomic-manifest machinery as the one-step engine's result store. The
// in-memory maps remain as a write-through cache (reads never touch
// disk on the hot path); mutations additionally land in the KV
// memtable, and a checkpoint flushes only the entries that actually
// changed — the dirty groups — instead of rewriting full state files.
//
// Job boundaries are stamped by a job.meta completion marker (written
// when RunInitial finishes, refreshed after every completed refresh)
// and refreshes are bracketed by a refresh.intent marker. Open
// reattaches a Runner to this durable state after process death:
// preserved MRBG-Stores and state stores recover from their own
// manifests, the node-local structure files are re-indexed, and the
// next RunIncremental continues the computation. A surviving intent
// marker means the previous process died mid-refresh with the durable
// stores at inconsistent iterations; Open refuses such state rather
// than resuming it.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"i2mapreduce/internal/fsutil"
	"i2mapreduce/internal/mr"
	"i2mapreduce/internal/mrbg"
	"i2mapreduce/internal/par"
	"i2mapreduce/internal/results"
)

// Job meta mode strings.
const (
	modePartitioned = "partitioned"
	modeReplicated  = "replicated"
)

// nodeDir returns the scratch dir of the node hosting partition p.
func (r *Runner) nodeDir(p int) string {
	cl := r.eng.Cluster()
	return cl.NodeByID(p % cl.NumNodes()).ScratchDir
}

// stateKVDir names partition p's durable store of the given kind
// ("state" or "last"), co-located with the node that runs the
// partition's reduce tasks.
func (r *Runner) stateKVDir(p int, kind string) string {
	return filepath.Join(r.nodeDir(p), "core-state", sanitize(r.spec.Name),
		fmt.Sprintf("part-%04d", p), kind)
}

// globalKVDir names the replicated-state store (ReplicateState specs).
func (r *Runner) globalKVDir() string {
	return filepath.Join(r.nodeDir(0), "core-state", sanitize(r.spec.Name), "global")
}

// jobMetaPath names the runner-level completion marker. It lives under
// node 0's scratch dir, which exists at any cluster size.
func (r *Runner) jobMetaPath() string {
	return filepath.Join(r.nodeDir(0), "core-state", sanitize(r.spec.Name), "job.meta")
}

// refreshIntentPath names the in-progress refresh marker bracketing
// every RunIncremental (see RunIncremental's checkpoint bracket).
func (r *Runner) refreshIntentPath() string {
	return filepath.Join(r.nodeDir(0), "core-state", sanitize(r.spec.Name), "refresh.intent")
}

// storeOpts returns partition p's MRBG-Store options.
func (r *Runner) storeOpts(p int) mrbg.Options {
	opts := r.cfg.StoreOpts
	opts.Dir = filepath.Join(r.nodeDir(p), "core-mrbg", sanitize(r.spec.Name), fmt.Sprintf("part-%04d", p))
	return opts
}

// openStateStores opens (or recovers) the durable state stores,
// fanning out across partitions at Config.IOParallelism. Each opened
// store is attached to the background compaction scheduler when one is
// configured.
func (r *Runner) openStateStores() error {
	opts := results.Options{
		CompactThreshold: r.cfg.StateCompactThreshold,
		BlockBytes:       r.cfg.SegmentBlockBytes,
		Compression:      r.cfg.SegmentCompression,
		BloomBitsPerKey:  r.cfg.BloomBitsPerKey,
	}
	if r.spec.ReplicateState {
		opts.Dir = r.globalKVDir()
		g, err := results.OpenKV(opts)
		if err != nil {
			return fmt.Errorf("core: opening global state store: %w", err)
		}
		g.AttachScheduler(r.sched)
		r.globalKV = g
		return nil
	}
	r.stateKV = make([]*results.KV, r.n)
	r.lastKV = make([]*results.KV, r.n)
	return par.Do(r.n, r.ioPar, func(p int) error {
		sopts := opts
		sopts.Dir = r.stateKVDir(p, "state")
		skv, err := results.OpenKV(sopts)
		if err != nil {
			return fmt.Errorf("core: opening state store %d: %w", p, err)
		}
		skv.AttachScheduler(r.sched)
		r.stateKV[p] = skv
		lopts := opts
		lopts.Dir = r.stateKVDir(p, "last")
		lkv, err := results.OpenKV(lopts)
		if err != nil {
			return fmt.Errorf("core: opening baseline store %d: %w", p, err)
		}
		lkv.AttachScheduler(r.sched)
		r.lastKV[p] = lkv
		return nil
	})
}

// setStateLocked updates partition p's state entry in the cache and the
// durable store's memtable. Callers hold r.mu. An unchanged value is a
// no-op so clean entries never dirty a checkpoint.
func (r *Runner) setStateLocked(p int, dk, dv string) {
	if cur, ok := r.state[p][dk]; ok && cur == dv {
		return
	}
	r.state[p][dk] = dv
	r.stateKV[p].Put(dk, dv)
}

// deleteStateLocked removes partition p's state entry (tombstoned in
// the durable store). Callers hold r.mu.
func (r *Runner) deleteStateLocked(p int, dk string) {
	if _, ok := r.state[p][dk]; !ok {
		return
	}
	delete(r.state[p], dk)
	r.stateKV[p].Delete(dk)
}

// setLastLocked updates partition p's CPC baseline entry. Callers hold
// r.mu.
func (r *Runner) setLastLocked(p int, dk, dv string) {
	if cur, ok := r.last[p][dk]; ok && cur == dv {
		return
	}
	r.last[p][dk] = dv
	r.lastKV[p].Put(dk, dv)
}

// deleteLastLocked removes partition p's CPC baseline entry. Callers
// hold r.mu.
func (r *Runner) deleteLastLocked(p int, dk string) {
	if _, ok := r.last[p][dk]; !ok {
		return
	}
	delete(r.last[p], dk)
	r.lastKV[p].Delete(dk)
}

// setGlobal replaces the replicated state with next, recording the
// per-key differences in the durable global store.
func (r *Runner) setGlobal(next map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.global {
		if _, ok := next[k]; !ok {
			r.globalKV.Delete(k)
		}
	}
	for k, v := range next {
		if cur, ok := r.global[k]; !ok || cur != v {
			r.globalKV.Put(k, v)
		}
	}
	r.global = next
}

// stateStoreStats sums segment counts and cumulative compactions across
// the durable state stores.
func (r *Runner) stateStoreStats() (segments, compactions int64) {
	add := func(kv *results.KV) {
		st := kv.Stats()
		segments += int64(st.Segments)
		compactions += st.Compactions
	}
	if r.spec.ReplicateState {
		add(r.globalKV)
		return
	}
	for p := 0; p < r.n; p++ {
		add(r.stateKV[p])
		add(r.lastKV[p])
	}
	return
}

// stateReadStats sums the segment read-path gauges (cumulative since
// Open) across the durable state stores.
func (r *Runner) stateReadStats() (blocksRead, bloomSkips, bytesDecompressed int64) {
	add := func(kv *results.KV) {
		st := kv.Stats()
		blocksRead += st.BlocksRead
		bloomSkips += st.BloomSkips
		bytesDecompressed += st.BytesDecompressed
	}
	if r.spec.ReplicateState {
		add(r.globalKV)
		return
	}
	for p := 0; p < r.n; p++ {
		add(r.stateKV[p])
		add(r.lastKV[p])
	}
	return
}

// loadKV materializes a durable KV store as a map.
func loadKV(k *results.KV) (map[string]string, error) {
	m := make(map[string]string)
	err := k.All(func(key, value string) error {
		m[key] = value
		return nil
	})
	return m, err
}

// jobMode names the state layout for the job meta.
func (r *Runner) jobMode() string {
	if r.spec.ReplicateState {
		return modeReplicated
	}
	return modePartitioned
}

// mrbgMode names the configured MRBGraph maintenance mode. It derives
// from the spec and config, not from r.mrbgOn: the P_delta fallback
// toggles r.mrbgOn mid-job but always restores it at job boundaries.
func (r *Runner) mrbgMode() string {
	if !r.cfg.DisableMRBG && !r.spec.ReplicateState {
		return "on"
	}
	return "off"
}

// writeJobMeta durably stamps the preserved topology and completed-job
// count. Its presence is the completion marker Open requires; it is
// written when RunInitial finishes and refreshed after every completed
// RunIncremental.
func (r *Runner) writeJobMeta() error {
	err := fsutil.WriteFileAtomic(r.jobMetaPath(), []byte(fmt.Sprintf(
		"partitions=%d\nmode=%s\nmrbg=%s\njobs=%d\n", r.n, r.jobMode(), r.mrbgMode(), r.jobSeq)))
	if err == nil {
		r.jobsDone.Store(int64(r.jobSeq))
	}
	return err
}

// readJobMeta loads the completion marker; ok=false when none exists.
func readJobMeta(path string) (parts int, mode, mrbg string, jobs int, ok bool, err error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, "", "", 0, false, nil
	}
	if err != nil {
		return 0, "", "", 0, false, err
	}
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		k, v, found := strings.Cut(line, "=")
		if !found {
			return 0, "", "", 0, false, fmt.Errorf("core: corrupt job meta line %q", line)
		}
		switch k {
		case "partitions":
			if _, err := fmt.Sscanf(v, "%d", &parts); err != nil {
				return 0, "", "", 0, false, fmt.Errorf("core: corrupt job meta partitions %q", v)
			}
		case "mode":
			mode = v
		case "mrbg":
			mrbg = v
		case "jobs":
			if _, err := fmt.Sscanf(v, "%d", &jobs); err != nil {
				return 0, "", "", 0, false, fmt.Errorf("core: corrupt job meta jobs %q", v)
			}
		default:
			return 0, "", "", 0, false, fmt.Errorf("core: unknown job meta key %q", k)
		}
	}
	if parts <= 0 || (mode != modePartitioned && mode != modeReplicated) || (mrbg != "on" && mrbg != "off") {
		return 0, "", "", 0, false, fmt.Errorf("core: corrupt job meta %q", string(b))
	}
	return parts, mode, mrbg, jobs, true, nil
}

// markRefreshIntent durably records that a refresh (and, as iterations
// progress, which one) is mutating the preserved state. It is written
// before the first durable mutation of a RunIncremental, refreshed per
// iteration, and removed only after the refresh's final checkpoint; a
// marker that survives a crash tells Open the stores are at
// inconsistent iterations and must not be resumed.
func (r *Runner) markRefreshIntent(iteration int) error {
	return fsutil.WriteFileAtomic(r.refreshIntentPath(),
		[]byte(fmt.Sprintf("job=%d\niteration=%d\n", r.jobSeq, iteration)))
}

// intentJob extracts the job number from a refresh.intent payload
// (-1 if absent/corrupt, which never matches a valid meta jobs count).
func intentJob(s string) int {
	for _, line := range strings.Split(s, "\n") {
		if v, found := strings.CutPrefix(line, "job="); found {
			var n int
			if _, err := fmt.Sscanf(v, "%d", &n); err == nil {
				return n
			}
		}
	}
	return -1
}

// clearRefreshIntent removes the marker after a completed refresh.
func (r *Runner) clearRefreshIntent() error {
	path := r.refreshIntentPath()
	if err := os.Remove(path); err != nil {
		return err
	}
	return fsutil.SyncDir(filepath.Dir(path))
}

// Open reattaches a Runner to the durable state a previous process
// preserved under the same cluster scratch root: the per-partition
// MRBG-Stores and state stores recover from their manifests, the
// node-local structure files are re-indexed, and RunIncremental works
// immediately without re-running the initial job. The computation must
// be opened with the same spec Name, partition count, state layout, and
// MRBGraph mode it originally ran with; Open fails if any partition's
// preserved state is missing, and refuses a half-applied refresh (a
// surviving refresh.intent marker).
func Open(eng *mr.Engine, spec Spec, cfg Config) (*Runner, error) {
	r, err := NewRunner(eng, spec, cfg)
	if err != nil {
		return nil, err
	}
	if err := r.attach(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// attach validates the preserved state against this runner's topology
// and loads it.
func (r *Runner) attach() error {
	parts, mode, mrbgM, jobs, ok, err := readJobMeta(r.jobMetaPath())
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: computation %q has no preserved state here (RunInitial never completed under this scratch root)", r.spec.Name)
	}
	if parts != r.n {
		return fmt.Errorf("core: computation %q was preserved with %d partitions, cannot resume with %d", r.spec.Name, parts, r.n)
	}
	if mode != r.jobMode() {
		return fmt.Errorf("core: computation %q was preserved in %s mode, cannot resume in %s mode", r.spec.Name, mode, r.jobMode())
	}
	if mrbgM != r.mrbgMode() {
		return fmt.Errorf("core: computation %q was preserved with MRBGraph maintenance %s, cannot resume with it %s", r.spec.Name, mrbgM, r.mrbgMode())
	}
	switch intent, err := os.ReadFile(r.refreshIntentPath()); {
	case err == nil:
		// One benign crash window: the refresh completed (its meta was
		// stamped — meta jobs equals the marker's job number only after
		// writeJobMeta) but the process died before unlinking the
		// marker. That state is fully consistent; clear the marker and
		// resume. Any other surviving marker means stores at
		// inconsistent iterations.
		if intentJob(string(intent)) == jobs {
			if err := r.clearRefreshIntent(); err != nil {
				return err
			}
			break
		}
		return fmt.Errorf("core: computation %q has a half-applied refresh (%s); this state cannot be resumed safely — re-run the computation in a fresh work dir",
			r.spec.Name, strings.ReplaceAll(strings.TrimSpace(string(intent)), "\n", " "))
	case !errors.Is(err, os.ErrNotExist):
		return fmt.Errorf("core: probing refresh marker: %w", err)
	}

	project := r.spec.Project
	if r.spec.ReplicateState {
		project = nil
	}
	// Recovery is partition-independent — structure re-indexing and
	// state loading both fan out at Config.IOParallelism.
	r.parts = make([]*structPart, r.n)
	err = par.Do(r.n, r.ioPar, func(p int) error {
		sp, err := openStructPart(r.structPath(p), project)
		if err != nil {
			return fmt.Errorf("core: reattaching structure partition %d: %w", p, err)
		}
		r.parts[p] = sp
		return nil
	})
	if err != nil {
		return err
	}

	if r.spec.ReplicateState {
		if !r.globalKV.Initialized() {
			return fmt.Errorf("core: computation %q is missing its preserved global state (was it run under a different cluster topology?)", r.spec.Name)
		}
		g, err := loadKV(r.globalKV)
		if err != nil {
			return err
		}
		r.global = g
	} else {
		r.state = make([]map[string]string, r.n)
		r.last = make([]map[string]string, r.n)
		err = par.Do(r.n, r.ioPar, func(p int) error {
			if !r.stateKV[p].Initialized() || !r.lastKV[p].Initialized() {
				return fmt.Errorf("core: computation %q is missing preserved state for partition %d (was it run under a different cluster topology?)", r.spec.Name, p)
			}
			st, err := loadKV(r.stateKV[p])
			if err != nil {
				return err
			}
			le, err := loadKV(r.lastKV[p])
			if err != nil {
				return err
			}
			r.state[p] = st
			r.last[p] = le
			return nil
		})
		if err != nil {
			return err
		}
	}
	// A preserved mrbg=on computation with live state must come with
	// its preserved MRBGraph; freshly created empty stores here mean
	// the core-mrbg tree was lost (partial copy, cache cleanup), and
	// merging deltas into an empty graph would converge to silently
	// wrong state. (Aggregate, not per-partition: a spec may leave a
	// partition chunkless if nothing ever emitted to its keys.)
	if r.mrbgOn {
		chunks := 0
		for _, st := range r.stores {
			chunks += st.Len()
		}
		if chunks == 0 && r.StateKeyCount() > 0 {
			return fmt.Errorf("core: computation %q is missing its preserved MRBGraph (the core-mrbg stores are empty); cannot resume safely", r.spec.Name)
		}
	}
	r.jobSeq = jobs
	r.jobsDone.Store(int64(jobs))
	r.initialDone = true
	return nil
}

// resetStaleState discards the partial durable leavings of an initial
// run that died before committing its job meta: initialized state
// stores, MRBG-Stores with preserved chunks, and any stale refresh
// marker. RunInitial calls it so a retry starts clean instead of
// overlaying stale state or phantom MRBGraph chunks.
func (r *Runner) resetStaleState() error {
	if err := os.Remove(r.refreshIntentPath()); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	// Drop the in-memory caches along with the stores: a retried
	// RunInitial must not let a stale cache entry suppress the
	// write-through of an identical fresh value (the skip-if-equal fast
	// path in setGlobal/setStateLocked), or the durable store would end
	// up with holes the cache papers over until the next Open.
	r.global, r.state, r.last = nil, nil, nil
	reset := func(kv *results.KV) error {
		if !kv.Initialized() {
			kv.DiscardPending()
			return nil
		}
		return kv.Reset()
	}
	if r.spec.ReplicateState {
		if err := reset(r.globalKV); err != nil {
			return err
		}
	} else {
		for p := 0; p < r.n; p++ {
			if err := reset(r.stateKV[p]); err != nil {
				return err
			}
			if err := reset(r.lastKV[p]); err != nil {
				return err
			}
		}
	}
	for p, st := range r.stores {
		if st.Len() == 0 {
			continue
		}
		if err := st.Close(); err != nil {
			return err
		}
		opts := r.storeOpts(p)
		if err := os.RemoveAll(opts.Dir); err != nil {
			return err
		}
		nst, err := mrbg.Open(opts)
		if err != nil {
			return fmt.Errorf("core: resetting stale store %d: %w", p, err)
		}
		r.stores[p] = nst
	}
	return nil
}
