package core

import (
	"bytes"
	"fmt"
	"os"
	"sort"

	"i2mapreduce/internal/iter"
	"i2mapreduce/internal/kv"
)

// span is the contiguous byte range of one state key's structure
// records inside a partition file. Because the file is sorted by
// project(SK), all records projecting to the same DK are adjacent, so
// one span per DK suffices and a selective read is a single ReadAt.
type span struct {
	off, len int64
}

// structPart is one partition's cached structure data: a node-local
// sorted file plus the DK -> span index that the incremental engine
// uses to re-map only affected structure records (the reason the
// paper's Fig. 9 map stage shrinks by 98%).
type structPart struct {
	path  string
	spans map[string]span
	recs  int64
	bytes int64
}

// buildStructPart sorts ps by (project(SK), SK), writes the partition
// file, and builds the span index. project may be nil (ReplicateState
// specs), in which case records sort by SK and no index is built.
func buildStructPart(path string, ps []kv.Pair, project func(string) string) (*structPart, error) {
	if project == nil {
		kv.SortPairs(ps)
	} else {
		sort.SliceStable(ps, func(i, j int) bool {
			di, dj := project(ps[i].Key), project(ps[j].Key)
			if di != dj {
				return di < dj
			}
			return ps[i].Key < ps[j].Key
		})
	}
	if err := iter.WriteStructFile(path, ps); err != nil {
		return nil, err
	}
	return indexStructPart(path, ps, project)
}

// openStructPart reattaches to the node-local partition file a previous
// process wrote (and which survives it under the cluster scratch root):
// the records are streamed back in file order — already sorted — and
// the span index is rebuilt from the deterministic encoding. core.Open
// uses it to resume a computation without re-partitioning the input.
func openStructPart(path string, project func(string) string) (*structPart, error) {
	var ps []kv.Pair
	if err := iter.ReadStructFile(path, func(p kv.Pair) error {
		ps = append(ps, p)
		return nil
	}); err != nil {
		return nil, err
	}
	return indexStructPart(path, ps, project)
}

// indexStructPart builds the structPart metadata for records already in
// file order at path.
func indexStructPart(path string, ps []kv.Pair, project func(string) string) (*structPart, error) {
	sp := &structPart{path: path, recs: int64(len(ps))}
	if project == nil {
		fi, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		sp.bytes = fi.Size()
		return sp, nil
	}

	// Re-encode record by record to learn exact offsets. Encoding is
	// deterministic, so these offsets match the file contents.
	sp.spans = make(map[string]span)
	var off int64
	var buf []byte
	for _, p := range ps {
		buf = appendPairFrame(buf[:0], p)
		l := int64(len(buf))
		dk := project(p.Key)
		if s, ok := sp.spans[dk]; ok {
			sp.spans[dk] = span{off: s.off, len: s.len + l}
		} else {
			sp.spans[dk] = span{off: off, len: l}
		}
		off += l
	}
	sp.bytes = off
	return sp, nil
}

// appendPairFrame mirrors kv.Writer's on-disk framing for one pair.
func appendPairFrame(buf []byte, p kv.Pair) []byte {
	buf = appendUvarint(buf, uint64(len(p.Key)))
	buf = append(buf, p.Key...)
	buf = appendUvarint(buf, uint64(len(p.Value)))
	buf = append(buf, p.Value...)
	return buf
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// readAll streams every record of the partition.
func (sp *structPart) readAll(fn func(p kv.Pair) error) error {
	return iter.ReadStructFile(sp.path, fn)
}

// readDK reads only the records projecting to dk, using the span index
// (one positioned read instead of a full scan). Missing dk is a no-op.
// It returns the number of bytes read.
func (sp *structPart) readDK(dk string, fn func(p kv.Pair) error) (int64, error) {
	s, ok := sp.spans[dk]
	if !ok {
		return 0, nil
	}
	f, err := os.Open(sp.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf := make([]byte, s.len)
	if _, err := f.ReadAt(buf, s.off); err != nil {
		return 0, fmt.Errorf("core: structure span read %q: %w", dk, err)
	}
	ps, err := kv.DecodePairs(bytes.NewReader(buf))
	if err != nil {
		return s.len, fmt.Errorf("core: structure span decode %q: %w", dk, err)
	}
	for _, p := range ps {
		if err := fn(p); err != nil {
			return s.len, err
		}
	}
	return s.len, nil
}

// readDKsSorted reads the records of several state keys with one file
// handle, in sorted key order (sequential-ish access, since spans of
// sorted DKs are laid out in file order). It returns total bytes read.
func (sp *structPart) readDKsSorted(dks []string, fn func(dk string, p kv.Pair) error) (int64, error) {
	f, err := os.Open(sp.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var total int64
	for _, dk := range dks {
		s, ok := sp.spans[dk]
		if !ok {
			continue
		}
		buf := make([]byte, s.len)
		if _, err := f.ReadAt(buf, s.off); err != nil {
			return total, fmt.Errorf("core: structure span read %q: %w", dk, err)
		}
		total += s.len
		ps, err := kv.DecodePairs(bytes.NewReader(buf))
		if err != nil {
			return total, fmt.Errorf("core: structure span decode %q: %w", dk, err)
		}
		for _, p := range ps {
			if err := fn(dk, p); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// applyDelta merges structure deltas into the partition, applying the
// records *in order*: a deletion must match a record present at that
// point (from the file or inserted earlier in the same delta), so
// chained updates within one batch work. The partition file and span
// index are rebuilt. A deletion that matches nothing is an error,
// since it means the delta does not correspond to the structure
// version the engine holds.
func (sp *structPart) applyDelta(ds []kv.Delta, project func(string) string) (*structPart, error) {
	type rec struct {
		sk, sv string
	}
	multiset := make(map[rec]int)
	var total int
	err := sp.readAll(func(p kv.Pair) error {
		multiset[rec{p.Key, p.Value}]++
		total++
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, d := range ds {
		r := rec{d.Key, d.Value}
		if d.Op == kv.OpDelete {
			if multiset[r] == 0 {
				return nil, fmt.Errorf("core: structure delta deletes %q/%q which is not present", d.Key, d.Value)
			}
			multiset[r]--
			total--
		} else {
			multiset[r]++
			total++
		}
	}
	kept := make([]kv.Pair, 0, total)
	for r, n := range multiset {
		for i := 0; i < n; i++ {
			kept = append(kept, kv.Pair{Key: r.sk, Value: r.sv})
		}
	}
	return buildStructPart(sp.path, kept, project)
}
