package core

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"i2mapreduce/internal/kv"
)

func identity(s string) string { return s }

// prefixProject groups structure keys by their first byte — a
// many-to-one projection like GIM-V's (i,j) -> j.
func prefixProject(s string) string {
	if s == "" {
		return s
	}
	return s[:1]
}

func TestBuildStructPartSpansCoverFile(t *testing.T) {
	dir := t.TempDir()
	ps := []kv.Pair{
		{Key: "b1", Value: "x"},
		{Key: "a2", Value: "yy"},
		{Key: "a1", Value: "zzz"},
		{Key: "c9", Value: ""},
	}
	sp, err := buildStructPart(filepath.Join(dir, "part"), ps, prefixProject)
	if err != nil {
		t.Fatal(err)
	}
	if sp.recs != 4 {
		t.Fatalf("recs = %d", sp.recs)
	}
	// Spans must tile the file exactly: sorted by dk, contiguous,
	// summing to the file length.
	var total int64
	for _, dk := range []string{"a", "b", "c"} {
		s, ok := sp.spans[dk]
		if !ok {
			t.Fatalf("no span for %q", dk)
		}
		total += s.len
	}
	if total != sp.bytes {
		t.Fatalf("spans cover %d bytes, file has %d", total, sp.bytes)
	}
	// Records within a span are exactly those projecting to it.
	n, err := sp.readDK("a", func(p kv.Pair) error {
		if prefixProject(p.Key) != "a" {
			return fmt.Errorf("record %q in span a", p.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != sp.spans["a"].len {
		t.Fatalf("readDK read %d bytes, span is %d", n, sp.spans["a"].len)
	}
}

func TestReadDKMissingIsNoop(t *testing.T) {
	dir := t.TempDir()
	sp, err := buildStructPart(filepath.Join(dir, "part"), []kv.Pair{{Key: "a", Value: "1"}}, identity)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sp.readDK("missing", func(kv.Pair) error {
		t.Fatal("callback invoked for missing dk")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("readDK(missing) = %d bytes, err %v", n, err)
	}
}

func TestReadDKsSortedSelective(t *testing.T) {
	dir := t.TempDir()
	var ps []kv.Pair
	for i := 0; i < 100; i++ {
		ps = append(ps, kv.Pair{Key: fmt.Sprintf("k%03d", i), Value: fmt.Sprintf("v%d", i)})
	}
	sp, err := buildStructPart(filepath.Join(dir, "part"), ps, identity)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"k005", "k050", "k099"}
	var got []string
	n, err := sp.readDKsSorted(want, func(dk string, p kv.Pair) error {
		if dk != p.Key {
			return fmt.Errorf("dk %q delivered record %q", dk, p.Key)
		}
		got = append(got, p.Key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("selective read = %v, want %v", got, want)
	}
	if n >= sp.bytes {
		t.Fatalf("selective read touched %d of %d bytes; expected far less", n, sp.bytes)
	}
}

func TestApplyDeltaRoundTripProperty(t *testing.T) {
	// For random record sets and random delete/insert splits, applying
	// the delta must yield exactly the expected multiset.
	f := func(seed int64, nByte uint8) bool {
		dir := t.TempDir()
		n := int(nByte%20) + 1
		var ps []kv.Pair
		for i := 0; i < n; i++ {
			ps = append(ps, kv.Pair{Key: fmt.Sprintf("k%02d", i), Value: fmt.Sprintf("v%02d", i)})
		}
		sp, err := buildStructPart(filepath.Join(dir, fmt.Sprintf("p%d", seed)), ps, identity)
		if err != nil {
			return false
		}
		// Delete the even records, insert replacements.
		var ds []kv.Delta
		expect := map[string]string{}
		for i, p := range ps {
			if i%2 == 0 {
				ds = append(ds, kv.Delta{Key: p.Key, Value: p.Value, Op: kv.OpDelete})
				ds = append(ds, kv.Delta{Key: p.Key, Value: "new-" + p.Value, Op: kv.OpInsert})
				expect[p.Key] = "new-" + p.Value
			} else {
				expect[p.Key] = p.Value
			}
		}
		sp2, err := sp.applyDelta(ds, identity)
		if err != nil {
			return false
		}
		got := map[string]string{}
		if err := sp2.readAll(func(p kv.Pair) error {
			got[p.Key] = p.Value
			return nil
		}); err != nil {
			return false
		}
		return reflect.DeepEqual(got, expect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaChainedWithinBatch(t *testing.T) {
	dir := t.TempDir()
	sp, err := buildStructPart(filepath.Join(dir, "p"), []kv.Pair{{Key: "a", Value: "v1"}}, identity)
	if err != nil {
		t.Fatal(err)
	}
	// v1 -> v2 -> v3 within one batch must net to v3.
	ds := []kv.Delta{
		{Key: "a", Value: "v1", Op: kv.OpDelete},
		{Key: "a", Value: "v2", Op: kv.OpInsert},
		{Key: "a", Value: "v2", Op: kv.OpDelete},
		{Key: "a", Value: "v3", Op: kv.OpInsert},
	}
	sp2, err := sp.applyDelta(ds, identity)
	if err != nil {
		t.Fatal(err)
	}
	var vals []string
	if err := sp2.readAll(func(p kv.Pair) error { vals = append(vals, p.Value); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []string{"v3"}) {
		t.Fatalf("chained delta = %v, want [v3]", vals)
	}
}

func TestApplyDeltaRejectsMissingDeletion(t *testing.T) {
	dir := t.TempDir()
	sp, err := buildStructPart(filepath.Join(dir, "p"), []kv.Pair{{Key: "a", Value: "v1"}}, identity)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.applyDelta([]kv.Delta{{Key: "a", Value: "wrong", Op: kv.OpDelete}}, identity); err == nil {
		t.Fatal("deletion with mismatched value succeeded")
	}
}

func TestAppendPairFrameMatchesCodec(t *testing.T) {
	// The span index relies on appendPairFrame producing exactly the
	// bytes kv.Writer writes; divergence would corrupt every selective
	// read.
	f := func(k, v string) bool {
		frame := appendPairFrame(nil, kv.Pair{Key: k, Value: v})
		var enc frameBuf
		w := kv.NewWriter(&enc)
		if err := w.WritePair(kv.Pair{Key: k, Value: v}); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		return string(frame) == string(enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

type frameBuf []byte

func (b *frameBuf) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

func TestReplicateStatePartHasNoSpans(t *testing.T) {
	dir := t.TempDir()
	sp, err := buildStructPart(filepath.Join(dir, "p"), []kv.Pair{{Key: "b", Value: "2"}, {Key: "a", Value: "1"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp.spans != nil {
		t.Fatal("nil-project part built a span index")
	}
	var keys []string
	if err := sp.readAll(func(p kv.Pair) error { keys = append(keys, p.Key); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"a", "b"}) {
		t.Fatalf("records = %v (should be key-sorted)", keys)
	}
}
