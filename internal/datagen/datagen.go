// Package datagen generates the synthetic datasets and deltas the
// benchmark harness uses in place of the paper's ClueWeb / ClueWeb2 /
// BigCross / WikiTalk / Twitter data (see DESIGN.md "Substitutions").
// All generators are deterministic under a seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"i2mapreduce/internal/kv"
)

// zipfRank draws a 1-based rank from an approximate Zipf(s=1)
// distribution over [1, n] using inverse-CDF sampling on the harmonic
// series.
func zipfRank(rng *rand.Rand, n int) int {
	// H(n) ~ ln(n) + gamma; sample u*H(n) and invert by exponentiation.
	u := rng.Float64()
	hn := math.Log(float64(n)) + 0.5772156649
	return int(math.Exp(u*hn))%n + 1
}

// Graph generates a ClueWeb-like directed web graph: n vertices whose
// out-degrees follow a Zipf-flavoured skew with the given mean.
// Records are <vertex id, space-separated out-neighbour list>.
func Graph(seed int64, n, meanOutDegree int) []kv.Pair {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]kv.Pair, 0, n)
	for i := 0; i < n; i++ {
		deg := 1 + rng.Intn(2*meanOutDegree-1) // mean ~= meanOutDegree
		seen := map[int]bool{i: true}
		outs := make([]string, 0, deg)
		for len(outs) < deg && len(seen) < n {
			// Popular pages attract links: target ids skew low.
			j := zipfRank(rng, n) - 1
			if seen[j] {
				continue
			}
			seen[j] = true
			outs = append(outs, vertexID(j))
		}
		ps = append(ps, kv.Pair{Key: vertexID(i), Value: strings.Join(outs, " ")})
	}
	return ps
}

func vertexID(i int) string { return fmt.Sprintf("v%07d", i) }

// WeightedGraph generates a ClueWeb2-like weighted digraph for SSSP.
// Records are <vertex id, "to:weight;to:weight;...">; weights follow
// |N(mean=5, sd=2)| + 0.1, mirroring the paper's gaussian edge weights.
func WeightedGraph(seed int64, n, meanOutDegree int) []kv.Pair {
	rng := rand.New(rand.NewSource(seed))
	base := Graph(seed+1, n, meanOutDegree)
	out := make([]kv.Pair, len(base))
	for i, p := range base {
		var parts []string
		for _, to := range strings.Fields(p.Value) {
			w := math.Abs(rng.NormFloat64()*2+5) + 0.1
			parts = append(parts, fmt.Sprintf("%s:%.3f", to, w))
		}
		out[i] = kv.Pair{Key: p.Key, Value: strings.Join(parts, ";")}
	}
	return out
}

// Points generates a BigCross-like point cloud: n points of dims
// dimensions drawn from k Gaussian clusters. Records are
// <point id, comma-separated coordinates>.
func Points(seed int64, n, dims, k int) []kv.Pair {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dims)
		for d := range centers[c] {
			centers[c][d] = rng.Float64() * 100
		}
	}
	ps := make([]kv.Pair, 0, n)
	for i := 0; i < n; i++ {
		c := centers[i%k]
		coords := make([]string, dims)
		for d := 0; d < dims; d++ {
			coords[d] = strconv.FormatFloat(c[d]+rng.NormFloat64()*3, 'g', 8, 64)
		}
		ps = append(ps, kv.Pair{Key: fmt.Sprintf("p%07d", i), Value: strings.Join(coords, ",")})
	}
	return ps
}

// InitialCentroids picks k points as the starting centroid set,
// serialized as "cid=x1,x2|cid=x1,x2|..." for the Kmeans state value.
func InitialCentroids(seed int64, points []kv.Pair, k int) string {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(points))
	parts := make([]string, 0, k)
	for c := 0; c < k && c < len(points); c++ {
		parts = append(parts, fmt.Sprintf("c%03d=%s", c, points[perm[c]].Value))
	}
	return strings.Join(parts, "|")
}

// BlockMatrix generates a WikiTalk-like sparse matrix for GIM-V,
// partitioned into nBlocks x nBlocks blocks of blockSize x blockSize,
// column-substochastic so the damped iteration converges. Records are
// <"i,j", "r:c:w;...">, one per non-empty block.
func BlockMatrix(seed int64, nBlocks, blockSize, entriesPerColumn int) []kv.Pair {
	rng := rand.New(rand.NewSource(seed))
	n := nBlocks * blockSize
	blocks := make(map[[2]int][]string)
	for col := 0; col < n; col++ {
		bj, c := col/blockSize, col%blockSize
		k := entriesPerColumn
		w := 1.0 / float64(k)
		seen := map[int]bool{}
		for e := 0; e < k; e++ {
			row := rng.Intn(n)
			if seen[row] {
				continue
			}
			seen[row] = true
			bi, r := row/blockSize, row%blockSize
			key := [2]int{bi, bj}
			blocks[key] = append(blocks[key], fmt.Sprintf("%d:%d:%.6f", r, c, w))
		}
	}
	var ps []kv.Pair
	for key, entries := range blocks {
		sort.Strings(entries)
		ps = append(ps, kv.Pair{
			Key:   fmt.Sprintf("%d,%d", key[0], key[1]),
			Value: strings.Join(entries, ";"),
		})
	}
	kv.SortPairs(ps)
	return ps
}

// InitialVector builds the GIM-V state: one vector block per block id,
// all components 1.
func InitialVector(nBlocks, blockSize int) map[string]string {
	ones := make([]string, blockSize)
	for i := range ones {
		ones[i] = "1"
	}
	v := strings.Join(ones, ",")
	out := make(map[string]string, nBlocks)
	for j := 0; j < nBlocks; j++ {
		out[strconv.Itoa(j)] = v
	}
	return out
}

// Tweets generates a Twitter-like corpus: n tweets of wordsPerTweet
// words drawn from a Zipf-skewed vocabulary of vocab words. Records are
// <tweet id, space-separated words>.
func Tweets(seed int64, n, vocab, wordsPerTweet int) []kv.Pair {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]kv.Pair, 0, n)
	for i := 0; i < n; i++ {
		words := make([]string, wordsPerTweet)
		for w := range words {
			words[w] = fmt.Sprintf("w%05d", zipfRank(rng, vocab)-1)
		}
		ps = append(ps, kv.Pair{Key: fmt.Sprintf("t%08d", i), Value: strings.Join(words, " ")})
	}
	return ps
}

// MutateOptions controls delta generation.
type MutateOptions struct {
	// Fraction of existing records to modify (delete+insert pairs).
	ModifyFraction float64
	// Fraction of existing records to delete outright.
	DeleteFraction float64
	// Fraction of new records to insert, relative to current size.
	InsertFraction float64
	// Rewrite produces the modified value for a record; required when
	// ModifyFraction > 0.
	Rewrite func(rng *rand.Rand, key, value string) string
	// NewRecord produces a brand-new record; required when
	// InsertFraction > 0.
	NewRecord func(rng *rand.Rand, i int) kv.Pair
}

// Mutate applies MutateOptions to a dataset, returning the delta (in
// the i2MapReduce '+'/'-' convention) and the updated dataset. Each
// record is touched at most once per call, so deltas never chain.
func Mutate(seed int64, data []kv.Pair, opts MutateOptions) ([]kv.Delta, []kv.Pair) {
	rng := rand.New(rand.NewSource(seed))
	var deltas []kv.Delta
	updated := make([]kv.Pair, 0, len(data))
	nextNew := 0
	for _, p := range data {
		roll := rng.Float64()
		switch {
		case roll < opts.DeleteFraction:
			deltas = append(deltas, kv.Delta{Key: p.Key, Value: p.Value, Op: kv.OpDelete})
		case roll < opts.DeleteFraction+opts.ModifyFraction:
			nv := opts.Rewrite(rng, p.Key, p.Value)
			if nv == p.Value {
				updated = append(updated, p)
				continue
			}
			deltas = append(deltas, kv.Delta{Key: p.Key, Value: p.Value, Op: kv.OpDelete})
			deltas = append(deltas, kv.Delta{Key: p.Key, Value: nv, Op: kv.OpInsert})
			updated = append(updated, kv.Pair{Key: p.Key, Value: nv})
		default:
			updated = append(updated, p)
		}
	}
	nInsert := int(float64(len(data)) * opts.InsertFraction)
	for i := 0; i < nInsert; i++ {
		rec := opts.NewRecord(rng, nextNew)
		nextNew++
		deltas = append(deltas, kv.Delta{Key: rec.Key, Value: rec.Value, Op: kv.OpInsert})
		updated = append(updated, rec)
	}
	return deltas, updated
}

// RewireGraphValue is a Rewrite for Graph records: it re-targets one
// random out-edge, preserving degree, never self-linking.
func RewireGraphValue(n int) func(rng *rand.Rand, key, value string) string {
	return func(rng *rand.Rand, key, value string) string {
		outs := strings.Fields(value)
		if len(outs) == 0 {
			return value
		}
		seen := map[string]bool{key: true}
		for _, o := range outs {
			seen[o] = true
		}
		for tries := 0; tries < 16; tries++ {
			cand := vertexID(rng.Intn(n))
			if !seen[cand] {
				outs[rng.Intn(len(outs))] = cand
				break
			}
		}
		return strings.Join(outs, " ")
	}
}

// AppendTweets builds the APriori delta: the paper appends the last
// week of tweets (insert-only, 7.9% of the corpus).
func AppendTweets(seed int64, existing []kv.Pair, fraction float64, vocab, wordsPerTweet int) []kv.Delta {
	rng := rand.New(rand.NewSource(seed))
	n := int(float64(len(existing)) * fraction)
	deltas := make([]kv.Delta, 0, n)
	for i := 0; i < n; i++ {
		words := make([]string, wordsPerTweet)
		for w := range words {
			words[w] = fmt.Sprintf("w%05d", zipfRank(rng, vocab)-1)
		}
		deltas = append(deltas, kv.Delta{
			Key:   fmt.Sprintf("t9%07d", i),
			Value: strings.Join(words, " "),
			Op:    kv.OpInsert,
		})
	}
	return deltas
}
