package datagen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"i2mapreduce/internal/kv"
)

func TestGraphDeterministicAndWellFormed(t *testing.T) {
	a := Graph(42, 100, 3)
	b := Graph(42, 100, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Graph not deterministic under the same seed")
	}
	if len(a) != 100 {
		t.Fatalf("Graph has %d records, want 100", len(a))
	}
	ids := map[string]bool{}
	for _, p := range a {
		ids[p.Key] = true
	}
	totalOut := 0
	for _, p := range a {
		outs := strings.Fields(p.Value)
		if len(outs) == 0 {
			t.Fatalf("vertex %s has no out-edges", p.Key)
		}
		totalOut += len(outs)
		seen := map[string]bool{}
		for _, o := range outs {
			if o == p.Key {
				t.Fatalf("vertex %s links to itself", p.Key)
			}
			if seen[o] {
				t.Fatalf("vertex %s has duplicate edge to %s", p.Key, o)
			}
			seen[o] = true
			if !ids[o] {
				t.Fatalf("vertex %s links to unknown vertex %s", p.Key, o)
			}
		}
	}
	if avg := float64(totalOut) / 100; avg < 1 || avg > 6 {
		t.Fatalf("average out-degree %v far from mean 3", avg)
	}
}

func TestWeightedGraphParses(t *testing.T) {
	ps := WeightedGraph(7, 50, 3)
	if len(ps) != 50 {
		t.Fatalf("%d records", len(ps))
	}
	for _, p := range ps {
		for _, e := range strings.Split(p.Value, ";") {
			_, w, ok := strings.Cut(e, ":")
			if !ok {
				t.Fatalf("malformed edge %q", e)
			}
			if !strings.ContainsAny(w, "0123456789") {
				t.Fatalf("edge weight %q not numeric", w)
			}
		}
	}
}

func TestPointsAndCentroids(t *testing.T) {
	ps := Points(9, 200, 5, 4)
	if len(ps) != 200 {
		t.Fatalf("%d points", len(ps))
	}
	for _, p := range ps {
		if got := len(strings.Split(p.Value, ",")); got != 5 {
			t.Fatalf("point %s has %d dims, want 5", p.Key, got)
		}
	}
	init := InitialCentroids(9, ps, 4)
	if got := len(strings.Split(init, "|")); got != 4 {
		t.Fatalf("%d centroids, want 4", got)
	}
}

func TestBlockMatrixColumnsSubstochastic(t *testing.T) {
	const nBlocks, blockSize = 3, 4
	ps := BlockMatrix(11, nBlocks, blockSize, 2)
	colSums := map[int]float64{}
	for _, p := range ps {
		var bi, bj int
		if _, err := sscanf2(p.Key, &bi, &bj); err != nil {
			t.Fatalf("bad block key %q", p.Key)
		}
		for _, e := range strings.Split(p.Value, ";") {
			parts := strings.SplitN(e, ":", 3)
			if len(parts) != 3 {
				t.Fatalf("bad entry %q", e)
			}
			var c int
			var w float64
			if _, err := sscanfInt(parts[1], &c); err != nil {
				t.Fatal(err)
			}
			if _, err := sscanfFloat(parts[2], &w); err != nil {
				t.Fatal(err)
			}
			colSums[bj*blockSize+c] += w
		}
	}
	for col, sum := range colSums {
		if sum > 1.0001 {
			t.Fatalf("column %d sums to %v > 1 (not substochastic)", col, sum)
		}
	}
}

func TestTweetsVocabulary(t *testing.T) {
	ps := Tweets(13, 100, 20, 5)
	if len(ps) != 100 {
		t.Fatalf("%d tweets", len(ps))
	}
	for _, p := range ps {
		words := strings.Fields(p.Value)
		if len(words) != 5 {
			t.Fatalf("tweet %s has %d words", p.Key, len(words))
		}
		for _, w := range words {
			if !strings.HasPrefix(w, "w") {
				t.Fatalf("unexpected word %q", w)
			}
		}
	}
}

func TestMutateConsistency(t *testing.T) {
	data := Graph(21, 80, 3)
	deltas, updated := Mutate(5, data, MutateOptions{
		ModifyFraction: 0.2,
		DeleteFraction: 0.05,
		InsertFraction: 0.05,
		Rewrite:        RewireGraphValue(80),
		NewRecord: func(rng *rand.Rand, i int) kv.Pair {
			return kv.Pair{Key: "new" + string(rune('a'+i%26)) + string(rune('0'+i/26)), Value: "v0000001"}
		},
	})
	if len(deltas) == 0 {
		t.Fatal("no deltas generated")
	}
	// Applying the delta to the original must produce `updated`.
	type rec struct{ k, v string }
	set := map[rec]int{}
	for _, p := range data {
		set[rec{p.Key, p.Value}]++
	}
	for _, d := range deltas {
		r := rec{d.Key, d.Value}
		if d.Op == kv.OpDelete {
			if set[r] == 0 {
				t.Fatalf("delta deletes %v which is not present", r)
			}
			set[r]--
		} else {
			set[r]++
		}
	}
	for _, p := range updated {
		r := rec{p.Key, p.Value}
		if set[r] == 0 {
			t.Fatalf("updated record %v not in applied set", r)
		}
		set[r]--
	}
	for r, n := range set {
		if n != 0 {
			t.Fatalf("applied set has leftover %v x%d", r, n)
		}
	}
}

func TestAppendTweetsInsertOnly(t *testing.T) {
	base := Tweets(1, 200, 30, 4)
	deltas := AppendTweets(2, base, 0.079, 30, 4)
	if len(deltas) != 15 { // 7.9% of 200
		t.Fatalf("%d delta tweets, want 15", len(deltas))
	}
	for _, d := range deltas {
		if d.Op != kv.OpInsert {
			t.Fatalf("AppendTweets produced a %v record", d.Op)
		}
	}
}

// tiny scanf helpers to avoid fmt.Sscanf error-prone usage in tests
func sscanf2(s string, a, b *int) (int, error) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return 0, errBad(s)
	}
	if _, err := sscanfInt(parts[0], a); err != nil {
		return 0, err
	}
	if _, err := sscanfInt(parts[1], b); err != nil {
		return 1, err
	}
	return 2, nil
}

func sscanfInt(s string, out *int) (int, error) {
	n := 0
	neg := false
	i := 0
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	if i >= len(s) {
		return 0, errBad(s)
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errBad(s)
		}
		n = n*10 + int(s[i]-'0')
	}
	if neg {
		n = -n
	}
	*out = n
	return 1, nil
}

func sscanfFloat(s string, out *float64) (int, error) {
	var f float64
	var frac float64 = 0
	div := 1.0
	seenDot := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '.':
			seenDot = true
		case c >= '0' && c <= '9':
			if seenDot {
				div *= 10
				frac += float64(c-'0') / div
			} else {
				f = f*10 + float64(c-'0')
			}
		default:
			return 0, errBad(s)
		}
	}
	*out = f + frac
	return 1, nil
}

type errBad string

func (e errBad) Error() string { return "bad number: " + string(e) }
