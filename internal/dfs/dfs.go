// Package dfs implements the simulated distributed file system that
// plays HDFS's role in this reproduction. Files are sequences of
// fixed-capacity blocks stored as real files on local disk; each block
// carries a (simulated) placement across cluster nodes that the
// MapReduce engine uses for data-local task assignment, mirroring
// "the JobTracker starts a Map task per data block, and typically
// assigns it to the TaskTracker on the machine that holds the block"
// (paper Sec. 2).
//
// Blocks split at record boundaries, never inside a record, so every
// block is independently decodable — exactly the property map tasks
// rely on.
package dfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"i2mapreduce/internal/fsutil"
	"i2mapreduce/internal/kv"
)

// DefaultBlockSize is the block capacity used when Config.BlockSize is
// zero. It is deliberately small (1 MiB, vs HDFS's 64 MB) so laptop-
// scale datasets still split into enough blocks to exercise multi-task
// map phases.
const DefaultBlockSize = 1 << 20

// Config configures a file system instance.
type Config struct {
	// Root is the on-disk directory backing the DFS. It is created if
	// missing.
	Root string
	// BlockSize is the capacity in bytes at which a writer seals the
	// current block and opens the next one. Defaults to
	// DefaultBlockSize.
	BlockSize int64
	// Nodes is the number of simulated cluster nodes blocks are placed
	// on (round-robin with replication). Defaults to 1.
	Nodes int
	// Replication is the number of nodes each block is placed on.
	// Defaults to 1 and is capped at Nodes.
	Replication int
}

// BlockInfo describes one block of a file.
type BlockInfo struct {
	// Index is the block's position within the file.
	Index int
	// Bytes is the encoded size of the block on disk.
	Bytes int64
	// Records is the number of records in the block.
	Records int64
	// Nodes lists the simulated nodes holding a replica, primary first.
	Nodes []int
}

// FileInfo describes a DFS file.
type FileInfo struct {
	Path    string
	Blocks  []BlockInfo
	Bytes   int64
	Records int64
}

// ErrNotExist reports a lookup of a path with no committed file.
var ErrNotExist = errors.New("dfs: file does not exist")

// FS is a simulated distributed file system. All methods are safe for
// concurrent use.
type FS struct {
	cfg   Config
	mu    sync.Mutex
	files map[string]*FileInfo
	next  int // round-robin placement cursor
}

// New creates (or reopens an empty view over) the DFS rooted at
// cfg.Root.
func New(cfg Config) (*FS, error) {
	if cfg.Root == "" {
		return nil, errors.New("dfs: Config.Root is required")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	if cfg.Replication > cfg.Nodes {
		cfg.Replication = cfg.Nodes
	}
	if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: creating root: %w", err)
	}
	return &FS{cfg: cfg, files: make(map[string]*FileInfo)}, nil
}

// BlockSize returns the configured block capacity.
func (fs *FS) BlockSize() int64 { return fs.cfg.BlockSize }

// encodePath maps a DFS path to a directory name under Root. Slashes
// are flattened so nested DFS paths do not create nested directories.
func (fs *FS) encodePath(path string) string {
	enc := strings.NewReplacer("/", "__", "\\", "__").Replace(path)
	return filepath.Join(fs.cfg.Root, enc)
}

func (fs *FS) blockPath(path string, idx int) string {
	return filepath.Join(fs.encodePath(path), fmt.Sprintf("block-%05d", idx))
}

// placement returns the replica node list for the next block.
func (fs *FS) placement() []int {
	nodes := make([]int, 0, fs.cfg.Replication)
	for i := 0; i < fs.cfg.Replication; i++ {
		nodes = append(nodes, (fs.next+i)%fs.cfg.Nodes)
	}
	fs.next = (fs.next + 1) % fs.cfg.Nodes
	return nodes
}

// Writer writes one DFS file as a sequence of blocks. It is not safe
// for concurrent use. Close commits the file; abandoning a writer
// without Close leaves no visible file.
type Writer struct {
	fs      *FS
	path    string
	info    FileInfo
	cur     *os.File
	enc     *kv.Writer
	curIdx  int
	curRecs int64
	closed  bool
}

// Create opens a writer for path, replacing any existing file on
// commit. The replacement is atomic with respect to readers resolving
// paths through this FS instance: Stat/Open see the old file until
// Close succeeds.
func (fs *FS) Create(path string) (*Writer, error) {
	if path == "" {
		return nil, errors.New("dfs: empty path")
	}
	dir := fs.encodePath(path) + ".tmp"
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("dfs: clearing temp dir: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: creating temp dir: %w", err)
	}
	return &Writer{fs: fs, path: path, info: FileInfo{Path: path}}, nil
}

func (w *Writer) tmpBlockPath(idx int) string {
	return filepath.Join(w.fs.encodePath(w.path)+".tmp", fmt.Sprintf("block-%05d", idx))
}

func (w *Writer) openBlock() error {
	f, err := os.Create(w.tmpBlockPath(w.curIdx))
	if err != nil {
		return fmt.Errorf("dfs: creating block: %w", err)
	}
	w.cur = f
	w.enc = kv.NewWriter(f)
	w.curRecs = 0
	return nil
}

func (w *Writer) sealBlock() error {
	if w.cur == nil {
		return nil
	}
	if err := w.enc.Flush(); err != nil {
		return err
	}
	if err := w.cur.Close(); err != nil {
		return err
	}
	w.fs.mu.Lock()
	nodes := w.fs.placement()
	w.fs.mu.Unlock()
	w.info.Blocks = append(w.info.Blocks, BlockInfo{
		Index:   w.curIdx,
		Bytes:   w.enc.Bytes,
		Records: w.curRecs,
		Nodes:   nodes,
	})
	w.info.Bytes += w.enc.Bytes
	w.info.Records += w.curRecs
	w.cur, w.enc = nil, nil
	w.curIdx++
	return nil
}

func (w *Writer) maybeRoll() error {
	if w.cur == nil {
		return w.openBlock()
	}
	if w.enc.Bytes >= w.fs.cfg.BlockSize {
		if err := w.sealBlock(); err != nil {
			return err
		}
		return w.openBlock()
	}
	return nil
}

// WritePair appends one pair record, rolling to a new block when the
// current one is at capacity.
func (w *Writer) WritePair(p kv.Pair) error {
	if w.closed {
		return errors.New("dfs: write on closed writer")
	}
	if err := w.maybeRoll(); err != nil {
		return err
	}
	if err := w.enc.WritePair(p); err != nil {
		return err
	}
	w.curRecs++
	return nil
}

// WriteDelta appends one delta record.
func (w *Writer) WriteDelta(d kv.Delta) error {
	if w.closed {
		return errors.New("dfs: write on closed writer")
	}
	if err := w.maybeRoll(); err != nil {
		return err
	}
	if err := w.enc.WriteDelta(d); err != nil {
		return err
	}
	w.curRecs++
	return nil
}

// Abort discards an uncommitted writer: the temp block files are
// removed, nothing is committed, and readers keep seeing the previous
// file at this path (if any). A no-op after Close or Abort.
func (w *Writer) Abort() {
	if w.closed {
		return
	}
	w.closed = true
	if w.cur != nil {
		//i2vet:allow errclose abort path: the temp block file is being discarded, its close error cannot matter
		w.cur.Close()
		w.cur, w.enc = nil, nil
	}
	os.RemoveAll(w.fs.encodePath(w.path) + ".tmp")
}

// Close seals the final block and atomically commits the file. A file
// written with zero records commits as an empty file with no blocks.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.sealBlock(); err != nil {
		return err
	}
	final := w.fs.encodePath(w.path)
	if err := os.RemoveAll(final); err != nil {
		return fmt.Errorf("dfs: removing old file: %w", err)
	}
	if err := fsutil.RenameCommit(final+".tmp", final); err != nil {
		return fmt.Errorf("dfs: committing file: %w", err)
	}
	w.fs.mu.Lock()
	w.fs.files[w.path] = &w.info
	w.fs.mu.Unlock()
	return nil
}

// Clone copies src to dst at block level, without decoding or
// re-encoding records. The one-step engine's output materializer uses
// it to publish an unchanged (clean) result partition under a new
// output path for the cost of a byte copy instead of a re-sort and
// re-serialization. The clone is atomic like Create/Close: readers see
// the old dst (if any) until the copy commits. Cloned blocks receive a
// fresh placement.
func (fs *FS) Clone(src, dst string) error {
	if dst == "" {
		return errors.New("dfs: empty path")
	}
	fi, err := fs.Stat(src)
	if err != nil {
		return err
	}
	tmp := fs.encodePath(dst) + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("dfs: clearing temp dir: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("dfs: creating temp dir: %w", err)
	}
	info := FileInfo{Path: dst, Bytes: fi.Bytes, Records: fi.Records}
	for _, b := range fi.Blocks {
		if err := copyBlockFile(
			filepath.Join(tmp, fmt.Sprintf("block-%05d", b.Index)),
			fs.blockPath(src, b.Index),
		); err != nil {
			return err
		}
		fs.mu.Lock()
		nodes := fs.placement()
		fs.mu.Unlock()
		info.Blocks = append(info.Blocks, BlockInfo{
			Index: b.Index, Bytes: b.Bytes, Records: b.Records, Nodes: nodes,
		})
	}
	final := fs.encodePath(dst)
	if err := os.RemoveAll(final); err != nil {
		return fmt.Errorf("dfs: removing old file: %w", err)
	}
	if err := fsutil.RenameCommit(tmp, final); err != nil {
		return fmt.Errorf("dfs: committing clone: %w", err)
	}
	fs.mu.Lock()
	fs.files[dst] = &info
	fs.mu.Unlock()
	return nil
}

func copyBlockFile(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("dfs: opening block for clone: %w", err)
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Stat returns metadata for path.
func (fs *FS) Stat(path string) (FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fi, ok := fs.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return *fi, nil
}

// List returns all committed paths in sorted order.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Delete removes a file and its blocks. Deleting a missing file is an
// error so callers notice typo'd paths.
func (fs *FS) Delete(path string) error {
	fs.mu.Lock()
	_, ok := fs.files[path]
	delete(fs.files, path)
	fs.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return os.RemoveAll(fs.encodePath(path))
}

// OpenBlock returns a record reader over one block of path.
func (fs *FS) OpenBlock(path string, idx int) (*BlockReader, error) {
	fi, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(fi.Blocks) {
		return nil, fmt.Errorf("dfs: %s has no block %d", path, idx)
	}
	f, err := os.Open(fs.blockPath(path, idx))
	if err != nil {
		return nil, fmt.Errorf("dfs: opening block: %w", err)
	}
	return &BlockReader{f: f, dec: kv.NewReader(f)}, nil
}

// BlockReader reads the records of one block.
type BlockReader struct {
	f   *os.File
	dec *kv.Reader
}

// ReadPair returns the next pair record (io.EOF at end of block).
func (b *BlockReader) ReadPair() (kv.Pair, error) { return b.dec.ReadPair() }

// ReadDelta returns the next delta record (io.EOF at end of block).
func (b *BlockReader) ReadDelta() (kv.Delta, error) { return b.dec.ReadDelta() }

// Close releases the underlying file.
func (b *BlockReader) Close() error { return b.f.Close() }

// ReadAllPairs reads every pair record of path across all blocks.
func (fs *FS) ReadAllPairs(path string) ([]kv.Pair, error) {
	fi, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	var out []kv.Pair
	for i := range fi.Blocks {
		br, err := fs.OpenBlock(path, i)
		if err != nil {
			return nil, err
		}
		for {
			p, err := br.ReadPair()
			if err != nil {
				if err == io.EOF {
					break
				}
				br.Close()
				return nil, err
			}
			out = append(out, p)
		}
		if err := br.Close(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReadAllDeltas reads every delta record of path across all blocks.
func (fs *FS) ReadAllDeltas(path string) ([]kv.Delta, error) {
	fi, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	var out []kv.Delta
	for i := range fi.Blocks {
		br, err := fs.OpenBlock(path, i)
		if err != nil {
			return nil, err
		}
		for {
			d, err := br.ReadDelta()
			if err != nil {
				if err == io.EOF {
					break
				}
				br.Close()
				return nil, err
			}
			out = append(out, d)
		}
		if err := br.Close(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteAllPairs creates path holding exactly ps.
func (fs *FS) WriteAllPairs(path string, ps []kv.Pair) error {
	w, err := fs.Create(path)
	if err != nil {
		return err
	}
	for _, p := range ps {
		if err := w.WritePair(p); err != nil {
			return err
		}
	}
	return w.Close()
}

// WriteAllDeltas creates path holding exactly ds.
func (fs *FS) WriteAllDeltas(path string, ds []kv.Delta) error {
	w, err := fs.Create(path)
	if err != nil {
		return err
	}
	for _, d := range ds {
		if err := w.WriteDelta(d); err != nil {
			return err
		}
	}
	return w.Close()
}
