package dfs

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"i2mapreduce/internal/kv"
)

func newFS(t *testing.T, cfg Config) *FS {
	t.Helper()
	if cfg.Root == "" {
		cfg.Root = t.TempDir()
	}
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestNewRequiresRoot(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without root succeeded")
	}
}

func TestDefaults(t *testing.T) {
	fs := newFS(t, Config{Replication: 9})
	if fs.BlockSize() != DefaultBlockSize {
		t.Fatalf("BlockSize = %d", fs.BlockSize())
	}
	// Replication capped at Nodes (1).
	if fs.cfg.Replication != 1 {
		t.Fatalf("Replication = %d, want 1", fs.cfg.Replication)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t, Config{})
	want := []kv.Pair{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}, {Key: "c", Value: "3"}}
	if err := fs.WriteAllPairs("data", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAllPairs("data")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip = %v, want %v", got, want)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	fs := newFS(t, Config{})
	want := []kv.Delta{
		{Key: "a", Value: "1", Op: kv.OpInsert},
		{Key: "b", Value: "2", Op: kv.OpDelete},
	}
	if err := fs.WriteAllDeltas("delta", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAllDeltas("delta")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip = %v, want %v", got, want)
	}
}

func TestBlockSplittingAtRecordBoundaries(t *testing.T) {
	fs := newFS(t, Config{BlockSize: 64, Nodes: 3})
	var want []kv.Pair
	for i := 0; i < 100; i++ {
		want = append(want, kv.Pair{Key: fmt.Sprintf("key-%03d", i), Value: "value"})
	}
	if err := fs.WriteAllPairs("big", want); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("big")
	if err != nil {
		t.Fatal(err)
	}
	if len(fi.Blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(fi.Blocks))
	}
	if fi.Records != 100 {
		t.Fatalf("Records = %d", fi.Records)
	}
	// Every block independently decodable and in order.
	var got []kv.Pair
	var total int64
	for i, b := range fi.Blocks {
		if b.Index != i {
			t.Fatalf("block %d has Index %d", i, b.Index)
		}
		br, err := fs.OpenBlock("big", i)
		if err != nil {
			t.Fatal(err)
		}
		n := int64(0)
		for {
			p, err := br.ReadPair()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, p)
			n++
		}
		br.Close()
		if n != b.Records {
			t.Fatalf("block %d decoded %d records, metadata says %d", i, n, b.Records)
		}
		total += n
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("concatenated blocks differ from written records")
	}
	if total != fi.Records {
		t.Fatalf("blocks total %d records, file says %d", total, fi.Records)
	}
}

func TestPlacementRoundRobinWithReplication(t *testing.T) {
	fs := newFS(t, Config{BlockSize: 32, Nodes: 4, Replication: 2})
	var ps []kv.Pair
	for i := 0; i < 40; i++ {
		ps = append(ps, kv.Pair{Key: fmt.Sprintf("k%02d", i), Value: "vvvvvvvv"})
	}
	if err := fs.WriteAllPairs("f", ps); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("f")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, b := range fi.Blocks {
		if len(b.Nodes) != 2 {
			t.Fatalf("block %d has %d replicas", b.Index, len(b.Nodes))
		}
		for _, n := range b.Nodes {
			if n < 0 || n >= 4 {
				t.Fatalf("replica node %d out of range", n)
			}
			seen[n] = true
		}
		if b.Nodes[0] == b.Nodes[1] {
			t.Fatalf("block %d replicas on same node", b.Index)
		}
	}
	if len(fi.Blocks) >= 4 && len(seen) < 4 {
		t.Errorf("placement used %d of 4 nodes over %d blocks", len(seen), len(fi.Blocks))
	}
}

func TestStatMissing(t *testing.T) {
	fs := newFS(t, Config{})
	if _, err := fs.Stat("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Stat(missing) = %v, want ErrNotExist", err)
	}
}

func TestDelete(t *testing.T) {
	fs := newFS(t, Config{})
	if err := fs.WriteAllPairs("gone", []kv.Pair{{Key: "a"}}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("gone"); !errors.Is(err, ErrNotExist) {
		t.Fatal("file still visible after delete")
	}
	if err := fs.Delete("gone"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double delete = %v, want ErrNotExist", err)
	}
}

func TestList(t *testing.T) {
	fs := newFS(t, Config{})
	for _, p := range []string{"b", "a", "c"} {
		if err := fs.WriteAllPairs(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("List = %v", got)
	}
}

func TestOverwriteReplacesContent(t *testing.T) {
	fs := newFS(t, Config{})
	if err := fs.WriteAllPairs("f", []kv.Pair{{Key: "old"}}); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAllPairs("f", []kv.Pair{{Key: "new1"}, {Key: "new2"}}); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAllPairs("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Key != "new1" {
		t.Fatalf("after overwrite = %v", got)
	}
}

func TestAbandonedWriterInvisible(t *testing.T) {
	fs := newFS(t, Config{})
	w, err := fs.Create("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePair(kv.Pair{Key: "x"}); err != nil {
		t.Fatal(err)
	}
	// Never closed: file must not be visible.
	if _, err := fs.Stat("ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatal("abandoned writer produced a visible file")
	}
}

func TestWriteAfterClose(t *testing.T) {
	fs := newFS(t, Config{})
	w, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePair(kv.Pair{Key: "x"}); err == nil {
		t.Fatal("WritePair after Close succeeded")
	}
	if err := w.WriteDelta(kv.Delta{Key: "x", Op: kv.OpInsert}); err == nil {
		t.Fatal("WriteDelta after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}

func TestEmptyFileCommits(t *testing.T) {
	fs := newFS(t, Config{})
	if err := fs.WriteAllPairs("empty", nil); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(fi.Blocks) != 0 || fi.Records != 0 {
		t.Fatalf("empty file metadata = %+v", fi)
	}
	got, err := fs.ReadAllPairs("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file read = %v", got)
	}
}

func TestOpenBlockOutOfRange(t *testing.T) {
	fs := newFS(t, Config{})
	if err := fs.WriteAllPairs("f", []kv.Pair{{Key: "a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.OpenBlock("f", 5); err == nil {
		t.Fatal("OpenBlock(5) on 1-block file succeeded")
	}
	if _, err := fs.OpenBlock("f", -1); err == nil {
		t.Fatal("OpenBlock(-1) succeeded")
	}
}

func TestPathEncodingKeepsSlashesFlat(t *testing.T) {
	fs := newFS(t, Config{})
	if err := fs.WriteAllPairs("dir/sub/file", []kv.Pair{{Key: "k"}}); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAllPairs("dir/sub/file")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "k" {
		t.Fatalf("nested path read = %v", got)
	}
}

func TestCloneCopiesBlocksWithoutReencoding(t *testing.T) {
	fs := newFS(t, Config{BlockSize: 64, Nodes: 3})
	var ps []kv.Pair
	for i := 0; i < 50; i++ {
		ps = append(ps, kv.Pair{Key: fmt.Sprintf("k%03d", i), Value: "value"})
	}
	if err := fs.WriteAllPairs("src", ps); err != nil {
		t.Fatal(err)
	}
	if err := fs.Clone("src", "dst"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAllPairs("dst")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ps) {
		t.Fatalf("cloned content differs: %v", got)
	}
	sfi, _ := fs.Stat("src")
	dfi, err := fs.Stat("dst")
	if err != nil {
		t.Fatal(err)
	}
	if dfi.Bytes != sfi.Bytes || dfi.Records != sfi.Records || len(dfi.Blocks) != len(sfi.Blocks) {
		t.Fatalf("clone metadata %+v differs from source %+v", dfi, sfi)
	}
	// Cloning over an existing file replaces it atomically.
	if err := fs.WriteAllPairs("dst2", []kv.Pair{{Key: "old"}}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Clone("src", "dst2"); err != nil {
		t.Fatal(err)
	}
	got2, err := fs.ReadAllPairs("dst2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, ps) {
		t.Fatalf("re-clone content differs: %v", got2)
	}
	// Cloning a missing file reports ErrNotExist.
	if err := fs.Clone("nope", "x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Clone of missing file: %v", err)
	}
}

func TestWriterAbortLeavesPreviousFile(t *testing.T) {
	fs := newFS(t, Config{})
	if err := fs.WriteAllPairs("f", []kv.Pair{{Key: "old", Value: "1"}}); err != nil {
		t.Fatal(err)
	}
	w, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePair(kv.Pair{Key: "new", Value: "2"}); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	got, err := fs.ReadAllPairs("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "old" {
		t.Fatalf("aborted write changed the file: %v", got)
	}
	// Abort after Close is a no-op and does not disturb the commit.
	w2, err := fs.Create("f2")
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.WritePair(kv.Pair{Key: "k", Value: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w2.Abort()
	if got, err := fs.ReadAllPairs("f2"); err != nil || len(got) != 1 {
		t.Fatalf("Abort after Close disturbed the file: %v %v", got, err)
	}
}
