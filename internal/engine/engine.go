// Package engine defines the uniform per-refresh contract the
// processing engines share. The one-step engine (internal/incr), the
// incremental-iterative engine (internal/core), and ad-hoc recompute
// closures all present a refresh as the same operation — "apply this
// delta input, give me the cost evidence" — so the refresh planner
// (internal/plan), the serving layer (internal/serve), and the CLIs can
// dispatch engines uniformly instead of type-switching on them.
//
// The package sits below the engines in the import graph (it depends
// only on internal/metrics), which is what lets both engines implement
// Refresher without a cycle.
package engine

import (
	"sync"
	"time"

	"i2mapreduce/internal/metrics"
)

// Refresh modes. These are the planner's decision space and the Mode
// strings stamped on RefreshResult.
const (
	// ModeRecompute runs the computation from scratch over the merged
	// input (for the iterative engine: a full-pass loop that ignores the
	// preserved MRBG state while recomputing).
	ModeRecompute = "recompute"
	// ModeOneStep is the one-step fine-grain incremental refresh
	// (incr.Runner.RunDelta).
	ModeOneStep = "onestep"
	// ModeIncremental is the incremental-iterative refresh with change
	// propagation control (core.Runner.RunIncremental).
	ModeIncremental = "incremental"
)

// Refresher is the unified refresh interface. Refresh applies one delta
// input (a path understood by the engine; the output argument names
// where refreshed results go, and engines that publish to fixed
// locations may ignore it) and returns the observed cost evidence.
// Implementations are not safe for concurrent Refresh calls — refreshes
// are serialized by the caller (see serve.Server.Refresh).
type Refresher interface {
	Refresh(deltaInput, output string) (*RefreshResult, error)
	Stats() Stats
}

// RefreshResult is the evidence one refresh produced: which mode ran,
// how long it took, and the engine's metrics report. The planner feeds
// these back into its cost model.
type RefreshResult struct {
	// Mode is the engine mode that ran (ModeRecompute / ModeOneStep /
	// ModeIncremental).
	Mode string
	// Report is the engine's metrics for the refresh.
	Report *metrics.Report
	// Wall is the end-to-end wall time of the refresh.
	Wall time.Duration
	// DeltaRecords is the number of delta records the refresh consumed.
	DeltaRecords int64
	// Iterations and Converged are set by the iterative engine; a
	// one-step refresh reports Iterations == 0.
	Iterations int
	Converged  bool
	// Output is where the refreshed results were published (empty when
	// the engine publishes to its configured location).
	Output string
}

// Stats summarizes the refreshes a Refresher has served.
type Stats struct {
	// Mode is the mode of the most recent refresh.
	Mode string
	// Refreshes counts completed (successful) refreshes.
	Refreshes int64
	// LastWall / TotalWall are the wall time of the most recent refresh
	// and the sum over all of them.
	LastWall  time.Duration
	TotalWall time.Duration
	// LastDeltaRecords is the delta size of the most recent refresh.
	LastDeltaRecords int64
}

// StatsTracker accumulates Stats. Embed one in a Refresher and call
// Observe with each successful result; Snapshot serves Stats().
// Safe for concurrent use.
type StatsTracker struct {
	mu sync.Mutex
	s  Stats
}

// Observe folds one successful refresh into the stats.
func (t *StatsTracker) Observe(res *RefreshResult) {
	if res == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.s.Mode = res.Mode
	t.s.Refreshes++
	t.s.LastWall = res.Wall
	t.s.TotalWall += res.Wall
	t.s.LastDeltaRecords = res.DeltaRecords
}

// Snapshot returns the accumulated stats.
func (t *StatsTracker) Snapshot() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.s
}

// Func adapts a closure to Refresher. The planner uses it for the
// recompute arm when recompute is not a method on an engine (e.g. "run
// a fresh initial job over the merged input").
type Func struct {
	// Mode stamps results (defaults to ModeRecompute).
	Mode string
	// Fn performs the refresh and returns its report (may be nil) and
	// the delta record count it consumed.
	Fn func(deltaInput, output string) (*metrics.Report, int64, error)

	stats StatsTracker
}

// Refresh runs Fn, timing it and stamping the result.
func (f *Func) Refresh(deltaInput, output string) (*RefreshResult, error) {
	mode := f.Mode
	if mode == "" {
		mode = ModeRecompute
	}
	start := time.Now()
	rep, deltaRecords, err := f.Fn(deltaInput, output)
	if err != nil {
		return nil, err
	}
	res := &RefreshResult{
		Mode:         mode,
		Report:       rep,
		Wall:         time.Since(start),
		DeltaRecords: deltaRecords,
		Output:       output,
	}
	f.stats.Observe(res)
	return res, nil
}

// Stats returns the refreshes served through this Func.
func (f *Func) Stats() Stats { return f.stats.Snapshot() }
