// Package fsutil holds the durable-file-commit helper shared by the
// stores' manifest and metadata writers (MRBG-Store meta, result-store
// manifests, the one-step engine's job meta and refresh markers).
package fsutil

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic durably commits data to path: write to a temp file in
// the same directory, fsync it, rename it into place, and fsync the
// directory so the rename survives a crash. Readers never observe a
// partially written file.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// RenameCommit atomically commits an already-durable temp file (or
// directory tree) to path: rename into place, then fsync the parent
// directory so the rename survives a crash. It is the streamed-writer
// counterpart to WriteFileAtomic — the caller has already written and
// fsynced tmp (typically through a bufio.Writer too large to buffer in
// memory) and only the commit itself remains.
func RenameCommit(tmp, path string) error {
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory, making a completed rename inside it
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
