package incr

import (
	"fmt"
	"reflect"
	"testing"

	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/results"
)

// TestRefreshByteIdenticalAcrossSegmentFormats is the acceptance sweep
// for the block segment format: the same initial + delta sequence must
// produce byte-identical result sets at every block size and codec, at
// budgets that do and don't force shuffle spilling, and across a
// kill-and-Open restart — including restarts that REOPEN the preserved
// stores under different format knobs than they were written with
// (reads auto-detect each segment's format; only new segments use the
// new knobs).
func TestRefreshByteIdenticalAcrossSegmentFormats(t *testing.T) {
	const parts = 3
	initial, deltas, snapshots := graphRounds(13, 35, 2)

	type config struct {
		write  results.Options // segment knobs for the initial run
		reopen results.Options // segment knobs after the restart
		budget int64
	}
	configs := []config{
		{}, // defaults throughout: 32 KiB blocks, no compression
		{
			write:  results.Options{BlockBytes: 4 << 10, Compression: "flate"},
			reopen: results.Options{BlockBytes: 256 << 10, Compression: "none"},
			budget: 1, // spill on every emit
		},
		{
			write:  results.Options{BlockBytes: 256 << 10, Compression: "none", BloomBitsPerKey: 4},
			reopen: results.Options{BlockBytes: 4 << 10, Compression: "flate", BloomBitsPerKey: -1},
			budget: 4 << 10,
		},
	}

	var want [][]kv.Pair // per-round baseline outputs from configs[0]
	for ci, cfg := range configs {
		label := fmt.Sprintf("config %d", ci)
		root := t.TempDir()
		job := Job{
			Name: "segfmt", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer,
			NumReducers: parts, ShuffleMemoryBudget: cfg.budget, ResultOpts: cfg.write,
		}

		eng := engineAt(t, root, 2)
		if err := eng.FS().WriteAllPairs("g0", initial); err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(eng, job)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunInitial("g0", "o0"); err != nil {
			t.Fatalf("%s: initial: %v", label, err)
		}
		if err := eng.FS().WriteAllDeltas("d0", deltas[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunDelta("d0", "o1"); err != nil {
			t.Fatalf("%s: d0: %v", label, err)
		}
		round0 := outs(t, r)
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}

		// "Kill": reattach over the preserved stores, under the reopen
		// knobs, and refresh the second delta.
		eng2 := engineAt(t, root, 2)
		job.ResultOpts = cfg.reopen
		r2, err := Open(eng2, job)
		if err != nil {
			t.Fatalf("%s: Open after restart: %v", label, err)
		}
		if got := outs(t, r2); !reflect.DeepEqual(got, round0) {
			t.Fatalf("%s: resumed outputs differ from pre-kill outputs", label)
		}
		if err := eng2.FS().WriteAllDeltas("d1", deltas[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := r2.RunDelta("d1", "o2"); err != nil {
			t.Fatalf("%s: d1 after restart: %v", label, err)
		}
		round1 := outs(t, r2)

		if ci == 0 {
			want = [][]kv.Pair{round0, round1}
		} else {
			if !reflect.DeepEqual(round0, want[0]) {
				t.Fatalf("%s: round 0 outputs differ from baseline", label)
			}
			if !reflect.DeepEqual(round1, want[1]) {
				t.Fatalf("%s: round 1 outputs differ from baseline", label)
			}
		}

		// Anchor: the final refreshed state matches a from-scratch
		// recompute of the final dataset.
		var full []kv.Pair
		for k, v := range snapshots[1] {
			full = append(full, kv.Pair{Key: k, Value: v})
		}
		kv.SortPairs(full)
		if err := eng2.FS().WriteAllPairs("gfinal", full); err != nil {
			t.Fatal(err)
		}
		wantMap := recompute(t, eng2, "gfinal", parts)
		if got := outputsAsMap(round1); !reflect.DeepEqual(got, wantMap) {
			t.Fatalf("%s: final outputs = %v, want %v", label, got, wantMap)
		}
		r2.Close()
	}
}
