package incr

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
)

// engineAt builds an engine rooted at a fixed directory, so a test can
// simulate a process restart by constructing a second engine over the
// same scratch root (the DFS namespace is per-process, as in the real
// system a fresh job would re-ingest its inputs; the preserved MRBG and
// result stores live under the cluster scratch dirs and survive).
func engineAt(t *testing.T, root string, nodes int) *mr.Engine {
	t.Helper()
	fs, err := dfs.New(dfs.Config{Root: filepath.Join(root, "dfs"), BlockSize: 256, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, SlotsPerNode: 2, ScratchRoot: filepath.Join(root, "scratch")})
	if err != nil {
		t.Fatal(err)
	}
	return mr.NewEngine(fs, cl)
}

// graphRounds generates a deterministic initial graph plus delta rounds
// (modify / delete / insert), returning the delta of each round and the
// full dataset after each round.
func graphRounds(seed int64, nVertices, rounds int) (initial []kv.Pair, deltas [][]kv.Delta, snapshots []map[string]string) {
	rng := rand.New(rand.NewSource(seed))
	mkValue := func() string {
		n := rng.Intn(3) + 1
		s := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				s += ";"
			}
			s += fmt.Sprintf("%d:%.2f", rng.Intn(nVertices), rng.Float64())
		}
		return s
	}
	current := map[string]string{}
	for i := 0; i < nVertices; i++ {
		current[strconv.Itoa(i)] = mkValue()
	}
	for k, v := range current {
		initial = append(initial, kv.Pair{Key: k, Value: v})
	}
	kv.SortPairs(initial)
	for round := 0; round < rounds; round++ {
		var delta []kv.Delta
		keys := make([]string, 0, len(current))
		for k := range current {
			keys = append(keys, k)
		}
		// Deterministic iteration order for reproducible deltas.
		kvSortStrings(keys)
		for _, k := range keys {
			switch rng.Intn(8) {
			case 0:
				delta = append(delta, kv.Delta{Key: k, Value: current[k], Op: kv.OpDelete})
				delete(current, k)
			case 1, 2:
				nv := mkValue()
				delta = append(delta, kv.Delta{Key: k, Value: current[k], Op: kv.OpDelete})
				delta = append(delta, kv.Delta{Key: k, Value: nv, Op: kv.OpInsert})
				current[k] = nv
			}
		}
		nk := fmt.Sprintf("n%d", nVertices+round)
		nv := mkValue()
		delta = append(delta, kv.Delta{Key: nk, Value: nv, Op: kv.OpInsert})
		current[nk] = nv
		deltas = append(deltas, delta)
		snap := make(map[string]string, len(current))
		for k, v := range current {
			snap[k] = v
		}
		snapshots = append(snapshots, snap)
	}
	return initial, deltas, snapshots
}

func kvSortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// TestDeltaRefreshByteIdenticalAcrossBudgets drives the same delta
// sequence through runners with spilling disabled, forced on every
// record, and at a moderate budget, across partition counts, and
// asserts the refreshed result sets — and the DFS part files — are
// byte-identical everywhere and match a full recompute.
func TestDeltaRefreshByteIdenticalAcrossBudgets(t *testing.T) {
	const nVertices = 40
	const rounds = 3
	initial, deltas, snapshots := graphRounds(7, nVertices, rounds)

	type config struct {
		parts  int
		budget int64
	}
	configs := []config{
		{parts: 3, budget: 0}, // all in memory
		{parts: 3, budget: 1}, // spill on every emit
		{parts: 3, budget: 4 << 10},
		{parts: 1, budget: 1},
		{parts: 2, budget: 256},
	}

	// want[i] holds round i's Outputs() from the first config; every
	// other config must reproduce it exactly.
	var want [][]kv.Pair
	for ci, cfg := range configs {
		eng := newEngine(t, 2)
		if err := eng.FS().WriteAllPairs("g0", initial); err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(eng, Job{
			Name: "equiv", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer,
			NumReducers: cfg.parts, ShuffleMemoryBudget: cfg.budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunInitial("g0", "o0"); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < rounds; round++ {
			dPath := fmt.Sprintf("d%d", round)
			if err := eng.FS().WriteAllDeltas(dPath, deltas[round]); err != nil {
				t.Fatal(err)
			}
			rep, err := r.RunDelta(dPath, fmt.Sprintf("o%d", round+1))
			if err != nil {
				t.Fatalf("config %+v round %d: %v", cfg, round, err)
			}
			spills := rep.Counter(metrics.CounterSpillRuns)
			if cfg.budget == 1 && rep.Counter("delta.edges") > 0 && spills == 0 {
				t.Fatalf("config %+v round %d: budget 1 but no spills", cfg, round)
			}
			if cfg.budget == 0 && spills != 0 {
				t.Fatalf("config %+v round %d: unbounded budget spilled %d runs", cfg, round, spills)
			}
			got := outs(t, r)
			if ci == 0 {
				want = append(want, got)
			} else if !reflect.DeepEqual(got, want[round]) {
				t.Fatalf("config %+v round %d: outputs differ from baseline", cfg, round)
			}
			// DFS part files carry the same refreshed result set.
			ps, err := eng.ReadOutput(fmt.Sprintf("o%d", round+1), cfg.parts)
			if err != nil {
				t.Fatal(err)
			}
			kv.SortPairs(ps)
			if !reflect.DeepEqual(ps, got) {
				t.Fatalf("config %+v round %d: DFS outputs differ from Outputs()", cfg, round)
			}
		}
		// Final state matches a from-scratch recompute of the final
		// dataset.
		var full []kv.Pair
		for k, v := range snapshots[rounds-1] {
			full = append(full, kv.Pair{Key: k, Value: v})
		}
		kv.SortPairs(full)
		if err := eng.FS().WriteAllPairs("gfinal", full); err != nil {
			t.Fatal(err)
		}
		wantMap := recompute(t, eng, "gfinal", cfg.parts)
		if got := outputsAsMap(outs(t, r)); !reflect.DeepEqual(got, wantMap) {
			t.Fatalf("config %+v: final outputs = %v, want %v", cfg, got, wantMap)
		}
		for _, s := range r.Stores() {
			if err := s.VerifyInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		r.Close()
	}
}

// TestRunDeltaRewritesOnlyDirtyPartitions asserts the refresh no longer
// materializes the full result set: a one-record delta re-serializes
// only the partitions its affected K2s live in, republishing the rest
// as block-level clones, and a no-op delta rewrites nothing.
func TestRunDeltaRewritesOnlyDirtyPartitions(t *testing.T) {
	const parts = 4
	eng := newEngine(t, 2)
	var ps []kv.Pair
	for i := 0; i < 200; i++ {
		ps = append(ps, kv.Pair{Key: strconv.Itoa(i), Value: fmt.Sprintf("%d:1.0", (i+1)%200)})
	}
	if err := eng.FS().WriteAllPairs("g", ps); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, Job{
		Name: "dirty", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: parts,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g", "o0"); err != nil {
		t.Fatal(err)
	}

	// One record modified: at most two affected K2s, so at most two
	// dirty partitions out of four.
	delta := []kv.Delta{
		{Key: "5", Value: "6:1.0", Op: kv.OpDelete},
		{Key: "5", Value: "7:2.0", Op: kv.OpInsert},
	}
	if err := eng.FS().WriteAllDeltas("d", delta); err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunDelta("d", "o1")
	if err != nil {
		t.Fatal(err)
	}
	dirty := rep.Counter(metrics.CounterResultDirtyPartitions)
	if dirty < 1 || dirty >= parts {
		t.Fatalf("dirty partitions = %d, want in [1, %d)", dirty, parts)
	}
	rewritten := rep.Counter(metrics.CounterResultBytesRewritten)
	if rewritten <= 0 {
		t.Fatal("no bytes rewritten despite a dirty partition")
	}
	var total int64
	for p := 0; p < parts; p++ {
		fi, err := eng.FS().Stat(mr.PartPath("o1", p))
		if err != nil {
			t.Fatalf("partition %d missing from refreshed output: %v", p, err)
		}
		total += fi.Bytes
	}
	if rewritten >= total {
		t.Fatalf("rewrote %d of %d output bytes; clean partitions were re-serialized", rewritten, total)
	}
	if rep.Counter(metrics.CounterResultSegments) <= 0 {
		t.Fatal("no result segments reported")
	}

	// The cloned partitions still carry correct, complete content.
	full, err := eng.ReadOutput("o1", parts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outputsAsMap(full), outputsAsMap(outs(t, r))) {
		t.Fatal("refreshed DFS output differs from the result stores")
	}

	// An empty delta dirties nothing and rewrites nothing.
	if err := eng.FS().WriteAllDeltas("d-empty", nil); err != nil {
		t.Fatal(err)
	}
	rep, err = r.RunDelta("d-empty", "o2")
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Counter(metrics.CounterResultDirtyPartitions); n != 0 {
		t.Fatalf("empty delta dirtied %d partitions", n)
	}
	if n := rep.Counter(metrics.CounterResultBytesRewritten); n != 0 {
		t.Fatalf("empty delta rewrote %d bytes", n)
	}
	full2, err := eng.ReadOutput("o2", parts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full2, full) {
		t.Fatal("cloned no-op output differs from previous output")
	}
}

// TestOpenResumesAfterRestart kills the runner (Close + a brand-new
// engine over the same scratch root, with a fresh DFS namespace) and
// asserts Open reattaches to the preserved MRBG and result stores with
// an identical result set, and that further deltas refresh correctly.
func TestOpenResumesAfterRestart(t *testing.T) {
	root := t.TempDir()
	const parts = 3
	initial, deltas, snapshots := graphRounds(21, 30, 2)

	job := Job{Name: "resume", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: parts}

	eng := engineAt(t, root, 2)
	if err := eng.FS().WriteAllPairs("g0", initial); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("g0", "o0"); err != nil {
		t.Fatal(err)
	}
	if err := eng.FS().WriteAllDeltas("d0", deltas[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunDelta("d0", "o1"); err != nil {
		t.Fatal(err)
	}
	preRestart := outs(t, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new engine over the same roots. The DFS namespace is
	// fresh; the preserved stores under the scratch dirs survive.
	eng2 := engineAt(t, root, 2)
	r2, err := Open(eng2, job)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := outs(t, r2); !reflect.DeepEqual(got, preRestart) {
		t.Fatalf("resumed outputs differ:\n got %v\nwant %v", got, preRestart)
	}

	// A RunInitial on the resumed state must be refused.
	if _, err := r2.RunInitial("g0", "oX"); err == nil {
		t.Fatal("RunInitial succeeded on a resumed runner")
	}

	// The resumed runner keeps refreshing correctly.
	if err := eng2.FS().WriteAllDeltas("d1", deltas[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.RunDelta("d1", "o2"); err != nil {
		t.Fatal(err)
	}
	var full []kv.Pair
	for k, v := range snapshots[1] {
		full = append(full, kv.Pair{Key: k, Value: v})
	}
	kv.SortPairs(full)
	if err := eng2.FS().WriteAllPairs("gfinal", full); err != nil {
		t.Fatal(err)
	}
	want := recompute(t, eng2, "gfinal", parts)
	if got := outputsAsMap(outs(t, r2)); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-restart refresh = %v, want %v", got, want)
	}
	// The refreshed DFS output is complete even though the pre-restart
	// part files are gone from the fresh namespace (clean partitions
	// fall back to a full write).
	ps, err := eng2.ReadOutput("o2", parts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outputsAsMap(ps), want) {
		t.Fatal("post-restart DFS output incomplete")
	}
	for _, s := range r2.Stores() {
		if err := s.VerifyInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOpenAccumulatorResumes covers resume for accumulator jobs, which
// preserve only the result stores (no MRBGraph).
func TestOpenAccumulatorResumes(t *testing.T) {
	root := t.TempDir()
	job := Job{
		Name: "acc-resume",
		Mapper: mr.MapperFunc(func(k, v string, emit mr.Emit) error {
			emit(v, "1")
			return nil
		}),
		Reducer: mr.ReducerFunc(func(k string, vs []string, emit mr.Emit) error {
			emit(k, strconv.Itoa(len(vs)))
			return nil
		}),
		Accumulate: func(old, new string) string {
			a, _ := strconv.Atoi(old)
			b, _ := strconv.Atoi(new)
			return strconv.Itoa(a + b)
		},
		NumReducers: 2,
	}
	eng := engineAt(t, root, 2)
	if err := eng.FS().WriteAllPairs("in", []kv.Pair{
		{Key: "1", Value: "x"}, {Key: "2", Value: "y"}, {Key: "3", Value: "x"},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("in", "o0"); err != nil {
		t.Fatal(err)
	}
	r.Close()

	eng2 := engineAt(t, root, 2)
	r2, err := Open(eng2, job)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := eng2.FS().WriteAllDeltas("d", []kv.Delta{
		{Key: "4", Value: "x", Op: kv.OpInsert},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.RunDelta("d", "o1"); err != nil {
		t.Fatal(err)
	}
	got := outputsAsMap(outs(t, r2))
	if got["x"] != "3" || got["y"] != "1" {
		t.Fatalf("resumed accumulator counts = %v, want x:3 y:1", got)
	}
}

// TestOpenWithoutPreservedStateFails asserts Open refuses a job that
// never ran (or ran under a different identity).
func TestOpenWithoutPreservedStateFails(t *testing.T) {
	eng := newEngine(t, 2)
	job := Job{Name: "ghost", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: 2}
	if _, err := Open(eng, job); err == nil {
		t.Fatal("Open succeeded with no preserved state")
	}
}

// TestOpenPartitionCountMismatchFails asserts resuming with fewer
// reducers than the job was preserved with is refused rather than
// silently dropping result groups.
func TestOpenPartitionCountMismatchFails(t *testing.T) {
	root := t.TempDir()
	eng := engineAt(t, root, 2)
	job := Job{Name: "pmis", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: 4}
	if err := eng.FS().WriteAllPairs("g", []kv.Pair{{Key: "0", Value: "1:1.0"}}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("g", "o0"); err != nil {
		t.Fatal(err)
	}
	r.Close()

	eng2 := engineAt(t, root, 2)
	job.NumReducers = 2
	if _, err := Open(eng2, job); err == nil {
		t.Fatal("Open succeeded with a smaller partition count")
	}
}

// TestOpenTopologyShrinkFails shrinks the cluster AND the reducer count
// together, so every partition dir the smaller topology derives exists
// and is initialized — only the persisted job meta can catch that the
// preserved state had more partitions.
func TestOpenTopologyShrinkFails(t *testing.T) {
	root := t.TempDir()
	eng := engineAt(t, root, 4)
	job := Job{Name: "shrink", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: 4}
	var ps []kv.Pair
	for i := 0; i < 40; i++ {
		ps = append(ps, kv.Pair{Key: strconv.Itoa(i), Value: fmt.Sprintf("%d:1.0", (i+1)%40)})
	}
	if err := eng.FS().WriteAllPairs("g", ps); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("g", "o0"); err != nil {
		t.Fatal(err)
	}
	r.Close()

	eng2 := engineAt(t, root, 2)
	job.NumReducers = 2
	if _, err := Open(eng2, job); err == nil {
		t.Fatal("Open succeeded after a combined topology+partition shrink; preserved groups would be dropped")
	}
}

// TestSameRecordInsertThenDeleteNetsToDeletion asserts delta-file order
// survives the shuffle for records touching the same (K2, MK): an
// insert followed by a delete of the identical record is a net no-op,
// and a delete followed by a reinsert nets to the insertion — at a
// budget that forces spilling, where value-order alone would decide.
func TestSameRecordInsertThenDeleteNetsToDeletion(t *testing.T) {
	for _, budget := range []int64{0, 1} {
		eng := newEngine(t, 2)
		if err := eng.FS().WriteAllPairs("g", []kv.Pair{
			{Key: "0", Value: "1:1.0"},
			{Key: "9", Value: "2:0.5"},
		}); err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(eng, Job{
			Name: "net", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer,
			NumReducers: 2, ShuffleMemoryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunInitial("g", "o0"); err != nil {
			t.Fatal(err)
		}
		// "3" is inserted then deleted (net nothing); "0" is deleted
		// then reinserted identically (net unchanged).
		delta := []kv.Delta{
			{Key: "3", Value: "4:2.0", Op: kv.OpInsert},
			{Key: "3", Value: "4:2.0", Op: kv.OpDelete},
			{Key: "0", Value: "1:1.0", Op: kv.OpDelete},
			{Key: "0", Value: "1:1.0", Op: kv.OpInsert},
		}
		if err := eng.FS().WriteAllDeltas("d", delta); err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunDelta("d", "o1"); err != nil {
			t.Fatal(err)
		}
		got := outputsAsMap(outs(t, r))
		if _, ok := got["4"]; ok {
			t.Fatalf("budget %d: insert-then-delete resurrected vertex 4: %v", budget, got)
		}
		if got["1"] != "1" {
			t.Fatalf("budget %d: delete-then-reinsert lost vertex 1's in-edge: %v", budget, got)
		}
		r.Close()
	}
}

// TestRunInitialRecoversFromCrashedInitial simulates an initial run
// that died after checkpointing some result stores but before the job
// meta committed: Open must refuse it, and a fresh RunInitial must
// discard the partial state and succeed.
func TestRunInitialRecoversFromCrashedInitial(t *testing.T) {
	root := t.TempDir()
	job := Job{Name: "crashed", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: 2}
	eng := engineAt(t, root, 2)
	if err := eng.FS().WriteAllPairs("g", []kv.Pair{
		{Key: "0", Value: "1:1.0"},
		{Key: "1", Value: "2:2.0"},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("g", "o0"); err != nil {
		t.Fatal(err)
	}
	r.Close()
	// Simulate the crash window: completion marker gone, stores remain.
	if err := os.Remove(r.jobMetaPath()); err != nil {
		t.Fatal(err)
	}

	// The corrected input no longer contains vertex 1's record, so the
	// aborted attempt's preserved chunks (K2s "1" and "2") are stale.
	eng2 := engineAt(t, root, 2)
	if err := eng2.FS().WriteAllPairs("g2", []kv.Pair{
		{Key: "0", Value: "3:1.5"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(eng2, job); err == nil {
		t.Fatal("Open succeeded without the completion marker")
	}
	r2, err := NewRunner(eng2, job)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, err := r2.RunInitial("g2", "o0"); err != nil {
		t.Fatalf("RunInitial after crashed initial: %v", err)
	}
	want := recompute(t, eng2, "g2", 2)
	if got := outputsAsMap(outs(t, r2)); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered initial = %v, want %v", got, want)
	}
	// A delta touching a K2 that was live only in the aborted attempt
	// must not join against its phantom preserved edges.
	if err := eng2.FS().WriteAllDeltas("d", []kv.Delta{
		{Key: "5", Value: "2:1.0", Op: kv.OpInsert},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.RunDelta("d", "o1"); err != nil {
		t.Fatal(err)
	}
	got := outputsAsMap(outs(t, r2))
	if got["2"] != "1" {
		t.Fatalf("vertex 2 sum = %q after refresh, want 1 (phantom edges from the aborted initial?)", got["2"])
	}
}

// TestOpenRefusesHalfAppliedRefresh simulates a crash between a
// partition's MRBGraph checkpoint and its result-store checkpoint (the
// surviving refresh.intent marker) and asserts Open refuses to resume
// the inconsistent pair.
func TestOpenRefusesHalfAppliedRefresh(t *testing.T) {
	root := t.TempDir()
	job := Job{Name: "torn", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: 2}
	eng := engineAt(t, root, 2)
	if err := eng.FS().WriteAllPairs("g", []kv.Pair{{Key: "0", Value: "1:1.0"}}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("g", "o0"); err != nil {
		t.Fatal(err)
	}
	r.Close()
	// Plant the marker a dying reduce task would have left behind.
	if err := os.WriteFile(r.refreshIntentPath(1), []byte("refresh\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng2 := engineAt(t, root, 2)
	if _, err := Open(eng2, job); err == nil {
		t.Fatal("Open resumed a partition with a half-applied refresh")
	}
}

// TestOpenModeMismatchFails asserts a job preserved fine-grain cannot
// be resumed as an accumulator job (or vice versa): the two modes
// interpret the result-store groups differently.
func TestOpenModeMismatchFails(t *testing.T) {
	root := t.TempDir()
	job := Job{Name: "mode", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: 2}
	eng := engineAt(t, root, 2)
	if err := eng.FS().WriteAllPairs("g", []kv.Pair{{Key: "0", Value: "1:1.0"}}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("g", "o0"); err != nil {
		t.Fatal(err)
	}
	r.Close()

	eng2 := engineAt(t, root, 2)
	job.Accumulate = func(old, new string) string { return new }
	if _, err := Open(eng2, job); err == nil {
		t.Fatal("Open resumed a fine-grain job in accumulator mode")
	}
}
