// Package incr implements fine-grain incremental processing for
// one-step MapReduce computation (paper Sec. 3).
//
// A Runner owns one logical computation across a sequence of input
// versions. RunInitial executes a normal MapReduce job while preserving
// the MRBGraph — each reduce task transfers the globally unique Map key
// MK through the shuffle and saves its (K2, MK, V2) edges into a
// per-task MRBG-Store. RunDelta then refreshes the results from a delta
// input: it invokes Map only on inserted/deleted records, turns the
// outputs into a delta MRBGraph, merges it with the preserved states,
// and re-invokes Reduce only for affected K2s.
//
// The accumulator-Reduce optimization (Sec. 3.5) is supported: when the
// job declares an Accumulate function and deltas contain only
// insertions, no MRBGraph is preserved at all — only the final
// <K3, V3> outputs, which the accumulator updates in place.
package incr

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
	"i2mapreduce/internal/mrbg"
)

// Job describes an incrementally refreshable one-step computation.
type Job struct {
	// Name labels store directories and task names.
	Name string
	// Mapper and Reducer carry exactly the vanilla MapReduce
	// semantics; the engine wraps them for state preservation.
	Mapper  mr.Mapper
	Reducer mr.Reducer
	// NumReducers defaults to the cluster node count.
	NumReducers int
	// Accumulate, when non-nil, declares the Reduce an accumulator
	// (paper Sec. 3.5): Reduce output values for the same K3 combine
	// with ⊕ = Accumulate. Deltas must then contain only insertions,
	// and the engine preserves only Reduce outputs, not the MRBGraph.
	Accumulate func(old, new string) string
	// StoreOpts templates the per-partition MRBG-Store options
	// (Dir is filled in per partition).
	StoreOpts mrbg.Options
}

// Runner executes and refreshes one Job.
type Runner struct {
	eng    *mr.Engine
	job    Job
	stores []*mrbg.ShardedStore
	// outputs[r] maps a reduce input key K2 to the output pairs its
	// Reduce call emitted; replacing a K2's group replaces exactly
	// those outputs. For accumulator jobs outputs[r] maps K3 to a
	// single accumulated pair.
	outputs []map[string][]kv.Pair
	initial bool
	mu      sync.Mutex
}

// NewRunner prepares a runner; per-partition MRBG-Stores are created
// under the node scratch dir of the node that will host each reduce
// task (co-location, as the paper preserves states at the reduce side).
func NewRunner(eng *mr.Engine, job Job) (*Runner, error) {
	if job.Name == "" {
		return nil, errors.New("incr: job requires a Name")
	}
	if job.Mapper == nil || job.Reducer == nil {
		return nil, errors.New("incr: job requires Mapper and Reducer")
	}
	if job.NumReducers <= 0 {
		job.NumReducers = eng.Cluster().NumNodes()
	}
	r := &Runner{
		eng:     eng,
		job:     job,
		outputs: make([]map[string][]kv.Pair, job.NumReducers),
	}
	for i := range r.outputs {
		r.outputs[i] = make(map[string][]kv.Pair)
	}
	if job.Accumulate == nil {
		for p := 0; p < job.NumReducers; p++ {
			node := eng.Cluster().NodeByID(p % eng.Cluster().NumNodes())
			opts := job.StoreOpts
			opts.Dir = filepath.Join(node.ScratchDir, "mrbg", sanitize(job.Name), fmt.Sprintf("part-%04d", p))
			st, err := mrbg.Open(opts)
			if err != nil {
				return nil, fmt.Errorf("incr: opening store %d: %w", p, err)
			}
			r.stores = append(r.stores, st)
		}
	}
	return r, nil
}

func sanitize(s string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			return c
		}
		return '_'
	}, s)
}

// Close releases the per-partition stores.
func (r *Runner) Close() error {
	var first error
	for _, s := range r.stores {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stores exposes the per-partition MRBG-Stores (nil for accumulator
// jobs); the Table 4 harness reads their statistics.
func (r *Runner) Stores() []*mrbg.ShardedStore { return r.stores }

// mkFor derives the globally unique Map key for the occ-th value a Map
// instance emits to one K2. The paper treats (K2, MK) as a unique edge
// id; a Map call that emits several values to the same K2 (WordCount
// emitting the same word twice from one line) would collide, so the
// occurrence index is folded in. The derivation depends only on the
// input record and the Map function's deterministic emission order, so
// a delta deletion regenerates exactly the MKs of the original run.
func mkFor(base uint64, occ uint32) uint64 {
	return kv.Mix64(base + uint64(occ)*0x9e3779b97f4a7c15)
}

// occTracker numbers repeated emissions to the same K2 within one Map
// call.
type occTracker map[string]uint32

func (o occTracker) next(k2 string) uint32 {
	n := o[k2]
	o[k2] = n + 1
	return n
}

// encodeMKV packs (MK, V2) into a shuffle value so the engine can
// transfer MK alongside V2 (paper Sec. 3.3: "the engine transfers the
// globally unique MK along with <K2,V2> during the shuffle phase").
// The fixed-width hex MK keeps values of one K2 sorted by MK.
func encodeMKV(mk uint64, v2 string) string {
	return fmt.Sprintf("%016x:%s", mk, v2)
}

// decodeMKV unpacks a shuffle value produced by encodeMKV.
func decodeMKV(s string) (uint64, string, error) {
	if len(s) < 17 || s[16] != ':' {
		return 0, "", fmt.Errorf("incr: malformed MK-tagged value %q", s)
	}
	mk, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return 0, "", fmt.Errorf("incr: malformed MK in %q: %v", s, err)
	}
	return mk, s[17:], nil
}

// RunInitial executes the full computation on input (a DFS pair file),
// preserves state, and writes outputs under the output path prefix.
func (r *Runner) RunInitial(input, output string) (*metrics.Report, error) {
	if r.initial {
		return nil, errors.New("incr: RunInitial called twice; use RunDelta for refreshes")
	}

	var rep *metrics.Report
	var err error
	if r.job.Accumulate != nil {
		rep, err = r.runInitialAccumulator(input, output)
	} else {
		rep, err = r.runInitialFineGrain(input, output)
	}
	if err != nil {
		return nil, err
	}
	r.initial = true
	return rep, nil
}

// runInitialFineGrain runs a normal MapReduce job with MK-tagged
// intermediate values, capturing chunks into the MRBG-Stores.
func (r *Runner) runInitialFineGrain(input, output string) (*metrics.Report, error) {
	userMap := r.job.Mapper
	wrappedMapper := mr.MapperFunc(func(k1, v1 string, emit mr.Emit) error {
		base := kv.Fingerprint(k1, v1)
		occ := occTracker{}
		return userMap.Map(k1, v1, func(k2, v2 string) {
			emit(k2, encodeMKV(mkFor(base, occ.next(k2)), v2))
		})
	})

	job := mr.Job{
		Name:        r.job.Name + "-initial",
		Input:       input,
		Output:      output,
		Mapper:      wrappedMapper,
		NumReducers: r.job.NumReducers,
		ReducerFactory: func(p int) mr.Reducer {
			return mr.ReducerFunc(func(k2 string, tagged []string, emit mr.Emit) error {
				chunk := mrbg.Chunk{Key: k2}
				for _, tv := range tagged {
					mk, v2, err := decodeMKV(tv)
					if err != nil {
						return err
					}
					chunk.Edges = append(chunk.Edges, mrbg.Edge{MK: mk, V2: v2})
				}
				// Values arrive MK-sorted per map-task run but only
				// key-merged across runs; restore the store's global
				// MK order and derive the Reduce value list from it so
				// re-reduction after a merge sees the same ordering.
				sort.Slice(chunk.Edges, func(i, j int) bool { return chunk.Edges[i].MK < chunk.Edges[j].MK })
				vals := chunk.Values()
				if err := r.stores[p].Put(chunk); err != nil {
					return err
				}
				var outs []kv.Pair
				err := r.job.Reducer.Reduce(k2, vals, func(k3, v3 string) {
					outs = append(outs, kv.Pair{Key: k3, Value: v3})
					emit(k3, v3)
				})
				if err != nil {
					return err
				}
				r.mu.Lock()
				r.outputs[p][k2] = outs
				r.mu.Unlock()
				return nil
			})
		},
	}
	rep, err := r.eng.Run(job)
	if err != nil {
		return nil, err
	}
	for _, s := range r.stores {
		if err := s.CommitBatch(); err != nil {
			return nil, err
		}
		if err := s.Checkpoint(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// runInitialAccumulator runs a plain job and preserves only outputs.
func (r *Runner) runInitialAccumulator(input, output string) (*metrics.Report, error) {
	job := mr.Job{
		Name:        r.job.Name + "-initial",
		Input:       input,
		Output:      output,
		Mapper:      r.job.Mapper,
		NumReducers: r.job.NumReducers,
		ReducerFactory: func(p int) mr.Reducer {
			return mr.ReducerFunc(func(k2 string, vals []string, emit mr.Emit) error {
				var outs []kv.Pair
				err := r.job.Reducer.Reduce(k2, vals, func(k3, v3 string) {
					outs = append(outs, kv.Pair{Key: k3, Value: v3})
					emit(k3, v3)
				})
				if err != nil {
					return err
				}
				r.mu.Lock()
				for _, o := range outs {
					r.outputs[p][o.Key] = []kv.Pair{o}
				}
				r.mu.Unlock()
				return nil
			})
		},
	}
	return r.eng.Run(job)
}

// RunDelta refreshes the computation from a delta input (a DFS delta
// file with '+'/'-' records) and writes the full refreshed outputs
// under the output path prefix.
func (r *Runner) RunDelta(deltaInput, output string) (*metrics.Report, error) {
	if !r.initial {
		return nil, errors.New("incr: RunDelta before RunInitial")
	}
	if r.job.Accumulate != nil {
		return r.runDeltaAccumulator(deltaInput, output)
	}
	return r.runDeltaFineGrain(deltaInput, output)
}

// mapDelta runs the incremental Map computation: Map is invoked for
// every delta record, and the emitted edges are partitioned by K2 into
// per-partition delta MRBGraphs (paper Sec. 3.3, "Incremental Map
// Computation to Obtain the Delta MRBGraph").
func (r *Runner) mapDelta(deltaInput string, rep *metrics.Report) ([][]mrbg.DeltaEdge, error) {
	fi, err := r.eng.FS().Stat(deltaInput)
	if err != nil {
		return nil, fmt.Errorf("incr: delta input: %w", err)
	}
	parts := make([][]mrbg.DeltaEdge, r.job.NumReducers)
	var mu sync.Mutex

	tasks := make([]cluster.Task, 0, len(fi.Blocks))
	for b := range fi.Blocks {
		b := b
		pref := -1
		if len(fi.Blocks[b].Nodes) > 0 {
			pref = fi.Blocks[b].Nodes[0] % r.eng.Cluster().NumNodes()
		}
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s-delta/map-%04d", sanitize(r.job.Name), b),
			Preferred: pref,
			Run: func(tc cluster.TaskContext) error {
				start := time.Now()
				br, err := r.eng.FS().OpenBlock(deltaInput, b)
				if err != nil {
					return err
				}
				defer br.Close()
				local := make([][]mrbg.DeltaEdge, r.job.NumReducers)
				var recs int64
				for {
					d, err := br.ReadDelta()
					if err == io.EOF {
						break
					}
					if err != nil {
						return err
					}
					recs++
					base := kv.Fingerprint(d.Key, d.Value)
					occ := occTracker{}
					del := d.Op == kv.OpDelete
					err = r.job.Mapper.Map(d.Key, d.Value, func(k2, v2 string) {
						p := kv.Partition(k2, r.job.NumReducers)
						de := mrbg.DeltaEdge{Key: k2, MK: mkFor(base, occ.next(k2)), Delete: del}
						if !del {
							de.V2 = v2
						}
						local[p] = append(local[p], de)
					})
					if err != nil {
						return err
					}
				}
				mu.Lock()
				for p := range local {
					parts[p] = append(parts[p], local[p]...)
				}
				mu.Unlock()
				rep.Add("map.records.in", recs)
				rep.AddStage(metrics.StageMap, time.Since(start))
				return nil
			},
		})
	}
	if _, err := r.eng.Cluster().Run(tasks); err != nil {
		return nil, fmt.Errorf("incr: delta map phase: %w", err)
	}
	var edges int64
	for _, p := range parts {
		edges += int64(len(p))
	}
	rep.Add("delta.edges", edges)
	return parts, nil
}

// runDeltaFineGrain performs incremental Reduce computation through the
// MRBG-Stores and rewrites only affected outputs.
func (r *Runner) runDeltaFineGrain(deltaInput, output string) (*metrics.Report, error) {
	rep := &metrics.Report{}
	parts, err := r.mapDelta(deltaInput, rep)
	if err != nil {
		return nil, err
	}

	// Shuffle/sort stage: the delta edges were partitioned by K2 above;
	// sorting per partition is what the MapReduce shuffle would do.
	sortStart := time.Now()
	for p := range parts {
		sort.SliceStable(parts[p], func(i, j int) bool { return parts[p][i].Key < parts[p][j].Key })
	}
	rep.AddStage(metrics.StageSort, time.Since(sortStart))
	var shuffleBytes int64
	for _, part := range parts {
		for _, d := range part {
			shuffleBytes += int64(len(d.Key) + len(d.V2) + 9)
		}
	}
	rep.Add("shuffle.bytes", shuffleBytes)

	// Incremental Reduce: one task per partition, co-located with its
	// store; merge the delta MRBGraph and re-reduce affected K2s.
	tasks := make([]cluster.Task, 0, r.job.NumReducers)
	for p := 0; p < r.job.NumReducers; p++ {
		p := p
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s-delta/reduce-%04d", sanitize(r.job.Name), p),
			Preferred: p % r.eng.Cluster().NumNodes(),
			Run: func(tc cluster.TaskContext) error {
				start := time.Now()
				var reduced int64
				err := r.stores[p].Merge(parts[p], func(mr2 mrbg.MergeResult) error {
					r.mu.Lock()
					defer r.mu.Unlock()
					if mr2.Removed {
						delete(r.outputs[p], mr2.Key)
						return nil
					}
					var outs []kv.Pair
					err := r.job.Reducer.Reduce(mr2.Key, mr2.Chunk.Values(), func(k3, v3 string) {
						outs = append(outs, kv.Pair{Key: k3, Value: v3})
					})
					if err != nil {
						return err
					}
					reduced++
					r.outputs[p][mr2.Key] = outs
					return nil
				})
				if err != nil {
					return err
				}
				if err := r.stores[p].Checkpoint(); err != nil {
					return err
				}
				rep.Add("reduce.instances", reduced)
				rep.AddStage(metrics.StageReduce, time.Since(start))
				return nil
			},
		})
	}
	if _, err := r.eng.Cluster().Run(tasks); err != nil {
		return nil, fmt.Errorf("incr: incremental reduce phase: %w", err)
	}

	if err := r.writeOutputs(output); err != nil {
		return nil, err
	}
	return rep, nil
}

// runDeltaAccumulator refreshes an accumulator-Reduce job: group the
// delta's intermediate values, reduce them into partial results, and
// fold each partial result into the preserved output with ⊕.
func (r *Runner) runDeltaAccumulator(deltaInput, output string) (*metrics.Report, error) {
	rep := &metrics.Report{}
	fi, err := r.eng.FS().Stat(deltaInput)
	if err != nil {
		return nil, fmt.Errorf("incr: delta input: %w", err)
	}
	parts := make([][]kv.Pair, r.job.NumReducers)
	var mu sync.Mutex
	tasks := make([]cluster.Task, 0, len(fi.Blocks))
	for b := range fi.Blocks {
		b := b
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s-delta/map-%04d", sanitize(r.job.Name), b),
			Preferred: -1,
			Run: func(tc cluster.TaskContext) error {
				start := time.Now()
				br, err := r.eng.FS().OpenBlock(deltaInput, b)
				if err != nil {
					return err
				}
				defer br.Close()
				local := make([][]kv.Pair, r.job.NumReducers)
				var recs int64
				for {
					d, err := br.ReadDelta()
					if err == io.EOF {
						break
					}
					if err != nil {
						return err
					}
					if d.Op == kv.OpDelete {
						return fmt.Errorf("incr: accumulator job %q received a deletion for key %q; accumulator deltas must be insert-only (Sec. 3.5)", r.job.Name, d.Key)
					}
					recs++
					err = r.job.Mapper.Map(d.Key, d.Value, func(k2, v2 string) {
						p := kv.Partition(k2, r.job.NumReducers)
						local[p] = append(local[p], kv.Pair{Key: k2, Value: v2})
					})
					if err != nil {
						return err
					}
				}
				mu.Lock()
				for p := range local {
					parts[p] = append(parts[p], local[p]...)
				}
				mu.Unlock()
				rep.Add("map.records.in", recs)
				rep.AddStage(metrics.StageMap, time.Since(start))
				return nil
			},
		})
	}
	if _, err := r.eng.Cluster().Run(tasks); err != nil {
		return nil, fmt.Errorf("incr: delta map phase: %w", err)
	}

	rtasks := make([]cluster.Task, 0, r.job.NumReducers)
	for p := 0; p < r.job.NumReducers; p++ {
		p := p
		rtasks = append(rtasks, cluster.Task{
			Name:      fmt.Sprintf("%s-delta/reduce-%04d", sanitize(r.job.Name), p),
			Preferred: p % r.eng.Cluster().NumNodes(),
			Run: func(tc cluster.TaskContext) error {
				start := time.Now()
				run := parts[p]
				kv.SortPairs(run)
				var reduced int64
				err := kv.GroupSorted(run, func(g kv.Group) error {
					var outs []kv.Pair
					err := r.job.Reducer.Reduce(g.Key, g.Values, func(k3, v3 string) {
						outs = append(outs, kv.Pair{Key: k3, Value: v3})
					})
					if err != nil {
						return err
					}
					reduced++
					r.mu.Lock()
					defer r.mu.Unlock()
					for _, o := range outs {
						if old, ok := r.outputs[p][o.Key]; ok {
							merged := r.job.Accumulate(old[0].Value, o.Value)
							r.outputs[p][o.Key] = []kv.Pair{{Key: o.Key, Value: merged}}
						} else {
							r.outputs[p][o.Key] = []kv.Pair{o}
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				rep.Add("reduce.instances", reduced)
				rep.AddStage(metrics.StageReduce, time.Since(start))
				return nil
			},
		})
	}
	if _, err := r.eng.Cluster().Run(rtasks); err != nil {
		return nil, fmt.Errorf("incr: accumulate phase: %w", err)
	}
	if err := r.writeOutputs(output); err != nil {
		return nil, err
	}
	return rep, nil
}

// writeOutputs materializes the current output maps as DFS part files.
func (r *Runner) writeOutputs(output string) error {
	for p := 0; p < r.job.NumReducers; p++ {
		r.mu.Lock()
		keys := make([]string, 0, len(r.outputs[p]))
		for k := range r.outputs[p] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var ps []kv.Pair
		for _, k := range keys {
			ps = append(ps, r.outputs[p][k]...)
		}
		r.mu.Unlock()
		if err := r.eng.FS().WriteAllPairs(mr.PartPath(output, p), ps); err != nil {
			return err
		}
	}
	return nil
}

// Outputs returns the current result set as a key-sorted slice,
// concatenated across partitions.
func (r *Runner) Outputs() []kv.Pair {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []kv.Pair
	for p := range r.outputs {
		for _, ps := range r.outputs[p] {
			out = append(out, ps...)
		}
	}
	kv.SortPairs(out)
	return out
}
