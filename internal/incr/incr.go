// Package incr implements fine-grain incremental processing for
// one-step MapReduce computation (paper Sec. 3).
//
// A Runner owns one logical computation across a sequence of input
// versions. RunInitial executes a normal MapReduce job while preserving
// the MRBGraph — each reduce task transfers the globally unique Map key
// MK through the shuffle and saves its (K2, MK, V2) edges into a
// per-task MRBG-Store. RunDelta then refreshes the results from a delta
// input: it invokes Map only on inserted/deleted records, shuffles the
// emitted delta MRBGraph edges through the streaming shuffle runtime
// (internal/shuffle: lock-striped partition buffers, sorted spill runs
// under Job.ShuffleMemoryBudget, reduce-side k-way merge), merges them
// with the preserved states, and re-invokes Reduce only for affected
// K2s.
//
// The materialized result set is itself durable state: each partition's
// Reduce outputs live in a results.Store (internal/results — sorted
// segments plus tombstones, checkpointed alongside the MRBG-Store), so
// a refresh patches only the affected result groups, writeOutputs
// re-serializes only dirty partitions, and Open reattaches a Runner to
// the preserved stores after a process restart without re-running the
// initial job.
//
// The accumulator-Reduce optimization (Sec. 3.5) is supported: when the
// job declares an Accumulate function and deltas contain only
// insertions, no MRBGraph is preserved at all — only the final
// <K3, V3> outputs, which the accumulator updates in place.
package incr

import (
	"cmp"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/engine"
	"i2mapreduce/internal/fsutil"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
	"i2mapreduce/internal/mrbg"
	"i2mapreduce/internal/par"
	"i2mapreduce/internal/results"
	"i2mapreduce/internal/shuffle"
)

// Job describes an incrementally refreshable one-step computation.
type Job struct {
	// Name labels store directories and task names.
	Name string
	// Mapper and Reducer carry exactly the vanilla MapReduce
	// semantics; the engine wraps them for state preservation.
	Mapper  mr.Mapper
	Reducer mr.Reducer
	// NumReducers defaults to the cluster node count.
	NumReducers int
	// Accumulate, when non-nil, declares the Reduce an accumulator
	// (paper Sec. 3.5): Reduce output values for the same K3 combine
	// with ⊕ = Accumulate. Deltas must then contain only insertions,
	// and the engine preserves only Reduce outputs, not the MRBGraph.
	Accumulate func(old, new string) string
	// StoreOpts templates the per-partition MRBG-Store options
	// (Dir is filled in per partition).
	StoreOpts mrbg.Options
	// ResultOpts templates the per-partition durable result store
	// (Dir is filled in per partition; CompactThreshold is the knob).
	ResultOpts results.Options
	// ShuffleMemoryBudget bounds the bytes of delta MRBGraph edges a
	// RunDelta holds in memory: map-side, per-partition buffers spill
	// sorted runs to node-local scratch beyond their budget share
	// ("shuffle.spill.runs"/"shuffle.spill.bytes"); reduce-side, each
	// partition drains the streaming merge into MRBG-Store Merge calls
	// in batches bounded by the same share. <= 0 keeps the delta
	// shuffle fully in memory and merges each partition's delta in one
	// batch. Refresh results are byte-identical at any budget.
	ShuffleMemoryBudget int64
	// SkewRatio / SkewFanOut configure hot-K2 skew mitigation in the
	// delta shuffle (shuffle.Config): a K2 whose share of its
	// partition's delta records exceeds SkewRatio is split across
	// sub-keys and merged back byte-identically before the reduce.
	// 0 disables; when built through i2mr.System, 0 inherits the
	// System-wide default.
	SkewRatio  float64
	SkewFanOut int
	// IOParallelism bounds the concurrent per-partition durability I/O:
	// store opens, result-store commits, and output materialization fan
	// out across partitions on at most this many goroutines. <= 0 means
	// GOMAXPROCS; 1 recovers the serial pre-parallel behavior exactly.
	IOParallelism int
	// BackgroundCompaction moves result-store threshold compaction off
	// the refresh critical path onto a background scheduler
	// (results.Scheduler): a refresh checkpoint then pays only the
	// memtable flush and the manifest commit, and compaction runs
	// between refreshes. Off by default: compaction stays inline.
	BackgroundCompaction bool
}

// Runner executes and refreshes one Job.
type Runner struct {
	eng    *mr.Engine
	job    Job
	stores []*mrbg.ShardedStore
	// res[p] is partition p's durable result store: reduce input key K2
	// (or K3 for accumulator jobs) -> the output pairs its Reduce call
	// emitted. Replacing a group replaces exactly those outputs.
	res     []*results.Store
	initial bool
	// ioPar is the resolved Job.IOParallelism (>= 1); sched is the
	// background compaction scheduler, nil unless BackgroundCompaction.
	ioPar int
	sched *results.Scheduler
	// deltaSeq hands out unique scratch directories to concurrent /
	// successive RunDelta shuffles.
	deltaSeq atomic.Int64
	// jobs is the durably completed job count (the initial run counts as
	// 1, every completed RunDelta adds 1), mirrored from the jobs= key of
	// job.meta. External commit protocols (internal/ingest) compare it
	// across a crash to decide whether an in-flight refresh committed.
	jobs atomic.Int64
	// refreshStats backs the engine.Refresher Stats() view.
	refreshStats engine.StatsTracker
}

// NewRunner prepares a runner for a fresh computation; per-partition
// MRBG-Stores and result stores are created under the node scratch dir
// of the node that will host each reduce task (co-location, as the
// paper preserves states at the reduce side). To reattach to the
// preserved state of an earlier process instead, use Open.
func NewRunner(eng *mr.Engine, job Job) (*Runner, error) {
	return newRunner(eng, job)
}

// Open reattaches a Runner to the durable state a previous process
// preserved under the same cluster scratch root: the per-partition
// MRBG-Stores recover from their checkpoints and the result stores from
// their manifests, so RunDelta works immediately without re-running the
// initial job. The job must be opened with the same Name, NumReducers,
// and cluster topology it originally ran with; Open fails if any
// partition's preserved results are missing or if the preserved
// partition count differs.
func Open(eng *mr.Engine, job Job) (*Runner, error) {
	r, err := newRunner(eng, job)
	if err != nil {
		return nil, err
	}
	// The job meta (written when RunInitial completed) records the
	// partition count the state was preserved with; partition 0 always
	// lives under node 0's scratch dir, so the meta is findable under
	// any cluster size. Resuming with a different count would silently
	// drop (or re-route) preserved result groups.
	preserved, mode, jobs, ok, err := readJobMeta(r.jobMetaPath())
	if err != nil {
		r.Close()
		return nil, err
	}
	if !ok {
		r.Close()
		return nil, fmt.Errorf("incr: job %q has no preserved state here (RunInitial never completed under this scratch root)", job.Name)
	}
	if preserved != r.job.NumReducers {
		r.Close()
		return nil, fmt.Errorf("incr: job %q was preserved with %d partitions, cannot resume with %d", job.Name, preserved, r.job.NumReducers)
	}
	if mode != r.jobMode() {
		r.Close()
		return nil, fmt.Errorf("incr: job %q was preserved in %s mode, cannot resume in %s mode", job.Name, mode, r.jobMode())
	}
	for p, res := range r.res {
		if !res.Initialized() {
			r.Close()
			return nil, fmt.Errorf("incr: job %q is missing preserved results for partition %d (was the job run under a different cluster topology?)", job.Name, p)
		}
		switch intent, err := os.ReadFile(r.refreshIntentPath(p)); {
		case err == nil:
			// Benign window: an accumulator refresh stamps job.meta (with
			// the in-flight job number) before unlinking its intent
			// marker, so a marker whose job= payload equals the durably
			// completed count belongs to a refresh that fully committed —
			// the process merely died between the stamp and the unlink.
			// Any other surviving marker means half-applied state.
			if mode == "accumulator" && intentJob(string(intent)) == jobs {
				if err := os.Remove(r.refreshIntentPath(p)); err != nil {
					r.Close()
					return nil, err
				}
				if err := fsutil.SyncDir(filepath.Dir(r.refreshIntentPath(p))); err != nil {
					r.Close()
					return nil, err
				}
				continue
			}
			r.Close()
			return nil, fmt.Errorf("incr: job %q partition %d has a half-applied refresh; this state cannot be resumed safely — re-run the computation in a fresh work dir", job.Name, p)
		case !errors.Is(err, os.ErrNotExist):
			r.Close()
			return nil, fmt.Errorf("incr: probing refresh marker for partition %d: %w", p, err)
		}
	}
	r.jobs.Store(jobs)
	r.initial = true
	return r, nil
}

// intentJob extracts the job number from a refresh.intent payload
// written as "job=N\n"; -1 for any other payload (fine-grain markers
// carry no job number and are never benign).
func intentJob(s string) int64 {
	v, ok := strings.CutPrefix(strings.TrimSpace(s), "job=")
	if !ok {
		return -1
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return -1
	}
	return n
}

// jobMode names the preservation mode for the job meta.
func (r *Runner) jobMode() string {
	if r.job.Accumulate != nil {
		return "accumulator"
	}
	return "finegrain"
}

// refreshIntentPath names partition p's in-progress refresh marker (see
// runDeltaFineGrain's checkpoint bracket).
func (r *Runner) refreshIntentPath(p int) string {
	return filepath.Join(r.resultDir(p), "refresh.intent")
}

// jobMetaPath names the runner-level meta file recording the preserved
// partition count. It lives in partition 0's result directory, which is
// always under node 0's scratch dir regardless of cluster size.
func (r *Runner) jobMetaPath() string {
	return filepath.Join(r.resultDir(0), "job.meta")
}

// writeJobMeta durably persists the partition count, preservation mode,
// and completed-job count. Its presence is the completion marker Open
// requires; the jobs= stamp advances once per fully committed job (the
// initial run, then every RunDelta), so an external commit protocol can
// compare it across a crash.
func (r *Runner) writeJobMeta(jobs int64) error {
	return fsutil.WriteFileAtomic(r.jobMetaPath(),
		[]byte(fmt.Sprintf("partitions=%d\nmode=%s\njobs=%d\n", r.job.NumReducers, r.jobMode(), jobs)))
}

// readJobMeta loads the preserved partition count, mode, and completed
// job count; ok=false when no meta exists. Meta written before the
// jobs= key existed reads as jobs=1 (the initial run the meta's
// presence already attests to).
func readJobMeta(path string) (parts int, mode string, jobs int64, ok bool, err error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, "", 0, false, nil
	}
	if err != nil {
		return 0, "", 0, false, err
	}
	jobs = 1
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		k, v, found := strings.Cut(line, "=")
		if !found {
			return 0, "", 0, false, fmt.Errorf("incr: corrupt job meta line %q", line)
		}
		switch k {
		case "partitions":
			if _, err := fmt.Sscanf(v, "%d", &parts); err != nil {
				return 0, "", 0, false, fmt.Errorf("incr: corrupt job meta partitions %q", v)
			}
		case "mode":
			mode = v
		case "jobs":
			if jobs, err = strconv.ParseInt(v, 10, 64); err != nil || jobs < 1 {
				return 0, "", 0, false, fmt.Errorf("incr: corrupt job meta jobs %q", v)
			}
		default:
			return 0, "", 0, false, fmt.Errorf("incr: unknown job meta key %q", k)
		}
	}
	if parts <= 0 || (mode != "finegrain" && mode != "accumulator") {
		return 0, "", 0, false, fmt.Errorf("incr: corrupt job meta %q", string(b))
	}
	return parts, mode, jobs, true, nil
}

func newRunner(eng *mr.Engine, job Job) (*Runner, error) {
	if job.Name == "" {
		return nil, errors.New("incr: job requires a Name")
	}
	if job.Mapper == nil || job.Reducer == nil {
		return nil, errors.New("incr: job requires Mapper and Reducer")
	}
	if job.NumReducers <= 0 {
		job.NumReducers = eng.Cluster().NumNodes()
	}
	if job.IOParallelism <= 0 {
		job.IOParallelism = runtime.GOMAXPROCS(0)
	}
	r := &Runner{eng: eng, job: job, ioPar: job.IOParallelism}
	if job.BackgroundCompaction {
		r.sched = results.NewScheduler(results.SchedulerOptions{})
	}
	// Opens (and their recovery work: manifest replay, orphan sweeps)
	// are independent per partition; fan them out on the shared runner.
	r.res = make([]*results.Store, job.NumReducers)
	err := par.Do(job.NumReducers, r.ioPar, func(p int) error {
		ropts := job.ResultOpts
		ropts.Dir = r.resultDir(p)
		rs, err := results.Open(ropts)
		if err != nil {
			return fmt.Errorf("incr: opening result store %d: %w", p, err)
		}
		rs.AttachScheduler(r.sched)
		r.res[p] = rs
		return nil
	})
	if err != nil {
		r.Close()
		return nil, err
	}
	if job.Accumulate == nil {
		r.stores = make([]*mrbg.ShardedStore, job.NumReducers)
		err := par.Do(job.NumReducers, r.ioPar, func(p int) error {
			st, err := mrbg.Open(r.storeOpts(p))
			if err != nil {
				return fmt.Errorf("incr: opening store %d: %w", p, err)
			}
			r.stores[p] = st
			return nil
		})
		if err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// storeOpts returns partition p's MRBG-Store options.
func (r *Runner) storeOpts(p int) mrbg.Options {
	opts := r.job.StoreOpts
	opts.Dir = filepath.Join(r.nodeDir(p), "mrbg", sanitize(r.job.Name), fmt.Sprintf("part-%04d", p))
	return opts
}

// nodeDir returns the scratch dir of the node hosting partition p.
func (r *Runner) nodeDir(p int) string {
	cl := r.eng.Cluster()
	return cl.NodeByID(p % cl.NumNodes()).ScratchDir
}

// resultDir names partition p's result store directory.
func (r *Runner) resultDir(p int) string {
	return filepath.Join(r.nodeDir(p), "results", sanitize(r.job.Name), fmt.Sprintf("part-%04d", p))
}

func sanitize(s string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			return c
		}
		return '_'
	}, s)
}

// Close shuts down the background compaction scheduler (waiting out any
// in-flight compaction, since it runs against these stores), then
// releases the per-partition stores.
func (r *Runner) Close() error {
	first := r.sched.Close()
	for _, s := range r.stores {
		if s == nil {
			continue // a parallel newRunner open failed part-way
		}
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, rs := range r.res {
		if rs == nil {
			continue
		}
		if err := rs.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stores exposes the per-partition MRBG-Stores (nil for accumulator
// jobs); the Table 4 harness reads their statistics.
func (r *Runner) Stores() []*mrbg.ShardedStore { return r.stores }

// Results exposes the per-partition durable result stores; the one-step
// bench harness reads their statistics.
func (r *Runner) Results() []*results.Store { return r.res }

// CompactionScheduler exposes the background compaction scheduler (nil
// unless Job.BackgroundCompaction), so the serving layer can surface
// its gauges.
func (r *Runner) CompactionScheduler() *results.Scheduler { return r.sched }

// mkFor derives the globally unique Map key for the occ-th value a Map
// instance emits to one K2. The paper treats (K2, MK) as a unique edge
// id; a Map call that emits several values to the same K2 (WordCount
// emitting the same word twice from one line) would collide, so the
// occurrence index is folded in. The derivation depends only on the
// input record and the Map function's deterministic emission order, so
// a delta deletion regenerates exactly the MKs of the original run.
func mkFor(base uint64, occ uint32) uint64 {
	return kv.Mix64(base + uint64(occ)*0x9e3779b97f4a7c15)
}

// occTracker numbers repeated emissions to the same K2 within one Map
// call.
type occTracker map[string]uint32

func (o occTracker) next(k2 string) uint32 {
	n := o[k2]
	o[k2] = n + 1
	return n
}

// encodeMKV packs (MK, V2) into a shuffle value so the engine can
// transfer MK alongside V2 (paper Sec. 3.3: "the engine transfers the
// globally unique MK along with <K2,V2> during the shuffle phase").
// The fixed-width hex MK keeps values of one K2 sorted by MK.
func encodeMKV(mk uint64, v2 string) string {
	return fmt.Sprintf("%016x:%s", mk, v2)
}

// decodeMKV unpacks a shuffle value produced by encodeMKV.
func decodeMKV(s string) (uint64, string, error) {
	if len(s) < 17 || s[16] != ':' {
		return 0, "", fmt.Errorf("incr: malformed MK-tagged value %q", s)
	}
	mk, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return 0, "", fmt.Errorf("incr: malformed MK in %q: %v", s, err)
	}
	return mk, s[17:], nil
}

// encodeDeltaEdge packs a delta MRBGraph edge into a shuffle value:
// fixed-width hex MK, fixed-width hex delta-file sequence number, one
// op byte, and (for insertions) the value V2. The encoding is chosen so
// the shuffle's (key, value) total order yields exactly the apply order
// mrbg.Merge needs: edges of one K2 sort by MK, and records touching
// the same (K2, MK) sort by their position in the delta input — so a
// delete followed by a reinsert nets to the insertion and an insert
// followed by a delete nets to the deletion, exactly as the delta file
// says, at any memory budget and any spill interleaving.
func encodeDeltaEdge(mk, seq uint64, del bool, v2 string) string {
	b := make([]byte, 0, 33+len(v2))
	b = appendHex16(b, mk)
	b = appendHex16(b, seq)
	if del {
		return string(append(b, '0'))
	}
	return string(append(append(b, '1'), v2...))
}

// appendHex16 appends v as exactly 16 lower-case hex digits. This is
// the per-emission hot path of RunDelta's map phase; fmt.Sprintf's
// format parsing and boxing would dominate it.
func appendHex16(b []byte, v uint64) []byte {
	const digits = "0123456789abcdef"
	var tmp [16]byte
	for i := 15; i >= 0; i-- {
		tmp[i] = digits[v&0xf]
		v >>= 4
	}
	return append(b, tmp[:]...)
}

// decodeDeltaEdge unpacks a shuffle value produced by encodeDeltaEdge.
// The sequence number has done its work in the sort order and is
// dropped; mrbg.Merge applies same-(key, MK) records in slice order.
func decodeDeltaEdge(key, s string) (mrbg.DeltaEdge, error) {
	if len(s) < 33 || (s[32] != '0' && s[32] != '1') {
		return mrbg.DeltaEdge{}, fmt.Errorf("incr: malformed delta edge value %q", s)
	}
	mk, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return mrbg.DeltaEdge{}, fmt.Errorf("incr: malformed MK in %q: %v", s, err)
	}
	de := mrbg.DeltaEdge{Key: key, MK: mk}
	if s[32] == '0' {
		de.Delete = true
	} else {
		de.V2 = s[33:]
	}
	return de, nil
}

// RunInitial executes the full computation on input (a DFS pair file),
// preserves state, and writes outputs under the output path prefix.
func (r *Runner) RunInitial(input, output string) (*metrics.Report, error) {
	if r.initial {
		return nil, errors.New("incr: RunInitial called twice; use RunDelta for refreshes")
	}
	// The job meta is written only after a fully successful initial run,
	// so its presence is the authoritative completion marker. State
	// checkpointed WITHOUT it is the partial work of an initial run that
	// died mid-way; discard it so this run starts clean rather than
	// overlaying stale results or phantom MRBGraph chunks.
	if _, _, _, ok, err := readJobMeta(r.jobMetaPath()); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("incr: job %q already has preserved results; use Open to resume or point the system at a fresh work dir", r.job.Name)
	}
	for p, rs := range r.res {
		if rs.Initialized() {
			if err := rs.Reset(); err != nil {
				return nil, err
			}
		}
		if err := os.Remove(r.refreshIntentPath(p)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	for p, st := range r.stores {
		if st.Len() == 0 {
			continue
		}
		if err := st.Close(); err != nil {
			return nil, err
		}
		opts := r.storeOpts(p)
		if err := os.RemoveAll(opts.Dir); err != nil {
			return nil, err
		}
		nst, err := mrbg.Open(opts)
		if err != nil {
			return nil, fmt.Errorf("incr: resetting stale store %d: %w", p, err)
		}
		r.stores[p] = nst
	}

	var rep *metrics.Report
	var err error
	if r.job.Accumulate != nil {
		rep, err = r.runInitialAccumulator(input, output)
	} else {
		rep, err = r.runInitialFineGrain(input, output)
	}
	if err != nil {
		return nil, err
	}
	// Stamp the preserved partition count last: its presence tells Open
	// that a complete initial run exists here.
	if err := r.writeJobMeta(1); err != nil {
		return nil, err
	}
	r.jobs.Store(1)
	r.initial = true
	return rep, nil
}

// CompletedJobs returns the durably committed job count: 1 after
// RunInitial, +1 per completed RunDelta, as stamped in job.meta. It
// advances only after the refresh's stores are fully checkpointed, so
// comparing it across a process death tells an external commit protocol
// (internal/ingest) whether an in-flight refresh committed.
func (r *Runner) CompletedJobs() int64 { return r.jobs.Load() }

// commitResults checkpoints every result store and records the part
// file each partition was just materialized to, fanning out across
// partitions at Job.IOParallelism.
func (r *Runner) commitResults(output string) error {
	return par.Do(len(r.res), r.ioPar, func(p int) error {
		if err := r.res[p].Checkpoint(); err != nil {
			return err
		}
		return r.res[p].Materialized(mr.PartPath(output, p))
	})
}

// runInitialFineGrain runs a normal MapReduce job with MK-tagged
// intermediate values, capturing chunks into the MRBG-Stores.
func (r *Runner) runInitialFineGrain(input, output string) (*metrics.Report, error) {
	userMap := r.job.Mapper
	wrappedMapper := mr.MapperFunc(func(k1, v1 string, emit mr.Emit) error {
		base := kv.Fingerprint(k1, v1)
		occ := occTracker{}
		return userMap.Map(k1, v1, func(k2, v2 string) {
			emit(k2, encodeMKV(mkFor(base, occ.next(k2)), v2))
		})
	})

	job := mr.Job{
		Name:        r.job.Name + "-initial",
		Input:       input,
		Output:      output,
		Mapper:      wrappedMapper,
		NumReducers: r.job.NumReducers,
		ReducerFactory: func(p int) mr.Reducer {
			return mr.ReducerFunc(func(k2 string, tagged []string, emit mr.Emit) error {
				chunk := mrbg.Chunk{Key: k2}
				for _, tv := range tagged {
					mk, v2, err := decodeMKV(tv)
					if err != nil {
						return err
					}
					chunk.Edges = append(chunk.Edges, mrbg.Edge{MK: mk, V2: v2})
				}
				// Values arrive MK-sorted per map-task run but only
				// key-merged across runs; restore the store's global
				// MK order and derive the Reduce value list from it so
				// re-reduction after a merge sees the same ordering.
				slices.SortFunc(chunk.Edges, func(a, b mrbg.Edge) int { return cmp.Compare(a.MK, b.MK) })
				vals := chunk.Values()
				if err := r.stores[p].Put(chunk); err != nil {
					return err
				}
				var outs []kv.Pair
				err := r.job.Reducer.Reduce(k2, vals, func(k3, v3 string) {
					outs = append(outs, kv.Pair{Key: k3, Value: v3})
					emit(k3, v3)
				})
				if err != nil {
					return err
				}
				r.res[p].Set(k2, outs)
				return nil
			})
		},
	}
	rep, err := r.eng.Run(job)
	if err != nil {
		return nil, err
	}
	ckptStart := time.Now()
	err = par.Do(len(r.stores), r.ioPar, func(p int) error {
		if err := r.stores[p].CommitBatch(); err != nil {
			return err
		}
		return r.stores[p].Checkpoint()
	})
	if err != nil {
		return nil, err
	}
	// The engine's reduce tasks already wrote the part files; commit the
	// result stores as materialized there so the next refresh rewrites
	// only what it dirties.
	if err := r.commitResults(output); err != nil {
		return nil, err
	}
	rep.AddStage(metrics.StageCheckpoint, time.Since(ckptStart))
	return rep, nil
}

// runInitialAccumulator runs a plain job and preserves only outputs.
func (r *Runner) runInitialAccumulator(input, output string) (*metrics.Report, error) {
	job := mr.Job{
		Name:        r.job.Name + "-initial",
		Input:       input,
		Output:      output,
		Mapper:      r.job.Mapper,
		NumReducers: r.job.NumReducers,
		ReducerFactory: func(p int) mr.Reducer {
			return mr.ReducerFunc(func(k2 string, vals []string, emit mr.Emit) error {
				var outs []kv.Pair
				err := r.job.Reducer.Reduce(k2, vals, func(k3, v3 string) {
					outs = append(outs, kv.Pair{Key: k3, Value: v3})
					emit(k3, v3)
				})
				if err != nil {
					return err
				}
				for _, o := range outs {
					r.res[p].Set(o.Key, []kv.Pair{o})
				}
				return nil
			})
		},
	}
	rep, err := r.eng.Run(job)
	if err != nil {
		return nil, err
	}
	ckptStart := time.Now()
	if err := r.commitResults(output); err != nil {
		return nil, err
	}
	rep.AddStage(metrics.StageCheckpoint, time.Since(ckptStart))
	return rep, nil
}

// RunDelta refreshes the computation from a delta input (a DFS delta
// file with '+'/'-' records) and writes the full refreshed outputs
// under the output path prefix. Only partitions whose results actually
// changed are re-serialized; unchanged partitions are republished with
// a block-level clone of their previous part file.
func (r *Runner) RunDelta(deltaInput, output string) (*metrics.Report, error) {
	if !r.initial {
		return nil, errors.New("incr: RunDelta before RunInitial")
	}
	// Refresh barrier: background compaction must not compete with the
	// refresh's own I/O. Pause waits out any in-flight merge; triggers
	// that fire during the refresh stay queued until Resume.
	r.sched.Pause()
	defer r.sched.Resume()
	if r.job.Accumulate != nil {
		return r.runDeltaAccumulator(deltaInput, output)
	}
	return r.runDeltaFineGrain(deltaInput, output)
}

// newDeltaBuffer builds the streaming shuffle buffer for one RunDelta:
// lock-striped per-partition buffers whose memory footprint is bounded
// by Job.ShuffleMemoryBudget, spilling sorted runs into the scratch dir
// of the node that will run each partition's incremental reduce task.
func (r *Runner) newDeltaBuffer(rep *metrics.Report) (*shuffle.Buffer, error) {
	seq := r.deltaSeq.Add(1)
	return shuffle.New(shuffle.Config{
		Partitions:   r.job.NumReducers,
		MemoryBudget: r.job.ShuffleMemoryBudget,
		// The refresh sequence number lives in the leaf (which
		// Buffer.Close removes), not in a per-refresh parent that would
		// accumulate one empty directory per refresh on a long-lived
		// runner.
		ScratchDir: func(p int) string {
			return filepath.Join(r.nodeDir(p), "shuffle", sanitize(r.job.Name)+"-delta",
				fmt.Sprintf("seq%06d-part-%04d", seq, p))
		},
		SkewRatio:  r.job.SkewRatio,
		SkewFanOut: r.job.SkewFanOut,
		Report:     rep,
	})
}

// mapDelta runs the incremental Map computation: Map is invoked for
// every delta record and the emitted records stream into buf, one task
// per delta input block (paper Sec. 3.3, "Incremental Map Computation
// to Obtain the Delta MRBGraph"). emit adapts one delta record's Map
// emissions to shuffle pairs (the fine-grain path tags them as delta
// MRBGraph edges; the accumulator path passes them through); seq is the
// record's position in the delta file (block index in the high bits,
// record index within the block in the low), so emitters can preserve
// delta-file apply order through the shuffle's value sort.
func (r *Runner) mapDelta(deltaInput string, buf *shuffle.Buffer, rep *metrics.Report,
	emit func(d kv.Delta, seq uint64, em *shuffle.Emitter) error) error {
	fi, err := r.eng.FS().Stat(deltaInput)
	if err != nil {
		return fmt.Errorf("incr: delta input: %w", err)
	}
	tasks := make([]cluster.Task, 0, len(fi.Blocks))
	for b := range fi.Blocks {
		b := b
		pref := -1
		if len(fi.Blocks[b].Nodes) > 0 {
			pref = fi.Blocks[b].Nodes[0] % r.eng.Cluster().NumNodes()
		}
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s-delta/map-%04d", sanitize(r.job.Name), b),
			Preferred: pref,
			Run: func(tc cluster.TaskContext) error {
				start := time.Now()
				br, err := r.eng.FS().OpenBlock(deltaInput, b)
				if err != nil {
					return err
				}
				defer br.Close()
				// Stage through a per-attempt Emitter: a failed attempt
				// publishes nothing, so the cluster's retry cannot
				// duplicate delta edges.
				em := buf.NewEmitter()
				var recs int64
				for {
					d, err := br.ReadDelta()
					if err == io.EOF {
						break
					}
					if err == nil {
						recs++
						err = emit(d, uint64(b)<<32|uint64(recs-1), em)
					}
					if err != nil {
						em.Discard()
						return err
					}
				}
				if err := em.Publish(); err != nil {
					return err
				}
				rep.Add(metrics.CounterMapRecordsIn, recs)
				rep.AddStage(metrics.StageMap, time.Since(start))
				return nil
			},
		})
	}
	if _, err := r.eng.Cluster().Run(tasks); err != nil {
		return fmt.Errorf("incr: delta map phase: %w", err)
	}
	if err := buf.FinishMap(); err != nil {
		return fmt.Errorf("incr: delta map spill: %w", err)
	}
	// Spill sorting happened inside the timed map windows but is
	// reported as StageSort; rebalance so Total() counts it once.
	rep.AddStage(metrics.StageMap, -buf.SortDuration())
	rep.Add(metrics.CounterDeltaEdges, buf.Records())
	rep.Add(metrics.CounterShuffleBytes, buf.Bytes())
	return nil
}

// runDeltaFineGrain performs incremental Reduce computation through the
// MRBG-Stores and patches only affected result groups.
func (r *Runner) runDeltaFineGrain(deltaInput, output string) (*metrics.Report, error) {
	rep := &metrics.Report{}
	buf, err := r.newDeltaBuffer(rep)
	if err != nil {
		return nil, err
	}
	defer buf.Close()
	err = r.mapDelta(deltaInput, buf, rep, func(d kv.Delta, seq uint64, em *shuffle.Emitter) error {
		base := kv.Fingerprint(d.Key, d.Value)
		occ := occTracker{}
		del := d.Op == kv.OpDelete
		return r.job.Mapper.Map(d.Key, d.Value, func(k2, v2 string) {
			em.Emit(k2, encodeDeltaEdge(mkFor(base, occ.next(k2)), seq, del, v2))
		})
	})
	if err != nil {
		return nil, err
	}
	mapSort := buf.SortDuration()
	compBefore := r.resultCompactions()

	// Incremental Reduce: one task per partition, co-located with its
	// stores; drain the partition's delta MRBGraph off the streaming
	// merge, join it against the MRBG-Store, and re-reduce affected K2s
	// into the result store. No lock is shared across partitions, so
	// user Reduce calls run fully in parallel.
	tasks := make([]cluster.Task, 0, r.job.NumReducers)
	for p := 0; p < r.job.NumReducers; p++ {
		p := p
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s-delta/reduce-%04d", sanitize(r.job.Name), p),
			Preferred: p % r.eng.Cluster().NumNodes(),
			Run: func(tc cluster.TaskContext) error {
				start := time.Now()
				res := r.res[p]
				var reduced int64
				onMerge := func(m mrbg.MergeResult) error {
					if m.Removed {
						res.Delete(m.Key)
						return nil
					}
					var outs []kv.Pair
					err := r.job.Reducer.Reduce(m.Key, m.Chunk.Values(), func(k3, v3 string) {
						outs = append(outs, kv.Pair{Key: k3, Value: v3})
					})
					if err != nil {
						return err
					}
					reduced++
					res.Set(m.Key, outs)
					return nil
				}
				// Drain the streaming merge into Merge calls in batches
				// bounded by this partition's share of the shuffle
				// budget, so the reduce side never buffers more of the
				// delta MRBGraph than the map side was allowed to. Groups
				// never split across batches (buf.Reduce yields whole
				// keys), so each affected K2 merges and re-reduces
				// exactly once; later batches see earlier batches'
				// committed chunks, making the split semantically
				// invisible.
				var batchBound int64
				if r.job.ShuffleMemoryBudget > 0 {
					batchBound = r.job.ShuffleMemoryBudget / int64(r.job.NumReducers)
					if batchBound < 1 {
						batchBound = 1
					}
				}
				var delta []mrbg.DeltaEdge
				var deltaBytes int64
				flush := func() error {
					if len(delta) == 0 {
						return nil
					}
					if err := r.stores[p].Merge(delta, onMerge); err != nil {
						return err
					}
					delta, deltaBytes = delta[:0], 0
					return nil
				}
				err := buf.Reduce(p, func(g kv.Group) error {
					for _, v := range g.Values {
						de, err := decodeDeltaEdge(g.Key, v)
						if err != nil {
							return err
						}
						delta = append(delta, de)
						deltaBytes += int64(len(de.Key) + len(de.V2) + 16)
					}
					if batchBound > 0 && deltaBytes >= batchBound {
						return flush()
					}
					return nil
				})
				if err != nil {
					return err
				}
				if err := flush(); err != nil {
					return err
				}
				// The two checkpoints are separate fsync points, so a
				// crash between them would leave the partition's
				// MRBGraph ahead of its result store. An intent marker
				// brackets them: it is durably written before the first
				// checkpoint and removed after the second, and Open
				// refuses a partition whose marker survived. (A crash
				// before the first checkpoint rolls both stores back to
				// the previous refresh — consistent — and replaying a
				// fine-grain delta against consistent state is
				// idempotent per (K2, MK).)
				ckptStart := time.Now()
				intent := r.refreshIntentPath(p)
				if err := fsutil.WriteFileAtomic(intent, []byte("refresh\n")); err != nil {
					return err
				}
				if err := r.stores[p].Checkpoint(); err != nil {
					return err
				}
				if err := res.Checkpoint(); err != nil {
					return err
				}
				if err := os.Remove(intent); err != nil {
					return err
				}
				if err := fsutil.SyncDir(filepath.Dir(intent)); err != nil {
					return err
				}
				ckptDur := time.Since(ckptStart)
				rep.Add(metrics.CounterReduceInstances, reduced)
				rep.AddStage(metrics.StageCheckpoint, ckptDur)
				rep.AddStage(metrics.StageReduce, time.Since(start)-ckptDur)
				return nil
			},
		})
	}
	if _, err := r.eng.Cluster().Run(tasks); err != nil {
		return nil, fmt.Errorf("incr: incremental reduce phase: %w", err)
	}
	// Residue sorts ran inside the timed reduce windows; rebalance them
	// into StageSort (where the Buffer already reported them).
	rep.AddStage(metrics.StageReduce, -(buf.SortDuration() - mapSort))

	if err := r.writeOutputs(output, rep); err != nil {
		return nil, err
	}
	// Advance the durable completed-job count. A crash before this stamp
	// leaves the stores committed but the count behind by one; replaying
	// the same fine-grain delta against that state is idempotent per
	// (K2, MK), so an external replay driven by the stale count is safe.
	if err := r.writeJobMeta(r.jobs.Load() + 1); err != nil {
		return nil, err
	}
	r.jobs.Add(1)
	r.reportResultStats(rep, compBefore)
	return rep, nil
}

// runDeltaAccumulator refreshes an accumulator-Reduce job: stream the
// delta's intermediate values through the shuffle, reduce each group
// into a partial result, and fold it into the preserved output with ⊕.
func (r *Runner) runDeltaAccumulator(deltaInput, output string) (*metrics.Report, error) {
	rep := &metrics.Report{}
	buf, err := r.newDeltaBuffer(rep)
	if err != nil {
		return nil, err
	}
	defer buf.Close()
	err = r.mapDelta(deltaInput, buf, rep, func(d kv.Delta, _ uint64, em *shuffle.Emitter) error {
		if d.Op == kv.OpDelete {
			return fmt.Errorf("incr: accumulator job %q received a deletion for key %q; accumulator deltas must be insert-only (Sec. 3.5)", r.job.Name, d.Key)
		}
		return r.job.Mapper.Map(d.Key, d.Value, func(k2, v2 string) {
			em.Emit(k2, v2)
		})
	})
	if err != nil {
		return nil, err
	}
	mapSort := buf.SortDuration()
	compBefore := r.resultCompactions()

	// Accumulator folds are not idempotent (⊕ reapplied double-counts),
	// so the refresh is bracketed by one intent marker covering ALL
	// partitions: a crash while some partitions have durably folded and
	// others have not leaves the marker behind, and Open refuses the
	// half-applied state. Within one process, a retried task attempt is
	// handled separately: it discards the failed attempt's pending folds
	// (DiscardPending) and re-folds from the partition's durable state.
	// The marker carries the in-flight job number so Open can tell the
	// one benign case apart: job.meta already stamped with this number
	// means the refresh committed and only the unlink was lost.
	intent := r.refreshIntentPath(0)
	if err := fsutil.WriteFileAtomic(intent, []byte(fmt.Sprintf("job=%d\n", r.jobs.Load()+1))); err != nil {
		return nil, err
	}

	rtasks := make([]cluster.Task, 0, r.job.NumReducers)
	for p := 0; p < r.job.NumReducers; p++ {
		p := p
		rtasks = append(rtasks, cluster.Task{
			Name:      fmt.Sprintf("%s-delta/reduce-%04d", sanitize(r.job.Name), p),
			Preferred: p % r.eng.Cluster().NumNodes(),
			Run: func(tc cluster.TaskContext) error {
				start := time.Now()
				res := r.res[p]
				res.DiscardPending()
				var reduced int64
				err := buf.Reduce(p, func(g kv.Group) error {
					var outs []kv.Pair
					err := r.job.Reducer.Reduce(g.Key, g.Values, func(k3, v3 string) {
						outs = append(outs, kv.Pair{Key: k3, Value: v3})
					})
					if err != nil {
						return err
					}
					reduced++
					for _, o := range outs {
						old, ok, err := res.Get(o.Key)
						if err != nil {
							return err
						}
						// A group can be materialized with zero pairs (a
						// reduce that emitted nothing); treat it as absent
						// rather than indexing old[0].
						if ok && len(old) > 0 {
							o = kv.Pair{Key: o.Key, Value: r.job.Accumulate(old[0].Value, o.Value)}
						}
						res.Set(o.Key, []kv.Pair{o})
					}
					return nil
				})
				if err != nil {
					return err
				}
				ckptStart := time.Now()
				if err := res.Checkpoint(); err != nil {
					return err
				}
				ckptDur := time.Since(ckptStart)
				rep.Add(metrics.CounterReduceInstances, reduced)
				rep.AddStage(metrics.StageCheckpoint, ckptDur)
				rep.AddStage(metrics.StageReduce, time.Since(start)-ckptDur)
				return nil
			},
		})
	}
	if _, err := r.eng.Cluster().Run(rtasks); err != nil {
		return nil, fmt.Errorf("incr: accumulate phase: %w", err)
	}
	// Commit order: stamp the completed-job count BEFORE unlinking the
	// intent marker. A crash between the two is the benign window Open
	// clears (marker job == meta jobs); a crash before the stamp leaves
	// marker job ahead of meta jobs and Open refuses the half-applied
	// folds, as a non-idempotent ⊕ requires.
	if err := r.writeJobMeta(r.jobs.Load() + 1); err != nil {
		return nil, err
	}
	r.jobs.Add(1)
	if err := os.Remove(intent); err != nil {
		return nil, err
	}
	if err := fsutil.SyncDir(filepath.Dir(intent)); err != nil {
		return nil, err
	}
	rep.AddStage(metrics.StageReduce, -(buf.SortDuration() - mapSort))
	if err := r.writeOutputs(output, rep); err != nil {
		return nil, err
	}
	r.reportResultStats(rep, compBefore)
	return rep, nil
}

// writeOutputs materializes the current result set as DFS part files,
// re-serializing only partitions whose result stores are dirty. A clean
// partition republishes under the new output path with a block-level
// clone of its previous part file (no re-sort, no re-encode); if that
// file is gone — a fresh DFS namespace after a restart — it falls back
// to a full write.
func (r *Runner) writeOutputs(output string, rep *metrics.Report) error {
	start := time.Now()
	var dirtyParts, rewrittenBytes atomic.Int64
	err := par.Do(len(r.res), r.ioPar, func(p int) error {
		res := r.res[p]
		part := mr.PartPath(output, p)
		if !res.Dirty() {
			// The recorded materialization is only reusable if the file
			// actually exists in THIS process's DFS namespace — after a
			// restart it will not, and skipping or cloning would publish
			// an output with missing partitions.
			last := res.LastOutput()
			if last == part {
				if _, err := r.eng.FS().Stat(part); err == nil {
					return nil
				}
			} else if last != "" {
				if err := r.eng.FS().Clone(last, part); err == nil {
					return res.Materialized(part)
				}
			}
		}
		// Everything below re-serializes the partition from its store —
		// because it is dirty, or because a clean partition's previous
		// part file is gone (fresh DFS namespace after a restart). Both
		// count as rewritten: the counters mean "partitions/bytes this
		// refresh actually re-serialized".
		dirtyParts.Add(1)
		w, err := r.eng.FS().Create(part)
		if err != nil {
			return err
		}
		err = res.AllGroups(func(_ string, outs []kv.Pair) error {
			for _, o := range outs {
				if err := w.WritePair(o); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			w.Abort()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		fi, err := r.eng.FS().Stat(part)
		if err != nil {
			return err
		}
		rewrittenBytes.Add(fi.Bytes)
		return res.Materialized(part)
	})
	if err != nil {
		return err
	}
	if rep != nil {
		rep.Add(metrics.CounterResultDirtyPartitions, dirtyParts.Load())
		rep.Add(metrics.CounterResultBytesRewritten, rewrittenBytes.Load())
		rep.AddStage(metrics.StageCheckpoint, time.Since(start))
	}
	return nil
}

// resultCompactions sums the result stores' cumulative compaction
// counters; RunDelta reports the per-refresh difference.
func (r *Runner) resultCompactions() int64 {
	var n int64
	for _, res := range r.res {
		n += res.Stats().Compactions
	}
	return n
}

// reportResultStats records the refresh's result-store shape counters.
// Orphaned is a gauge (cumulative since Open): non-zero means segment
// deletions failed and durable space is leaking.
func (r *Runner) reportResultStats(rep *metrics.Report, compBefore int64) {
	var segs, orphaned, blocks, skips, decomp int64
	for _, res := range r.res {
		st := res.Stats()
		segs += int64(st.Segments)
		orphaned += st.Orphaned
		blocks += st.BlocksRead
		skips += st.BloomSkips
		decomp += st.BytesDecompressed
	}
	rep.Add(metrics.CounterResultSegments, segs)
	rep.Add(metrics.CounterResultCompactions, r.resultCompactions()-compBefore)
	rep.Add(metrics.CounterResultSegmentsOrphaned, orphaned)
	// Segment read-path gauges, cumulative since Open (like Orphaned).
	rep.Add(metrics.CounterResultBlocksRead, blocks)
	rep.Add(metrics.CounterResultBloomSkips, skips)
	rep.Add(metrics.CounterResultBytesDecompressed, decomp)
	if r.sched != nil {
		rep.Add(metrics.CounterCompactQueueDepth, r.sched.QueueDepth())
		rep.Add(metrics.CounterCompactBGRuns, r.sched.Runs())
	}
}

// Outputs returns the current result set as a key-sorted slice,
// concatenated across partitions.
func (r *Runner) Outputs() ([]kv.Pair, error) {
	var out []kv.Pair
	for _, res := range r.res {
		err := res.AllGroups(func(_ string, ps []kv.Pair) error {
			out = append(out, ps...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	kv.SortPairs(out)
	return out, nil
}
