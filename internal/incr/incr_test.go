package incr

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/mr"
)

func newEngine(t *testing.T, nodes int) *mr.Engine {
	t.Helper()
	root := t.TempDir()
	fs, err := dfs.New(dfs.Config{Root: root + "/dfs", BlockSize: 256, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, SlotsPerNode: 2, ScratchRoot: root + "/scratch"})
	if err != nil {
		t.Fatal(err)
	}
	return mr.NewEngine(fs, cl)
}

// The paper's Fig. 3 example: input records are adjacency lists
// "j1:w1;j2:w2", Map emits (j, w) per out-edge, Reduce sums in-edge
// weights per vertex.
var edgeWeightMapper = mr.MapperFunc(func(key, value string, emit mr.Emit) error {
	if value == "" {
		return nil
	}
	for _, part := range strings.Split(value, ";") {
		j, w, ok := strings.Cut(part, ":")
		if !ok {
			return fmt.Errorf("bad edge %q", part)
		}
		emit(j, w)
	}
	return nil
})

var sumWeightsReducer = mr.ReducerFunc(func(key string, values []string, emit mr.Emit) error {
	var sum float64
	for _, v := range values {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		sum += f
	}
	emit(key, strconv.FormatFloat(sum, 'g', 12, 64))
	return nil
})

// recompute runs the same computation from scratch with the plain MR
// engine — the ground truth incremental processing must match.
func recompute(t *testing.T, eng *mr.Engine, input string, n int) map[string]string {
	t.Helper()
	out := fmt.Sprintf("recompute-%s-%d", input, rand.Int())
	if _, err := eng.Run(mr.Job{
		Name: "recompute", Input: input, Output: out,
		Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: n,
	}); err != nil {
		t.Fatal(err)
	}
	ps, err := eng.ReadOutput(out, n)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]string{}
	for _, p := range ps {
		m[p.Key] = p.Value
	}
	return m
}

// outs reads the runner's current result set, failing the test on
// store errors.
func outs(t *testing.T, r *Runner) []kv.Pair {
	t.Helper()
	ps, err := r.Outputs()
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func outputsAsMap(ps []kv.Pair) map[string]string {
	m := map[string]string{}
	for _, p := range ps {
		m[p.Key] = p.Value
	}
	return m
}

func TestPaperFig3Scenario(t *testing.T) {
	eng := newEngine(t, 2)
	// Initial graph from Fig. 3 (a).
	initial := []kv.Pair{
		{Key: "0", Value: "1:0.3;2:0.3"},
		{Key: "1", Value: "2:0.4"},
		{Key: "2", Value: "0:0.5"},
	}
	if err := eng.FS().WriteAllPairs("graph-v1", initial); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, Job{
		Name: "inedge", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("graph-v1", "out-v1"); err != nil {
		t.Fatal(err)
	}
	want := recompute(t, eng, "graph-v1", 2)
	if got := outputsAsMap(outs(t, r)); !reflect.DeepEqual(got, want) {
		t.Fatalf("initial outputs = %v, want %v", got, want)
	}

	// Fig. 3 (b): delete vertex 1, insert vertex 3, modify vertex 0.
	delta := []kv.Delta{
		{Key: "1", Value: "2:0.4", Op: kv.OpDelete},
		{Key: "3", Value: "0:0.1", Op: kv.OpInsert},
		{Key: "0", Value: "1:0.3;2:0.3", Op: kv.OpDelete},
		{Key: "0", Value: "2:0.6", Op: kv.OpInsert},
	}
	if err := eng.FS().WriteAllDeltas("graph-delta", delta); err != nil {
		t.Fatal(err)
	}
	updated := []kv.Pair{
		{Key: "0", Value: "2:0.6"},
		{Key: "2", Value: "0:0.5"},
		{Key: "3", Value: "0:0.1"},
	}
	if err := eng.FS().WriteAllPairs("graph-v2", updated); err != nil {
		t.Fatal(err)
	}

	rep, err := r.RunDelta("graph-delta", "out-v2")
	if err != nil {
		t.Fatal(err)
	}
	want2 := recompute(t, eng, "graph-v2", 2)
	if got := outputsAsMap(outs(t, r)); !reflect.DeepEqual(got, want2) {
		t.Fatalf("incremental outputs = %v, want %v", got, want2)
	}
	// Vertex 1 lost its only in-edge (from nobody) — actually vertex 1
	// as a reduce key must disappear: only record "0" pointed at 1.
	if _, ok := outputsAsMap(outs(t, r))["1"]; ok {
		t.Fatal("vertex 1 still has an in-edge sum after its last in-edge was deleted")
	}
	// The DFS output matches the in-memory view.
	ps, err := eng.ReadOutput("out-v2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outputsAsMap(ps), want2) {
		t.Fatalf("DFS outputs = %v, want %v", outputsAsMap(ps), want2)
	}
	if rep.Counter("delta.edges") == 0 {
		t.Fatal("no delta edges recorded")
	}
}

func TestIncrementalMatchesRecomputeRandomized(t *testing.T) {
	eng := newEngine(t, 3)
	rng := rand.New(rand.NewSource(11))
	const nVertices = 40

	mkValue := func() string {
		n := rng.Intn(4) + 1
		seen := map[int]bool{}
		var parts []string
		for len(parts) < n {
			j := rng.Intn(nVertices)
			if seen[j] {
				continue
			}
			seen[j] = true
			parts = append(parts, fmt.Sprintf("%d:%.2f", j, rng.Float64()))
		}
		return strings.Join(parts, ";")
	}

	current := map[string]string{}
	for i := 0; i < nVertices; i++ {
		current[strconv.Itoa(i)] = mkValue()
	}
	writeCurrent := func(path string) {
		var ps []kv.Pair
		for k, v := range current {
			ps = append(ps, kv.Pair{Key: k, Value: v})
		}
		kv.SortPairs(ps)
		if err := eng.FS().WriteAllPairs(path, ps); err != nil {
			t.Fatal(err)
		}
	}
	writeCurrent("g0")

	r, err := NewRunner(eng, Job{
		Name: "rand", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g0", "o0"); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 5; round++ {
		var delta []kv.Delta
		// Modify ~20% of vertices; delete a couple; insert new ones.
		for k, v := range current {
			switch rng.Intn(10) {
			case 0:
				delta = append(delta, kv.Delta{Key: k, Value: v, Op: kv.OpDelete})
				delete(current, k)
			case 1, 2:
				nv := mkValue()
				delta = append(delta, kv.Delta{Key: k, Value: v, Op: kv.OpDelete})
				delta = append(delta, kv.Delta{Key: k, Value: nv, Op: kv.OpInsert})
				current[k] = nv
			}
		}
		nk := strconv.Itoa(nVertices + round)
		nv := mkValue()
		delta = append(delta, kv.Delta{Key: nk, Value: nv, Op: kv.OpInsert})
		current[nk] = nv

		dPath := fmt.Sprintf("d%d", round)
		if err := eng.FS().WriteAllDeltas(dPath, delta); err != nil {
			t.Fatal(err)
		}
		gPath := fmt.Sprintf("g%d", round)
		writeCurrent(gPath)

		if _, err := r.RunDelta(dPath, fmt.Sprintf("o%d", round)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := recompute(t, eng, gPath, 3)
		got := outputsAsMap(outs(t, r))
		if len(got) != len(want) {
			t.Fatalf("round %d: %d keys, want %d", round, len(got), len(want))
		}
		for k, w := range want {
			g := got[k]
			gf, _ := strconv.ParseFloat(g, 64)
			wf, _ := strconv.ParseFloat(w, 64)
			if diff := gf - wf; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("round %d key %s: %s, want %s", round, k, g, w)
			}
		}
	}
	// Store invariants hold after many merge rounds.
	for _, s := range r.Stores() {
		if err := s.VerifyInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOnlyAffectedInstancesReReduced(t *testing.T) {
	eng := newEngine(t, 2)
	var ps []kv.Pair
	for i := 0; i < 100; i++ {
		ps = append(ps, kv.Pair{Key: strconv.Itoa(i), Value: fmt.Sprintf("%d:1.0", (i+1)%100)})
	}
	if err := eng.FS().WriteAllPairs("g", ps); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, Job{
		Name: "affected", Mapper: edgeWeightMapper, Reducer: sumWeightsReducer, NumReducers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("g", "o0"); err != nil {
		t.Fatal(err)
	}
	// One record modified: only one reduce key (its target vertex — and
	// the new target) can be affected.
	delta := []kv.Delta{
		{Key: "5", Value: "6:1.0", Op: kv.OpDelete},
		{Key: "5", Value: "7:2.0", Op: kv.OpInsert},
	}
	if err := eng.FS().WriteAllDeltas("d", delta); err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunDelta("d", "o1")
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Counter("reduce.instances"); n > 2 {
		t.Fatalf("re-reduced %d instances, want <= 2 (vertices 6 and 7)", n)
	}
	want := outputsAsMap(outs(t, r))
	if want["7"] != "3" && !strings.HasPrefix(want["7"], "3") {
		t.Fatalf("vertex 7 sum = %q, want 3 (1.0 existing + 2.0 new)", want["7"])
	}
}

func TestFineGrainWordCountWithDuplicateEmissions(t *testing.T) {
	// One record emits the same K2 several times; the occurrence-aware
	// MK must keep edges distinct and deletions exact.
	eng := newEngine(t, 2)
	wcMap := mr.MapperFunc(func(k, v string, emit mr.Emit) error {
		for _, w := range strings.Fields(v) {
			emit(w, "1")
		}
		return nil
	})
	wcReduce := mr.ReducerFunc(func(k string, vs []string, emit mr.Emit) error {
		emit(k, strconv.Itoa(len(vs)))
		return nil
	})
	if err := eng.FS().WriteAllPairs("docs", []kv.Pair{
		{Key: "d1", Value: "go go go stop"},
		{Key: "d2", Value: "stop go"},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, Job{Name: "wc", Mapper: wcMap, Reducer: wcReduce, NumReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("docs", "o0"); err != nil {
		t.Fatal(err)
	}
	got := outputsAsMap(outs(t, r))
	if got["go"] != "4" || got["stop"] != "2" {
		t.Fatalf("initial counts = %v", got)
	}
	// Delete d1 (three "go"s and one "stop" disappear), insert d3.
	delta := []kv.Delta{
		{Key: "d1", Value: "go go go stop", Op: kv.OpDelete},
		{Key: "d3", Value: "go", Op: kv.OpInsert},
	}
	if err := eng.FS().WriteAllDeltas("d", delta); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunDelta("d", "o1"); err != nil {
		t.Fatal(err)
	}
	got = outputsAsMap(outs(t, r))
	if got["go"] != "2" || got["stop"] != "1" {
		t.Fatalf("refreshed counts = %v, want go:2 stop:1", got)
	}
}

func TestAccumulatorMode(t *testing.T) {
	eng := newEngine(t, 2)
	wcMap := mr.MapperFunc(func(k, v string, emit mr.Emit) error {
		for _, w := range strings.Fields(v) {
			emit(w, "1")
		}
		return nil
	})
	wcReduce := mr.ReducerFunc(func(k string, vs []string, emit mr.Emit) error {
		emit(k, strconv.Itoa(len(vs)))
		return nil
	})
	sumAcc := func(old, new string) string {
		a, _ := strconv.Atoi(old)
		b, _ := strconv.Atoi(new)
		return strconv.Itoa(a + b)
	}
	if err := eng.FS().WriteAllPairs("docs", []kv.Pair{
		{Key: "d1", Value: "alpha beta alpha"},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, Job{
		Name: "wc-acc", Mapper: wcMap, Reducer: wcReduce, NumReducers: 2, Accumulate: sumAcc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Stores()) != 0 {
		t.Fatal("accumulator job created MRBG stores")
	}
	if _, err := r.RunInitial("docs", "o0"); err != nil {
		t.Fatal(err)
	}
	delta := []kv.Delta{
		{Key: "d2", Value: "alpha gamma", Op: kv.OpInsert},
	}
	if err := eng.FS().WriteAllDeltas("d", delta); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunDelta("d", "o1"); err != nil {
		t.Fatal(err)
	}
	got := outputsAsMap(outs(t, r))
	want := map[string]string{"alpha": "3", "beta": "1", "gamma": "1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("accumulated = %v, want %v", got, want)
	}
}

// TestAccumulatorEmptyGroupTreatedAsAbsent is the regression for the
// old[0] panic: Store.Get reports ok for a group materialized with
// zero pairs (a reduce that emitted nothing), and the accumulate path
// indexed old[0] unconditionally. An empty preserved group must fold
// like an absent one.
func TestAccumulatorEmptyGroupTreatedAsAbsent(t *testing.T) {
	eng := newEngine(t, 2)
	wcMap := mr.MapperFunc(func(k, v string, emit mr.Emit) error {
		for _, w := range strings.Fields(v) {
			emit(w, "1")
		}
		return nil
	})
	wcReduce := mr.ReducerFunc(func(k string, vs []string, emit mr.Emit) error {
		emit(k, strconv.Itoa(len(vs)))
		return nil
	})
	sumAcc := func(old, new string) string {
		a, _ := strconv.Atoi(old)
		b, _ := strconv.Atoi(new)
		return strconv.Itoa(a + b)
	}
	if err := eng.FS().WriteAllPairs("docs", []kv.Pair{{Key: "d1", Value: "alpha beta"}}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, Job{
		Name: "wc-acc-empty", Mapper: wcMap, Reducer: wcReduce, NumReducers: 2, Accumulate: sumAcc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("docs", "o0"); err != nil {
		t.Fatal(err)
	}
	// Materialize "gamma" as an EMPTY group in its owning partition's
	// result store, durably.
	p := kv.Partition("gamma", 2)
	res := r.Results()[p]
	res.Set("gamma", nil)
	if err := res.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if old, ok, err := res.Get("gamma"); err != nil || !ok || len(old) != 0 {
		t.Fatalf("precondition: Get(gamma) = %v %v %v, want ok with zero pairs", old, ok, err)
	}
	// The refresh accumulates into "gamma": before the fix this panicked
	// on old[0]; now the empty group folds like an absent one.
	delta := []kv.Delta{{Key: "d2", Value: "gamma gamma", Op: kv.OpInsert}}
	if err := eng.FS().WriteAllDeltas("d", delta); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunDelta("d", "o1"); err != nil {
		t.Fatal(err)
	}
	got := outputsAsMap(outs(t, r))
	if got["gamma"] != "2" {
		t.Fatalf("gamma = %q, want 2 (empty group folded as absent)", got["gamma"])
	}
}

func TestAccumulatorRejectsDeletions(t *testing.T) {
	eng := newEngine(t, 1)
	r, err := NewRunner(eng, Job{
		Name:    "acc-del",
		Mapper:  mr.MapperFunc(func(k, v string, emit mr.Emit) error { emit(k, v); return nil }),
		Reducer: mr.ReducerFunc(func(k string, vs []string, emit mr.Emit) error { emit(k, vs[0]); return nil }),
		Accumulate: func(old, new string) string {
			return new
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := eng.FS().WriteAllPairs("in", []kv.Pair{{Key: "a", Value: "1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("in", "o0"); err != nil {
		t.Fatal(err)
	}
	if err := eng.FS().WriteAllDeltas("d", []kv.Delta{{Key: "a", Value: "1", Op: kv.OpDelete}}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunDelta("d", "o1"); err == nil {
		t.Fatal("accumulator job accepted a deletion")
	}
}

func TestLifecycleErrors(t *testing.T) {
	eng := newEngine(t, 1)
	mkJob := func() Job {
		return Job{
			Name:    "life",
			Mapper:  edgeWeightMapper,
			Reducer: sumWeightsReducer,
		}
	}
	if _, err := NewRunner(eng, Job{}); err == nil {
		t.Fatal("NewRunner without name/mapper succeeded")
	}
	r, err := NewRunner(eng, mkJob())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunDelta("d", "o"); err == nil {
		t.Fatal("RunDelta before RunInitial succeeded")
	}
	if err := eng.FS().WriteAllPairs("in", []kv.Pair{{Key: "0", Value: "1:1.0"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("in", "o0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("in", "o1"); err == nil {
		t.Fatal("second RunInitial succeeded")
	}
}
