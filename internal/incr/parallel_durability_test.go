package incr

// Crash/resume coverage for the one-step engine's parallel durability
// plane: with Job.IOParallelism > 1 the per-partition result-store and
// MRBG-Store checkpoints fan out concurrently, Open recovers every
// partition in parallel, and background compaction defers segment
// folding off the refresh — none of which may change a byte of the
// recovered outputs.

import (
	"fmt"
	"reflect"
	"testing"

	"i2mapreduce/internal/kv"
)

// TestOpenResumesAfterRestartParallelSweep mirrors the serial restart
// test at every (IOParallelism, compaction-mode) configuration: kill
// after a checkpointed delta refresh, Open, and require the recovered
// outputs byte-identical to the pre-kill ones and the next refresh
// byte-identical to a full recompute.
func TestOpenResumesAfterRestartParallelSweep(t *testing.T) {
	const parts = 3
	initial, deltas, snapshots := graphRounds(23, 30, 2)

	for _, ioPar := range []int{2, 8} {
		for _, bg := range []bool{false, true} {
			label := fmt.Sprintf("iopar=%d/bg=%v", ioPar, bg)
			job := Job{
				Name:   fmt.Sprintf("par-resume-io%d-bg%v", ioPar, bg),
				Mapper: edgeWeightMapper, Reducer: sumWeightsReducer,
				NumReducers: parts, IOParallelism: ioPar, BackgroundCompaction: bg,
			}

			root := t.TempDir()
			eng := engineAt(t, root, 2)
			if err := eng.FS().WriteAllPairs("g0", initial); err != nil {
				t.Fatal(err)
			}
			r, err := NewRunner(eng, job)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.RunInitial("g0", "o0"); err != nil {
				t.Fatalf("%s: initial: %v", label, err)
			}
			if err := eng.FS().WriteAllDeltas("d0", deltas[0]); err != nil {
				t.Fatal(err)
			}
			if _, err := r.RunDelta("d0", "o1"); err != nil {
				t.Fatalf("%s: d0: %v", label, err)
			}
			preRestart := outs(t, r)
			if err := r.Close(); err != nil { // "kill" at the job boundary
				t.Fatal(err)
			}

			eng2 := engineAt(t, root, 2)
			r2, err := Open(eng2, job)
			if err != nil {
				t.Fatalf("%s: Open after restart: %v", label, err)
			}
			if got := outs(t, r2); !reflect.DeepEqual(got, preRestart) {
				t.Fatalf("%s: resumed outputs differ:\n got %v\nwant %v", label, got, preRestart)
			}

			if err := eng2.FS().WriteAllDeltas("d1", deltas[1]); err != nil {
				t.Fatal(err)
			}
			if _, err := r2.RunDelta("d1", "o2"); err != nil {
				t.Fatalf("%s: d1 after restart: %v", label, err)
			}
			var full []kv.Pair
			for k, v := range snapshots[1] {
				full = append(full, kv.Pair{Key: k, Value: v})
			}
			kv.SortPairs(full)
			if err := eng2.FS().WriteAllPairs("gfinal", full); err != nil {
				t.Fatal(err)
			}
			want := recompute(t, eng2, "gfinal", parts)
			if got := outputsAsMap(outs(t, r2)); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: post-restart refresh = %v, want %v", label, got, want)
			}
			for _, s := range r2.Stores() {
				if err := s.VerifyInvariants(); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
			if err := r2.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
