package incr

import (
	"time"

	"i2mapreduce/internal/engine"
	"i2mapreduce/internal/metrics"
)

// The one-step engine as an engine.Refresher: Refresh wraps RunDelta in
// the unified shape the planner and serving layer dispatch through.

var _ engine.Refresher = (*Runner)(nil)

// Refresh implements engine.Refresher: one RunDelta refresh of output
// from deltaInput, with wall time and delta size captured for the cost
// model.
func (r *Runner) Refresh(deltaInput, output string) (*engine.RefreshResult, error) {
	start := time.Now()
	rep, err := r.RunDelta(deltaInput, output)
	if err != nil {
		return nil, err
	}
	res := &engine.RefreshResult{
		Mode:   engine.ModeOneStep,
		Report: rep,
		Wall:   time.Since(start),
		// RunDelta's map stage counts each consumed delta record.
		DeltaRecords: rep.Counter(metrics.CounterMapRecordsIn),
		Output:       output,
	}
	r.refreshStats.Observe(res)
	return res, nil
}

// Stats implements engine.Refresher.
func (r *Runner) Stats() engine.Stats { return r.refreshStats.Snapshot() }
