package ingest_test

// End-to-end crash-equivalence tests: a streaming deployment (staging
// log + micro-batch refreshes through the serving layer) that is killed
// mid-stream must, after recovery and drain, hold results byte-identical
// to a batch deployment that applied the same deltas with one RunDelta.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	i2mr "i2mapreduce"
	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
	"i2mapreduce/internal/ingest"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/serve"
)

const (
	e2eDocs  = 300
	e2eVocab = 50
	e2eWords = 6
)

// newWordCount builds a system with the initial wordcount computed.
func newWordCount(t *testing.T) (*i2mr.System, *i2mr.OneStepRunner, []kv.Pair) {
	t.Helper()
	sys, err := i2mr.New(i2mr.Options{WorkDir: t.TempDir(), Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	corpus := datagen.Tweets(1, e2eDocs, e2eVocab, e2eWords)
	if err := sys.WritePairs("tweets", corpus); err != nil {
		t.Fatal(err)
	}
	runner, err := sys.NewOneStep(apps.FineGrainWordCountJob("wc"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { runner.Close() })
	if _, err := runner.RunInitial("tweets", "wc-v1"); err != nil {
		t.Fatal(err)
	}
	return sys, runner, corpus
}

func e2eDeltas(corpus []kv.Pair) []kv.Delta {
	deltas, _ := datagen.Mutate(7, corpus, datagen.MutateOptions{
		ModifyFraction: 0.2,
		Rewrite: func(rng *rand.Rand, key, value string) string {
			return value + fmt.Sprintf(" w%04d", rng.Intn(e2eVocab))
		},
	})
	return deltas
}

func outputsOf(t *testing.T, r *i2mr.OneStepRunner) []kv.Pair {
	t.Helper()
	outs, err := r.Outputs()
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

// assertSameOutputs compares two materialized result sets pair-for-pair.
func assertSameOutputs(t *testing.T, got, want []kv.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("streaming result has %d pairs, batch has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: streaming %+v, batch %+v", i, got[i], want[i])
		}
	}
}

// TestCrashBetweenStageAndRefreshMatchesBatch kills the streaming side
// in the window after records are durably staged but before any refresh
// ran, recovers, drains through multiple micro-batches, and compares
// against one batch RunDelta of the same deltas.
func TestCrashBetweenStageAndRefreshMatchesBatch(t *testing.T) {
	sysA, runnerA, corpus := newWordCount(t)
	deltas := e2eDeltas(corpus)

	srv, err := serve.NewOneStep(runnerA, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stagingDir := t.TempDir()
	cfg := ingest.Config{
		Dir:         stagingDir,
		Refresh:     ingest.BindServe(srv, runnerA),
		WriteDeltas: sysA.WriteDeltas,
		AppliedJobs: runnerA.CompletedJobs,
		// Small record cap: the drain must split the stream into many
		// micro-batch refreshes and still match one batch RunDelta.
		Policy: ingest.Policy{MaxLag: time.Hour, MaxBatchRecords: 8},
	}
	in, err := ingest.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := in.AddBatch(deltas); err != nil {
		t.Fatal(err)
	}
	in.Kill() // crash: staged, zero refreshes ran

	in2, err := ingest.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := in2.Stats(); st.Replayed != int64(len(deltas)) {
		t.Fatalf("replayed %d records, want %d", st.Replayed, len(deltas))
	}
	in2.AttachTo(srv)
	in2.Start()
	if err := in2.Flush(); err != nil {
		t.Fatal(err)
	}
	st := in2.Stats()
	if st.Batches < 2 {
		t.Fatalf("drain used %d micro-batches, want several (records=%d cap=8)", st.Batches, len(deltas))
	}
	if st.AppliedSeq != int64(len(deltas)) || st.PendingRecords != 0 {
		t.Fatalf("post-drain stats = %+v", st)
	}

	// The serving layer surfaces the watermark.
	sst := srv.Stats()
	if sst.Ingest == nil || sst.Ingest.AppliedSeq != int64(len(deltas)) || sst.Ingest.Replayed != int64(len(deltas)) {
		t.Fatalf("serve stats ingest = %+v", sst.Ingest)
	}
	if sst.Epoch < 2 {
		t.Fatalf("epoch = %d, want flipped per micro-batch", sst.Epoch)
	}
	if err := in2.Close(); err != nil {
		t.Fatal(err)
	}

	// Batch twin: same corpus, same deltas, one RunDelta.
	sysB, runnerB, _ := newWordCount(t)
	if err := sysB.WriteDeltas("delta-1", deltas); err != nil {
		t.Fatal(err)
	}
	if _, err := runnerB.RunDelta("delta-1", "wc-v2"); err != nil {
		t.Fatal(err)
	}
	assertSameOutputs(t, outputsOf(t, runnerA), outputsOf(t, runnerB))

	// And the serving read path agrees with the materialized result.
	want := outputsOf(t, runnerB)
	for _, p := range []kv.Pair{want[0], want[len(want)/2], want[len(want)-1]} {
		pairs, found, _, err := srv.Get(p.Key)
		if err != nil || !found || len(pairs) != 1 || pairs[0] != p {
			t.Fatalf("srv.Get(%q) = %v found=%v err=%v, want %+v", p.Key, pairs, found, err, p)
		}
	}
}

// TestCrashMidStreamReplaysOnlyUnapplied kills the streaming side after
// some micro-batches committed, with more records staged: recovery must
// replay only the records above the watermark (a double-apply would
// skew the word counts and break the batch comparison).
func TestCrashMidStreamReplaysOnlyUnapplied(t *testing.T) {
	sysA, runnerA, corpus := newWordCount(t)
	deltas := e2eDeltas(corpus)
	split := len(deltas) / 2

	srv, err := serve.NewOneStep(runnerA, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stagingDir := t.TempDir()
	cfg := ingest.Config{
		Dir:         stagingDir,
		Refresh:     ingest.BindServe(srv, runnerA),
		WriteDeltas: sysA.WriteDeltas,
		AppliedJobs: runnerA.CompletedJobs,
		Policy:      ingest.Policy{MaxLag: time.Hour, MaxBatchRecords: 8},
	}
	in, err := ingest.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	if _, _, err := in.AddBatch(deltas[:split]); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil { // first half fully applied
		t.Fatal(err)
	}
	if _, _, err := in.AddBatch(deltas[split:]); err != nil {
		t.Fatal(err)
	}
	in.Kill() // crash: second half staged, not applied (MaxLag is an hour)

	in2, err := ingest.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := in2.Stats(); st.Replayed != int64(len(deltas)-split) {
		t.Fatalf("replayed %d records, want only the unapplied %d", st.Replayed, len(deltas)-split)
	}
	in2.Start()
	if err := in2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := in2.Close(); err != nil {
		t.Fatal(err)
	}

	sysB, runnerB, _ := newWordCount(t)
	if err := sysB.WriteDeltas("delta-1", deltas); err != nil {
		t.Fatal(err)
	}
	if _, err := runnerB.RunDelta("delta-1", "wc-v2"); err != nil {
		t.Fatal(err)
	}
	assertSameOutputs(t, outputsOf(t, runnerA), outputsOf(t, runnerB))
}
