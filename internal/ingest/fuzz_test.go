package ingest

import (
	"strings"
	"testing"
	"time"

	"i2mapreduce/internal/kv"
)

// FuzzWALLine feeds arbitrary text through the staging-log line parser.
// Malformed lines must come back as errors, never panics, and any line
// that parses must survive an encode/parse round trip unchanged —
// recovery replays these lines after a crash, so a lossy round trip
// would silently corrupt re-ingested deltas.
func FuzzWALLine(f *testing.F) {
	for _, rec := range []walRecord{
		{seq: 1, enq: time.Unix(0, 1700000000), d: kv.Delta{Key: "k", Value: "v", Op: kv.OpInsert}},
		{seq: 42, enq: time.Unix(0, -5), d: kv.Delta{Key: "tab\tkey", Value: "line\nvalue", Op: kv.OpDelete}},
		{seq: 0, enq: time.Unix(0, 0), d: kv.Delta{Key: `back\slash`, Value: "", Op: kv.OpInsert}},
	} {
		f.Add(strings.TrimSuffix(string(appendWALRecord(nil, rec)), "\n"))
	}
	f.Add("")
	f.Add("1\t2\t+\tk")
	f.Add("not\ta\tnumber\tk\tv")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := parseWALLine(line)
		if err != nil {
			return
		}
		encoded := appendWALRecord(nil, rec)
		line2 := strings.TrimSuffix(string(encoded), "\n")
		rec2, err := parseWALLine(line2)
		if err != nil {
			t.Fatalf("re-encoded line %q does not parse: %v", line2, err)
		}
		if rec2.seq != rec.seq || rec2.enq.UnixNano() != rec.enq.UnixNano() || rec2.d != rec.d {
			t.Fatalf("round trip changed record: %+v -> %q -> %+v", rec, line2, rec2)
		}
	})
}
