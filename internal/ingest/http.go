package ingest

// HTTP front of the ingester: POST /ingest accepts delta records in
// either of two bodies —
//
//	application/json:  {"deltas":[{"key":"k","value":"v","op":"+"}]}
//	text/plain:        one kv text-codec delta line per line
//	                   (key\tvalue\t+ — the DFS delta-file format)
//
// and stages them durably before responding. The response carries the
// assigned ingest sequence range; readers can poll /stats until the
// applied watermark passes last_seq to observe the refresh.
//
//	202 {"first_seq":N,"last_seq":M,"records":K}   accepted and durable
//	400                                            malformed body
//	429 (Retry-After: 1)                           backpressure (RejectOnFull)
//	503                                            closed or latched

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"

	"i2mapreduce/internal/kv"
)

// httpMaxBody bounds one /ingest request body.
const httpMaxBody = 8 << 20

// HTTPDelta is one delta record in a JSON ingest request: op is "+"
// (insert, the default when empty) or "-" (delete).
type HTTPDelta struct {
	Key   string `json:"key"`
	Value string `json:"value"`
	Op    string `json:"op,omitempty"`
}

// HTTPIngestRequest frames a JSON POST /ingest body.
type HTTPIngestRequest struct {
	Deltas []HTTPDelta `json:"deltas"`
}

// HTTPIngestResponse frames a successful POST /ingest response.
type HTTPIngestResponse struct {
	FirstSeq int64 `json:"first_seq"`
	LastSeq  int64 `json:"last_seq"`
	Records  int   `json:"records"`
}

func (d HTTPDelta) delta() (kv.Delta, error) {
	op := kv.OpInsert
	switch d.Op {
	case "", "+":
	case "-":
		op = kv.OpDelete
	default:
		return kv.Delta{}, errors.New("op must be \"+\" or \"-\"")
	}
	return kv.Delta{Key: d.Key, Value: d.Value, Op: op}, nil
}

// Handler returns the HTTP ingestion endpoint, for mounting at /ingest
// beside the serving routes (serve.Server.HandlerWith).
func (in *Ingester) Handler() http.Handler {
	return http.HandlerFunc(in.handleIngest)
}

func (in *Ingester) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ds, err := decodeIngestBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(ds) == 0 {
		httpError(w, http.StatusBadRequest, "no deltas")
		return
	}
	first, last, err := in.AddBatch(ds)
	switch {
	case errors.Is(err, ErrBackpressure):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, HTTPIngestResponse{FirstSeq: first, LastSeq: last, Records: len(ds)})
}

// decodeIngestBody parses either body form by Content-Type (JSON unless
// the type says text).
func decodeIngestBody(w http.ResponseWriter, r *http.Request) ([]kv.Delta, error) {
	body := http.MaxBytesReader(w, r.Body, httpMaxBody)
	ct := r.Header.Get("Content-Type")
	if ct == "text/plain" || ct == "text/plain; charset=utf-8" {
		var ds []kv.Delta
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			d, err := kv.ParseTextDelta(line)
			if err != nil {
				return nil, err
			}
			ds = append(ds, d)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return ds, nil
	}
	var req HTTPIngestRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return nil, errors.New("bad JSON body: " + err.Error())
	}
	ds := make([]kv.Delta, len(req.Deltas))
	for i, hd := range req.Deltas {
		d, err := hd.delta()
		if err != nil {
			return nil, err
		}
		ds[i] = d
	}
	return ds, nil
}

// writeJSON / httpError mirror the serving layer's response helpers so
// the ingest endpoint speaks the same JSON error shape.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
