// Package ingest is the continuous streaming-ingestion pipeline over
// the refresh engines: an always-on front door that accepts individual
// delta records (Ingester.Add / AddBatch, plus POST /ingest in http.go),
// stages them durably in a WAL-style staging log (wal.go), and
// micro-batches them into engine.Refresher refreshes under a batching
// policy — converting the repo's hand-invoked batch refreshes into the
// paper's evolving-data story running end to end.
//
// # Watermarks and freshness
//
// Every accepted record gets a monotone ingest sequence number; the
// staging log makes it durable before Add returns. A background loop
// cuts the pending records into micro-batches when the policy fires
// (oldest pending record older than MaxLag, or MaxBatchRecords /
// MaxBatchBytes reached), writes each batch as a DFS delta file, and
// runs it through the configured Refresh function — normally bound to
// serve.Server.Refresh (BindServe) or the planner's RefreshPlanned
// (BindServePlanned) so reads stay on the pinned epoch throughout and
// flip atomically when the batch commits. The last sequence number of a
// committed batch becomes the applied watermark; the freshness lag is
// the age of the oldest record above it.
//
// # Crash recovery and exactly-once
//
// The commit order per batch is: delta file → batch.intent (recording
// the engine's durable CompletedJobs count) → refresh → ingest.meta
// watermark → intent unlink. Open replays the other side: staged
// records above the watermark are re-queued, and a surviving intent is
// resolved by asking the engine — if its completed-job count advanced
// past the recorded value the refresh committed (only the watermark
// commit was lost) and the records are marked applied; otherwise the
// batch never committed and its records are replayed. Either way each
// accepted record is applied exactly once.
//
// # Backpressure
//
// The staging depth (accepted-but-unapplied records/bytes) is bounded.
// At the bound, BlockOnFull makes Add wait for the loop to catch up;
// RejectOnFull fails fast with ErrBackpressure (HTTP 429), counting the
// rejection.
package ingest

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"i2mapreduce/internal/engine"
	"i2mapreduce/internal/fsutil"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/plan"
	"i2mapreduce/internal/serve"
)

// ErrBackpressure is returned by Add/AddBatch in RejectOnFull mode when
// the staging depth is at its bound; the caller should retry later.
var ErrBackpressure = errors.New("ingest: staging log full (backpressure)")

// ErrClosed is returned by Add/AddBatch after Close or Kill.
var ErrClosed = errors.New("ingest: ingester is closed")

// errKilled latches the ingester after Kill.
var errKilled = errors.New("ingest: ingester was killed")

// Backpressure selects what Add does when the staging depth is at its
// bound.
type Backpressure int

const (
	// BlockOnFull makes Add wait until the micro-batch loop drains the
	// staging log below its bound (the default).
	BlockOnFull Backpressure = iota
	// RejectOnFull makes Add fail fast with ErrBackpressure, counting
	// the rejection ("ingest.rejected", HTTP 429).
	RejectOnFull
)

// Policy controls when the pending records are cut into a micro-batch.
// The zero value of each field selects its default.
type Policy struct {
	// MaxLag bounds freshness: a batch is cut when the oldest pending
	// record has been waiting this long. Default 2s.
	MaxLag time.Duration
	// MaxBatchRecords / MaxBatchBytes cut a batch early when enough
	// records (bytes) are pending, and bound how much one batch takes.
	// Defaults 10000 records / 4 MiB.
	MaxBatchRecords int
	MaxBatchBytes   int64
	// MinInterval spaces refreshes: a batch is never cut sooner than
	// this after the previous cut, whatever the other triggers say
	// (drain on Close and explicit Flush are exempt). Default 0.
	MinInterval time.Duration
}

// Policy defaults.
const (
	DefaultMaxLag           = 2 * time.Second
	DefaultMaxBatchRecords  = 10000
	DefaultMaxBatchBytes    = 4 << 20
	DefaultMaxStagedRecords = 100000
	DefaultMaxStagedBytes   = 64 << 20
	defaultRotateBytes      = 4 << 20
)

// Config configures an Ingester. Dir, Refresh, and WriteDeltas are
// required; everything else has working defaults.
type Config struct {
	// Dir hosts the durable staging log (WAL files, watermark, batch
	// intent). Created if missing.
	Dir string
	// Refresh applies one micro-batch: deltaInput is the DFS delta file
	// the batch was written to, output the per-batch output path, and
	// records the batch size. Bind it with BindServe / BindServePlanned
	// to run under the serving layer's epoch discipline. An error
	// latches the ingester (the engines latch themselves too).
	Refresh func(deltaInput, output string, records int64) error
	// WriteDeltas materializes a batch as a DFS delta file — normally
	// System.WriteDeltas or FS().WriteAllDeltas.
	WriteDeltas func(path string, ds []kv.Delta) error
	// AppliedJobs reports the engine's durable completed-job count
	// (incr.Runner.CompletedJobs / core.Runner.CompletedJobs). It must
	// advance by at least one per successful Refresh; recovery compares
	// it against the count recorded in a surviving batch intent to
	// decide committed-vs-replay. Nil disables the check: a surviving
	// intent is then always replayed, which is exactly-once only for
	// idempotent (fine-grain) refreshes.
	AppliedJobs func() int64
	// DeltaPathPrefix / OutputPrefix name the per-batch DFS delta files
	// ("<prefix>/batch-<id>") and refresh outputs ("<prefix>-<id>").
	// Defaults "ingest" and "ingest-out".
	DeltaPathPrefix string
	OutputPrefix    string
	// Policy is the micro-batching policy.
	Policy Policy
	// Backpressure selects block-or-reject at the staging bound.
	Backpressure Backpressure
	// MaxStagedRecords / MaxStagedBytes bound the staging depth
	// (accepted-but-unapplied records). Defaults 100000 / 64 MiB;
	// negative disables the bound.
	MaxStagedRecords int
	MaxStagedBytes   int64
	// RotateBytes caps one staging-log file; full files are deleted as
	// the watermark passes them. Default 4 MiB.
	RotateBytes int64
	// NoSync skips the per-Add fsync of the staging log, trading crash
	// durability of the most recent records for ingest throughput.
	NoSync bool
	// OnBatchApplied, when set, is called after each committed batch
	// (outside the ingester's lock) — observability for logs and the
	// bench harness.
	OnBatchApplied func(Batch)
}

// Batch describes one committed micro-batch for OnBatchApplied.
type Batch struct {
	// ID is the batch id (monotone across restarts); FirstSeq/LastSeq
	// the ingest sequence range it covered.
	ID       int64
	FirstSeq int64
	LastSeq  int64
	// Records / Bytes size the batch.
	Records int
	Bytes   int64
	// Oldest is the enqueue time of the batch's oldest record; Applied
	// the commit time — their difference is the batch's worst-case
	// freshness lag.
	Oldest  time.Time
	Applied time.Time
	// Wall is the refresh's wall-clock duration.
	Wall time.Duration
	// DeltaPath / Output are the DFS paths the batch flowed through.
	DeltaPath string
	Output    string
}

// Stats is a point-in-time view of the ingester.
type Stats struct {
	// StagedSeq is the last accepted sequence number; AppliedSeq the
	// last-applied watermark.
	StagedSeq  int64
	AppliedSeq int64
	// PendingRecords / PendingBytes are the staging depth.
	PendingRecords int
	PendingBytes   int64
	// Records / Batches / Rejected / Replayed are cumulative: accepted
	// records, committed batches, backpressure rejections, and records
	// recovered from the staging log at Open.
	Records  int64
	Batches  int64
	Rejected int64
	Replayed int64
	// Lag is the freshness lag: the age of the oldest pending record
	// (0 when drained).
	Lag time.Duration
	// Err is the latched fatal error, nil while healthy.
	Err error
}

// Ingester is the streaming ingestion pipeline. Open recovers it from
// its staging directory, Start begins the micro-batch loop, Add/
// AddBatch accept records, Close drains and stops. Safe for concurrent
// use.
type Ingester struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond    // producers blocked on backpressure, Flush waiters
	wake chan struct{} // nudges the loop (capacity 1)

	pending      []walRecord // accepted, not yet applied (ordered by seq)
	pendingBytes int64
	nextSeq      int64 // next sequence number to assign
	applied      int64 // last applied watermark
	batchID      int64 // last committed batch id
	lastCut      time.Time
	flushTarget  int64

	walFile  *os.File
	walBytes int64

	started  bool
	closed   bool
	fatal    error
	loopDone chan struct{}

	records  int64
	batches  int64
	rejected int64
	replayed int64
}

// Open recovers an Ingester from cfg.Dir: staged records above the
// applied watermark are re-queued for refresh, and a surviving batch
// intent is resolved against the engine's completed-job count (see the
// package comment). The micro-batch loop is not running yet — call
// Start (records accepted before Start stay durably staged).
func Open(cfg Config) (*Ingester, error) {
	if cfg.Dir == "" {
		return nil, errors.New("ingest: Config.Dir is required")
	}
	if cfg.Refresh == nil {
		return nil, errors.New("ingest: Config.Refresh is required")
	}
	if cfg.WriteDeltas == nil {
		return nil, errors.New("ingest: Config.WriteDeltas is required")
	}
	if cfg.Policy.MaxLag == 0 {
		cfg.Policy.MaxLag = DefaultMaxLag
	}
	if cfg.Policy.MaxBatchRecords == 0 {
		cfg.Policy.MaxBatchRecords = DefaultMaxBatchRecords
	}
	if cfg.Policy.MaxBatchBytes == 0 {
		cfg.Policy.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if cfg.Policy.MaxLag < 0 || cfg.Policy.MaxBatchRecords < 0 || cfg.Policy.MaxBatchBytes < 0 || cfg.Policy.MinInterval < 0 {
		return nil, fmt.Errorf("ingest: negative policy values: %+v", cfg.Policy)
	}
	if cfg.MaxStagedRecords == 0 {
		cfg.MaxStagedRecords = DefaultMaxStagedRecords
	}
	if cfg.MaxStagedBytes == 0 {
		cfg.MaxStagedBytes = DefaultMaxStagedBytes
	}
	if cfg.RotateBytes <= 0 {
		cfg.RotateBytes = defaultRotateBytes
	}
	if cfg.DeltaPathPrefix == "" {
		cfg.DeltaPathPrefix = "ingest"
	}
	if cfg.OutputPrefix == "" {
		cfg.OutputPrefix = "ingest-out"
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}

	in := &Ingester{cfg: cfg, wake: make(chan struct{}, 1), loopDone: make(chan struct{})}
	in.cond = sync.NewCond(&in.mu)

	applied, batch, _, err := readMeta(cfg.Dir)
	if err != nil {
		return nil, err
	}
	in.applied, in.batchID = applied, batch

	// Resolve a surviving batch bracket: the previous process died
	// between writing the intent and committing the watermark — or
	// between the watermark and the unlink.
	intent, haveIntent, err := readIntent(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if haveIntent {
		if intent.id > in.batchID {
			// Never reuse the orphan's batch id: its delta file may
			// already exist in the DFS namespace.
			in.batchID = intent.id
		}
		if cfg.AppliedJobs != nil && intent.jobs >= 0 && cfg.AppliedJobs() > intent.jobs {
			// The refresh committed (the engine's durable job count
			// advanced past the recorded value); only the watermark
			// commit was lost. Roll it forward instead of replaying.
			if intent.last > in.applied {
				in.applied = intent.last
			}
			if err := writeMeta(cfg.Dir, in.applied, in.batchID); err != nil {
				return nil, err
			}
		}
		if err := removeIntent(cfg.Dir); err != nil {
			return nil, err
		}
	}

	pending, maxSeq, err := scanWAL(cfg.Dir, in.applied)
	if err != nil {
		return nil, err
	}
	in.pending = pending
	for _, rec := range pending {
		in.pendingBytes += rec.approxBytes()
	}
	in.nextSeq = maxSeq + 1
	in.replayed = int64(len(pending))
	if err := pruneWAL(cfg.Dir, in.applied); err != nil {
		return nil, err
	}
	return in, nil
}

// Start begins the micro-batch loop. Call it once, after any wiring
// (AttachTo, OnBatchApplied) is in place.
func (in *Ingester) Start() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.started || in.closed || in.fatal != nil {
		return
	}
	in.started = true
	//i2vet:allow rawgo single long-lived micro-batch loop; lives until Close/Kill, not a bounded fan-out
	go in.loop()
}

// Add durably stages one delta record and returns its ingest sequence
// number. It blocks (BlockOnFull) or fails with ErrBackpressure
// (RejectOnFull) at the staging bound, and fails with ErrClosed after
// Close/Kill or the latched error after a refresh failure.
func (in *Ingester) Add(d kv.Delta) (int64, error) {
	first, _, err := in.AddBatch([]kv.Delta{d})
	return first, err
}

// AddBatch durably stages a group of delta records in one staging-log
// append (one fsync), returning the first and last assigned sequence
// numbers. The batch is admitted whole once the staging depth is below
// its bound, so a large batch may overshoot the bound.
func (in *Ingester) AddBatch(ds []kv.Delta) (first, last int64, err error) {
	if len(ds) == 0 {
		return 0, 0, errors.New("ingest: empty batch")
	}
	for _, d := range ds {
		if !d.Op.Valid() {
			return 0, 0, fmt.Errorf("ingest: invalid delta op %q", string(d.Op))
		}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for {
		if err := in.acceptErrLocked(); err != nil {
			return 0, 0, err
		}
		if !in.overBoundLocked() {
			break
		}
		if in.cfg.Backpressure == RejectOnFull {
			in.rejected += int64(len(ds))
			return 0, 0, ErrBackpressure
		}
		in.cond.Wait()
	}
	now := time.Now()
	recs := make([]walRecord, len(ds))
	var buf []byte
	for i, d := range ds {
		recs[i] = walRecord{seq: in.nextSeq + int64(i), enq: now, d: d}
		buf = appendWALRecord(buf, recs[i])
	}
	if err := in.appendLocked(buf); err != nil {
		// The staging log is no longer trustworthy (a torn append is
		// recoverable, but reusing its sequence numbers is not): latch.
		in.fatal = fmt.Errorf("ingest: staging log append: %w", err)
		in.cond.Broadcast()
		return 0, 0, in.fatal
	}
	first, last = recs[0].seq, recs[len(recs)-1].seq
	in.nextSeq = last + 1
	in.pending = append(in.pending, recs...)
	for _, rec := range recs {
		in.pendingBytes += rec.approxBytes()
	}
	in.records += int64(len(recs))
	in.wakeLoop()
	return first, last, nil
}

// acceptErrLocked is the gate every Add passes: the latched fatal
// error, or ErrClosed after Close/Kill.
func (in *Ingester) acceptErrLocked() error {
	if in.fatal != nil {
		if errors.Is(in.fatal, errKilled) {
			return ErrClosed
		}
		return in.fatal
	}
	if in.closed {
		return ErrClosed
	}
	return nil
}

// overBoundLocked reports whether the staging depth is at its bound.
func (in *Ingester) overBoundLocked() bool {
	if in.cfg.MaxStagedRecords > 0 && len(in.pending) >= in.cfg.MaxStagedRecords {
		return true
	}
	if in.cfg.MaxStagedBytes > 0 && in.pendingBytes >= in.cfg.MaxStagedBytes {
		return true
	}
	return false
}

// appendLocked writes one encoded append to the staging log, rotating
// the file at the size cap, and fsyncs unless NoSync.
func (in *Ingester) appendLocked(buf []byte) error {
	if in.walFile != nil && in.walBytes >= in.cfg.RotateBytes {
		if err := in.walFile.Close(); err != nil {
			return err
		}
		in.walFile = nil
	}
	if in.walFile == nil {
		path := walPath(in.cfg.Dir, in.nextSeq)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
		if err != nil {
			return err
		}
		if err := fsutil.SyncDir(in.cfg.Dir); err != nil {
			f.Close()
			return err
		}
		in.walFile, in.walBytes = f, 0
	}
	if _, err := in.walFile.Write(buf); err != nil {
		return err
	}
	if !in.cfg.NoSync {
		if err := in.walFile.Sync(); err != nil {
			return err
		}
	}
	in.walBytes += int64(len(buf))
	return nil
}

// wakeLoop nudges the micro-batch loop without blocking.
func (in *Ingester) wakeLoop() {
	select {
	case in.wake <- struct{}{}:
	default:
	}
}

// loop is the micro-batch loop: wait for the policy to fire, cut a
// batch, apply it, commit the watermark — until drained-and-closed or
// a refresh error latches the ingester.
func (in *Ingester) loop() {
	defer close(in.loopDone)
	for {
		b, ok := in.nextBatch()
		if !ok {
			return
		}
		info, err := in.applyBatch(b)
		if err != nil {
			in.mu.Lock()
			in.fatal = err
			in.cond.Broadcast()
			in.mu.Unlock()
			return
		}
		in.completeBatch(b, info)
		if in.cfg.OnBatchApplied != nil {
			in.cfg.OnBatchApplied(info)
		}
	}
}

// cutBatch is one cut of pending records (a prefix of in.pending; the
// records stay in pending — and keep counting toward the staging depth
// and freshness lag — until the batch commits).
type cutBatch struct {
	id    int64
	recs  []walRecord
	bytes int64
}

// nextBatch blocks until the policy (or drain/flush) says a batch is
// due, then cuts it. ok=false when the loop should exit: closed and
// fully drained, killed, or latched.
func (in *Ingester) nextBatch() (cutBatch, bool) {
	for {
		in.mu.Lock()
		if in.fatal != nil {
			in.mu.Unlock()
			return cutBatch{}, false
		}
		if len(in.pending) == 0 {
			closed := in.closed
			in.mu.Unlock()
			if closed {
				return cutBatch{}, false
			}
			<-in.wake
			continue
		}
		now := time.Now()
		urgent := in.closed || in.flushTarget > in.applied
		due := in.pending[0].enq.Add(in.cfg.Policy.MaxLag)
		if urgent ||
			len(in.pending) >= in.cfg.Policy.MaxBatchRecords ||
			in.pendingBytes >= in.cfg.Policy.MaxBatchBytes {
			due = now
		}
		// MinInterval spaces policy-triggered refreshes; drain and
		// Flush bypass it.
		if !urgent && !in.lastCut.IsZero() {
			if e := in.lastCut.Add(in.cfg.Policy.MinInterval); due.Before(e) {
				due = e
			}
		}
		if !now.Before(due) {
			b := in.cutLocked()
			in.mu.Unlock()
			return b, true
		}
		wait := due.Sub(now)
		in.mu.Unlock()
		t := time.NewTimer(wait)
		select {
		case <-in.wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// cutLocked takes the next batch off the front of pending, bounded by
// MaxBatchRecords and MaxBatchBytes (always at least one record).
func (in *Ingester) cutLocked() cutBatch {
	k, bytes := 0, int64(0)
	for k < len(in.pending) && k < in.cfg.Policy.MaxBatchRecords {
		rb := in.pending[k].approxBytes()
		if k > 0 && bytes+rb > in.cfg.Policy.MaxBatchBytes {
			break
		}
		bytes += rb
		k++
	}
	in.lastCut = time.Now()
	return cutBatch{id: in.batchID + 1, recs: in.pending[:k], bytes: bytes}
}

// applyBatch runs one batch through the commit protocol: delta file →
// intent (with the engine's jobs-before count) → refresh → watermark →
// intent unlink → staging-log prune.
func (in *Ingester) applyBatch(b cutBatch) (Batch, error) {
	deltas := make([]kv.Delta, len(b.recs))
	for i, rec := range b.recs {
		deltas[i] = rec.d
	}
	first, last := b.recs[0].seq, b.recs[len(b.recs)-1].seq
	path := fmt.Sprintf("%s/batch-%08d", in.cfg.DeltaPathPrefix, b.id)
	out := fmt.Sprintf("%s-%08d", in.cfg.OutputPrefix, b.id)
	if err := in.cfg.WriteDeltas(path, deltas); err != nil {
		return Batch{}, fmt.Errorf("ingest: writing batch delta file: %w", err)
	}
	jobs := int64(-1)
	if in.cfg.AppliedJobs != nil {
		jobs = in.cfg.AppliedJobs()
	}
	if err := writeIntent(in.cfg.Dir, batchIntent{id: b.id, first: first, last: last, jobs: jobs, delta: path}); err != nil {
		return Batch{}, err
	}
	t := time.Now()
	if err := in.cfg.Refresh(path, out, int64(len(deltas))); err != nil {
		// The intent stays on disk: recovery consults the engine's
		// completed-job count to decide committed-vs-replay.
		return Batch{}, fmt.Errorf("ingest: refresh of batch %d (seq %d-%d): %w", b.id, first, last, err)
	}
	wall := time.Since(t)
	if err := writeMeta(in.cfg.Dir, last, b.id); err != nil {
		return Batch{}, err
	}
	if err := removeIntent(in.cfg.Dir); err != nil {
		return Batch{}, err
	}
	if err := pruneWAL(in.cfg.Dir, last); err != nil {
		return Batch{}, err
	}
	return Batch{
		ID: b.id, FirstSeq: first, LastSeq: last,
		Records: len(b.recs), Bytes: b.bytes,
		Oldest: b.recs[0].enq, Applied: time.Now(), Wall: wall,
		DeltaPath: path, Output: out,
	}, nil
}

// completeBatch advances the in-memory watermark and releases the
// batch's records (unblocking backpressured producers and Flush).
func (in *Ingester) completeBatch(b cutBatch, info Batch) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.pending = in.pending[len(b.recs):]
	in.pendingBytes -= b.bytes
	in.applied = info.LastSeq
	in.batchID = info.ID
	in.batches++
	in.cond.Broadcast()
}

// Flush forces everything accepted so far through refreshes and waits
// until it is applied (or the ingester latches). Requires Start.
func (in *Ingester) Flush() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.started {
		return errors.New("ingest: Flush before Start")
	}
	target := in.nextSeq - 1
	if target > in.flushTarget {
		in.flushTarget = target
	}
	in.wakeLoop()
	for in.applied < target && in.fatal == nil {
		in.cond.Wait()
	}
	return in.fatal
}

// Close drains gracefully: no new records are accepted, everything
// already staged is applied through refreshes, then the loop stops and
// the staging log is closed. Returns the latched error if the drain
// failed (the unapplied records stay durably staged for the next Open).
func (in *Ingester) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		<-in.loopDone
		return nil
	}
	in.closed = true
	started := in.started
	if !started {
		close(in.loopDone)
	}
	in.cond.Broadcast()
	in.wakeLoop()
	in.mu.Unlock()
	if started {
		<-in.loopDone
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.walFile != nil {
		//i2vet:allow errclose staging-log appends fsync before Add returns; nothing is left to flush at shutdown
		in.walFile.Close()
		in.walFile = nil
	}
	if in.fatal != nil && !errors.Is(in.fatal, errKilled) {
		return in.fatal
	}
	return nil
}

// Kill abandons the ingester without draining — the crash-path twin of
// Close, used by tests and hard shutdowns. Staged-but-unapplied records
// stay durably in the staging log; a later Open replays them. An
// in-flight batch refresh finishes first (its commit is durable either
// way).
func (in *Ingester) Kill() {
	in.mu.Lock()
	if in.fatal == nil {
		in.fatal = errKilled
	}
	started, closed := in.started, in.closed
	if !started && !closed {
		close(in.loopDone)
		in.closed = true
	}
	in.cond.Broadcast()
	in.wakeLoop()
	in.mu.Unlock()
	<-in.loopDone
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.walFile != nil {
		//i2vet:allow errclose Kill is the crash-path twin of Close; staged records are already fsynced and will replay
		in.walFile.Close()
		in.walFile = nil
	}
}

// Stats returns the ingester's current watermarks and counters.
func (in *Ingester) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := Stats{
		StagedSeq:      in.nextSeq - 1,
		AppliedSeq:     in.applied,
		PendingRecords: len(in.pending),
		PendingBytes:   in.pendingBytes,
		Records:        in.records,
		Batches:        in.batches,
		Rejected:       in.rejected,
		Replayed:       in.replayed,
	}
	if len(in.pending) > 0 {
		st.Lag = time.Since(in.pending[0].enq)
	}
	if in.fatal != nil && !errors.Is(in.fatal, errKilled) {
		st.Err = in.fatal
	}
	return st
}

// Freshness shapes the ingester's stats as the serving layer's
// freshness view.
func (in *Ingester) Freshness() serve.Freshness {
	st := in.Stats()
	return serve.Freshness{
		StagedSeq:      st.StagedSeq,
		AppliedSeq:     st.AppliedSeq,
		PendingRecords: int64(st.PendingRecords),
		PendingBytes:   st.PendingBytes,
		Records:        st.Records,
		Batches:        st.Batches,
		Rejected:       st.Rejected,
		Replayed:       st.Replayed,
		LagNS:          st.Lag.Nanoseconds(),
	}
}

// AttachTo surfaces the ingester's watermark/freshness view in the
// server's /stats.
func (in *Ingester) AttachTo(srv *serve.Server) {
	srv.AttachFreshness(in.Freshness)
}

// AddTo records the ingester's counters into a metrics report under
// the shared counter names.
func (in *Ingester) AddTo(rep *metrics.Report) {
	st := in.Stats()
	rep.Add(metrics.CounterIngestRecords, st.Records)
	rep.Add(metrics.CounterIngestBatches, st.Batches)
	rep.Add(metrics.CounterIngestRejected, st.Rejected)
	rep.Add(metrics.CounterIngestReplayed, st.Replayed)
	rep.Add(metrics.CounterFreshnessLagNS, st.Lag.Nanoseconds())
}

// BindServe returns a Config.Refresh that runs the refresher under the
// server's epoch discipline: readers stay on the pinned epoch for the
// whole refresh and flip atomically when the batch commits.
func BindServe(srv *serve.Server, r engine.Refresher) func(deltaInput, output string, records int64) error {
	return func(deltaInput, output string, _ int64) error {
		return srv.Refresh(func() error {
			_, err := r.Refresh(deltaInput, output)
			return err
		})
	}
}

// BindServePlanned returns a Config.Refresh that dispatches each batch
// through the cost-aware planner (serve.Server.RefreshPlanned): the
// planner picks the mode per batch, the epoch flips on commit, and the
// observed cost folds back into the ledger. Note the planner's
// recompute arm must also advance the Config.AppliedJobs count for the
// intent-recovery check to stay sound (engine-backed arms do; a bare
// engine.Func arm needs its own counting).
func BindServePlanned(srv *serve.Server, a *plan.Auto) func(deltaInput, output string, records int64) error {
	return func(deltaInput, output string, records int64) error {
		_, _, err := srv.RefreshPlanned(a, deltaInput, output, records)
		return err
	}
}
