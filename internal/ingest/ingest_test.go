package ingest

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"i2mapreduce/internal/kv"
)

// fakeSink is a Config.Refresh/WriteDeltas pair that records every
// batch it sees, with an optional gate and failure injection.
type fakeSink struct {
	mu      sync.Mutex
	batches [][]kv.Delta
	paths   []string
	jobs    int64
	gate    chan struct{} // when non-nil, Refresh blocks until a receive
	failN   int           // fail the next failN refreshes
	files   map[string][]kv.Delta
}

func newFakeSink() *fakeSink { return &fakeSink{files: map[string][]kv.Delta{}} }

func (s *fakeSink) writeDeltas(path string, ds []kv.Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[path] = append([]kv.Delta(nil), ds...)
	return nil
}

func (s *fakeSink) refresh(deltaInput, output string, records int64) error {
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failN > 0 {
		s.failN--
		return errors.New("injected refresh failure")
	}
	ds, ok := s.files[deltaInput]
	if !ok {
		return fmt.Errorf("refresh of unwritten delta file %q", deltaInput)
	}
	s.batches = append(s.batches, ds)
	s.paths = append(s.paths, deltaInput)
	s.jobs++
	return nil
}

func (s *fakeSink) appliedJobs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs
}

func (s *fakeSink) all() []kv.Delta {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []kv.Delta
	for _, b := range s.batches {
		out = append(out, b...)
	}
	return out
}

func (s *fakeSink) batchCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.batches)
}

func (s *fakeSink) config(dir string) Config {
	return Config{
		Dir:         dir,
		Refresh:     s.refresh,
		WriteDeltas: s.writeDeltas,
		AppliedJobs: s.appliedJobs,
	}
}

func deltas(n, from int) []kv.Delta {
	ds := make([]kv.Delta, n)
	for i := range ds {
		ds[i] = kv.Delta{Key: fmt.Sprintf("k%04d", from+i), Value: fmt.Sprintf("v%d", from+i), Op: kv.OpInsert}
	}
	return ds
}

func TestAddAssignsSequences(t *testing.T) {
	sink := newFakeSink()
	in, err := Open(sink.config(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	for i := 1; i <= 3; i++ {
		seq, err := in.Add(kv.Delta{Key: "k", Value: "v", Op: kv.OpInsert})
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	first, last, err := in.AddBatch(deltas(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if first != 4 || last != 7 {
		t.Fatalf("AddBatch range = %d-%d, want 4-7", first, last)
	}
	st := in.Stats()
	if st.StagedSeq != 7 || st.AppliedSeq != 0 || st.PendingRecords != 7 || st.Records != 7 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Lag <= 0 {
		t.Fatalf("lag = %v, want > 0 with pending records", st.Lag)
	}
	if _, err := in.Add(kv.Delta{Key: "k", Value: "v", Op: kv.Op('?')}); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestBatchRecordsTrigger(t *testing.T) {
	sink := newFakeSink()
	cfg := sink.config(t.TempDir())
	cfg.Policy = Policy{MaxLag: time.Hour, MaxBatchRecords: 3}
	applied := make(chan Batch, 16)
	cfg.OnBatchApplied = func(b Batch) { applied <- b }
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	in.Start()

	// Two records: under the record trigger and under MaxLag — nothing
	// should be cut.
	if _, _, err := in.AddBatch(deltas(2, 0)); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-applied:
		t.Fatalf("premature batch %+v", b)
	case <-time.After(50 * time.Millisecond):
	}
	// The third record reaches MaxBatchRecords: the batch fires now,
	// not at MaxLag.
	if _, err := in.Add(kv.Delta{Key: "k3", Value: "v", Op: kv.OpInsert}); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-applied:
		if b.Records != 3 || b.FirstSeq != 1 || b.LastSeq != 3 {
			t.Fatalf("batch = %+v", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch never applied")
	}
	st := in.Stats()
	if st.AppliedSeq != 3 || st.PendingRecords != 0 || st.Batches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Lag != 0 {
		t.Fatalf("lag = %v, want 0 when drained", st.Lag)
	}
}

func TestMaxLagTrigger(t *testing.T) {
	sink := newFakeSink()
	cfg := sink.config(t.TempDir())
	cfg.Policy = Policy{MaxLag: 30 * time.Millisecond}
	applied := make(chan Batch, 16)
	cfg.OnBatchApplied = func(b Batch) { applied <- b }
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	in.Start()
	if _, err := in.Add(kv.Delta{Key: "k", Value: "v", Op: kv.OpInsert}); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-applied:
		if lag := b.Applied.Sub(b.Oldest); lag < 30*time.Millisecond {
			t.Fatalf("batch applied after %v, before MaxLag", lag)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MaxLag never fired")
	}
}

func TestBatchBytesCapsCut(t *testing.T) {
	sink := newFakeSink()
	cfg := sink.config(t.TempDir())
	// Each record is ~16+5+2 bytes; a 60-byte cap forces ~2 records per
	// batch even though 10 are pending.
	cfg.Policy = Policy{MaxLag: time.Hour, MaxBatchRecords: 100, MaxBatchBytes: 60}
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	in.Start()
	if _, _, err := in.AddBatch(deltas(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := sink.batchCount(); n < 4 {
		t.Fatalf("byte cap produced %d batches, want >= 4", n)
	}
	if got := sink.all(); len(got) != 10 {
		t.Fatalf("applied %d records, want 10", len(got))
	}
}

func TestRejectOnFull(t *testing.T) {
	sink := newFakeSink()
	cfg := sink.config(t.TempDir())
	cfg.Backpressure = RejectOnFull
	cfg.MaxStagedRecords = 2
	in, err := Open(cfg) // never started: nothing drains
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if _, _, err := in.AddBatch(deltas(2, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Add(kv.Delta{Key: "k", Value: "v", Op: kv.OpInsert}); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("err = %v, want ErrBackpressure", err)
	}
	if st := in.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}

func TestBlockOnFull(t *testing.T) {
	sink := newFakeSink()
	sink.gate = make(chan struct{})
	cfg := sink.config(t.TempDir())
	cfg.Backpressure = BlockOnFull
	cfg.MaxStagedRecords = 2
	cfg.Policy = Policy{MaxLag: time.Millisecond}
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	in.Start()
	if _, _, err := in.AddBatch(deltas(2, 0)); err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan error, 1)
	go func() {
		_, err := in.Add(kv.Delta{Key: "k", Value: "v", Op: kv.OpInsert})
		unblocked <- err
	}()
	select {
	case err := <-unblocked:
		t.Fatalf("Add returned %v while staging log full", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Release the in-flight refresh (a closed gate never blocks again):
	// the batch commits, the depth drops, the blocked producer gets
	// through.
	close(sink.gate)
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Add still blocked after drain")
	}
}

func TestMinIntervalSpacesBatches(t *testing.T) {
	sink := newFakeSink()
	cfg := sink.config(t.TempDir())
	cfg.Policy = Policy{MaxLag: time.Millisecond, MaxBatchRecords: 1, MinInterval: 40 * time.Millisecond}
	applied := make(chan Batch, 16)
	cfg.OnBatchApplied = func(b Batch) { applied <- b }
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	in.Start()
	if _, err := in.Add(kv.Delta{Key: "a", Value: "1", Op: kv.OpInsert}); err != nil {
		t.Fatal(err)
	}
	b1 := <-applied
	if _, err := in.Add(kv.Delta{Key: "b", Value: "2", Op: kv.OpInsert}); err != nil {
		t.Fatal(err)
	}
	b2 := <-applied
	if gap := b2.Applied.Sub(b1.Applied); gap < 30*time.Millisecond {
		t.Fatalf("batches %v apart, want >= ~40ms (MinInterval)", gap)
	}
}

func TestFlushAndCloseDrain(t *testing.T) {
	sink := newFakeSink()
	cfg := sink.config(t.TempDir())
	cfg.Policy = Policy{MaxLag: time.Hour} // only drain/flush can trigger
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	if _, _, err := in.AddBatch(deltas(5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := in.Stats(); st.AppliedSeq != 5 {
		t.Fatalf("applied = %d after Flush, want 5", st.AppliedSeq)
	}
	if _, _, err := in.AddBatch(deltas(3, 5)); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sink.all(); len(got) != 8 {
		t.Fatalf("applied %d records after Close drain, want 8", len(got))
	}
	if _, err := in.Add(kv.Delta{Key: "k", Value: "v", Op: kv.OpInsert}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Close = %v, want ErrClosed", err)
	}
}

func TestRefreshFailureLatches(t *testing.T) {
	sink := newFakeSink()
	sink.failN = 1
	cfg := sink.config(t.TempDir())
	cfg.Policy = Policy{MaxLag: time.Millisecond}
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	if _, err := in.Add(kv.Delta{Key: "k", Value: "v", Op: kv.OpInsert}); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err == nil {
		t.Fatal("Flush succeeded past a failed refresh")
	}
	if _, err := in.Add(kv.Delta{Key: "k2", Value: "v", Op: kv.OpInsert}); err == nil {
		t.Fatal("Add succeeded on a latched ingester")
	}
	if st := in.Stats(); st.Err == nil {
		t.Fatal("Stats.Err nil on a latched ingester")
	}
	in.Close() //nolint:errcheck // latched close
	// The record survived in the staging log; a reopen replays it and a
	// healthy sink applies it.
	if _, err := Open(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestKillReopenReplaysExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	sink := newFakeSink()
	in, err := Open(sink.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Stage without starting the loop, then die: the crash window
	// between stage-commit and refresh.
	want := deltas(7, 0)
	if _, _, err := in.AddBatch(want); err != nil {
		t.Fatal(err)
	}
	in.Kill()
	if _, _, err := in.AddBatch(want); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Kill = %v, want ErrClosed", err)
	}

	in2, err := Open(sink.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	st := in2.Stats()
	if st.Replayed != 7 || st.PendingRecords != 7 || st.StagedSeq != 7 || st.AppliedSeq != 0 {
		t.Fatalf("recovered stats = %+v", st)
	}
	in2.Start()
	if err := in2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := in2.Close(); err != nil {
		t.Fatal(err)
	}
	got := sink.all()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d (exactly once)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Sequence numbering continues across the restart.
	in3, err := Open(sink.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer in3.Close()
	if seq, err := in3.Add(kv.Delta{Key: "k", Value: "v", Op: kv.OpInsert}); err != nil || seq != 8 {
		t.Fatalf("post-recovery seq = %d (%v), want 8", seq, err)
	}
}

func TestIntentResolutionCommitted(t *testing.T) {
	// The previous process crashed after the refresh committed but
	// before the watermark write: the intent survives and the engine's
	// job count advanced past the recorded value. The records must NOT
	// replay.
	dir := t.TempDir()
	sink := newFakeSink()
	in, err := Open(sink.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := in.AddBatch(deltas(5, 0)); err != nil {
		t.Fatal(err)
	}
	in.Kill()
	if err := writeIntent(dir, batchIntent{id: 1, first: 1, last: 3, jobs: 10, delta: "ingest/batch-00000001"}); err != nil {
		t.Fatal(err)
	}
	sink.jobs = 11 // advanced past intent.jobs: the refresh committed

	in2, err := Open(sink.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Close()
	st := in2.Stats()
	if st.AppliedSeq != 3 {
		t.Fatalf("applied = %d, want rolled forward to 3", st.AppliedSeq)
	}
	if st.PendingRecords != 2 || st.Replayed != 2 {
		t.Fatalf("stats = %+v, want only seqs 4-5 pending", st)
	}
	if _, ok, err := readIntent(dir); err != nil || ok {
		t.Fatalf("intent not cleared (ok=%v err=%v)", ok, err)
	}
	// The watermark roll-forward is itself durable.
	applied, _, ok, err := readMeta(dir)
	if err != nil || !ok || applied != 3 {
		t.Fatalf("meta applied = %d ok=%v err=%v, want 3", applied, ok, err)
	}
}

func TestIntentResolutionNotCommitted(t *testing.T) {
	// Crash between intent-write and refresh-commit: the job count did
	// not advance, so every record above the watermark replays — and
	// the orphaned batch id is never reused.
	dir := t.TempDir()
	sink := newFakeSink()
	in, err := Open(sink.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := in.AddBatch(deltas(5, 0)); err != nil {
		t.Fatal(err)
	}
	in.Kill()
	if err := writeIntent(dir, batchIntent{id: 1, first: 1, last: 3, jobs: 10, delta: "ingest/batch-00000001"}); err != nil {
		t.Fatal(err)
	}
	sink.jobs = 10 // unchanged: the refresh never committed

	cfg := sink.config(dir)
	applied := make(chan Batch, 16)
	cfg.OnBatchApplied = func(b Batch) { applied <- b }
	in2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := in2.Stats()
	if st.AppliedSeq != 0 || st.PendingRecords != 5 || st.Replayed != 5 {
		t.Fatalf("stats = %+v, want all 5 pending", st)
	}
	in2.Start()
	if err := in2.Flush(); err != nil {
		t.Fatal(err)
	}
	b := <-applied
	if b.ID != 2 {
		t.Fatalf("replay batch id = %d, want 2 (orphaned id 1 skipped)", b.ID)
	}
	if err := in2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sink.all(); len(got) != 5 {
		t.Fatalf("replayed %d records, want 5", len(got))
	}
}

func TestWALRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	sink := newFakeSink()
	cfg := sink.config(dir)
	cfg.RotateBytes = 128
	cfg.Policy = Policy{MaxLag: time.Hour, MaxBatchRecords: 5}
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := in.Add(deltas(1, i)[0]); err != nil {
			t.Fatal(err)
		}
	}
	countWAL := func() int {
		paths, _, err := listWALFiles(dir)
		if err != nil {
			t.Fatal(err)
		}
		return len(paths)
	}
	if n := countWAL(); n < 3 {
		t.Fatalf("%d staging-log files before drain, want rotation to produce >= 3", n)
	}
	in.Start()
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := countWAL(); n > 2 {
		t.Fatalf("%d staging-log files after drain, want pruned to <= 2", n)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	// Nothing replays after a clean drain.
	in2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Close()
	if st := in2.Stats(); st.PendingRecords != 0 || st.StagedSeq != 40 {
		t.Fatalf("post-drain reopen stats = %+v", st)
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	sink := newFakeSink()
	in, err := Open(sink.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := in.AddBatch(deltas(3, 0)); err != nil {
		t.Fatal(err)
	}
	in.Kill()
	paths, _, err := listWALFiles(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("paths = %v, err = %v", paths, err)
	}
	// A crash mid-append leaves a torn final line (no newline).
	f, err := os.OpenFile(paths[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("4\t12345\t+\ttorn-ke"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	in2, err := Open(sink.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Close()
	st := in2.Stats()
	if st.PendingRecords != 3 {
		t.Fatalf("pending = %d after torn tail, want 3 intact records", st.PendingRecords)
	}
	// The torn seq was never acknowledged, so reusing it is correct —
	// and the reused line supersedes the torn fragment.
	if seq, err := in2.Add(kv.Delta{Key: "k4", Value: "v", Op: kv.OpInsert}); err != nil || seq != 4 {
		t.Fatalf("seq after torn tail = %d (%v), want 4", seq, err)
	}
}

func TestCorruptionMidFileFailsOpen(t *testing.T) {
	dir := t.TempDir()
	sink := newFakeSink()
	in, err := Open(sink.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := in.AddBatch(deltas(3, 0)); err != nil {
		t.Fatal(err)
	}
	in.Kill()
	paths, _, _ := listWALFiles(dir)
	b, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first line: this is not a torn tail and must refuse
	// to open rather than silently drop accepted records.
	lines := strings.SplitN(string(b), "\n", 2)
	if err := os.WriteFile(paths[0], []byte("garbage\n"+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(sink.config(dir)); err == nil {
		t.Fatal("Open succeeded on a corrupt staging log")
	}
}

func TestEscapingRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sink := newFakeSink()
	in, err := Open(sink.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	want := []kv.Delta{
		{Key: "tab\tand\nnewline", Value: "back\\slash", Op: kv.OpDelete},
		{Key: "", Value: "", Op: kv.OpInsert},
	}
	if _, _, err := in.AddBatch(want); err != nil {
		t.Fatal(err)
	}
	in.Kill()
	in2, err := Open(sink.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	in2.Start()
	if err := in2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := in2.Close(); err != nil {
		t.Fatal(err)
	}
	got := sink.all()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v (escaping broken)", i, got[i], want[i])
		}
	}
}

func TestHTTPIngest(t *testing.T) {
	sink := newFakeSink()
	cfg := sink.config(t.TempDir())
	cfg.Policy = Policy{MaxLag: time.Hour}
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	in.Start()
	ts := httptest.NewServer(in.Handler())
	defer ts.Close()

	post := func(ct, body string) *http.Response {
		resp, err := http.Post(ts.URL, ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post("application/json", `{"deltas":[{"key":"a","value":"1"},{"key":"b","value":"2","op":"-"}]}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("JSON ingest status = %d", resp.StatusCode)
	}
	if resp := post("text/plain", "c\t3\t+\nd\t4\t-\n"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("text ingest status = %d", resp.StatusCode)
	}
	if resp := post("application/json", `{"deltas":[{"key":"x","op":"?"}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op status = %d", resp.StatusCode)
	}
	if resp := post("application/json", `{"deltas":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}

	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	got := sink.all()
	want := []kv.Delta{
		{Key: "a", Value: "1", Op: kv.OpInsert},
		{Key: "b", Value: "2", Op: kv.OpDelete},
		{Key: "c", Value: "3", Op: kv.OpInsert},
		{Key: "d", Value: "4", Op: kv.OpDelete},
	}
	if len(got) != len(want) {
		t.Fatalf("applied %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestHTTPBackpressure(t *testing.T) {
	sink := newFakeSink()
	cfg := sink.config(t.TempDir())
	cfg.Backpressure = RejectOnFull
	cfg.MaxStagedRecords = 1
	in, err := Open(cfg) // not started: stays full
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ts := httptest.NewServer(in.Handler())
	defer ts.Close()
	body := `{"deltas":[{"key":"a","value":"1"}]}`
	resp, err := http.Post(ts.URL, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first ingest status = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full ingest status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestHTTPClosed(t *testing.T) {
	sink := newFakeSink()
	in, err := Open(sink.config(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	in.Kill()
	ts := httptest.NewServer(in.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL, "application/json", strings.NewReader(`{"deltas":[{"key":"a","value":"1"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest-after-kill status = %d, want 503", resp.StatusCode)
	}
}

func TestOpenValidation(t *testing.T) {
	sink := newFakeSink()
	if _, err := Open(Config{Refresh: sink.refresh, WriteDeltas: sink.writeDeltas}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
	if _, err := Open(Config{Dir: t.TempDir(), WriteDeltas: sink.writeDeltas}); err == nil {
		t.Fatal("Open without Refresh succeeded")
	}
	if _, err := Open(Config{Dir: t.TempDir(), Refresh: sink.refresh}); err == nil {
		t.Fatal("Open without WriteDeltas succeeded")
	}
	cfg := sink.config(t.TempDir())
	cfg.Policy.MaxLag = -time.Second
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open with negative policy succeeded")
	}
}

func TestDeltaPathsUsePrefixes(t *testing.T) {
	sink := newFakeSink()
	cfg := sink.config(t.TempDir())
	cfg.DeltaPathPrefix = "stream/in"
	cfg.Policy = Policy{MaxLag: time.Hour}
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	in.Start()
	if _, err := in.Add(kv.Delta{Key: "k", Value: "v", Op: kv.OpInsert}); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(sink.paths) != 1 || !strings.HasPrefix(sink.paths[0], "stream/in/batch-") {
		t.Fatalf("delta paths = %v", sink.paths)
	}
	if _, err := os.Stat(filepath.Join(cfg.Dir, metaFile)); err != nil {
		t.Fatalf("watermark file missing: %v", err)
	}
}
