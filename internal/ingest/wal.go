package ingest

// The durable staging log: a WAL-style sequence of text files holding
// every accepted delta record until the applied watermark passes it,
// plus the two small commit files (ingest.meta, batch.intent) that
// carry the watermark and the batch bracket across a crash. All commits
// reuse the internal/fsutil atomic-commit idiom (temp + fsync + rename
// + dir fsync); record appends are fsynced before Add returns, so an
// accepted record survives a process death.
//
// Log file format: one record per line,
//
//	seq \t enqueue-unix-nanos \t op \t key \t value \n
//
// with key and value kv.EscapeField-escaped (the same text codec the
// DFS delta files use). Files are named wal-<firstseq>.log; a file is
// deleted once every sequence number in it is at or below the applied
// watermark. Only the final line of the final file may be torn (a crash
// mid-append); a parse error anywhere else is corruption and fails
// recovery.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"i2mapreduce/internal/fsutil"
	"i2mapreduce/internal/kv"
)

const (
	metaFile   = "ingest.meta"
	intentFile = "batch.intent"
	walPrefix  = "wal-"
	walSuffix  = ".log"
)

// walRecord is one staged delta record with its ingest sequence number
// and enqueue time (the freshness-lag basis).
type walRecord struct {
	seq int64
	enq time.Time
	d   kv.Delta
}

// approxBytes is the record's contribution to the staging-depth byte
// gauge (key + value + fixed overhead).
func (r walRecord) approxBytes() int64 {
	return int64(len(r.d.Key) + len(r.d.Value) + 16)
}

func walPath(dir string, first int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", walPrefix, first, walSuffix))
}

// appendWALRecord encodes one record as a log line.
func appendWALRecord(b []byte, rec walRecord) []byte {
	b = strconv.AppendInt(b, rec.seq, 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, rec.enq.UnixNano(), 10)
	b = append(b, '\t')
	b = append(b, byte(rec.d.Op))
	b = append(b, '\t')
	b = append(b, kv.EscapeField(rec.d.Key)...)
	b = append(b, '\t')
	b = append(b, kv.EscapeField(rec.d.Value)...)
	return append(b, '\n')
}

// parseWALLine decodes one complete log line (without the newline).
func parseWALLine(line string) (walRecord, error) {
	parts := strings.Split(line, "\t")
	if len(parts) != 5 {
		return walRecord{}, fmt.Errorf("ingest: malformed staging-log line %q", line)
	}
	seq, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return walRecord{}, fmt.Errorf("ingest: malformed staging-log seq %q", parts[0])
	}
	ns, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return walRecord{}, fmt.Errorf("ingest: malformed staging-log timestamp %q", parts[1])
	}
	if len(parts[2]) != 1 || !kv.Op(parts[2][0]).Valid() {
		return walRecord{}, fmt.Errorf("ingest: malformed staging-log op %q", parts[2])
	}
	return walRecord{
		seq: seq,
		enq: time.Unix(0, ns),
		d: kv.Delta{
			Key:   kv.UnescapeField(parts[3]),
			Value: kv.UnescapeField(parts[4]),
			Op:    kv.Op(parts[2][0]),
		},
	}, nil
}

// listWALFiles returns the staging-log file paths in first-seq order
// along with their first sequence numbers.
func listWALFiles(dir string) (paths []string, firsts []int64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type wf struct {
		first int64
		path  string
	}
	var files []wf
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		first, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix), 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("ingest: stray staging-log file %q", name)
		}
		files = append(files, wf{first: first, path: filepath.Join(dir, name)})
	}
	sort.Slice(files, func(a, b int) bool { return files[a].first < files[b].first })
	for _, f := range files {
		paths = append(paths, f.path)
		firsts = append(firsts, f.first)
	}
	return paths, firsts, nil
}

// scanWAL reads every staging-log file under dir and returns the
// records with seq > applied (the recovered pending set) plus the
// highest sequence number seen anywhere. A torn final line in the final
// file is dropped; any other malformed line is an error.
func scanWAL(dir string, applied int64) (pending []walRecord, maxSeq int64, err error) {
	paths, _, err := listWALFiles(dir)
	if err != nil {
		return nil, 0, err
	}
	maxSeq = applied
	for i, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		lines := strings.Split(string(b), "\n")
		// A complete file ends with '\n', leaving one empty trailing
		// element; a non-empty final element is a torn append.
		torn := len(lines) > 0 && lines[len(lines)-1] != ""
		complete := lines
		if len(lines) > 0 {
			complete = lines[:len(lines)-1]
		}
		for j, line := range complete {
			rec, err := parseWALLine(line)
			if err != nil {
				// A parse error on the final complete line of the final
				// file is also a torn append (the newline landed but the
				// line did not). Anywhere else it is corruption.
				if i == len(paths)-1 && j == len(complete)-1 && !torn {
					break
				}
				return nil, 0, err
			}
			if rec.seq > maxSeq {
				maxSeq = rec.seq
			}
			if rec.seq > applied {
				pending = append(pending, rec)
			}
		}
		if torn && i != len(paths)-1 {
			return nil, 0, fmt.Errorf("ingest: staging-log file %s has a torn line but is not the last file", path)
		}
	}
	sort.Slice(pending, func(a, b int) bool { return pending[a].seq < pending[b].seq })
	return pending, maxSeq, nil
}

// pruneWAL deletes staging-log files every record of which is at or
// below the applied watermark. The last file is always kept (it may be
// the live append target).
func pruneWAL(dir string, applied int64) error {
	paths, firsts, err := listWALFiles(dir)
	if err != nil {
		return err
	}
	pruned := false
	for i := 0; i < len(paths)-1; i++ {
		// File i's records all precede file i+1's first seq.
		if firsts[i+1] <= applied+1 {
			if err := os.Remove(paths[i]); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
			pruned = true
		}
	}
	if pruned {
		return fsutil.SyncDir(dir)
	}
	return nil
}

// readMeta loads the watermark file: the last applied sequence number
// and the last committed batch id. ok=false when none exists yet.
func readMeta(dir string) (applied, batch int64, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, metaFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, err
	}
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		k, v, found := strings.Cut(line, "=")
		if !found {
			return 0, 0, false, fmt.Errorf("ingest: corrupt meta line %q", line)
		}
		var dst *int64
		switch k {
		case "applied":
			dst = &applied
		case "batch":
			dst = &batch
		default:
			return 0, 0, false, fmt.Errorf("ingest: unknown meta key %q", k)
		}
		if *dst, err = strconv.ParseInt(v, 10, 64); err != nil {
			return 0, 0, false, fmt.Errorf("ingest: corrupt meta value %q", line)
		}
	}
	return applied, batch, true, nil
}

// writeMeta durably commits the watermark file.
func writeMeta(dir string, applied, batch int64) error {
	return fsutil.WriteFileAtomic(filepath.Join(dir, metaFile),
		[]byte(fmt.Sprintf("applied=%d\nbatch=%d\n", applied, batch)))
}

// batchIntent brackets one micro-batch refresh: it is durably written
// after the batch's delta file lands in the DFS and removed only after
// the watermark commit, recording the engine's completed-job count
// from just before the refresh so recovery can decide whether the
// refresh committed (jobs advanced) or must be replayed.
type batchIntent struct {
	id    int64
	first int64
	last  int64
	jobs  int64 // engine CompletedJobs before the refresh; -1 if unknown
	delta string
}

// readIntent loads a surviving batch bracket; ok=false when none.
func readIntent(dir string) (in batchIntent, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, intentFile))
	if errors.Is(err, os.ErrNotExist) {
		return batchIntent{}, false, nil
	}
	if err != nil {
		return batchIntent{}, false, err
	}
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		k, v, found := strings.Cut(line, "=")
		if !found {
			return batchIntent{}, false, fmt.Errorf("ingest: corrupt batch intent line %q", line)
		}
		if k == "delta" {
			in.delta = kv.UnescapeField(v)
			continue
		}
		var dst *int64
		switch k {
		case "batch":
			dst = &in.id
		case "first":
			dst = &in.first
		case "last":
			dst = &in.last
		case "jobs":
			dst = &in.jobs
		default:
			return batchIntent{}, false, fmt.Errorf("ingest: unknown batch intent key %q", k)
		}
		if *dst, err = strconv.ParseInt(v, 10, 64); err != nil {
			return batchIntent{}, false, fmt.Errorf("ingest: corrupt batch intent value %q", line)
		}
	}
	return in, true, nil
}

// writeIntent durably commits the batch bracket.
func writeIntent(dir string, in batchIntent) error {
	return fsutil.WriteFileAtomic(filepath.Join(dir, intentFile),
		[]byte(fmt.Sprintf("batch=%d\nfirst=%d\nlast=%d\njobs=%d\ndelta=%s\n",
			in.id, in.first, in.last, in.jobs, kv.EscapeField(in.delta))))
}

// removeIntent unlinks the batch bracket and makes the unlink durable.
func removeIntent(dir string) error {
	if err := os.Remove(filepath.Join(dir, intentFile)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return fsutil.SyncDir(dir)
}
