// Package iter implements i2MapReduce's general-purpose iterative model
// (paper Sec. 4): loop-invariant structure kv-pairs <SK,SV> separated
// from loop-variant state kv-pairs <DK,DV>, related by a user-supplied
// Project function (SK -> DK) covering one-to-one, many-to-one, and —
// via state replication — all-to-one dependencies.
//
// The engine applies the paper's two iterative optimizations:
//
//   - jobs stay alive across iterations: the loop reuses partitioned
//     structure files and in-memory shuffle buffers instead of paying
//     per-iteration job startup;
//   - structure data is partitioned once by hash(project(SK)) (Eq. 2),
//     cached in each node's local file system, and re-read locally
//     every iteration, never re-shuffled. State is partitioned by
//     hash(DK) (Eq. 1) with the same hash, so the prime Reduce task of
//     partition p produces exactly the state pairs partition p's prime
//     Map needs — no backward network transfer.
//
// This is also the "iterMR" re-computation baseline of the evaluation
// (Sec. 8.1.1 solution (ii)).
package iter

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/mr"
	"i2mapreduce/internal/shuffle"
)

// Emit passes one intermediate or state record out of a user function.
type Emit = mr.Emit

// StateGetter exposes read-only access to the current state store to
// the prime Reduce (GIM-V's assign and SSSP's min-with-current need the
// previous state value).
type StateGetter func(dk string) (string, bool)

// Spec describes one iterative algorithm in the i2MapReduce model.
type Spec struct {
	// Name labels scratch files and tasks.
	Name string
	// Project returns the state key interdependent with a structure key
	// (paper Sec. 4.2). Ignored when ReplicateState is set.
	Project func(sk string) string
	// Map is the prime Map: map(SK, SV, DK, DV) -> [(K2,V2)]. In the
	// single-job iteration model K2 is a state key.
	Map func(sk, sv, dk, dv string, emit Emit) error
	// Reduce is the prime Reduce: reduce(K2, {V2}) -> state updates
	// emitted as (DK, DV). For co-partitioned specs every emitted DK
	// must hash to the reduce task's own partition (the paper's
	// "Reduce task i produces and only produces the state kv-pairs in
	// partition i"); the engine enforces this.
	Reduce func(k2 string, values []string, state StateGetter, emit Emit) error
	// InitState returns the initial DV for a state key discovered
	// during structure loading. Unused when ReplicateState is set
	// (Config.InitialState supplies the state then).
	InitState func(dk string) string
	// Difference quantifies the change between two values of one state
	// key; the engine uses it for convergence (and the incremental
	// engine for change propagation control).
	Difference func(prev, cur string) float64
	// ReplicateState marks all-to-one dependency (Kmeans): structure is
	// partitioned by hash(SK), and the full state is replicated to
	// every prime Map task (paper Sec. 4.3 "Supporting Smaller Number
	// of State kv-pairs").
	ReplicateState bool
	// AssembleState folds the reduce outputs of one iteration into the
	// replicated state (e.g. Kmeans: collect <cid,cval> fragments into
	// the single centroid-set value). Required iff ReplicateState.
	AssembleState func(prev map[string]string, outs []kv.Pair) map[string]string
}

func (s *Spec) validate() error {
	switch {
	case s.Name == "":
		return errors.New("iter: Spec.Name required")
	case s.Map == nil || s.Reduce == nil || s.Difference == nil:
		return errors.New("iter: Spec requires Map, Reduce, and Difference")
	case s.ReplicateState && s.AssembleState == nil:
		return errors.New("iter: ReplicateState requires AssembleState")
	case !s.ReplicateState && (s.Project == nil || s.InitState == nil):
		return errors.New("iter: co-partitioned Spec requires Project and InitState")
	}
	return nil
}

// Config tunes a run.
type Config struct {
	// NumPartitions defaults to the cluster node count.
	NumPartitions int
	// MaxIterations caps the loop. Defaults to 50.
	MaxIterations int
	// Epsilon declares convergence when no state key changed by more
	// than this between iterations.
	Epsilon float64
	// InitialState seeds the state store for ReplicateState specs.
	InitialState map[string]string
	// ShuffleMemoryBudget bounds the bytes of intermediate data the
	// shuffle buffers in memory per iteration; beyond it, map output
	// spills to node-local scratch as sorted runs that the reduce side
	// streams back through a k-way merge ("shuffle.spill.runs" /
	// "shuffle.spill.bytes" count the spills). <= 0 keeps everything in
	// memory; when the runner is built through i2mr.System, 0 inherits
	// the System-wide default and a negative value explicitly opts out
	// of spilling.
	ShuffleMemoryBudget int64
	// StructCacheBytes caps an optional decoded-structure cache: the
	// iter engine re-reads its node-local structure partition every
	// iteration, and this cache keeps decoded partitions in memory up
	// to the cap, falling back to ReadStructFile for partitions that do
	// not fit ("structcache.hits" / "structcache.misses" count the
	// outcomes). 0 disables the cache.
	StructCacheBytes int64
}

// IterationStats describes one iteration of a run.
type IterationStats struct {
	// Changed counts state keys whose Difference exceeded Epsilon.
	Changed int
	// MaxDiff is the largest observed state change.
	MaxDiff float64
	// Duration is the iteration wall-clock time.
	Duration time.Duration
	// Stages holds the per-stage breakdown.
	Stages metrics.Snapshot
}

// Result summarizes a completed run.
type Result struct {
	Iterations int
	Converged  bool
	PerIter    []IterationStats
	Report     *metrics.Report
}

// Runner executes an iterative computation: LoadStructure once, then
// Run to convergence. A Runner is not safe for concurrent use.
type Runner struct {
	eng  *mr.Engine
	spec Spec
	cfg  Config
	n    int

	structPaths []string            // per-partition structure file (node-local)
	structRecs  []int64             // records per partition
	state       []map[string]string // per-partition state (co-partitioned)
	global      map[string]string   // replicated state (ReplicateState)
	cache       *structCache        // decoded-structure cache (nil = off)
	loaded      bool
	mu          sync.Mutex
}

// structCache keeps decoded structure partitions in memory, capped by
// total bytes. Partitions that do not fit are simply not cached (the
// caller falls back to ReadStructFile), keeping behaviour deterministic
// without eviction bookkeeping — iter's structure data is immutable
// after LoadStructure, so entries never invalidate.
type structCache struct {
	mu    sync.Mutex
	cap   int64
	bytes int64
	parts map[int][]kv.Pair
	skip  map[int]bool // partitions known not to fit: never re-collect
}

func (c *structCache) get(p int) ([]kv.Pair, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ps, ok := c.parts[p]
	return ps, ok
}

// collectible reports whether it is worth accumulating partition p's
// pairs for insertion: false once the cache is full or p was already
// rejected, so oversized partitions stream without an O(partition)
// transient allocation every iteration.
func (c *structCache) collectible(p int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes < c.cap && !c.skip[p]
}

// put inserts partition p if it fits under the cap, otherwise marks it
// as never fitting.
func (c *structCache) put(p int, ps []kv.Pair, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.parts[p]; ok {
		return
	}
	if c.bytes+size > c.cap {
		c.skip[p] = true
		return
	}
	c.parts[p] = ps
	c.bytes += size
}

// NewRunner validates the spec and prepares a runner.
func NewRunner(eng *mr.Engine, spec Spec, cfg Config) (*Runner, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if cfg.NumPartitions <= 0 {
		cfg.NumPartitions = eng.Cluster().NumNodes()
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 50
	}
	if spec.ReplicateState && cfg.InitialState == nil {
		return nil, errors.New("iter: ReplicateState requires Config.InitialState")
	}
	r := &Runner{eng: eng, spec: spec, cfg: cfg, n: cfg.NumPartitions}
	if cfg.StructCacheBytes > 0 {
		r.cache = &structCache{
			cap:   cfg.StructCacheBytes,
			parts: make(map[int][]kv.Pair),
			skip:  make(map[int]bool),
		}
	}
	return r, nil
}

// NumPartitions returns the partition count n.
func (r *Runner) NumPartitions() int { return r.n }

func sanitize(s string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			return c
		}
		return '_'
	}, s)
}

// partitionOf returns the partition owning a structure key.
func (r *Runner) partitionOf(sk string) int {
	if r.spec.ReplicateState {
		return kv.Partition(sk, r.n) // default partitioning
	}
	return kv.Partition(r.spec.Project(sk), r.n) // Eq. (2)
}

// structPath names partition p's cached structure file on its node.
func (r *Runner) structPath(p int) string {
	node := r.eng.Cluster().NodeByID(p % r.eng.Cluster().NumNodes())
	return filepath.Join(node.ScratchDir, "iter", sanitize(r.spec.Name), fmt.Sprintf("part-%04d.struct", p))
}

// shuffleDir names the node-local spill directory of iteration it's
// partition p (on the node that runs partition p's reduce task).
func (r *Runner) shuffleDir(it, p int) string {
	node := r.eng.Cluster().NodeByID(p % r.eng.Cluster().NumNodes())
	return filepath.Join(node.ScratchDir, "iter-shuffle", sanitize(r.spec.Name), fmt.Sprintf("it%03d-part-%04d", it, p))
}

// structCachePairOverhead approximates per-pair bookkeeping charged
// against Config.StructCacheBytes.
const structCachePairOverhead = 32

// readStructure streams partition p's structure records, serving them
// from the decoded cache when enabled and populated, and falling back
// to (and, capacity permitting, filling the cache from) the node-local
// structure file.
func (r *Runner) readStructure(p int, rep *metrics.Report, fn func(pr kv.Pair) error) error {
	if r.cache == nil {
		return ReadStructFile(r.structPaths[p], fn)
	}
	if ps, ok := r.cache.get(p); ok {
		rep.Add(metrics.CounterStructCacheHits, 1)
		for _, pr := range ps {
			if err := fn(pr); err != nil {
				return err
			}
		}
		return nil
	}
	rep.Add(metrics.CounterStructCacheMisses, 1)
	if !r.cache.collectible(p) {
		return ReadStructFile(r.structPaths[p], fn)
	}
	ps := make([]kv.Pair, 0, r.structRecs[p])
	var size int64
	err := ReadStructFile(r.structPaths[p], func(pr kv.Pair) error {
		ps = append(ps, pr)
		size += int64(len(pr.Key)+len(pr.Value)) + structCachePairOverhead
		return fn(pr)
	})
	if err != nil {
		return err
	}
	r.cache.put(p, ps, size)
	return nil
}

// LoadStructure runs the preprocessing step (paper Sec. 4.3):
// partition the structure input by hash(project(SK)), sort each
// partition so interdependent SKs and DKs align, cache the partitions
// in node-local files, and initialize the state store.
func (r *Runner) LoadStructure(input string) (*metrics.Report, error) {
	if r.loaded {
		return nil, errors.New("iter: LoadStructure called twice")
	}
	rep := &metrics.Report{}
	start := time.Now()
	fi, err := r.eng.FS().Stat(input)
	if err != nil {
		return nil, fmt.Errorf("iter: structure input: %w", err)
	}

	parts := make([][]kv.Pair, r.n)
	var mu sync.Mutex
	tasks := make([]cluster.Task, 0, len(fi.Blocks))
	for b := range fi.Blocks {
		b := b
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s/partition-%04d", sanitize(r.spec.Name), b),
			Preferred: -1,
			Run: func(tc cluster.TaskContext) error {
				br, err := r.eng.FS().OpenBlock(input, b)
				if err != nil {
					return err
				}
				defer br.Close()
				local := make([][]kv.Pair, r.n)
				for {
					p, err := br.ReadPair()
					if err == io.EOF {
						break
					}
					if err != nil {
						return err
					}
					local[r.partitionOf(p.Key)] = append(local[r.partitionOf(p.Key)], p)
				}
				mu.Lock()
				for i := range local {
					parts[i] = append(parts[i], local[i]...)
				}
				mu.Unlock()
				return nil
			},
		})
	}
	if _, err := r.eng.Cluster().Run(tasks); err != nil {
		return nil, fmt.Errorf("iter: partitioning: %w", err)
	}

	r.structPaths = make([]string, r.n)
	r.structRecs = make([]int64, r.n)
	if r.spec.ReplicateState {
		r.global = make(map[string]string, len(r.cfg.InitialState))
		for k, v := range r.cfg.InitialState {
			r.global[k] = v
		}
	} else {
		r.state = make([]map[string]string, r.n)
	}
	for p := 0; p < r.n; p++ {
		ps := parts[p]
		if r.spec.ReplicateState {
			kv.SortPairs(ps)
		} else {
			// Sort by (project(SK), SK) so the structure file streams in
			// the same order as the DK-sorted state file.
			sort.SliceStable(ps, func(i, j int) bool {
				di, dj := r.spec.Project(ps[i].Key), r.spec.Project(ps[j].Key)
				if di != dj {
					return di < dj
				}
				return ps[i].Key < ps[j].Key
			})
			st := make(map[string]string)
			for _, pr := range ps {
				dk := r.spec.Project(pr.Key)
				if _, ok := st[dk]; !ok {
					st[dk] = r.spec.InitState(dk)
				}
			}
			r.state[p] = st
		}
		path := r.structPath(p)
		if err := WriteStructFile(path, ps); err != nil {
			return nil, err
		}
		r.structPaths[p] = path
		r.structRecs[p] = int64(len(ps))
		rep.Add(metrics.CounterStructureRecords, int64(len(ps)))
	}
	r.loaded = true
	rep.AddStage(metrics.StageMap, time.Since(start))
	return rep, nil
}

// WriteStructFile writes a sorted structure partition to a node-local
// file; the incremental engine (internal/core) shares the format.
func WriteStructFile(path string, ps []kv.Pair) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := kv.EncodePairs(f, ps); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadStructFile streams a cached structure partition from local disk.
func ReadStructFile(path string, fn func(p kv.Pair) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := kv.NewReader(f)
	for {
		p, err := dec.ReadPair()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(p); err != nil {
			return err
		}
	}
}

// stateSnapshot returns a copy of the full state (merged across
// partitions for co-partitioned specs).
func (r *Runner) stateSnapshot() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string)
	if r.spec.ReplicateState {
		for k, v := range r.global {
			out[k] = v
		}
		return out
	}
	for _, st := range r.state {
		for k, v := range st {
			out[k] = v
		}
	}
	return out
}

// State returns the current state store contents.
func (r *Runner) State() map[string]string { return r.stateSnapshot() }

// Run iterates until convergence (no state change above Epsilon) or
// MaxIterations, whichever first.
func (r *Runner) Run() (*Result, error) {
	if !r.loaded {
		return nil, errors.New("iter: Run before LoadStructure")
	}
	res := &Result{Report: &metrics.Report{}}
	for it := 1; it <= r.cfg.MaxIterations; it++ {
		stats, err := r.runIteration(it)
		if err != nil {
			return nil, err
		}
		res.PerIter = append(res.PerIter, stats)
		res.Iterations = it
		res.Report.Add(metrics.CounterIterations, 1)
		if stats.Changed == 0 {
			res.Converged = true
			break
		}
	}
	for _, s := range res.PerIter {
		for _, st := range metrics.Stages() {
			res.Report.AddStage(st, s.Stages.Stages[st])
		}
	}
	return res, nil
}

// runIteration executes one prime Map -> shuffle -> prime Reduce pass
// on the shared streaming shuffle runtime (internal/shuffle): the
// runtime owns the task scaffolding, lock-striped partition buffers,
// budgeted spilling, and the streaming merge; this method supplies the
// structure reader, the prime Map/Reduce bindings, and the state-update
// policy (buffer updates, then apply with convergence accounting).
func (r *Runner) runIteration(it int) (IterationStats, error) {
	iterStart := time.Now()
	rep := &metrics.Report{}

	type stateUpdate struct {
		dk, dv string
	}
	updates := make([][]stateUpdate, r.n)
	var allOuts []kv.Pair // ReplicateState only
	var outsMu sync.Mutex

	err := shuffle.Iteration{
		Name:         fmt.Sprintf("%s/it%03d", sanitize(r.spec.Name), it),
		Partitions:   r.n,
		NumNodes:     r.eng.Cluster().NumNodes(),
		RunTasks:     func(ts []cluster.Task) error { _, err := r.eng.Cluster().Run(ts); return err },
		MemoryBudget: r.cfg.ShuffleMemoryBudget,
		ScratchDir:   func(p int) string { return r.shuffleDir(it, p) },
		Report:       rep,
		// Prime Map: one task per partition, co-located with its cached
		// structure file and state store.
		MapPartition: func(p int, emit func(k2, v2 string)) (int64, error) {
			// All-to-one specs see the whole replicated state as a
			// single canonical kv-pair, resolved once per task.
			var repDK, repDV string
			if r.spec.ReplicateState {
				g := r.globalView()
				if len(g) != 1 {
					return 0, fmt.Errorf("iter: ReplicateState spec %q has %d state keys; expected 1", r.spec.Name, len(g))
				}
				for k, v := range g {
					repDK, repDV = k, v
				}
			}
			var recs int64
			err := r.readStructure(p, rep, func(pr kv.Pair) error {
				recs++
				dk, dv := repDK, repDV
				if !r.spec.ReplicateState {
					dk = r.spec.Project(pr.Key)
					var ok bool
					dv, ok = r.state[p][dk]
					if !ok {
						dv = r.spec.InitState(dk)
					}
				}
				return r.spec.Map(pr.Key, pr.Value, dk, dv, emit)
			})
			return recs, err
		},
		// Prime Reduce: per partition, co-located with the prime Map
		// task of the same partition so new state lands where the next
		// iteration's map reads it.
		ReducePartition: func(p int, groups shuffle.GroupSource) error {
			getter := r.stateGetterFor(p)
			var ups []stateUpdate
			var outs []kv.Pair
			var ngroups int64
			err := groups(func(g kv.Group) error {
				ngroups++
				return r.spec.Reduce(g.Key, g.Values, getter, func(dk, dv string) {
					if r.spec.ReplicateState {
						outs = append(outs, kv.Pair{Key: dk, Value: dv})
						return
					}
					ups = append(ups, stateUpdate{dk: dk, dv: dv})
				})
			})
			if err != nil {
				return err
			}
			if !r.spec.ReplicateState {
				for _, u := range ups {
					if kv.Partition(u.dk, r.n) != p {
						return fmt.Errorf("iter: reduce task %d emitted state key %q owned by partition %d", p, u.dk, kv.Partition(u.dk, r.n))
					}
				}
				updates[p] = ups
			} else {
				outsMu.Lock()
				allOuts = append(allOuts, outs...)
				outsMu.Unlock()
			}
			rep.Add(metrics.CounterReduceGroups, ngroups)
			return nil
		},
	}.Run()
	if err != nil {
		return IterationStats{}, fmt.Errorf("iter: iteration %d: %w", it, err)
	}

	// Apply state updates and measure convergence.
	applyStart := time.Now()
	changed := 0
	maxDiff := 0.0
	if r.spec.ReplicateState {
		kv.SortPairs(allOuts)
		prev := r.globalView()
		next := r.spec.AssembleState(prev, allOuts)
		for k, nv := range next {
			d := r.spec.Difference(prev[k], nv)
			if d > maxDiff {
				maxDiff = d
			}
			if d > r.cfg.Epsilon {
				changed++
			}
		}
		r.mu.Lock()
		r.global = next
		r.mu.Unlock()
	} else {
		for p := 0; p < r.n; p++ {
			for _, u := range updates[p] {
				prev := r.state[p][u.dk]
				d := r.spec.Difference(prev, u.dv)
				if d > maxDiff {
					maxDiff = d
				}
				if d > r.cfg.Epsilon {
					changed++
				}
				r.state[p][u.dk] = u.dv
			}
		}
	}
	rep.AddStage(metrics.StageReduce, time.Since(applyStart))

	return IterationStats{
		Changed:  changed,
		MaxDiff:  maxDiff,
		Duration: time.Since(iterStart),
		Stages:   rep.Snapshot(),
	}, nil
}

// globalView returns the replicated state map (callers must not
// mutate).
func (r *Runner) globalView() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.global
}

// stateGetterFor builds the read-only state accessor reduce tasks use.
func (r *Runner) stateGetterFor(p int) StateGetter {
	if r.spec.ReplicateState {
		return func(dk string) (string, bool) {
			v, ok := r.globalView()[dk]
			return v, ok
		}
	}
	st := r.state[p]
	return func(dk string) (string, bool) {
		v, ok := st[dk]
		return v, ok
	}
}
