package iter

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/mr"
)

func newEngine(t *testing.T, nodes int) *mr.Engine {
	t.Helper()
	root := t.TempDir()
	fs, err := dfs.New(dfs.Config{Root: root + "/dfs", BlockSize: 512, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, SlotsPerNode: 2, ScratchRoot: root + "/scratch"})
	if err != nil {
		t.Fatal(err)
	}
	return mr.NewEngine(fs, cl)
}

const damping = 0.8

// pageRankSpec builds the paper's Algorithm 2 as an iter.Spec.
// Structure values are space-separated out-neighbour lists. Every map
// call emits a zero self-contribution so sink-free reduce groups exist
// for all vertices.
func pageRankSpec() Spec {
	return Spec{
		Name:    "pagerank-test",
		Project: func(sk string) string { return sk },
		Map: func(sk, sv, dk, dv string, emit Emit) error {
			rank, err := strconv.ParseFloat(dv, 64)
			if err != nil {
				return err
			}
			emit(sk, "0")
			outs := strings.Fields(sv)
			if len(outs) == 0 {
				return nil
			}
			share := strconv.FormatFloat(rank/float64(len(outs)), 'g', 17, 64)
			for _, j := range outs {
				emit(j, share)
			}
			return nil
		},
		Reduce: func(k2 string, values []string, state StateGetter, emit Emit) error {
			var sum float64
			for _, v := range values {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return err
				}
				sum += f
			}
			emit(k2, strconv.FormatFloat(damping*sum+(1-damping), 'g', 17, 64))
			return nil
		},
		InitState:  func(dk string) string { return "1" },
		Difference: absDiff,
	}
}

func absDiff(prev, cur string) float64 {
	a, _ := strconv.ParseFloat(prev, 64)
	b, _ := strconv.ParseFloat(cur, 64)
	return math.Abs(a - b)
}

// offlinePageRank is the exact reference implementation.
func offlinePageRank(adj map[string][]string, iters int) map[string]float64 {
	rank := map[string]float64{}
	for v := range adj {
		rank[v] = 1
	}
	for it := 0; it < iters; it++ {
		next := map[string]float64{}
		for v := range adj {
			next[v] = 0
		}
		for v, outs := range adj {
			if len(outs) == 0 {
				continue
			}
			share := rank[v] / float64(len(outs))
			for _, j := range outs {
				next[j] += share
			}
		}
		for v := range adj {
			rank[v] = damping*next[v] + (1 - damping)
		}
	}
	return rank
}

func writeGraph(t *testing.T, eng *mr.Engine, path string, adj map[string][]string) {
	t.Helper()
	var ps []kv.Pair
	for v, outs := range adj {
		ps = append(ps, kv.Pair{Key: v, Value: strings.Join(outs, " ")})
	}
	kv.SortPairs(ps)
	if err := eng.FS().WriteAllPairs(path, ps); err != nil {
		t.Fatal(err)
	}
}

func testGraph() map[string][]string {
	// A small strongly-connected-ish graph with a few dangling refs.
	return map[string][]string{
		"a": {"b", "c"},
		"b": {"c"},
		"c": {"a"},
		"d": {"a", "c"},
		"e": {"a", "b", "d"},
		"f": {"e"},
		"g": {"f", "a"},
		"h": {"g"},
	}
}

func TestPageRankMatchesOfflineReference(t *testing.T) {
	eng := newEngine(t, 3)
	adj := testGraph()
	writeGraph(t, eng, "graph", adj)

	r, err := NewRunner(eng, pageRankSpec(), Config{NumPartitions: 3, MaxIterations: 30, Epsilon: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStructure("graph"); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("converged after %d iterations; graph should need more", res.Iterations)
	}
	want := offlinePageRank(adj, res.Iterations)
	got := r.State()
	if len(got) != len(adj) {
		t.Fatalf("state has %d keys, want %d", len(got), len(adj))
	}
	for v, w := range want {
		g, _ := strconv.ParseFloat(got[v], 64)
		if math.Abs(g-w) > 1e-9 {
			t.Errorf("rank[%s] = %v, want %v", v, g, w)
		}
	}
}

func TestPageRankConvergesWithEpsilon(t *testing.T) {
	eng := newEngine(t, 2)
	writeGraph(t, eng, "graph", testGraph())
	r, err := NewRunner(eng, pageRankSpec(), Config{NumPartitions: 2, MaxIterations: 200, Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStructure("graph"); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	last := res.PerIter[len(res.PerIter)-1]
	if last.Changed != 0 {
		t.Fatalf("last iteration changed %d keys", last.Changed)
	}
	// Per-iteration stats recorded with stage timings.
	for i, s := range res.PerIter {
		if s.Duration <= 0 {
			t.Fatalf("iteration %d has no duration", i)
		}
	}
	if res.Report.Counter("iterations") != int64(res.Iterations) {
		t.Fatalf("iterations counter %d != %d", res.Report.Counter("iterations"), res.Iterations)
	}
}

func TestReduceEmittingForeignPartitionFails(t *testing.T) {
	eng := newEngine(t, 2)
	writeGraph(t, eng, "graph", map[string][]string{"a": {"b"}, "b": {"a"}})
	spec := pageRankSpec()
	spec.Reduce = func(k2 string, values []string, state StateGetter, emit Emit) error {
		emit("not-"+k2, "1") // wrong partition with high probability
		return nil
	}
	r, err := NewRunner(eng, spec, Config{NumPartitions: 2, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStructure("graph"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("reduce emitting foreign state keys succeeded")
	}
}

// --- Kmeans (all-to-one, replicated state) ---

func kmeansSpec(k int) Spec {
	parseCentroids := func(s string) []float64 {
		parts := strings.Split(s, ",")
		cs := make([]float64, len(parts))
		for i, p := range parts {
			cs[i], _ = strconv.ParseFloat(p, 64)
		}
		return cs
	}
	return Spec{
		Name: "kmeans-test",
		Map: func(sk, sv, dk, dv string, emit Emit) error {
			x, err := strconv.ParseFloat(sv, 64)
			if err != nil {
				return err
			}
			cs := parseCentroids(dv)
			best, bestD := 0, math.Inf(1)
			for i, c := range cs {
				if d := math.Abs(x - c); d < bestD {
					best, bestD = i, d
				}
			}
			emit(strconv.Itoa(best), sv)
			return nil
		},
		Reduce: func(k2 string, values []string, state StateGetter, emit Emit) error {
			var sum float64
			for _, v := range values {
				f, _ := strconv.ParseFloat(v, 64)
				sum += f
			}
			emit(k2, strconv.FormatFloat(sum/float64(len(values)), 'g', 17, 64))
			return nil
		},
		Difference: func(prev, cur string) float64 {
			a, b := parseCentroids(prev), parseCentroids(cur)
			max := 0.0
			for i := range a {
				if i < len(b) {
					if d := math.Abs(a[i] - b[i]); d > max {
						max = d
					}
				}
			}
			return max
		},
		ReplicateState: true,
		AssembleState: func(prev map[string]string, outs []kv.Pair) map[string]string {
			cs := parseCentroids(prev["centroids"])
			for _, o := range outs {
				i, _ := strconv.Atoi(o.Key)
				v, _ := strconv.ParseFloat(o.Value, 64)
				if i >= 0 && i < len(cs) {
					cs[i] = v
				}
			}
			strs := make([]string, len(cs))
			for i, c := range cs {
				strs[i] = strconv.FormatFloat(c, 'g', 17, 64)
			}
			return map[string]string{"centroids": strings.Join(strs, ",")}
		},
	}
}

func TestKmeansReplicatedStateConverges(t *testing.T) {
	eng := newEngine(t, 2)
	var ps []kv.Pair
	// Two tight clusters around 0 and 100.
	for i := 0; i < 20; i++ {
		ps = append(ps, kv.Pair{Key: fmt.Sprintf("p%03d", i), Value: strconv.FormatFloat(float64(i%5), 'g', 10, 64)})
		ps = append(ps, kv.Pair{Key: fmt.Sprintf("q%03d", i), Value: strconv.FormatFloat(100+float64(i%5), 'g', 10, 64)})
	}
	if err := eng.FS().WriteAllPairs("points", ps); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(eng, kmeansSpec(2), Config{
		NumPartitions: 2,
		MaxIterations: 30,
		Epsilon:       1e-9,
		InitialState:  map[string]string{"centroids": "10,60"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStructure("points"); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("kmeans did not converge in %d iterations", res.Iterations)
	}
	got := r.State()["centroids"]
	parts := strings.Split(got, ",")
	c0, _ := strconv.ParseFloat(parts[0], 64)
	c1, _ := strconv.ParseFloat(parts[1], 64)
	if c0 > c1 {
		c0, c1 = c1, c0
	}
	if math.Abs(c0-2) > 1e-6 || math.Abs(c1-102) > 1e-6 {
		t.Fatalf("centroids = (%v, %v), want (2, 102)", c0, c1)
	}
}

func TestReplicateStateRequiresInitialState(t *testing.T) {
	eng := newEngine(t, 1)
	if _, err := NewRunner(eng, kmeansSpec(2), Config{}); err == nil {
		t.Fatal("NewRunner without InitialState succeeded")
	}
}

// --- SSSP (one-to-one with StateGetter) ---

const inf = "inf"

func ssspSpec(source string) Spec {
	return Spec{
		Name:    "sssp-test",
		Project: func(sk string) string { return sk },
		Map: func(sk, sv, dk, dv string, emit Emit) error {
			if dv == inf {
				return nil
			}
			d, err := strconv.ParseFloat(dv, 64)
			if err != nil {
				return err
			}
			if sv == "" {
				return nil
			}
			for _, e := range strings.Split(sv, ";") {
				to, ws, ok := strings.Cut(e, ":")
				if !ok {
					return fmt.Errorf("bad edge %q", e)
				}
				w, err := strconv.ParseFloat(ws, 64)
				if err != nil {
					return err
				}
				emit(to, strconv.FormatFloat(d+w, 'g', 17, 64))
			}
			return nil
		},
		Reduce: func(k2 string, values []string, state StateGetter, emit Emit) error {
			best := math.Inf(1)
			if cur, ok := state(k2); ok && cur != inf {
				best, _ = strconv.ParseFloat(cur, 64)
			}
			improved := false
			for _, v := range values {
				f, _ := strconv.ParseFloat(v, 64)
				if f < best {
					best, improved = f, true
				}
			}
			if improved {
				emit(k2, strconv.FormatFloat(best, 'g', 17, 64))
			}
			return nil
		},
		InitState: func(dk string) string {
			if dk == source {
				return "0"
			}
			return inf
		},
		Difference: func(prev, cur string) float64 {
			if prev == cur {
				return 0
			}
			if prev == inf || cur == inf {
				return math.Inf(1)
			}
			return absDiff(prev, cur)
		},
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	eng := newEngine(t, 3)
	edges := map[string]map[string]float64{
		"s": {"a": 1, "b": 4},
		"a": {"b": 2, "c": 5},
		"b": {"c": 1},
		"c": {"d": 3},
		"d": {},
		"z": {"d": 1}, // unreachable from s
	}
	var ps []kv.Pair
	for u, nbrs := range edges {
		var parts []string
		var keys []string
		for v := range nbrs {
			keys = append(keys, v)
		}
		sort.Strings(keys)
		for _, v := range keys {
			parts = append(parts, fmt.Sprintf("%s:%g", v, nbrs[v]))
		}
		ps = append(ps, kv.Pair{Key: u, Value: strings.Join(parts, ";")})
	}
	kv.SortPairs(ps)
	if err := eng.FS().WriteAllPairs("wgraph", ps); err != nil {
		t.Fatal(err)
	}

	r, err := NewRunner(eng, ssspSpec("s"), Config{NumPartitions: 3, MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStructure("wgraph"); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("SSSP did not converge")
	}
	want := map[string]string{"s": "0", "a": "1", "b": "3", "c": "4", "d": "7", "z": inf}
	got := r.State()
	for v, w := range want {
		if got[v] != w {
			t.Errorf("dist[%s] = %s, want %s", v, got[v], w)
		}
	}
}

// --- lifecycle and validation ---

func TestSpecValidation(t *testing.T) {
	eng := newEngine(t, 1)
	base := pageRankSpec()
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"no map", func(s *Spec) { s.Map = nil }},
		{"no reduce", func(s *Spec) { s.Reduce = nil }},
		{"no difference", func(s *Spec) { s.Difference = nil }},
		{"no project", func(s *Spec) { s.Project = nil }},
		{"no init state", func(s *Spec) { s.InitState = nil }},
		{"replicate without assemble", func(s *Spec) { s.ReplicateState = true }},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		if _, err := NewRunner(eng, s, Config{}); err == nil {
			t.Errorf("%s: NewRunner succeeded", c.name)
		}
	}
}

func TestLifecycleErrors(t *testing.T) {
	eng := newEngine(t, 1)
	r, err := NewRunner(eng, pageRankSpec(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("Run before LoadStructure succeeded")
	}
	writeGraph(t, eng, "g", map[string][]string{"a": {"a"}})
	if _, err := r.LoadStructure("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStructure("g"); err == nil {
		t.Fatal("second LoadStructure succeeded")
	}
	if _, err := r.LoadStructure("missing"); err == nil {
		t.Fatal("LoadStructure on missing input succeeded")
	}
}

func TestStateSnapshotIsCopy(t *testing.T) {
	eng := newEngine(t, 2)
	writeGraph(t, eng, "g", testGraph())
	r, err := NewRunner(eng, pageRankSpec(), Config{NumPartitions: 2, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStructure("g"); err != nil {
		t.Fatal(err)
	}
	snap := r.State()
	snap["a"] = "tampered"
	if r.State()["a"] == "tampered" {
		t.Fatal("State() exposes internal map")
	}
}

// runPageRank runs a converged PageRank with cfg and returns the
// result and final state.
func runPageRank(t *testing.T, cfg Config) (*Result, map[string]string) {
	t.Helper()
	eng := newEngine(t, 3)
	writeGraph(t, eng, "graph", testGraph())
	r, err := NewRunner(eng, pageRankSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStructure("graph"); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, r.State()
}

func cacheCounters(res *Result) (hits, misses int64) {
	for _, s := range res.PerIter {
		hits += s.Stages.Counters["structcache.hits"]
		misses += s.Stages.Counters["structcache.misses"]
	}
	return hits, misses
}

func TestStructCacheServesRepeatIterations(t *testing.T) {
	base := Config{NumPartitions: 3, MaxIterations: 50, Epsilon: 1e-10}
	resOff, stateOff := runPageRank(t, base)
	if h, m := cacheCounters(resOff); h != 0 || m != 0 {
		t.Fatalf("cache disabled but counted hits=%d misses=%d", h, m)
	}

	cached := base
	cached.StructCacheBytes = 1 << 20
	resOn, stateOn := runPageRank(t, cached)
	hits, misses := cacheCounters(resOn)
	// First iteration decodes (and fills) all 3 partitions; every later
	// iteration is served from memory.
	if misses != 3 {
		t.Fatalf("misses = %d, want 3 (one per partition on iteration 1)", misses)
	}
	if want := int64(resOn.Iterations-1) * 3; hits != want {
		t.Fatalf("hits = %d, want %d", hits, want)
	}
	if len(stateOn) != len(stateOff) {
		t.Fatalf("cached run has %d state keys, uncached %d", len(stateOn), len(stateOff))
	}
	for k, v := range stateOff {
		if stateOn[k] != v {
			t.Fatalf("state[%q] = %q with cache, %q without", k, stateOn[k], v)
		}
	}
}

func TestStructCacheTooSmallFallsBack(t *testing.T) {
	cfg := Config{NumPartitions: 3, MaxIterations: 50, Epsilon: 1e-10, StructCacheBytes: 1}
	res, state := runPageRank(t, cfg)
	hits, misses := cacheCounters(res)
	if hits != 0 {
		t.Fatalf("1-byte cache served %d hits", hits)
	}
	if want := int64(res.Iterations) * 3; misses != want {
		t.Fatalf("misses = %d, want %d (every partition, every iteration)", misses, want)
	}
	if len(state) != len(testGraph()) {
		t.Fatalf("state has %d keys, want %d", len(state), len(testGraph()))
	}
}

func TestShuffleSpillBudgetPreservesResults(t *testing.T) {
	base := Config{NumPartitions: 3, MaxIterations: 50, Epsilon: 1e-10}
	resMem, stateMem := runPageRank(t, base)

	spilled := base
	spilled.ShuffleMemoryBudget = 128
	resSpill, stateSpill := runPageRank(t, spilled)

	var runs int64
	for _, s := range resSpill.PerIter {
		runs += s.Stages.Counters["shuffle.spill.runs"]
	}
	if runs == 0 {
		t.Fatal("128-byte budget spilled no runs")
	}
	if resMem.Iterations != resSpill.Iterations {
		t.Fatalf("spilling changed iteration count: %d vs %d", resSpill.Iterations, resMem.Iterations)
	}
	for k, v := range stateMem {
		if stateSpill[k] != v {
			t.Fatalf("state[%q] = %q with spilling, %q in memory", k, stateSpill[k], v)
		}
	}
}

func TestStructurePartitioningCoLocation(t *testing.T) {
	// Every structure record must land in the partition that owns its
	// projected state key (Eq. 1 = Eq. 2 with the same hash).
	eng := newEngine(t, 3)
	adj := testGraph()
	writeGraph(t, eng, "g", adj)
	r, err := NewRunner(eng, pageRankSpec(), Config{NumPartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.LoadStructure("g")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counter("structure.records") != int64(len(adj)) {
		t.Fatalf("structure.records = %d, want %d", rep.Counter("structure.records"), len(adj))
	}
	for p := 0; p < 3; p++ {
		err := ReadStructFile(r.structPaths[p], func(pr kv.Pair) error {
			if kv.Partition(pr.Key, 3) != p { // Project is identity here
				return fmt.Errorf("record %q in partition %d, owner %d", pr.Key, p, kv.Partition(pr.Key, 3))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// State keys of partition p are exactly the projected keys of
		// its structure records.
		for dk := range r.state[p] {
			if kv.Partition(dk, 3) != p {
				t.Fatalf("state key %q in partition %d", dk, p)
			}
		}
	}
}
