package kv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The binary codec frames each record as:
//
//	uvarint(len(key)) key-bytes uvarint(len(value)) value-bytes
//
// and, for delta streams, a trailing op byte. It is used by shuffle
// spill files, DFS blocks, state files, and checkpoints. The format is
// self-delimiting and append-friendly; readers stop cleanly at io.EOF.

// maxFieldLen bounds a single key or value (64 MiB). The limit exists to
// turn a corrupted length prefix into an error instead of an attempted
// multi-gigabyte allocation.
const maxFieldLen = 64 << 20

// ErrCorrupt reports a malformed binary record (bad length prefix,
// truncated field, or invalid op byte).
var ErrCorrupt = errors.New("kv: corrupt record stream")

// Writer encodes pairs and deltas to an underlying io.Writer using the
// binary codec. Writers buffer internally; call Flush before the
// underlying file is read or closed.
type Writer struct {
	w       *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
	// Bytes counts the encoded bytes written (post-buffering length,
	// maintained by this type rather than the OS, so it is exact even
	// before Flush).
	Bytes int64
	// Records counts the records written.
	Records int64
}

// NewWriter returns a Writer encoding to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// NewWriterSize returns a Writer encoding to w through a buffer of at
// least size bytes. Spill paths use large buffers (256 KiB) so run
// writes hit the OS in few, big syscalls.
func NewWriterSize(w io.Writer, size int) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, size)}
}

func (w *Writer) writeField(s string) error {
	n := binary.PutUvarint(w.scratch[:], uint64(len(s)))
	if _, err := w.w.Write(w.scratch[:n]); err != nil {
		return err
	}
	if _, err := w.w.WriteString(s); err != nil {
		return err
	}
	w.Bytes += int64(n + len(s))
	return nil
}

// WritePair appends one pair record.
func (w *Writer) WritePair(p Pair) error {
	if err := w.writeField(p.Key); err != nil {
		return err
	}
	if err := w.writeField(p.Value); err != nil {
		return err
	}
	w.Records++
	return nil
}

// WriteDelta appends one delta record (pair framing plus one op byte).
func (w *Writer) WriteDelta(d Delta) error {
	if !d.Op.Valid() {
		return fmt.Errorf("kv: WriteDelta: invalid op %q", byte(d.Op))
	}
	if err := w.writeField(d.Key); err != nil {
		return err
	}
	if err := w.writeField(d.Value); err != nil {
		return err
	}
	if err := w.w.WriteByte(byte(d.Op)); err != nil {
		return err
	}
	w.Bytes++
	w.Records++
	return nil
}

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes pairs and deltas produced by Writer. A stream must be
// read with the same record type it was written with; mixing WritePair
// and WriteDelta in one stream is not supported.
type Reader struct {
	r *bufio.Reader
	// Bytes counts the encoded bytes consumed.
	Bytes int64
	// Records counts the records read.
	Records int64
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

func (r *Reader) readField(first bool) (string, error) {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF && first {
			return "", io.EOF // clean end of stream
		}
		if err == io.EOF {
			return "", fmt.Errorf("%w: truncated length prefix", ErrCorrupt)
		}
		return "", err
	}
	r.Bytes += int64(uvarintLen(n))
	if n > maxFieldLen {
		return "", fmt.Errorf("%w: field length %d exceeds limit", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return "", fmt.Errorf("%w: truncated field: %v", ErrCorrupt, err)
	}
	r.Bytes += int64(n)
	return string(buf), nil
}

// ReadPair reads the next pair. It returns io.EOF at a clean end of
// stream and ErrCorrupt (wrapped) on malformed input.
func (r *Reader) ReadPair() (Pair, error) {
	k, err := r.readField(true)
	if err != nil {
		return Pair{}, err
	}
	v, err := r.readField(false)
	if err != nil {
		return Pair{}, err
	}
	r.Records++
	return Pair{Key: k, Value: v}, nil
}

// ReadDelta reads the next delta record.
func (r *Reader) ReadDelta() (Delta, error) {
	k, err := r.readField(true)
	if err != nil {
		return Delta{}, err
	}
	v, err := r.readField(false)
	if err != nil {
		return Delta{}, err
	}
	op, err := r.r.ReadByte()
	if err != nil {
		return Delta{}, fmt.Errorf("%w: truncated op byte", ErrCorrupt)
	}
	r.Bytes++
	if !Op(op).Valid() {
		return Delta{}, fmt.Errorf("%w: invalid op byte %q", ErrCorrupt, op)
	}
	r.Records++
	return Delta{Key: k, Value: v, Op: Op(op)}, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendPair appends p's binary encoding to buf and returns the
// extended slice. It is the allocation-free counterpart of
// Writer.WritePair for callers assembling records in a block arena.
func AppendPair(buf []byte, p Pair) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p.Key)))
	buf = append(buf, p.Key...)
	buf = binary.AppendUvarint(buf, uint64(len(p.Value)))
	buf = append(buf, p.Value...)
	return buf
}

// DecodePairInPlace decodes one pair record from the front of buf
// without copying: key and value alias buf. n is the number of bytes
// consumed. Callers that outlive buf (e.g. a pooled block buffer about
// to be recycled) must copy before retaining. Returns io.EOF when buf
// is empty.
func DecodePairInPlace(buf []byte) (key, value []byte, n int, err error) {
	if len(buf) == 0 {
		return nil, nil, 0, io.EOF
	}
	key, n1, err := decodeFieldInPlace(buf)
	if err != nil {
		return nil, nil, 0, err
	}
	value, n2, err := decodeFieldInPlace(buf[n1:])
	if err != nil {
		return nil, nil, 0, err
	}
	return key, value, n1 + n2, nil
}

func decodeFieldInPlace(buf []byte) ([]byte, int, error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: truncated length prefix", ErrCorrupt)
	}
	if l > maxFieldLen {
		return nil, 0, fmt.Errorf("%w: field length %d exceeds limit", ErrCorrupt, l)
	}
	end := n + int(l)
	if end > len(buf) {
		return nil, 0, fmt.Errorf("%w: truncated field", ErrCorrupt)
	}
	return buf[n:end], end, nil
}

// EncodePairs writes all pairs to w with a single Writer and flushes.
func EncodePairs(w io.Writer, ps []Pair) (int64, error) {
	enc := NewWriter(w)
	for _, p := range ps {
		if err := enc.WritePair(p); err != nil {
			return enc.Bytes, err
		}
	}
	return enc.Bytes, enc.Flush()
}

// DecodePairs reads all pairs from r until EOF.
func DecodePairs(r io.Reader) ([]Pair, error) {
	dec := NewReader(r)
	var out []Pair
	for {
		p, err := dec.ReadPair()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// EncodeDeltas writes all deltas to w with a single Writer and flushes.
func EncodeDeltas(w io.Writer, ds []Delta) (int64, error) {
	enc := NewWriter(w)
	for _, d := range ds {
		if err := enc.WriteDelta(d); err != nil {
			return enc.Bytes, err
		}
	}
	return enc.Bytes, enc.Flush()
}

// DecodeDeltas reads all deltas from r until EOF.
func DecodeDeltas(r io.Reader) ([]Delta, error) {
	dec := NewReader(r)
	var out []Delta
	for {
		d, err := dec.ReadDelta()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
}
