package kv

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPairCodecRoundTrip(t *testing.T) {
	ps := []Pair{
		{"", ""},
		{"k", "v"},
		{"key with spaces", "value\twith\ttabs\nand newlines"},
		{string(make([]byte, 1000)), "big-key"},
	}
	var buf bytes.Buffer
	n, err := EncodePairs(&buf, ps)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("EncodePairs reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := DecodePairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ps) {
		t.Fatalf("round trip = %v, want %v", got, ps)
	}
}

func TestPairCodecRoundTripProperty(t *testing.T) {
	f := func(keys, vals []string) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		ps := make([]Pair, n)
		for i := 0; i < n; i++ {
			ps[i] = Pair{Key: keys[i], Value: vals[i]}
		}
		var buf bytes.Buffer
		if _, err := EncodePairs(&buf, ps); err != nil {
			return false
		}
		got, err := DecodePairs(&buf)
		if err != nil {
			return false
		}
		if len(got) == 0 && n == 0 {
			return true
		}
		return reflect.DeepEqual(got, ps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	ds := []Delta{
		{"a", "1", OpInsert},
		{"b", "", OpDelete},
		{"", "only-value", OpInsert},
	}
	var buf bytes.Buffer
	if _, err := EncodeDeltas(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDeltas(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ds) {
		t.Fatalf("round trip = %v, want %v", got, ds)
	}
}

func TestWriteDeltaRejectsInvalidOp(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteDelta(Delta{Key: "k", Op: Op('?')}); err == nil {
		t.Fatal("WriteDelta with invalid op succeeded")
	}
}

func TestReaderCleanEOF(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.ReadPair(); err != io.EOF {
		t.Fatalf("ReadPair on empty stream = %v, want io.EOF", err)
	}
	r = NewReader(bytes.NewReader(nil))
	if _, err := r.ReadDelta(); err != io.EOF {
		t.Fatalf("ReadDelta on empty stream = %v, want io.EOF", err)
	}
}

func TestReaderTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if _, err := EncodePairs(&buf, []Pair{{"hello", "world"}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for cut := 1; cut < len(b); cut++ {
		r := NewReader(bytes.NewReader(b[:cut]))
		_, err := r.ReadPair()
		if err == nil {
			t.Fatalf("truncated at %d bytes: ReadPair succeeded", cut)
		}
		if err == io.EOF {
			t.Fatalf("truncated at %d bytes: got clean io.EOF, want corrupt error", cut)
		}
	}
}

func TestReaderCorruptLength(t *testing.T) {
	// A huge uvarint length must be rejected, not allocated.
	buf := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	r := NewReader(bytes.NewReader(buf))
	_, err := r.ReadPair()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadPair on oversized length = %v, want ErrCorrupt", err)
	}
}

func TestReaderInvalidDeltaOp(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.writeField("k"); err != nil {
		t.Fatal(err)
	}
	if err := w.writeField("v"); err != nil {
		t.Fatal(err)
	}
	if err := w.w.WriteByte('z'); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.ReadDelta(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadDelta with op 'z' = %v, want ErrCorrupt", err)
	}
}

func TestWriterCounters(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePair(Pair{"abc", "de"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records != 1 {
		t.Fatalf("Records = %d, want 1", w.Records)
	}
	if w.Bytes != int64(buf.Len()) {
		t.Fatalf("Bytes = %d, buffer = %d", w.Bytes, buf.Len())
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.ReadPair(); err != nil {
		t.Fatal(err)
	}
	if r.Bytes != int64(buf.Len()) || r.Records != 1 {
		t.Fatalf("reader counters = (%d bytes, %d records)", r.Bytes, r.Records)
	}
}

func TestUvarintLen(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 127: 1, 128: 2, 16383: 2, 16384: 3}
	for v, want := range cases {
		if got := uvarintLen(v); got != want {
			t.Errorf("uvarintLen(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestAppendPairRoundTrip(t *testing.T) {
	pairs := []Pair{{"a", "1"}, {"key-two", ""}, {"", "value-only"}, {"βig", "ünicode"}}
	var buf []byte
	for _, p := range pairs {
		buf = AppendPair(buf, p)
	}
	// Streamed Writer output must be byte-identical.
	var stream bytes.Buffer
	if _, err := EncodePairs(&stream, pairs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, stream.Bytes()) {
		t.Fatal("AppendPair encoding differs from Writer encoding")
	}
	// In-place decode walks the same bytes back out, zero-copy.
	rest := buf
	for i, want := range pairs {
		k, v, n, err := DecodePairInPlace(rest)
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if string(k) != want.Key || string(v) != want.Value {
			t.Fatalf("pair %d = (%q, %q), want %+v", i, k, v, want)
		}
		rest = rest[n:]
	}
	if _, _, _, err := DecodePairInPlace(rest); err != io.EOF {
		t.Fatalf("trailing decode = %v, want io.EOF", err)
	}
}

func TestDecodePairInPlaceCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"truncated key":    {5, 'a', 'b'},
		"truncated value":  AppendPair(nil, Pair{"k", "v"})[:3],
		"oversized length": {0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, b := range cases {
		if _, _, _, err := DecodePairInPlace(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestDecodePairInPlaceAliasesBuffer(t *testing.T) {
	buf := AppendPair(nil, Pair{"alias", "check"})
	k, _, _, err := DecodePairInPlace(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[1] = 'A' // first key byte (after 1-byte length prefix)
	if string(k) != "Alias" {
		t.Fatalf("key does not alias buffer: %q", k)
	}
}
