package kv

import "testing"

// FuzzEscapeField checks the field escaper is lossless for every
// string: UnescapeField(EscapeField(s)) == s. The text codec riding on
// it (pairs, deltas, the ingest staging log) inherits this guarantee.
func FuzzEscapeField(f *testing.F) {
	f.Add("")
	f.Add("plain")
	f.Add("tab\tand\nnewline")
	f.Add(`trailing backslash \`)
	f.Add(`\t literal backslash-t`)
	f.Add("\x00binary\xff")
	f.Fuzz(func(t *testing.T, s string) {
		esc := EscapeField(s)
		if got := UnescapeField(esc); got != s {
			t.Fatalf("UnescapeField(EscapeField(%q)) = %q", s, got)
		}
	})
}

// FuzzTextDelta feeds arbitrary lines through the delta text codec.
// Invalid lines must error (never panic); valid lines must be stable
// under a format/parse round trip, since delta files are re-read across
// incremental runs.
func FuzzTextDelta(f *testing.F) {
	f.Add("k\tv\t+")
	f.Add("k\tv\t-")
	f.Add("escaped\\tkey\t\t+")
	f.Add("no-op-field")
	f.Add("\t\t")
	f.Fuzz(func(t *testing.T, line string) {
		d, err := ParseTextDelta(line)
		if err != nil {
			return
		}
		line2 := FormatTextDelta(d)
		d2, err := ParseTextDelta(line2)
		if err != nil {
			t.Fatalf("formatted delta %q does not parse: %v", line2, err)
		}
		if d2 != d {
			t.Fatalf("round trip changed delta: %+v -> %q -> %+v", d, line2, d2)
		}

		// Pairs ride the same escaping; keep them honest too.
		p := ParseTextPair(line)
		if p2 := ParseTextPair(FormatTextPair(p)); p2 != p {
			t.Fatalf("pair round trip changed: %+v -> %+v", p, p2)
		}
	})
}
