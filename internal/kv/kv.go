// Package kv defines the key-value record types that flow through every
// stage of the i2MapReduce engine, together with the sorting, grouping,
// fingerprinting, and partitioning primitives shared by the MapReduce
// engine, the MRBG-Store, and the incremental processing engines.
//
// Keys and values are Go strings end-to-end. Applications encode richer
// values (floats, adjacency lists, centroid sets) with strconv/strings;
// the engine never interprets values.
package kv

import (
	"cmp"
	"fmt"
	"hash/fnv"
	"slices"
	"strings"
)

// Pair is a single key-value record: the unit of data between all
// MapReduce stages (K1/V1 input, K2/V2 intermediate, K3/V3 output).
type Pair struct {
	Key   string
	Value string
}

// String renders the pair in the text codec form ("key\tvalue").
func (p Pair) String() string { return p.Key + "\t" + p.Value }

// Op marks a delta record as an insertion or a deletion. An update is
// represented as a deletion of the old record followed by an insertion
// of the new record, exactly as in the paper (Sec. 3.1).
type Op byte

const (
	// OpInsert marks a newly inserted kv-pair ('+' in the paper).
	OpInsert Op = '+'
	// OpDelete marks a deleted kv-pair ('-' in the paper).
	OpDelete Op = '-'
)

// Valid reports whether the op is one of the two defined markers.
func (o Op) Valid() bool { return o == OpInsert || o == OpDelete }

// String returns "+" or "-" (or "?" for an invalid op).
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "+"
	case OpDelete:
		return "-"
	}
	return "?"
}

// Delta is a kv-pair tagged with an insertion/deletion marker. Delta
// inputs drive incremental processing (Sec. 3.3 "Delta Input").
type Delta struct {
	Key   string
	Value string
	Op    Op
}

// Pair returns the underlying kv-pair without the op marker.
func (d Delta) Pair() Pair { return Pair{Key: d.Key, Value: d.Value} }

// String renders the delta in the text codec form ("key\tvalue\t+").
func (d Delta) String() string {
	return d.Key + "\t" + d.Value + "\t" + d.Op.String()
}

// SortPairs sorts records by key, breaking ties by value, mirroring the
// total order the MapReduce shuffle produces. Sorting is stable with
// respect to nothing else; equal (key,value) records may be reordered.
// slices.SortFunc rather than sort.Slice: this is the shuffle's
// spill-run hot path, and the reflection-based swapper allocates where
// the generic sort does not.
func SortPairs(ps []Pair) {
	slices.SortFunc(ps, func(a, b Pair) int {
		if c := strings.Compare(a.Key, b.Key); c != 0 {
			return c
		}
		return strings.Compare(a.Value, b.Value)
	})
}

// SortDeltas sorts delta records by key, then value, then op.
func SortDeltas(ds []Delta) {
	slices.SortFunc(ds, func(a, b Delta) int {
		if c := strings.Compare(a.Key, b.Key); c != 0 {
			return c
		}
		if c := strings.Compare(a.Value, b.Value); c != 0 {
			return c
		}
		return cmp.Compare(a.Op, b.Op)
	})
}

// PairsSorted reports whether ps is in non-decreasing key order.
func PairsSorted(ps []Pair) bool {
	for i := 1; i < len(ps); i++ {
		if ps[i].Key < ps[i-1].Key {
			return false
		}
	}
	return true
}

// Group is the reduce-side view of one intermediate key: the key and all
// values shuffled to it.
type Group struct {
	Key    string
	Values []string
}

// GroupSorted walks a key-sorted pair slice and yields one Group per
// distinct key, in key order. It panics if ps is not sorted by key,
// because silently mis-grouping would corrupt reduce outputs.
func GroupSorted(ps []Pair, yield func(g Group) error) error {
	i := 0
	for i < len(ps) {
		j := i + 1
		for j < len(ps) && ps[j].Key == ps[i].Key {
			j++
		}
		if i > 0 && ps[i].Key < ps[i-1].Key {
			panic("kv: GroupSorted called on unsorted pairs")
		}
		vals := make([]string, 0, j-i)
		for k := i; k < j; k++ {
			vals = append(vals, ps[k].Value)
		}
		if err := yield(Group{Key: ps[i].Key, Values: vals}); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// Fingerprint computes the 64-bit FNV-1a hash of a (key, value) record.
// i2MapReduce uses fingerprints as the globally unique Map key MK
// attached to every MRBGraph edge: a deletion in a delta input
// fingerprints to the same MK as the original record, so it cancels
// exactly the edges that record produced (DESIGN.md "Key design
// decisions"). The 0x1f separator keeps ("ab","c") and ("a","bc")
// distinct.
func Fingerprint(key, value string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0x1f})
	h.Write([]byte(value))
	return h.Sum64()
}

// HashString is the engine-wide string hash used by partitioners and the
// MRBG-Store chunk index (FNV-1a, 64-bit).
func HashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Mix64 is a splitmix64-style finalizer applied before reducing a hash
// modulo a small partition count. FNV-1a's low bit is a linear function
// of the input bytes (its parity is the XOR of all byte parities), so
// without avalanche mixing, structured key sets can collapse onto a
// single partition when n is even.
func Mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Partition maps a key to one of n partitions with the engine-wide hash,
// matching the paper's partition functions (1) and (2) in Sec. 4.3.
// It panics if n <= 0: a job with no partitions is a configuration bug.
func Partition(key string, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("kv: Partition called with n=%d", n))
	}
	return int(Mix64(HashString(key)) % uint64(n))
}

// EscapeField makes a string safe for the tab/newline-delimited text
// codec by escaping backslash, tab, and newline characters.
func EscapeField(s string) string {
	if !strings.ContainsAny(s, "\\\t\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\t':
			b.WriteString(`\t`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// UnescapeField reverses EscapeField. Unknown escapes are preserved
// verbatim (backslash kept) rather than rejected, so hand-written input
// files degrade gracefully.
func UnescapeField(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 't':
				b.WriteByte('\t')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// FormatTextPair renders a pair as one line of the text codec.
func FormatTextPair(p Pair) string {
	return EscapeField(p.Key) + "\t" + EscapeField(p.Value)
}

// ParseTextPair parses one line of the text codec ("key\tvalue"). A line
// without a tab parses as a pair with an empty value, matching Hadoop's
// TextInputFormat behaviour of tolerating value-less lines.
func ParseTextPair(line string) Pair {
	k, v, ok := strings.Cut(line, "\t")
	if !ok {
		return Pair{Key: UnescapeField(line)}
	}
	return Pair{Key: UnescapeField(k), Value: UnescapeField(v)}
}

// FormatTextDelta renders a delta as one line ("key\tvalue\t+").
func FormatTextDelta(d Delta) string {
	return EscapeField(d.Key) + "\t" + EscapeField(d.Value) + "\t" + d.Op.String()
}

// ParseTextDelta parses one line of the delta text codec. It returns an
// error if the op field is missing or not "+"/"-", because a silently
// mis-parsed delta would corrupt incremental results.
func ParseTextDelta(line string) (Delta, error) {
	i := strings.LastIndexByte(line, '\t')
	if i < 0 {
		return Delta{}, fmt.Errorf("kv: delta line %q has no op field", line)
	}
	opField := line[i+1:]
	if opField != "+" && opField != "-" {
		return Delta{}, fmt.Errorf("kv: delta line %q has invalid op %q", line, opField)
	}
	p := ParseTextPair(line[:i])
	return Delta{Key: p.Key, Value: p.Value, Op: Op(opField[0])}, nil
}
