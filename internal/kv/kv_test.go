package kv

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPairString(t *testing.T) {
	p := Pair{Key: "a", Value: "b"}
	if got := p.String(); got != "a\tb" {
		t.Fatalf("Pair.String() = %q, want %q", got, "a\tb")
	}
}

func TestOpValidAndString(t *testing.T) {
	cases := []struct {
		op    Op
		valid bool
		str   string
	}{
		{OpInsert, true, "+"},
		{OpDelete, true, "-"},
		{Op('x'), false, "?"},
		{Op(0), false, "?"},
	}
	for _, c := range cases {
		if got := c.op.Valid(); got != c.valid {
			t.Errorf("Op(%q).Valid() = %v, want %v", byte(c.op), got, c.valid)
		}
		if got := c.op.String(); got != c.str {
			t.Errorf("Op(%q).String() = %q, want %q", byte(c.op), got, c.str)
		}
	}
}

func TestDeltaPairAndString(t *testing.T) {
	d := Delta{Key: "k", Value: "v", Op: OpDelete}
	if got := d.Pair(); got != (Pair{Key: "k", Value: "v"}) {
		t.Fatalf("Delta.Pair() = %+v", got)
	}
	if got := d.String(); got != "k\tv\t-" {
		t.Fatalf("Delta.String() = %q", got)
	}
}

func TestSortPairsOrdersByKeyThenValue(t *testing.T) {
	ps := []Pair{{"b", "2"}, {"a", "9"}, {"b", "1"}, {"a", "1"}}
	SortPairs(ps)
	want := []Pair{{"a", "1"}, {"a", "9"}, {"b", "1"}, {"b", "2"}}
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("SortPairs = %v, want %v", ps, want)
	}
	if !PairsSorted(ps) {
		t.Fatal("PairsSorted(sorted) = false")
	}
}

func TestPairsSortedDetectsDisorder(t *testing.T) {
	if PairsSorted([]Pair{{"b", ""}, {"a", ""}}) {
		t.Fatal("PairsSorted on unsorted input = true")
	}
	if !PairsSorted(nil) {
		t.Fatal("PairsSorted(nil) = false")
	}
}

func TestSortDeltasTotalOrder(t *testing.T) {
	ds := []Delta{
		{"a", "1", OpInsert},
		{"a", "1", OpDelete},
		{"a", "0", OpInsert},
		{"b", "0", OpDelete},
	}
	SortDeltas(ds)
	want := []Delta{
		{"a", "0", OpInsert},
		{"a", "1", OpInsert}, // '+' (43) < '-' (45)
		{"a", "1", OpDelete},
		{"b", "0", OpDelete},
	}
	if !reflect.DeepEqual(ds, want) {
		t.Fatalf("SortDeltas = %v, want %v", ds, want)
	}
}

func TestGroupSorted(t *testing.T) {
	ps := []Pair{{"a", "1"}, {"a", "2"}, {"b", "3"}, {"c", "4"}, {"c", "5"}}
	var got []Group
	err := GroupSorted(ps, func(g Group) error {
		got = append(got, g)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Group{
		{"a", []string{"1", "2"}},
		{"b", []string{"3"}},
		{"c", []string{"4", "5"}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GroupSorted = %v, want %v", got, want)
	}
}

func TestGroupSortedEmpty(t *testing.T) {
	called := false
	if err := GroupSorted(nil, func(Group) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("GroupSorted(nil) invoked yield")
	}
}

func TestGroupSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GroupSorted on unsorted input did not panic")
		}
	}()
	_ = GroupSorted([]Pair{{"b", ""}, {"a", ""}, {"a", ""}}, func(Group) error { return nil })
}

func TestFingerprintDistinguishesBoundary(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal(`Fingerprint("ab","c") == Fingerprint("a","bc")`)
	}
	if Fingerprint("k", "v") != Fingerprint("k", "v") {
		t.Fatal("Fingerprint is not deterministic")
	}
}

func TestPartitionInRangeAndDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64} {
		seen := map[int]bool{}
		for i := 0; i < 200; i++ {
			k := "key" + string(rune('a'+i%26)) + string(rune('0'+i%10))
			p := Partition(k, n)
			if p < 0 || p >= n {
				t.Fatalf("Partition(%q,%d) = %d out of range", k, n, p)
			}
			if Partition(k, n) != p {
				t.Fatalf("Partition(%q,%d) not deterministic", k, n)
			}
			seen[p] = true
		}
		if n > 1 && len(seen) < 2 {
			t.Errorf("Partition over %d buckets used only %d", n, len(seen))
		}
	}
}

func TestPartitionPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partition(k, 0) did not panic")
		}
	}()
	Partition("k", 0)
}

func TestEscapeRoundTrip(t *testing.T) {
	cases := []string{"", "plain", "tab\there", "nl\nhere", `back\slash`, "\t\n\\", "mix\\t"}
	for _, s := range cases {
		e := EscapeField(s)
		if strings.ContainsAny(e, "\t\n") {
			t.Errorf("EscapeField(%q) = %q still contains separators", s, e)
		}
		if got := UnescapeField(e); got != s {
			t.Errorf("UnescapeField(EscapeField(%q)) = %q", s, got)
		}
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		return UnescapeField(EscapeField(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTextPairRoundTripProperty(t *testing.T) {
	f := func(k, v string) bool {
		line := FormatTextPair(Pair{Key: k, Value: v})
		got := ParseTextPair(line)
		return got.Key == k && got.Value == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseTextPairNoTab(t *testing.T) {
	p := ParseTextPair("solo")
	if p.Key != "solo" || p.Value != "" {
		t.Fatalf("ParseTextPair(solo) = %+v", p)
	}
}

func TestTextDeltaRoundTrip(t *testing.T) {
	for _, op := range []Op{OpInsert, OpDelete} {
		d := Delta{Key: "k\t1", Value: "v\n2", Op: op}
		line := FormatTextDelta(d)
		got, err := ParseTextDelta(line)
		if err != nil {
			t.Fatal(err)
		}
		if got != d {
			t.Fatalf("delta round trip = %+v, want %+v", got, d)
		}
	}
}

func TestParseTextDeltaErrors(t *testing.T) {
	if _, err := ParseTextDelta("noop"); err == nil {
		t.Fatal("ParseTextDelta without op succeeded")
	}
	if _, err := ParseTextDelta("k\tv\tz"); err == nil {
		t.Fatal("ParseTextDelta with bad op succeeded")
	}
}

func TestSortPairsMatchesSortSliceProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		ps := make([]Pair, len(keys))
		for i, k := range keys {
			ps[i] = Pair{Key: string(rune('a' + k%16)), Value: string(rune('0' + k%8))}
		}
		cp := append([]Pair(nil), ps...)
		SortPairs(ps)
		sort.SliceStable(cp, func(i, j int) bool {
			if cp[i].Key != cp[j].Key {
				return cp[i].Key < cp[j].Key
			}
			return cp[i].Value < cp[j].Value
		})
		return len(ps) == len(cp) && (len(ps) == 0 || reflect.DeepEqual(ps, cp))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func randomPairs(rng *rand.Rand, n int) []Pair {
	ps := make([]Pair, n)
	for i := range ps {
		ps[i] = Pair{
			Key:   string(rune('a' + rng.Intn(10))),
			Value: string(rune('0' + rng.Intn(10))),
		}
	}
	return ps
}

func TestGroupSortedPartitionOfInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := randomPairs(rng, 200)
	SortPairs(ps)
	total := 0
	err := GroupSorted(ps, func(g Group) error {
		total += len(g.Values)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != len(ps) {
		t.Fatalf("groups cover %d values, want %d", total, len(ps))
	}
}
