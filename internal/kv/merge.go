package kv

import (
	"container/heap"
	"io"
)

// PairSource yields key-sorted pairs one at a time. io.EOF signals a
// clean end of the stream. Shuffle spill readers and in-memory runs both
// implement it, so the reduce-side merge is agnostic to where runs live.
type PairSource interface {
	Next() (Pair, error)
}

// SliceSource adapts an already-sorted []Pair to PairSource.
type SliceSource struct {
	ps []Pair
	i  int
}

// NewSliceSource returns a PairSource over ps, which must be key-sorted.
func NewSliceSource(ps []Pair) *SliceSource { return &SliceSource{ps: ps} }

// Next implements PairSource.
func (s *SliceSource) Next() (Pair, error) {
	if s.i >= len(s.ps) {
		return Pair{}, io.EOF
	}
	p := s.ps[s.i]
	s.i++
	return p, nil
}

// ReaderSource adapts a binary-codec Reader to PairSource.
type ReaderSource struct{ R *Reader }

// Next implements PairSource.
func (s ReaderSource) Next() (Pair, error) { return s.R.ReadPair() }

// mergeItem is one heap entry: the head pair of run idx.
type mergeItem struct {
	p   Pair
	idx int
}

// byKeyThenRun orders equal keys by run index: reduce value lists then
// come out identical run-to-run, which the tests and the MRBG-Store
// duplicate handling rely on (later batches must win).
func byKeyThenRun(a, b mergeItem) bool {
	if a.p.Key != b.p.Key {
		return a.p.Key < b.p.Key
	}
	return a.idx < b.idx
}

// byKeyValueThenRun orders by (key, value, run index), reproducing
// SortPairs' total order across runs. The shuffle runtime merges with
// it so a reduce group's value order does not depend on where run
// boundaries fell — i.e. on the memory budget or spill count.
func byKeyValueThenRun(a, b mergeItem) bool {
	if a.p.Key != b.p.Key {
		return a.p.Key < b.p.Key
	}
	if a.p.Value != b.p.Value {
		return a.p.Value < b.p.Value
	}
	return a.idx < b.idx
}

type mergeHeap struct {
	items []mergeItem
	less  func(a, b mergeItem) bool
}

func (h mergeHeap) Len() int            { return len(h.items) }
func (h mergeHeap) Less(i, j int) bool  { return h.less(h.items[i], h.items[j]) }
func (h mergeHeap) Swap(i, j int)       { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Merger performs a k-way merge of key-sorted runs, yielding a single
// key-sorted stream. This is the reduce-side merge of the shuffle
// (Hadoop's merge phase) and the batch merge inside the MRBG-Store.
type Merger struct {
	sources []PairSource
	h       mergeHeap
}

// NewMerger primes a Merger with the head element of every source.
// Sources that are empty from the start are dropped. Equal keys drain
// in source order (see byKeyThenRun).
func NewMerger(sources ...PairSource) (*Merger, error) {
	return newMerger(byKeyThenRun, sources)
}

// NewMergerByKeyValue primes a Merger whose output reproduces
// SortPairs' (key, value) total order regardless of how pairs were
// split across the sorted sources. Sources must each be sorted with
// SortPairs (key then value).
func NewMergerByKeyValue(sources ...PairSource) (*Merger, error) {
	return newMerger(byKeyValueThenRun, sources)
}

func newMerger(less func(a, b mergeItem) bool, sources []PairSource) (*Merger, error) {
	m := &Merger{sources: sources, h: mergeHeap{less: less}}
	for i, src := range sources {
		p, err := src.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return nil, err
		}
		m.h.items = append(m.h.items, mergeItem{p: p, idx: i})
	}
	heap.Init(&m.h)
	return m, nil
}

// Next implements PairSource: it returns the globally next pair in key
// order, refilling from the source it came from.
func (m *Merger) Next() (Pair, error) {
	if len(m.h.items) == 0 {
		return Pair{}, io.EOF
	}
	it := m.h.items[0]
	p, err := m.sources[it.idx].Next()
	switch err {
	case nil:
		m.h.items[0] = mergeItem{p: p, idx: it.idx}
		heap.Fix(&m.h, 0)
	case io.EOF:
		heap.Pop(&m.h)
	default:
		return Pair{}, err
	}
	return it.p, nil
}

// GroupStream consumes a key-sorted PairSource and yields one Group per
// distinct key. The values slice passed to yield is reused only after
// yield returns, so callers may retain it by copying.
func GroupStream(src PairSource, yield func(g Group) error) error {
	cur := Group{}
	started := false
	flush := func() error {
		if !started {
			return nil
		}
		return yield(cur)
	}
	for {
		p, err := src.Next()
		if err == io.EOF {
			return flush()
		}
		if err != nil {
			return err
		}
		if !started {
			cur = Group{Key: p.Key, Values: []string{p.Value}}
			started = true
			continue
		}
		if p.Key == cur.Key {
			cur.Values = append(cur.Values, p.Value)
			continue
		}
		if err := flush(); err != nil {
			return err
		}
		cur = Group{Key: p.Key, Values: []string{p.Value}}
	}
}
