package kv

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func drain(t *testing.T, src PairSource) []Pair {
	t.Helper()
	var out []Pair
	for {
		p, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
}

func TestSliceSource(t *testing.T) {
	ps := []Pair{{"a", "1"}, {"b", "2"}}
	got := drain(t, NewSliceSource(ps))
	if !reflect.DeepEqual(got, ps) {
		t.Fatalf("SliceSource = %v", got)
	}
}

func TestReaderSource(t *testing.T) {
	var buf bytes.Buffer
	ps := []Pair{{"a", "1"}, {"b", "2"}}
	if _, err := EncodePairs(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got := drain(t, ReaderSource{R: NewReader(&buf)})
	if !reflect.DeepEqual(got, ps) {
		t.Fatalf("ReaderSource = %v", got)
	}
}

func TestMergerByKeyValueReproducesSortPairsOrder(t *testing.T) {
	// Split a random multiset of pairs into arbitrary sorted runs; the
	// (key, value)-ordered merge must reproduce SortPairs' total order
	// on the union, regardless of how the runs were cut.
	rng := rand.New(rand.NewSource(42))
	var all []Pair
	for i := 0; i < 500; i++ {
		all = append(all, Pair{
			Key:   string(rune('a' + rng.Intn(8))),
			Value: string(rune('0' + rng.Intn(10))),
		})
	}
	want := append([]Pair(nil), all...)
	SortPairs(want)

	for _, runsN := range []int{1, 3, 7} {
		runs := make([][]Pair, runsN)
		for i, p := range all {
			r := (i * 31) % runsN
			runs[r] = append(runs[r], p)
		}
		sources := make([]PairSource, runsN)
		for r := range runs {
			SortPairs(runs[r])
			sources[r] = NewSliceSource(runs[r])
		}
		m, err := NewMergerByKeyValue(sources...)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, m)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d runs: merge order differs from SortPairs order", runsN)
		}
	}
}

func TestMergerByKeyValueOrdersValuesAcrossRuns(t *testing.T) {
	// Equal keys with different values interleave by value, not by run.
	a := []Pair{{"k", "3"}, {"k", "5"}}
	b := []Pair{{"k", "1"}, {"k", "4"}}
	m, err := NewMergerByKeyValue(NewSliceSource(a), NewSliceSource(b))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, m)
	want := []Pair{{"k", "1"}, {"k", "3"}, {"k", "4"}, {"k", "5"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
}

func TestMergerTwoRuns(t *testing.T) {
	a := []Pair{{"a", "1"}, {"c", "3"}, {"e", "5"}}
	b := []Pair{{"b", "2"}, {"c", "30"}, {"d", "4"}}
	m, err := NewMerger(NewSliceSource(a), NewSliceSource(b))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, m)
	want := []Pair{{"a", "1"}, {"b", "2"}, {"c", "3"}, {"c", "30"}, {"d", "4"}, {"e", "5"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
}

func TestMergerEmptyAndSingleRuns(t *testing.T) {
	m, err := NewMerger()
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, m); len(got) != 0 {
		t.Fatalf("empty merger yielded %v", got)
	}
	m, err = NewMerger(NewSliceSource(nil), NewSliceSource([]Pair{{"x", "1"}}))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, m)
	if !reflect.DeepEqual(got, []Pair{{"x", "1"}}) {
		t.Fatalf("merge = %v", got)
	}
}

func TestMergerDeterministicTieBreak(t *testing.T) {
	// Equal keys must come out in run-index order.
	a := []Pair{{"k", "fromA"}}
	b := []Pair{{"k", "fromB"}}
	m, err := NewMerger(NewSliceSource(a), NewSliceSource(b))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, m)
	want := []Pair{{"k", "fromA"}, {"k", "fromB"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
}

func TestMergerEqualsSortProperty(t *testing.T) {
	f := func(seed int64, nRuns uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(nRuns%5) + 1
		var all []Pair
		sources := make([]PairSource, k)
		for i := 0; i < k; i++ {
			run := randomPairsQuick(rng, rng.Intn(20))
			SortPairs(run)
			all = append(all, run...)
			sources[i] = NewSliceSource(run)
		}
		m, err := NewMerger(sources...)
		if err != nil {
			return false
		}
		var got []Pair
		for {
			p, err := m.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			got = append(got, p)
		}
		if len(got) != len(all) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Key < got[i-1].Key {
				return false
			}
		}
		// Same multiset: sort both and compare.
		SortPairs(all)
		cp := append([]Pair(nil), got...)
		SortPairs(cp)
		return reflect.DeepEqual(cp, all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func randomPairsQuick(rng *rand.Rand, n int) []Pair {
	ps := make([]Pair, n)
	for i := range ps {
		ps[i] = Pair{
			Key:   string(rune('a' + rng.Intn(8))),
			Value: string(rune('0' + rng.Intn(10))),
		}
	}
	return ps
}

func TestGroupStream(t *testing.T) {
	ps := []Pair{{"a", "1"}, {"a", "2"}, {"b", "3"}}
	var got []Group
	err := GroupStream(NewSliceSource(ps), func(g Group) error {
		cp := Group{Key: g.Key, Values: append([]string(nil), g.Values...)}
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Group{{"a", []string{"1", "2"}}, {"b", []string{"3"}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GroupStream = %v, want %v", got, want)
	}
}

func TestGroupStreamEmpty(t *testing.T) {
	called := false
	err := GroupStream(NewSliceSource(nil), func(Group) error { called = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("GroupStream on empty source invoked yield")
	}
}

func TestGroupStreamPropagatesYieldError(t *testing.T) {
	ps := []Pair{{"a", "1"}, {"b", "2"}}
	sentinel := io.ErrUnexpectedEOF
	err := GroupStream(NewSliceSource(ps), func(g Group) error { return sentinel })
	if err != sentinel {
		t.Fatalf("GroupStream error = %v, want sentinel", err)
	}
}
