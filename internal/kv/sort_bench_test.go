package kv

import (
	"fmt"
	"testing"
)

// The sort paths below run on every shuffle spill and every reduce-side
// residue sort; the switch from reflection-based sort.Slice to the
// generic slices.SortFunc removes the per-call interface allocations.
// The tests pin that property; the benchmarks (with ReportAllocs)
// surface the win in ns/op and allocs/op.

func shuffledPairs(n int) []Pair {
	ps := make([]Pair, n)
	for i := range ps {
		// A multiplicative walk scatters keys out of order.
		k := (i*2654435761 + 12345) % n
		ps[i] = Pair{Key: fmt.Sprintf("k%07d", k), Value: fmt.Sprintf("v%05d", i%97)}
	}
	return ps
}

func shuffledDeltas(n int) []Delta {
	ds := make([]Delta, n)
	for i := range ds {
		k := (i*2654435761 + 54321) % n
		op := OpInsert
		if i%3 == 0 {
			op = OpDelete
		}
		ds[i] = Delta{Key: fmt.Sprintf("k%07d", k), Value: fmt.Sprintf("v%05d", i%89), Op: op}
	}
	return ds
}

func TestSortPairsNoPerCallAllocs(t *testing.T) {
	src := shuffledPairs(512)
	buf := make([]Pair, len(src))
	allocs := testing.AllocsPerRun(10, func() {
		copy(buf, src)
		SortPairs(buf)
	})
	// sort.Slice cost ~3 allocs/op here (reflect swapper + closure);
	// slices.SortFunc costs none.
	if allocs > 1 {
		t.Fatalf("SortPairs allocates %.0f per call, want <= 1", allocs)
	}
	if !PairsSorted(buf) {
		t.Fatal("SortPairs left pairs unsorted")
	}
}

func TestSortDeltasNoPerCallAllocs(t *testing.T) {
	src := shuffledDeltas(512)
	buf := make([]Delta, len(src))
	allocs := testing.AllocsPerRun(10, func() {
		copy(buf, src)
		SortDeltas(buf)
	})
	if allocs > 1 {
		t.Fatalf("SortDeltas allocates %.0f per call, want <= 1", allocs)
	}
	for i := 1; i < len(buf); i++ {
		if buf[i].Key < buf[i-1].Key {
			t.Fatal("SortDeltas left deltas unsorted")
		}
	}
}

func BenchmarkSortPairs(b *testing.B) {
	src := shuffledPairs(4096)
	buf := make([]Pair, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		SortPairs(buf)
	}
}

func BenchmarkSortDeltas(b *testing.B) {
	src := shuffledDeltas(4096)
	buf := make([]Delta, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		SortDeltas(buf)
	}
}
