// Package metrics collects the per-stage timings and I/O counters that
// the experiment harness reports. Every job run produces a Report;
// iterative runs produce one Report per iteration plus a merged total.
//
// The paper's Fig. 9 breaks PageRank run time into map / shuffle / sort /
// reduce stages; Table 4 reports MRBG-Store read counts and read bytes.
// Both come straight out of this package.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage identifies one of the MapReduce phases we time separately.
type Stage int

const (
	// StageMap covers Map function invocation and map-side spill writing.
	StageMap Stage = iota
	// StageShuffle covers copying map outputs to reduce tasks.
	StageShuffle
	// StageSort covers the reduce-side merge-sort of fetched runs.
	StageSort
	// StageReduce covers Reduce invocation plus MRBG-Store maintenance.
	StageReduce
	// StageCheckpoint covers the durability plane: flushing dirty state
	// KVs, result stores, and MRBG-Stores at the end of an iteration or
	// refresh (memtable flush + manifest commit; with background
	// compaction enabled, nothing else).
	StageCheckpoint
	numStages
)

// String returns the lower-case stage name used in reports.
func (s Stage) String() string {
	switch s {
	case StageMap:
		return "map"
	case StageShuffle:
		return "shuffle"
	case StageSort:
		return "sort"
	case StageReduce:
		return "reduce"
	case StageCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Stages lists all stages in execution order.
func Stages() []Stage {
	return []Stage{StageMap, StageShuffle, StageSort, StageReduce, StageCheckpoint}
}

// Counter names shared across engine layers. Every name passed to
// Report.Add / Report.Counter must be one of these constants — the
// i2vet metricname analyzer enforces it — so a counter cannot silently
// split into two spellings across packages and every name has exactly
// one documented home.
const (
	// CounterMapRecordsIn / Out count the records entering Map tasks and
	// the intermediate records they emit.
	CounterMapRecordsIn  = "map.records.in"
	CounterMapRecordsOut = "map.records.out"
	// CounterMapTasks / CounterReduceTasks count task executions; the
	// ...Reused variants count tasks a memoizing baseline (IncOop)
	// answered from its cache instead of re-running.
	CounterMapTasks          = "map.tasks"
	CounterMapTasksReused    = "map.tasks.reused"
	CounterReduceTasks       = "reduce.tasks"
	CounterReduceTasksReused = "reduce.tasks.reused"
	// CounterReduceGroups counts distinct intermediate keys reduced;
	// CounterReduceInstances counts Reduce invocations in the
	// incremental engines (affected groups only).
	CounterReduceGroups    = "reduce.groups"
	CounterReduceInstances = "reduce.instances"
	// CounterIterations counts engine iterations in an iterative run.
	CounterIterations = "iterations"
	// CounterJobs counts MapReduce jobs launched; CounterStartupNS is
	// the simulated per-job startup cost in nanoseconds.
	CounterJobs      = "jobs"
	CounterStartupNS = "startup.ns"
	// CounterShuffleBytes counts the encoded intermediate bytes moved by
	// the shuffle.
	CounterShuffleBytes = "shuffle.bytes"
	// CounterStructureRecords counts the structure-file records indexed
	// by the iterative engines; CounterStructureBytesRead counts the
	// structure bytes the incremental map phase re-read.
	CounterStructureRecords   = "structure.records"
	CounterStructureBytesRead = "structure.bytes.read"
	// CounterDeltaRecords counts delta-input records applied by a
	// refresh; CounterDeltaEdges counts the MRBGraph edge updates they
	// expanded into.
	CounterDeltaRecords = "delta.records"
	CounterDeltaEdges   = "delta.edges"
	// CounterMRBGDisabled marks a run that fell back to convergence-only
	// mode with the MRBG-Store bypassed.
	CounterMRBGDisabled = "mrbg.disabled"
	// CounterSpillRuns counts sorted runs the shuffle runtime spilled to
	// node-local scratch because a map-side buffer exceeded its share of
	// the shuffle memory budget.
	CounterSpillRuns = "shuffle.spill.runs"
	// CounterSpillBytes counts the encoded bytes of those spilled runs.
	CounterSpillBytes = "shuffle.spill.bytes"
	// CounterStructCacheHits / Misses count iterations that served a
	// partition's structure data from the iter engine's decoded cache
	// vs. re-decoding the node-local structure file.
	CounterStructCacheHits   = "structcache.hits"
	CounterStructCacheMisses = "structcache.misses"
	// CounterResultSegments is the total on-disk segment count across
	// the one-step engine's per-partition result stores after a refresh.
	CounterResultSegments = "results.segments"
	// CounterResultCompactions counts result-store segment compactions
	// performed during a refresh.
	CounterResultCompactions = "results.compactions"
	// CounterResultDirtyPartitions counts the output partitions a
	// refresh actually re-serialized; clean partitions are cloned or
	// skipped.
	CounterResultDirtyPartitions = "results.dirty.partitions"
	// CounterResultBytesRewritten counts the DFS bytes written while
	// materializing those dirty partitions.
	CounterResultBytesRewritten = "results.bytes.rewritten"
	// CounterStateDirtyPartitions counts the partitions whose durable
	// state stores actually flushed during the core engine's
	// checkpoints; clean partitions are skipped entirely (no segment,
	// no manifest rewrite).
	CounterStateDirtyPartitions = "state.dirty.partitions"
	// CounterStateGroupsFlushed counts the state / CPC-baseline entries
	// those flushes wrote — the dirty groups, as opposed to the full
	// per-partition state files the pre-durable engine rewrote every
	// iteration.
	CounterStateGroupsFlushed = "state.groups.flushed"
	// CounterStateSegments is the total on-disk segment count across
	// the core engine's per-partition state stores after a job.
	CounterStateSegments = "state.segments"
	// CounterStateCompactions counts state-store segment compactions
	// performed during a job.
	CounterStateCompactions = "state.compactions"
	// CounterResultSegmentsOrphaned is the cumulative count of result /
	// state segment files whose deferred deletion failed, leaving them
	// on disk unreferenced by any manifest (re-swept at the next Open).
	// Reported as a gauge: non-zero means durable space is leaking.
	CounterResultSegmentsOrphaned = "results.segments.orphaned"
	// CounterServeSnapshotsOpen is the number of store snapshots the
	// serving layer currently holds open (partitions × live epochs).
	CounterServeSnapshotsOpen = "serve.snapshots.open"
	// CounterServeEpochFlips counts the serving layer's atomic epoch
	// flips: one per completed refresh made visible to readers.
	CounterServeEpochFlips = "serve.epoch.flips"
	// CounterServeCacheHits / Misses count point lookups served from /
	// filled into the per-epoch read-through cache (invalidated as a
	// whole at each epoch flip, so a hit can never be stale).
	CounterServeCacheHits   = "serve.cache.hits"
	CounterServeCacheMisses = "serve.cache.misses"
	// CounterHotKeysDetected counts the distinct intermediate keys the
	// shuffle runtime's space-saving sketches flagged as hot (share of
	// their partition's records above Config.SkewRatio) and split across
	// sub-keys during the map phase.
	CounterHotKeysDetected = "shuffle.hotkeys.detected"
	// CounterHotKeySplitRecords counts the intermediate records that were
	// rerouted to a hot key's sub-keys instead of the key itself.
	CounterHotKeySplitRecords = "shuffle.hotkeys.split.records"
	// CounterHotKeyMergedGroups counts the reduce groups reassembled from
	// sub-key fan-out by the merge-back collator (one per split key per
	// partition that saw it).
	CounterHotKeyMergedGroups = "shuffle.hotkeys.merged.groups"
	// CounterResultBlocksRead counts segment blocks decoded by result /
	// state store point lookups and merges (v2 block-format segments
	// only; a point hit should cost exactly one).
	CounterResultBlocksRead = "results.blocks.read"
	// CounterResultBloomSkips counts segment probes answered "absent" by
	// a segment's bloom filter with zero block I/O.
	CounterResultBloomSkips = "results.bloom.skips"
	// CounterResultBytesDecompressed counts the decoded bytes produced by
	// per-block decompression on the segment read path.
	CounterResultBytesDecompressed = "results.bytes.decompressed"
	// CounterSpillReuse counts spill-run pair buffers the shuffle runtime
	// recycled from its pool instead of growing fresh ones.
	CounterSpillReuse = "shuffle.spill.reuse"
	// CounterCompactQueueDepth is the background compaction scheduler's
	// queue depth (stores enqueued but not yet compacted) at report
	// time. Reported as a gauge.
	CounterCompactQueueDepth = "compact.queue.depth"
	// CounterCompactBGRuns counts compactions the background scheduler
	// executed off the checkpoint critical path.
	CounterCompactBGRuns = "compact.bg.runs"
	// CounterIngestRecords counts delta records accepted into the
	// streaming ingestion staging log (Ingester.Add / POST /ingest).
	CounterIngestRecords = "ingest.records"
	// CounterIngestBatches counts micro-batches the ingestion loop cut
	// and applied as refreshes.
	CounterIngestBatches = "ingest.batches"
	// CounterIngestRejected counts delta records refused with
	// backpressure (staging depth at its bound in reject mode).
	CounterIngestRejected = "ingest.rejected"
	// CounterIngestReplayed counts staged records recovered from the
	// staging log at Open and re-queued for refresh — records a previous
	// process accepted but had not yet applied when it died.
	CounterIngestReplayed = "ingest.replayed"
	// CounterFreshnessLagNS is the ingestion freshness lag gauge: the
	// age of the oldest accepted-but-unapplied delta record, in
	// nanoseconds (0 when fully drained).
	CounterFreshnessLagNS = "freshness.lag_ns"
)

// Report accumulates stage durations and named counters for one job (or
// one iteration). The zero value is ready to use. Reports are safe for
// concurrent use: map tasks running on different simulated nodes add to
// the same Report.
type Report struct {
	mu       sync.Mutex
	stages   [numStages]time.Duration
	counters map[string]int64
}

// AddStage records d of work attributed to stage s.
func (r *Report) AddStage(s Stage, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stages[s] += d
}

// TimeStage runs f and attributes its wall-clock duration to stage s.
func (r *Report) TimeStage(s Stage, f func() error) error {
	start := time.Now()
	err := f()
	r.AddStage(s, time.Since(start))
	return err
}

// Stage returns the accumulated duration for s.
func (r *Report) Stage(s Stage) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stages[s]
}

// Total returns the sum over all stages.
func (r *Report) Total() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t time.Duration
	for _, d := range r.stages {
		t += d
	}
	return t
}

// Add increments counter name by v, creating it if needed. Counter
// names are the Counter* constants declared in this package — the
// i2vet metricname analyzer rejects ad-hoc literals — so every name in
// a report is documented and grep-able in one place.
func (r *Report) Add(name string, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]int64)
	}
	r.counters[name] += v
}

// Counter returns the value of counter name (zero if never written).
func (r *Report) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// CounterNames returns all counter names in sorted order.
func (r *Report) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds every stage duration and counter of other into r.
func (r *Report) Merge(other *Report) {
	if other == nil {
		return
	}
	other.mu.Lock()
	stages := other.stages
	counters := make(map[string]int64, len(other.counters))
	for k, v := range other.counters {
		counters[k] = v
	}
	other.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range stages {
		r.stages[i] += stages[i]
	}
	if r.counters == nil && len(counters) > 0 {
		r.counters = make(map[string]int64, len(counters))
	}
	for k, v := range counters {
		r.counters[k] += v
	}
}

// Snapshot returns an immutable copy of the report for reporting code
// that should not hold the lock while formatting.
func (r *Report) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make(map[string]int64, len(r.counters))}
	for i, d := range r.stages {
		s.Stages[i] = d
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	return s
}

// Snapshot is a point-in-time copy of a Report.
type Snapshot struct {
	Stages   [numStages]time.Duration
	Counters map[string]int64
}

// Total returns the sum of all stage durations in the snapshot.
func (s Snapshot) Total() time.Duration {
	var t time.Duration
	for _, d := range s.Stages {
		t += d
	}
	return t
}

// String renders the snapshot as a single line:
// "map=12ms shuffle=3ms sort=1ms reduce=8ms total=24ms".
func (s Snapshot) String() string {
	var b strings.Builder
	for _, st := range Stages() {
		fmt.Fprintf(&b, "%s=%s ", st, s.Stages[st].Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "total=%s", s.Total().Round(time.Microsecond))
	return b.String()
}
