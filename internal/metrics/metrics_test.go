package metrics

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageMap:        "map",
		StageShuffle:    "shuffle",
		StageSort:       "sort",
		StageReduce:     "reduce",
		StageCheckpoint: "checkpoint",
		Stage(99):       "stage(99)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("Stage(%d).String() = %q, want %q", int(s), got, w)
		}
	}
}

func TestStagesOrder(t *testing.T) {
	got := Stages()
	if len(got) != 5 || got[0] != StageMap || got[3] != StageReduce || got[4] != StageCheckpoint {
		t.Fatalf("Stages() = %v", got)
	}
}

func TestAddStageAndTotal(t *testing.T) {
	var r Report
	r.AddStage(StageMap, 10*time.Millisecond)
	r.AddStage(StageMap, 5*time.Millisecond)
	r.AddStage(StageReduce, 7*time.Millisecond)
	if got := r.Stage(StageMap); got != 15*time.Millisecond {
		t.Fatalf("Stage(Map) = %v", got)
	}
	if got := r.Total(); got != 22*time.Millisecond {
		t.Fatalf("Total() = %v", got)
	}
}

func TestTimeStagePropagatesError(t *testing.T) {
	var r Report
	sentinel := errors.New("boom")
	if err := r.TimeStage(StageSort, func() error { return sentinel }); err != sentinel {
		t.Fatalf("TimeStage error = %v", err)
	}
	if r.Stage(StageSort) < 0 {
		t.Fatal("negative duration recorded")
	}
}

func TestCounters(t *testing.T) {
	var r Report
	if got := r.Counter("missing"); got != 0 {
		t.Fatalf("Counter(missing) = %d", got)
	}
	r.Add("a", 2)
	r.Add("a", 3)
	r.Add("b", 1)
	if got := r.Counter("a"); got != 5 {
		t.Fatalf("Counter(a) = %d", got)
	}
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("CounterNames() = %v", names)
	}
}

func TestMerge(t *testing.T) {
	var a, b Report
	a.AddStage(StageMap, time.Second)
	a.Add("x", 1)
	b.AddStage(StageMap, 2*time.Second)
	b.AddStage(StageShuffle, time.Second)
	b.Add("x", 10)
	b.Add("y", 5)
	a.Merge(&b)
	if got := a.Stage(StageMap); got != 3*time.Second {
		t.Fatalf("merged map = %v", got)
	}
	if got := a.Stage(StageShuffle); got != time.Second {
		t.Fatalf("merged shuffle = %v", got)
	}
	if a.Counter("x") != 11 || a.Counter("y") != 5 {
		t.Fatalf("merged counters = x:%d y:%d", a.Counter("x"), a.Counter("y"))
	}
	a.Merge(nil) // must not panic
}

func TestMergeIntoEmptyCreatesCounters(t *testing.T) {
	var a, b Report
	b.Add("only", 7)
	a.Merge(&b)
	if a.Counter("only") != 7 {
		t.Fatalf("Counter(only) = %d", a.Counter("only"))
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	var r Report
	r.AddStage(StageReduce, time.Minute)
	r.Add("c", 9)
	s := r.Snapshot()
	r.AddStage(StageReduce, time.Minute)
	r.Add("c", 1)
	if s.Stages[StageReduce] != time.Minute {
		t.Fatal("snapshot stage mutated")
	}
	if s.Counters["c"] != 9 {
		t.Fatal("snapshot counter mutated")
	}
	if s.Total() != time.Minute {
		t.Fatalf("snapshot total = %v", s.Total())
	}
}

func TestSnapshotString(t *testing.T) {
	var r Report
	r.AddStage(StageMap, 1500*time.Microsecond)
	out := r.Snapshot().String()
	for _, want := range []string{"map=", "shuffle=", "sort=", "reduce=", "checkpoint=", "total="} {
		if !strings.Contains(out, want) {
			t.Errorf("Snapshot.String() = %q missing %q", out, want)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	var r Report
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.AddStage(StageMap, time.Nanosecond)
				r.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != 8000 {
		t.Fatalf("Counter(n) = %d, want 8000", got)
	}
	if got := r.Stage(StageMap); got != 8000*time.Nanosecond {
		t.Fatalf("Stage(Map) = %v", got)
	}
}
