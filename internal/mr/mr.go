// Package mr implements the vanilla MapReduce engine (paper Sec. 2)
// that everything else builds on: plain re-computation baselines run on
// it directly, the HaLoop baseline chains its two jobs per iteration
// through it, and the incremental one-step engine reuses its map phase.
//
// Execution model, mirroring Hadoop:
//
//   - one Map task per DFS input block, scheduled data-locally;
//   - each Map task partitions its output by key into R buckets, sorts
//     each bucket, optionally combines, and writes one spill file per
//     reduce partition to the executing node's local scratch dir;
//   - each Reduce task copies its spill files from every map task
//     (the shuffle), k-way merges them (the sort), groups by key, and
//     invokes Reduce, writing output to the DFS.
//
// All spill and output I/O is real disk I/O; the network hop of the
// shuffle is a byte counter ("shuffle.bytes").
package mr

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
)

// Emit passes one output record out of a Map or Reduce function.
type Emit func(key, value string)

// Mapper transforms one input record into zero or more intermediate
// records: map(K1,V1) -> [(K2,V2)].
type Mapper interface {
	Map(key, value string, emit Emit) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(key, value string, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(key, value string, emit Emit) error { return f(key, value, emit) }

// Reducer folds all values of one intermediate key into final records:
// reduce(K2,{V2}) -> [(K3,V3)].
type Reducer interface {
	Reduce(key string, values []string, emit Emit) error
}

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key string, values []string, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values []string, emit Emit) error {
	return f(key, values, emit)
}

// Job describes one MapReduce job.
type Job struct {
	// Name labels scratch directories and task names. Must be unique
	// within one Engine; Engine enforces this with a sequence number.
	Name string
	// Input is the DFS path holding pair records.
	Input string
	// Inputs optionally lists several DFS paths (like Hadoop reading a
	// directory of part files); used instead of Input when non-empty.
	Inputs []string
	// Output is the DFS path prefix; reduce task r writes
	// "<Output>/part-<r>".
	Output string
	// Mapper is required.
	Mapper Mapper
	// Reducer handles every partition. Exactly one of Reducer and
	// ReducerFactory must be set.
	Reducer Reducer
	// ReducerFactory builds a partition-specific Reducer; the
	// incremental engine uses it to bind each reduce task to its own
	// MRBG-Store. Called once per reduce task attempt.
	ReducerFactory func(partition int) Reducer
	// Combiner optionally pre-aggregates map-side runs with reduce
	// semantics, like Hadoop's combiner.
	Combiner Reducer
	// NumReducers defaults to the cluster's node count.
	NumReducers int
	// Partition defaults to kv.Partition.
	Partition func(key string, n int) int
	// StartupCost models Hadoop's per-job startup overhead (~20 s for
	// 10-100 tasks, paper Sec. 4.2). It is *accounted*, not slept:
	// Run adds it to the report's "startup.ns" counter, and harnesses
	// fold it into totals. Keeping it virtual keeps benches fast while
	// preserving the plainMR-vs-iterMR comparison shape.
	StartupCost time.Duration
}

// Engine runs jobs against one DFS and one simulated cluster.
type Engine struct {
	fs  *dfs.FS
	cl  *cluster.Cluster
	seq atomic.Int64
}

// NewEngine binds an engine to its file system and cluster.
func NewEngine(fs *dfs.FS, cl *cluster.Cluster) *Engine {
	return &Engine{fs: fs, cl: cl}
}

// FS returns the engine's DFS.
func (e *Engine) FS() *dfs.FS { return e.fs }

// Cluster returns the engine's cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// PartPath returns the DFS path of reduce partition r under output.
func PartPath(output string, r int) string {
	return fmt.Sprintf("%s/part-%05d", output, r)
}

// ReadOutput reads and concatenates all reduce partitions of a job
// output, in partition order.
func (e *Engine) ReadOutput(output string, numReducers int) ([]kv.Pair, error) {
	var out []kv.Pair
	for r := 0; r < numReducers; r++ {
		ps, err := e.fs.ReadAllPairs(PartPath(output, r))
		if err != nil {
			return nil, err
		}
		out = append(out, ps...)
	}
	return out, nil
}

// Run executes the job to completion and returns its metrics report.
func (e *Engine) Run(job Job) (*metrics.Report, error) {
	if job.Mapper == nil || (job.Reducer == nil) == (job.ReducerFactory == nil) {
		return nil, errors.New("mr: job requires Mapper and exactly one of Reducer/ReducerFactory")
	}
	if (job.Input == "" && len(job.Inputs) == 0) || job.Output == "" {
		return nil, errors.New("mr: job requires Input(s) and Output paths")
	}
	if len(job.Inputs) == 0 {
		job.Inputs = []string{job.Input}
	}
	if job.NumReducers <= 0 {
		job.NumReducers = e.cl.NumNodes()
	}
	if job.Partition == nil {
		job.Partition = kv.Partition
	}

	report := &metrics.Report{}
	report.Add(metrics.CounterJobs, 1)
	report.Add(metrics.CounterStartupNS, int64(job.StartupCost))

	runID := fmt.Sprintf("%s-%06d", sanitize(job.Name), e.seq.Add(1))

	// Resolve every input into (path, block) splits.
	var splitsIn []inputSplit
	for _, in := range job.Inputs {
		fi, err := e.fs.Stat(in)
		if err != nil {
			return nil, fmt.Errorf("mr: job input: %w", err)
		}
		for b := range fi.Blocks {
			splitsIn = append(splitsIn, inputSplit{path: in, block: b, nodes: fi.Blocks[b].Nodes})
		}
	}

	spills, err := e.runMapPhase(runID, job, splitsIn, report)
	if err != nil {
		return nil, err
	}
	if err := e.runReducePhase(runID, job, spills, report); err != nil {
		return nil, err
	}
	return report, nil
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// spillSet records where every (map task, reduce partition) spill file
// landed so reduce tasks can fetch them.
type spillSet struct {
	mu    sync.Mutex
	paths map[[2]int]string // {mapTask, reducePartition} -> path
}

func (s *spillSet) put(m, r int, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.paths[[2]int{m, r}] = path
}

func (s *spillSet) get(m, r int) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.paths[[2]int{m, r}]
	return p, ok
}

// inputSplit is one map task's input: a block of one input file.
type inputSplit struct {
	path  string
	block int
	nodes []int
}

func (e *Engine) runMapPhase(runID string, job Job, splits []inputSplit, report *metrics.Report) (*spillSet, error) {
	spills := &spillSet{paths: make(map[[2]int]string)}
	tasks := make([]cluster.Task, 0, len(splits))
	for m := range splits {
		m := m
		pref := -1
		if len(splits[m].nodes) > 0 {
			pref = splits[m].nodes[0] % e.cl.NumNodes()
		}
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s/map-%04d", runID, m),
			Preferred: pref,
			Run: func(tc cluster.TaskContext) error {
				return e.runMapTask(runID, job, m, splits[m], tc, spills, report)
			},
		})
	}
	if _, err := e.cl.Run(tasks); err != nil {
		return nil, fmt.Errorf("mr: map phase: %w", err)
	}
	return spills, nil
}

// runMapTask reads one input split, applies the Mapper, and spills one
// sorted (optionally combined) run per reduce partition to local disk.
func (e *Engine) runMapTask(runID string, job Job, m int, split inputSplit, tc cluster.TaskContext, spills *spillSet, report *metrics.Report) error {
	start := time.Now()
	br, err := e.fs.OpenBlock(split.path, split.block)
	if err != nil {
		return err
	}
	defer br.Close()

	buckets := make([][]kv.Pair, job.NumReducers)
	emit := func(k, v string) {
		r := job.Partition(k, job.NumReducers)
		buckets[r] = append(buckets[r], kv.Pair{Key: k, Value: v})
	}
	var inRecs, outRecs int64
	for {
		p, err := br.ReadPair()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		inRecs++
		if err := job.Mapper.Map(p.Key, p.Value, emit); err != nil {
			return fmt.Errorf("mr: map task %d: %w", m, err)
		}
	}
	for _, b := range buckets {
		outRecs += int64(len(b))
	}

	dir := filepath.Join(tc.Node.ScratchDir, runID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for r := 0; r < job.NumReducers; r++ {
		run := buckets[r]
		kv.SortPairs(run)
		if job.Combiner != nil {
			combined, err := combineRun(run, job.Combiner)
			if err != nil {
				return fmt.Errorf("mr: combiner in map task %d: %w", m, err)
			}
			run = combined
		}
		path := filepath.Join(dir, fmt.Sprintf("spill-m%04d-r%04d", m, r))
		if err := writeSpill(path, tc.Attempt, run); err != nil {
			return err
		}
		spills.put(m, r, path)
	}
	report.Add(metrics.CounterMapRecordsIn, inRecs)
	report.Add(metrics.CounterMapRecordsOut, outRecs)
	report.Add(metrics.CounterMapTasks, 1)
	report.AddStage(metrics.StageMap, time.Since(start))
	return nil
}

// combineRun applies reduce semantics to a sorted run, map-side.
func combineRun(run []kv.Pair, c Reducer) ([]kv.Pair, error) {
	var out []kv.Pair
	emit := func(k, v string) { out = append(out, kv.Pair{Key: k, Value: v}) }
	err := kv.GroupSorted(run, func(g kv.Group) error {
		return c.Reduce(g.Key, g.Values, emit)
	})
	if err != nil {
		return nil, err
	}
	// Combiner output may be emitted under new keys; restore sort order
	// so downstream merging stays correct.
	kv.SortPairs(out)
	return out, nil
}

// writeSpill writes a sorted run atomically (attempt-suffixed temp file
// renamed into place) so re-executed attempts never expose torn files.
func writeSpill(path string, attempt int, run []kv.Pair) error {
	tmp := fmt.Sprintf("%s.attempt-%d", path, attempt)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := kv.EncodePairs(f, run); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	//i2vet:allow atomicwrite node-local shuffle scratch: the rename only hides torn files from re-executed attempts; spills are re-derivable, so fsync durability is deliberately skipped
	return os.Rename(tmp, path)
}

func (e *Engine) runReducePhase(runID string, job Job, spills *spillSet, report *metrics.Report) error {
	numMaps := int(report.Counter(metrics.CounterMapTasks))
	tasks := make([]cluster.Task, 0, job.NumReducers)
	for r := 0; r < job.NumReducers; r++ {
		r := r
		tasks = append(tasks, cluster.Task{
			Name:      fmt.Sprintf("%s/reduce-%04d", runID, r),
			Preferred: r % e.cl.NumNodes(),
			Run: func(tc cluster.TaskContext) error {
				return e.runReduceTask(runID, job, r, numMaps, tc, spills, report)
			},
		})
	}
	if _, err := e.cl.Run(tasks); err != nil {
		return fmt.Errorf("mr: reduce phase: %w", err)
	}
	return nil
}

// runReduceTask shuffles the r-th spill of every map task to the local
// node, merges them, groups, reduces, and commits the DFS part file.
func (e *Engine) runReduceTask(runID string, job Job, r, numMaps int, tc cluster.TaskContext, spills *spillSet, report *metrics.Report) error {
	// Shuffle: copy each map task's r-th spill to this node.
	shuffleStart := time.Now()
	localDir := filepath.Join(tc.Node.ScratchDir, runID, fmt.Sprintf("fetch-r%04d", r))
	if err := os.MkdirAll(localDir, 0o755); err != nil {
		return err
	}
	var runPaths []string
	var shuffleBytes int64
	for m := 0; m < numMaps; m++ {
		src, ok := spills.get(m, r)
		if !ok {
			return fmt.Errorf("mr: missing spill m=%d r=%d", m, r)
		}
		dst := filepath.Join(localDir, fmt.Sprintf("run-m%04d.attempt-%d", m, tc.Attempt))
		n, err := copyFile(dst, src)
		if err != nil {
			return err
		}
		shuffleBytes += n
		runPaths = append(runPaths, dst)
	}
	report.Add(metrics.CounterShuffleBytes, shuffleBytes)
	report.AddStage(metrics.StageShuffle, time.Since(shuffleStart))

	// Sort: k-way merge of the fetched runs.
	sortStart := time.Now()
	sources := make([]kv.PairSource, 0, len(runPaths))
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, p := range runPaths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		files = append(files, f)
		sources = append(sources, kv.ReaderSource{R: kv.NewReader(f)})
	}
	merger, err := kv.NewMerger(sources...)
	if err != nil {
		return err
	}
	report.AddStage(metrics.StageSort, time.Since(sortStart))

	// Reduce: group the merged stream and invoke the Reducer, writing
	// output to the DFS part file.
	reduceStart := time.Now()
	reducer := job.Reducer
	if job.ReducerFactory != nil {
		reducer = job.ReducerFactory(r)
	}
	w, err := e.fs.Create(PartPath(job.Output, r))
	if err != nil {
		return err
	}
	var emitErr error
	emit := func(k, v string) {
		if emitErr == nil {
			emitErr = w.WritePair(kv.Pair{Key: k, Value: v})
		}
	}
	var groups int64
	err = kv.GroupStream(merger, func(g kv.Group) error {
		groups++
		if err := reducer.Reduce(g.Key, g.Values, emit); err != nil {
			return err
		}
		return emitErr
	})
	if err != nil {
		return fmt.Errorf("mr: reduce task %d: %w", r, err)
	}
	if emitErr != nil {
		return emitErr
	}
	if err := w.Close(); err != nil {
		return err
	}
	report.Add(metrics.CounterReduceGroups, groups)
	report.Add(metrics.CounterReduceTasks, 1)
	report.AddStage(metrics.StageReduce, time.Since(reduceStart))
	return nil
}

func copyFile(dst, src string) (int64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(out, in)
	if err != nil {
		out.Close()
		return n, err
	}
	return n, out.Close()
}
