package mr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
)

func newEngine(t *testing.T, nodes int, blockSize int64) *Engine {
	t.Helper()
	root := t.TempDir()
	fs, err := dfs.New(dfs.Config{Root: root + "/dfs", BlockSize: blockSize, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, SlotsPerNode: 2, ScratchRoot: root + "/scratch"})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(fs, cl)
}

// wordCountMapper emits (word, 1) per whitespace-separated word in the
// value.
var wordCountMapper = MapperFunc(func(key, value string, emit Emit) error {
	for _, w := range strings.Fields(value) {
		emit(w, "1")
	}
	return nil
})

var sumReducer = ReducerFunc(func(key string, values []string, emit Emit) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		total += n
	}
	emit(key, strconv.Itoa(total))
	return nil
})

func writeLines(t *testing.T, e *Engine, path string, lines []string) {
	t.Helper()
	ps := make([]kv.Pair, len(lines))
	for i, l := range lines {
		ps[i] = kv.Pair{Key: fmt.Sprintf("line-%04d", i), Value: l}
	}
	if err := e.FS().WriteAllPairs(path, ps); err != nil {
		t.Fatal(err)
	}
}

func outputCounts(t *testing.T, e *Engine, output string, r int) map[string]int {
	t.Helper()
	ps, err := e.ReadOutput(output, r)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, p := range ps {
		n, err := strconv.Atoi(p.Value)
		if err != nil {
			t.Fatalf("non-numeric count %q", p.Value)
		}
		if _, dup := got[p.Key]; dup {
			t.Fatalf("key %q appears in multiple groups", p.Key)
		}
		got[p.Key] = n
	}
	return got
}

func TestWordCountEndToEnd(t *testing.T) {
	e := newEngine(t, 3, 64)
	writeLines(t, e, "in", []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	})
	rep, err := e.Run(Job{
		Name: "wc", Input: "in", Output: "out",
		Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := outputCounts(t, e, "out", 3)
	want := map[string]int{"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("count[%q] = %d, want %d", k, got[k], n)
		}
	}
	if rep.Counter("map.records.in") != 3 {
		t.Errorf("map.records.in = %d", rep.Counter("map.records.in"))
	}
	if rep.Counter("map.records.out") != 10 {
		t.Errorf("map.records.out = %d", rep.Counter("map.records.out"))
	}
	if rep.Counter("reduce.groups") != 6 {
		t.Errorf("reduce.groups = %d", rep.Counter("reduce.groups"))
	}
	if rep.Counter("shuffle.bytes") <= 0 {
		t.Error("shuffle.bytes not recorded")
	}
	for _, s := range metrics.Stages() {
		// A bare MR job has no durability work; the checkpoint stage is
		// recorded by the incr/core engines around their store flushes.
		if s == metrics.StageCheckpoint {
			continue
		}
		if rep.Stage(s) <= 0 {
			t.Errorf("stage %v has no recorded time", s)
		}
	}
}

func TestMultipleBlocksMultipleMapTasks(t *testing.T) {
	e := newEngine(t, 4, 128)
	var lines []string
	for i := 0; i < 200; i++ {
		lines = append(lines, fmt.Sprintf("word%02d word%02d filler", i%10, i%7))
	}
	writeLines(t, e, "in", lines)
	rep, err := e.Run(Job{
		Name: "wc2", Input: "in", Output: "out",
		Mapper: wordCountMapper, Reducer: sumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counter("map.tasks") < 2 {
		t.Fatalf("map.tasks = %d, want >= 2", rep.Counter("map.tasks"))
	}
	got := outputCounts(t, e, "out", 4)
	total := 0
	for _, n := range got {
		total += n
	}
	if total != 600 { // 3 words per line * 200 lines
		t.Fatalf("total word count = %d, want 600", total)
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	e := newEngine(t, 2, 1<<20)
	var lines []string
	for i := 0; i < 100; i++ {
		lines = append(lines, "same same same same")
	}
	writeLines(t, e, "in", lines)

	run := func(name string, combiner Reducer) *metrics.Report {
		rep, err := e.Run(Job{
			Name: name, Input: "in", Output: "out-" + name,
			Mapper: wordCountMapper, Reducer: sumReducer, Combiner: combiner,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run("nocomb", nil)
	comb := run("comb", sumReducer)
	if comb.Counter("shuffle.bytes") >= plain.Counter("shuffle.bytes") {
		t.Fatalf("combiner did not shrink shuffle: %d vs %d",
			comb.Counter("shuffle.bytes"), plain.Counter("shuffle.bytes"))
	}
	// Results identical either way.
	a := outputCounts(t, e, "out-nocomb", 2)
	b := outputCounts(t, e, "out-comb", 2)
	if a["same"] != 400 || b["same"] != 400 {
		t.Fatalf("counts = %v / %v, want same:400", a, b)
	}
}

func TestPartitioningSendsKeyToSingleReducer(t *testing.T) {
	e := newEngine(t, 3, 64)
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines, fmt.Sprintf("k%d", i%20))
	}
	writeLines(t, e, "in", lines)
	if _, err := e.Run(Job{
		Name: "part", Input: "in", Output: "out",
		Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 3,
	}); err != nil {
		t.Fatal(err)
	}
	// A key must appear in exactly the partition kv.Partition assigns.
	for r := 0; r < 3; r++ {
		ps, err := e.FS().ReadAllPairs(PartPath("out", r))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			if kv.Partition(p.Key, 3) != r {
				t.Errorf("key %q in part %d, partitioner says %d", p.Key, r, kv.Partition(p.Key, 3))
			}
		}
	}
}

func TestCustomPartitioner(t *testing.T) {
	e := newEngine(t, 2, 1<<20)
	writeLines(t, e, "in", []string{"a b c d"})
	if _, err := e.Run(Job{
		Name: "custom", Input: "in", Output: "out",
		Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 2,
		Partition: func(key string, n int) int { return 0 }, // everything to part 0
	}); err != nil {
		t.Fatal(err)
	}
	p0, err := e.FS().ReadAllPairs(PartPath("out", 0))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := e.FS().ReadAllPairs(PartPath("out", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(p0) != 4 || len(p1) != 0 {
		t.Fatalf("parts = %d/%d, want 4/0", len(p0), len(p1))
	}
}

func TestReduceOutputSortedWithinPartition(t *testing.T) {
	e := newEngine(t, 1, 1<<20)
	writeLines(t, e, "in", []string{"b a d c e"})
	if _, err := e.Run(Job{
		Name: "sorted", Input: "in", Output: "out",
		Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 1,
	}); err != nil {
		t.Fatal(err)
	}
	ps, err := e.FS().ReadAllPairs(PartPath("out", 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(ps))
	for i, p := range ps {
		keys[i] = p.Key
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("reduce output not key-sorted: %v", keys)
	}
}

func TestJobValidation(t *testing.T) {
	e := newEngine(t, 1, 1<<20)
	if _, err := e.Run(Job{Name: "x", Input: "in", Output: "out"}); err == nil {
		t.Fatal("job without mapper/reducer succeeded")
	}
	if _, err := e.Run(Job{Name: "x", Mapper: wordCountMapper, Reducer: sumReducer}); err == nil {
		t.Fatal("job without paths succeeded")
	}
	if _, err := e.Run(Job{
		Name: "x", Input: "missing", Output: "out",
		Mapper: wordCountMapper, Reducer: sumReducer,
	}); err == nil {
		t.Fatal("job with missing input succeeded")
	}
}

func TestMapperErrorPropagates(t *testing.T) {
	e := newEngine(t, 1, 1<<20)
	writeLines(t, e, "in", []string{"x"})
	_, err := e.Run(Job{
		Name: "maperr", Input: "in", Output: "out",
		Mapper:  MapperFunc(func(k, v string, emit Emit) error { return fmt.Errorf("bad record") }),
		Reducer: sumReducer,
	})
	if err == nil || !strings.Contains(err.Error(), "bad record") {
		t.Fatalf("Run = %v, want mapper error", err)
	}
}

func TestReducerErrorPropagates(t *testing.T) {
	e := newEngine(t, 1, 1<<20)
	writeLines(t, e, "in", []string{"x"})
	_, err := e.Run(Job{
		Name:    "rederr",
		Input:   "in",
		Output:  "out",
		Mapper:  wordCountMapper,
		Reducer: ReducerFunc(func(k string, vs []string, emit Emit) error { return fmt.Errorf("bad group") }),
	})
	if err == nil || !strings.Contains(err.Error(), "bad group") {
		t.Fatalf("Run = %v, want reducer error", err)
	}
}

func TestMapTaskRetryProducesCorrectResult(t *testing.T) {
	e := newEngine(t, 2, 64)
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, "alpha beta")
	}
	writeLines(t, e, "in", lines)
	// Fail the first attempt of every first map/reduce task name that
	// appears; the engine's attempt-suffixed spills must stay correct.
	e.Cluster().InjectFailure(cluster.Failure{Task: "retry-000001/map-0000", Attempt: 1})
	e.Cluster().InjectFailure(cluster.Failure{Task: "retry-000001/reduce-0000", Attempt: 1})
	if _, err := e.Run(Job{
		Name: "retry", Input: "in", Output: "out",
		Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 2,
	}); err != nil {
		t.Fatal(err)
	}
	got := outputCounts(t, e, "out", 2)
	if got["alpha"] != 40 || got["beta"] != 40 {
		t.Fatalf("counts after retries = %v", got)
	}
}

func TestStartupCostAccounted(t *testing.T) {
	e := newEngine(t, 1, 1<<20)
	writeLines(t, e, "in", []string{"x"})
	rep, err := e.Run(Job{
		Name: "startup", Input: "in", Output: "out",
		Mapper: wordCountMapper, Reducer: sumReducer,
		StartupCost: 20_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counter("startup.ns") != 20_000_000_000 {
		t.Fatalf("startup.ns = %d", rep.Counter("startup.ns"))
	}
	if rep.Counter("jobs") != 1 {
		t.Fatalf("jobs = %d", rep.Counter("jobs"))
	}
}

func TestEmptyInputRuns(t *testing.T) {
	e := newEngine(t, 2, 1<<20)
	if err := e.FS().WriteAllPairs("in", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(Job{
		Name: "empty", Input: "in", Output: "out",
		Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 2,
	}); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadOutput("out", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty input produced %v", got)
	}
}
