package mrbg

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"sort"

	"i2mapreduce/internal/blockio"
	"i2mapreduce/internal/fsutil"
)

// MergeResult is one affected key after a merge: its up-to-date chunk
// (the new Reduce input), or Removed=true when every edge of a
// previously live chunk was deleted, meaning the Reduce instance — and
// its final output — no longer exists.
type MergeResult struct {
	Key     string
	Chunk   Chunk
	Removed bool
}

// Merge joins a delta MRBGraph into the store (paper Sec. 3.3-3.4):
// for each affected K2 it retrieves the preserved chunk (index
// nested-loop join, window-read according to the strategy), applies
// deletions and insertions/updates by (K2, MK), emits the merged chunk
// so the caller can re-run Reduce, and appends the new chunk version
// through the append buffer as the next sorted batch.
//
// delta does not need to be sorted; Merge sorts a copy. Records with
// the same (key, MK) apply in slice order, so a deletion followed by an
// insertion (the paper's representation of an update) nets to the
// insertion.
//
// The emit callback runs before the new batch commits; if it returns an
// error the merge aborts with the index unchanged. Results stream one
// key at a time — only the chunk being merged is in memory.
func (s *Store) Merge(delta []DeltaEdge, emit func(r MergeResult) error) error {
	var removed []string
	err := s.mergeDeltas(delta, func(r MergeResult) error {
		if r.Removed {
			removed = append(removed, r.Key)
		}
		return emit(r)
	})
	if err != nil {
		s.abortMerge()
		return err
	}
	if err := s.commitPending(); err != nil {
		s.abortMerge()
		return err
	}
	for _, k := range removed {
		delete(s.index, k)
	}
	return nil
}

// stageMerge performs the join of a delta MRBGraph against this shard:
// merged chunks are staged in the append buffer / pending index and the
// per-key results are returned in sorted key order, but nothing is
// committed. The caller must follow with commitMerge or abortMerge.
// Used by the multi-shard merge, which must buffer results to re-merge
// them into global key order before emitting.
func (s *Store) stageMerge(delta []DeltaEdge) ([]MergeResult, error) {
	results := make([]MergeResult, 0, len(delta))
	err := s.mergeDeltas(delta, func(r MergeResult) error {
		results = append(results, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// mergeDeltas is the join loop shared by Merge (streaming) and
// stageMerge (buffered): it invokes onResult per affected key in sorted
// order while staging new chunk versions, committing nothing.
func (s *Store) mergeDeltas(delta []DeltaEdge, onResult func(r MergeResult) error) error {
	if len(s.pending) != 0 {
		return errors.New("mrbg: Merge re-entered before commit")
	}
	ds := append([]DeltaEdge(nil), delta...)
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].Key < ds[j].Key })

	// Distinct affected keys, already sorted: Algorithm 1's list L.
	keys := make([]string, 0, len(ds))
	for i, d := range ds {
		if i == 0 || d.Key != ds[i-1].Key {
			keys = append(keys, d.Key)
		}
	}
	plan := &queryPlan{keys: keys}

	di := 0
	for ki, key := range keys {
		plan.pos = ki
		old, ok, err := s.fetch(key, plan)
		if err != nil {
			return err
		}

		// Merge preserved edges with this key's delta records.
		merged := make(map[uint64]string, len(old.Edges)+4)
		if ok {
			for _, e := range old.Edges {
				merged[e.MK] = e.V2
			}
		}
		for ; di < len(ds) && ds[di].Key == key; di++ {
			if ds[di].Delete {
				delete(merged, ds[di].MK)
			} else {
				merged[ds[di].MK] = ds[di].V2
			}
		}

		if len(merged) == 0 {
			if ok {
				if err := onResult(MergeResult{Key: key, Removed: true}); err != nil {
					return err
				}
			} else {
				// Deletions for a key that was never live: dropped, but
				// counted so tests can detect mismatched deltas.
				s.stats.DanglingDeletes++
			}
			continue
		}

		edges := make([]Edge, 0, len(merged))
		for mk, v2 := range merged {
			edges = append(edges, Edge{MK: mk, V2: v2})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].MK < edges[j].MK })
		c := Chunk{Key: key, Edges: edges}
		if err := onResult(MergeResult{Key: key, Chunk: c}); err != nil {
			return err
		}
		if err := s.appendChunk(c); err != nil {
			return err
		}
	}
	return nil
}

// abortMerge discards everything staged since the last commit, leaving
// the index unchanged. Bytes already flushed mid-merge remain in the
// file as unreferenced garbage (reclaimed by Compact).
func (s *Store) abortMerge() {
	s.appendBuf = s.appendBuf[:0]
	s.pending = make(map[string]loc)
}

// commitMerge seals a staged merge: the new batch commits and fully
// deleted keys leave the index.
func (s *Store) commitMerge(results []MergeResult) error {
	if err := s.commitPending(); err != nil {
		return err
	}
	for _, r := range results {
		if r.Removed {
			delete(s.index, r.Key)
		}
	}
	return nil
}

// hasPending reports whether a merge or Put batch is staged but not yet
// committed.
func (s *Store) hasPending() bool {
	return len(s.pending) != 0 || len(s.appendBuf) != 0
}

// Put stores a chunk directly, bypassing the delta join — used by the
// initial (non-incremental) run to preserve the first MRBGraph, where
// every chunk is new. Chunks must arrive in sorted key order per batch;
// call CommitBatch when the batch is complete.
func (s *Store) Put(c Chunk) error {
	return s.appendChunk(c)
}

// CommitBatch seals chunks staged with Put into one sorted batch.
func (s *Store) CommitBatch() error {
	return s.commitPending()
}

// AllChunks retrieves every live chunk in sorted key order.
func (s *Store) AllChunks(fn func(c Chunk) error) error {
	return s.GetMany(s.Keys(), func(_ string, c Chunk, ok bool) error {
		if !ok {
			return errors.New("mrbg: indexed key has no chunk")
		}
		return fn(c)
	})
}

// Compact reconstructs the MRBGraph file offline, dropping obsolete
// chunk versions (paper: "the MRBGraph file is reconstructed off-line
// when the worker is idle"). Afterwards the store holds exactly the
// live chunks in one sorted batch, and the on-disk checkpoint reflects
// the compacted file.
func (s *Store) Compact() error {
	if s.hasPending() {
		return errors.New("mrbg: Compact during an uncommitted merge")
	}
	tmpPath := s.datPath + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	newIndex := make(map[string]loc, len(s.index))
	var off int64
	// Encode through a pooled block-sized scratch buffer and a large
	// write buffer: the rewrite streams in few, big syscalls instead of
	// one write per chunk.
	scratch := blockio.GetBuf()
	defer blockio.PutBuf(scratch)
	w := bufio.NewWriterSize(tmp, 256<<10)
	err = s.AllChunks(func(c Chunk) error {
		buf := encodeChunk((*scratch)[:0], c)
		*scratch = buf
		if _, err := w.Write(buf); err != nil {
			return err
		}
		newIndex[c.Key] = loc{off: off, len: int64(len(buf)), batch: 1}
		off += int64(len(buf))
		return nil
	})
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	if err := fsutil.RenameCommit(tmpPath, s.datPath); err != nil {
		return err
	}
	f, err := os.OpenFile(s.datPath, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	s.f = f
	s.index = newIndex
	s.size = off
	if len(newIndex) > 0 {
		s.batch = 1
	} else {
		s.batch = 0
	}
	s.windows = make(map[int]*window)
	return s.Checkpoint()
}

// VerifyInvariants walks the index and checks every entry decodes to a
// chunk with the matching key, edges in ascending MK order, and bounds
// inside the file. Tests and the failure-injection harness call it
// after recovery; it is not on any hot path.
func (s *Store) VerifyInvariants() error {
	for k, l := range s.index {
		if l.off < 0 || l.len <= 0 || l.off+l.len > s.size {
			return fmt.Errorf("mrbg: index entry %q out of bounds: %+v size=%d", k, l, s.size)
		}
		buf, err := s.readAt(l.off, l.len)
		if err != nil {
			return err
		}
		c, n, err := decodeChunk(buf)
		if err != nil {
			return fmt.Errorf("mrbg: chunk %q: %w", k, err)
		}
		if int64(n) != l.len {
			return fmt.Errorf("mrbg: chunk %q decoded %d bytes, index says %d", k, n, l.len)
		}
		if c.Key != k {
			return fmt.Errorf("mrbg: chunk at %d holds %q, index says %q", l.off, c.Key, k)
		}
		for i := 1; i < len(c.Edges); i++ {
			if c.Edges[i].MK <= c.Edges[i-1].MK {
				return fmt.Errorf("mrbg: chunk %q edges out of MK order", k)
			}
		}
	}
	return nil
}
