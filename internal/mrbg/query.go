package mrbg

import (
	"fmt"
)

// window is one read cache region: bytes [start,end) of the MRBGraph
// file, fetched by a single I/O. The multi-window strategies keep one
// window per batch; SingleFixedWindow keeps one for the whole file.
type window struct {
	start, end int64
	data       []byte
}

func (w *window) contains(l loc) bool {
	return w != nil && l.off >= w.start && l.off+l.len <= w.end
}

// queryPlan is the sorted list of keys a merge (or GetMany) will
// retrieve, with a cursor at the key currently being fetched —
// Algorithm 1's L and index i. The paper gets this ordering for free
// from the shuffle's sort; callers here must pass sorted keys.
type queryPlan struct {
	keys []string
	pos  int
}

// singleWindowKey is the synthetic batch id under which the
// SingleFixedWindow strategy caches its one window.
const singleWindowKey = -1

// readAt issues one I/O of n bytes at off, truncated at the logical end
// of the file, updating the read statistics.
func (s *Store) readAt(off, n int64) ([]byte, error) {
	if off >= s.size {
		return nil, fmt.Errorf("mrbg: read at %d beyond file end %d", off, s.size)
	}
	if off+n > s.size {
		n = s.size - off
	}
	buf := make([]byte, n)
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("mrbg: read: %w", err)
	}
	s.stats.Reads++
	s.stats.BytesRead += n
	return buf, nil
}

// dynamicWindowSize implements Algorithm 1's loop (lines 4-8), extended
// with the multi-batch skip of Sec. 5.2: starting from the queried
// chunk, extend the window across each following queried chunk *in the
// same batch* while the gap to it is below GapThreshold and the window
// still fits the read cache.
func (s *Store) dynamicWindowSize(l loc, plan *queryPlan) int64 {
	w := int64(0)
	gap := int64(0)
	cur := l
	i := plan.pos
	for gap < s.opts.GapThreshold && w+gap+cur.len < s.opts.ReadCacheSize {
		w += gap + cur.len
		// Find the next queried chunk that lives in the same batch,
		// skipping chunks whose latest version is elsewhere.
		found := false
		var next loc
		for j := i + 1; j < len(plan.keys); j++ {
			nl, ok := s.index[plan.keys[j]]
			if !ok || nl.batch != l.batch {
				continue
			}
			next, found, i = nl, true, j
			break
		}
		if !found {
			break
		}
		gap = next.off - (cur.off + cur.len)
		if gap < 0 {
			// Chunks within one batch are laid out in key order, so a
			// backward jump means the next key was rewritten later in
			// a different region; stop extending.
			break
		}
		cur = next
	}
	if w < l.len {
		w = l.len
	}
	return w
}

// fetch retrieves the live chunk for key, using the configured read
// strategy and the query plan for window sizing. The second result is
// false if key has no live chunk.
func (s *Store) fetch(key string, plan *queryPlan) (Chunk, bool, error) {
	l, ok := s.index[key]
	if !ok {
		return Chunk{}, false, nil
	}

	var winKey int
	var size int64
	switch s.opts.Strategy {
	case IndexOnly:
		// Exact read, no caching: decode straight from the I/O.
		buf, err := s.readAt(l.off, l.len)
		if err != nil {
			return Chunk{}, false, err
		}
		return s.decodeAt(buf, key)
	case SingleFixedWindow:
		winKey, size = singleWindowKey, s.opts.FixedWindowSize
	case MultiFixedWindow:
		winKey, size = l.batch, s.opts.FixedWindowSize
	case MultiDynamicWindow:
		winKey, size = l.batch, s.dynamicWindowSize(l, plan)
	default:
		return Chunk{}, false, fmt.Errorf("mrbg: unknown read strategy %d", s.opts.Strategy)
	}
	if size < l.len {
		size = l.len
	}

	if w := s.windows[winKey]; w.contains(l) {
		s.stats.CacheHits++
		return s.decodeAt(w.data[l.off-w.start:][:l.len], key)
	}
	buf, err := s.readAt(l.off, size)
	if err != nil {
		return Chunk{}, false, err
	}
	s.windows[winKey] = &window{start: l.off, end: l.off + int64(len(buf)), data: buf}
	return s.decodeAt(buf[:l.len], key)
}

// decodeAt decodes one chunk frame and validates it against the
// requested key, converting index corruption into a hard error instead
// of silently returning another key's edges.
func (s *Store) decodeAt(frame []byte, key string) (Chunk, bool, error) {
	c, _, err := decodeChunk(frame)
	if err != nil {
		return Chunk{}, false, fmt.Errorf("mrbg: chunk for %q: %w", key, err)
	}
	if c.Key != key {
		return Chunk{}, false, fmt.Errorf("mrbg: index points %q at chunk %q", key, c.Key)
	}
	return c, true, nil
}

// Get retrieves one chunk outside any batch plan.
func (s *Store) Get(key string) (Chunk, bool, error) {
	plan := &queryPlan{keys: []string{key}}
	return s.fetch(key, plan)
}

// GetMany retrieves the chunks of keys (which must be sorted ascending,
// as the shuffle guarantees for merge queries), invoking fn for each in
// order. ok is false for keys with no live chunk.
func (s *Store) GetMany(keys []string, fn func(key string, c Chunk, ok bool) error) error {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return fmt.Errorf("mrbg: GetMany keys not sorted (%q after %q)", keys[i], keys[i-1])
		}
	}
	plan := &queryPlan{keys: keys}
	for i, k := range keys {
		plan.pos = i
		c, ok, err := s.fetch(k, plan)
		if err != nil {
			return err
		}
		if err := fn(k, c, ok); err != nil {
			return err
		}
	}
	return nil
}
