package mrbg

import (
	"fmt"
	"strings"
	"testing"
)

// populate fills a store with nKeys chunks, each carrying a payload of
// valSize bytes, committed as one batch per call.
func populate(t *testing.T, s *ShardedStore, nKeys, valSize int, tag string) []string {
	t.Helper()
	keys := make([]string, 0, nKeys)
	for i := 0; i < nKeys; i++ {
		keys = append(keys, fmt.Sprintf("key-%04d", i))
	}
	for _, k := range keys {
		err := s.Put(Chunk{Key: k, Edges: []Edge{{MK: 1, V2: tag + strings.Repeat("x", valSize)}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CommitBatch(); err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestIndexOnlyOneReadPerChunk(t *testing.T) {
	s := openStore(t, Options{Strategy: IndexOnly})
	keys := populate(t, s, 50, 20, "a")
	s.ResetStats()
	err := s.GetMany(keys, func(k string, c Chunk, ok bool) error {
		if !ok {
			t.Fatalf("missing %q", k)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads != 50 {
		t.Fatalf("Reads = %d, want 50 (one per chunk)", st.Reads)
	}
	if st.CacheHits != 0 {
		t.Fatalf("CacheHits = %d, want 0", st.CacheHits)
	}
	if st.BytesRead != st.LiveBytes {
		t.Fatalf("BytesRead = %d, want exactly live bytes %d", st.BytesRead, st.LiveBytes)
	}
}

func TestDynamicWindowBatchesAdjacentReads(t *testing.T) {
	s := openStore(t, Options{
		Strategy:      MultiDynamicWindow,
		GapThreshold:  1 << 10,
		ReadCacheSize: 1 << 20,
	})
	keys := populate(t, s, 50, 20, "a")
	s.ResetStats()
	if err := s.GetMany(keys, func(string, Chunk, bool) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads >= 50 {
		t.Fatalf("Reads = %d, want far fewer than 50", st.Reads)
	}
	if st.CacheHits == 0 {
		t.Fatal("no cache hits with adjacent queried chunks")
	}
}

func TestDynamicWindowRespectsCacheSize(t *testing.T) {
	// Cache that fits only ~2 chunks: every read must stay small.
	s := openStore(t, Options{
		Strategy:      MultiDynamicWindow,
		GapThreshold:  1 << 10,
		ReadCacheSize: 100,
	})
	keys := populate(t, s, 20, 30, "a")
	s.ResetStats()
	if err := s.GetMany(keys, func(string, Chunk, bool) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BytesRead > 20*100 {
		t.Fatalf("BytesRead = %d exceeds per-read cap times reads", st.BytesRead)
	}
	if st.Reads < 10 {
		t.Fatalf("Reads = %d, expected many small reads with a tiny cache", st.Reads)
	}
}

func TestDynamicWindowStopsAtLargeGap(t *testing.T) {
	// Query only the first and last chunks: the gap between them far
	// exceeds T, so the window must not read the middle.
	s := openStore(t, Options{
		Strategy:      MultiDynamicWindow,
		GapThreshold:  64,
		ReadCacheSize: 1 << 20,
	})
	keys := populate(t, s, 100, 50, "a")
	s.ResetStats()
	q := []string{keys[0], keys[99]}
	if err := s.GetMany(q, func(string, Chunk, bool) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads != 2 {
		t.Fatalf("Reads = %d, want 2 (gap exceeds threshold)", st.Reads)
	}
	if st.BytesRead > 2*200 {
		t.Fatalf("BytesRead = %d, window read through a large gap", st.BytesRead)
	}
}

func TestDynamicWindowReadsThroughSmallGap(t *testing.T) {
	// Query every other chunk with a generous T: gaps are single
	// chunks, well below T, so one large read should cover them.
	s := openStore(t, Options{
		Strategy:      MultiDynamicWindow,
		GapThreshold:  10 << 10,
		ReadCacheSize: 1 << 20,
	})
	keys := populate(t, s, 40, 20, "a")
	var q []string
	for i := 0; i < len(keys); i += 2 {
		q = append(q, keys[i])
	}
	s.ResetStats()
	if err := s.GetMany(q, func(string, Chunk, bool) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads > 3 {
		t.Fatalf("Reads = %d, want <= 3 with gaps below threshold", st.Reads)
	}
}

// populateMultiBatch builds a store whose keys alternate between two
// batches: even keys were rewritten in batch 2, odd keys remain in
// batch 1 — the Fig. 7 scenario.
func populateMultiBatch(t *testing.T, s *ShardedStore, nKeys, valSize int) []string {
	t.Helper()
	keys := populate(t, s, nKeys, valSize, "old-")
	var delta []DeltaEdge
	for i := 0; i < nKeys; i += 2 {
		delta = append(delta, DeltaEdge{Key: keys[i], MK: 1, V2: "new-" + strings.Repeat("y", valSize)})
	}
	if err := s.Merge(delta, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestMultiBatchReturnsLatestVersion(t *testing.T) {
	for _, strategy := range []ReadStrategy{IndexOnly, SingleFixedWindow, MultiFixedWindow, MultiDynamicWindow} {
		t.Run(strategy.String(), func(t *testing.T) {
			s := openStore(t, Options{Strategy: strategy, FixedWindowSize: 256})
			keys := populateMultiBatch(t, s, 30, 10)
			err := s.GetMany(keys, func(k string, c Chunk, ok bool) error {
				if !ok {
					return fmt.Errorf("missing %q", k)
				}
				idx := 0
				fmt.Sscanf(k, "key-%d", &idx)
				wantPrefix := "old-"
				if idx%2 == 0 {
					wantPrefix = "new-"
				}
				if !strings.HasPrefix(c.Edges[0].V2, wantPrefix) {
					return fmt.Errorf("key %q value %q, want prefix %q", k, c.Edges[0].V2[:8], wantPrefix)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMultiWindowBeatsSingleWindowAcrossBatches(t *testing.T) {
	// With chunks interleaved across two batches, a single window
	// thrashes (every access jumps file regions) while per-batch
	// windows stream through each batch once.
	query := func(strategy ReadStrategy) Stats {
		s := openStore(t, Options{
			Strategy:        strategy,
			FixedWindowSize: 512,
			ReadCacheSize:   1 << 20,
			GapThreshold:    1 << 10,
		})
		keys := populateMultiBatch(t, s, 60, 20)
		s.ResetStats()
		if err := s.GetMany(keys, func(string, Chunk, bool) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	single := query(SingleFixedWindow)
	multi := query(MultiFixedWindow)
	dynamic := query(MultiDynamicWindow)
	if multi.Reads >= single.Reads {
		t.Fatalf("multi-fix reads %d, single-fix %d: multi should win", multi.Reads, single.Reads)
	}
	if dynamic.BytesRead > multi.BytesRead {
		t.Fatalf("dynamic read %d bytes, multi-fix %d: dynamic should not read more", dynamic.BytesRead, multi.BytesRead)
	}
}

func TestFixedWindowCacheHitsWithinWindow(t *testing.T) {
	s := openStore(t, Options{
		Strategy:        MultiFixedWindow,
		FixedWindowSize: 1 << 16,
	})
	keys := populate(t, s, 30, 10, "a")
	s.ResetStats()
	if err := s.GetMany(keys, func(string, Chunk, bool) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads != 1 {
		t.Fatalf("Reads = %d, want 1 (whole batch fits one window)", st.Reads)
	}
	if st.CacheHits != 29 {
		t.Fatalf("CacheHits = %d, want 29", st.CacheHits)
	}
}

func TestStrategiesAgreeOnContent(t *testing.T) {
	// All four strategies must return identical chunks; they differ
	// only in I/O pattern.
	var baseline map[string]string
	for _, strategy := range []ReadStrategy{IndexOnly, SingleFixedWindow, MultiFixedWindow, MultiDynamicWindow} {
		s := openStore(t, Options{Strategy: strategy, FixedWindowSize: 128, ReadCacheSize: 4096, GapThreshold: 50})
		keys := populateMultiBatch(t, s, 25, 15)
		got := map[string]string{}
		err := s.GetMany(keys, func(k string, c Chunk, ok bool) error {
			if ok {
				got[k] = c.Edges[0].V2
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		if baseline == nil {
			baseline = got
			continue
		}
		if len(got) != len(baseline) {
			t.Fatalf("%v returned %d chunks, baseline %d", strategy, len(got), len(baseline))
		}
		for k, v := range baseline {
			if got[k] != v {
				t.Fatalf("%v: key %q = %q, baseline %q", strategy, k, got[k], v)
			}
		}
	}
}

func TestAppendBufferFlushBoundary(t *testing.T) {
	// A tiny append buffer forces mid-merge flushes; locations must
	// remain exact.
	s := openStore(t, Options{AppendBufSize: 64})
	var delta []DeltaEdge
	for i := 0; i < 50; i++ {
		delta = append(delta, DeltaEdge{Key: fmt.Sprintf("k%03d", i), MK: 1, V2: strings.Repeat("v", 20)})
	}
	if err := s.Merge(delta, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Flushes < 2 {
		t.Fatalf("Flushes = %d, want several with a 64-byte buffer", st.Flushes)
	}
	if err := s.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}
