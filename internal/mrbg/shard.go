package mrbg

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"

	"i2mapreduce/internal/fsutil"
	"i2mapreduce/internal/par"
)

// ShardedStore is one reduce task's MRBG-Store, partitioned across
// Options.Shards independent shard files by hash(K2). It preserves the
// single-file store's API and semantics — Merge emits in globally
// sorted key order regardless of shard count — while running the hot
// paths (Merge, GetMany, Compact, Checkpoint) with one goroutine per
// shard, bounded by Options.Parallelism.
//
// Concurrency contract: any number of goroutines may call the read
// methods (Get, GetMany, AllChunks, Stats, Len, Has, Keys)
// concurrently with each other; mutating methods (Put, CommitBatch,
// Merge, Checkpoint, Compact, VerifyInvariants) exclude all other
// calls. Reads serialize per shard (the read windows and I/O counters
// are per-shard state) but proceed in parallel across shards.
type ShardedStore struct {
	opts Options
	// mu is the store-level reader/writer gate; shard-level mutexes
	// additionally serialize readers touching the same shard, because
	// even reads mutate per-shard windows and statistics.
	mu     sync.RWMutex
	shards []*shard
}

// shard pairs one Store with the mutex concurrent readers take.
type shard struct {
	mu sync.Mutex
	st *Store
}

const metaName = "mrbg.meta"

// readMeta loads the persisted shard count, reporting ok=false when no
// meta file exists.
func readMeta(dir string) (int, bool, error) {
	b, err := os.ReadFile(filepath.Join(dir, metaName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	var n int
	if _, err := fmt.Sscanf(string(b), "shards=%d", &n); err != nil || n <= 0 {
		return 0, false, fmt.Errorf("mrbg: corrupt meta file %q", string(b))
	}
	return n, true, nil
}

// writeMeta persists the shard count atomically and durably: losing
// the meta file after a crash would reroute every key on reopen.
func writeMeta(dir string, n int) error {
	return fsutil.WriteFileAtomic(filepath.Join(dir, metaName),
		[]byte(fmt.Sprintf("shards=%d\n", n)))
}

// Open creates a store in opts.Dir or recovers the one checkpointed
// there. The shard count is fixed the first time a directory is opened;
// later opens adopt the persisted count even if opts.Shards differs. A
// legacy pre-sharding directory (mrbg.dat with no mrbg.meta) opens as a
// single shard under its original file names.
func Open(opts Options) (*ShardedStore, error) {
	if opts.Dir == "" {
		return nil, errors.New("mrbg: Options.Dir is required")
	}
	opts.applyDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("mrbg: creating dir: %w", err)
	}

	n, ok, err := readMeta(opts.Dir)
	if err != nil {
		return nil, err
	}
	legacy := false
	if !ok {
		switch _, serr := os.Stat(filepath.Join(opts.Dir, legacyDatName)); {
		case serr == nil:
			// Pre-sharding layout: keep the original names so the
			// checkpointed data stays readable; no meta is written.
			n, legacy = 1, true
		case !errors.Is(serr, os.ErrNotExist):
			// A transient stat failure must not shadow existing
			// checkpointed data with a fresh empty store.
			return nil, fmt.Errorf("mrbg: probing legacy store: %w", serr)
		default:
			// Shard files without a meta file mean the meta was lost:
			// writing a fresh one could reroute every key and hide the
			// checkpointed chunks. Refuse rather than guess.
			if _, serr := os.Stat(filepath.Join(opts.Dir, shardDatName(0))); serr == nil {
				return nil, fmt.Errorf("mrbg: %s exists but %s is missing (lost meta file?)", shardDatName(0), metaName)
			} else if !errors.Is(serr, os.ErrNotExist) {
				return nil, fmt.Errorf("mrbg: probing shard files: %w", serr)
			}
			n = opts.Shards
			if err := writeMeta(opts.Dir, n); err != nil {
				return nil, err
			}
		}
	}

	ss := &ShardedStore{opts: opts, shards: make([]*shard, n)}
	for i := 0; i < n; i++ {
		dat, idx := shardDatName(i), shardIdxName(i)
		if legacy {
			dat, idx = legacyDatName, legacyIdxName
		}
		st, err := openShard(opts, dat, idx)
		if err != nil {
			for _, sh := range ss.shards[:i] {
				sh.st.Close()
			}
			return nil, err
		}
		ss.shards[i] = &shard{st: st}
	}
	return ss, nil
}

// shardFor routes a key to its shard (FNV-1a over K2, mod shard count).
func (ss *ShardedStore) shardFor(key string) int {
	if len(ss.shards) == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(ss.shards)))
}

// NumShards returns the store's shard count.
func (ss *ShardedStore) NumShards() int { return len(ss.shards) }

// Close releases the underlying shard files without checkpointing.
func (ss *ShardedStore) Close() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var first error
	for _, sh := range ss.shards {
		if err := sh.st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// forEachShard runs fn once per shard on the shared bounded-parallelism
// runner (internal/par), up to Parallelism calls in flight. Every shard
// runs even if another fails; the first error (lowest shard id) is
// returned. Callers must hold the write lock — fn receives exclusive
// access to its shard.
func (ss *ShardedStore) forEachShard(fn func(i int, st *Store) error) error {
	limit := ss.opts.Parallelism
	if len(ss.shards) == 1 || limit == 1 {
		limit = 1
	}
	return par.Do(len(ss.shards), limit, func(i int) error {
		return fn(i, ss.shards[i].st)
	})
}

// Len returns the number of live chunks across all shards.
func (ss *ShardedStore) Len() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	n := 0
	for _, sh := range ss.shards {
		n += sh.st.Len()
	}
	return n
}

// Has reports whether key has a live chunk.
func (ss *ShardedStore) Has(key string) bool {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.shards[ss.shardFor(key)].st.Has(key)
}

// Keys returns all live chunk keys in sorted order.
func (ss *ShardedStore) Keys() []string {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	var ks []string
	for _, sh := range ss.shards {
		for k := range sh.st.index {
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	return ks
}

// Stats aggregates the per-shard statistics: I/O counters, live chunk
// and byte totals sum across shards. Batches reports the maximum
// per-shard batch counter — exactly the historical meaning (committed
// merge rounds) for Shards: 1, but only a lower bound on rounds for
// larger shard counts, since a round whose delta misses a shard does
// not advance that shard's counter; use ShardStats for exact per-shard
// values.
func (ss *ShardedStore) Stats() Stats {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	var agg Stats
	for _, sh := range ss.shards {
		sh.mu.Lock()
		st := sh.st.Stats()
		sh.mu.Unlock()
		agg.Reads += st.Reads
		agg.BytesRead += st.BytesRead
		agg.CacheHits += st.CacheHits
		agg.AppendedChunks += st.AppendedChunks
		agg.Flushes += st.Flushes
		agg.DanglingDeletes += st.DanglingDeletes
		agg.LiveChunks += st.LiveChunks
		agg.FileBytes += st.FileBytes
		agg.LiveBytes += st.LiveBytes
		if st.Batches > agg.Batches {
			agg.Batches = st.Batches
		}
	}
	return agg
}

// ShardStats returns each shard's statistics snapshot, for experiments
// probing load balance across shards.
func (ss *ShardedStore) ShardStats() []Stats {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	out := make([]Stats, len(ss.shards))
	for i, sh := range ss.shards {
		sh.mu.Lock()
		out[i] = sh.st.Stats()
		sh.mu.Unlock()
	}
	return out
}

// ResetStats zeroes the I/O counters on every shard.
func (ss *ShardedStore) ResetStats() {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	for _, sh := range ss.shards {
		sh.mu.Lock()
		sh.st.ResetStats()
		sh.mu.Unlock()
	}
}

// Get retrieves one chunk outside any batch plan.
func (ss *ShardedStore) Get(key string) (Chunk, bool, error) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	sh := ss.shards[ss.shardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.st.Get(key)
}

// GetMany retrieves the chunks of keys (which must be sorted ascending,
// as the shuffle guarantees for merge queries), invoking fn for each in
// order. ok is false for keys with no live chunk. Shard queries fan out
// in parallel; fn itself always runs sequentially in key order.
func (ss *ShardedStore) GetMany(keys []string, fn func(key string, c Chunk, ok bool) error) error {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return fmt.Errorf("mrbg: GetMany keys not sorted (%q after %q)", keys[i], keys[i-1])
		}
	}
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.getManyLocked(keys, fn)
}

// getManyLocked is GetMany's body; callers hold at least a read lock,
// making multi-call compositions (AllChunks) atomic with respect to
// mutators.
func (ss *ShardedStore) getManyLocked(keys []string, fn func(key string, c Chunk, ok bool) error) error {
	if len(ss.shards) == 1 {
		// Fast path: stream straight off the single shard, preserving
		// the historical interleaving of fetch and callback.
		sh := ss.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return sh.st.GetMany(keys, fn)
	}

	// Partition positions per shard; each shard's key subsequence stays
	// sorted, so its query plan drives the window heuristic exactly as
	// a dedicated single-shard scan would.
	perShard := make([][]int, len(ss.shards))
	for i, k := range keys {
		s := ss.shardFor(k)
		perShard[s] = append(perShard[s], i)
	}
	type result struct {
		c  Chunk
		ok bool
	}
	results := make([]result, len(keys))
	// Per-shard fan-out through par.Do: bounded by Options.Parallelism
	// and surfacing a deterministic lowest-shard error, replacing a
	// hand-rolled semaphore whose error depended on scheduling.
	if err := par.Do(len(ss.shards), ss.opts.Parallelism, func(si int) error {
		if len(perShard[si]) == 0 {
			return nil
		}
		sh := ss.shards[si]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		shardKeys := make([]string, len(perShard[si]))
		for j, pos := range perShard[si] {
			shardKeys[j] = keys[pos]
		}
		plan := &queryPlan{keys: shardKeys}
		for j, pos := range perShard[si] {
			plan.pos = j
			c, ok, err := sh.st.fetch(shardKeys[j], plan)
			if err != nil {
				return err
			}
			results[pos] = result{c: c, ok: ok}
		}
		return nil
	}); err != nil {
		return err
	}
	for i, k := range keys {
		if err := fn(k, results[i].c, results[i].ok); err != nil {
			return err
		}
	}
	return nil
}

// AllChunks retrieves every live chunk in sorted key order. The key
// snapshot and the reads happen under one read lock, so a concurrent
// Merge cannot interleave between them.
func (ss *ShardedStore) AllChunks(fn func(c Chunk) error) error {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	var keys []string
	for _, sh := range ss.shards {
		for k := range sh.st.index {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return ss.getManyLocked(keys, func(_ string, c Chunk, ok bool) error {
		if !ok {
			return errors.New("mrbg: indexed key has no chunk")
		}
		return fn(c)
	})
}

// Put stages a chunk directly, bypassing the delta join — used by the
// initial (non-incremental) run to preserve the first MRBGraph, where
// every chunk is new. Chunks must arrive in sorted key order per batch;
// call CommitBatch when the batch is complete.
func (ss *ShardedStore) Put(c Chunk) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.shards[ss.shardFor(c.Key)].st.Put(c)
}

// CommitBatch seals chunks staged with Put into one sorted batch per
// shard.
func (ss *ShardedStore) CommitBatch() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.forEachShard(func(_ int, st *Store) error {
		return st.CommitBatch()
	})
}

// Merge joins a delta MRBGraph into the store (paper Sec. 3.3-3.4).
// The delta is partitioned per shard and the shard joins run in
// parallel goroutines; the per-key results are then re-merged and
// emitted in globally sorted key order — byte-for-byte the order a
// single-file store would emit — before any shard commits. If emit
// returns an error every shard aborts with its index unchanged.
//
// Memory: with Shards: 1 results stream one chunk at a time; with more
// shards the staged results buffer in memory until emission (the price
// of re-establishing the global order across concurrently-merging
// shards), so peak usage is proportional to the delta-affected data.
func (ss *ShardedStore) Merge(delta []DeltaEdge, emit func(r MergeResult) error) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()

	for _, sh := range ss.shards {
		if sh.st.hasPending() {
			return errors.New("mrbg: Merge re-entered before commit")
		}
	}

	if len(ss.shards) == 1 {
		// Fast path: stream straight through the single shard, one
		// chunk in memory at a time (the historical behavior). The
		// multi-shard path below must buffer per-shard results to
		// re-merge them into global key order.
		return ss.shards[0].st.Merge(delta, emit)
	}

	parts := make([][]DeltaEdge, len(ss.shards))
	for _, d := range delta {
		s := ss.shardFor(d.Key)
		parts[s] = append(parts[s], d)
	}

	// Stage every shard's join in parallel. Staging appends new chunk
	// versions to the shard's buffer/file but commits nothing.
	staged := make([][]MergeResult, len(ss.shards))
	abortAll := func() {
		for _, sh := range ss.shards {
			sh.st.abortMerge()
		}
	}
	err := ss.forEachShard(func(i int, st *Store) error {
		if len(parts[i]) == 0 {
			return nil
		}
		rs, err := st.stageMerge(parts[i])
		staged[i] = rs
		return err
	})
	if err != nil {
		abortAll()
		return err
	}

	// Re-merge the per-shard results into one deterministic emission
	// order. Keys are unique across shards (each key routes to exactly
	// one), so a flat sort by key reproduces the single-store order.
	total := 0
	for _, rs := range staged {
		total += len(rs)
	}
	merged := make([]MergeResult, 0, total)
	for _, rs := range staged {
		merged = append(merged, rs...)
	}
	slices.SortFunc(merged, func(a, b MergeResult) int { return strings.Compare(a.Key, b.Key) })

	for _, r := range merged {
		if err := emit(r); err != nil {
			abortAll()
			return err
		}
	}

	commitErr := ss.forEachShard(func(i int, st *Store) error {
		if len(parts[i]) == 0 {
			return nil
		}
		return st.commitMerge(staged[i])
	})
	if commitErr != nil {
		// Roll back any shard whose commit failed so the store stays
		// usable. Shards that already committed keep their batch —
		// merging a delta is idempotent per (key, MK), so retrying the
		// whole merge converges.
		for _, sh := range ss.shards {
			if sh.st.hasPending() {
				sh.st.abortMerge()
			}
		}
	}
	return commitErr
}

// Checkpoint persists every shard's index, fsyncing data files first.
// Shards checkpoint in parallel; each shard's checkpoint is atomic
// (temp file + rename) on its own.
func (ss *ShardedStore) Checkpoint() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.forEachShard(func(_ int, st *Store) error {
		return st.Checkpoint()
	})
}

// Compact reconstructs every shard file offline, dropping obsolete
// chunk versions (paper: "the MRBGraph file is reconstructed off-line
// when the worker is idle"). Shards compact concurrently.
func (ss *ShardedStore) Compact() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.forEachShard(func(_ int, st *Store) error {
		return st.Compact()
	})
}

// VerifyInvariants walks every shard's index checking chunk integrity,
// plus the sharding invariant: every key lives in the shard its hash
// routes to.
func (ss *ShardedStore) VerifyInvariants() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.forEachShard(func(i int, st *Store) error {
		if err := st.VerifyInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		for k := range st.index {
			if want := ss.shardFor(k); want != i {
				return fmt.Errorf("mrbg: key %q in shard %d, routes to %d", k, i, want)
			}
		}
		return nil
	})
}
