package mrbg

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// shardCounts are the shard configurations the determinism and
// recovery tests sweep.
var shardCounts = []int{1, 4, 16}

// buildDelta deterministically generates a delta touching nKeys keys
// with a mix of inserts, updates, and deletes.
func buildDelta(round, nKeys int) []DeltaEdge {
	var delta []DeltaEdge
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("key-%04d", (i*31+round*7)%nKeys)
		switch (i + round) % 5 {
		case 0:
			delta = append(delta, DeltaEdge{Key: key, MK: uint64(i % 3), Delete: true})
		default:
			delta = append(delta, DeltaEdge{Key: key, MK: uint64(i % 3), V2: fmt.Sprintf("v%d-%d", round, i)})
		}
	}
	return delta
}

func TestShardedMergeDeterministicAcrossShardCounts(t *testing.T) {
	type trace struct {
		emitOrder []string
		removed   map[string]bool
		final     map[string][]Edge
	}
	var baseline *trace
	for _, shards := range shardCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			s := openStore(t, Options{Shards: shards, Parallelism: 4})
			if got := s.NumShards(); got != shards {
				t.Fatalf("NumShards = %d, want %d", got, shards)
			}
			tr := &trace{removed: map[string]bool{}, final: map[string][]Edge{}}
			for round := 0; round < 6; round++ {
				var order []string
				err := s.Merge(buildDelta(round, 60), func(r MergeResult) error {
					order = append(order, r.Key)
					if r.Removed {
						tr.removed[fmt.Sprintf("r%d-%s", round, r.Key)] = true
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				tr.emitOrder = append(tr.emitOrder, order...)
				tr.emitOrder = append(tr.emitOrder, "|")
			}
			err := s.AllChunks(func(c Chunk) error {
				tr.final[c.Key] = c.Edges
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.VerifyInvariants(); err != nil {
				t.Fatal(err)
			}
			if baseline == nil {
				baseline = tr
				return
			}
			if !reflect.DeepEqual(tr.emitOrder, baseline.emitOrder) {
				t.Fatalf("emit order differs from 1-shard baseline:\n got %v\nwant %v", tr.emitOrder, baseline.emitOrder)
			}
			if !reflect.DeepEqual(tr.removed, baseline.removed) {
				t.Fatalf("removed set differs from 1-shard baseline")
			}
			if !reflect.DeepEqual(tr.final, baseline.final) {
				t.Fatalf("final chunks differ from 1-shard baseline")
			}
		})
	}
}

func TestShardedConcurrentGetMany(t *testing.T) {
	s := openStore(t, Options{Shards: 8, Parallelism: 4})
	want := map[string]string{}
	var delta []DeltaEdge
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v := fmt.Sprintf("val-%05d", i)
		want[k] = v
		delta = append(delta, DeltaEdge{Key: k, MK: 1, V2: v})
	}
	if err := s.Merge(delta, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	keys := s.Keys()

	const readers = 8
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				err := s.GetMany(keys, func(k string, c Chunk, ok bool) error {
					if !ok {
						return fmt.Errorf("reader %d: missing %q", g, k)
					}
					if c.Edges[0].V2 != want[k] {
						return fmt.Errorf("reader %d: %q = %q, want %q", g, k, c.Edges[0].V2, want[k])
					}
					return nil
				})
				if err != nil {
					errs[g] = err
					return
				}
				if _, ok, err := s.Get(keys[(g*101+rep)%len(keys)]); err != nil || !ok {
					errs[g] = fmt.Errorf("reader %d: Get failed: ok=%v err=%v", g, ok, err)
					return
				}
				_ = s.Stats() // concurrent stats reads must be race-free too
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestShardedCheckpointRecover(t *testing.T) {
	for _, shards := range shardCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(Options{Dir: dir, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			var delta []DeltaEdge
			for i := 0; i < 200; i++ {
				delta = append(delta, DeltaEdge{Key: fmt.Sprintf("key-%04d", i), MK: 1, V2: fmt.Sprintf("v%d", i)})
			}
			if err := s.Merge(delta, func(MergeResult) error { return nil }); err != nil {
				t.Fatal(err)
			}
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// A post-checkpoint merge is lost by the simulated crash.
			if err := s.Merge([]DeltaEdge{{Key: "lost", MK: 9, V2: "gone"}}, func(MergeResult) error { return nil }); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen with a different (ignored) shard request: the
			// persisted count wins.
			r, err := Open(Options{Dir: dir, Shards: shards + 3})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if got := r.NumShards(); got != shards {
				t.Fatalf("recovered NumShards = %d, want persisted %d", got, shards)
			}
			if r.Len() != 200 {
				t.Fatalf("recovered %d chunks, want 200", r.Len())
			}
			if r.Has("lost") {
				t.Fatal("uncheckpointed chunk survived recovery")
			}
			if err := r.VerifyInvariants(); err != nil {
				t.Fatal(err)
			}
			// The recovered store accepts new merges.
			if err := r.Merge([]DeltaEdge{{Key: "new", MK: 2, V2: "x"}}, func(MergeResult) error { return nil }); err != nil {
				t.Fatal(err)
			}
			if !r.Has("new") {
				t.Fatal("merge after recovery did not apply")
			}
		})
	}
}

func TestShardedCompactDropsObsoleteVersions(t *testing.T) {
	s := openStore(t, Options{Shards: 4, Parallelism: 2})
	for round := 0; round < 8; round++ {
		var delta []DeltaEdge
		for i := 0; i < 40; i++ {
			delta = append(delta, DeltaEdge{Key: fmt.Sprintf("key-%03d", i), MK: 1, V2: fmt.Sprintf("v%d", round)})
		}
		if err := s.Merge(delta, func(MergeResult) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.FileBytes <= before.LiveBytes {
		t.Fatalf("expected obsolete data before compaction: %+v", before)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.FileBytes != after.LiveBytes {
		t.Fatalf("compaction left obsolete bytes: %+v", after)
	}
	if after.LiveChunks != 40 {
		t.Fatalf("LiveChunks = %d, want 40", after.LiveChunks)
	}
	if err := s.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedMergeAbortLeavesAllShardsUnchanged(t *testing.T) {
	s := openStore(t, Options{Shards: 4})
	var delta []DeltaEdge
	for i := 0; i < 40; i++ {
		delta = append(delta, DeltaEdge{Key: fmt.Sprintf("key-%03d", i), MK: 1, V2: "old"})
	}
	if err := s.Merge(delta, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	sentinel := fmt.Errorf("emit failed")
	var update []DeltaEdge
	for i := 0; i < 40; i++ {
		update = append(update, DeltaEdge{Key: fmt.Sprintf("key-%03d", i), MK: 1, V2: "new"})
	}
	// Fail mid-emission: every shard must roll back, not just the one
	// whose key errored.
	n := 0
	err := s.Merge(update, func(r MergeResult) error {
		n++
		if n == 20 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("Merge = %v, want sentinel", err)
	}
	err = s.AllChunks(func(c Chunk) error {
		if c.Edges[0].V2 != "old" {
			return fmt.Errorf("key %q = %q after aborted merge", c.Key, c.Edges[0].V2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The store stays usable.
	if err := s.Merge(update, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Get("key-000")
	if got.Edges[0].V2 != "new" {
		t.Fatalf("retry merge did not apply: %+v", got)
	}
}

func TestLegacySingleFileStoreOpens(t *testing.T) {
	dir := t.TempDir()
	// Write a pre-sharding layout store: mrbg.dat/mrbg.idx, no meta.
	opts := Options{Dir: dir}
	opts.applyDefaults()
	st, err := openShard(opts, legacyDatName, legacyIdxName)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Merge([]DeltaEdge{{Key: "old-key", MK: 1, V2: "old-val"}}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Open adopts the legacy layout as one shard even when more shards
	// are requested.
	s, err := Open(Options{Dir: dir, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumShards() != 1 {
		t.Fatalf("legacy store opened with %d shards, want 1", s.NumShards())
	}
	c, ok, err := s.Get("old-key")
	if err != nil || !ok || c.Edges[0].V2 != "old-val" {
		t.Fatalf("Get(old-key) = %+v ok=%v err=%v", c, ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, metaName)); !os.IsNotExist(err) {
		t.Fatalf("legacy open must not write a meta file (err=%v)", err)
	}
}

func TestShardMetaFixedAtCreation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge([]DeltaEdge{{Key: "k", MK: 1, V2: "v"}}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, err := Open(Options{Dir: dir, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want creation-time 4", r.NumShards())
	}
	if !r.Has("k") {
		t.Fatal("checkpointed chunk lost across reopen")
	}
}

func TestOpenRefusesShardFilesWithoutMeta(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge([]DeltaEdge{{Key: "k", MK: 1, V2: "v"}}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a lost meta file: re-creating it from Options.Shards
	// would reroute keys and silently hide checkpointed chunks.
	if err := os.Remove(filepath.Join(dir, metaName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Shards: 1}); err == nil {
		t.Fatal("Open succeeded with shard files but no meta")
	}
}

func TestShardStatsSumToAggregate(t *testing.T) {
	s := openStore(t, Options{Shards: 4})
	var delta []DeltaEdge
	for i := 0; i < 100; i++ {
		delta = append(delta, DeltaEdge{Key: fmt.Sprintf("key-%03d", i), MK: 1, V2: "v"})
	}
	if err := s.Merge(delta, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	per := s.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d entries", len(per))
	}
	var chunks int
	var bytes int64
	for _, st := range per {
		chunks += st.LiveChunks
		bytes += st.LiveBytes
	}
	agg := s.Stats()
	if chunks != agg.LiveChunks || chunks != 100 {
		t.Fatalf("per-shard chunks %d, aggregate %d, want 100", chunks, agg.LiveChunks)
	}
	if bytes != agg.LiveBytes {
		t.Fatalf("per-shard bytes %d, aggregate %d", bytes, agg.LiveBytes)
	}
	// Every shard should hold some of the 100 keys with a sane hash.
	for i, st := range per {
		if st.LiveChunks == 0 {
			t.Fatalf("shard %d empty: hash is not spreading keys", i)
		}
	}
}

// --- shard-sweep micro-benchmarks ------------------------------------

func benchStore(b *testing.B, shards, nKeys int) *ShardedStore {
	b.Helper()
	s, err := Open(Options{Dir: b.TempDir(), Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	var delta []DeltaEdge
	for i := 0; i < nKeys; i++ {
		delta = append(delta, DeltaEdge{
			Key: fmt.Sprintf("key-%06d", i), MK: 1,
			V2: "value-payload-0123456789-value-payload",
		})
	}
	if err := s.Merge(delta, func(MergeResult) error { return nil }); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkShardedMerge sweeps shard counts over the parallel
// delta-merge path (the per-iteration cost of incremental processing).
func BenchmarkShardedMerge(b *testing.B) {
	const nKeys = 20000
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			s := benchStore(b, shards, nKeys)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delta := make([]DeltaEdge, 0, 2000)
				for k := 0; k < 2000; k++ {
					delta = append(delta, DeltaEdge{
						Key: fmt.Sprintf("key-%06d", (i*37+k*53)%nKeys),
						MK:  2, V2: "updated-payload-9876543210",
					})
				}
				if err := s.Merge(delta, func(MergeResult) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedGetMany sweeps shard counts over the fan-out query
// path.
func BenchmarkShardedGetMany(b *testing.B) {
	const nKeys = 20000
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			s := benchStore(b, shards, nKeys)
			keys := s.Keys()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.GetMany(keys, func(string, Chunk, bool) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
