// Package mrbg implements the MRBGraph abstraction and the MRBG-Store
// (paper Sec. 3.2-3.4 and 5.2): the fine-grain intermediate state
// `(K2, MK, V2)` of a MapReduce computation, preserved reduce-side so
// incremental jobs re-compute only affected Reduce instances.
//
// # On-disk layout
//
// Open returns a ShardedStore: chunks are partitioned across
// Options.Shards independent shard files by hash(K2) % Shards, so the
// hot paths (Merge, GetMany, Compact) can run one goroutine per shard.
// A store directory holds:
//
//	mrbg.meta  — the shard count, fixed at creation time. Reopening
//	             with a different Options.Shards adopts the persisted
//	             count (keys would otherwise hash to the wrong file).
//	mrbg-<i>.dat — shard i's MRBGraph file: chunks appended in sorted
//	             batches, one batch per merge operation (iteration). A
//	             chunk holds every live edge of one K2, stored
//	             contiguously; the unit of every read and write is a
//	             whole chunk.
//	mrbg-<i>.idx — shard i's persisted chunk index + batch counter +
//	             logical file length, written by Checkpoint. Open
//	             recovers from it, truncating a partially-appended tail
//	             if the process died between Checkpoint calls.
//
// A legacy single-file store (mrbg.dat/mrbg.idx with no mrbg.meta, the
// layout before sharding) is recognized and opened as one shard under
// its original file names.
//
// With Shards: 1 (the default) a ShardedStore behaves exactly like the
// historical single-file store: same emit order, same query results,
// same I/O statistics.
//
// Obsolete chunk versions are not rewritten in place (paper: "obsolete
// chunks are NOT immediately updated in the file for I/O efficiency");
// Compact reconstructs the files offline.
package mrbg

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"i2mapreduce/internal/fsutil"
)

// Edge is one MRBGraph edge as preserved in a chunk: the source Map
// instance (MK, a globally unique fingerprint of the map input record)
// and the intermediate value V2 it contributed to this chunk's K2.
type Edge struct {
	MK uint64
	V2 string
}

// Chunk is the preserved Reduce input of one intermediate key: K2 plus
// all edges incident on it. Edges are kept in ascending MK order so
// chunk contents are deterministic.
type Chunk struct {
	Key   string
	Edges []Edge
}

// Values returns just the V2 list, in edge order — the {V2} multiset
// handed to the Reduce function.
func (c Chunk) Values() []string {
	vs := make([]string, len(c.Edges))
	for i, e := range c.Edges {
		vs[i] = e.V2
	}
	return vs
}

// DeltaEdge is one record of a delta MRBGraph: an edge insertion/update
// (Delete=false) or an edge deletion (Delete=true, V2 ignored), as
// produced by incremental Map computation (paper Sec. 3.3).
type DeltaEdge struct {
	Key    string
	MK     uint64
	V2     string
	Delete bool
}

// ReadStrategy selects how Merge reads preserved chunks (paper Table 4).
type ReadStrategy int

const (
	// IndexOnly reads exactly one chunk per I/O using the index.
	IndexOnly ReadStrategy = iota
	// SingleFixedWindow keeps one fixed-size read window for the whole
	// file; a miss reads FixedWindowSize bytes at the chunk position.
	// With multiple batches the window thrashes, re-reading obsolete
	// regions — the pathology Table 4 shows.
	SingleFixedWindow
	// MultiFixedWindow keeps one fixed-size window per batch.
	MultiFixedWindow
	// MultiDynamicWindow keeps one window per batch and sizes each read
	// with Algorithm 1's gap heuristic over the query plan. This is
	// i2MapReduce's default.
	MultiDynamicWindow
)

// String names the strategy as in Table 4.
func (s ReadStrategy) String() string {
	switch s {
	case IndexOnly:
		return "index-only"
	case SingleFixedWindow:
		return "single-fix-window"
	case MultiFixedWindow:
		return "multi-fix-window"
	case MultiDynamicWindow:
		return "multi-dynamic-window"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Options configures a store.
type Options struct {
	// Dir is the directory holding the shard files. Required.
	Dir string
	// Shards is the number of independent shard files chunks are
	// partitioned across by hash(K2). Fixed at store creation and
	// persisted in mrbg.meta; reopening adopts the persisted count.
	// Default 1 (the historical single-file layout).
	Shards int
	// Parallelism bounds the goroutines fanned out across shards by
	// Merge, GetMany, Compact, and Checkpoint. Default GOMAXPROCS.
	Parallelism int
	// Strategy defaults to MultiDynamicWindow.
	Strategy ReadStrategy
	// GapThreshold is Algorithm 1's T: a gap between consecutive
	// queried chunks below T is worth reading through. Default 100 KB
	// (paper default).
	GapThreshold int64
	// ReadCacheSize caps any single read window. Default 1 MiB.
	ReadCacheSize int64
	// FixedWindowSize is the read size for the fixed-window strategies.
	// Default 256 KiB.
	FixedWindowSize int64
	// AppendBufSize is the append buffer capacity; the buffer flushes
	// with sequential I/O when full (paper Sec. 3.4). Default 256 KiB.
	AppendBufSize int64
}

func (o *Options) applyDefaults() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.GapThreshold <= 0 {
		o.GapThreshold = 100 << 10
	}
	if o.ReadCacheSize <= 0 {
		o.ReadCacheSize = 1 << 20
	}
	if o.FixedWindowSize <= 0 {
		o.FixedWindowSize = 256 << 10
	}
	if o.FixedWindowSize > o.ReadCacheSize {
		o.FixedWindowSize = o.ReadCacheSize
	}
	if o.AppendBufSize <= 0 {
		o.AppendBufSize = 256 << 10
	}
}

// Stats reports the store's I/O behaviour (Table 4's columns).
type Stats struct {
	// Reads is the number of read I/O operations issued.
	Reads int64
	// BytesRead is the total bytes fetched by those reads.
	BytesRead int64
	// CacheHits counts chunk retrievals satisfied by a read window.
	CacheHits int64
	// AppendedChunks counts chunks written through the append buffer.
	AppendedChunks int64
	// Flushes counts append-buffer flushes.
	Flushes int64
	// DanglingDeletes counts delta deletions whose key had no live
	// chunk (a symptom of a delta that does not match the preserved
	// MRBGraph).
	DanglingDeletes int64
	// Batches is the number of sorted batches in the file.
	Batches int
	// LiveChunks is the number of keys in the index.
	LiveChunks int
	// FileBytes is the logical length of the MRBGraph file, including
	// obsolete chunk versions.
	FileBytes int64
	// LiveBytes is the total size of live chunks only.
	LiveBytes int64
}

// loc locates one live chunk version inside the MRBGraph file.
type loc struct {
	off   int64
	len   int64
	batch int
}

// Store is one shard of an MRBG-Store: a single MRBGraph file plus its
// index. It is not safe for concurrent use — the ShardedStore front end
// guarantees each shard is touched by one goroutine at a time.
type Store struct {
	opts    Options
	datPath string
	idxPath string
	f       *os.File
	index   map[string]loc
	// size is the logical end of the file: committed bytes plus
	// buffered-but-unflushed appends land beyond it only after flush.
	size  int64
	batch int

	appendBuf []byte
	// pending maps keys to their new locations assigned at append time;
	// applied to the index when a merge completes.
	pending map[string]loc

	windows map[int]*window // per-batch read windows (strategy-dependent)
	stats   Stats
}

const (
	legacyDatName = "mrbg.dat"
	legacyIdxName = "mrbg.idx"
)

// shardDatName / shardIdxName name shard i's files.
func shardDatName(i int) string { return fmt.Sprintf("mrbg-%d.dat", i) }
func shardIdxName(i int) string { return fmt.Sprintf("mrbg-%d.idx", i) }

// openShard creates or recovers one shard file pair in opts.Dir. opts
// must already have defaults applied and opts.Dir must exist.
func openShard(opts Options, datName, idxName string) (*Store, error) {
	datPath := filepath.Join(opts.Dir, datName)
	f, err := os.OpenFile(datPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mrbg: opening data file: %w", err)
	}
	s := &Store{
		opts:    opts,
		datPath: datPath,
		idxPath: filepath.Join(opts.Dir, idxName),
		f:       f,
		index:   make(map[string]loc),
		pending: make(map[string]loc),
		windows: make(map[int]*window),
	}
	if err := s.loadIndex(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Close releases the underlying file without checkpointing.
func (s *Store) Close() error { return s.f.Close() }

// Len returns the number of live chunks.
func (s *Store) Len() int { return len(s.index) }

// Has reports whether key has a live chunk.
func (s *Store) Has(key string) bool {
	_, ok := s.index[key]
	return ok
}

// Keys returns all live chunk keys in sorted order.
func (s *Store) Keys() []string {
	ks := make([]string, 0, len(s.index))
	for k := range s.index {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Stats returns a snapshot of the store's I/O statistics.
func (s *Store) Stats() Stats {
	st := s.stats
	st.Batches = s.batch
	st.LiveChunks = len(s.index)
	st.FileBytes = s.size
	for _, l := range s.index {
		st.LiveBytes += l.len
	}
	return st
}

// ResetStats zeroes the I/O counters (batch/live counts are derived and
// unaffected). The Table 4 harness resets between phases.
func (s *Store) ResetStats() { s.stats = Stats{} }

// encodeChunk appends the chunk's frame to buf and returns it. Frame:
//
//	uvarint(len(key)) key uvarint(nEdges) { mk:8 bytes uvarint(len(v2)) v2 }*
func encodeChunk(buf []byte, c Chunk) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(c.Key)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, c.Key...)
	n = binary.PutUvarint(tmp[:], uint64(len(c.Edges)))
	buf = append(buf, tmp[:n]...)
	for _, e := range c.Edges {
		binary.LittleEndian.PutUint64(tmp[:8], e.MK)
		buf = append(buf, tmp[:8]...)
		n = binary.PutUvarint(tmp[:], uint64(len(e.V2)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, e.V2...)
	}
	return buf
}

// decodeChunk parses one chunk frame from data. It returns the chunk
// and the number of bytes consumed.
func decodeChunk(data []byte) (Chunk, int, error) {
	keyLen, n := binary.Uvarint(data)
	if n <= 0 || keyLen > uint64(len(data)-n) {
		return Chunk{}, 0, errors.New("mrbg: corrupt chunk key length")
	}
	pos := n
	key := string(data[pos : pos+int(keyLen)])
	pos += int(keyLen)
	nEdges, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return Chunk{}, 0, errors.New("mrbg: corrupt chunk edge count")
	}
	pos += n
	edges := make([]Edge, 0, nEdges)
	for i := uint64(0); i < nEdges; i++ {
		if pos+8 > len(data) {
			return Chunk{}, 0, errors.New("mrbg: corrupt edge MK")
		}
		mk := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		vLen, n := binary.Uvarint(data[pos:])
		if n <= 0 || vLen > uint64(len(data)-pos-n) {
			return Chunk{}, 0, errors.New("mrbg: corrupt edge value length")
		}
		pos += n
		v := string(data[pos : pos+int(vLen)])
		pos += int(vLen)
		edges = append(edges, Edge{MK: mk, V2: v})
	}
	return Chunk{Key: key, Edges: edges}, pos, nil
}

// appendChunk stages one chunk in the append buffer, recording its
// future location in pending, and flushes the buffer when full.
func (s *Store) appendChunk(c Chunk) error {
	start := len(s.appendBuf)
	s.appendBuf = encodeChunk(s.appendBuf, c)
	frameLen := int64(len(s.appendBuf) - start)
	s.pending[c.Key] = loc{
		off:   s.size + int64(start),
		len:   frameLen,
		batch: s.batch + 1,
	}
	s.stats.AppendedChunks++
	if int64(len(s.appendBuf)) >= s.opts.AppendBufSize {
		return s.flushAppendBuf()
	}
	return nil
}

// flushAppendBuf appends the buffered bytes to the file with one
// sequential write.
func (s *Store) flushAppendBuf() error {
	if len(s.appendBuf) == 0 {
		return nil
	}
	if _, err := s.f.WriteAt(s.appendBuf, s.size); err != nil {
		return fmt.Errorf("mrbg: append flush: %w", err)
	}
	s.size += int64(len(s.appendBuf))
	// pending locations were assigned against the pre-buffer size, so
	// they are already correct; just reset the buffer.
	s.appendBuf = s.appendBuf[:0]
	s.stats.Flushes++
	return nil
}

// commitPending flushes buffered appends, advances the batch counter,
// and applies pending index updates. Called at the end of a merge.
func (s *Store) commitPending() error {
	if err := s.flushAppendBuf(); err != nil {
		return err
	}
	if len(s.pending) == 0 {
		return nil
	}
	s.batch++
	for k, l := range s.pending {
		s.index[k] = l
	}
	s.pending = make(map[string]loc)
	return nil
}

// Checkpoint persists the index, batch counter, and logical file length
// to the shard's index file, fsyncing the data file first. A store
// reopened from a checkpoint sees exactly the chunks live at Checkpoint
// time (paper Sec. 6.1: the MRBGraph file is checkpointed every
// iteration).
func (s *Store) Checkpoint() error {
	if err := s.flushAppendBuf(); err != nil {
		return err
	}
	if len(s.pending) != 0 {
		return errors.New("mrbg: Checkpoint during an uncommitted merge")
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	// Encode the index in sorted key order into memory, then commit
	// through fsutil so the checkpoint is fsynced and never observed
	// torn. Sorted keys make the checkpoint bytes deterministic; map
	// iteration order would shuffle them on every run (byte-identity
	// invariant).
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	writeUvarint(uint64(s.size))
	writeUvarint(uint64(s.batch))
	writeUvarint(uint64(len(s.index)))
	for _, k := range keys {
		l := s.index[k]
		writeUvarint(uint64(len(k)))
		buf.WriteString(k)
		writeUvarint(uint64(l.off))
		writeUvarint(uint64(l.len))
		writeUvarint(uint64(l.batch))
	}
	return fsutil.WriteFileAtomic(s.idxPath, buf.Bytes())
}

// loadIndex recovers the index from the shard's index file if present,
// truncating an uncheckpointed tail of the data file.
func (s *Store) loadIndex() error {
	f, err := os.Open(s.idxPath)
	if errors.Is(err, os.ErrNotExist) {
		// Fresh store: start empty, discarding any uncheckpointed data.
		return s.f.Truncate(0)
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(r) }
	size, err := readUvarint()
	if err != nil {
		return fmt.Errorf("mrbg: corrupt index: %w", err)
	}
	batch, err := readUvarint()
	if err != nil {
		return fmt.Errorf("mrbg: corrupt index: %w", err)
	}
	n, err := readUvarint()
	if err != nil {
		return fmt.Errorf("mrbg: corrupt index: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		kLen, err := readUvarint()
		if err != nil {
			return fmt.Errorf("mrbg: corrupt index entry: %w", err)
		}
		kb := make([]byte, kLen)
		if _, err := io.ReadFull(r, kb); err != nil {
			return fmt.Errorf("mrbg: corrupt index key: %w", err)
		}
		off, err := readUvarint()
		if err != nil {
			return fmt.Errorf("mrbg: corrupt index off: %w", err)
		}
		l, err := readUvarint()
		if err != nil {
			return fmt.Errorf("mrbg: corrupt index len: %w", err)
		}
		b, err := readUvarint()
		if err != nil {
			return fmt.Errorf("mrbg: corrupt index batch: %w", err)
		}
		s.index[string(kb)] = loc{off: int64(off), len: int64(l), batch: int(b)}
	}
	s.size = int64(size)
	s.batch = int(batch)
	// Drop any bytes appended after the last checkpoint.
	fi, err := s.f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() > s.size {
		if err := s.f.Truncate(s.size); err != nil {
			return err
		}
	} else if fi.Size() < s.size {
		return fmt.Errorf("mrbg: data file shorter (%d) than checkpoint (%d)", fi.Size(), s.size)
	}
	return nil
}
