package mrbg

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func openStore(t *testing.T, opts Options) *ShardedStore {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without dir succeeded")
	}
}

func TestChunkValues(t *testing.T) {
	c := Chunk{Key: "k", Edges: []Edge{{MK: 1, V2: "a"}, {MK: 2, V2: "b"}}}
	if got := c.Values(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Values = %v", got)
	}
}

func TestReadStrategyString(t *testing.T) {
	want := map[ReadStrategy]string{
		IndexOnly:          "index-only",
		SingleFixedWindow:  "single-fix-window",
		MultiFixedWindow:   "multi-fix-window",
		MultiDynamicWindow: "multi-dynamic-window",
		ReadStrategy(42):   "strategy(42)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(s), got, w)
		}
	}
}

func TestEncodeDecodeChunkRoundTrip(t *testing.T) {
	cases := []Chunk{
		{Key: "", Edges: nil},
		{Key: "k", Edges: []Edge{{MK: 0, V2: ""}}},
		{Key: "vertex-42", Edges: []Edge{{MK: 7, V2: "0.25"}, {MK: 99, V2: "1.0"}}},
	}
	for _, c := range cases {
		buf := encodeChunk(nil, c)
		got, n, err := decodeChunk(buf)
		if err != nil {
			t.Fatalf("decode(%+v): %v", c, err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
		}
		if got.Key != c.Key || len(got.Edges) != len(c.Edges) {
			t.Fatalf("round trip = %+v, want %+v", got, c)
		}
		for i := range c.Edges {
			if got.Edges[i] != c.Edges[i] {
				t.Fatalf("edge %d = %+v, want %+v", i, got.Edges[i], c.Edges[i])
			}
		}
	}
}

func TestDecodeChunkCorrupt(t *testing.T) {
	c := Chunk{Key: "key", Edges: []Edge{{MK: 1, V2: "value"}}}
	buf := encodeChunk(nil, c)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := decodeChunk(buf[:cut]); err == nil {
			t.Fatalf("decodeChunk on %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestEncodeDecodeChunkProperty(t *testing.T) {
	f := func(key string, mks []uint64, vals []string) bool {
		n := len(mks)
		if len(vals) < n {
			n = len(vals)
		}
		c := Chunk{Key: key}
		for i := 0; i < n; i++ {
			c.Edges = append(c.Edges, Edge{MK: mks[i], V2: vals[i]})
		}
		buf := encodeChunk(nil, c)
		got, used, err := decodeChunk(buf)
		if err != nil || used != len(buf) || got.Key != c.Key || len(got.Edges) != len(c.Edges) {
			return false
		}
		for i := range c.Edges {
			if got.Edges[i] != c.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetCommit(t *testing.T) {
	s := openStore(t, Options{})
	chunks := []Chunk{
		{Key: "a", Edges: []Edge{{MK: 1, V2: "x"}}},
		{Key: "b", Edges: []Edge{{MK: 2, V2: "y"}, {MK: 3, V2: "z"}}},
	}
	for _, c := range chunks {
		if err := s.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	// Invisible before commit.
	if s.Has("a") {
		t.Fatal("chunk visible before CommitBatch")
	}
	if err := s.CommitBatch(); err != nil {
		t.Fatal(err)
	}
	for _, want := range chunks {
		got, ok, err := s.Get(want.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("chunk %q missing", want.Key)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Get(%q) = %+v, want %+v", want.Key, got, want)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Keys = %v", got)
	}
	if _, ok, err := s.Get("missing"); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v err=%v", ok, err)
	}
}

func TestMergeInsertUpdateDelete(t *testing.T) {
	s := openStore(t, Options{})
	if err := s.Put(Chunk{Key: "v1", Edges: []Edge{{MK: 10, V2: "0.3"}, {MK: 20, V2: "0.4"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Chunk{Key: "v2", Edges: []Edge{{MK: 10, V2: "0.3"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitBatch(); err != nil {
		t.Fatal(err)
	}

	// Update v1's MK=10 edge (delete+insert), delete v2's only edge,
	// and insert a brand new key v3.
	delta := []DeltaEdge{
		{Key: "v1", MK: 10, Delete: true},
		{Key: "v1", MK: 10, V2: "0.6"},
		{Key: "v2", MK: 10, Delete: true},
		{Key: "v3", MK: 30, V2: "0.1"},
	}
	var results []MergeResult
	if err := s.Merge(delta, func(r MergeResult) error {
		results = append(results, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("merge emitted %d results: %+v", len(results), results)
	}
	byKey := map[string]MergeResult{}
	for _, r := range results {
		byKey[r.Key] = r
	}
	if r := byKey["v1"]; r.Removed || !reflect.DeepEqual(r.Chunk.Edges, []Edge{{MK: 10, V2: "0.6"}, {MK: 20, V2: "0.4"}}) {
		t.Fatalf("v1 result = %+v", r)
	}
	if r := byKey["v2"]; !r.Removed {
		t.Fatalf("v2 result = %+v, want Removed", r)
	}
	if r := byKey["v3"]; r.Removed || !reflect.DeepEqual(r.Chunk.Edges, []Edge{{MK: 30, V2: "0.1"}}) {
		t.Fatalf("v3 result = %+v", r)
	}

	// Store state reflects the merge.
	if s.Has("v2") {
		t.Fatal("v2 still live after full deletion")
	}
	got, ok, err := s.Get("v1")
	if err != nil || !ok {
		t.Fatalf("Get(v1) = %v %v", ok, err)
	}
	if got.Edges[0].V2 != "0.6" {
		t.Fatalf("v1 edge = %+v", got.Edges[0])
	}
	if st := s.Stats(); st.Batches != 2 {
		t.Fatalf("Batches = %d, want 2", st.Batches)
	}
	if err := s.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmitsSortedKeys(t *testing.T) {
	s := openStore(t, Options{})
	delta := []DeltaEdge{
		{Key: "z", MK: 1, V2: "1"},
		{Key: "a", MK: 1, V2: "1"},
		{Key: "m", MK: 1, V2: "1"},
	}
	var keys []string
	if err := s.Merge(delta, func(r MergeResult) error {
		keys = append(keys, r.Key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("merge emission order %v not sorted", keys)
	}
}

func TestMergeDanglingDeleteCounted(t *testing.T) {
	s := openStore(t, Options{})
	err := s.Merge([]DeltaEdge{{Key: "ghost", MK: 1, Delete: true}}, func(r MergeResult) error {
		t.Fatalf("unexpected emit %+v", r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().DanglingDeletes != 1 {
		t.Fatalf("DanglingDeletes = %d", s.Stats().DanglingDeletes)
	}
}

func TestMergeAbortOnEmitErrorLeavesStoreUnchanged(t *testing.T) {
	s := openStore(t, Options{})
	if err := s.Put(Chunk{Key: "k", Edges: []Edge{{MK: 1, V2: "old"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitBatch(); err != nil {
		t.Fatal(err)
	}
	sentinel := fmt.Errorf("emit failed")
	err := s.Merge([]DeltaEdge{{Key: "k", MK: 1, V2: "new"}}, func(r MergeResult) error {
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("Merge = %v, want sentinel", err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if got.Edges[0].V2 != "old" {
		t.Fatalf("store changed after aborted merge: %+v", got)
	}
	// Store remains usable for a subsequent merge.
	if err := s.Merge([]DeltaEdge{{Key: "k", MK: 1, V2: "new"}}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Get("k")
	if got.Edges[0].V2 != "new" {
		t.Fatalf("second merge did not apply: %+v", got)
	}
}

func TestUpdateAsDeletePlusInsertNets(t *testing.T) {
	s := openStore(t, Options{})
	if err := s.Merge([]DeltaEdge{{Key: "k", MK: 5, V2: "v1"}}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Same-key same-MK delete then insert within one delta.
	if err := s.Merge([]DeltaEdge{
		{Key: "k", MK: 5, Delete: true},
		{Key: "k", MK: 5, V2: "v2"},
	}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if len(got.Edges) != 1 || got.Edges[0].V2 != "v2" {
		t.Fatalf("chunk = %+v", got)
	}
}

func TestUpsertWithoutExplicitDelete(t *testing.T) {
	// Paper Sec. 3.3: "the engine first checks duplicates ... updates
	// the old edge if duplicate exists". An insertion with an existing
	// (K2, MK) replaces the value.
	s := openStore(t, Options{})
	if err := s.Merge([]DeltaEdge{{Key: "k", MK: 5, V2: "v1"}}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge([]DeltaEdge{{Key: "k", MK: 5, V2: "v2"}}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Get("k")
	if len(got.Edges) != 1 || got.Edges[0].V2 != "v2" {
		t.Fatalf("chunk = %+v", got)
	}
}

func TestCheckpointAndRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge([]DeltaEdge{
		{Key: "a", MK: 1, V2: "1"},
		{Key: "b", MK: 2, V2: "2"},
	}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint merge that will be lost (crash before the next
	// checkpoint).
	if err := s.Merge([]DeltaEdge{{Key: "c", MK: 3, V2: "3"}}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("recovered %d chunks, want 2 (c written after checkpoint)", r.Len())
	}
	for _, k := range []string{"a", "b"} {
		c, ok, err := r.Get(k)
		if err != nil || !ok {
			t.Fatalf("recovered Get(%q) = %v %v", k, ok, err)
		}
		if len(c.Edges) != 1 {
			t.Fatalf("recovered chunk %q = %+v", k, c)
		}
	}
	if r.Has("c") {
		t.Fatal("uncheckpointed chunk survived recovery")
	}
	if err := r.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	// Recovered store accepts new merges.
	if err := r.Merge([]DeltaEdge{{Key: "d", MK: 4, V2: "4"}}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if !r.Has("d") {
		t.Fatal("merge after recovery did not apply")
	}
}

func TestOpenFreshStoreDiscardsOrphanData(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge([]DeltaEdge{{Key: "x", MK: 1, V2: "1"}}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s.Close() // no checkpoint ever written

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 0 || r.Stats().FileBytes != 0 {
		t.Fatalf("fresh open kept %d chunks, %d bytes", r.Len(), r.Stats().FileBytes)
	}
}

func TestCompactDropsObsoleteVersions(t *testing.T) {
	s := openStore(t, Options{})
	// Ten merges rewriting the same keys leave 10 versions on disk.
	for i := 0; i < 10; i++ {
		delta := []DeltaEdge{
			{Key: "a", MK: 1, V2: fmt.Sprintf("v%d", i)},
			{Key: "b", MK: 2, V2: fmt.Sprintf("w%d", i)},
		}
		if err := s.Merge(delta, func(MergeResult) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.FileBytes <= before.LiveBytes {
		t.Fatalf("expected obsolete data before compaction: %+v", before)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.FileBytes != after.LiveBytes {
		t.Fatalf("compaction left obsolete bytes: %+v", after)
	}
	if after.Batches != 1 {
		t.Fatalf("Batches after compact = %d", after.Batches)
	}
	got, ok, err := s.Get("a")
	if err != nil || !ok || got.Edges[0].V2 != "v9" {
		t.Fatalf("Get(a) after compact = %+v ok=%v err=%v", got, ok, err)
	}
	if err := s.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	// Merging after compaction still works.
	if err := s.Merge([]DeltaEdge{{Key: "c", MK: 9, V2: "new"}}, func(MergeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if !s.Has("c") {
		t.Fatal("merge after compact missing")
	}
}

func TestCompactEmptyStore(t *testing.T) {
	s := openStore(t, Options{})
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestGetManyRequiresSortedKeys(t *testing.T) {
	s := openStore(t, Options{})
	err := s.GetMany([]string{"b", "a"}, func(string, Chunk, bool) error { return nil })
	if err == nil {
		t.Fatal("GetMany with unsorted keys succeeded")
	}
}

// mergeModel is an in-memory reference model of the store used by the
// randomized equivalence test.
type mergeModel map[string]map[uint64]string

func (m mergeModel) apply(d DeltaEdge) {
	edges := m[d.Key]
	if d.Delete {
		delete(edges, d.MK)
		if len(edges) == 0 {
			delete(m, d.Key)
		}
		return
	}
	if edges == nil {
		edges = make(map[uint64]string)
		m[d.Key] = edges
	}
	edges[d.MK] = d.V2
}

func TestRandomizedMergesMatchModel(t *testing.T) {
	for _, strategy := range []ReadStrategy{IndexOnly, SingleFixedWindow, MultiFixedWindow, MultiDynamicWindow} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			s := openStore(t, Options{
				Strategy:        strategy,
				FixedWindowSize: 128,
				ReadCacheSize:   512,
				GapThreshold:    64,
				AppendBufSize:   100,
			})
			rng := rand.New(rand.NewSource(42))
			model := mergeModel{}
			for round := 0; round < 25; round++ {
				n := rng.Intn(30) + 1
				delta := make([]DeltaEdge, 0, n)
				for i := 0; i < n; i++ {
					d := DeltaEdge{
						Key: fmt.Sprintf("key-%02d", rng.Intn(15)),
						MK:  uint64(rng.Intn(5)),
					}
					if rng.Intn(3) == 0 {
						d.Delete = true
					} else {
						d.V2 = fmt.Sprintf("val-%d-%d", round, i)
					}
					delta = append(delta, d)
				}
				// Model applies records in (key-stable, slice) order as
				// Merge does.
				sorted := append([]DeltaEdge(nil), delta...)
				sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
				for _, d := range sorted {
					model.apply(d)
				}
				if err := s.Merge(delta, func(MergeResult) error { return nil }); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}

				// Full-store comparison against the model.
				if s.Len() != len(model) {
					t.Fatalf("round %d: store has %d keys, model %d", round, s.Len(), len(model))
				}
				for key, edges := range model {
					c, ok, err := s.Get(key)
					if err != nil {
						t.Fatalf("round %d Get(%q): %v", round, key, err)
					}
					if !ok {
						t.Fatalf("round %d: model key %q missing from store", round, key)
					}
					if len(c.Edges) != len(edges) {
						t.Fatalf("round %d key %q: %d edges, model %d", round, key, len(c.Edges), len(edges))
					}
					for _, e := range c.Edges {
						if edges[e.MK] != e.V2 {
							t.Fatalf("round %d key %q MK %d: %q, model %q", round, key, e.MK, e.V2, edges[e.MK])
						}
					}
				}
			}
			if err := s.VerifyInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
