// Package par is the bounded-parallelism I/O runner shared by the
// durability plane. Every per-partition loop that flushes, opens, or
// restores durable state — state-KV and result-store checkpoints, MRBG
// shard fan-out, parallel Open/recovery — funnels through Do, so one
// knob (IOParallelism, default GOMAXPROCS) bounds the whole process's
// concurrent durability I/O.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Do runs f(i) for every i in [0, n), with at most limit calls in
// flight (limit <= 0 means GOMAXPROCS). Every index runs even if
// another fails; the first error in index order is returned, so an
// error surfaced by a sweep is deterministic regardless of goroutine
// scheduling. Do returns only after every call has finished.
//
// With limit == 1 (or n == 1) the calls run inline on the caller's
// goroutine in index order — byte-for-byte the serial loops the
// durability plane used before, which the crash-consistency tests
// compare against.
func Do(n, limit int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit > n {
		limit = n
	}
	if limit == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := f(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
