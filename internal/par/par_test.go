package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, limit := range []int{-1, 0, 1, 2, 3, 7, 64} {
		t.Run(fmt.Sprintf("limit=%d", limit), func(t *testing.T) {
			const n = 37
			var counts [n]atomic.Int64
			if err := Do(n, limit, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("index %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestDoZeroAndNegativeN(t *testing.T) {
	called := false
	for _, n := range []int{0, -3} {
		if err := Do(n, 4, func(int) error { called = true; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if called {
		t.Fatal("f called for n <= 0")
	}
}

// TestDoFirstErrorByIndex: the returned error is the lowest-index
// failure regardless of completion order, and later indices still run.
func TestDoFirstErrorByIndex(t *testing.T) {
	for _, limit := range []int{1, 4} {
		var ran atomic.Int64
		errLow := errors.New("low")
		errHigh := errors.New("high")
		err := Do(16, limit, func(i int) error {
			ran.Add(1)
			switch i {
			case 3:
				return errLow
			case 11:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("limit %d: got %v, want lowest-index error", limit, err)
		}
		if got := ran.Load(); got != 16 {
			t.Fatalf("limit %d: %d of 16 indices ran after an error", limit, got)
		}
	}
}

// TestDoBoundsConcurrency: never more than limit calls in flight.
func TestDoBoundsConcurrency(t *testing.T) {
	const n, limit = 64, 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	if err := Do(n, limit, func(int) error {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		defer cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", p, limit)
	}
}

// TestDoSerialOrder: limit 1 runs inline in index order (the durable
// checkpoint sweeps rely on this to reproduce the historical serial
// loops exactly).
func TestDoSerialOrder(t *testing.T) {
	var order []int
	if err := Do(8, 1, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order %v not ascending", order)
		}
	}
}
