package plan

import (
	"fmt"

	"i2mapreduce/internal/engine"
)

// CPCTuner is implemented by engines whose change-propagation filter
// threshold the planner can adjust per refresh (core.Runner).
type CPCTuner interface {
	SetFilterThreshold(ft float64)
}

// Auto dispatches refreshes through the planner: Plan picks the mode,
// the bound engine runs it, and the observed cost feeds straight back
// into the ledger. It is the auto-planned counterpart of calling one
// engine's Refresh directly.
type Auto struct {
	Planner *Planner
	// Engines maps each candidate mode to its Refresher. A recompute
	// entry is required (typically an engine.Func wrapping a fresh
	// initial run, or core.Runner's RunIncrementalFull arm).
	Engines map[string]engine.Refresher
	// TotalRecords, when set, supplies the live dataset size for the
	// crossover check.
	TotalRecords func() int64
}

// Refresh plans and runs one refresh of deltaRecords delta records.
// The returned Decision records why the mode was chosen; the
// observation is folded into the ledger on success.
func (a *Auto) Refresh(deltaInput, output string, deltaRecords int64) (*engine.RefreshResult, Decision, error) {
	var total int64
	if a.TotalRecords != nil {
		total = a.TotalRecords()
	}
	d := a.Planner.Plan(deltaRecords, total)
	eng, ok := a.Engines[d.Mode]
	if !ok {
		return nil, d, fmt.Errorf("plan: no engine bound for mode %q", d.Mode)
	}
	if d.Mode == engine.ModeIncremental && d.FilterThreshold > 0 {
		if t, ok := eng.(CPCTuner); ok {
			t.SetFilterThreshold(d.FilterThreshold)
		}
	}
	res, err := eng.Refresh(deltaInput, output)
	if err != nil {
		return nil, d, err
	}
	if res.DeltaRecords == 0 {
		res.DeltaRecords = deltaRecords
	}
	if obsErr := a.Planner.ObserveResult(res, d.FilterThreshold); obsErr != nil {
		// The refresh itself succeeded; a ledger write failure must not
		// look like a data failure. Surface it on the decision instead.
		d.Reason += fmt.Sprintf(" (ledger write failed: %v)", obsErr)
	}
	return res, d, nil
}
