package plan

import (
	"path/filepath"
	"testing"
	"time"

	"i2mapreduce/internal/engine"
	"i2mapreduce/internal/metrics"
)

func newTestPlanner(t *testing.T, cfg Config) *Planner {
	t.Helper()
	if cfg.Path == "" {
		cfg.Path = filepath.Join(t.TempDir(), "ledger.json")
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// observeN feeds n observations of (mode, delta, wall) into p.
func observeN(t *testing.T, p *Planner, n int, o Observation) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := p.Observe(o); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlanColdStartFallsBackToRecompute(t *testing.T) {
	p := newTestPlanner(t, Config{Modes: []string{engine.ModeOneStep}})
	d := p.Plan(100, 10000)
	if d.Mode != engine.ModeRecompute || !d.Cold {
		t.Fatalf("cold plan = %+v, want cold recompute", d)
	}
}

func TestPlanPartiallyColdStillFallsBack(t *testing.T) {
	// onestep warm, recompute cold: picking onestep on a one-sided
	// model would never be validated against the alternative, so the
	// planner stays on the safe fallback until both are observed.
	p := newTestPlanner(t, Config{Modes: []string{engine.ModeOneStep}})
	observeN(t, p, 3, Observation{Mode: engine.ModeOneStep, DeltaRecords: 100, Wall: 10 * time.Millisecond})
	d := p.Plan(100, 10000)
	if d.Mode != engine.ModeRecompute || !d.Cold {
		t.Fatalf("plan = %+v, want cold recompute while recompute unobserved", d)
	}
}

func TestPlanDecisionTable(t *testing.T) {
	type obs struct {
		n int
		o Observation
	}
	cases := []struct {
		name     string
		modes    []string
		history  []obs
		delta    int64
		total    int64
		wantMode string
		wantFT   float64
	}{
		{
			name:  "small delta prefers cheap onestep",
			modes: []string{engine.ModeOneStep},
			history: []obs{
				{3, Observation{Mode: engine.ModeRecompute, DeltaRecords: 100, Wall: 500 * time.Millisecond}},
				{3, Observation{Mode: engine.ModeOneStep, DeltaRecords: 100, Wall: 20 * time.Millisecond}},
			},
			delta: 120, total: 100000,
			wantMode: engine.ModeOneStep,
		},
		{
			name:  "expensive onestep loses to recompute",
			modes: []string{engine.ModeOneStep},
			history: []obs{
				{3, Observation{Mode: engine.ModeRecompute, DeltaRecords: 100, Wall: 50 * time.Millisecond}},
				{3, Observation{Mode: engine.ModeOneStep, DeltaRecords: 100, Wall: 200 * time.Millisecond}},
			},
			delta: 100, total: 100000,
			wantMode: engine.ModeRecompute,
		},
		{
			name:  "crossover forces recompute regardless of model",
			modes: []string{engine.ModeOneStep},
			history: []obs{
				{3, Observation{Mode: engine.ModeRecompute, DeltaRecords: 100, Wall: 500 * time.Millisecond}},
				{3, Observation{Mode: engine.ModeOneStep, DeltaRecords: 100, Wall: 1 * time.Millisecond}},
			},
			delta: 50000, total: 100000,
			wantMode: engine.ModeRecompute,
		},
		{
			name:  "incremental wins and CPC threshold picks cheapest variant",
			modes: []string{engine.ModeIncremental},
			history: []obs{
				{3, Observation{Mode: engine.ModeRecompute, DeltaRecords: 100, Wall: 800 * time.Millisecond}},
				{3, Observation{Mode: engine.ModeIncremental, FilterThreshold: 0.001, DeltaRecords: 100, Wall: 90 * time.Millisecond}},
				{3, Observation{Mode: engine.ModeIncremental, FilterThreshold: 0.01, DeltaRecords: 100, Wall: 30 * time.Millisecond}},
			},
			delta: 100, total: 100000,
			wantMode: engine.ModeIncremental,
			wantFT:   0.01,
		},
		{
			name:  "three-way argmin",
			modes: []string{engine.ModeOneStep, engine.ModeIncremental},
			history: []obs{
				{2, Observation{Mode: engine.ModeRecompute, DeltaRecords: 50, Wall: 900 * time.Millisecond}},
				{2, Observation{Mode: engine.ModeOneStep, DeltaRecords: 50, Wall: 40 * time.Millisecond}},
				{2, Observation{Mode: engine.ModeIncremental, FilterThreshold: 0.001, DeltaRecords: 50, Wall: 70 * time.Millisecond}},
			},
			delta: 60, total: 100000,
			wantMode: engine.ModeOneStep,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := newTestPlanner(t, Config{Modes: c.modes, DefaultCPCThreshold: 0.0001})
			for _, h := range c.history {
				observeN(t, p, h.n, h.o)
			}
			d := p.Plan(c.delta, c.total)
			if d.Mode != c.wantMode {
				t.Fatalf("Plan(%d, %d) chose %q (%s), want %q", c.delta, c.total, d.Mode, d.Reason, c.wantMode)
			}
			if c.wantFT != 0 && d.FilterThreshold != c.wantFT {
				t.Fatalf("FilterThreshold = %g, want %g", d.FilterThreshold, c.wantFT)
			}
		})
	}
}

func TestPlanDecayPrefersRecentEvidence(t *testing.T) {
	p := newTestPlanner(t, Config{Modes: []string{engine.ModeOneStep}, Decay: 0.5})
	observeN(t, p, 2, Observation{Mode: engine.ModeRecompute, DeltaRecords: 100, Wall: 100 * time.Millisecond})
	// One-step used to be fast...
	observeN(t, p, 5, Observation{Mode: engine.ModeOneStep, DeltaRecords: 100, Wall: 10 * time.Millisecond})
	if d := p.Plan(100, 0); d.Mode != engine.ModeOneStep {
		t.Fatalf("plan before regression = %q, want onestep", d.Mode)
	}
	// ...then regressed (store debt, growth). Decay must let the recent
	// slow refreshes overturn the old cheap history.
	observeN(t, p, 5, Observation{Mode: engine.ModeOneStep, DeltaRecords: 100, Wall: 400 * time.Millisecond})
	if d := p.Plan(100, 0); d.Mode != engine.ModeRecompute {
		t.Fatalf("plan after regression = %q (%s), want recompute", d.Mode, d.Reason)
	}
}

func TestPlanScalesWithDeltaSize(t *testing.T) {
	// Recompute flat at ~100ms; onestep linear in delta: cheap at small
	// deltas, expensive at large ones (still below the crossover).
	p := newTestPlanner(t, Config{Modes: []string{engine.ModeOneStep}, CrossoverFraction: 0.9})
	observeN(t, p, 2, Observation{Mode: engine.ModeRecompute, DeltaRecords: 100, Wall: 100 * time.Millisecond})
	observeN(t, p, 2, Observation{Mode: engine.ModeRecompute, DeltaRecords: 4000, Wall: 105 * time.Millisecond})
	observeN(t, p, 2, Observation{Mode: engine.ModeOneStep, DeltaRecords: 100, Wall: 5 * time.Millisecond})
	observeN(t, p, 2, Observation{Mode: engine.ModeOneStep, DeltaRecords: 4000, Wall: 200 * time.Millisecond})
	if d := p.Plan(200, 100000); d.Mode != engine.ModeOneStep {
		t.Fatalf("small delta chose %q (%s)", d.Mode, d.Reason)
	}
	if d := p.Plan(3500, 100000); d.Mode != engine.ModeRecompute {
		t.Fatalf("large delta chose %q (%s)", d.Mode, d.Reason)
	}
}

func TestLedgerPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	cfg := Config{Path: path, Modes: []string{engine.ModeOneStep}}
	p := newTestPlanner(t, cfg)
	observeN(t, p, 3, Observation{Mode: engine.ModeRecompute, DeltaRecords: 100, Wall: 500 * time.Millisecond})
	observeN(t, p, 3, Observation{Mode: engine.ModeOneStep, DeltaRecords: 100, Wall: 5 * time.Millisecond})
	want := p.Plan(100, 10000)

	re, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := re.Plan(100, 10000)
	if got.Mode != want.Mode || got.Cold {
		t.Fatalf("reopened planner chose %+v, want %+v", got, want)
	}
	if ms := re.Models(); len(ms) != 2 {
		t.Fatalf("reopened ledger has models %v, want 2", ms)
	}
}

func TestConfigValidate(t *testing.T) {
	valid := Config{Path: "x", Modes: []string{engine.ModeOneStep}}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Path: "x", Decay: 1.5},
		{Path: "x", CrossoverFraction: 2},
		{Path: "x", Modes: []string{"turbo"}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAutoRefreshDispatchesAndObserves(t *testing.T) {
	p := newTestPlanner(t, Config{Modes: []string{engine.ModeOneStep}})
	calls := map[string]int{}
	mk := func(mode string, wall time.Duration) engine.Refresher {
		return &engine.Func{Mode: mode, Fn: func(deltaInput, output string) (*metrics.Report, int64, error) {
			calls[mode]++
			time.Sleep(wall)
			return &metrics.Report{}, 10, nil
		}}
	}
	a := &Auto{
		Planner: p,
		Engines: map[string]engine.Refresher{
			engine.ModeRecompute: mk(engine.ModeRecompute, 20*time.Millisecond),
			engine.ModeOneStep:   mk(engine.ModeOneStep, 1*time.Millisecond),
		},
		TotalRecords: func() int64 { return 10000 },
	}
	// Cold: first refresh recomputes.
	res, d, err := a.Refresh("d1", "out", 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mode != engine.ModeRecompute || res.Mode != engine.ModeRecompute {
		t.Fatalf("first auto refresh ran %q, want recompute", d.Mode)
	}
	// Warm the one-step arm, then the planner should switch to it.
	if err := p.Observe(Observation{Mode: engine.ModeOneStep, DeltaRecords: 10, Wall: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	_, d, err = a.Refresh("d2", "out", 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mode != engine.ModeOneStep {
		t.Fatalf("warm auto refresh chose %q (%s), want onestep", d.Mode, d.Reason)
	}
	if calls[engine.ModeRecompute] != 1 || calls[engine.ModeOneStep] != 1 {
		t.Fatalf("engine calls = %v", calls)
	}
}
