// Package plan is the cost-aware refresh planner: the "on-line cost
// analysis" layer the i2MapReduce authors left as future work. Every
// refresh the system runs — full recompute, one-step delta, or
// incremental-iterative — is observed into a small durable ledger
// (delta record count, wall time, dirty-partition and spill evidence),
// and before the next refresh the planner predicts each mode's cost for
// the incoming delta size and picks the cheapest, tuning the iterative
// engine's CPC filter threshold the same way. When the model is cold
// (too few observations) or the delta exceeds a crossover fraction of
// the dataset, the planner falls back to full recompute — the one mode
// whose correctness and cost never depend on preserved state.
//
// The cost model is deliberately simple: per mode, an exponentially
// decayed least-squares fit of wall time against delta records
// (wall ≈ a + b·Δ). Decay makes the model track regime changes (data
// growth, store compaction debt) instead of averaging over history;
// the linear shape matches how both incremental engines behave below
// the crossover point, and recompute appears as a near-flat line whose
// intercept is the full-run cost.
package plan

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"i2mapreduce/internal/engine"
	"i2mapreduce/internal/fsutil"
)

// Config parameterizes a Planner.
type Config struct {
	// Path is the JSON ledger file (conventionally
	// <WorkDir>/plan/<job>.json). Required.
	Path string
	// Modes are the candidate refresh modes to arbitrate between
	// (engine.ModeOneStep and/or engine.ModeIncremental).
	// engine.ModeRecompute is always a candidate and the fallback.
	Modes []string
	// Decay in (0, 1] is the per-observation exponential decay applied
	// to a mode's accumulated statistics; 1 never forgets. Default 0.8.
	Decay float64
	// MinObservations is the decayed observation mass below which a
	// mode's model counts as cold. Default 1.
	MinObservations float64
	// CrossoverFraction is the delta/total record fraction above which
	// the planner always chooses recompute. Default 0.35.
	CrossoverFraction float64
	// CPCThresholds are the candidate filter thresholds the planner
	// tunes the incremental engine's change-propagation control over.
	// Each threshold gets its own cost model ("incremental@0.001").
	CPCThresholds []float64
	// DefaultCPCThreshold is used while no threshold variant is warm.
	DefaultCPCThreshold float64
}

func (c *Config) applyDefaults() {
	if c.Decay == 0 {
		c.Decay = 0.8
	}
	if c.MinObservations == 0 {
		c.MinObservations = 1
	}
	if c.CrossoverFraction == 0 {
		c.CrossoverFraction = 0.35
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Path == "" {
		return fmt.Errorf("plan: Config.Path required")
	}
	if c.Decay < 0 || c.Decay > 1 {
		return fmt.Errorf("plan: Config.Decay = %g, want (0, 1]", c.Decay)
	}
	if c.CrossoverFraction < 0 || c.CrossoverFraction > 1 {
		return fmt.Errorf("plan: Config.CrossoverFraction = %g, want [0, 1]", c.CrossoverFraction)
	}
	for _, m := range c.Modes {
		if m == engine.ModeRecompute {
			continue
		}
		if m != engine.ModeOneStep && m != engine.ModeIncremental {
			return fmt.Errorf("plan: unknown mode %q", m)
		}
	}
	return nil
}

// model is one mode's decayed least-squares state. The sums are decayed
// by cfg.Decay before each new observation folds in, so the effective
// sample mass N converges to 1/(1-decay).
type model struct {
	N     float64 `json:"n"`
	SumX  float64 `json:"sum_x"`
	SumY  float64 `json:"sum_y"`
	SumXX float64 `json:"sum_xx"`
	SumXY float64 `json:"sum_xy"`
	// LastNs is the most recent raw wall time, kept for reporting.
	LastNs int64 `json:"last_ns"`
	// Count is the raw (undecayed) observation count.
	Count int64 `json:"count"`
}

func (m *model) observe(decay, x, y float64) {
	m.N = m.N*decay + 1
	m.SumX = m.SumX*decay + x
	m.SumY = m.SumY*decay + y
	m.SumXX = m.SumXX*decay + x*x
	m.SumXY = m.SumXY*decay + x*y
	m.LastNs = int64(y)
	m.Count++
}

// predict returns the fitted wall time at x delta records. A degenerate
// fit (all observations at one delta size, or a negative extrapolation)
// falls back to the decayed mean — pessimistic but never absurd.
func (m *model) predict(x float64) time.Duration {
	mean := m.SumY / m.N
	denom := m.N*m.SumXX - m.SumX*m.SumX
	if denom <= 0 || m.N < 2 {
		return time.Duration(mean)
	}
	b := (m.N*m.SumXY - m.SumX*m.SumY) / denom
	a := (m.SumY - b*m.SumX) / m.N
	pred := a + b*x
	if pred <= 0 {
		return time.Duration(mean)
	}
	return time.Duration(pred)
}

// ledger is the JSON document persisted at Config.Path.
type ledger struct {
	Version int               `json:"version"`
	Models  map[string]*model `json:"models"`
}

// Planner owns the ledger and makes per-refresh decisions. Safe for
// concurrent use.
type Planner struct {
	mu  sync.Mutex
	cfg Config
	led ledger
}

// New loads (or initializes) the ledger at cfg.Path.
func New(cfg Config) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	p := &Planner{cfg: cfg, led: ledger{Version: 1, Models: map[string]*model{}}}
	data, err := os.ReadFile(cfg.Path)
	if os.IsNotExist(err) {
		return p, nil
	}
	if err != nil {
		return nil, fmt.Errorf("plan: read ledger: %w", err)
	}
	if err := json.Unmarshal(data, &p.led); err != nil {
		return nil, fmt.Errorf("plan: ledger %s corrupt: %w", cfg.Path, err)
	}
	if p.led.Models == nil {
		p.led.Models = map[string]*model{}
	}
	return p, nil
}

// Observation is the cost evidence of one completed refresh.
type Observation struct {
	// Mode that ran (engine.Mode* constant).
	Mode string
	// FilterThreshold is the CPC threshold an incremental refresh ran
	// with (ignored for other modes).
	FilterThreshold float64
	// DeltaRecords is the delta size the refresh consumed; Wall its
	// end-to-end wall time.
	DeltaRecords int64
	Wall         time.Duration
}

// modelKey names the ledger entry an observation belongs to: the mode,
// with the CPC threshold appended for incremental refreshes so each
// threshold variant is costed separately.
func modelKey(mode string, ft float64) string {
	if mode == engine.ModeIncremental && ft > 0 {
		return mode + "@" + strconv.FormatFloat(ft, 'g', -1, 64)
	}
	return mode
}

// Observe folds one refresh into the ledger and persists it.
func (p *Planner) Observe(o Observation) error {
	if o.Mode == "" || o.Wall <= 0 {
		return fmt.Errorf("plan: observation needs a mode and positive wall time")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := modelKey(o.Mode, o.FilterThreshold)
	m := p.led.Models[key]
	if m == nil {
		m = &model{}
		p.led.Models[key] = m
	}
	m.observe(p.cfg.Decay, float64(o.DeltaRecords), float64(o.Wall))
	return p.persistLocked()
}

// ObserveResult is Observe for an engine.RefreshResult.
func (p *Planner) ObserveResult(res *engine.RefreshResult, filterThreshold float64) error {
	if res == nil {
		return nil
	}
	return p.Observe(Observation{
		Mode:            res.Mode,
		FilterThreshold: filterThreshold,
		DeltaRecords:    res.DeltaRecords,
		Wall:            res.Wall,
	})
}

func (p *Planner) persistLocked() error {
	data, err := json.MarshalIndent(&p.led, "", "  ")
	if err != nil {
		return err
	}
	return fsutil.WriteFileAtomic(p.cfg.Path, data)
}

// Decision is the planner's choice for one upcoming refresh.
type Decision struct {
	// Mode to run (always set; ModeRecompute when falling back).
	Mode string
	// FilterThreshold is the CPC threshold to use when Mode is
	// incremental (Config.DefaultCPCThreshold when no variant is warm).
	FilterThreshold float64
	// Predicted maps each considered mode to its predicted wall time
	// (only warm modes appear).
	Predicted map[string]time.Duration
	// Cold is true when the decision is the cold-model fallback rather
	// than a cost comparison.
	Cold bool
	// Reason is a one-line human-readable justification.
	Reason string
}

// warmVariants returns mode's warm ledger entries: for incremental,
// every threshold variant; otherwise the mode itself.
func (p *Planner) warmVariantsLocked(mode string) map[string]*model {
	out := map[string]*model{}
	if mode == engine.ModeIncremental {
		for key, m := range p.led.Models {
			if (key == mode || strings.HasPrefix(key, mode+"@")) && m.N >= p.cfg.MinObservations {
				out[key] = m
			}
		}
		return out
	}
	if m := p.led.Models[mode]; m != nil && m.N >= p.cfg.MinObservations {
		out[mode] = m
	}
	return out
}

// Plan chooses the mode (and CPC threshold) for a refresh of
// deltaRecords against a dataset of totalRecords (0 when unknown,
// which disables the crossover check).
func (p *Planner) Plan(deltaRecords, totalRecords int64) Decision {
	p.mu.Lock()
	defer p.mu.Unlock()

	if totalRecords > 0 && float64(deltaRecords) > p.cfg.CrossoverFraction*float64(totalRecords) {
		return Decision{
			Mode:            engine.ModeRecompute,
			FilterThreshold: p.cfg.DefaultCPCThreshold,
			Reason: fmt.Sprintf("delta %d of %d records exceeds crossover fraction %.2f",
				deltaRecords, totalRecords, p.cfg.CrossoverFraction),
		}
	}

	x := float64(deltaRecords)
	predicted := map[string]time.Duration{}
	ft := map[string]float64{}
	cold := []string{}
	candidates := []string{engine.ModeRecompute}
	for _, m := range p.cfg.Modes {
		if m != engine.ModeRecompute {
			candidates = append(candidates, m)
		}
	}
	for _, mode := range candidates {
		variants := p.warmVariantsLocked(mode)
		if len(variants) == 0 {
			cold = append(cold, mode)
			continue
		}
		// Cheapest warm variant speaks for the mode; for incremental
		// this is where the CPC threshold gets tuned.
		bestKey := ""
		var best time.Duration
		keys := make([]string, 0, len(variants))
		for k := range variants {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic tie-break
		for _, k := range keys {
			if pred := variants[k].predict(x); bestKey == "" || pred < best {
				bestKey, best = k, pred
			}
		}
		predicted[mode] = best
		ft[mode] = p.cfg.DefaultCPCThreshold
		if i := strings.IndexByte(bestKey, '@'); i >= 0 {
			if v, err := strconv.ParseFloat(bestKey[i+1:], 64); err == nil {
				ft[mode] = v
			}
		}
	}

	if len(cold) > 0 {
		return Decision{
			Mode:            engine.ModeRecompute,
			FilterThreshold: p.cfg.DefaultCPCThreshold,
			Predicted:       predicted,
			Cold:            true,
			Reason:          fmt.Sprintf("cost model cold for %s; recompute is the safe fallback", strings.Join(cold, ", ")),
		}
	}

	bestMode := ""
	for _, mode := range candidates {
		pred, ok := predicted[mode]
		if !ok {
			continue
		}
		if bestMode == "" || pred < predicted[bestMode] {
			bestMode = mode
		}
	}
	return Decision{
		Mode:            bestMode,
		FilterThreshold: ft[bestMode],
		Predicted:       predicted,
		Reason: fmt.Sprintf("%s predicted cheapest (%s) at %d delta records",
			bestMode, predicted[bestMode].Round(time.Microsecond), deltaRecords),
	}
}

// Warm reports whether mode has enough decayed observation mass to be
// predicted (for incremental: any threshold variant).
func (p *Planner) Warm(mode string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.warmVariantsLocked(mode)) > 0
}

// Models returns a snapshot of the ledger's model keys for diagnostics.
func (p *Planner) Models() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]string, 0, len(p.led.Models))
	for k := range p.led.Models {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
