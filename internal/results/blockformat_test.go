package results

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"i2mapreduce/internal/blockio"
	"i2mapreduce/internal/kv"
)

// checkpointGroups writes n groups through a store in dir and returns
// the expected contents.
func checkpointGroups(t *testing.T, dir string, opts Options, n int) map[string][]kv.Pair {
	t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]kv.Pair, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("group-%05d", i)
		ps := []kv.Pair{{Key: key, Value: strings.Repeat("v", 1+i%40)}}
		s.Set(key, ps)
		want[key] = ps
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptBlockBodySurfacesError flips a byte inside a block body:
// Open still succeeds (the footer is intact) but any read touching the
// block must fail the CRC check — an error, never a panic or bad data.
func TestCorruptBlockBodySurfacesError(t *testing.T) {
	for _, codec := range []string{"none", "flate"} {
		t.Run(codec, func(t *testing.T) {
			dir := t.TempDir()
			checkpointGroups(t, dir, Options{Compression: codec}, 200)
			segs := segmentFiles(t, dir)
			if len(segs) != 1 {
				t.Fatalf("segments = %v", segs)
			}
			// Offset 16 is inside the first block frame (header is 5
			// bytes, then crc+lengths+codec+body).
			flipByte(t, segs[0], 16)
			s := mustOpen(t, dir, 0)
			defer s.Close()
			_, _, err := s.Get("group-00000")
			if err == nil {
				t.Fatal("Get over corrupted block succeeded")
			}
			if !errors.Is(err, blockio.ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestCorruptFrameCRCSurfacesError flips the stored CRC itself (the
// first 4 bytes of the first block frame).
func TestCorruptFrameCRCSurfacesError(t *testing.T) {
	dir := t.TempDir()
	checkpointGroups(t, dir, Options{}, 50)
	seg := segmentFiles(t, dir)[0]
	flipByte(t, seg, 5) // first byte after the 5-byte header = frame CRC
	s := mustOpen(t, dir, 0)
	defer s.Close()
	if _, _, err := s.Get("group-00000"); !errors.Is(err, blockio.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestCorruptFooterFailsOpen flips bytes in the footer region (index +
// bloom filter) and in the fixed tail: Open must reject the segment
// with a corruption error rather than serving from a broken index.
func TestCorruptFooterFailsOpen(t *testing.T) {
	dir := t.TempDir()
	checkpointGroups(t, dir, Options{}, 500)
	seg := segmentFiles(t, dir)[0]
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		off  int64
	}{
		{"tail-crc", fi.Size() - 7},           // inside footerCRC field
		{"footer", fi.Size() - 25 - 40},       // inside footer (index/bloom)
		{"footer-offset", fi.Size() - 25 + 2}, // footerOff field in the tail
	} {
		t.Run(tc.name, func(t *testing.T) {
			flipByte(t, seg, tc.off)
			defer flipByte(t, seg, tc.off) // restore for the next case
			_, err := Open(Options{Dir: dir})
			if err == nil {
				t.Fatal("Open succeeded over corrupted footer")
			}
		})
	}
}

// TestCorruptLengthPrefixInRecord flips a record length prefix inside a
// decoded block. The frame CRC catches it first — the point is that no
// corruption anywhere in the body can panic the decoder.
func TestTruncatedSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	checkpointGroups(t, dir, Options{}, 100)
	seg := segmentFiles(t, dir)[0]
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open succeeded over truncated segment")
	}
}

// TestCorruptionSweepNeverPanics flips every 97th byte of a segment in
// turn and exercises Open + a full scan each time: any outcome is
// acceptable except a panic or silently wrong data.
func TestCorruptionSweepNeverPanics(t *testing.T) {
	dir := t.TempDir()
	want := checkpointGroups(t, dir, Options{Compression: "flate"}, 300)
	seg := segmentFiles(t, dir)[0]
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off < fi.Size(); off += 97 {
		flipByte(t, seg, off)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic with byte %d flipped: %v", off, r)
				}
			}()
			s, err := Open(Options{Dir: dir})
			if err != nil {
				return // rejected at Open: fine
			}
			defer s.Close()
			got := make(map[string][]kv.Pair)
			err = s.AllGroups(func(key string, pairs []kv.Pair) error {
				got[key] = append([]kv.Pair(nil), pairs...)
				return nil
			})
			if err != nil {
				return // surfaced as an error: fine
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("byte %d flipped: scan returned wrong data without error", off)
			}
		}()
		flipByte(t, seg, off) // restore
	}
}

// writeV1Segment hand-writes a legacy flat-format segment: bare
// encodeRecord frames, no header, no blocks, no bloom filter.
func writeV1Segment(t *testing.T, path string, recs []record) {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		buf = encodeRecord(buf, r)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV1MigrationReadAndCompactForward opens a directory laid out by
// the pre-block (v1) format — flat segments plus a manifest — verifies
// every read path works unchanged, then compacts and confirms the data
// was rewritten forward into v2 block segments with identical contents.
func TestV1MigrationReadAndCompactForward(t *testing.T) {
	dir := t.TempDir()
	writeV1Segment(t, filepath.Join(dir, "seg-000001.seg"), []record{
		{key: "a", pairs: []kv.Pair{{Key: "a", Value: "old"}}},
		{key: "b", pairs: []kv.Pair{{Key: "b", Value: "1"}}},
		{key: "c", pairs: []kv.Pair{{Key: "c", Value: "stale"}}},
	})
	writeV1Segment(t, filepath.Join(dir, "seg-000002.seg"), []record{
		{key: "a", pairs: []kv.Pair{{Key: "a", Value: "new"}, {Key: "a2", Value: "x"}}},
		{key: "c", tomb: true},
		{key: "d", pairs: []kv.Pair{{Key: "d", Value: "4"}}},
	})
	manifest := "results v1\nseq=2\nlast=\nseg=seg-000001.seg\nseg=seg-000002.seg\n"
	if err := os.WriteFile(filepath.Join(dir, "results.meta"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}

	want := map[string][]kv.Pair{
		"a": {{Key: "a", Value: "new"}, {Key: "a2", Value: "x"}},
		"b": {{Key: "b", Value: "1"}},
		"d": {{Key: "d", Value: "4"}},
	}

	s := mustOpen(t, dir, 0)
	if !s.Initialized() {
		t.Fatal("v1 store not recognized as initialized")
	}
	for _, seg := range s.segs {
		if seg.bf != nil || seg.index == nil {
			t.Fatalf("segment %s not opened via the v1 fallback", seg.path)
		}
	}
	if got := collect(t, s); !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 read: got %v want %v", got, want)
	}
	if ps, ok, err := s.Get("a"); err != nil || !ok || !reflect.DeepEqual(ps, want["a"]) {
		t.Fatalf("v1 Get(a) = %v %v %v", ps, ok, err)
	}
	if _, ok, err := s.Get("c"); err != nil || ok {
		t.Fatalf("v1 tombstoned Get(c) = %v %v", ok, err)
	}

	// Compaction must rewrite the data forward into the block format.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("post-compaction segments = %v", segs)
	}
	head := make([]byte, 4)
	f, err := os.Open(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(head, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if string(head) != "i2sb" {
		t.Fatalf("compacted segment magic = %q, want block format", head)
	}

	// Reopen: the rewritten store serves the same data, now via blooms.
	s = mustOpen(t, dir, 0)
	defer s.Close()
	for _, seg := range s.segs {
		if seg.bf == nil {
			t.Fatalf("segment %s still v1 after compaction", seg.path)
		}
	}
	if got := collect(t, s); !reflect.DeepEqual(got, want) {
		t.Fatalf("v2 read after migration: got %v want %v", got, want)
	}
	if _, ok, err := s.Get("absent"); err != nil || ok {
		t.Fatalf("Get(absent) = %v %v", ok, err)
	}
	if st := s.Stats(); st.BloomSkips == 0 {
		t.Fatal("absent-key Get on migrated store did not use the bloom filter")
	}
}

// TestBloomSkipsAbsentKeys checks the headline perf property: almost
// every absent-key Get is answered by the bloom filter with zero block
// reads.
func TestBloomSkipsAbsentKeys(t *testing.T) {
	dir := t.TempDir()
	checkpointGroups(t, dir, Options{}, 2000)
	s := mustOpen(t, dir, 0)
	defer s.Close()
	base := s.Stats()
	const probes = 2000
	for i := 0; i < probes; i++ {
		if _, ok, err := s.Get(fmt.Sprintf("absent-%05d", i)); ok || err != nil {
			t.Fatalf("absent Get = %v %v", ok, err)
		}
	}
	st := s.Stats()
	skips := st.BloomSkips - base.BloomSkips
	reads := st.BlocksRead - base.BlocksRead
	if skips < probes*99/100 {
		t.Fatalf("bloom skipped %d/%d absent probes, want >=99%%", skips, probes)
	}
	if reads > probes/100 {
		t.Fatalf("absent probes read %d blocks, want ~0", reads)
	}
}

// TestAbsentGetAllocations pins the zero-copy miss path: a
// bloom-skipped absent-key Get performs at most the segment-pin
// allocation — no per-record or per-field garbage.
func TestAbsentGetAllocations(t *testing.T) {
	dir := t.TempDir()
	checkpointGroups(t, dir, Options{}, 1000)
	s := mustOpen(t, dir, 0)
	defer s.Close()
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok, err := s.Get("absent-key-zz"); ok || err != nil {
			t.Fatalf("absent Get = %v %v", ok, err)
		}
	})
	// One alloc pins the segment list; anything more means the miss path
	// regressed into per-record decoding.
	if allocs > 2 {
		t.Fatalf("absent-key Get allocates %.1f objects/op, want <=2", allocs)
	}
}

// BenchmarkStoreGetHit measures the one-block point-read path.
func BenchmarkStoreGetHit(b *testing.B) {
	for _, codec := range []string{"none", "flate"} {
		b.Run(codec, func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(Options{Dir: dir, Compression: codec})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			const n = 5000
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("group-%05d", i)
				s.Set(key, []kv.Pair{{Key: key, Value: strings.Repeat("v", 32)}})
			}
			if err := s.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := fmt.Sprintf("group-%05d", i%n)
				if _, ok, err := s.Get(key); !ok || err != nil {
					b.Fatalf("Get(%s) = %v %v", key, ok, err)
				}
			}
		})
	}
}

// BenchmarkStoreGetMiss measures the bloom-filtered absent-key path.
func BenchmarkStoreGetMiss(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("group-%05d", i)
		s.Set(key, []kv.Pair{{Key: key, Value: "v"}})
	}
	if err := s.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Get("absent-key"); ok || err != nil {
			b.Fatalf("absent Get = %v %v", ok, err)
		}
	}
}
