package results

import "i2mapreduce/internal/kv"

// KV views a Store as a durable string-to-string map — the
// generalization that lets the incremental iterative engine
// (internal/core) back its per-partition state data and CPC baselines
// with the same memtable + sorted-segment + tombstone + atomic-manifest
// machinery the one-step engine uses for materialized results.
//
// Each entry is stored as a group record holding a single pair whose
// pair key is empty (the group key already carries the entry key), so
// the on-disk format stays the Store's segment codec and all of the
// Store's durability properties — crash-safe manifest commits, orphan
// cleanup, threshold compaction — apply unchanged. Checkpoint flushes
// only the entries mutated since the previous checkpoint: the dirty
// groups, never a full rewrite of the map.
type KV struct {
	s *Store
}

// OpenKV creates a key-value store in opts.Dir or recovers the one
// checkpointed there.
func OpenKV(opts Options) (*KV, error) {
	s, err := Open(opts)
	if err != nil {
		return nil, err
	}
	return &KV{s: s}, nil
}

// Put sets key's value. The mutation is buffered in the memtable until
// the next Checkpoint.
func (k *KV) Put(key, value string) {
	k.s.Set(key, []kv.Pair{{Value: value}})
}

// Delete removes key (a tombstone is durably recorded so the deletion
// survives restarts while older segments still hold the entry).
func (k *KV) Delete(key string) {
	k.s.Delete(key)
}

// Get returns key's current value (memtable first, then segments
// newest to oldest); ok is false when the key is absent or tombstoned.
// The value is an immutable string (and the underlying Store.Get hands
// out defensive pair copies), so callers can never corrupt pending
// durable state through the return value.
func (k *KV) Get(key string) (string, bool, error) {
	ps, ok, err := k.s.Get(key)
	if err != nil || !ok {
		return "", ok, err
	}
	if len(ps) == 0 {
		return "", true, nil
	}
	return ps[0].Value, true, nil
}

// Snapshot captures an immutable point-in-time view of the store; the
// serving layer reads it without blocking writers. Entry values are the
// single-pair group records described above (pairs[0].Value, or "" for
// an empty group).
func (k *KV) Snapshot() *Snapshot { return k.s.Snapshot() }

// All streams every live entry in ascending key order.
func (k *KV) All(fn func(key, value string) error) error {
	return k.s.AllGroups(func(key string, ps []kv.Pair) error {
		v := ""
		if len(ps) > 0 {
			v = ps[0].Value
		}
		return fn(key, v)
	})
}

// Pending reports the number of uncheckpointed mutations — the dirty
// entries the next Checkpoint will flush as one new segment.
func (k *KV) Pending() int { return k.s.Pending() }

// Checkpoint flushes pending mutations as a new sorted segment and
// commits the manifest, compacting at the segment threshold.
func (k *KV) Checkpoint() error { return k.s.Checkpoint() }

// DiscardPending drops every uncheckpointed mutation, restoring the
// view to the last durable state.
func (k *KV) DiscardPending() { k.s.DiscardPending() }

// Initialized reports whether the store was recovered from a manifest
// a previous process wrote.
func (k *KV) Initialized() bool { return k.s.Initialized() }

// Reset discards the store's entire contents, returning it to the
// freshly-created state.
func (k *KV) Reset() error { return k.s.Reset() }

// Stats returns the underlying store's shape counters.
func (k *KV) Stats() Stats { return k.s.Stats() }

// AttachScheduler hands the underlying store's threshold compaction to
// a background Scheduler (nil detaches); see Store.AttachScheduler.
func (k *KV) AttachScheduler(sched *Scheduler) { k.s.AttachScheduler(sched) }

// Close releases the segment files without checkpointing.
func (k *KV) Close() error { return k.s.Close() }
