package results

import "testing"

func TestKVRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	k, err := OpenKV(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if k.Initialized() {
		t.Fatal("fresh KV claims to be initialized")
	}
	k.Put("a", "1")
	k.Put("b", "2")
	k.Put("gone", "x")
	if k.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", k.Pending())
	}
	if err := k.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending after checkpoint = %d, want 0", k.Pending())
	}
	k.Put("a", "10")
	k.Delete("gone")
	if err := k.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Uncheckpointed mutations must not survive the reopen.
	k.Put("lost", "nope")
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}

	k2, err := OpenKV(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	if !k2.Initialized() {
		t.Fatal("reopened KV not initialized")
	}
	got := map[string]string{}
	if err := k2.All(func(key, value string) error {
		got[key] = value
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "10", "b": "2"}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for key, v := range want {
		if got[key] != v {
			t.Fatalf("recovered %v, want %v", got, want)
		}
	}
	if v, ok, err := k2.Get("a"); err != nil || !ok || v != "10" {
		t.Fatalf("Get(a) = %q/%v/%v, want 10", v, ok, err)
	}
	if _, ok, err := k2.Get("gone"); err != nil || ok {
		t.Fatalf("deleted key resurfaced (ok=%v err=%v)", ok, err)
	}
}

func TestKVDiscardPendingAndReset(t *testing.T) {
	k, err := OpenKV(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	k.Put("a", "1")
	if err := k.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	k.Put("a", "2")
	k.DiscardPending()
	if v, ok, err := k.Get("a"); err != nil || !ok || v != "1" {
		t.Fatalf("Get after DiscardPending = %q/%v/%v, want 1", v, ok, err)
	}
	if err := k.Reset(); err != nil {
		t.Fatal(err)
	}
	if k.Initialized() {
		t.Fatal("KV still initialized after Reset")
	}
	if _, ok, _ := k.Get("a"); ok {
		t.Fatal("entry survived Reset")
	}
}
