// Package results implements the durable per-partition result store of
// the one-step incremental engine (internal/incr). A Store holds the
// materialized Reduce outputs of one reduce partition as a map from a
// group key (the Reduce input key K2, or K3 for accumulator jobs) to
// the output pairs that group's Reduce call emitted.
//
// Incremental view-maintenance systems treat the materialized result as
// a first-class store that is *patched*, not rebuilt: a delta refresh
// replaces or deletes only the affected groups, and the store remembers
// everything else. The on-disk layout follows the small-LSM shape used
// throughout this codebase (cf. the MRBG-Store):
//
//	results.meta — the manifest: segment list (oldest first), the
//	               segment sequence counter, and the DFS path the
//	               store was last materialized to. Written atomically
//	               (temp file + rename + dir sync); its presence marks
//	               the store as initialized, which incr.Open relies on
//	               to resume a runner after process death.
//	seg-*.seg    — immutable segments: group records sorted by group
//	               key. A record is either a live group (its output
//	               pairs) or a tombstone (the group was deleted).
//
// Mutations accumulate in an in-memory memtable; Checkpoint flushes it
// as a new segment and persists the manifest. Reads overlay the
// memtable over the segments newest-first. When the segment count
// reaches Options.CompactThreshold, Checkpoint folds all segments into
// one, dropping tombstones and obsolete group versions — the
// "reconstructed when idle" treatment the paper gives the MRBGraph
// file, applied to the result set.
package results

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"i2mapreduce/internal/fsutil"
	"i2mapreduce/internal/kv"
)

// DefaultCompactThreshold is the segment count at which Checkpoint
// compacts, when Options.CompactThreshold is zero.
const DefaultCompactThreshold = 4

// Options configures a Store.
type Options struct {
	// Dir is the directory holding the manifest and segments. Required.
	Dir string
	// CompactThreshold is the number of on-disk segments that triggers a
	// compaction during Checkpoint. 0 means DefaultCompactThreshold; a
	// negative value disables compaction entirely.
	CompactThreshold int
}

// Stats reports the store's shape and maintenance work.
type Stats struct {
	// Segments is the current on-disk segment count.
	Segments int
	// SegmentBytes is the total encoded size of those segments.
	SegmentBytes int64
	// Compactions counts compactions since Open.
	Compactions int64
	// CompactedBytes counts the obsolete segment bytes dropped by those
	// compactions (pre-compaction size minus post-compaction size).
	CompactedBytes int64
	// Flushes counts memtable flushes (checkpointed segments written).
	Flushes int64
}

// entry is one memtable slot: a group's pending output pairs, or a
// tombstone marking the group deleted.
type entry struct {
	pairs []kv.Pair
	tomb  bool
}

// segLoc locates one group record inside a segment file.
type segLoc struct {
	off int64
	len int64
}

// segment is one immutable sorted run of group records.
type segment struct {
	path  string
	f     *os.File
	index map[string]segLoc
	bytes int64
}

// Store is one partition's durable result store. All methods are safe
// for concurrent use; the one-step engine additionally guarantees that
// at most one reduce task mutates a partition's store at a time, so the
// internal mutex is contended only by concurrent readers (Outputs).
type Store struct {
	mu   sync.Mutex
	opts Options
	seq  int64 // next segment sequence number
	segs []*segment
	// initialized reports whether a manifest existed when the store was
	// opened — i.e. a previous process checkpointed results here.
	initialized bool
	mem         map[string]entry
	dirty       bool
	lastOutput  string
	stats       Stats
}

const manifestName = "results.meta"

// Open creates a store in opts.Dir or recovers the one checkpointed
// there. Segments written but never referenced by the manifest (a crash
// between segment write and manifest commit) are deleted.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("results: Options.Dir is required")
	}
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = DefaultCompactThreshold
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: creating dir: %w", err)
	}
	s := &Store{opts: opts, mem: make(map[string]entry)}
	names, last, seq, ok, err := readManifest(opts.Dir)
	if err != nil {
		return nil, err
	}
	s.initialized = ok
	s.seq = seq
	s.lastOutput = last
	referenced := make(map[string]bool, len(names))
	for _, name := range names {
		referenced[name] = true
		seg, err := openSegment(filepath.Join(opts.Dir, name))
		if err != nil {
			s.closeSegments()
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	// Drop orphaned segment files from a crash mid-checkpoint.
	dirEnts, err := os.ReadDir(opts.Dir)
	if err != nil {
		s.closeSegments()
		return nil, err
	}
	for _, de := range dirEnts {
		name := de.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") && !referenced[name] {
			os.Remove(filepath.Join(opts.Dir, name))
		}
	}
	return s, nil
}

// Initialized reports whether the store was recovered from a manifest a
// previous process wrote — the signal incr.Open uses to decide that a
// preserved computation exists.
func (s *Store) Initialized() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.initialized
}

func (s *Store) closeSegments() {
	for _, seg := range s.segs {
		seg.f.Close()
	}
}

// Reset discards the store's entire contents — memtable, segments, and
// manifest — returning it to the freshly-created state. The one-step
// engine uses it to clear the partial results of an initial run that
// died before committing its completion marker. The manifest is removed
// first, so a crash mid-Reset leaves an uninitialized store plus orphan
// segments (cleaned by the next Open), never a manifest referencing
// deleted files.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(filepath.Join(s.opts.Dir, manifestName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	// The unlink must be durable before any referenced segment goes, or
	// a crash could resurrect a manifest pointing at deleted files.
	if err := fsutil.SyncDir(s.opts.Dir); err != nil {
		return err
	}
	for _, seg := range s.segs {
		seg.f.Close()
		os.Remove(seg.path)
	}
	s.segs = nil
	s.mem = make(map[string]entry)
	s.initialized = false
	s.dirty = false
	s.lastOutput = ""
	return nil
}

// Close releases the segment files without checkpointing. Pending
// memtable mutations are lost (they were never promised durable).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	return first
}

// Set replaces group key's output pairs. The slice is retained; callers
// must not mutate it afterwards.
func (s *Store) Set(key string, pairs []kv.Pair) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[key] = entry{pairs: pairs}
	s.dirty = true
}

// DiscardPending drops every uncheckpointed mutation (the memtable),
// restoring the in-memory view to the last durable state. The one-step
// engine calls it at the start of an accumulator reduce task attempt so
// a retried attempt re-folds its groups from clean state instead of
// double-accumulating on top of the failed attempt's partial folds. The
// dirty flag is left as-is (conservatively: an unnecessary rewrite is
// safe, a skipped one is not).
func (s *Store) DiscardPending() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem = make(map[string]entry)
}

// Delete removes group key (a tombstone is durably recorded so the
// deletion survives restarts even while older segments still hold the
// group).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[key] = entry{tomb: true}
	s.dirty = true
}

// Get returns group key's current output pairs (memtable first, then
// segments newest to oldest). ok is false when the group is absent or
// tombstoned.
func (s *Store) Get(key string) ([]kv.Pair, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.mem[key]; ok {
		if e.tomb {
			return nil, false, nil
		}
		return e.pairs, true, nil
	}
	for i := len(s.segs) - 1; i >= 0; i-- {
		l, ok := s.segs[i].index[key]
		if !ok {
			continue
		}
		rec, err := s.segs[i].readRecord(l)
		if err != nil {
			return nil, false, err
		}
		if rec.tomb {
			return nil, false, nil
		}
		return rec.pairs, true, nil
	}
	return nil, false, nil
}

// Pending reports the number of uncheckpointed mutations in the
// memtable — the dirty groups the next Checkpoint will flush.
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Dirty reports whether the store changed since it was last
// materialized to a DFS output file.
func (s *Store) Dirty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirty
}

// LastOutput returns the DFS path this store was last materialized to
// ("" if never).
func (s *Store) LastOutput() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastOutput
}

// Materialized records that the store's current contents were written
// to the DFS path, clearing the dirty flag and persisting the path so a
// resumed runner knows where its last output lives.
func (s *Store) Materialized(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirty = false
	s.lastOutput = path
	return s.writeManifestLocked()
}

// Stats returns a snapshot of the store's shape counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Segments = len(s.segs)
	st.SegmentBytes = 0
	for _, seg := range s.segs {
		st.SegmentBytes += seg.bytes
	}
	return st
}

// record is one decoded group record.
type record struct {
	key   string
	pairs []kv.Pair
	tomb  bool
}

// Checkpoint makes the store durable: the memtable (if non-empty)
// flushes as a new sorted segment, the manifest commits, and — when the
// segment count reaches the compaction threshold — the segments fold
// into one. Always writes the manifest, so a fresh store becomes
// Initialized after its first Checkpoint even with no groups.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.mem) > 0 {
		recs := make([]record, 0, len(s.mem))
		for k, e := range s.mem {
			recs = append(recs, record{key: k, pairs: e.pairs, tomb: e.tomb})
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
		seg, err := s.writeSegmentLocked(recs)
		if err != nil {
			return err
		}
		s.segs = append(s.segs, seg)
		s.mem = make(map[string]entry)
		s.stats.Flushes++
	}
	var obsolete []string
	if s.opts.CompactThreshold > 0 && len(s.segs) >= s.opts.CompactThreshold {
		var err error
		obsolete, err = s.compactLocked()
		if err != nil {
			return err
		}
	}
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	// Only after the manifest stopped referencing them may the old
	// segment files go; a crash before this point leaves them on disk
	// (still referenced or orphaned — either way recoverable), never a
	// manifest pointing at deleted files.
	removePaths(obsolete)
	s.initialized = true
	return nil
}

// Compact folds every segment into one, dropping tombstones and
// obsolete group versions. Intended for idle periods; Checkpoint calls
// it automatically at the threshold.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.segs) <= 1 {
		return nil
	}
	obsolete, err := s.compactLocked()
	if err != nil {
		return err
	}
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	removePaths(obsolete)
	return nil
}

// compactLocked merges the current segments into a single segment via a
// streaming newest-wins merge, returning the now-obsolete segment file
// paths. The caller must commit the manifest BEFORE deleting them — a
// manifest still referencing the old files plus an unreferenced new
// segment is recoverable after a crash (the orphan is dropped on Open);
// a manifest referencing deleted files is not. The memtable is not
// touched (compaction runs right after a flush, when it is empty, but
// correctness does not depend on that: the memtable overlays whatever
// the segments hold).
func (s *Store) compactLocked() ([]string, error) {
	if len(s.segs) <= 1 {
		return nil, nil
	}
	var before int64
	for _, seg := range s.segs {
		before += seg.bytes
	}
	// Stream the newest-wins merge straight into the new segment; only
	// one record is in memory at a time.
	sw, err := s.newSegmentWriterLocked()
	if err != nil {
		return nil, err
	}
	err = s.mergeSegmentsLocked(func(r record) error {
		if r.tomb {
			return nil // fully merged: tombstones have done their work
		}
		return sw.add(r)
	})
	if err != nil {
		sw.abort()
		return nil, err
	}
	seg, err := sw.finish()
	if err != nil {
		return nil, err
	}
	old := s.segs
	s.segs = []*segment{seg}
	obsolete := make([]string, 0, len(old))
	for _, o := range old {
		o.f.Close()
		obsolete = append(obsolete, o.path)
	}
	s.stats.Compactions++
	s.stats.CompactedBytes += before - seg.bytes
	return obsolete, nil
}

// removePaths best-effort deletes files whose references are gone.
func removePaths(paths []string) {
	for _, p := range paths {
		os.Remove(p)
	}
}

// AllGroups streams every live group in ascending group-key order,
// overlaying the memtable on the segments (newest wins per key,
// tombstones skipped). The pairs slice is owned by the callback only
// until it returns.
func (s *Store) AllGroups(fn func(key string, pairs []kv.Pair) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Snapshot the memtable as a sorted pseudo-segment with the highest
	// priority.
	memRecs := make([]record, 0, len(s.mem))
	for k, e := range s.mem {
		memRecs = append(memRecs, record{key: k, pairs: e.pairs, tomb: e.tomb})
	}
	sort.Slice(memRecs, func(i, j int) bool { return memRecs[i].key < memRecs[j].key })
	return s.mergeLocked(memRecs, func(r record) error {
		if r.tomb {
			return nil
		}
		return fn(r.key, r.pairs)
	})
}

// mergeSegmentsLocked merges only the on-disk segments.
func (s *Store) mergeSegmentsLocked(fn func(r record) error) error {
	return s.mergeLocked(nil, fn)
}

// recordSource streams records of one run in key order.
type recordSource interface {
	next() (record, error) // io.EOF at end
}

// sliceRecordSource streams an in-memory sorted record slice.
type sliceRecordSource struct {
	recs []record
	i    int
}

func (r *sliceRecordSource) next() (record, error) {
	if r.i >= len(r.recs) {
		return record{}, io.EOF
	}
	rec := r.recs[r.i]
	r.i++
	return rec, nil
}

// fileRecordSource streams a segment file sequentially.
type fileRecordSource struct {
	r *bufio.Reader
}

func (f *fileRecordSource) next() (record, error) {
	rec, _, err := readRecordFrom(f.r)
	return rec, err
}

// mergeLocked k-way merges the overlay (highest priority, may be nil)
// and the segments (newer = higher priority) into one newest-wins
// stream of records in ascending key order. Records for a key that lost
// to a newer version are consumed and dropped.
func (s *Store) mergeLocked(overlay []record, fn func(r record) error) error {
	// sources[0] is the overlay; sources[1..] are segments newest first,
	// so the lowest source index holding a key wins.
	sources := make([]recordSource, 0, len(s.segs)+1)
	sources = append(sources, &sliceRecordSource{recs: overlay})
	for i := len(s.segs) - 1; i >= 0; i-- {
		if _, err := s.segs[i].f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		sources = append(sources, &fileRecordSource{r: bufio.NewReaderSize(s.segs[i].f, 64<<10)})
	}
	heads := make([]*record, len(sources))
	advance := func(i int) error {
		rec, err := sources[i].next()
		if err == io.EOF {
			heads[i] = nil
			return nil
		}
		if err != nil {
			return err
		}
		heads[i] = &rec
		return nil
	}
	for i := range sources {
		if err := advance(i); err != nil {
			return err
		}
	}
	for {
		// Find the smallest key; the lowest source index wins ties.
		win := -1
		for i, h := range heads {
			if h == nil {
				continue
			}
			if win < 0 || h.key < heads[win].key {
				win = i
			}
		}
		if win < 0 {
			return nil
		}
		key := heads[win].key
		if err := fn(*heads[win]); err != nil {
			return err
		}
		// Consume this key from every source.
		for i := range heads {
			for heads[i] != nil && heads[i].key == key {
				if err := advance(i); err != nil {
					return err
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Segment codec. A record frames as:
//
//	uvarint(len(key)) key byte(kind) [uvarint(n) {uvarint(len k) k uvarint(len v) v}*]
//
// kind 0 = tombstone (no pairs follow), 1 = live group.
// ---------------------------------------------------------------------

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func encodeRecord(buf []byte, r record) []byte {
	buf = appendUvarint(buf, uint64(len(r.key)))
	buf = append(buf, r.key...)
	if r.tomb {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = appendUvarint(buf, uint64(len(r.pairs)))
	for _, p := range r.pairs {
		buf = appendUvarint(buf, uint64(len(p.Key)))
		buf = append(buf, p.Key...)
		buf = appendUvarint(buf, uint64(len(p.Value)))
		buf = append(buf, p.Value...)
	}
	return buf
}

// maxFieldLen bounds any single decoded field, turning a corrupted
// length prefix into an error instead of a huge allocation.
const maxFieldLen = 64 << 20

func uvarintLen(v uint64) int64 {
	n := int64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func readString(r *bufio.Reader) (string, int64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", 0, err
	}
	if n > maxFieldLen {
		return "", 0, fmt.Errorf("results: corrupt field length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", 0, fmt.Errorf("results: truncated field: %w", err)
	}
	return string(b), uvarintLen(n) + int64(n), nil
}

// readRecordFrom decodes the next record, also returning its encoded
// length (so segment scans can index offsets from the single decode
// pass); io.EOF signals a clean end.
func readRecordFrom(r *bufio.Reader) (record, int64, error) {
	key, sz, err := readString(r)
	if err != nil {
		if err == io.EOF {
			return record{}, 0, io.EOF
		}
		return record{}, 0, fmt.Errorf("results: corrupt record key: %w", err)
	}
	kind, err := r.ReadByte()
	if err != nil {
		return record{}, 0, fmt.Errorf("results: truncated record kind: %w", err)
	}
	sz++
	switch kind {
	case 0:
		return record{key: key, tomb: true}, sz, nil
	case 1:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return record{}, 0, fmt.Errorf("results: corrupt pair count: %w", err)
		}
		if n > maxFieldLen {
			return record{}, 0, fmt.Errorf("results: corrupt pair count %d", n)
		}
		sz += uvarintLen(n)
		pairs := make([]kv.Pair, 0, n)
		for i := uint64(0); i < n; i++ {
			k, kn, err := readString(r)
			if err != nil {
				return record{}, 0, fmt.Errorf("results: corrupt pair key: %w", err)
			}
			v, vn, err := readString(r)
			if err != nil {
				return record{}, 0, fmt.Errorf("results: corrupt pair value: %w", err)
			}
			sz += kn + vn
			pairs = append(pairs, kv.Pair{Key: k, Value: v})
		}
		return record{key: key, pairs: pairs}, sz, nil
	default:
		return record{}, 0, fmt.Errorf("results: invalid record kind %d", kind)
	}
}

// segmentWriter streams records (sorted by key) into a new segment
// file, building its index as it goes.
type segmentWriter struct {
	path  string
	f     *os.File
	w     *bufio.Writer
	index map[string]segLoc
	off   int64
	buf   []byte
}

// newSegmentWriterLocked opens the next-sequence segment file for
// writing. The manifest is NOT updated — callers commit it after every
// structural change.
func (s *Store) newSegmentWriterLocked() (*segmentWriter, error) {
	s.seq++
	path := filepath.Join(s.opts.Dir, fmt.Sprintf("seg-%06d.seg", s.seq))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &segmentWriter{
		path:  path,
		f:     f,
		w:     bufio.NewWriterSize(f, 64<<10),
		index: make(map[string]segLoc),
	}, nil
}

// add appends one record.
func (sw *segmentWriter) add(r record) error {
	sw.buf = encodeRecord(sw.buf[:0], r)
	if _, err := sw.w.Write(sw.buf); err != nil {
		return err
	}
	sw.index[r.key] = segLoc{off: sw.off, len: int64(len(sw.buf))}
	sw.off += int64(len(sw.buf))
	return nil
}

// finish flushes and fsyncs the file and returns the segment ready for
// reads. On error the file is removed.
func (sw *segmentWriter) finish() (*segment, error) {
	if err := sw.w.Flush(); err != nil {
		sw.abort()
		return nil, err
	}
	if err := sw.f.Sync(); err != nil {
		sw.abort()
		return nil, err
	}
	return &segment{path: sw.path, f: sw.f, index: sw.index, bytes: sw.off}, nil
}

// abort discards the partially written file.
func (sw *segmentWriter) abort() {
	sw.f.Close()
	os.Remove(sw.path)
}

// writeSegmentLocked writes recs (sorted by key) as a new fsynced
// segment file and returns it ready for reads.
func (s *Store) writeSegmentLocked(recs []record) (*segment, error) {
	sw, err := s.newSegmentWriterLocked()
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if err := sw.add(r); err != nil {
			sw.abort()
			return nil, err
		}
	}
	return sw.finish()
}

// openSegment opens an existing segment, rebuilding its in-memory index
// with one sequential scan.
func openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("results: opening segment: %w", err)
	}
	index := make(map[string]segLoc)
	r := bufio.NewReaderSize(f, 64<<10)
	var off int64
	for {
		rec, n, err := readRecordFrom(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("results: %s: %w", path, err)
		}
		index[rec.key] = segLoc{off: off, len: n}
		off += n
	}
	return &segment{path: path, f: f, index: index, bytes: off}, nil
}

// readRecord decodes the record at l.
func (seg *segment) readRecord(l segLoc) (record, error) {
	buf := make([]byte, l.len)
	if _, err := seg.f.ReadAt(buf, l.off); err != nil {
		return record{}, fmt.Errorf("results: segment read: %w", err)
	}
	rec, _, err := readRecordFrom(bufio.NewReader(bytes.NewReader(buf)))
	return rec, err
}

// ---------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------

// writeManifestLocked persists the segment list, sequence counter, and
// last materialized output path atomically and durably.
func (s *Store) writeManifestLocked() error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "results v1\nseq=%d\nlast=%s\n", s.seq, s.lastOutput)
	for _, seg := range s.segs {
		fmt.Fprintf(&b, "seg=%s\n", filepath.Base(seg.path))
	}
	return fsutil.WriteFileAtomic(filepath.Join(s.opts.Dir, manifestName), b.Bytes())
}

// readManifest loads the manifest; ok=false when none exists (a fresh
// store).
func readManifest(dir string) (segs []string, last string, seq int64, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, "", 0, false, nil
	}
	if err != nil {
		return nil, "", 0, false, err
	}
	lines := strings.Split(string(b), "\n")
	if len(lines) == 0 || lines[0] != "results v1" {
		return nil, "", 0, false, fmt.Errorf("results: corrupt manifest header %q", string(b))
	}
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		k, v, found := strings.Cut(line, "=")
		if !found {
			return nil, "", 0, false, fmt.Errorf("results: corrupt manifest line %q", line)
		}
		switch k {
		case "seq":
			if _, err := fmt.Sscanf(v, "%d", &seq); err != nil {
				return nil, "", 0, false, fmt.Errorf("results: corrupt manifest seq %q", v)
			}
		case "last":
			last = v
		case "seg":
			if v == "" || strings.ContainsAny(v, "/\\") {
				return nil, "", 0, false, fmt.Errorf("results: corrupt manifest segment %q", v)
			}
			segs = append(segs, v)
		default:
			return nil, "", 0, false, fmt.Errorf("results: unknown manifest key %q", k)
		}
	}
	return segs, last, seq, true, nil
}
